/* The naive 3-loop GEMM of the quickstart, as a standalone input for the
 * swcodegen CLI (used by the CI observability smoke run):
 *   build/tools/swcodegen examples/quickstart_gemm.c \
 *       --profile --trace trace.json --estimate 4096 4096 4096
 */
void gemm(long M, long N, long K, double alpha, double beta,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      C[i][j] = beta * C[i][j];
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
