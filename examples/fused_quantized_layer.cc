// Fusion example (§7.3/§8.4): a quantised fully-connected DL layer.
//
// Two fused kernels are generated from C source: one fusing the
// quantization prologue of the weight matrix into the GEMM (recomputed on
// each CPE's SPM tile, Fig.12a), one fusing the ReLU activation epilogue
// (applied to the C tile before the DMA write-back, Fig.12b).  Both are
// verified functionally and compared against the unfused xMath-based
// implementation that runs the element-wise pass on the MPE.
#include <cstdio>
#include <cmath>
#include <random>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "kernel/microkernel.h"
#include "kernel/reference.h"
#include "xmath/xmath.h"

namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.5, 1.5);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

}  // namespace

int main() {
  using namespace sw::core;
  SwGemmCompiler compiler;

  std::printf("== fused quantized layer example ==\n\n");

  // --- prologue fusion: out = quantize(W) x X ----------------------------
  CompiledKernel prologueKernel = compiler.compileSource(R"(
void qlayer(long M, long N, long K, double W[M][K], double WQ[M][K],
            double X[K][N], double Y[M][N]) {
  for (long i = 0; i < M; i++)
    for (long k = 0; k < K; k++)
      WQ[i][k] = quantize(W[i][k]);
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        Y[i][j] += WQ[i][k] * X[k][j];
}
)");
  std::printf("prologue kernel: fusion pattern recognised = %s\n",
              prologueKernel.options.fusion == FusionKind::kPrologueQuantize
                  ? "quantize(A)"
                  : "none?!");

  const std::int64_t m = 512, n = 512, k = 256;
  std::vector<double> w = randomMatrix(m * k, 1);
  std::vector<double> x = randomMatrix(k * n, 2);
  std::vector<double> y(static_cast<std::size_t>(m * n), 0.0);
  std::vector<double> expected = y;

  GemmProblem problem{m, n, k, 1, 1.0, 0.0};
  runGemmFunctional(prologueKernel, compiler.arch(), problem, w, x, y);
  sw::kernel::referenceGemm(
      expected.data(), w.data(), x.data(), m, n, k, 1.0, 0.0, 32,
      [](double v) {
        return std::nearbyint(v * sw::kernel::kQuantScale) /
               sw::kernel::kQuantScale;
      });
  double err = sw::kernel::maxAbsDiff(y.data(), expected.data(), m * n);
  std::printf("prologue functional check: max |error| = %g (%s)\n\n", err,
              err == 0.0 ? "bit-exact" : "MISMATCH");
  const double errPrologue = err;

  // --- epilogue fusion: out = relu(W x X) ---------------------------------
  CompiledKernel epilogueKernel = compiler.compileSource(R"(
void layer_relu(long M, long N, long K, double W[M][K], double X[K][N],
                double Y[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        Y[i][j] += W[i][k] * X[k][j];
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      Y[i][j] = relu(Y[i][j]);
}
)");
  std::fill(y.begin(), y.end(), 0.0);
  std::fill(expected.begin(), expected.end(), 0.0);
  runGemmFunctional(epilogueKernel, compiler.arch(), problem, w, x, y);
  sw::kernel::referenceGemm(expected.data(), w.data(), x.data(), m, n, k,
                            1.0, 0.0, 32, nullptr,
                            [](double v) { return v > 0.0 ? v : 0.0; });
  err = sw::kernel::maxAbsDiff(y.data(), expected.data(), m * n);
  std::printf("epilogue functional check: max |error| = %g (%s)\n\n", err,
              err == 0.0 ? "bit-exact" : "MISMATCH");

  // --- fused vs library-based timing (§8.4) -------------------------------
  sw::xmath::XMathModel xm(compiler.arch());
  std::printf("%-22s %12s %14s %9s\n", "layer shape", "fused GF",
              "xMath+MPE GF", "speedup");
  for (auto [M, N, K] : {std::array<std::int64_t, 3>{4096, 16384, 4096},
                         std::array<std::int64_t, 3>{8192, 16384, 8192},
                         std::array<std::int64_t, 3>{4096, 8192, 2048}}) {
    const double flops = 2.0 * M * N * K;
    const double fused =
        estimateGemm(epilogueKernel, compiler.arch(), GemmProblem{M, N, K})
            .gflops;
    const double baseline =
        flops /
        (xm.gemmSeconds(M, N, K) + xm.mpeElementwiseSeconds(M * N)) / 1e9;
    std::printf("%5ldx%5ldx%5ld   %12.1f %14.1f %8.2fx\n", (long)M, (long)N,
                (long)K, fused, baseline, fused / baseline);
  }
  return (errPrologue == 0.0 && err == 0.0) ? 0 : 1;
}
