// Quickstart: the paper's §2.3 user experience end to end.
//
// Write the naive 3-loop DGEMM in C, hand it to the compiler, and get a
// high-performance SW26010Pro kernel: here we compile it, execute it
// functionally on the simulated 8x8 CPE mesh, verify the numerics against
// the reference, and report the modelled performance for a paper-scale
// shape.
#include <cstdio>
#include <random>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "kernel/reference.h"

namespace {

constexpr const char* kUserProgram = R"(
void gemm(long M, long N, long K, double alpha, double beta,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      C[i][j] = beta * C[i][j];
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
)";

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

}  // namespace

int main() {
  using namespace sw::core;

  std::printf("== swcodegen quickstart ==\n\n");
  std::printf("Input program (plain C):\n%s\n", kUserProgram);

  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compileSource(kUserProgram);
  std::printf("Compiled: %zu-op CPE program, %lld bytes of SPM "
              "(9 buffers, double-buffered)\n\n",
              sw::codegen::countOps(kernel.program.body),
              static_cast<long long>(kernel.program.spmBytesUsed()));

  // --- functional run on the 64-thread mesh simulator -------------------
  const std::int64_t m = 512, n = 512, k = 512;
  std::vector<double> a = randomMatrix(m * k, 1);
  std::vector<double> b = randomMatrix(k * n, 2);
  std::vector<double> c = randomMatrix(m * n, 3);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, 1, /*alpha=*/1.0, /*beta=*/1.0};
  sw::rt::RunOutcome run =
      runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);

  sw::kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k,
                            1.0, 1.0);
  const double err =
      sw::kernel::maxAbsDiff(c.data(), expected.data(), m * n);
  std::printf("Functional run %ldx%ldx%ld on the simulated mesh: "
              "max |error| = %g (%s)\n",
              (long)m, (long)n, (long)k, err,
              err == 0.0 ? "bit-exact" : "MISMATCH");
  std::printf("  simulated time %.3f ms, %.1f model GFLOPS, %lld DMA "
              "messages, %lld broadcasts\n\n",
              run.seconds * 1e3, run.gflops,
              static_cast<long long>(run.counters.dmaMessages),
              static_cast<long long>(run.counters.rmaBroadcastsSent));

  // --- paper-scale timing estimate ---------------------------------------
  for (std::int64_t s : {4096L, 15360L}) {
    sw::rt::RunOutcome estimate =
        estimateGemm(kernel, compiler.arch(), GemmProblem{s, s, s});
    std::printf("Estimated %ld^3: %.1f GFLOPS (%.1f%% of the %.1f-GFLOPS "
                "model peak)\n",
                (long)s, estimate.gflops,
                100.0 * estimate.gflops / (compiler.arch().peakFlops() / 1e9),
                compiler.arch().peakFlops() / 1e9);
  }

  std::printf("\nGenerated CPE source: %zu bytes; MPE wrapper: %zu bytes "
              "(see inspect_codegen for a full dump)\n",
              kernel.cpeSource.size(), kernel.mpeSource.size());
  return err == 0.0 ? 0 : 1;
}
