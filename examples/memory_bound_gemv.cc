// GEMV example (§9 extension): generate the matrix-vector kernel on the
// same substrate, verify it functionally, and show the memory-bound
// roofline — the point where the Sunway decomposition stops being about
// compute and becomes about feeding the SPMs.
#include <cstdio>
#include <random>
#include <vector>

#include "core/gemv.h"
#include "kernel/reference.h"

namespace {

std::vector<double> randomVector(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

}  // namespace

int main() {
  using namespace sw::core;
  sw::sunway::ArchConfig arch;

  std::printf("== memory-bound GEMV example ==\n\n");
  CompiledGemv kernel = compileGemv(arch);
  std::printf("Generated kernel '%s': %lld bytes of SPM (A panel "
              "double-buffered, %ld-deep chunks)\n\n",
              kernel.program.name.c_str(),
              static_cast<long long>(kernel.program.spmBytesUsed()),
              (long)kernel.options.kChunk);

  // Functional check.
  const std::int64_t m = 4096, k = 512;
  std::vector<double> a = randomVector(m * k, 1);
  std::vector<double> x = randomVector(k, 2);
  std::vector<double> y = randomVector(m, 3);
  std::vector<double> expected = y;

  GemvProblem problem{m, k, 2.0, -1.0};
  runGemvFunctional(kernel, arch, problem, a, x, y);
  referenceGemv(expected.data(), a.data(), x.data(), m, k, 2.0, -1.0,
                kernel.options.kChunk);
  const double err = sw::kernel::maxAbsDiff(y.data(), expected.data(), m);
  std::printf("Functional check %ldx%ld: max |error| = %g (%s)\n\n",
              (long)m, (long)k, err, err == 0.0 ? "bit-exact" : "MISMATCH");

  // Roofline study.
  const double bwBound =
      arch.ddrBandwidthBytesPerSec / sizeof(double) * 2.0 / 1e9;
  std::printf("DDR roofline for 0.25 flop/byte: %.2f GFLOPS "
              "(compute peak: %.1f GFLOPS)\n", bwBound,
              arch.peakFlops() / 1e9);
  std::printf("%-18s %12s %12s\n", "shape (MxK)", "GFLOPS", "% of roofline");
  for (auto [mm, kk] : {std::pair<std::int64_t, std::int64_t>{8192, 4096},
                        {65536, 16384},
                        {262144, 16384}}) {
    auto est = estimateGemv(kernel, arch, GemvProblem{mm, kk});
    std::printf("%8ldx%-9ld %12.3f %11.1f%%\n", (long)mm, (long)kk,
                est.gflops, 100.0 * est.gflops / bwBound);
  }
  return err == 0.0 ? 0 : 1;
}
