// Compiler-explorer example: dump every intermediate the pipeline
// produces — the initial schedule tree (Fig.2b), the tiled + hardware-
// bound tree (Fig.4/6), the final tree with DMA/RMA extensions and the
// peeled software pipeline (Fig.9/11), and the generated athread C
// sources (§7/§8).
//
// Usage: inspect_codegen [--no-use-asm] [--no-rma] [--no-hiding]
//                        [--batch] [--fuse-prologue] [--fuse-epilogue]
#include <cstdio>
#include <cstring>

#include "core/compiler.h"

int main(int argc, char** argv) {
  using namespace sw::core;
  CodegenOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-use-asm") == 0) options.useAsm = false;
    else if (std::strcmp(argv[i], "--no-rma") == 0) {
      options.useRma = false;
      options.hideLatency = false;
    } else if (std::strcmp(argv[i], "--no-hiding") == 0)
      options.hideLatency = false;
    else if (std::strcmp(argv[i], "--batch") == 0)
      options.batched = true;
    else if (std::strcmp(argv[i], "--fuse-prologue") == 0)
      options.fusion = FusionKind::kPrologueQuantize;
    else if (std::strcmp(argv[i], "--fuse-epilogue") == 0)
      options.fusion = FusionKind::kEpilogueRelu;
    else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }

  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);

  std::printf("================================================================\n");
  std::printf("Stage 1 — initial schedule tree (Fig.2b)\n");
  std::printf("================================================================\n%s\n",
              kernel.initialTreeDump.c_str());
  std::printf("================================================================\n");
  std::printf("Stage 2 — after tiling, mesh binding, strip-mining (Fig.4/6)\n");
  std::printf("================================================================\n%s\n",
              kernel.tiledTreeDump.c_str());
  std::printf("================================================================\n");
  std::printf("Stage 3 — final tree: DMA/RMA extensions + latency hiding "
              "(Fig.9/11)\n");
  std::printf("================================================================\n%s\n",
              kernel.finalTreeDump.c_str());
  std::printf("================================================================\n");
  std::printf("Generated CPE (slave) source\n");
  std::printf("================================================================\n%s\n",
              kernel.cpeSource.c_str());
  std::printf("================================================================\n");
  std::printf("Generated MPE (host) source\n");
  std::printf("================================================================\n%s\n",
              kernel.mpeSource.c_str());
  return 0;
}
