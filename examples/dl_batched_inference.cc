// DL workload example (§3/§8.3): the batched matrix multiplications of a
// multi-head attention block, expressed as one batched GEMM compiled with
// --batch.  The batch dimension stays inside the generated CPE program —
// the mesh is launched once — while the xMath-style library restarts the
// mesh per head.
#include <cstdio>
#include <random>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "kernel/reference.h"
#include "xmath/xmath.h"

namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-0.5, 0.5);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

}  // namespace

int main() {
  using namespace sw::core;

  // A transformer-ish attention score computation: per head,
  // scores = Q x K^T pre-materialised as a plain GEMM of
  // (seq x dim) x (dim x seq); 8 heads = batch 8.
  const std::int64_t heads = 8;
  const std::int64_t seq = 512;
  const std::int64_t dim = 256;

  std::printf("== batched DL inference example ==\n");
  std::printf("%ld attention heads, per-head GEMM %ldx%ldx%ld\n\n",
              (long)heads, (long)seq, (long)seq, (long)dim);

  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compileSource(R"(
void attention_scores(long H, long M, long N, long K,
                      double Q[H][M][K], double Kt[H][K][N],
                      double S[H][M][N]) {
  for (long b = 0; b < H; b++)
    for (long i = 0; i < M; i++)
      for (long j = 0; j < N; j++)
        for (long k = 0; k < K; k++)
          S[b][i][j] += Q[b][i][k] * Kt[b][k][j];
}
)");
  std::printf("Pattern recognised: batched=%s, one mesh launch for all "
              "heads\n\n", kernel.options.batched ? "yes" : "no");

  // Functional run, verified per head against the reference.
  std::vector<double> q = randomMatrix(heads * seq * dim, 1);
  std::vector<double> kt = randomMatrix(heads * dim * seq, 2);
  std::vector<double> s(static_cast<std::size_t>(heads * seq * seq), 0.0);
  std::vector<double> expected = s;

  GemmProblem problem{seq, seq, dim, heads, 1.0, 0.0};
  sw::rt::RunOutcome run =
      runGemmFunctional(kernel, compiler.arch(), problem, q, kt, s);
  sw::kernel::referenceBatchedGemm(expected.data(), q.data(), kt.data(),
                                   heads, seq, seq, dim, 1.0, 0.0);
  const double err = sw::kernel::maxAbsDiff(s.data(), expected.data(),
                                            heads * seq * seq);
  std::printf("Functional check over all heads: max |error| = %g (%s)\n",
              err, err == 0.0 ? "bit-exact" : "MISMATCH");
  std::printf("Simulated mesh time: %.3f ms (%.1f model GFLOPS)\n\n",
              run.seconds * 1e3, run.gflops);

  // Scale study: our single-launch batched kernel vs the per-head library.
  sw::xmath::XMathModel xm(compiler.arch());
  std::printf("%-28s %12s %12s %9s\n", "workload", "ours GF", "xMath GF",
              "speedup");
  for (auto [b, m, n, k] :
       {std::array<std::int64_t, 4>{8, 512, 512, 256},
        std::array<std::int64_t, 4>{16, 1024, 1024, 512},
        std::array<std::int64_t, 4>{16, 2048, 2048, 6144},
        std::array<std::int64_t, 4>{4, 4096, 4096, 15360}}) {
    GemmProblem p{m, n, k, b};
    const double ours =
        estimateGemm(kernel, compiler.arch(), p).gflops;
    const double flops = 2.0 * m * n * k * static_cast<double>(b);
    const double lib = flops / xm.batchedGemmSeconds(b, m, n, k) / 1e9;
    std::printf("batch %2ld of %4ldx%4ldx%5ld  %12.1f %12.1f %8.2fx\n",
                (long)b, (long)m, (long)n, (long)k, ours, lib, ours / lib);
  }
  return err == 0.0 ? 0 : 1;
}
