// Native JIT engine vs the interpreters: the same compiled kernel run
// functionally through the tree-walk reference, the lowered plan, and the
// dlopen'd native object (src/jit).  The native engine's first use pays a
// one-time host-compiler invocation (printed separately); the timed cases
// run against a warm object cache, which is the serving steady state.
//
// Simulated GFLOPS are meaningless for the native engine (it measures
// wall clock, not the timing model), so the headline metric here is
// host wall time per functional run — the quantity the JIT exists to
// shrink.  PerfReport JSONs are exported only for the plan-engine cases:
// their simulated GFLOPS are host-invariant and safe to pin in the
// trajectory, a wall-clock-derived number is not.
#include <chrono>

#include "bench_common.h"
#include "jit/native_engine.h"

namespace {

using sw::core::CodegenOptions;
using sw::core::CompiledKernel;
using sw::core::FunctionalRunConfig;
using sw::core::GemmProblem;

/// Shared compiles: the default asm kernel and its edge-tile sibling.
struct NativeSetup {
  sw::core::SwGemmCompiler compiler;
  CompiledKernel kernel;
  CompiledKernel edgeKernel;
  std::string jitCacheDir;

  static CompiledKernel makeEdge(const sw::core::SwGemmCompiler& c) {
    CodegenOptions options;
    options.edgeTiles = true;
    return c.compile(options);
  }

  NativeSetup()
      : kernel(compiler.compile(CodegenOptions{})),
        edgeKernel(makeEdge(compiler)) {
    std::error_code ec;
    std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
    if (ec) tmp = "/tmp";
    jitCacheDir = (tmp / "swbench-jit-cache").string();
  }
};

NativeSetup& setup() {
  static NativeSetup s;
  return s;
}

sw::rt::RunOutcome runOnce(const CompiledKernel& kernel,
                           sw::rt::ExecEngine engine, std::int64_t m,
                           std::int64_t n, std::int64_t k) {
  std::vector<double> a(static_cast<std::size_t>(m * k), 0.5);
  std::vector<double> b(static_cast<std::size_t>(k * n), 0.25);
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  GemmProblem problem{m, n, k, 1, 1.0, 0.0};
  FunctionalRunConfig config;
  config.engine = engine;
  config.jitCacheDir = setup().jitCacheDir;
  return runGemmFunctional(kernel, setup().compiler.arch(), problem, a, b, c,
                           config);
}

void benchEngine(benchmark::State& state, const CompiledKernel& kernel,
                 sw::rt::ExecEngine engine, std::int64_t m, std::int64_t n,
                 std::int64_t k, const char* reportCase) {
  sw::rt::RunOutcome outcome;
  for (auto _ : state) {
    outcome = runOnce(kernel, engine, m, n, k);
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["ukernel_flops"] =
      benchmark::Counter(outcome.counters.flops);
  state.counters["dma_messages"] =
      benchmark::Counter(static_cast<double>(outcome.counters.dmaMessages));
  state.counters["jit_cache_hit"] =
      benchmark::Counter(outcome.jitCacheHit ? 1.0 : 0.0);
  if (reportCase != nullptr) {
    sw::bench::exportRunCounters(state, outcome, setup().compiler.arch());
    sw::bench::exportCaseReport(reportCase, outcome);
  }
}

/// Best-of-`reps` wall seconds per engine, measured round-robin (engine A,
/// B, C, then A again...) so slow drift on a shared host biases no single
/// engine's number.
std::vector<double> bestOfSecondsInterleaved(
    int reps, const CompiledKernel& kernel,
    const std::vector<sw::rt::ExecEngine>& engines, std::int64_t m,
    std::int64_t n, std::int64_t k) {
  std::vector<double> best(engines.size(), 1e30);
  for (int r = 0; r < reps; ++r) {
    for (std::size_t e = 0; e < engines.size(); ++e) {
      const auto start = std::chrono::steady_clock::now();
      sw::rt::RunOutcome outcome = runOnce(kernel, engines[e], m, n, k);
      benchmark::DoNotOptimize(&outcome);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      best[e] = std::min(best[e], elapsed.count());
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  // stderr, so `--benchmark_format=json` on stdout stays machine-parsable.
  std::fprintf(stderr,
               "Native JIT engine vs interpreters, kernel '%s', functional "
               "mesh runs (JIT cache: %s).\n",
               setup().kernel.program.name.c_str(),
               setup().jitCacheDir.c_str());

  // One-time cost: the first native run invokes the host compiler (or
  // probes the persistent cache when an earlier bench run left one).
  {
    const auto start = std::chrono::steady_clock::now();
    const sw::rt::RunOutcome first =
        runOnce(setup().kernel, sw::rt::ExecEngine::kNative, 128, 128, 128);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    std::fprintf(stderr, "native first use: %.1f ms (%s), engine=%s\n",
                 elapsed.count() * 1e3,
                 first.jitCacheHit ? "persistent-cache hit" : "jit compile",
                 first.engine.c_str());
    if (first.engine != "native") {
      std::fprintf(stderr,
                   "native engine unavailable on this host (degraded to "
                   "%s); interpreter-only numbers follow\n",
                   first.engine.c_str());
    }
  }
  runOnce(setup().edgeKernel, sw::rt::ExecEngine::kNative, 100, 100, 100);

  // Headline: warm-cache best-of-5 wall time per engine, the hot-path
  // quantity the acceptance bar measures (native >= plan means the native
  // run must not be slower).  The padded 128^3 case is compute-bound (both
  // engines execute the same real flops), so native and plan converge
  // there; the edge case isolates the interpreter dispatch the JIT
  // removes.
  const std::vector<double> big = bestOfSecondsInterleaved(
      5, setup().kernel,
      {sw::rt::ExecEngine::kTreeWalk, sw::rt::ExecEngine::kPlan,
       sw::rt::ExecEngine::kNative},
      128, 128, 128);
  std::fprintf(stderr,
               "functional 128^3 best-of-5: tree-walk %.2f ms, plan %.2f "
               "ms, native %.2f ms (native %.2fx vs plan, %.2fx vs tree)\n",
               big[0] * 1e3, big[1] * 1e3, big[2] * 1e3, big[1] / big[2],
               big[0] / big[2]);
  const std::vector<double> edge = bestOfSecondsInterleaved(
      5, setup().edgeKernel,
      {sw::rt::ExecEngine::kPlan, sw::rt::ExecEngine::kNative}, 100, 100,
      100);
  std::fprintf(stderr,
               "functional edge 100^3 best-of-5: plan %.2f ms, native %.2f "
               "ms (native %.2fx vs plan)\n\n",
               edge[0] * 1e3, edge[1] * 1e3, edge[0] / edge[1]);

  benchmark::RegisterBenchmark(
      "NativeEngine/functional_tree_walk", benchEngine, setup().kernel,
      sw::rt::ExecEngine::kTreeWalk, 128, 128, 128, nullptr);
  benchmark::RegisterBenchmark(
      "NativeEngine/functional_plan", benchEngine, setup().kernel,
      sw::rt::ExecEngine::kPlan, 128, 128, 128, "NativeEngine_128_plan");
  benchmark::RegisterBenchmark(
      "NativeEngine/functional_native", benchEngine, setup().kernel,
      sw::rt::ExecEngine::kNative, 128, 128, 128, nullptr);
  benchmark::RegisterBenchmark(
      "NativeEngine/edge_functional_plan", benchEngine, setup().edgeKernel,
      sw::rt::ExecEngine::kPlan, 100, 100, 100,
      "NativeEngine_edge100_plan");
  benchmark::RegisterBenchmark(
      "NativeEngine/edge_functional_native", benchEngine, setup().edgeKernel,
      sw::rt::ExecEngine::kNative, 100, 100, 100, nullptr);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
