// Kernel-service benchmark: what the cache and the batch thread pool buy.
//
// Prints a serving-latency table first (cold pipeline run vs warm
// memory/disk hits, sequential vs pooled batch), then registers
// google-benchmark cases whose counters carry the same quantities
// ("cold_ms", "warm_ms", "speedup", "cache_hit_rate") so CI harnesses can
// track them.  Targets: a warm hit ≥ 10x faster than a cold compile, and a
// 16-request mixed batch ≥ 4x faster on an 8-thread pool than sequential
// (given ≥ 8 hardware threads; the table prints the host's concurrency so
// a capped result is interpretable) — with byte-identical kernels either
// way.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/kernel_service.h"

namespace sw::bench {
namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// 16 distinct option variants the SPM comfortably fits: tiles crossed
/// with micro-kernel / pipelining / strip-mining toggles.
std::vector<core::CodegenOptions> mixedBatch() {
  std::vector<core::CodegenOptions> requests;
  for (int i = 0; i < 16; ++i) {
    core::CodegenOptions options;
    options.tileM = std::int64_t{16} << (i % 3);
    options.tileN = options.tileM;
    options.tileK = (i / 3) % 2 == 0 ? 32 : 16;
    options.useAsm = (i / 6) % 2 == 0;
    if (i >= 12) options.stripFactor = 4;
    requests.push_back(options);
  }
  return requests;
}

service::KernelService makeService(int threads,
                                   const std::string& cacheDir = {}) {
  service::KernelServiceConfig config;
  config.threads = threads;
  config.cacheDir = cacheDir;
  return service::KernelService(sunway::ArchConfig{}, config);
}

double batchSeconds(int threads, const std::vector<core::CodegenOptions>& rq,
                    std::vector<core::CompiledKernel>* kernels = nullptr) {
  service::KernelService service = makeService(threads);
  const double start = nowSeconds();
  const auto results = service.compileBatch(rq);
  const double elapsed = nowSeconds() - start;
  if (kernels != nullptr)
    for (const auto& r : results)
      if (r.kernel != nullptr) kernels->push_back(*r.kernel);
  return elapsed;
}

void printServingTable() {
  const core::CodegenOptions options;  // the default (paper) kernel

  // Cold: a fresh service, nothing cached anywhere.
  service::KernelService service = makeService(1);
  double t0 = nowSeconds();
  service.compile(options);
  const double coldMs = (nowSeconds() - t0) * 1e3;

  // Warm: the same key again, served from the in-memory LRU.
  t0 = nowSeconds();
  for (int i = 0; i < 100; ++i) service.compile(options);
  const double warmMs = (nowSeconds() - t0) * 1e3 / 100.0;

  // Disk: a new service over a populated cache directory (new-process
  // stand-in), memory tier empty.
  const std::string cacheDir =
      (std::filesystem::temp_directory_path() / "swk_bench_cache").string();
  std::filesystem::remove_all(cacheDir);
  makeService(1, cacheDir).compile(options);
  service::KernelService diskService = makeService(1, cacheDir);
  t0 = nowSeconds();
  diskService.compile(options);
  const double diskMs = (nowSeconds() - t0) * 1e3;
  std::filesystem::remove_all(cacheDir);

  // Batch: 16 mixed shapes, sequential vs 8-thread pool, each from cold.
  const std::vector<core::CodegenOptions> requests = mixedBatch();
  std::vector<core::CompiledKernel> sequentialKernels, pooledKernels;
  const double seqMs = batchSeconds(1, requests, &sequentialKernels) * 1e3;
  const double poolMs = batchSeconds(8, requests, &pooledKernels) * 1e3;
  bool identical = sequentialKernels.size() == pooledKernels.size();
  for (std::size_t i = 0; identical && i < sequentialKernels.size(); ++i)
    identical = sequentialKernels[i].cpeSource == pooledKernels[i].cpeSource &&
                sequentialKernels[i].mpeSource == pooledKernels[i].mpeSource;

  std::printf("Kernel service: serving latency per request\n");
  printRule(62);
  std::printf("%-34s %12s %12s\n", "path", "ms/request", "speedup");
  std::printf("%-34s %12.3f %12s\n", "cold compile (full pipeline)", coldMs,
              "1x");
  std::printf("%-34s %12.4f %11.0fx\n", "warm hit (in-memory LRU)", warmMs,
              coldMs / warmMs);
  std::printf("%-34s %12.3f %11.1fx\n", "disk hit (persistent cache)", diskMs,
              coldMs / diskMs);
  printRule(62);
  std::printf("batch of %zu mixed shapes (%u hardware threads available):\n",
              requests.size(), std::thread::hardware_concurrency());
  std::printf("%-34s %12.3f %12s\n", "  sequential (1 thread)", seqMs, "1x");
  std::printf("%-34s %12.3f %11.1fx   kernels byte-identical: %s\n",
              "  pooled (8 threads)", poolMs, seqMs / poolMs,
              identical ? "yes" : "NO");
  std::printf("\n");
}

void BM_ColdCompile(benchmark::State& state) {
  const core::CodegenOptions options;
  for (auto _ : state) {
    service::KernelService service = makeService(1);
    benchmark::DoNotOptimize(service.compile(options));
  }
}
BENCHMARK(BM_ColdCompile)->Unit(benchmark::kMillisecond);

void BM_WarmCompile(benchmark::State& state) {
  const core::CodegenOptions options;
  service::KernelService service = makeService(1);
  double t0 = nowSeconds();
  service.compile(options);  // populate
  const double coldMs = (nowSeconds() - t0) * 1e3;
  t0 = nowSeconds();
  for (auto _ : state) benchmark::DoNotOptimize(service.compile(options));
  const double warmMs =
      (nowSeconds() - t0) * 1e3 / static_cast<double>(state.iterations());
  state.counters["cache_hit_rate"] = service.stats().hitRate();
  state.counters["cold_ms"] = coldMs;
  state.counters["warm_ms"] = warmMs;
  state.counters["speedup"] = warmMs > 0.0 ? coldMs / warmMs : 0.0;
}
BENCHMARK(BM_WarmCompile)->Unit(benchmark::kMicrosecond);

void BM_DiskHit(benchmark::State& state) {
  const core::CodegenOptions options;
  const std::string cacheDir =
      (std::filesystem::temp_directory_path() / "swk_bench_disk").string();
  std::filesystem::remove_all(cacheDir);
  makeService(1, cacheDir).compile(options);  // populate the disk tier
  for (auto _ : state) {
    service::KernelService service = makeService(1, cacheDir);
    benchmark::DoNotOptimize(service.compile(options));
  }
  std::filesystem::remove_all(cacheDir);
}
BENCHMARK(BM_DiskHit)->Unit(benchmark::kMillisecond);

void BM_Batch16(benchmark::State& state) {
  const std::vector<core::CodegenOptions> requests = mixedBatch();
  const int threads = static_cast<int>(state.range(0));
  double hitRate = 0.0;
  for (auto _ : state) {
    service::KernelService service = makeService(threads);
    const auto results = service.compileBatch(requests);
    benchmark::DoNotOptimize(results);
    hitRate = service.stats().hitRate();
  }
  state.counters["threads"] = threads;
  state.counters["hardware_threads"] = std::thread::hardware_concurrency();
  state.counters["cache_hit_rate"] = hitRate;
}
BENCHMARK(BM_Batch16)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printServingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
