// Shared helpers for the figure-reproduction benchmarks.
//
// Every bench binary prints the paper-style table first (the rows/series
// of the corresponding figure), then registers google-benchmark cases so
// the harness also measures the host-side cost of the timing simulation.
// Simulated performance is reported through benchmark counters
// ("sim_gflops", "pct_peak"); wall time of a case is the cost of running
// the timing model itself, not of the simulated machine.
#pragma once

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "xmath/xmath.h"

namespace sw::bench {

struct Shape {
  std::int64_t m, n, k;
  [[nodiscard]] std::string label() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%ldx%ldx%ld", static_cast<long>(m),
                  static_cast<long>(n), static_cast<long>(k));
    return buf;
  }
};

/// Compiles each optimisation level once and serves cached kernels.
class KernelCache {
 public:
  const core::CompiledKernel& get(const core::CodegenOptions& options) {
    const std::string key = keyOf(options);
    auto it = cache_.find(key);
    if (it == cache_.end())
      it = cache_.emplace(key, compiler_.compile(options)).first;
    return it->second;
  }

  [[nodiscard]] const sunway::ArchConfig& arch() const {
    return compiler_.arch();
  }

  double gflops(const core::CodegenOptions& options, const Shape& shape,
                std::int64_t batch = 1) {
    return estimate(options, shape, batch).gflops;
  }

  rt::RunOutcome estimate(const core::CodegenOptions& options,
                          const Shape& shape, std::int64_t batch = 1) {
    core::GemmProblem problem{shape.m, shape.n, shape.k, batch};
    return core::estimateGemm(get(options), arch(), problem);
  }

 private:
  static std::string keyOf(const core::CodegenOptions& o) {
    return std::string(o.useAsm ? "a" : "-") + (o.useRma ? "r" : "-") +
           (o.hideLatency ? "h" : "-") + (o.batched ? "b" : "-") +
           std::to_string(static_cast<int>(o.fusion)) + "/" +
           std::to_string(o.tileM) + "x" + std::to_string(o.tileN) + "x" +
           std::to_string(o.tileK);
  }

  core::SwGemmCompiler compiler_;
  std::map<std::string, core::CompiledKernel> cache_;
};

inline core::CodegenOptions variantOptions(bool useAsm, bool useRma,
                                           bool hide) {
  core::CodegenOptions options;
  options.useAsm = useAsm;
  options.useRma = useRma;
  options.hideLatency = hide;
  return options;
}

/// The paper's four breakdown levels (Fig.13) in order.
inline const std::vector<std::pair<const char*, core::CodegenOptions>>&
breakdownVariants() {
  static const std::vector<std::pair<const char*, core::CodegenOptions>>
      variants = {
          {"baseline(DMA)", variantOptions(false, false, false)},
          {"+asm", variantOptions(true, false, false)},
          {"+RMA", variantOptions(true, true, false)},
          {"+hiding", variantOptions(true, true, true)},
      };
  return variants;
}

inline void printRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Publishes the simulated-run metrics of an outcome as benchmark counters
/// so `--benchmark_format=json` carries the observability gauges next to
/// "sim_gflops" (overlap/stall/occupancy percentages and the SPM
/// high-water mark in KB).
inline void exportRunCounters(benchmark::State& state,
                              const rt::RunOutcome& outcome,
                              const sunway::ArchConfig& arch) {
  state.counters["sim_gflops"] = outcome.gflops;
  state.counters["pct_peak"] = 100.0 * outcome.gflops /
                               (arch.peakFlops() / 1e9);
  state.counters["overlap_pct"] = outcome.metrics.overlapPct;
  state.counters["stall_pct"] = outcome.metrics.stallPct;
  state.counters["compute_pct"] = outcome.metrics.computePct;
  state.counters["spm_high_water_kb"] =
      static_cast<double>(outcome.metrics.spmHighWaterBytes) / 1024.0;
  state.counters["ceiling_utilization"] =
      outcome.report.roofline.ceilingUtilization;
}

/// When $SWBENCH_REPORT_DIR is set, write the case's PerfReport JSON to
/// `<dir>/<sanitized case name>.json` so CI can archive per-case roofline
/// evidence and tools/perf_trajectory.py can append it to the trajectory.
/// `caseName` is passed explicitly: the installed google-benchmark State
/// exposes no name accessor, and the registration site knows it anyway.
inline void exportCaseReport(const std::string& caseName,
                             const rt::RunOutcome& outcome) {
  const char* dir = std::getenv("SWBENCH_REPORT_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::string file;
  file.reserve(caseName.size());
  for (const char c : caseName)
    file += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
             c == '.')
                ? c
                : '_';
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream out(std::filesystem::path(dir) / (file + ".json"));
  if (out) out << outcome.report.toJson() << "\n";
}

}  // namespace sw::bench
