// Ablation — memory-latency-hiding benefit as a function of K (§6.1/§8.1):
// the number of DMA overlaps is ceil(K/256) - 1 and the number of RMA
// overlaps per outer iteration is 7, so small K benefits little and the
// speedup saturates as K grows.  This reproduces the explanation the paper
// gives for the weak leftmost shapes of Fig.13.
#include "bench_common.h"

namespace sw::bench {
namespace {

void printTable() {
  KernelCache cache;
  const core::CodegenOptions with = variantOptions(true, true, true);
  const core::CodegenOptions without = variantOptions(true, true, false);

  std::printf("Ablation: latency-hiding speedup vs K (M = N = 4096)\n");
  printRule(110);
  std::printf("%8s %10s %12s %12s %10s %12s %12s %12s %12s\n", "K",
              "overlaps", "hidden", "unhidden", "speedup", "stall(hid)",
              "stall(unh)", "ovlp(hid)", "ovlp(unh)");
  printRule(110);
  for (std::int64_t k : {256, 512, 1024, 2048, 4096, 8192, 16384, 32768}) {
    const Shape shape{4096, 4096, k};
    auto fast = cache.estimate(with, shape);
    auto slow = cache.estimate(without, shape);
    std::printf(
        "%8ld %10ld %12.2f %12.2f %9.3fx %11.1f%% %11.1f%% %11.1f%% "
        "%11.1f%%\n",
        static_cast<long>(k), static_cast<long>(k / 256 - 1), fast.gflops,
        slow.gflops, fast.gflops / slow.gflops, fast.metrics.stallPct,
        slow.metrics.stallPct, fast.metrics.overlapPct,
        slow.metrics.overlapPct);
  }
  std::printf("\n(the speedup rises with the overlap count "
              "ceil(K/256) - 1 and saturates; the stall column shows the "
              "exposed communication latency the pipeline removes — "
              "paper §8.1/§6)\n\n");
}

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printTable();
  for (std::int64_t k : {256L, 1024L, 4096L, 16384L}) {
    for (bool hide : {true, false}) {
      const std::string caseName = "AblationOverlap/K" + std::to_string(k) +
                                   (hide ? "/hiding" : "/no-hiding");
      benchmark::RegisterBenchmark(
          caseName.c_str(), [caseName, k, hide](benchmark::State& state) {
            static sw::bench::KernelCache cache;
            sw::rt::RunOutcome outcome;
            for (auto _ : state)
              outcome =
                  cache.estimate(sw::bench::variantOptions(true, true, hide),
                                 sw::bench::Shape{4096, 4096, k});
            sw::bench::exportRunCounters(state, outcome, cache.arch());
            sw::bench::exportCaseReport(caseName, outcome);
          });
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
