// Extension — multi-core-group scaling (§2.1/§9 future work): SW26010Pro
// carries six core groups; this bench shards GEMM across them with the 2D
// block decomposition of core/sharded_gemm and reports the scaling curve
// under the shared-DDR contention model: each concurrent group streams at
// groupDdrBandwidth(g), so DMA-bound shapes scale sub-linearly while
// compute-bound shapes approach g×.  NoC block hand-off is charged per
// shard and shows up as "comm ms".
#include "bench_common.h"

#include "core/sharded_gemm.h"

namespace sw::bench {
namespace {

core::ShardedOutcome estimateGroups(KernelCache& cache, const Shape& shape,
                                    int groups) {
  const core::CompiledKernel& kernel =
      cache.get(variantOptions(true, true, true));
  core::ShardedConfig config;
  config.groups = groups;
  return core::estimateSharded(kernel, cache.arch(), config,
                               core::GemmProblem{shape.m, shape.n, shape.k});
}

void printTable() {
  KernelCache cache;
  const double peak = cache.arch().peakFlops() / 1e9;

  std::printf("Extension: multi-core-group sharded scaling (model peak "
              "%.1f GFLOPS per core group)\n", peak);
  printRule(96);
  std::printf("%-20s %7s %12s %12s %10s %8s %10s\n", "shape", "groups",
              "GFLOPS", "compute ms", "comm ms", "derate", "efficiency");
  printRule(96);
  for (const Shape& shape :
       {Shape{3072, 3072, 1024}, Shape{12288, 8192, 8192},
        Shape{30720, 16384, 16384}}) {
    for (const int groups : {1, 2, 3, 6}) {
      const core::ShardedOutcome outcome =
          estimateGroups(cache, shape, groups);
      std::printf("%-20s %7d %12.1f %12.3f %10.3f %8.2f %9.1f%%\n",
                  shape.label().c_str(), groups, outcome.gflops,
                  outcome.computeSeconds * 1e3,
                  outcome.communicationSeconds * 1e3,
                  outcome.contentionDerate,
                  100.0 * outcome.gflops / (groups * peak));
    }
    printRule(96);
  }
  std::printf("(six concurrent groups share the node DDR pool, so each "
              "streams at the derated bandwidth — DMA-bound shapes scale "
              "sub-linearly, which is exactly what the derate column "
              "explains; overlapping the NoC hand-off is the "
              "MPI-generation future work of §9)\n\n");
}

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printTable();
  for (const int groups : {1, 2, 3, 6}) {
    const std::string name = "ShardedGroups/g" + std::to_string(groups);
    benchmark::RegisterBenchmark(
        name.c_str(), [groups, name](benchmark::State& state) {
          static sw::bench::KernelCache cache;
          sw::core::ShardedOutcome outcome;
          for (auto _ : state)
            outcome = sw::bench::estimateGroups(
                cache, sw::bench::Shape{12288, 8192, 8192}, groups);
          state.counters["sim_gflops"] = outcome.gflops;
          state.counters["pct_peak"] =
              100.0 * outcome.gflops /
              (groups * cache.arch().peakFlops() / 1e9);
          state.counters["ddr_derate"] = outcome.contentionDerate;
          state.counters["comm_ms"] = outcome.communicationSeconds * 1e3;
          state.counters["ceiling_utilization"] =
              outcome.report.roofline.ceilingUtilization;
          sw::rt::RunOutcome reported;
          reported.seconds = outcome.seconds;
          reported.gflops = outcome.gflops;
          reported.counters = outcome.counters;
          reported.report = outcome.report;
          sw::bench::exportCaseReport(name, reported);
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
