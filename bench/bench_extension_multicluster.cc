// Extension — multi-core-group scaling (§2.1/§9 future work): SW26010Pro
// carries six core groups; this bench decomposes GEMM row-block-wise
// across them and reports the scaling curve, including where NoC operand
// distribution starts to bite (small problems).
#include "bench_common.h"

#include "core/multi_cluster.h"

namespace sw::bench {
namespace {

void printTable() {
  KernelCache cache;
  const core::CompiledKernel& kernel =
      cache.get(variantOptions(true, true, true));
  const double peak = cache.arch().peakFlops() / 1e9;

  std::printf("Extension: multi-core-group scaling (model peak %.1f "
              "GFLOPS per core group)\n", peak);
  printRule(86);
  std::printf("%-20s %9s %12s %12s %12s %10s\n", "shape", "clusters",
              "GFLOPS", "compute ms", "comm ms", "efficiency");
  printRule(86);
  for (const Shape& shape :
       {Shape{3072, 3072, 1024}, Shape{12288, 8192, 8192},
        Shape{30720, 16384, 16384}}) {
    for (int clusters : {1, 2, 3, 6}) {
      core::MultiClusterConfig config;
      config.clusters = clusters;
      core::MultiClusterOutcome outcome = core::estimateMultiCluster(
          kernel, cache.arch(), config,
          core::GemmProblem{shape.m, shape.n, shape.k});
      std::printf("%-20s %9d %12.1f %12.3f %12.3f %9.1f%%\n",
                  shape.label().c_str(), clusters, outcome.gflops,
                  outcome.computeSeconds * 1e3,
                  outcome.communicationSeconds * 1e3,
                  100.0 * outcome.gflops / (clusters * peak));
    }
    printRule(86);
  }
  std::printf("(per-cluster efficiency falls as the unoverlapped NoC "
              "distribution grows — the overlap is the MPI-generation "
              "future work of §9)\n\n");
}

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printTable();
  for (int clusters : {1, 6}) {
    benchmark::RegisterBenchmark(
        ("MultiCluster/c" + std::to_string(clusters)).c_str(),
        [clusters](benchmark::State& state) {
          static sw::bench::KernelCache cache;
          const sw::core::CompiledKernel& kernel =
              cache.get(sw::bench::variantOptions(true, true, true));
          sw::core::MultiClusterConfig config;
          config.clusters = clusters;
          double gflops = 0.0;
          for (auto _ : state)
            gflops = sw::core::estimateMultiCluster(
                         kernel, cache.arch(), config,
                         sw::core::GemmProblem{12288, 8192, 8192})
                         .gflops;
          state.counters["sim_gflops"] = gflops;
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
