// Soak benchmark: the admission frontend under sustained overload + chaos.
//
// Prints the SoakReport table of one large replay first (default one
// million requests, override with SWK_SOAK_REQUESTS): Zipfian-popular
// kernel catalog, rotating tenants with one deliberately under-provisioned
// quota, a bounded queue drained by a small worker pool, and a
// fault-injection plan running as chaos against periodically verified
// functional mesh runs.  Targets: shed rate > 0 (the quota and the bounded
// queue both bite), p99 queue wait bounded by the configured deadline, and
// zero wrong-answer completions.  Then registers google-benchmark cases
// whose counters ("throughput_rps", "shed_rate", "queue_wait_p99_ms",
// "wrong_answers") let CI harnesses track the same quantities.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_common.h"
#include "service/soak.h"
#include "sunway/fault.h"

namespace sw::bench {
namespace {

/// Transient, recoverable chaos: dropped and corrupted DMA replies plus
/// delayed RMA rounds, all probabilistic and seeded (deterministic).
constexpr const char* kChaosPlan =
    "dma-drop:rate=0.02;dma-corrupt:rate=0.01;rma-delay:rate=0.02:seconds=2e-6";

service::SoakConfig soakConfig(std::int64_t requests) {
  service::SoakConfig config;
  config.requests = requests;
  config.clientThreads = 4;
  config.clientWindow = 64;
  config.catalogSize = 24;
  config.deadlineSeconds = 0.25;
  config.verifyEvery = 5000;
  config.chaosPlan = std::make_shared<sunway::FaultPlan>(
      sunway::FaultPlan::parse(kChaosPlan));
  config.admission.maxQueueDepth = 128;
  config.admission.workers = 4;
  // tenant-c is deliberately under-provisioned so quota shedding is
  // exercised even when cache hits make every request cheap.
  config.admission.tenantQuotas["tenant-c"] =
      service::TenantQuota{/*burst=*/200.0, /*refillPerSecond=*/500.0};
  return config;
}

void printSoakTable() {
  std::int64_t requests = 1'000'000;
  if (const char* env = std::getenv("SWK_SOAK_REQUESTS"))
    requests = std::atoll(env);
  service::KernelService service;
  const service::SoakReport report =
      service::runSoak(service, soakConfig(requests));
  std::printf("Soak: admission frontend under overload + chaos\n");
  printRule(72);
  std::printf("%s", report.toText().c_str());
  printRule(72);
  std::printf("targets: shed rate > 0, queue-wait p99 <= %.0f ms, "
              "wrong answers == 0%s\n\n",
              report.deadlineMs,
              report.wrongAnswers == 0 ? "  [ok]" : "  [VIOLATED]");
}

void BM_Soak(benchmark::State& state) {
  service::KernelService service;
  service::SoakReport report;
  for (auto _ : state)
    report = service::runSoak(service, soakConfig(state.range(0)));
  state.counters["throughput_rps"] = report.throughputPerSecond;
  state.counters["shed_rate"] = report.shedRate;
  state.counters["hit_rate"] = report.hitRate;
  state.counters["queue_wait_p99_ms"] = report.queueWaitP99Ms;
  state.counters["latency_p99_ms"] = report.latencyP99Ms;
  state.counters["breaker_trips"] = static_cast<double>(report.breakerTrips);
  state.counters["wrong_answers"] = static_cast<double>(report.wrongAnswers);
}
BENCHMARK(BM_Soak)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printSoakTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
