// §8.5 — engineering cost: the paper's central productivity claim is that
// generating an efficient GEMM kernel takes seconds instead of months.
// This bench measures the real wall time of the full compilation pipeline
// (frontend parse + dependence analysis + schedule-tree transformations +
// code generation) for every kernel configuration.
#include "bench_common.h"
#include "frontend/pattern.h"

namespace {

constexpr const char* kGemmSource = R"(
void gemm(long M, long N, long K, double alpha, double beta,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      C[i][j] = beta * C[i][j];
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
)";

void benchCompileSpec(benchmark::State& state, sw::core::CodegenOptions opts) {
  sw::core::SwGemmCompiler compiler;
  for (auto _ : state) {
    sw::core::CompiledKernel kernel = compiler.compile(opts);
    benchmark::DoNotOptimize(kernel.cpeSource.data());
  }
}

void benchCompileFromSource(benchmark::State& state) {
  sw::core::SwGemmCompiler compiler;
  for (auto _ : state) {
    sw::core::CompiledKernel kernel = compiler.compileSource(kGemmSource);
    benchmark::DoNotOptimize(kernel.cpeSource.data());
  }
}

void benchFrontendOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto info = sw::frontend::analyzeGemmSource(kGemmSource);
    benchmark::DoNotOptimize(&info);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Engineering cost (§8.5): full code generation takes "
              "milliseconds here (the paper reports seconds, dominated by "
              "isl's ILP; manual libraries took months).\n\n");

  benchmark::RegisterBenchmark("Codegen/full_pipeline", benchCompileSpec,
                               sw::bench::variantOptions(true, true, true));
  benchmark::RegisterBenchmark("Codegen/no_latency_hiding", benchCompileSpec,
                               sw::bench::variantOptions(true, true, false));
  benchmark::RegisterBenchmark("Codegen/no_rma", benchCompileSpec,
                               sw::bench::variantOptions(true, false, false));
  {
    sw::core::CodegenOptions batched =
        sw::bench::variantOptions(true, true, true);
    batched.batched = true;
    benchmark::RegisterBenchmark("Codegen/batched", benchCompileSpec,
                                 batched);
  }
  {
    sw::core::CodegenOptions fused =
        sw::bench::variantOptions(true, true, true);
    fused.fusion = sw::core::FusionKind::kEpilogueRelu;
    benchmark::RegisterBenchmark("Codegen/fused_epilogue", benchCompileSpec,
                                 fused);
  }
  benchmark::RegisterBenchmark("Codegen/from_c_source",
                               benchCompileFromSource);
  benchmark::RegisterBenchmark("Codegen/frontend_and_dependence_analysis",
                               benchFrontendOnly);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
