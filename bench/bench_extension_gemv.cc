// Extension — GEMV generation (§9): the decomposition strategy adopted
// for the memory-bound matrix-vector product.  GEMV moves 8 bytes of A
// per 2 flops, so the ceiling is the DDR bandwidth (2/8 flop/byte x
// 36 GB/s = 9 GFLOPS on this model), not the compute peak; the bench
// shows how close the generated kernel gets and what the double-buffered
// pipeline contributes.
#include "bench_common.h"

#include "core/gemv.h"

namespace sw::bench {
namespace {

void printTable() {
  sunway::ArchConfig arch;
  core::CompiledGemv hidden = core::compileGemv(arch);
  core::GemvOptions plainOptions;
  plainOptions.hideLatency = false;
  core::CompiledGemv plain = core::compileGemv(arch, plainOptions);
  const double bwBound =
      arch.ddrBandwidthBytesPerSec / sizeof(double) * 2.0 / 1e9;

  std::printf("Extension: generated GEMV, bandwidth ceiling %.2f GFLOPS\n",
              bwBound);
  printRule(70);
  std::printf("%-18s %12s %12s %12s\n", "shape (MxK)", "pipelined",
              "unpipelined", "%% of BW");
  printRule(70);
  for (auto [m, k] : {std::pair<std::int64_t, std::int64_t>{4096, 4096},
                      {16384, 8192},
                      {65536, 16384},
                      {262144, 16384}}) {
    const core::GemvProblem problem{m, k};
    const double fast = core::estimateGemv(hidden, arch, problem).gflops;
    const double slow = core::estimateGemv(plain, arch, problem).gflops;
    std::printf("%7ldx%-9ld %12.3f %12.3f %11.1f%%\n", (long)m, (long)k,
                fast, slow, 100.0 * fast / bwBound);
  }
  std::printf("\n(GEMV is DMA-bound; the pipeline hides the compute, not "
              "the transfer — §9's \"easily adopted\" claim holds on the "
              "same substrate)\n\n");
}

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printTable();
  benchmark::RegisterBenchmark("Gemv/pipelined", [](benchmark::State& state) {
    sw::sunway::ArchConfig arch;
    static sw::core::CompiledGemv kernel = sw::core::compileGemv(arch);
    double gflops = 0.0;
    for (auto _ : state)
      gflops = sw::core::estimateGemv(kernel, arch,
                                      sw::core::GemvProblem{65536, 16384})
                   .gflops;
    state.counters["sim_gflops"] = gflops;
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
