// Hot-path execution engine: the tree-walking interpreter re-evaluates
// every affine expression against a string-keyed environment on each
// iteration of every simulated CPE; the lowered plan (runtime/plan.h)
// replaces that with dense frame slots, pooled expressions, and interned
// IDs.  This bench measures both engines on the same compiled kernel —
// timing-only (SymmetricCpeServices, pure interpreter cost) and functional
// (64-thread mesh) — plus the one-time cost of lowering itself.
#include <chrono>

#include "bench_common.h"
#include "core/pipeline.h"
#include "runtime/interpreter.h"
#include "runtime/plan.h"
#include "sunway/estimator.h"

namespace {

using sw::core::CodegenOptions;
using sw::core::CompiledKernel;
using sw::core::FunctionalRunConfig;
using sw::core::GemmProblem;
using sw::sunway::CpeCounters;

/// Shared compile: one kernel, one plan, one parameter binding.
struct HotPathSetup {
  sw::core::SwGemmCompiler compiler;
  CompiledKernel kernel;
  std::map<std::string, std::int64_t> params;

  HotPathSetup() : kernel(compiler.compile(CodegenOptions{})) {
    const sw::core::PaddedShape padded =
        sw::core::padShape(768, 768, 768, kernel.options, compiler.arch());
    params = sw::rt::bindParams(kernel.program, padded.m, padded.n, padded.k);
  }
};

HotPathSetup& setup() {
  static HotPathSetup s;
  return s;
}

CpeCounters runTimingOnly(bool usePlan) {
  sw::sunway::SymmetricCpeServices services(setup().compiler.arch());
  if (usePlan)
    sw::rt::runCpePlan(*setup().kernel.plan, setup().params,
                       sw::rt::ExecScalars{}, services);
  else
    sw::rt::runCpeProgram(setup().kernel.program, setup().params,
                          sw::rt::ExecScalars{}, services);
  return services.counters();
}

/// Observable interpreter-driven actions of one run: every one of these
/// required walking/decoding the program once.
double interpOps(const CpeCounters& c) {
  return static_cast<double>(c.dmaMessages + c.rmaBroadcastsSent + c.syncs +
                             c.microKernelCalls);
}

/// Affine evaluations per run (approximate: row+col per DMA/RMA issue;
/// loop-bound and guard evaluations come on top of this floor).
double affineEvals(const CpeCounters& c) {
  return 2.0 * static_cast<double>(c.dmaMessages + c.rmaBroadcastsSent);
}

void exportHotPathCounters(benchmark::State& state, const CpeCounters& c) {
  state.counters["interp_ops_per_s"] =
      benchmark::Counter(interpOps(c),
                         benchmark::Counter::kIsIterationInvariantRate);
  // value * 1e-9 with rate+invert flags yields elapsed-ns / evaluations.
  state.counters["ns_per_affine_eval"] = benchmark::Counter(
      affineEvals(c) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void benchTimingOnly(benchmark::State& state, bool usePlan) {
  CpeCounters counters;
  for (auto _ : state) {
    counters = runTimingOnly(usePlan);
    benchmark::DoNotOptimize(&counters);
  }
  exportHotPathCounters(state, counters);
}

void benchFunctional(benchmark::State& state, sw::rt::ExecEngine engine) {
  const std::int64_t m = 128, n = 128, k = 128;
  std::vector<double> a(static_cast<std::size_t>(m * k), 0.5);
  std::vector<double> b(static_cast<std::size_t>(k * n), 0.25);
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  GemmProblem problem{m, n, k, 1, 1.0, 0.0};
  FunctionalRunConfig config;
  config.engine = engine;
  sw::rt::RunOutcome outcome;
  for (auto _ : state) {
    outcome = runGemmFunctional(setup().kernel, setup().compiler.arch(),
                                problem, a, b, c, config);
    benchmark::DoNotOptimize(&outcome);
  }
  exportHotPathCounters(state, outcome.counters);
}

void benchLowering(benchmark::State& state) {
  for (auto _ : state) {
    auto plan = sw::rt::lowerToPlan(setup().kernel.program);
    benchmark::DoNotOptimize(plan.get());
  }
}

/// Direct best-of-N wall-clock comparison, printed before the harness runs
/// so the headline speedup lands in the log (and the README) verbatim.
double bestOfSeconds(int reps, bool usePlan) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    CpeCounters c = runTimingOnly(usePlan);
    benchmark::DoNotOptimize(&c);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  // stderr, so `--benchmark_format=json` on stdout stays machine-parsable.
  std::fprintf(stderr,
               "Interpreter hot path: tree-walk vs lowered plan, kernel '%s' "
               "at M=N=K=768 (timing-only) / 128 (functional).\n",
               setup().kernel.program.name.c_str());
  const double tree = bestOfSeconds(5, /*usePlan=*/false);
  const double plan = bestOfSeconds(5, /*usePlan=*/true);
  std::fprintf(stderr,
               "timing-only best-of-5: tree-walk %.3f ms, plan %.3f ms, "
               "speedup %.2fx\n\n",
               tree * 1e3, plan * 1e3, tree / plan);

  benchmark::RegisterBenchmark("HotPath/timing_tree_walk", benchTimingOnly,
                               false);
  benchmark::RegisterBenchmark("HotPath/timing_plan", benchTimingOnly, true);
  benchmark::RegisterBenchmark("HotPath/functional_tree_walk",
                               benchFunctional,
                               sw::rt::ExecEngine::kTreeWalk);
  benchmark::RegisterBenchmark("HotPath/functional_plan", benchFunctional,
                               sw::rt::ExecEngine::kPlan);
  benchmark::RegisterBenchmark("HotPath/lower_to_plan", benchLowering);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
