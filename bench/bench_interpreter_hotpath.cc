// Hot-path execution engine: the tree-walking interpreter re-evaluates
// every affine expression against a string-keyed environment on each
// iteration of every simulated CPE; the lowered plan (runtime/plan.h)
// replaces that with dense frame slots, pooled expressions, and interned
// IDs.  This bench measures both engines on the same compiled kernel —
// timing-only (SymmetricCpeServices, pure interpreter cost) and functional
// (64-thread mesh) — plus the one-time cost of lowering itself.
#include <chrono>

#include "bench_common.h"
#include "core/pipeline.h"
#include "runtime/interpreter.h"
#include "runtime/plan.h"
#include "sunway/estimator.h"

namespace {

using sw::core::CodegenOptions;
using sw::core::CompiledKernel;
using sw::core::FunctionalRunConfig;
using sw::core::GemmProblem;
using sw::sunway::CpeCounters;

/// Shared compile: one kernel, one plan, one parameter binding.
struct HotPathSetup {
  sw::core::SwGemmCompiler compiler;
  CompiledKernel kernel;
  std::map<std::string, std::int64_t> params;

  HotPathSetup() : kernel(compiler.compile(CodegenOptions{})) {
    const sw::core::PaddedShape padded =
        sw::core::padShape(768, 768, 768, kernel.options, compiler.arch());
    params = sw::rt::bindParams(kernel.program, padded.m, padded.n, padded.k);
  }
};

HotPathSetup& setup() {
  static HotPathSetup s;
  return s;
}

CpeCounters runTimingOnly(bool usePlan) {
  sw::sunway::SymmetricCpeServices services(setup().compiler.arch());
  if (usePlan)
    sw::rt::runCpePlan(*setup().kernel.plan, setup().params,
                       sw::rt::ExecScalars{}, services);
  else
    sw::rt::runCpeProgram(setup().kernel.program, setup().params,
                          sw::rt::ExecScalars{}, services);
  return services.counters();
}

/// Observable interpreter-driven actions of one run: every one of these
/// required walking/decoding the program once.
double interpOps(const CpeCounters& c) {
  return static_cast<double>(c.dmaMessages + c.rmaBroadcastsSent + c.syncs +
                             c.microKernelCalls);
}

/// Affine evaluations per run (approximate: row+col per DMA/RMA issue;
/// loop-bound and guard evaluations come on top of this floor).
double affineEvals(const CpeCounters& c) {
  return 2.0 * static_cast<double>(c.dmaMessages + c.rmaBroadcastsSent);
}

void exportHotPathCounters(benchmark::State& state, const CpeCounters& c) {
  state.counters["interp_ops_per_s"] =
      benchmark::Counter(interpOps(c),
                         benchmark::Counter::kIsIterationInvariantRate);
  // value * 1e-9 with rate+invert flags yields elapsed-ns / evaluations.
  state.counters["ns_per_affine_eval"] = benchmark::Counter(
      affineEvals(c) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void benchTimingOnly(benchmark::State& state, bool usePlan) {
  CpeCounters counters;
  for (auto _ : state) {
    counters = runTimingOnly(usePlan);
    benchmark::DoNotOptimize(&counters);
  }
  exportHotPathCounters(state, counters);
}

void benchFunctional(benchmark::State& state, sw::rt::ExecEngine engine) {
  const std::int64_t m = 128, n = 128, k = 128;
  std::vector<double> a(static_cast<std::size_t>(m * k), 0.5);
  std::vector<double> b(static_cast<std::size_t>(k * n), 0.25);
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  GemmProblem problem{m, n, k, 1, 1.0, 0.0};
  FunctionalRunConfig config;
  config.engine = engine;
  sw::rt::RunOutcome outcome;
  for (auto _ : state) {
    outcome = runGemmFunctional(setup().kernel, setup().compiler.arch(),
                                problem, a, b, c, config);
    benchmark::DoNotOptimize(&outcome);
  }
  exportHotPathCounters(state, outcome.counters);
}

/// §8.1 pad-tax comparison: one edge-tile kernel, run functionally on the
/// caller's unpadded arrays (edge) vs through zero-padded shadow arrays
/// (padded reference).  Exported counters make the tax visible: the edge
/// path must show strictly fewer simulated micro-kernel flops and zero
/// host pack/unpack bytes.
struct EdgeSetup {
  sw::core::SwGemmCompiler compiler;
  CompiledKernel kernel;

  static CompiledKernel makeKernel(const sw::core::SwGemmCompiler& c) {
    CodegenOptions options;
    options.edgeTiles = true;
    return c.compile(options);
  }
  EdgeSetup() : kernel(makeKernel(compiler)) {}
};

EdgeSetup& edgeSetup() {
  static EdgeSetup s;
  return s;
}

sw::rt::RunOutcome runPadMode(sw::core::PadMode mode, std::int64_t m,
                              std::int64_t n, std::int64_t k) {
  std::vector<double> a(static_cast<std::size_t>(m * k), 0.5);
  std::vector<double> b(static_cast<std::size_t>(k * n), 0.25);
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  GemmProblem problem{m, n, k, 1, 1.0, 0.0};
  FunctionalRunConfig config;
  config.padMode = mode;
  return runGemmFunctional(edgeSetup().kernel, edgeSetup().compiler.arch(),
                           problem, a, b, c, config);
}

void benchPadMode(benchmark::State& state, sw::core::PadMode mode) {
  const std::int64_t m = 100, n = 100, k = 100;
  sw::rt::RunOutcome outcome;
  for (auto _ : state) {
    outcome = runPadMode(mode, m, n, k);
    benchmark::DoNotOptimize(&outcome);
  }
  state.counters["ukernel_flops"] =
      benchmark::Counter(outcome.counters.flops);
  state.counters["host_copy_bytes"] =
      benchmark::Counter(static_cast<double>(outcome.hostCopyBytes));
  state.counters["sim_gflops"] = benchmark::Counter(outcome.gflops);
}

void benchLowering(benchmark::State& state) {
  for (auto _ : state) {
    auto plan = sw::rt::lowerToPlan(setup().kernel.program);
    benchmark::DoNotOptimize(plan.get());
  }
}

/// Direct best-of-N wall-clock comparison, printed before the harness runs
/// so the headline speedup lands in the log (and the README) verbatim.
double bestOfSeconds(int reps, bool usePlan) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    CpeCounters c = runTimingOnly(usePlan);
    benchmark::DoNotOptimize(&c);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  // stderr, so `--benchmark_format=json` on stdout stays machine-parsable.
  std::fprintf(stderr,
               "Interpreter hot path: tree-walk vs lowered plan, kernel '%s' "
               "at M=N=K=768 (timing-only) / 128 (functional).\n",
               setup().kernel.program.name.c_str());
  const double tree = bestOfSeconds(5, /*usePlan=*/false);
  const double plan = bestOfSeconds(5, /*usePlan=*/true);
  std::fprintf(stderr,
               "timing-only best-of-5: tree-walk %.3f ms, plan %.3f ms, "
               "speedup %.2fx\n\n",
               tree * 1e3, plan * 1e3, tree / plan);

  {
    // §8.1 pad tax at 100^3: the padded path rounds every dimension up to
    // the mesh grid and copies through shadow arrays; edge tiles do
    // neither.
    const sw::rt::RunOutcome edge =
        runPadMode(sw::core::PadMode::kEdge, 100, 100, 100);
    const sw::rt::RunOutcome padded =
        runPadMode(sw::core::PadMode::kPadded, 100, 100, 100);
    std::fprintf(stderr,
                 "pad tax, functional 100x100x100: edge %.3g uKernel flops "
                 "+ %lld host copy bytes vs padded %.3g flops + %lld bytes "
                 "(%.0fx flop inflation retired)\n",
                 edge.counters.flops,
                 static_cast<long long>(edge.hostCopyBytes),
                 padded.counters.flops,
                 static_cast<long long>(padded.hostCopyBytes),
                 padded.counters.flops / edge.counters.flops);
    // Paper-scale irregular depth on the timing model: K=1000 rounds up to
    // 1024, so even the symmetric per-CPE model pays the padded k-loop.
    GemmProblem irregular{12288, 12288, 1000, 1};
    const sw::rt::RunOutcome edgeEst = sw::core::estimateGemm(
        edgeSetup().kernel, edgeSetup().compiler.arch(), irregular);
    const sw::rt::RunOutcome paddedEst = sw::core::estimateGemm(
        setup().kernel, setup().compiler.arch(), irregular);
    std::fprintf(stderr,
                 "pad tax, estimated 12288x12288x1000: edge %.2f GFLOPS vs "
                 "padded %.2f GFLOPS (per-CPE flops %.3g vs %.3g)\n\n",
                 edgeEst.gflops, paddedEst.gflops, edgeEst.counters.flops,
                 paddedEst.counters.flops);
  }

  benchmark::RegisterBenchmark("HotPath/timing_tree_walk", benchTimingOnly,
                               false);
  benchmark::RegisterBenchmark("HotPath/timing_plan", benchTimingOnly, true);
  benchmark::RegisterBenchmark("HotPath/functional_tree_walk",
                               benchFunctional,
                               sw::rt::ExecEngine::kTreeWalk);
  benchmark::RegisterBenchmark("HotPath/functional_plan", benchFunctional,
                               sw::rt::ExecEngine::kPlan);
  benchmark::RegisterBenchmark("HotPath/lower_to_plan", benchLowering);
  benchmark::RegisterBenchmark("HotPath/pad_tax_edge", benchPadMode,
                               sw::core::PadMode::kEdge);
  benchmark::RegisterBenchmark("HotPath/pad_tax_padded", benchPadMode,
                               sw::core::PadMode::kPadded);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
