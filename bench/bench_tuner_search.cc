// Bench — the schedule autotuner (the search §3.1 argues against, built
// anyway now that candidates are cheap to evaluate).  Prints the two-stage
// search verdict for a paper-scale square shape and two edge shapes: at
// 1024^3 the search agrees with the analytical model's 64x64x32, on
// non-divisible shapes a smaller edge-tiled schedule beats the analytic
// default by avoiding the padding waste.  The google-benchmark cases
// measure the host-side search cost (the "tedious tuning overhead" the
// paper's analytical model avoids).
//
// With $SWBENCH_REPORT_DIR set, every mesh-validated candidate exports its
// PerfReport as case `TunerSearch_<shape>_<schedule>` so the trajectory
// carries per-candidate roofline evidence.
#include "bench_common.h"

#include "tuning/tuner.h"

namespace sw::bench {
namespace {

const std::vector<Shape>& tunedShapes() {
  static const std::vector<Shape> shapes = {
      {1024, 1024, 1024},  // paper-scale square: the asm contract wins
      {100, 100, 100},     // padding-dominated: edge tiles win
      {257, 63, 65},       // skewed primes: rectangular edge tiles win
  };
  return shapes;
}

/// Trimmed grid for bounded bench time and report count: the vendor point,
/// its power-of-two neighbourhood, valid strip factor only.
tuning::TunerConfig trimmedConfig() {
  tuning::TunerConfig config;
  config.space.tileMN = {16, 32, 64, 128};
  config.space.tileK = {32};
  config.space.stripFactors = {8};
  return config;
}

void printTable() {
  KernelCache cache;
  std::printf("Schedule autotuner: two-stage search, trimmed grid "
              "(estimator ranking + mesh validation of the top %d)\n",
              trimmedConfig().validateTopN);
  printRule(86);
  std::printf("%-14s %-22s %11s %11s %10s %9s\n", "shape", "winner",
              "est GFLOPS", "meas GFLOPS", "analytic", "search ms");
  printRule(86);
  for (const Shape& shape : tunedShapes()) {
    const tuning::ScheduleSearchResult result = tuning::searchSchedules(
        variantOptions(true, true, true), cache.arch(),
        core::GemmProblem{shape.m, shape.n, shape.k}, trimmedConfig());
    // candidates()[0] is the analytic default by construction.
    const tuning::CandidateResult& analytic = result.candidates().front();
    std::printf("%-14s %-22s %11.2f %11.2f %10.2f %9.1f\n",
                shape.label().c_str(), result.best().label().c_str(),
                result.best().estimatedGflops, result.best().measuredGflops,
                analytic.estimatedGflops, result.searchSeconds * 1e3);
    // Per-candidate roofline evidence: every mesh-validated candidate's
    // report goes to $SWBENCH_REPORT_DIR for the perf trajectory.
    for (const tuning::CandidateResult& c : result.candidates()) {
      if (!c.validated) continue;
      rt::RunOutcome carrier;
      carrier.report = c.report;
      exportCaseReport("TunerSearch_" + shape.label() + "_" + c.label(),
                       carrier);
    }
  }
  printRule(86);
  std::printf("the 1024^3 winner is the paper's analytical choice; the "
              "edge shapes beat it by skipping the padding tax\n\n");
}

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printTable();
  for (const sw::bench::Shape& shape : sw::bench::tunedShapes()) {
    benchmark::RegisterBenchmark(
        ("TunerSearch/" + shape.label()).c_str(),
        [shape](benchmark::State& state) {
          // Estimator-only per iteration: the measured cost is the
          // enumerate + compile + rank loop, the part that scales with
          // the grid.
          sw::tuning::TunerConfig config = sw::bench::trimmedConfig();
          config.validateTopN = 0;
          double best = 0.0;
          std::size_t candidates = 0;
          int feasible = 0;
          for (auto _ : state) {
            const sw::tuning::ScheduleSearchResult result =
                sw::tuning::searchSchedules(
                    sw::bench::variantOptions(true, true, true),
                    sw::sunway::ArchConfig{},
                    sw::core::GemmProblem{shape.m, shape.n, shape.k},
                    config);
            best = result.best().estimatedGflops;
            candidates = result.candidates().size();
            feasible = result.feasibleCount();
          }
          state.counters["sim_gflops"] = best;
          state.counters["candidates"] = static_cast<double>(candidates);
          state.counters["feasible"] = static_cast<double>(feasible);
        })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
