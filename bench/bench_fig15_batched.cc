// Fig.15 — batched GEMM, ours vs xMath (§8.3): four batch sizes (2, 4, 8,
// 16), six shapes each, K power-of-two or "not evenly".
//
// Paper reference points: ours averages ~1949.92 GFLOPS, xMath ~1603.26
// (1.30x); the batch dimension stays inside the generated CPE code (one
// mesh launch), while xMath restarts the mesh per batch element.
#include "bench_common.h"

namespace sw::bench {
namespace {

const std::vector<Shape>& batchedShapes() {
  // "The sizes of the k dimension are selected as powers of two or not
  // evenly" (§8.3): half the shapes hit xMath's strong power-of-two path,
  // half its weak one; the smallest shape exposes the per-element mesh
  // restarts.
  static const std::vector<Shape> shapes = {
      Shape{1024, 1024, 2048},   Shape{2048, 2048, 6144},
      Shape{2048, 2048, 8192},   Shape{8192, 8192, 12288},
      Shape{4096, 4096, 15360},  Shape{4096, 4096, 16384},
  };
  return shapes;
}

const std::vector<std::int64_t>& batchSizes() {
  static const std::vector<std::int64_t> sizes = {2, 4, 8, 16};
  return sizes;
}

void printTable() {
  KernelCache cache;
  xmath::XMathModel xm(cache.arch());
  const double peak = cache.arch().peakFlops() / 1e9;
  core::CodegenOptions ours = variantOptions(true, true, true);
  ours.batched = true;

  std::printf("Fig.15: batched GEMM (GFLOPS; model peak %.1f)\n", peak);
  printRule(72);
  std::printf("%-6s %-20s %10s %10s %10s\n", "batch", "shape", "ours",
              "xMath", "ours/xM");
  printRule(72);

  double sumOurs = 0.0, sumXm = 0.0, best = 0.0;
  int cases = 0;
  for (std::int64_t batch : batchSizes()) {
    for (const Shape& shape : batchedShapes()) {
      const double flops =
          2.0 * shape.m * shape.n * shape.k * static_cast<double>(batch);
      const double o = cache.gflops(ours, shape, batch);
      const double x =
          flops / xm.batchedGemmSeconds(batch, shape.m, shape.n, shape.k) /
          1e9;
      sumOurs += o;
      sumXm += x;
      best = std::max(best, o);
      ++cases;
      std::printf("%-6ld %-20s %10.2f %10.2f %9.2fx\n",
                  static_cast<long>(batch), shape.label().c_str(), o, x,
                  o / x);
    }
  }
  printRule(72);
  std::printf("%-27s %10.2f %10.2f %9.2fx\n", "mean",
              sumOurs / cases, sumXm / cases, sumOurs / sumXm);
  std::printf("\nours vs xMath: %.2fx (paper: 1.30x)\n", sumOurs / sumXm);
  std::printf("best ours: %.2f%% of peak (paper: 90.43%% at batch 2, "
              "4096x4096x16384)\n\n",
              100.0 * best / peak);
}

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printTable();
  for (std::int64_t batch : sw::bench::batchSizes()) {
    for (const sw::bench::Shape& shape : sw::bench::batchedShapes()) {
      benchmark::RegisterBenchmark(
          ("Fig15/ours/b" + std::to_string(batch) + "/" + shape.label())
              .c_str(),
          [shape, batch](benchmark::State& state) {
            static sw::bench::KernelCache cache;
            sw::core::CodegenOptions options =
                sw::bench::variantOptions(true, true, true);
            options.batched = true;
            double gflops = 0.0;
            for (auto _ : state)
              gflops = cache.gflops(options, shape, batch);
            state.counters["sim_gflops"] = gflops;
          });
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
