// Fig.14 — GEMM on 36 non-square shapes, ours vs xMath (§8.2).
//
// Paper reference points: ours averages ~1911 GFLOPS vs xMath ~1847;
// both peak at 4096x16384x16384 (90.03% / 93.53% of peak); xMath exceeds
// 93% whenever K = 16384 but collapses nine times — exactly the shapes
// with K = 15360 — down to 42.25% at 8192x8192x15360, where ours wins by
// ~59%; for power-of-two K ours trails xMath by a few percent.
#include "bench_common.h"

namespace sw::bench {
namespace {

const std::vector<Shape>& nonSquareShapes() {
  static const std::vector<Shape> shapes = [] {
    std::vector<Shape> s;
    for (std::int64_t m : {2048, 4096, 8192})
      for (std::int64_t n : {4096, 8192, 16384})
        for (std::int64_t k : {4096, 8192, 15360, 16384})
          s.push_back(Shape{m, n, k});
    return s;
  }();
  return shapes;
}

void printTable() {
  KernelCache cache;
  xmath::XMathModel xm(cache.arch());
  const double peak = cache.arch().peakFlops() / 1e9;
  const core::CodegenOptions ours = variantOptions(true, true, true);

  std::printf("Fig.14: GEMM, 36 non-square shapes (GFLOPS; model peak "
              "%.1f)\n", peak);
  printRule(76);
  std::printf("%-20s %10s %10s %10s %12s\n", "shape", "ours", "xMath",
              "ours/xM", "xM %%peak");
  printRule(76);

  double sumOurs = 0.0, sumXm = 0.0;
  double bestOurs = 0.0, bestXm = 0.0;
  int degradations = 0;
  double nonPow2Gain = 0.0;
  int nonPow2Count = 0;
  for (const Shape& shape : nonSquareShapes()) {
    const double o = cache.gflops(ours, shape);
    const double x = xm.gflops(shape.m, shape.n, shape.k);
    sumOurs += o;
    sumXm += x;
    bestOurs = std::max(bestOurs, o);
    bestXm = std::max(bestXm, x);
    if (x / peak < 0.70) ++degradations;
    if (shape.k == 15360) {
      nonPow2Gain += o / x;
      ++nonPow2Count;
    }
    std::printf("%-20s %10.2f %10.2f %9.2fx %11.1f%%\n",
                shape.label().c_str(), o, x, o / x, 100.0 * x / peak);
  }
  printRule(76);
  const double count = static_cast<double>(nonSquareShapes().size());
  std::printf("%-20s %10.2f %10.2f\n", "mean", sumOurs / count,
              sumXm / count);
  std::printf("\nours vs xMath overall: %+.2f%% (paper: +9.25%%)\n",
              (sumOurs / sumXm - 1.0) * 100.0);
  std::printf("best ours: %.2f%% of peak; best xMath: %.2f%% "
              "(paper: 90.03%% / 93.53%%)\n",
              100.0 * bestOurs / peak, 100.0 * bestXm / peak);
  std::printf("xMath degradations below 70%% of peak: %d (paper: nine)\n",
              degradations);
  std::printf("ours vs xMath on K = 15360 shapes: %+.2f%% "
              "(paper: +58.95%%)\n\n",
              (nonPow2Gain / nonPow2Count - 1.0) * 100.0);
}

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printTable();
  for (const sw::bench::Shape& shape : sw::bench::nonSquareShapes()) {
    benchmark::RegisterBenchmark(
        ("Fig14/ours/" + shape.label()).c_str(),
        [shape](benchmark::State& state) {
          static sw::bench::KernelCache cache;
          double gflops = 0.0;
          for (auto _ : state)
            gflops = cache.gflops(
                sw::bench::variantOptions(true, true, true), shape);
          state.counters["sim_gflops"] = gflops;
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
