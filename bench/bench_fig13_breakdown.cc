// Fig.13 — performance breakdown on square shapes: the four optimisation
// levels of §8.1 (DMA-only baseline, + assembly micro-kernel, + RMA
// broadcast, + memory latency hiding) next to the xMath library.
//
// Paper reference points: baseline ~84.89 GFLOPS flat; +asm 2.83x;
// +RMA 4.38x on top; +hiding 1.76x more (23.72x over baseline); the four
// leftmost (small-K) shapes stay under 1800 GFLOPS; xMath averages
// ~1746.97 and collapses on the large non-power-of-two cubes.
#include "bench_common.h"

namespace sw::bench {
namespace {

const std::vector<Shape>& squares() {
  static const std::vector<Shape> shapes = [] {
    std::vector<Shape> s;
    for (std::int64_t d : {1024, 1536, 2048, 2560, 3072, 3584, 4096, 5120,
                           6144, 7168, 7680, 8192, 10240, 15360})
      s.push_back(Shape{d, d, d});
    return s;
  }();
  return shapes;
}

void printTable() {
  KernelCache cache;
  xmath::XMathModel xm(cache.arch());
  const double peak = cache.arch().peakFlops() / 1e9;

  std::printf("Fig.13: GEMM performance breakdown, square shapes "
              "(GFLOPS; model peak %.1f)\n", peak);
  printRule(96);
  std::printf("%-18s %14s %10s %10s %10s %10s\n", "shape", "baseline(DMA)",
              "+asm", "+RMA", "+hiding", "xMath");
  printRule(96);

  std::vector<double> sums(5, 0.0);
  for (const Shape& shape : squares()) {
    std::vector<double> row;
    for (const auto& [label, options] : breakdownVariants())
      row.push_back(cache.gflops(options, shape));
    row.push_back(xm.gflops(shape.m, shape.n, shape.k));
    std::printf("%-18s %14.2f %10.2f %10.2f %10.2f %10.2f\n",
                shape.label().c_str(), row[0], row[1], row[2], row[3],
                row[4]);
    for (std::size_t i = 0; i < row.size(); ++i) sums[i] += row[i];
  }
  printRule(96);
  const double count = static_cast<double>(squares().size());
  std::printf("%-18s %14.2f %10.2f %10.2f %10.2f %10.2f\n", "mean",
              sums[0] / count, sums[1] / count, sums[2] / count,
              sums[3] / count, sums[4] / count);
  std::printf("\nstep factors: +asm %.2fx, +RMA %.2fx, +hiding %.2fx "
              "(paper: 2.83x, 4.38x, 1.76x)\n",
              sums[1] / sums[0], sums[2] / sums[1], sums[3] / sums[2]);
  std::printf("overall vs baseline: %.2fx (paper: 23.72x)\n",
              sums[3] / sums[0]);
  std::printf("ours vs xMath: %+.2f%% (paper: +9.62%% on squares)\n",
              (sums[3] / sums[4] - 1.0) * 100.0);
  std::printf("best shape fraction of peak: %.2f%% (paper: 90.14%%)\n\n",
              100.0 * cache.gflops(breakdownVariants()[3].second,
                                   squares().back()) /
                  peak);
}

void benchVariant(benchmark::State& state, const std::string& caseName,
                  const core::CodegenOptions& options, const Shape& shape) {
  static KernelCache cache;
  rt::RunOutcome outcome;
  for (auto _ : state) outcome = cache.estimate(options, shape);
  exportRunCounters(state, outcome, cache.arch());
  exportCaseReport(caseName, outcome);
}

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printTable();
  for (const auto& [label, options] : sw::bench::breakdownVariants()) {
    for (const sw::bench::Shape& shape : sw::bench::squares()) {
      const std::string caseName =
          std::string("Fig13/") + label + "/" + shape.label();
      benchmark::RegisterBenchmark(
          caseName.c_str(),
          [caseName, options = options, shape](benchmark::State& state) {
            sw::bench::benchVariant(state, caseName, options, shape);
          });
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
