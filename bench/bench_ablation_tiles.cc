// Ablation — the analytical tile-size model (§3.1): the paper adopts the
// micro-kernel shape 64x64x32 instead of auto-tuning.  This bench sweeps
// alternative tile shapes: larger tiles overflow the 256 KB SPM once
// double buffering multiplies the working set (§6.3), smaller tiles raise
// the DMA bytes-per-flop ratio and lose.  64x64x32 is the best feasible
// point, validating the analytical choice.
#include "bench_common.h"

#include "support/error.h"
#include "tuning/tuner.h"

namespace sw::bench {
namespace {

void printTable() {
  KernelCache cache;
  const Shape shape{4096, 4096, 4096};

  std::printf("Ablation: tile-shape sweep at %s (GFLOPS; SPM = 256 KB, "
              "double-buffered)\n", shape.label().c_str());
  printRule(64);
  std::printf("%-14s %12s %12s\n", "tile (MxNxK)", "SPM bytes", "GFLOPS");
  printRule(64);

  double best = 0.0;
  std::string bestTile;
  for (std::int64_t tm : {16, 32, 64, 128}) {
    for (std::int64_t tk : {16, 32, 64}) {
      core::CodegenOptions options = variantOptions(true, true, true);
      options.tileM = tm;
      options.tileN = tm;
      options.tileK = tk;
      const std::string label = std::to_string(tm) + "x" +
                                std::to_string(tm) + "x" +
                                std::to_string(tk);
      try {
        const core::CompiledKernel& kernel = cache.get(options);
        const double gflops = cache.gflops(options, shape);
        std::printf("%-14s %12ld %12.2f\n", label.c_str(),
                    static_cast<long>(kernel.program.spmBytesUsed()), gflops);
        if (gflops > best) {
          best = gflops;
          bestTile = label;
        }
      } catch (const sw::InputError& e) {
        std::printf("%-14s %12s %12s\n", label.c_str(), "overflow",
                    "(SPM)");
      }
    }
  }
  printRule(64);
  std::printf("best feasible tile: %s (%.2f GFLOPS) — the paper's "
              "analytical choice is 64x64x32\n\n",
              bestTile.c_str(), best);

  // The auto-tuner the analytical model replaces (§3.1): the two-stage
  // search (estimator ranking + mesh validation of the top candidates)
  // agrees with the model, at a measurable search cost.
  const tuning::ScheduleSearchResult tuned = tuning::searchSchedules(
      variantOptions(true, true, true), cache.arch(),
      core::GemmProblem{shape.m, shape.n, shape.k});
  std::printf("auto-tuner verdict: %s (%.2f GFLOPS estimated, %.2f "
              "measured) after %.1f ms of search; the analytical model "
              "needs none\n\n",
              tuned.best().label().c_str(), tuned.best().estimatedGflops,
              tuned.best().measuredGflops, tuned.searchSeconds * 1e3);
}

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printTable();
  for (std::int64_t tm : {32L, 64L}) {
    benchmark::RegisterBenchmark(
        ("AblationTiles/" + std::to_string(tm) + "x" + std::to_string(tm) +
         "x32")
            .c_str(),
        [tm](benchmark::State& state) {
          static sw::bench::KernelCache cache;
          sw::core::CodegenOptions options =
              sw::bench::variantOptions(true, true, true);
          options.tileM = tm;
          options.tileN = tm;
          double gflops = 0.0;
          for (auto _ : state)
            gflops =
                cache.gflops(options, sw::bench::Shape{4096, 4096, 4096});
          state.counters["sim_gflops"] = gflops;
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
