// Fig.16 — fusion with a prologue (quantization of A) and with an epilogue
// (activation of C), versus the unfused xMath-based implementation that
// runs the element-wise pass on the MPE (§8.4).
//
// Paper reference points: prologue fusion 1.26x on average (1709.81 vs
// 1436.46 GFLOPS), with the baseline occasionally winning on large-N
// shapes because fusion recomputes the quantization along j; epilogue
// fusion 2.11x steady (1818.24 vs 919.56); combined 1.67x.
#include "bench_common.h"

namespace sw::bench {
namespace {

const std::vector<Shape>& fusionShapes() {
  static const std::vector<Shape> shapes = {
      Shape{2048, 8192, 4096},    Shape{4096, 8192, 4096},
      Shape{4096, 16384, 4096},   Shape{4096, 16384, 8192},
      Shape{8192, 16384, 8192},   Shape{8192, 8192, 4096},
      Shape{10752, 10752, 10752}, Shape{4096, 16384, 16384},
  };
  return shapes;
}

struct FusionCase {
  const char* name;
  core::FusionKind kind;
  /// Elements of the unfused MPE pass: A (M*K) for the prologue, C (M*N)
  /// for the epilogue.
  std::int64_t elements(const Shape& s) const {
    return kind == core::FusionKind::kPrologueQuantize ? s.m * s.k
                                                       : s.m * s.n;
  }
};

void printOne(KernelCache& cache, const FusionCase& fusion, double* avgOurs,
              double* avgBase) {
  xmath::XMathModel xm(cache.arch());
  core::CodegenOptions ours = variantOptions(true, true, true);
  ours.fusion = fusion.kind;

  std::printf("Fig.16 (%s): fused vs xMath + MPE element-wise pass "
              "(GFLOPS)\n", fusion.name);
  printRule(72);
  std::printf("%-22s %10s %12s %10s\n", "shape", "fused", "xMath-based",
              "speedup");
  printRule(72);

  double sumOurs = 0.0, sumBase = 0.0;
  for (const Shape& shape : fusionShapes()) {
    const double flops = 2.0 * shape.m * shape.n * shape.k;
    const double o = cache.gflops(ours, shape);
    const double baseSeconds =
        xm.gemmSeconds(shape.m, shape.n, shape.k) +
        xm.mpeElementwiseSeconds(fusion.elements(shape));
    const double b = flops / baseSeconds / 1e9;
    sumOurs += o;
    sumBase += b;
    std::printf("%-22s %10.2f %12.2f %9.2fx\n", shape.label().c_str(), o, b,
                o / b);
  }
  printRule(72);
  const double count = static_cast<double>(fusionShapes().size());
  std::printf("%-22s %10.2f %12.2f %9.2fx\n\n", "mean", sumOurs / count,
              sumBase / count, sumOurs / sumBase);
  *avgOurs += sumOurs / count;
  *avgBase += sumBase / count;
}

void printTable() {
  KernelCache cache;
  double avgOurs = 0.0, avgBase = 0.0;
  printOne(cache,
           FusionCase{"prologue: quantize(A)",
                      core::FusionKind::kPrologueQuantize},
           &avgOurs, &avgBase);
  printOne(cache,
           FusionCase{"epilogue: relu(C)", core::FusionKind::kEpilogueRelu},
           &avgOurs, &avgBase);
  std::printf("combined fusion speedup: %.2fx (paper: 1.67x; per-pattern "
              "1.26x / 2.11x)\n\n",
              avgOurs / avgBase);
}

}  // namespace
}  // namespace sw::bench

int main(int argc, char** argv) {
  sw::bench::printTable();
  for (auto kind : {sw::core::FusionKind::kPrologueQuantize,
                    sw::core::FusionKind::kEpilogueRelu}) {
    const char* tag =
        kind == sw::core::FusionKind::kPrologueQuantize ? "prologue"
                                                        : "epilogue";
    for (const sw::bench::Shape& shape : sw::bench::fusionShapes()) {
      benchmark::RegisterBenchmark(
          (std::string("Fig16/") + tag + "/" + shape.label()).c_str(),
          [shape, kind](benchmark::State& state) {
            static sw::bench::KernelCache cache;
            sw::core::CodegenOptions options =
                sw::bench::variantOptions(true, true, true);
            options.fusion = kind;
            double gflops = 0.0;
            for (auto _ : state) gflops = cache.gflops(options, shape);
            state.counters["sim_gflops"] = gflops;
          });
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
