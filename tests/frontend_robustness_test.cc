// Robustness tests of the frontend on adversarial inputs: malformed
// syntax, near-miss GEMM patterns, and formatting variations the parser
// must tolerate.
#include <gtest/gtest.h>

#include "frontend/parser.h"
#include "frontend/pattern.h"
#include "support/error.h"

namespace sw::frontend {
namespace {

TEST(FrontendRobustness, ToleratesDenseFormatting) {
  GemmPatternInfo info = analyzeGemmSource(
      "void g(long M,long N,long K,double A[M][K],double B[K][N],"
      "double C[M][N]){for(long i=0;i<M;i++)for(long j=0;j<N;j++)"
      "for(long k=0;k<K;k++)C[i][j]+=A[i][k]*B[k][j];}");
  EXPECT_EQ(info.functionName, "g");
}

TEST(FrontendRobustness, ToleratesCommentsEverywhere) {
  GemmPatternInfo info = analyzeGemmSource(R"(
// outer comment
void /* inline */ g(long M, long N, long K, double A[M][K],
                    double B[K][N], double C[M][N]) {
  /* block
     comment */
  for (long i = 0; i < M; i++)     // row loop
    for (long j = 0; j < N; j++)   /* column loop */
      for (long k = 0; k < K; k++)
        C[i][j] += A[i][k] * B[k][j];  // the statement
}
)");
  EXPECT_EQ(info.arrayC, "C");
}

TEST(FrontendRobustness, AcceptsIntLoopVariables) {
  GemmPatternInfo info = analyzeGemmSource(R"(
void g(int M, int N, int K, double A[M][K], double B[K][N],
       double C[M][N]) {
  for (int i = 0; i < M; ++i)
    for (int j = 0; j < N; ++j)
      for (int k = 0; k < K; ++k)
        C[i][j] += A[i][k] * B[k][j];
}
)");
  EXPECT_EQ(info.paramM, "M");
}

TEST(FrontendRobustness, AlphaPositionIsFree) {
  // alpha can sit anywhere in the product.
  for (const char* product :
       {"alpha * A[i][k] * B[k][j]", "A[i][k] * alpha * B[k][j]",
        "A[i][k] * B[k][j] * alpha"}) {
    std::string source = std::string(R"(
void g(long M, long N, long K, double alpha, double A[M][K],
       double B[K][N], double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] = C[i][j] + )") +
                         product + ";\n}";
    GemmPatternInfo info = analyzeGemmSource(source);
    EXPECT_EQ(info.alphaVar, "alpha") << product;
  }
}

TEST(FrontendRobustness, RejectsTwoScalarFactors) {
  EXPECT_THROW(analyzeGemmSource(R"(
void g(long M, long N, long K, double a, double b, double A[M][K],
       double B[K][N], double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += a * b * A[i][k] * B[k][j];
}
)"),
               sw::InputError);
}

TEST(FrontendRobustness, RejectsWrongAccumulator) {
  // D on the left, C inside: not the self-accumulation form.
  EXPECT_THROW(analyzeGemmSource(R"(
void g(long M, long N, long K, double A[M][K], double B[K][N],
       double C[M][N], double D[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        D[i][j] = C[i][j] + A[i][k] * B[k][j];
}
)"),
               sw::InputError);
}

TEST(FrontendRobustness, RejectsDivisionInProduct) {
  EXPECT_THROW(analyzeGemmSource(R"(
void g(long M, long N, long K, double A[M][K], double B[K][N],
       double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += A[i][k] / B[k][j];
}
)"),
               sw::InputError);
}

TEST(FrontendRobustness, RejectsWrongLoopOrder) {
  // k outermost: not the canonical (i, j, k) order the decomposition maps
  // onto the mesh.
  EXPECT_THROW(analyzeGemmSource(R"(
void g(long M, long N, long K, double A[M][K], double B[K][N],
       double C[M][N]) {
  for (long k = 0; k < K; k++)
    for (long i = 0; i < M; i++)
      for (long j = 0; j < N; j++)
        C[i][j] += A[i][k] * B[k][j];
}
)"),
               sw::InputError);
}

TEST(FrontendRobustness, RejectsNonParameterBound) {
  // Triangular bounds parse, but semantic analysis requires rectangular
  // parameter bounds (the GEMM decomposition's precondition).
  EXPECT_THROW(analyzeGemmSource(R"(
void g(long M, double A[M][M]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < i; j++)
      A[i][j] += A[j][i];
}
)"),
               sw::InputError);
}

TEST(FrontendRobustness, RejectsUnterminatedComment) {
  EXPECT_THROW(parseFunction("void f(long N) { /* oops"), sw::InputError);
}

TEST(FrontendRobustness, RejectsMissingSemicolon) {
  EXPECT_THROW(parseFunction(R"(
void g(long N, double A[N][N]) {
  for (long i = 0; i < N; i++)
    for (long j = 0; j < N; j++)
      A[i][j] = A[i][j]
}
)"),
               sw::InputError);
}

TEST(FrontendRobustness, RejectsEpilogueOnWrongArray) {
  // relu applied to B, not to the GEMM output: no fusion pattern.
  EXPECT_THROW(analyzeGemmSource(R"(
void g(long M, long N, long K, double A[M][K], double B[K][N],
       double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      A[i][j] = relu(A[i][j]);
}
)"),
               sw::InputError);
}

TEST(FrontendRobustness, DiagnosticsCarryLineNumbers) {
  try {
    parseFunction("void f(long N) {\n  for (long i = 1; i < N; i++)\n}");
    FAIL() << "expected InputError";
  } catch (const sw::InputError& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

}  // namespace
}  // namespace sw::frontend
