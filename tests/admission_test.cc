// Admission-layer tests: token-bucket quotas, the circuit-breaker state
// machine, and the ServiceFrontend edge cases the overload design hinges
// on — an already-expired deadline rejected at enqueue, quota exhaustion
// surfacing a typed error naming the tenant, a low-priority flood never
// starving a high-priority arrival (displacement), deadline misses
// detected at dequeue, and breaker recovery through the half-open probe.
// Clocks are faked throughout so every deadline/cooldown is deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/compiler.h"
#include "core/pipeline.h"
#include "service/service_frontend.h"
#include "support/error.h"
#include "support/histogram.h"
#include "support/metrics.h"

namespace sw::service {
namespace {

/// Shared fake clock: tests advance it explicitly; the frontend's workers
/// read it through the ClockFn seam.
struct FakeClock {
  std::shared_ptr<std::atomic<double>> now =
      std::make_shared<std::atomic<double>>(0.0);

  ServiceFrontend::ClockFn fn() const {
    auto shared = now;
    return [shared] { return shared->load(); };
  }
  void advance(double seconds) {
    now->store(now->load() + seconds);
  }
};

core::CodegenOptions tileVariant(std::int64_t tileM, std::int64_t tileK = 32) {
  core::CodegenOptions options;
  options.tileM = tileM;
  options.tileK = tileK;
  return options;
}

/// Real compiles behind a gate the test opens, so requests pile up in the
/// admission queue deterministically; the serve order of tileM values is
/// recorded for priority-ordering assertions.
struct GatedCompiler {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::vector<std::int64_t> served;

  KernelService::CompileFn fn() {
    return [this](const core::CodegenOptions& options) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return open; });
        served.push_back(options.tileM);
      }
      return core::SwGemmCompiler().compile(options);
    };
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
};

/// Spin until the single worker has extracted the in-flight request, so
/// subsequent submits see a deterministic queue depth.
void waitForEmptyQueue(ServiceFrontend& frontend) {
  while (frontend.stats().queueDepth > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

OverloadKind kindOf(std::future<CompileResponse>& future) {
  try {
    future.get();
  } catch (const OverloadError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "future completed without an OverloadError";
  return OverloadKind::kShutdown;
}

TEST(TokenBucketTest, RefillsAtConfiguredRate) {
  TokenBucket bucket(TenantQuota{/*burst=*/2.0, /*refillPerSecond=*/1.0},
                     /*now=*/0.0);
  EXPECT_TRUE(bucket.tryAcquire(0.0));
  EXPECT_TRUE(bucket.tryAcquire(0.0));
  EXPECT_FALSE(bucket.tryAcquire(0.0));  // burst exhausted
  EXPECT_FALSE(bucket.tryAcquire(0.5));  // half a token is not one
  EXPECT_TRUE(bucket.tryAcquire(1.0));   // refilled
  // Refill caps at the burst size: a long idle stretch does not bank
  // unbounded tokens.
  EXPECT_TRUE(bucket.tryAcquire(100.0));
  EXPECT_TRUE(bucket.tryAcquire(100.0));
  EXPECT_FALSE(bucket.tryAcquire(100.0));
}

TEST(TenantQuotasTest, EvictsBucketsIdlePastRefillToBurstHorizon) {
  AdmissionConfig config;
  config.defaultQuota = TenantQuota{/*burst=*/4.0, /*refillPerSecond=*/1.0};
  // A non-refilling tenant can never be reconstructed from scratch, so its
  // bucket must survive every sweep.
  config.tenantQuotas["pinned"] =
      TenantQuota{/*burst=*/2.0, /*refillPerSecond=*/0.0};
  TenantQuotas quotas(config);

  // A soak's worth of one-shot tenant names must not grow the map forever.
  constexpr int kTenants = 10000;
  for (int i = 0; i < kTenants; ++i)
    EXPECT_TRUE(quotas.tryAcquire("tenant-" + std::to_string(i), 0.0));
  EXPECT_TRUE(quotas.tryAcquire("pinned", 0.0));
  EXPECT_EQ(quotas.bucketCount(), kTenants + 1u);

  // Horizon for the default quota is burst/refill = 4 s.  At t=3.9 the
  // buckets are not yet refilled to burst — nothing may be evicted.
  EXPECT_TRUE(quotas.tryAcquire("keepalive", 3.9));
  EXPECT_EQ(quotas.bucketCount(), kTenants + 2u);

  // Past the horizon every idle default bucket is back at full burst and
  // equivalent to a fresh one; only the recent tenant and the
  // non-refilling override survive the sweep.
  EXPECT_TRUE(quotas.tryAcquire("keepalive", 5.0));
  EXPECT_EQ(quotas.bucketCount(), 2u);

  // Semantics preserved: an evicted tenant re-admits at full burst,
  // exactly as its (fully refilled) bucket would have.
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(quotas.tryAcquire("tenant-0", 5.0)) << i;
  EXPECT_FALSE(quotas.tryAcquire("tenant-0", 5.0));

  // The pinned non-refilling bucket kept its spent-token state: it never
  // reaches the refill-to-burst horizon, so it was not recreated.
  EXPECT_TRUE(quotas.tryAcquire("pinned", 100.0));
  EXPECT_FALSE(quotas.tryAcquire("pinned", 100.0));  // 2-burst spent
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndProbesRecovery) {
  CircuitBreaker breaker("test", /*failureThreshold=*/3,
                         /*cooldownSeconds=*/10.0);
  EXPECT_EQ(breaker.state(0.0), CircuitBreaker::State::kClosed);

  breaker.recordFailure(0.0);
  breaker.recordFailure(0.0);
  // A success in between resets the consecutive count.
  breaker.recordSuccess(0.0);
  breaker.recordFailure(1.0);
  breaker.recordFailure(1.0);
  EXPECT_EQ(breaker.state(1.0), CircuitBreaker::State::kClosed);
  breaker.recordFailure(1.0);  // third consecutive: trips
  EXPECT_EQ(breaker.state(1.0), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);

  EXPECT_FALSE(breaker.allowRequest(5.0));  // still cooling down
  // Past the cooldown: exactly one caller claims the half-open probe.
  EXPECT_TRUE(breaker.allowRequest(12.0));
  EXPECT_EQ(breaker.state(12.0), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allowRequest(12.0));  // probe already in flight

  // Probe failure re-opens for another full cooldown.
  breaker.recordFailure(12.0);
  EXPECT_EQ(breaker.state(12.0), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allowRequest(13.0));
  EXPECT_TRUE(breaker.allowRequest(23.0));  // next probe
  breaker.recordSuccess(23.0);
  EXPECT_EQ(breaker.state(23.0), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allowRequest(23.0));
  EXPECT_EQ(breaker.trips(), 1);  // re-opening a probe is not a new trip
}

TEST(ServiceFrontendTest, ExpiredDeadlineRejectedAtEnqueue) {
  KernelService service;
  FakeClock clock;
  ServiceFrontend frontend(service, {}, clock.fn());

  RequestContext ctx;
  ctx.tenant = "impatient";
  ctx.deadlineSeconds = 0.0;  // already expired at enqueue
  try {
    frontend.submitCompile(core::CodegenOptions{}, ctx);
    FAIL() << "expired deadline was admitted";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.kind(), OverloadKind::kDeadlineExpired);
    EXPECT_EQ(e.tenant(), "impatient");
  }
  EXPECT_EQ(frontend.stats().shedDeadlineAtEnqueue, 1);
  EXPECT_EQ(service.stats().requests, 0);  // never reached the service
}

TEST(ServiceFrontendTest, QuotaExhaustionReturnsTypedErrorNamingTenant) {
  KernelService service;
  FakeClock clock;
  AdmissionConfig config;
  config.tenantQuotas["noisy"] =
      TenantQuota{/*burst=*/2.0, /*refillPerSecond=*/1.0};
  ServiceFrontend frontend(service, config, clock.fn());

  RequestContext noisy;
  noisy.tenant = "noisy";
  frontend.compile(core::CodegenOptions{}, noisy);
  frontend.compile(core::CodegenOptions{}, noisy);
  try {
    frontend.submitCompile(core::CodegenOptions{}, noisy);
    FAIL() << "third request should exceed the burst of 2";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.kind(), OverloadKind::kQuotaExhausted);
    EXPECT_EQ(e.tenant(), "noisy");
    EXPECT_NE(std::string(e.what()).find("noisy"), std::string::npos);
  }
  EXPECT_EQ(frontend.stats().shedQuota, 1);

  // Another tenant is untouched by the noisy one's exhaustion, and the
  // noisy tenant recovers once the bucket refills.
  RequestContext other;
  other.tenant = "quiet";
  EXPECT_NE(frontend.compile(core::CodegenOptions{}, other).kernel, nullptr);
  clock.advance(1.0);
  EXPECT_NE(frontend.compile(core::CodegenOptions{}, noisy).kernel, nullptr);
}

TEST(ServiceFrontendTest, LowPriorityFloodNeverStarvesHighPriority) {
  GatedCompiler gated;
  KernelService service(gated.fn(), sunway::ArchConfig{}, {});
  AdmissionConfig config;
  config.workers = 1;
  config.maxQueueDepth = 3;
  ServiceFrontend frontend(service, config);

  // The worker picks up the first request and blocks at the gate; three
  // more low-priority requests fill the queue.
  RequestContext low;
  std::vector<std::future<CompileResponse>> flood;
  flood.push_back(frontend.submitCompile(tileVariant(64), low));   // in worker
  waitForEmptyQueue(frontend);
  flood.push_back(frontend.submitCompile(tileVariant(32), low));
  flood.push_back(frontend.submitCompile(tileVariant(16), low));
  flood.push_back(frontend.submitCompile(tileVariant(64, 16), low));

  // A further low-priority arrival is shed — the queue is full and it
  // outranks nobody.
  EXPECT_THROW(frontend.submitCompile(tileVariant(32, 16), low),
               OverloadError);

  // A high-priority arrival is admitted by displacing the newest
  // low-priority entry, whose future fails with a typed error.
  RequestContext high;
  high.priority = 5;
  std::future<CompileResponse> urgent =
      frontend.submitCompile(tileVariant(16, 16), high);
  EXPECT_EQ(kindOf(flood[3]), OverloadKind::kQueueFull);
  EXPECT_EQ(frontend.stats().displaced, 1);

  gated.release();
  EXPECT_NE(urgent.get().kernel, nullptr);
  EXPECT_NE(flood[0].get().kernel, nullptr);
  EXPECT_NE(flood[1].get().kernel, nullptr);
  EXPECT_NE(flood[2].get().kernel, nullptr);

  // Serve order after the in-flight request: the high-priority arrival
  // jumped the two queued low-priority entries.
  ASSERT_EQ(gated.served.size(), 4u);
  EXPECT_EQ(gated.served[0], 64);  // was already in the worker
  EXPECT_EQ(gated.served[1], 16);  // high priority served next
  frontend.shutdown();
}

TEST(ServiceFrontendTest, DeadlineMissInQueueDetectedAtDequeue) {
  GatedCompiler gated;
  KernelService service(gated.fn(), sunway::ArchConfig{}, {});
  FakeClock clock;
  AdmissionConfig config;
  config.workers = 1;
  ServiceFrontend frontend(service, config, clock.fn());

  RequestContext blocker;
  std::future<CompileResponse> first =
      frontend.submitCompile(tileVariant(64), blocker);

  RequestContext deadlined;
  deadlined.tenant = "slow";
  deadlined.deadlineSeconds = 10.0;
  std::future<CompileResponse> queued =
      frontend.submitCompile(tileVariant(32), deadlined);

  clock.advance(60.0);  // the queued request's budget expires while waiting
  gated.release();

  EXPECT_EQ(kindOf(queued), OverloadKind::kDeadlineMiss);
  EXPECT_NE(first.get().kernel, nullptr);  // no deadline, still served
  EXPECT_EQ(frontend.stats().deadlineMisses, 1);
  EXPECT_GE(metrics::MetricsRegistry::global().get(
                "service.admission.deadline_miss"),
            1.0);
  frontend.shutdown();
}

TEST(ServiceFrontendTest, CompileBreakerFailsFastThenRecoversViaProbe) {
  std::atomic<bool> healthy{false};
  KernelService service(
      [&healthy](const core::CodegenOptions& options) {
        if (!healthy.load()) throw TransientError("compile backend down");
        return core::SwGemmCompiler().compile(options);
      },
      sunway::ArchConfig{}, {});
  FakeClock clock;
  AdmissionConfig config;
  config.workers = 1;
  config.breakerFailureThreshold = 2;
  config.breakerCooldownSeconds = 5.0;
  ServiceFrontend frontend(service, config, clock.fn());

  RequestContext ctx;
  // Two consecutive failures trip the compile breaker (failed compiles
  // are never cached, so distinct variants each reach the backend).
  EXPECT_THROW(frontend.compile(tileVariant(64), ctx), TransientError);
  EXPECT_THROW(frontend.compile(tileVariant(32), ctx), TransientError);
  EXPECT_EQ(frontend.breaker(ServiceFrontend::Domain::kCompile).trips(), 1);

  // While open, submits fail fast with a typed error — nothing queues.
  try {
    frontend.submitCompile(tileVariant(16), ctx);
    FAIL() << "open breaker admitted a compile";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.kind(), OverloadKind::kCircuitOpen);
  }
  EXPECT_GE(frontend.stats().breakerFastFails, 1);

  // After the cooldown the backend has recovered: the half-open probe
  // compiles successfully and the breaker closes for good.
  healthy.store(true);
  clock.advance(6.0);
  EXPECT_NE(frontend.compile(tileVariant(16), ctx).kernel, nullptr);
  EXPECT_EQ(frontend.breaker(ServiceFrontend::Domain::kCompile).state(
                clock.fn()()),
            CircuitBreaker::State::kClosed);
  EXPECT_NE(frontend.compile(tileVariant(64), ctx).kernel, nullptr);
  frontend.shutdown();
}

TEST(ServiceFrontendTest, OpenRunBreakerServesZeroFilledEstimator) {
  KernelService service;
  FakeClock clock;
  AdmissionConfig config;
  config.breakerFailureThreshold = 2;
  ServiceFrontend frontend(service, config, clock.fn());

  CircuitBreaker& breaker = frontend.breaker(ServiceFrontend::Domain::kRun);
  breaker.recordFailure(0.0);
  breaker.recordFailure(0.0);
  ASSERT_EQ(breaker.state(0.0), CircuitBreaker::State::kOpen);

  const core::CodegenOptions options;
  const KernelService::KernelPtr kernel = service.compile(options);
  const core::PaddedShape shape =
      core::padShape(1, 1, 1, kernel->options, service.arch());
  const core::GemmProblem problem{shape.m, shape.n, shape.k, 1};
  const std::vector<double> a(
      static_cast<std::size_t>(shape.m * shape.k), 1.0);
  const std::vector<double> b(
      static_cast<std::size_t>(shape.k * shape.n), 1.0);
  std::vector<double> c(static_cast<std::size_t>(shape.m * shape.n), 7.0);

  RequestContext ctx;
  const KernelService::ResilientRunResult result =
      frontend.runGuarded(options, problem, a, b, c, ctx);
  EXPECT_TRUE(result.usedEstimator);
  ASSERT_FALSE(result.degradations.empty());
  EXPECT_EQ(result.degradations.back().to, "estimator");
  // The estimator carries no data: C must be the promised zero fill, not
  // the caller's stale sentinel values.
  for (const double v : c) ASSERT_EQ(v, 0.0);
  EXPECT_GT(result.outcome.gflops, 0.0);
  frontend.shutdown();
}

TEST(ServiceFrontendTest, SubmitAfterShutdownShedsTyped) {
  KernelService service;
  auto frontend = std::make_unique<ServiceFrontend>(service);
  frontend->shutdown();
  try {
    frontend->submitCompile(core::CodegenOptions{}, RequestContext{});
    FAIL() << "shutdown frontend admitted a request";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.kind(), OverloadKind::kShutdown);
  }
}

TEST(ServiceFrontendTest, QueueWaitHistogramAndGaugesPublished) {
  KernelService service;
  ServiceFrontend frontend(service);
  frontend.compile(core::CodegenOptions{}, RequestContext{});
  frontend.shutdown();

  EXPECT_TRUE(metrics::HistogramRegistry::global().has(
      "service.admission.queue_wait"));
  const std::map<std::string, double> gauges =
      metrics::MetricsRegistry::global().snapshot();
  EXPECT_EQ(gauges.count("service.admission.queue_depth"), 1u);
  EXPECT_EQ(gauges.count("service.admission.completed"), 1u);
  EXPECT_GE(gauges.at("service.admission.completed"), 1.0);
}

}  // namespace
}  // namespace sw::service
