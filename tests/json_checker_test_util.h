// Minimal JSON well-formedness checker shared by the tracer tests.
//
// Validates syntax only (objects, arrays, strings with escapes, numbers,
// literals); enough to guarantee Perfetto's parser will not reject a trace
// file for structural reasons.
#pragma once

#include <cctype>
#include <string>

namespace sw::testutil {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i)
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])))
              return false;
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace sw::testutil
