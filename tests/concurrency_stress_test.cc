// Thread-safety stress test for the observability layer under concurrent
// compiles: 8 distinct shapes on 8 threads with tracing enabled, every
// worker emitting spans and gauges simultaneously.
//
// Audit notes (PR 2) for src/support/trace.{h,cc} and metrics.{h,cc}:
//   * Tracer serializes all mutation (completeEvent, simSpan, lane naming)
//     behind one mutex; the hot enabled() probe is a relaxed atomic that
//     is only a hint, so a racing enable/disable can at worst drop or keep
//     an extra event, never corrupt state.
//   * Span captures its start time and args thread-locally and touches the
//     tracer only in the destructor; currentThreadLane() hands out dense
//     ids via a thread_local initialized from an atomic counter.
//   * MetricsRegistry::set/add/get/snapshot all lock the registry mutex;
//     concurrent add() on one gauge cannot lose updates.
// This test pins those properties down end to end: the collected trace
// must be structurally valid JSON with every per-thread span present.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.h"
#include "json_checker_test_util.h"
#include "service/kernel_service.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace sw {
namespace {

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::Tracer::global().clear();
    trace::Tracer::global().enable();
  }
  void TearDown() override {
    trace::Tracer::global().disable();
    trace::Tracer::global().clear();
  }
};

TEST_F(ConcurrencyStressTest, EightShapesOnEightThreadsWithTracingOn) {
  constexpr int kThreads = 8;
  // Eight distinct known-good shapes: tile sizes the SPM fits crossed with
  // the micro-kernel toggle.
  const std::int64_t tiles[kThreads] = {16, 32, 64, 16, 32, 64, 16, 32};

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      try {
        core::CodegenOptions options;
        options.tileM = tiles[t];
        options.tileN = tiles[t];
        options.useAsm = t < 4;
        options.hideLatency = t % 2 == 0;
        core::SwGemmCompiler compiler;
        const core::CompiledKernel kernel = compiler.compile(options);
        metrics::MetricsRegistry::global().add("stress.compiles", 1.0);
        metrics::MetricsRegistry::global().set(
            "stress.last_spm_bytes",
            static_cast<double>(kernel.program.spmBytesUsed()));
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Every thread's compile span must have been recorded on its own lane.
  std::set<std::int64_t> compileLanes;
  for (const trace::TraceEvent& e : trace::Tracer::global().snapshot())
    if (e.phase == 'X' && e.name == "compile") compileLanes.insert(e.tid);
  EXPECT_EQ(compileLanes.size(), static_cast<std::size_t>(kThreads));

  // The merged trace must still be structurally valid JSON.
  const std::string json = trace::Tracer::global().toJson();
  testutil::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json.substr(0, 400);

  // Concurrent metric adds must not lose updates.
  EXPECT_DOUBLE_EQ(
      metrics::MetricsRegistry::global().get("stress.compiles"),
      static_cast<double>(kThreads));
}

TEST_F(ConcurrencyStressTest, ServiceBatchUnderTracingStaysWellFormed) {
  // The service path adds worker-thread request spans and cache gauges on
  // top of the pipeline spans; an 8-thread batch over mixed shapes (with
  // duplicates, so single-flight and memory hits both fire) must leave a
  // parseable trace.
  service::KernelServiceConfig config;
  config.threads = 8;
  service::KernelService service(sunway::ArchConfig{}, config);

  std::vector<core::CodegenOptions> requests;
  for (int i = 0; i < 16; ++i) {
    core::CodegenOptions options;
    options.tileM = 16 << (i % 3);
    options.useAsm = i % 2 == 0;
    requests.push_back(options);
  }
  const auto results = service.compileBatch(requests);
  for (const auto& r : results) EXPECT_TRUE(r.error.empty()) << r.error;

  int requestSpans = 0;
  for (const trace::TraceEvent& e : trace::Tracer::global().snapshot())
    if (e.phase == 'X' && e.name == "service.request") ++requestSpans;
  EXPECT_EQ(requestSpans, 16);

  const std::string json = trace::Tracer::global().toJson();
  testutil::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json.substr(0, 400);
}

}  // namespace
}  // namespace sw
