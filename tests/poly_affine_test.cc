// Unit tests for AffineExpr algebra: construction, simplification,
// substitution, evaluation, floordiv composition and printing.
#include "poly/affine.h"

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/math_util.h"

namespace sw::poly {
namespace {

AffineExpr d(const std::string& name) { return AffineExpr::dim(name); }
AffineExpr c(std::int64_t v) { return AffineExpr::constant(v); }

TEST(AffineExpr, ConstantArithmetic) {
  AffineExpr e = c(3) + c(4);
  EXPECT_TRUE(e.isConstant());
  EXPECT_EQ(e.constantTerm(), 7);
  EXPECT_EQ((c(3) * 5).constantTerm(), 15);
  EXPECT_EQ((c(3) - c(10)).constantTerm(), -7);
}

TEST(AffineExpr, DimCoefficientsMerge) {
  AffineExpr e = d("i") + d("i") + d("j") * 2 - d("j");
  EXPECT_EQ(e.coefficient("i"), 2);
  EXPECT_EQ(e.coefficient("j"), 1);
  EXPECT_EQ(e.coefficient("k"), 0);
}

TEST(AffineExpr, ZeroCoefficientsAreDropped) {
  AffineExpr e = d("i") - d("i");
  EXPECT_TRUE(e.isConstant());
  EXPECT_EQ(e.constantTerm(), 0);
}

TEST(AffineExpr, AsSingleDim) {
  EXPECT_EQ(d("i").asSingleDim(), "i");
  EXPECT_FALSE((d("i") * 2).asSingleDim().has_value());
  EXPECT_FALSE((d("i") + c(1)).asSingleDim().has_value());
  EXPECT_FALSE((d("i") + d("j")).asSingleDim().has_value());
}

TEST(AffineExpr, FloorDivOfConstantFolds) {
  AffineExpr e = AffineExpr::floorDiv(c(100), 32);
  EXPECT_TRUE(e.isConstant());
  EXPECT_EQ(e.constantTerm(), 3);
  AffineExpr neg = AffineExpr::floorDiv(c(-1), 32);
  EXPECT_EQ(neg.constantTerm(), -1);  // floor semantics, not truncation
}

TEST(AffineExpr, FloorDivByOneIsIdentity) {
  AffineExpr e = AffineExpr::floorDiv(d("i"), 1);
  EXPECT_EQ(e.asSingleDim(), "i");
}

TEST(AffineExpr, FloorDivTermsMergeWhenIdentical) {
  AffineExpr a = AffineExpr::floorDiv(d("i"), 64);
  AffineExpr e = a + a;
  ASSERT_EQ(e.floorDivTerms().size(), 1u);
  EXPECT_EQ(e.floorDivTerms()[0].coeff, 2);
  AffineExpr z = a - a;
  EXPECT_TRUE(z.isConstant());
}

TEST(AffineExpr, EvaluateTiledCoordinates) {
  // The paper's within-tile coordinate: i - 64*floor(i/64).
  AffineExpr point = tilePointExpr(d("i"), 64);
  std::map<std::string, std::int64_t> env{{"i", 200}};
  EXPECT_EQ(point.evaluate(env), 200 - 64 * 3);
  env["i"] = 63;
  EXPECT_EQ(point.evaluate(env), 63);
  env["i"] = 64;
  EXPECT_EQ(point.evaluate(env), 0);
}

TEST(AffineExpr, EvaluateNestedFloorDiv) {
  // Strip-mined coordinate from Fig.6: floor(k/32) - 8*floor(k/256).
  AffineExpr e = AffineExpr::floorDiv(d("k"), 32) -
                 AffineExpr::floorDiv(d("k"), 256) * 8;
  for (std::int64_t k : {0, 31, 32, 255, 256, 300, 511, 512}) {
    std::map<std::string, std::int64_t> env{{"k", k}};
    EXPECT_EQ(e.evaluate(env), k / 32 - 8 * (k / 256)) << "k=" << k;
  }
}

TEST(AffineExpr, SubstituteLinear) {
  AffineExpr e = d("i") * 2 + d("j") + c(5);
  AffineExpr s = e.substitute("i", d("x") + c(1));
  std::map<std::string, std::int64_t> env{{"x", 10}, {"j", 3}};
  EXPECT_EQ(s.evaluate(env), 2 * 11 + 3 + 5);
}

TEST(AffineExpr, SubstituteInsideFloorDiv) {
  AffineExpr e = AffineExpr::floorDiv(d("i"), 64);
  AffineExpr s = e.substitute("i", d("x") * 64 + d("r"));
  std::map<std::string, std::int64_t> env{{"x", 5}, {"r", 13}};
  EXPECT_EQ(s.evaluate(env), 5);
}

TEST(AffineExpr, EvaluateMissingDimThrows) {
  AffineExpr e = d("i");
  std::map<std::string, std::int64_t> env;
  EXPECT_THROW((void)e.evaluate(env), sw::InternalError);
}

TEST(AffineExpr, CollectDimsIncludesDivNumerators) {
  AffineExpr e = d("i") + AffineExpr::floorDiv(d("k") + d("j"), 32);
  auto dims = e.collectDims();
  EXPECT_EQ(dims.size(), 3u);
}

TEST(AffineExpr, ToStringRoundtripReadable) {
  AffineExpr e = d("i") - AffineExpr::floorDiv(d("i"), 64) * 64;
  EXPECT_EQ(e.toString(), "i - 64*floor((i)/64)");
}

TEST(MathUtil, FloorCeilDivAndMod) {
  EXPECT_EQ(sw::floorDiv(7, 2), 3);
  EXPECT_EQ(sw::floorDiv(-7, 2), -4);
  EXPECT_EQ(sw::ceilDiv(7, 2), 4);
  EXPECT_EQ(sw::ceilDiv(-7, 2), -3);
  EXPECT_EQ(sw::floorMod(-7, 2), 1);
  EXPECT_EQ(sw::roundUp(500, 512), 512);
  EXPECT_EQ(sw::roundUp(512, 512), 512);
  EXPECT_TRUE(sw::isPowerOfTwo(1024));
  EXPECT_FALSE(sw::isPowerOfTwo(1536));
  EXPECT_FALSE(sw::isPowerOfTwo(0));
  EXPECT_EQ(sw::gcd(12, 18), 6);
  EXPECT_EQ(sw::lcm(4, 6), 12);
}

}  // namespace
}  // namespace sw::poly
