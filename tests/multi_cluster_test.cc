// Tests of the multi-cluster decomposition (the §9 future-work layer).
// The tile auto-tuner that used to share this file lives in src/tuning/
// now and is covered by tuning_search_test.cc.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/multi_cluster.h"
#include "kernel/reference.h"

namespace sw::core {
namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

TEST(MultiCluster, FunctionalMatchesSingleReference) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  MultiClusterConfig config;
  config.clusters = 3;

  const std::int64_t m = 600, n = 256, k = 128;
  std::vector<double> a = randomMatrix(m * k, 1);
  std::vector<double> b = randomMatrix(k * n, 2);
  std::vector<double> c = randomMatrix(m * n, 3);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, 1, 2.0, 0.5};
  MultiClusterOutcome outcome = runMultiClusterFunctional(
      kernel, compiler.arch(), config, problem, a, b, c);
  EXPECT_EQ(outcome.clustersUsed, 3);

  kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k, 2.0,
                        0.5);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

TEST(MultiCluster, ScalingImprovesUntilCommBound) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const GemmProblem problem{12288, 4096, 4096};
  double previous = 0.0;
  for (int clusters : {1, 2, 3, 6}) {
    MultiClusterConfig config;
    config.clusters = clusters;
    MultiClusterOutcome outcome =
        estimateMultiCluster(kernel, compiler.arch(), config, problem);
    EXPECT_GT(outcome.gflops, previous) << clusters;
    previous = outcome.gflops;
  }
}

TEST(MultiCluster, SingleClusterMatchesPlainEstimateModuloComm) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const GemmProblem problem{4096, 4096, 4096};
  MultiClusterConfig config;
  config.clusters = 1;
  MultiClusterOutcome outcome =
      estimateMultiCluster(kernel, compiler.arch(), config, problem);
  const double plain =
      estimateGemm(kernel, compiler.arch(), problem).seconds;
  EXPECT_DOUBLE_EQ(outcome.computeSeconds, plain);
  EXPECT_GT(outcome.communicationSeconds, 0.0);
}

TEST(MultiCluster, RejectsUnsupportedKernels) {
  SwGemmCompiler compiler;
  CodegenOptions batched;
  batched.batched = true;
  CompiledKernel kernel = compiler.compile(batched);
  EXPECT_THROW(estimateMultiCluster(kernel, compiler.arch(),
                                    MultiClusterConfig{},
                                    GemmProblem{512, 512, 256}),
               sw::InternalError);
}

}  // namespace
}  // namespace sw::core
