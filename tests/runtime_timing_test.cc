// Timing-model tests: the sequential symmetric estimator must agree with
// the 64-thread mesh simulator's logical clocks, and the model must
// reproduce the qualitative relationships of §6/§8.1 (latency hiding wins,
// RMA slashes DMA traffic 8x, overlap count grows with K).
#include <gtest/gtest.h>

#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "runtime/executor.h"
#include "sunway/mesh.h"

namespace sw::core {
namespace {

rt::RunOutcome runThreadedTiming(const CompiledKernel& kernel,
                                 const sunway::ArchConfig& arch,
                                 std::int64_t m, std::int64_t n,
                                 std::int64_t k) {
  sunway::MeshSimulator mesh(arch, /*functional=*/false);
  auto params = rt::bindParams(kernel.program, m, n, k, 1);
  return rt::runOnMesh(mesh, kernel.program, params, rt::ExecScalars{},
                       rt::gemmFlops(m, n, k));
}

class TimingAgreement : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TimingAgreement, EstimatorMatchesThreadedMesh) {
  const std::int64_t s = GetParam();
  SwGemmCompiler compiler;
  for (bool hide : {false, true}) {
    CodegenOptions options;
    options.hideLatency = hide;
    CompiledKernel kernel = compiler.compile(options);
    rt::RunOutcome threaded =
        runThreadedTiming(kernel, compiler.arch(), s, s, s);
    rt::RunOutcome estimated =
        estimateGemm(kernel, compiler.arch(), GemmProblem{s, s, s});
    // The estimator charges RMA issue overhead every round instead of one
    // round in eight; keep the bound tight but not exact.
    EXPECT_NEAR(estimated.seconds, threaded.seconds,
                0.02 * threaded.seconds)
        << "shape " << s << " hide=" << hide;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TimingAgreement,
                         ::testing::Values<std::int64_t>(512, 1024, 2048));

TEST(TimingModel, LatencyHidingAlwaysHelps) {
  SwGemmCompiler compiler;
  CodegenOptions withHiding;
  CodegenOptions without;
  without.hideLatency = false;
  CompiledKernel fast = compiler.compile(withHiding);
  CompiledKernel slow = compiler.compile(without);
  for (std::int64_t s : {512, 1024, 4096, 8192}) {
    const double tFast =
        estimateGemm(fast, compiler.arch(), GemmProblem{s, s, s}).seconds;
    const double tSlow =
        estimateGemm(slow, compiler.arch(), GemmProblem{s, s, s}).seconds;
    EXPECT_LT(tFast, tSlow) << s;
  }
}

TEST(TimingModel, HidingBenefitGrowsWithK) {
  // §8.1: the number of DMA overlaps is ceil(K/256) - 1, so small K
  // benefits less from latency hiding.
  SwGemmCompiler compiler;
  CodegenOptions withHiding;
  CodegenOptions without;
  without.hideLatency = false;
  CompiledKernel fast = compiler.compile(withHiding);
  CompiledKernel slow = compiler.compile(without);
  auto speedup = [&](std::int64_t k) {
    const GemmProblem p{4096, 4096, k};
    return estimateGemm(slow, compiler.arch(), p).seconds /
           estimateGemm(fast, compiler.arch(), p).seconds;
  };
  EXPECT_LT(speedup(256), speedup(2048));
  EXPECT_LT(speedup(2048), speedup(16384));
}

TEST(TimingModel, RmaCutsDmaTrafficEightfold) {
  // Without RMA every CPE in a mesh row/column fetches the same input tile
  // (§3.2): the A/B DMA volume is exactly 8x the RMA version's.
  SwGemmCompiler compiler;
  CodegenOptions rmaOpts;
  rmaOpts.hideLatency = false;
  CodegenOptions noRma;
  noRma.useRma = false;
  noRma.hideLatency = false;
  CompiledKernel withRma = compiler.compile(rmaOpts);
  CompiledKernel without = compiler.compile(noRma);

  const std::int64_t s = 1024;
  auto bytes = [&](const CompiledKernel& kernel) {
    sunway::MeshSimulator mesh(compiler.arch(), /*functional=*/false);
    auto params = rt::bindParams(kernel.program, s, s, s, 1);
    return rt::runOnMesh(mesh, kernel.program, params, rt::ExecScalars{},
                         rt::gemmFlops(s, s, s))
        .counters.dmaBytes;
  };
  const std::int64_t cBytes =
      2 * (s / 512) * (s / 512) * 64 * 512 * 512 / 64 * 8;  // getC+putC total
  const std::int64_t abWith = bytes(withRma) - cBytes;
  const std::int64_t abWithout = bytes(without) - cBytes;
  EXPECT_EQ(abWithout, 8 * abWith);
}

TEST(TimingModel, BreakdownMatchesPaperOrdering) {
  // Fig.13's four bars must order v1 < v2 < v3 < v4 with factors in the
  // right ballpark (paper: 2.83x, 4.38x, 1.76x on average).
  SwGemmCompiler compiler;
  auto gflops = [&](bool useAsm, bool useRma, bool hide, std::int64_t s) {
    CodegenOptions options;
    options.useAsm = useAsm;
    options.useRma = useRma;
    options.hideLatency = hide;
    CompiledKernel kernel = compiler.compile(options);
    return estimateGemm(kernel, compiler.arch(), GemmProblem{s, s, s})
        .gflops;
  };
  const std::int64_t s = 8192;
  const double v1 = gflops(false, false, false, s);
  const double v2 = gflops(true, false, false, s);
  const double v3 = gflops(true, true, false, s);
  const double v4 = gflops(true, true, true, s);
  EXPECT_GT(v2 / v1, 2.0);
  EXPECT_LT(v2 / v1, 4.0);
  EXPECT_GT(v3 / v2, 3.3);
  EXPECT_LT(v3 / v2, 5.5);
  EXPECT_GT(v4 / v3, 1.4);
  EXPECT_LT(v4 / v3, 2.4);
  // §8.1: the best configurations reach ~90% of the theoretical peak.
  EXPECT_GT(v4 / (compiler.arch().peakFlops() / 1e9), 0.80);
}

TEST(TimingModel, SpawnOverheadCountsOnce) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const rt::RunOutcome outcome =
      estimateGemm(kernel, compiler.arch(), GemmProblem{512, 512, 256});
  EXPECT_GT(outcome.seconds, compiler.arch().spawnOverheadSeconds);
}

TEST(TimingModel, CountersAreConsistent) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const std::int64_t s = 1024;
  sunway::MeshSimulator mesh(compiler.arch(), /*functional=*/false);
  auto params = rt::bindParams(kernel.program, s, s, s, 1);
  auto outcome = rt::runOnMesh(mesh, kernel.program, params,
                               rt::ExecScalars{}, rt::gemmFlops(s, s, s));
  // 64 CPEs x (s/512)^2 mesh tiles x (s/256 outer) x 8 rounds.
  const std::int64_t meshTiles = (s / 512) * (s / 512);
  EXPECT_EQ(outcome.counters.microKernelCalls,
            64 * meshTiles * (s / 256) * 8);
  // Each CPE sends one row and one column broadcast per outer-k iteration.
  EXPECT_EQ(outcome.counters.rmaBroadcastsSent,
            2 * 64 * meshTiles * (s / 256));
}

}  // namespace
}  // namespace sw::core
