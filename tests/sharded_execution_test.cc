// Tests of multi-core-group sharded execution (core/sharded_gemm.h): the
// shard planner's coverage/alignment invariants, the bit-identity of
// concurrent multi-group runs against single-group execution (edge tiles,
// padded non-divisible shapes, transposes, batch, chained K-split
// reduction), per-group fault-domain isolation, and the contention-derated
// multi-group estimator/roofline (including the one-group == estimateGemm
// equality regression).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <vector>

#include "core/sharded_gemm.h"
#include "support/error.h"

namespace sw::core {
namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

bool bitIdentical(const std::vector<double>& x, const std::vector<double>& y) {
  return x.size() == y.size() &&
         std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0;
}

struct Operands {
  std::vector<double> a, b, c;
};

Operands makeOperands(const CodegenOptions& options,
                      const GemmProblem& problem, unsigned seedBase) {
  Operands ops;
  ops.a = randomMatrix(problem.batch * problem.m * problem.k, seedBase);
  ops.b = randomMatrix(problem.batch * problem.k * problem.n, seedBase + 1);
  ops.c = randomMatrix(problem.batch * problem.m * problem.n, seedBase + 2);
  (void)options;
  return ops;
}

/// Run single-group and sharded executions of the same problem and return
/// (reference C, sharded C, sharded outcome).
struct EquivalenceResult {
  std::vector<double> single;
  std::vector<double> sharded;
  ShardedOutcome outcome;
};

EquivalenceResult runBoth(const CompiledKernel& kernel,
                          const sunway::ArchConfig& arch,
                          const ShardedConfig& config,
                          const GemmProblem& problem, unsigned seedBase) {
  const Operands ops = makeOperands(kernel.options, problem, seedBase);
  EquivalenceResult result;
  result.single = ops.c;
  runGemmFunctional(kernel, arch, problem, ops.a, ops.b, result.single,
                    config.run);
  result.sharded = ops.c;
  result.outcome = runShardedFunctional(kernel, arch, config, problem,
                                        ops.a, ops.b, result.sharded);
  return result;
}

TEST(ShardPlanner, CoversMatrixWithAlignedChunks) {
  SwGemmCompiler compiler;
  CodegenOptions options;  // RMA on: kUnit = tileK * stripFactor = 256
  CompiledKernel kernel = compiler.compile(options);
  const GemmProblem problem{1000, 700, 600, 1};
  const ShardPlan plan =
      planShards(kernel, compiler.arch(), problem, /*groups=*/6,
                 /*kSplit=*/3);

  EXPECT_EQ(plan.kUnit, options.tileK * options.stripFactor);
  // ceil(600 / 256) = 3 units, so all three requested chunks materialise.
  EXPECT_EQ(plan.kChunks, 3);
  EXPECT_EQ(static_cast<int>(plan.shards.size()),
            plan.blocks() * static_cast<int>(plan.kChunks));

  // Every (row, col, chunk) cell covered exactly once; chunk starts
  // aligned to kUnit; block extents tile the matrix.
  std::vector<std::int64_t> cCover(
      static_cast<std::size_t>(problem.m * problem.n), 0);
  for (const Shard& s : plan.shards) {
    EXPECT_EQ(s.k0 % plan.kUnit, 0) << "chunk start must be unit-aligned";
    EXPECT_GE(s.group, 0);
    EXPECT_LT(s.group, 6);
    if (s.chunk != 0) continue;
    for (std::int64_t r = s.m0; r < s.m0 + s.bm; ++r)
      for (std::int64_t cidx = s.n0; cidx < s.n0 + s.bn; ++cidx)
        ++cCover[static_cast<std::size_t>(r * problem.n + cidx)];
  }
  for (const std::int64_t cover : cCover) EXPECT_EQ(cover, 1);
}

TEST(ShardPlanner, RejectsInvalidConfigs) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const GemmProblem problem{512, 512, 256, 1};
  EXPECT_THROW(planShards(kernel, compiler.arch(), problem, 0, 1),
               InputError);
  EXPECT_THROW(planShards(kernel, compiler.arch(), problem,
                          compiler.arch().coreGroups + 1, 1),
               InputError);
  EXPECT_THROW(planShards(kernel, compiler.arch(), problem, 2, 0),
               InputError);

  CodegenOptions fused;
  fused.fusion = FusionKind::kEpilogueRelu;
  CompiledKernel reluKernel = compiler.compile(fused);
  // A chained K split would apply the activation once per partial.
  EXPECT_THROW(planShards(reluKernel, compiler.arch(), problem, 2, 2),
               InputError);
  // M/N-only sharding of the fused kernel stays legal.
  EXPECT_NO_THROW(planShards(reluKernel, compiler.arch(), problem, 2, 1));
}

TEST(ShardedExecution, EdgeTileShapesBitIdenticalAcrossGroupCounts) {
  SwGemmCompiler compiler;
  CodegenOptions options;
  options.edgeTiles = true;
  CompiledKernel kernel = compiler.compile(options);

  // Non-divisible M/N exercise edge tiles inside every shard.
  const GemmProblem problem{150, 100, 96, 1, 1.25, 0.5};
  for (const int groups : {2, 3, 6}) {
    ShardedConfig config;
    config.groups = groups;
    EquivalenceResult result =
        runBoth(kernel, compiler.arch(), config, problem, 100 + groups);
    EXPECT_TRUE(bitIdentical(result.single, result.sharded))
        << groups << " groups";
    EXPECT_EQ(result.outcome.groupsUsed,
              std::min(groups, result.outcome.rowBlocks *
                                   result.outcome.colBlocks));
    EXPECT_TRUE(result.outcome.failures.empty());
    EXPECT_GT(result.outcome.counters.microKernelCalls, 0);
  }
}

TEST(ShardedExecution, PaddedPathBitIdenticalOnNonDivisibleShape) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const GemmProblem problem{200, 120, 96, 1, 1.0, 0.25};
  ShardedConfig config;
  config.groups = 2;
  EquivalenceResult result =
      runBoth(kernel, compiler.arch(), config, problem, 7);
  EXPECT_TRUE(bitIdentical(result.single, result.sharded));
  EXPECT_GT(result.outcome.hostCopyBytes, 0);
}

TEST(ShardedExecution, TransposedOperandsBitIdentical) {
  SwGemmCompiler compiler;
  for (const bool transposeB : {false, true}) {
    CodegenOptions options;
    options.transposeA = !transposeB;
    options.transposeB = transposeB;
    CompiledKernel kernel = compiler.compile(options);
    const GemmProblem problem{160, 96, 64, 1, 2.0, 0.5};
    ShardedConfig config;
    config.groups = 2;
    EquivalenceResult result =
        runBoth(kernel, compiler.arch(), config, problem,
                transposeB ? 21 : 22);
    EXPECT_TRUE(bitIdentical(result.single, result.sharded))
        << (transposeB ? "B^T" : "A^T");
  }
}

TEST(ShardedExecution, BatchedProblemBitIdentical) {
  SwGemmCompiler compiler;
  CodegenOptions options;
  options.batched = true;
  options.edgeTiles = true;
  CompiledKernel kernel = compiler.compile(options);
  const GemmProblem problem{96, 80, 64, 3, 1.0, 1.0};
  ShardedConfig config;
  config.groups = 6;
  EquivalenceResult result =
      runBoth(kernel, compiler.arch(), config, problem, 33);
  EXPECT_TRUE(bitIdentical(result.single, result.sharded));
}

TEST(ShardedExecution, ChainedKSplitReductionBitIdentical) {
  SwGemmCompiler compiler;
  // No RMA so the K chunk unit is tileK (32) and a small K still splits.
  CodegenOptions options;
  options.useRma = false;
  options.hideLatency = false;
  options.edgeTiles = true;
  CompiledKernel kernel = compiler.compile(options);

  for (const double beta : {0.5, 0.0}) {
    const GemmProblem problem{100, 96, 100, 1, 1.5, beta};
    ShardedConfig config;
    config.groups = 4;
    config.kSplit = 3;
    EquivalenceResult result = runBoth(kernel, compiler.arch(), config,
                                       problem, beta == 0.0 ? 41 : 42);
    // ceil(100/32) = 4 K units across 3 chunks.
    EXPECT_EQ(result.outcome.kChunks, 3);
    EXPECT_TRUE(bitIdentical(result.single, result.sharded))
        << "beta=" << beta;
  }
}

TEST(ShardedExecution, FaultedGroupDegradesWithoutCorruption) {
  SwGemmCompiler compiler;
  CodegenOptions options;
  options.edgeTiles = true;
  CompiledKernel kernel = compiler.compile(options);

  // Group 1's mesh loses every DMA reply from the start: its first shard
  // hangs until the watchdog dumps the per-CPE state and aborts, and the
  // sharded layer re-runs the shard fault-free on the same group.
  auto plan = std::make_shared<sunway::FaultPlan>(
      sunway::FaultPlan::parse("dma-drop:count=forever"));
  const GemmProblem problem{150, 96, 64, 1, 1.0, 0.5};
  ShardedConfig config;
  config.groups = 3;
  config.groupFaultPlan = plan;
  config.faultGroup = 1;
  config.run.watchdogMillis = 200.0;

  EquivalenceResult result =
      runBoth(kernel, compiler.arch(), config, problem, 55);
  ASSERT_FALSE(result.outcome.failures.empty());
  for (const ShardedOutcome::GroupFailure& failure :
       result.outcome.failures) {
    EXPECT_EQ(failure.group, 1);
    // The node-level dump names the stuck group's per-CPE state.
    EXPECT_NE(failure.error.find("watchdog"), std::string::npos)
        << failure.error;
  }
  // Degraded, not corrupted: every group's C block (including the faulted
  // group's, after its fault-free re-run) matches single-group execution.
  EXPECT_TRUE(bitIdentical(result.single, result.sharded));
}

TEST(ShardedEstimator, OneGroupShardCostsExactlySingleGroupEstimate) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const GemmProblem problem{4096, 4096, 4096, 1};
  ShardedConfig config;
  config.groups = 1;
  const ShardedOutcome sharded =
      estimateSharded(kernel, compiler.arch(), config, problem);
  const rt::RunOutcome plain =
      estimateGemm(kernel, compiler.arch(), problem);
  // Regression: the old multi-cluster estimator charged 3 NoC latencies
  // plus byte costs at clusters == 1.  A one-group shard is the whole
  // problem on an underated group: exactly the single-group estimate.
  EXPECT_DOUBLE_EQ(sharded.seconds, plain.seconds);
  EXPECT_DOUBLE_EQ(sharded.gflops, plain.gflops);
  EXPECT_DOUBLE_EQ(sharded.communicationSeconds, 0.0);
  EXPECT_DOUBLE_EQ(sharded.contentionDerate, 1.0);
}

TEST(ShardedEstimator, ContentionDeratesTheMultiGroupRoofline) {
  SwGemmCompiler compiler;
  const sunway::ArchConfig& arch = compiler.arch();
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const GemmProblem problem{12288, 4096, 4096, 1};

  ShardedConfig single;
  single.groups = 1;
  const ShardedOutcome one = estimateSharded(kernel, arch, single, problem);
  ShardedConfig six;
  six.groups = 6;
  const ShardedOutcome node = estimateSharded(kernel, arch, six, problem);

  // Concurrent groups scale, but never linearly: the shared DDR pool
  // derates each group's bandwidth (144/6 = 24 < 36 GB/s) and the NoC
  // hand-off is on the critical path.
  EXPECT_GT(node.gflops, one.gflops);
  EXPECT_LT(node.gflops, 6.0 * one.gflops);
  EXPECT_DOUBLE_EQ(node.contentionDerate,
                   arch.groupDdrBandwidth(6) / arch.ddrBandwidthBytesPerSec);
  EXPECT_LT(node.contentionDerate, 1.0);
  EXPECT_GT(node.communicationSeconds, 0.0);

  // The multi-group roofline: compute peak scales 6x, the DMA peak is the
  // contention-derated node aggregate, strictly below 6x a single group.
  EXPECT_NEAR(node.report.roofline.peakGflops,
              6.0 * one.report.roofline.peakGflops, 1e-9);
  EXPECT_NEAR(node.report.roofline.peakDmaGBps,
              6.0 * arch.groupDdrBandwidth(6) / 1e9, 1e-9);
  EXPECT_LT(node.report.roofline.peakDmaGBps,
            6.0 * arch.ddrBandwidthBytesPerSec / 1e9);

  // Scaling stays monotonic while it lasts (1 -> 2 -> 3 -> 6 groups).
  double previous = 0.0;
  for (const int groups : {1, 2, 3, 6}) {
    ShardedConfig config;
    config.groups = groups;
    const ShardedOutcome outcome =
        estimateSharded(kernel, arch, config, problem);
    EXPECT_GT(outcome.gflops, previous) << groups;
    previous = outcome.gflops;
  }
}

}  // namespace
}  // namespace sw::core
