// Edge-tile codegen: arbitrary GEMM shapes run on the caller's unpadded
// arrays (CodegenOptions::edgeTiles) and must be *exactly* equal to the
// padded §8.1 reference path of the same kernel, on both execution
// engines.  Also pins the BLAS beta == 0 semantics (C is write-only, NaN
// never propagates) and the host-copy / simulated-flop savings the edge
// path exists for.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "kernel/reference.h"
#include "support/error.h"

namespace sw::core {
namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

struct EdgeCase {
  const char* label;
  std::int64_t m, n, k, batch;
  bool transposeA = false;
  bool transposeB = false;
  bool useRma = true;
  /// Large shapes skip the (slower) tree-walk engine; the plan/tree
  /// equivalence is pinned by the smaller cases and plan_equivalence_test.
  bool bothEngines = true;
};

class EdgeTileSweep : public ::testing::TestWithParam<EdgeCase> {};

TEST_P(EdgeTileSweep, UnpaddedRunEqualsPaddedReferenceExactly) {
  const EdgeCase& ec = GetParam();
  CodegenOptions options;
  options.edgeTiles = true;
  options.transposeA = ec.transposeA;
  options.transposeB = ec.transposeB;
  options.batched = ec.batch > 1;
  options.useRma = ec.useRma;
  if (!ec.useRma) options.hideLatency = false;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);

  const std::int64_t countA = ec.batch * ec.m * ec.k;
  const std::int64_t countB = ec.batch * ec.k * ec.n;
  const std::int64_t countC = ec.batch * ec.m * ec.n;
  std::vector<double> a = randomMatrix(countA, 41);
  std::vector<double> b = randomMatrix(countB, 42);
  const std::vector<double> cInit = randomMatrix(countC, 43);
  GemmProblem problem{ec.m, ec.n, ec.k, ec.batch, 1.0, 1.0};

  // Padded reference: same kernel, zero-padded shadow arrays (the clamps
  // never bind at padded sizes).
  FunctionalRunConfig paddedConfig;
  paddedConfig.padMode = PadMode::kPadded;
  std::vector<double> cPadded = cInit;
  rt::RunOutcome padded = runGemmFunctional(kernel, compiler.arch(), problem,
                                            a, b, cPadded, paddedConfig);
  EXPECT_GT(padded.hostCopyBytes, 0);

  FunctionalRunConfig edgeConfig;
  edgeConfig.padMode = PadMode::kEdge;
  std::vector<double> cEdge = cInit;
  rt::RunOutcome edge = runGemmFunctional(kernel, compiler.arch(), problem,
                                          a, b, cEdge, edgeConfig);
  EXPECT_EQ(std::memcmp(cEdge.data(), cPadded.data(),
                        static_cast<std::size_t>(countC) * sizeof(double)),
            0)
      << "plan engine, max |diff| = "
      << kernel::maxAbsDiff(cEdge.data(), cPadded.data(), countC);

  // The whole point of edge tiles: no host pack/unpack copies and strictly
  // fewer simulated micro-kernel flops than the padded run (none of the
  // sweep shapes is a multiple of the padded grid).
  EXPECT_EQ(edge.hostCopyBytes, 0);
  EXPECT_LT(edge.counters.flops, padded.counters.flops);

  if (ec.bothEngines) {
    FunctionalRunConfig treeConfig;
    treeConfig.padMode = PadMode::kEdge;
    treeConfig.engine = rt::ExecEngine::kTreeWalk;
    std::vector<double> cTree = cInit;
    runGemmFunctional(kernel, compiler.arch(), problem, a, b, cTree,
                      treeConfig);
    EXPECT_EQ(std::memcmp(cTree.data(), cPadded.data(),
                          static_cast<std::size_t>(countC) * sizeof(double)),
              0)
        << "tree-walk engine, max |diff| = "
        << kernel::maxAbsDiff(cTree.data(), cPadded.data(), countC);
  }

  // Plain layouts also have a direct numerical oracle.
  if (!ec.transposeA && !ec.transposeB && ec.batch == 1) {
    std::vector<double> expected = cInit;
    kernel::referenceGemm(expected.data(), a.data(), b.data(), ec.m, ec.n,
                          ec.k, 1.0, 1.0);
    EXPECT_EQ(kernel::maxAbsDiff(cEdge.data(), expected.data(), countC), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArbitraryShapes, EdgeTileSweep,
    ::testing::Values(
        EdgeCase{"s63", 63, 63, 63, 1},
        EdgeCase{"s63_tA", 63, 63, 63, 1, /*tA=*/true},
        EdgeCase{"s63_tB", 63, 63, 63, 1, false, /*tB=*/true},
        EdgeCase{"s63_no_rma", 63, 63, 63, 1, false, false, /*rma=*/false},
        EdgeCase{"s65_tA", 65, 65, 65, 1, /*tA=*/true},
        EdgeCase{"s65_tB", 65, 65, 65, 1, false, /*tB=*/true},
        EdgeCase{"s65_batch2", 65, 65, 65, 2},
        EdgeCase{"s100", 100, 100, 100, 1},
        EdgeCase{"s100_tAtB", 100, 100, 100, 1, true, true},
        EdgeCase{"s100_no_rma", 100, 100, 100, 1, false, false, false},
        EdgeCase{"s100_batch3", 100, 100, 100, 3},
        EdgeCase{"s257", 257, 257, 257, 1},
        EdgeCase{"s257_tA", 257, 257, 257, 1, /*tA=*/true},
        EdgeCase{"s257_no_rma", 257, 257, 257, 1, false, false, false},
        EdgeCase{"mixed_63_65_100", 63, 65, 100, 1},
        EdgeCase{"mixed_257_100_65", 257, 100, 65, 1, false, /*tB=*/true},
        EdgeCase{"s1000", 1000, 1000, 1000, 1, false, false, true,
                 /*bothEngines=*/false}),
    [](const ::testing::TestParamInfo<EdgeCase>& info) {
      return info.param.label;
    });

TEST(EdgeTiles, BetaZeroNeverReadsC) {
  // BLAS semantics: beta == 0 means C is write-only.  A NaN-filled C must
  // come back finite and equal to alpha*A*B, on both host paths.
  const std::int64_t m = 100, n = 65, k = 63;
  std::vector<double> a = randomMatrix(m * k, 51);
  std::vector<double> b = randomMatrix(k * n, 52);
  std::vector<double> expected(static_cast<std::size_t>(m * n), 0.0);
  kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k, 1.0,
                        1.0);

  SwGemmCompiler compiler;
  for (const bool edgeTiles : {false, true}) {
    CodegenOptions options;
    options.edgeTiles = edgeTiles;
    CompiledKernel kernel = compiler.compile(options);
    std::vector<double> c(static_cast<std::size_t>(m * n),
                          std::numeric_limits<double>::quiet_NaN());
    GemmProblem problem{m, n, k, 1, 1.0, /*beta=*/0.0};
    runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);
    for (double v : c) ASSERT_TRUE(std::isfinite(v)) << "edge=" << edgeTiles;
    EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0)
        << "edge=" << edgeTiles;
  }
}

TEST(EdgeTiles, EdgeModeOnPaddedKernelIsRejected) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const std::int64_t m = 64, n = 64, k = 64;
  std::vector<double> a = randomMatrix(m * k, 61);
  std::vector<double> b = randomMatrix(k * n, 62);
  std::vector<double> c = randomMatrix(m * n, 63);
  FunctionalRunConfig config;
  config.padMode = PadMode::kEdge;
  EXPECT_THROW(runGemmFunctional(kernel, compiler.arch(),
                                 GemmProblem{m, n, k, 1}, a, b, c, config),
               sw::InputError);
}

TEST(EdgeTiles, EdgeKernelOnPaddedInputsMatchesPlainKernel) {
  // At padded sizes none of the clamps bind, so the edge-tile kernel must
  // be observationally identical to the plain kernel.
  SwGemmCompiler compiler;
  CodegenOptions edgeOptions;
  edgeOptions.edgeTiles = true;
  CompiledKernel edgeKernel = compiler.compile(edgeOptions);
  CompiledKernel plainKernel = compiler.compile(CodegenOptions{});

  const std::int64_t m = 128, n = 96, k = 64;
  std::vector<double> a = randomMatrix(m * k, 71);
  std::vector<double> b = randomMatrix(k * n, 72);
  const std::vector<double> cInit = randomMatrix(m * n, 73);
  GemmProblem problem{m, n, k, 1, 1.0, 1.0};

  std::vector<double> cEdge = cInit;
  FunctionalRunConfig paddedConfig;
  paddedConfig.padMode = PadMode::kPadded;
  rt::RunOutcome edgeOutcome = runGemmFunctional(
      edgeKernel, compiler.arch(), problem, a, b, cEdge, paddedConfig);
  std::vector<double> cPlain = cInit;
  rt::RunOutcome plainOutcome = runGemmFunctional(
      plainKernel, compiler.arch(), problem, a, b, cPlain);
  EXPECT_EQ(std::memcmp(cEdge.data(), cPlain.data(),
                        static_cast<std::size_t>(m * n) * sizeof(double)),
            0);
  EXPECT_EQ(edgeOutcome.counters.flops, plainOutcome.counters.flops);
  EXPECT_EQ(edgeOutcome.counters.dmaBytes, plainOutcome.counters.dmaBytes);
}

TEST(EdgeTiles, EstimateBindsTrueShape) {
  // The timing estimate of an edge kernel binds the unpadded extents, so a
  // barely-over-the-grid shape costs barely more than the grid itself.
  SwGemmCompiler compiler;
  CodegenOptions options;
  options.edgeTiles = true;
  CompiledKernel kernel = compiler.compile(options);
  CompiledKernel padded = compiler.compile(CodegenOptions{});
  const GemmProblem problem{520, 520, 260, 1};
  rt::RunOutcome edgeEstimate = estimateGemm(kernel, compiler.arch(), problem);
  rt::RunOutcome paddedEstimate =
      estimateGemm(padded, compiler.arch(), problem);
  EXPECT_GT(edgeEstimate.gflops, 0.0);
  EXPECT_LT(edgeEstimate.counters.flops, paddedEstimate.counters.flops);
}

}  // namespace
}  // namespace sw::core
