// Determinism guard for the kernel cache (the correctness precondition of
// cache keying): compiling identical CodegenOptions must yield
// byte-identical generated sources, tree dumps and serialized programs,
// regardless of what else the process compiled in between.
//
// Audit notes (PR 2): the pipeline keeps all keyed collections ordered
// (std::map/std::set over strings), never iterates pointer-keyed
// containers, and embeds no timestamps or addresses in its output, so
// determinism holds by construction; this test pins it down.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/kernel_serdes.h"

namespace sw::core {
namespace {

std::vector<CodegenOptions> interestingVariants() {
  std::vector<CodegenOptions> variants;
  variants.emplace_back();  // defaults
  CodegenOptions noAsm;
  noAsm.useAsm = false;
  variants.push_back(noAsm);
  CodegenOptions dmaOnly;
  dmaOnly.useRma = false;
  dmaOnly.hideLatency = false;
  variants.push_back(dmaOnly);
  CodegenOptions batched;
  batched.batched = true;
  variants.push_back(batched);
  CodegenOptions fused;
  fused.fusion = FusionKind::kEpilogueRelu;
  variants.push_back(fused);
  CodegenOptions transposed;
  transposed.transposeA = true;
  variants.push_back(transposed);
  CodegenOptions smallTiles;
  smallTiles.tileM = 32;
  smallTiles.tileN = 32;
  smallTiles.tileK = 32;
  variants.push_back(smallTiles);
  return variants;
}

TEST(CompileDeterminismTest, RepeatedCompilesAreByteIdentical) {
  SwGemmCompiler compiler;
  const std::vector<CodegenOptions> variants = interestingVariants();

  // First sweep, in order.
  std::vector<CompiledKernel> first;
  first.reserve(variants.size());
  for (const CodegenOptions& options : variants)
    first.push_back(compiler.compile(options));

  // Second sweep in reverse order, with a fresh compiler instance, so any
  // hidden state carried across compiles (allocator layout, iteration
  // order, memoization) would surface as a diff.
  SwGemmCompiler other;
  for (std::size_t i = variants.size(); i-- > 0;) {
    const CompiledKernel again = other.compile(variants[i]);
    const CompiledKernel& reference = first[i];
    EXPECT_EQ(again.cpeSource, reference.cpeSource) << "variant " << i;
    EXPECT_EQ(again.mpeSource, reference.mpeSource) << "variant " << i;
    EXPECT_EQ(again.initialTreeDump, reference.initialTreeDump)
        << "variant " << i;
    EXPECT_EQ(again.tiledTreeDump, reference.tiledTreeDump) << "variant " << i;
    EXPECT_EQ(again.finalTreeDump, reference.finalTreeDump) << "variant " << i;
    EXPECT_EQ(serializeCompiledKernel(again),
              serializeCompiledKernel(reference))
        << "variant " << i;
  }
}

TEST(CompileDeterminismTest, CanonicalKeyIsStableAndDiscriminating) {
  const sunway::ArchConfig arch;
  const std::vector<CodegenOptions> variants = interestingVariants();

  std::vector<std::string> keys;
  for (const CodegenOptions& options : variants) {
    keys.push_back(canonicalRequestKey(options, arch));
    // Stable: recomputing yields the same bytes.
    EXPECT_EQ(keys.back(), canonicalRequestKey(options, arch));
  }
  // Discriminating: distinct variants get distinct keys.
  for (std::size_t i = 0; i < keys.size(); ++i)
    for (std::size_t j = i + 1; j < keys.size(); ++j)
      EXPECT_NE(keys[i], keys[j]) << "variants " << i << " and " << j;

  // The key also covers the architecture: a different mesh is a different
  // kernel.
  sunway::ArchConfig smallMesh;
  smallMesh.meshRows = 4;
  EXPECT_NE(canonicalRequestKey(variants[0], arch),
            canonicalRequestKey(variants[0], smallMesh));
}

}  // namespace
}  // namespace sw::core
