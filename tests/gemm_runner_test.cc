// Tests of the high-level runner: input validation, scalar edge cases
// (alpha/beta in {0, 1, negative}), and a parameterized property sweep of
// functional correctness across irregular shapes and option sets.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "kernel/reference.h"
#include "support/error.h"

namespace sw::core {
namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

const CompiledKernel& defaultKernel() {
  static SwGemmCompiler compiler;
  static CompiledKernel kernel = compiler.compile(CodegenOptions{});
  return kernel;
}
const sunway::ArchConfig& arch() {
  static sunway::ArchConfig config;
  return config;
}

TEST(GemmRunner, RejectsWrongSpanSizes) {
  std::vector<double> a(10), b(10), c(10);
  GemmProblem problem{64, 64, 64, 1};
  EXPECT_THROW(
      runGemmFunctional(defaultKernel(), arch(), problem, a, b, c),
      sw::InternalError);
}

TEST(GemmRunner, RejectsBatchOnPlainKernel) {
  std::vector<double> a(2 * 64 * 64), b(2 * 64 * 64), c(2 * 64 * 64);
  GemmProblem problem{64, 64, 64, 2};
  EXPECT_THROW(
      runGemmFunctional(defaultKernel(), arch(), problem, a, b, c),
      sw::InternalError);
}

struct ScalarCase {
  double alpha;
  double beta;
};

class ScalarEdges : public ::testing::TestWithParam<ScalarCase> {};

TEST_P(ScalarEdges, FunctionalMatchesReference) {
  const auto [alpha, beta] = GetParam();
  const std::int64_t m = 128, n = 96, k = 64;
  std::vector<double> a = randomMatrix(m * k, 1);
  std::vector<double> b = randomMatrix(k * n, 2);
  std::vector<double> c = randomMatrix(m * n, 3);
  std::vector<double> expected = c;
  GemmProblem problem{m, n, k, 1, alpha, beta};
  runGemmFunctional(defaultKernel(), arch(), problem, a, b, c);
  kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k, alpha,
                        beta);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Scalars, ScalarEdges,
    ::testing::Values(ScalarCase{1.0, 1.0}, ScalarCase{0.0, 1.0},
                      ScalarCase{1.0, 0.0}, ScalarCase{0.0, 0.0},
                      ScalarCase{-2.5, 0.5}, ScalarCase{1e-8, 1e8}),
    [](const ::testing::TestParamInfo<ScalarCase>& info) {
      auto clean = [](double v) {
        std::string s = std::to_string(v);
        for (char& ch : s)
          if (ch == '.' || ch == '-' || ch == '+') ch = '_';
        return s;
      };
      return "a" + clean(info.param.alpha) + "_b" + clean(info.param.beta);
    });

struct SweepCase {
  std::int64_t m, n, k;
  bool useAsm;
  bool hideLatency;
};

class ShapeSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ShapeSweep, FunctionalMatchesReference) {
  const SweepCase& sweep = GetParam();
  CodegenOptions options;
  options.useAsm = sweep.useAsm;
  options.hideLatency = sweep.hideLatency;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);

  std::vector<double> a = randomMatrix(sweep.m * sweep.k, 11);
  std::vector<double> b = randomMatrix(sweep.k * sweep.n, 12);
  std::vector<double> c = randomMatrix(sweep.m * sweep.n, 13);
  std::vector<double> expected = c;
  GemmProblem problem{sweep.m, sweep.n, sweep.k, 1, 1.0, 1.0};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);
  kernel::referenceGemm(expected.data(), a.data(), b.data(), sweep.m,
                        sweep.n, sweep.k, 1.0, 1.0);
  EXPECT_EQ(
      kernel::maxAbsDiff(c.data(), expected.data(), sweep.m * sweep.n), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    IrregularShapes, ShapeSweep,
    ::testing::Values(SweepCase{1, 1, 1, true, true},
                      SweepCase{7, 13, 5, true, true},
                      SweepCase{65, 129, 33, true, true},
                      SweepCase{512, 64, 256, true, true},
                      SweepCase{64, 512, 512, true, true},
                      SweepCase{100, 100, 100, false, true},
                      SweepCase{255, 257, 300, true, false},
                      SweepCase{513, 511, 257, true, true}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const SweepCase& s = info.param;
      return std::to_string(s.m) + "x" + std::to_string(s.n) + "x" +
             std::to_string(s.k) + (s.useAsm ? "_asm" : "_naive") +
             (s.hideLatency ? "_hide" : "_nohide");
    });

TEST(GemmRunner, EstimateDoesNotTouchData) {
  // Estimation of a shape far too large to allocate must succeed.
  GemmProblem problem{15360, 15360, 15360, 1};
  rt::RunOutcome outcome = estimateGemm(defaultKernel(), arch(), problem);
  EXPECT_GT(outcome.gflops, 0.0);
  EXPECT_LT(outcome.gflops, arch().peakFlops() / 1e9);
}

TEST(GemmRunner, ResultsAreDeterministicAcrossRuns) {
  const std::int64_t m = 192, n = 128, k = 96;
  std::vector<double> a = randomMatrix(m * k, 21);
  std::vector<double> b = randomMatrix(k * n, 22);
  std::vector<double> c1 = randomMatrix(m * n, 23);
  std::vector<double> c2 = c1;
  GemmProblem problem{m, n, k, 1, 1.0, 1.0};
  runGemmFunctional(defaultKernel(), arch(), problem, a, b, c1);
  runGemmFunctional(defaultKernel(), arch(), problem, a, b, c2);
  EXPECT_EQ(kernel::maxAbsDiff(c1.data(), c2.data(), m * n), 0.0);
}

}  // namespace
}  // namespace sw::core
