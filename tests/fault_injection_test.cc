// Chaos suite for the fault-injection plan and the recovery machinery
// above it: FaultPlan parsing/decision determinism, bit-correct recovery
// from transient DMA faults via the interpreter's retry, clean escalation
// when the retry budget runs out, and the KernelService degradation
// ladder down to the symmetric estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "service/kernel_service.h"
#include "support/error.h"
#include "support/metrics.h"
#include "sunway/fault.h"

namespace sw {
namespace {

using core::CodegenOptions;
using core::CompiledKernel;
using core::FunctionalRunConfig;
using core::GemmProblem;
using sunway::FaultDecision;
using sunway::FaultKind;
using sunway::FaultOpClass;
using sunway::FaultPlan;
using sunway::FaultSpec;

// --- FaultPlan grammar & decisions --------------------------------------

TEST(FaultPlan, ParsesFullGrammar) {
  FaultPlan plan = FaultPlan::parse(
      "dma-drop:cpe=3:occ=2:count=4;"
      "rma-delay:cpe=*:seconds=0.001;"
      "stall:seconds=0.5:rate=0.25:seed=7;"
      "dma-corrupt:count=forever");
  ASSERT_EQ(plan.specs().size(), 4u);
  const FaultSpec& drop = plan.specs()[0];
  EXPECT_EQ(drop.kind, FaultKind::kDmaDropReply);
  EXPECT_EQ(drop.cpe, 3);
  EXPECT_EQ(drop.occurrence, 2);
  EXPECT_EQ(drop.count, 4);
  EXPECT_FALSE(drop.permanent());
  EXPECT_EQ(plan.specs()[1].cpe, -1);
  EXPECT_DOUBLE_EQ(plan.specs()[1].seconds, 0.001);
  EXPECT_DOUBLE_EQ(plan.specs()[2].rate, 0.25);
  EXPECT_EQ(plan.specs()[2].seed, 7u);
  EXPECT_TRUE(plan.specs()[3].permanent());
  EXPECT_NE(plan.describe().find("dma-drop"), std::string::npos);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("gamma-ray"), InputError);
  EXPECT_THROW(FaultPlan::parse("dma-drop:count=0"), InputError);
  EXPECT_THROW(FaultPlan::parse("dma-drop:rate=1.5"), InputError);
  EXPECT_THROW(FaultPlan::parse("dma-drop:occ=-1"), InputError);
  EXPECT_THROW(FaultPlan::parse("dma-delay"), InputError);  // needs seconds
  EXPECT_THROW(FaultPlan::parse("stall:seconds=0"), InputError);
}

TEST(FaultPlan, OrdinalWindowMatchesExactly) {
  FaultPlan plan = FaultPlan::parse("dma-drop:cpe=2:occ=3:count=2");
  EXPECT_FALSE(plan.decide(FaultOpClass::kDma, 2, 2).any());
  EXPECT_TRUE(plan.decide(FaultOpClass::kDma, 2, 3).dropTransient);
  EXPECT_TRUE(plan.decide(FaultOpClass::kDma, 2, 4).dropTransient);
  EXPECT_FALSE(plan.decide(FaultOpClass::kDma, 2, 5).any());
  EXPECT_FALSE(plan.decide(FaultOpClass::kDma, 1, 3).any());  // other CPE
  EXPECT_FALSE(plan.decide(FaultOpClass::kRma, 2, 3).any());  // other class

  FaultPlan forever = FaultPlan::parse("dma-drop:cpe=0:count=forever");
  EXPECT_TRUE(forever.decide(FaultOpClass::kDma, 0, 12345).dropPermanent);
  EXPECT_FALSE(forever.decide(FaultOpClass::kDma, 0, 0).dropTransient);
}

TEST(FaultPlan, ProbabilisticPlansReplayDeterministically) {
  FaultPlan a = FaultPlan::parse("dma-drop:rate=0.5:seed=42");
  FaultPlan b = FaultPlan::parse("dma-drop:rate=0.5:seed=42");
  FaultPlan other = FaultPlan::parse("dma-drop:rate=0.5:seed=43");
  int fires = 0, divergences = 0;
  for (std::int64_t occ = 0; occ < 1000; ++occ) {
    const bool hitA = a.decide(FaultOpClass::kDma, 7, occ).dropTransient;
    const bool hitB = b.decide(FaultOpClass::kDma, 7, occ).dropTransient;
    EXPECT_EQ(hitA, hitB) << "same seed must replay identically, occ=" << occ;
    fires += hitA ? 1 : 0;
    divergences +=
        hitA != other.decide(FaultOpClass::kDma, 7, occ).dropTransient ? 1 : 0;
  }
  // rate=0.5 over 1000 sites: sanity-band, not a statistics test.
  EXPECT_GT(fires, 300);
  EXPECT_LT(fires, 700);
  EXPECT_GT(divergences, 0) << "a different seed must decorrelate";
}

TEST(FaultPlan, CorruptTileIsDeterministicAndDamaging) {
  std::vector<double> original(64, 1.25);
  std::vector<double> first = original, second = original;
  FaultPlan::corruptTile(first.data(), 64, /*cpe=*/9, /*occurrence=*/4);
  FaultPlan::corruptTile(second.data(), 64, /*cpe=*/9, /*occurrence=*/4);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, original);
}

// --- end-to-end recovery on the real mesh -------------------------------

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

struct ChaosFixture {
  CompiledKernel kernel;
  sunway::ArchConfig arch;
  GemmProblem problem{512, 512, 64, 1, 1.0, 0.0};
  std::vector<double> a, b, baselineC;

  ChaosFixture() {
    core::SwGemmCompiler compiler;
    kernel = compiler.compile(CodegenOptions{});
    arch = compiler.arch();
    a = randomMatrix(problem.m * problem.k, 21);
    b = randomMatrix(problem.k * problem.n, 22);
    baselineC = std::vector<double>(
        static_cast<std::size_t>(problem.m * problem.n), 0.0);
    core::runGemmFunctional(kernel, arch, problem, a, b, baselineC);
  }
};

const ChaosFixture& fixture() {
  static ChaosFixture* f = new ChaosFixture();
  return *f;
}

TEST(ChaosMesh, TransientDmaDropRecoversBitCorrect) {
  std::vector<double> c;
  FunctionalRunConfig config;
  config.faultPlan = std::make_shared<const FaultPlan>(
      FaultPlan::parse("dma-drop:cpe=0:occ=1:count=1"));
  const ChaosFixture& fx = fixture();
  c.assign(static_cast<std::size_t>(fx.problem.m * fx.problem.n), 0.0);
  rt::RunOutcome outcome = core::runGemmFunctional(fx.kernel, fx.arch,
                                                   fx.problem, fx.a, fx.b, c,
                                                   config);
  EXPECT_EQ(outcome.counters.faultsInjected, 1);
  EXPECT_EQ(outcome.counters.dmaRetries, 1);
  EXPECT_EQ(c, fx.baselineC) << "retry must reproduce the fault-free result";
}

TEST(ChaosMesh, CorruptedTileIsRefetchedBitCorrect) {
  const ChaosFixture& fx = fixture();
  std::vector<double> c(static_cast<std::size_t>(fx.problem.m * fx.problem.n),
                        0.0);
  FunctionalRunConfig config;
  config.faultPlan = std::make_shared<const FaultPlan>(
      FaultPlan::parse("dma-corrupt:cpe=5:occ=0:count=1"));
  rt::RunOutcome outcome = core::runGemmFunctional(fx.kernel, fx.arch,
                                                   fx.problem, fx.a, fx.b, c,
                                                   config);
  EXPECT_GE(outcome.counters.dmaRetries, 1);
  EXPECT_EQ(c, fx.baselineC)
      << "a corrupted tile must be detected and re-fetched clean";
}

TEST(ChaosMesh, DmaDelayOnlySlowsTheClock) {
  const ChaosFixture& fx = fixture();
  std::vector<double> c(static_cast<std::size_t>(fx.problem.m * fx.problem.n),
                        0.0);
  FunctionalRunConfig config;
  config.faultPlan = std::make_shared<const FaultPlan>(
      FaultPlan::parse("dma-delay:cpe=*:count=forever:seconds=0.0001"));
  rt::RunOutcome baseline = core::runGemmFunctional(
      fx.kernel, fx.arch, fx.problem, fx.a, fx.b, c);
  rt::RunOutcome delayed = core::runGemmFunctional(
      fx.kernel, fx.arch, fx.problem, fx.a, fx.b, c, config);
  EXPECT_GT(delayed.seconds, baseline.seconds);
  EXPECT_EQ(c, fx.baselineC) << "delays must never change the data";
}

TEST(ChaosMesh, RetryBudgetExhaustionEscalatesCleanly) {
  const ChaosFixture& fx = fixture();
  std::vector<double> c(static_cast<std::size_t>(fx.problem.m * fx.problem.n),
                        0.0);
  FunctionalRunConfig config;
  // Occurrences 0..9 of CPE 0 all fail: the first wait plus all three
  // retries hit the window, so the interpreter must give up with a
  // ProtocolError that names the slot and the retry count — not hang.
  config.faultPlan = std::make_shared<const FaultPlan>(
      FaultPlan::parse("dma-drop:cpe=0:occ=0:count=10"));
  try {
    core::runGemmFunctional(fx.kernel, fx.arch, fx.problem, fx.a, fx.b, c,
                            config);
    FAIL() << "expected ProtocolError after exhausting retries";
  } catch (const ProtocolError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("still failing after 3 retries"),
              std::string::npos)
        << message;
  }
}

// --- KernelService degradation ladder -----------------------------------

TEST(Degradation, StopsAtFirstHealthyRung) {
  service::KernelService service;
  service.setRunFnForTest(
      [](const CompiledKernel& kernel, const GemmProblem&,
         std::span<const double>, std::span<const double>,
         std::span<double> c, const FunctionalRunConfig&) -> rt::RunOutcome {
        if (kernel.options.useAsm)
          throw ProtocolError("asm rung faulted (stub)");
        c[0] = 42.0;
        rt::RunOutcome outcome;
        outcome.seconds = 1.0;
        return outcome;
      });

  GemmProblem problem{512, 512, 64, 1, 1.0, 0.0};
  std::vector<double> a(static_cast<std::size_t>(problem.m * problem.k), 0.0);
  std::vector<double> b(static_cast<std::size_t>(problem.k * problem.n), 0.0);
  std::vector<double> c(static_cast<std::size_t>(problem.m * problem.n), 0.0);
  const double degradesBefore =
      metrics::MetricsRegistry::global().get("service.degrade.to_naive");

  auto result = service.runResilient(CodegenOptions{}, problem, a, b, c);

  EXPECT_FALSE(result.usedEstimator);
  EXPECT_FALSE(result.servedOptions.useAsm);
  EXPECT_TRUE(result.servedOptions.useRma);
  ASSERT_EQ(result.degradations.size(), 1u);
  EXPECT_EQ(result.degradations[0].from, "asm-microkernel");
  EXPECT_EQ(result.degradations[0].to, "naive-compute");
  EXPECT_NE(result.degradations[0].error.find("asm rung faulted"),
            std::string::npos);
  EXPECT_EQ(c[0], 42.0) << "the healthy rung's result must be copied back";
  EXPECT_GT(metrics::MetricsRegistry::global().get("service.degrade.to_naive"),
            degradesBefore);
}

TEST(Degradation, NativeJitRungDegradesToPlanEngine) {
  service::KernelServiceConfig config;
  config.nativeEngine = true;
  service::KernelService service(sunway::ArchConfig{}, config);
  std::vector<rt::ExecEngine> enginesTried;
  service.setRunFnForTest(
      [&enginesTried](const CompiledKernel&, const GemmProblem&,
                      std::span<const double>, std::span<const double>,
                      std::span<double> c,
                      const FunctionalRunConfig& runConfig) -> rt::RunOutcome {
        enginesTried.push_back(runConfig.engine);
        if (runConfig.engine == rt::ExecEngine::kNative)
          throw TransientError("JIT toolchain unavailable (stub)");
        c[0] = 43.0;
        rt::RunOutcome outcome;
        outcome.seconds = 1.0;
        return outcome;
      });

  GemmProblem problem{512, 512, 64, 1, 1.0, 0.0};
  std::vector<double> a(static_cast<std::size_t>(problem.m * problem.k), 0.0);
  std::vector<double> b(static_cast<std::size_t>(problem.k * problem.n), 0.0);
  std::vector<double> c(static_cast<std::size_t>(problem.m * problem.n), 0.0);
  const double toPlanBefore =
      metrics::MetricsRegistry::global().get("service.degrade.to_plan");

  auto result = service.runResilient(CodegenOptions{}, problem, a, b, c);

  // The top rung ran with the native engine, failed, and the ladder's
  // next rung — the same asm schedule on the plan interpreter — served.
  ASSERT_GE(enginesTried.size(), 2u);
  EXPECT_EQ(enginesTried[0], rt::ExecEngine::kNative);
  EXPECT_EQ(enginesTried[1], rt::ExecEngine::kPlan);
  EXPECT_FALSE(result.usedEstimator);
  EXPECT_TRUE(result.servedOptions.useAsm);
  ASSERT_EQ(result.degradations.size(), 1u);
  EXPECT_EQ(result.degradations[0].from, "native-jit");
  EXPECT_EQ(result.degradations[0].to, "asm-microkernel");
  EXPECT_NE(result.degradations[0].error.find("JIT toolchain unavailable"),
            std::string::npos);
  EXPECT_EQ(c[0], 43.0);
  EXPECT_GT(metrics::MetricsRegistry::global().get("service.degrade.to_plan"),
            toPlanBefore);
}

TEST(Degradation, HealthyNativeRungServesWithoutDegrading) {
  service::KernelServiceConfig config;
  config.nativeEngine = true;
  service::KernelService service(sunway::ArchConfig{}, config);
  service.setRunFnForTest(
      [](const CompiledKernel&, const GemmProblem&, std::span<const double>,
         std::span<const double>, std::span<double> c,
         const FunctionalRunConfig& runConfig) -> rt::RunOutcome {
        EXPECT_EQ(runConfig.engine, rt::ExecEngine::kNative);
        c[0] = 44.0;
        rt::RunOutcome outcome;
        outcome.engine = "native";
        outcome.seconds = 1.0;
        return outcome;
      });

  GemmProblem problem{512, 512, 64, 1, 1.0, 0.0};
  std::vector<double> a(static_cast<std::size_t>(problem.m * problem.k), 0.0);
  std::vector<double> b(static_cast<std::size_t>(problem.k * problem.n), 0.0);
  std::vector<double> c(static_cast<std::size_t>(problem.m * problem.n), 0.0);

  auto result = service.runResilient(CodegenOptions{}, problem, a, b, c);

  EXPECT_TRUE(result.degradations.empty());
  EXPECT_FALSE(result.usedEstimator);
  EXPECT_EQ(result.outcome.engine, "native");
  EXPECT_EQ(c[0], 44.0);
}

TEST(Degradation, AllMeshRungsFailingFallsBackToEstimator) {
  service::KernelService service;
  service.setRunFnForTest(
      [](const CompiledKernel&, const GemmProblem&, std::span<const double>,
         std::span<const double>, std::span<double> c,
         const FunctionalRunConfig&) -> rt::RunOutcome {
        c[0] = -1.0;  // must never reach the caller: the rung fails
        throw ProtocolError("mesh watchdog: injected for test");
      });

  GemmProblem problem{512, 512, 64, 1, 1.0, 0.0};
  std::vector<double> a(static_cast<std::size_t>(problem.m * problem.k), 0.0);
  std::vector<double> b(static_cast<std::size_t>(problem.k * problem.n), 0.0);
  std::vector<double> c(static_cast<std::size_t>(problem.m * problem.n), 7.0);
  const double estimatorBefore =
      metrics::MetricsRegistry::global().get("service.degrade.to_estimator");

  auto result = service.runResilient(CodegenOptions{}, problem, a, b, c);

  EXPECT_TRUE(result.usedEstimator);
  EXPECT_GT(result.outcome.seconds, 0.0) << "estimator still models timing";
  ASSERT_EQ(result.degradations.size(), 3u);
  EXPECT_EQ(result.degradations.back().to, "estimator");
  EXPECT_NE(result.degradations.back().error.find("injected for test"),
            std::string::npos);
  EXPECT_TRUE(std::all_of(c.begin(), c.end(), [](double v) { return v == 0.0; }))
      << "the estimator rung computes nothing, so it zero-fills C rather than\n"
         "leaving the caller's stale values looking like a result";
  EXPECT_GT(
      metrics::MetricsRegistry::global().get("service.degrade.to_estimator"),
      estimatorBefore);
}

TEST(Degradation, PermanentDropOnRealMeshDegradesToEstimator) {
  service::KernelService service;
  GemmProblem problem{512, 512, 64, 1, 1.0, 0.0};
  std::vector<double> a = randomMatrix(problem.m * problem.k, 31);
  std::vector<double> b = randomMatrix(problem.k * problem.n, 32);
  std::vector<double> c(static_cast<std::size_t>(problem.m * problem.n), 0.0);

  FunctionalRunConfig config;
  config.faultPlan = std::make_shared<const FaultPlan>(
      FaultPlan::parse("dma-drop:cpe=1:occ=0:count=forever"));
  config.watchdogMillis = 150.0;
  const double firedBefore =
      metrics::MetricsRegistry::global().get("watchdog.fired");

  auto result =
      service.runResilient(CodegenOptions{}, problem, a, b, c, config);

  // Every schedule rung still issues DMAs from CPE 1, so each one hangs,
  // trips the watchdog, and the ladder bottoms out at the estimator.
  EXPECT_TRUE(result.usedEstimator);
  EXPECT_EQ(result.degradations.size(), 3u);
  EXPECT_GT(result.outcome.seconds, 0.0);
  EXPECT_GE(metrics::MetricsRegistry::global().get("watchdog.fired"),
            firedBefore + 3.0);
  for (const auto& step : result.degradations)
    EXPECT_NE(step.error.find("mesh watchdog"), std::string::npos)
        << step.from << " -> " << step.to << ": " << step.error;
}

}  // namespace
}  // namespace sw
