// Frontend tests: lexing, parsing, and GEMM pattern recognition over the
// naive C programs of §2.3 / Fig.2a / Fig.12, including rejection of
// non-GEMM inputs via the dependence analysis.
#include <gtest/gtest.h>

#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "frontend/pattern.h"
#include "support/error.h"

namespace sw::frontend {
namespace {

constexpr const char* kPlainGemm = R"(
void gemm(long M, long N, long K, double alpha, double beta,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      C[i][j] = beta * C[i][j];
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
)";

TEST(Lexer, TokenizesGemm) {
  auto tokens = tokenize(kPlainGemm);
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
  int fors = 0;
  for (const Token& t : tokens)
    if (t.kind == TokenKind::kFor) ++fors;
  EXPECT_EQ(fors, 5);
}

TEST(Lexer, CommentsAndCompoundOperators) {
  auto tokens = tokenize("a += b; // line\n c *= d; /* block */ e++ <=");
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kPlusAssign),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kStarAssign),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kPlusPlus),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kLessEqual),
            kinds.end());
}

TEST(Lexer, RejectsUnknownCharacters) {
  EXPECT_THROW(tokenize("a # b"), sw::InputError);
}

TEST(Parser, ParsesFunctionShape) {
  FunctionDecl fn = parseFunction(kPlainGemm);
  EXPECT_EQ(fn.name, "gemm");
  ASSERT_EQ(fn.params.size(), 8u);
  EXPECT_EQ(fn.params[0].type, ParamDecl::Type::kLong);
  EXPECT_EQ(fn.params[3].type, ParamDecl::Type::kDouble);
  EXPECT_EQ(fn.params[5].type, ParamDecl::Type::kDoubleArray);
  EXPECT_EQ(fn.params[5].dims, (std::vector<std::string>{"M", "K"}));
}

TEST(Parser, DesugarsPlusAssign) {
  FunctionDecl fn = parseFunction(R"(
void f(long N, double A[N][N]) {
  for (long i = 0; i < N; i++)
    for (long j = 0; j < N; j++)
      A[i][j] += A[i][j];
})");
  // Reaching here without an exception means += desugared into an Add.
  const Stmt* block = fn.body.get();
  ASSERT_EQ(block->kind, StmtKind::kBlock);
}

TEST(Parser, RejectsNonZeroLowerBound) {
  EXPECT_THROW(parseFunction(R"(
void f(long N, double A[N]) {
  for (long i = 1; i < N; i++) A[i] = A[i];
})"),
               sw::InputError);
}

TEST(Parser, RejectsNonUnitStride) {
  EXPECT_THROW(parseFunction(R"(
void f(long N, double A[N]) {
  for (long i = 0; i < N; i += 2) A[i] = A[i];
})"),
               sw::InputError);
}

TEST(Pattern, RecognisesPlainGemm) {
  GemmPatternInfo info = analyzeGemmSource(kPlainGemm);
  EXPECT_EQ(info.functionName, "gemm");
  EXPECT_FALSE(info.batched);
  EXPECT_EQ(info.fusion, FusionPattern::kNone);
  EXPECT_EQ(info.arrayA, "A");
  EXPECT_EQ(info.arrayB, "B");
  EXPECT_EQ(info.arrayC, "C");
  EXPECT_EQ(info.paramM, "M");
  EXPECT_EQ(info.paramN, "N");
  EXPECT_EQ(info.paramK, "K");
  EXPECT_EQ(info.alphaVar, "alpha");
  EXPECT_EQ(info.betaVar, "beta");
  EXPECT_TRUE(info.hasBetaScale);
  EXPECT_EQ(info.statements.size(), 2u);
}

TEST(Pattern, RecognisesMinimalGemmWithPlusAssign) {
  GemmPatternInfo info = analyzeGemmSource(R"(
void mm(long M, long N, long K, double A[M][K], double B[K][N],
        double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += A[i][k] * B[k][j];
})");
  EXPECT_TRUE(info.alphaVar.empty());
  EXPECT_FALSE(info.hasBetaScale);
}

TEST(Pattern, RecognisesBatchedGemm) {
  GemmPatternInfo info = analyzeGemmSource(R"(
void bmm(long T, long M, long N, long K, double A[T][M][K],
         double B[T][K][N], double C[T][M][N]) {
  for (long b = 0; b < T; b++)
    for (long i = 0; i < M; i++)
      for (long j = 0; j < N; j++)
        for (long k = 0; k < K; k++)
          C[b][i][j] += A[b][i][k] * B[b][k][j];
})");
  EXPECT_TRUE(info.batched);
  EXPECT_EQ(info.paramBatch, "T");
  EXPECT_EQ(info.paramM, "M");
}

TEST(Pattern, RecognisesPrologueFusion) {
  GemmPatternInfo info = analyzeGemmSource(R"(
void qgemm(long M, long N, long K, double A[M][K], double AQ[M][K],
           double B[K][N], double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long k = 0; k < K; k++)
      AQ[i][k] = quantize(A[i][k]);
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += AQ[i][k] * B[k][j];
})");
  EXPECT_EQ(info.fusion, FusionPattern::kPrologueQuantize);
  // The DMA source is the original array; quantization is recomputed on
  // the SPM tile (Fig.12a).
  EXPECT_EQ(info.arrayA, "A");
}

TEST(Pattern, RecognisesEpilogueFusion) {
  GemmPatternInfo info = analyzeGemmSource(R"(
void gemm_relu(long M, long N, long K, double A[M][K], double B[K][N],
               double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      C[i][j] = relu(C[i][j]);
})");
  EXPECT_EQ(info.fusion, FusionPattern::kEpilogueRelu);
}

TEST(Pattern, AcceptsFmaxEpilogue) {
  GemmPatternInfo info = analyzeGemmSource(R"(
void f(long M, long N, long K, double A[M][K], double B[K][N],
       double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      C[i][j] = fmax(C[i][j], 0.0);
})");
  EXPECT_EQ(info.fusion, FusionPattern::kEpilogueRelu);
}

TEST(Pattern, RejectsNonGemmComputation) {
  EXPECT_THROW(analyzeGemmSource(R"(
void f(long N, double A[N][N]) {
  for (long i = 0; i < N; i++)
    for (long j = 0; j < N; j++)
      A[i][j] = A[i][j] + 1.0;
})"),
               sw::InputError);
}

TEST(Pattern, RecognisesTransposedOperands) {
  // A[k][i] selects the A^T variant; B[j][k] selects B^T (§2: "other GEMM
  // variants share the same structure with DGEMM").
  GemmPatternInfo info = analyzeGemmSource(R"(
void f(long M, long N, long K, double A[K][M], double B[K][N],
       double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += A[k][i] * B[k][j];
})");
  EXPECT_TRUE(info.transposeA);
  EXPECT_FALSE(info.transposeB);

  GemmPatternInfo both = analyzeGemmSource(R"(
void g(long M, long N, long K, double A[K][M], double B[N][K],
       double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += A[k][i] * B[j][k];
})");
  EXPECT_TRUE(both.transposeA);
  EXPECT_TRUE(both.transposeB);
}

TEST(Pattern, RejectsTransposedDeclarationMismatch) {
  // A^T form with an A declared M x K is inconsistent.
  EXPECT_THROW(analyzeGemmSource(R"(
void f(long M, long N, long K, double A[M][K], double B[K][N],
       double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += A[k][i] * B[k][j];
})"),
               sw::InputError);
}

TEST(Pattern, RejectsInconsistentArrayDeclaration) {
  EXPECT_THROW(analyzeGemmSource(R"(
void f(long M, long N, long K, double A[M][K], double B[N][K],
       double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += A[i][k] * B[k][j];
})"),
               sw::InputError);
}

TEST(Pattern, RejectsStrayStatement) {
  EXPECT_THROW(analyzeGemmSource(R"(
void f(long M, long N, long K, double A[M][K], double B[K][N],
       double C[M][N], double D[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      D[i][j] = D[i][j] + D[i][j];
})"),
               sw::InputError);
}

}  // namespace
}  // namespace sw::frontend
