// Dependence-analysis tests: the GEMM nest must be proven (i, j)-parallel,
// k-sequential and fully tilable, exactly the attributes isl attaches in
// §2.2 of the paper.  Additional nests validate the analysis on non-GEMM
// shapes (skewed accesses, anti-dependences, stencils).
#include "poly/dependence.h"

#include <gtest/gtest.h>

#include <random>

#include "poly/linear_system.h"

namespace sw::poly {
namespace {

AffineExpr d(const std::string& name) { return AffineExpr::dim(name); }

AccessRelation access(const std::string& array,
                      const std::vector<std::string>& dims,
                      std::vector<AffineExpr> subs, bool write) {
  return AccessRelation{array, AffineMap(dims, std::move(subs)), write};
}

StatementInfo gemmStatement() {
  // S1(i,j,k): C[i][j] = C[i][j] + A[i][k] * B[k][j]
  std::vector<std::string> dims{"i", "j", "k"};
  IntegerSet domain("S1", dims);
  domain.addRange("i", d("M"));
  domain.addRange("j", d("N"));
  domain.addRange("k", d("K"));
  StatementInfo stmt{"S1", domain, {}};
  stmt.accesses.push_back(access("C", dims, {d("i"), d("j")}, true));
  stmt.accesses.push_back(access("C", dims, {d("i"), d("j")}, false));
  stmt.accesses.push_back(access("A", dims, {d("i"), d("k")}, false));
  stmt.accesses.push_back(access("B", dims, {d("k"), d("j")}, false));
  return stmt;
}

TEST(LinearSystem, FeasibleBox) {
  LinearSystem sys(1);
  sys.add({1}, 0, LinearConstraint::Kind::kGe);    // x >= 0
  sys.add({-1}, 10, LinearConstraint::Kind::kGe);  // x <= 10
  EXPECT_TRUE(sys.isFeasible());
}

TEST(LinearSystem, InfeasibleContradiction) {
  LinearSystem sys(1);
  sys.add({1}, -5, LinearConstraint::Kind::kGe);  // x >= 5
  sys.add({-1}, 3, LinearConstraint::Kind::kGe);  // x <= 3
  EXPECT_FALSE(sys.isFeasible());
}

TEST(LinearSystem, EqualityPropagates) {
  LinearSystem sys(2);
  sys.add({1, -1}, 0, LinearConstraint::Kind::kEq);  // x == y
  sys.add({1, 0}, -4, LinearConstraint::Kind::kGe);  // x >= 4
  sys.add({0, -1}, 2, LinearConstraint::Kind::kGe);  // y <= 2
  EXPECT_FALSE(sys.isFeasible());
}

TEST(LinearSystem, TwoVarChain) {
  LinearSystem sys(2);
  sys.add({1, -2}, 0, LinearConstraint::Kind::kGe);   // x >= 2y
  sys.add({-1, 1}, -1, LinearConstraint::Kind::kGe);  // y >= x + 1
  sys.add({0, 1}, 0, LinearConstraint::Kind::kGe);    // y >= 0
  // x >= 2y and y >= x+1 => y >= 2y + 1 => y <= -1, contradiction with y>=0.
  EXPECT_FALSE(sys.isFeasible());
}

TEST(LinearSystem, RandomBoxesAreFeasible) {
  // Property: any box 0 <= x_i <= u_i with u_i >= 0 is feasible, and
  // adding x_0 >= u_0 + 1 makes it infeasible.
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::int64_t> bound(0, 50);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 4);
    LinearSystem sys(n);
    std::vector<std::int64_t> uppers;
    for (std::size_t v = 0; v < n; ++v) {
      std::vector<std::int64_t> lo(n, 0), hi(n, 0);
      lo[v] = 1;
      hi[v] = -1;
      const std::int64_t u = bound(rng);
      uppers.push_back(u);
      sys.add(lo, 0, LinearConstraint::Kind::kGe);   // x_v >= 0
      sys.add(hi, u, LinearConstraint::Kind::kGe);   // x_v <= u
    }
    EXPECT_TRUE(sys.isFeasible()) << "trial " << trial;
    std::vector<std::int64_t> push(n, 0);
    push[0] = 1;
    sys.add(push, -(uppers[0] + 1), LinearConstraint::Kind::kGe);
    EXPECT_FALSE(sys.isFeasible()) << "trial " << trial;
  }
}

TEST(LinearSystem, RedundantConstraintsDoNotConfuse) {
  LinearSystem sys(2);
  for (int i = 0; i < 10; ++i) {
    sys.add({1, 0}, i, LinearConstraint::Kind::kGe);  // x >= -i (redundant)
    sys.add({0, 1}, i, LinearConstraint::Kind::kGe);
  }
  sys.add({1, 1}, -10, LinearConstraint::Kind::kGe);  // x + y >= 10
  sys.add({-1, -1}, 20, LinearConstraint::Kind::kGe);  // x + y <= 20
  EXPECT_TRUE(sys.isFeasible());
  sys.add({-1, -1}, 5, LinearConstraint::Kind::kGe);  // x + y <= 5
  EXPECT_FALSE(sys.isFeasible());
}

TEST(LinearSystem, EqualityChainPropagation) {
  // x0 == x1 == x2 == x3, x0 >= 7, x3 <= 6: infeasible.
  LinearSystem sys(4);
  sys.add({1, -1, 0, 0}, 0, LinearConstraint::Kind::kEq);
  sys.add({0, 1, -1, 0}, 0, LinearConstraint::Kind::kEq);
  sys.add({0, 0, 1, -1}, 0, LinearConstraint::Kind::kEq);
  sys.add({1, 0, 0, 0}, -7, LinearConstraint::Kind::kGe);
  sys.add({0, 0, 0, -1}, 6, LinearConstraint::Kind::kGe);
  EXPECT_FALSE(sys.isFeasible());
}

TEST(LinearSystem, UnboundedSystemIsFeasible) {
  LinearSystem sys(2);
  sys.add({1, -1}, 0, LinearConstraint::Kind::kGe);  // x >= y, nothing else
  EXPECT_TRUE(sys.isFeasible());
}

TEST(Dependence, GemmOuterLoopsParallel) {
  DependenceAnalysis analysis({gemmStatement()});
  EXPECT_TRUE(analysis.isLoopParallel("S1", 0));  // i
  EXPECT_TRUE(analysis.isLoopParallel("S1", 1));  // j
}

TEST(Dependence, GemmReductionLoopSequential) {
  DependenceAnalysis analysis({gemmStatement()});
  EXPECT_FALSE(analysis.isLoopParallel("S1", 2));  // k carries C reduction
}

TEST(Dependence, GemmFullyTilable) {
  DependenceAnalysis analysis({gemmStatement()});
  EXPECT_TRUE(analysis.isBandPermutable("S1", 0, 3));
}

TEST(Dependence, GemmWitnessesAreOnC) {
  DependenceAnalysis analysis({gemmStatement()});
  auto deps = analysis.selfDependences("S1");
  ASSERT_FALSE(deps.empty());
  for (const Dependence& dep : deps) {
    EXPECT_EQ(dep.arrayName, "C");
    EXPECT_EQ(dep.level, 2u);
  }
}

TEST(Dependence, BatchedGemmBatchLoopParallel) {
  // S1(b,i,j,k): C[b][i][j] += A[b][i][k] * B[b][k][j]
  std::vector<std::string> dims{"b", "i", "j", "k"};
  IntegerSet domain("S1", dims);
  domain.addRange("b", d("B0"));
  domain.addRange("i", d("M"));
  domain.addRange("j", d("N"));
  domain.addRange("k", d("K"));
  StatementInfo stmt{"S1", domain, {}};
  stmt.accesses.push_back(access("C", dims, {d("b"), d("i"), d("j")}, true));
  stmt.accesses.push_back(access("C", dims, {d("b"), d("i"), d("j")}, false));
  stmt.accesses.push_back(access("A", dims, {d("b"), d("i"), d("k")}, false));
  stmt.accesses.push_back(access("B", dims, {d("b"), d("k"), d("j")}, false));
  DependenceAnalysis analysis({stmt});
  EXPECT_TRUE(analysis.isLoopParallel("S1", 0));
  EXPECT_TRUE(analysis.isLoopParallel("S1", 1));
  EXPECT_TRUE(analysis.isLoopParallel("S1", 2));
  EXPECT_FALSE(analysis.isLoopParallel("S1", 3));
  EXPECT_TRUE(analysis.isBandPermutable("S1", 0, 4));
}

TEST(Dependence, LoopCarriedFlowBlocksParallelism) {
  // S(i): A[i] = A[i-1]  -- flow dependence carried at level 0.
  std::vector<std::string> dims{"i"};
  IntegerSet domain("S", dims);
  domain.addGe(d("i") - AffineExpr::constant(1));  // i >= 1
  domain.addGe(d("M") - d("i") - AffineExpr::constant(1));
  StatementInfo stmt{"S", domain, {}};
  stmt.accesses.push_back(access("A", dims, {d("i")}, true));
  stmt.accesses.push_back(
      access("A", dims, {d("i") - AffineExpr::constant(1)}, false));
  DependenceAnalysis analysis({stmt});
  EXPECT_FALSE(analysis.isLoopParallel("S", 0));
}

TEST(Dependence, IndependentColumnsStayParallel) {
  // S(i,j): A[j] accumulation: j-carried only, i parallel.
  std::vector<std::string> dims{"i", "j"};
  IntegerSet domain("S", dims);
  domain.addRange("i", d("M"));
  domain.addRange("j", d("N"));
  StatementInfo stmt{"S", domain, {}};
  stmt.accesses.push_back(access("A", dims, {d("i")}, true));
  stmt.accesses.push_back(access("A", dims, {d("i")}, false));
  DependenceAnalysis analysis({stmt});
  EXPECT_TRUE(analysis.isLoopParallel("S", 0));
  EXPECT_FALSE(analysis.isLoopParallel("S", 1));
}

TEST(Dependence, SkewedStencilNotPermutable) {
  // S(t,i): A[i] = A[i-1] + A[i+1] (classic stencil written in-place):
  // has a negative-distance component, so the 2D band is not permutable.
  std::vector<std::string> dims{"t", "i"};
  IntegerSet domain("S", dims);
  domain.addRange("t", d("T"));
  domain.addGe(d("i") - AffineExpr::constant(1));
  domain.addGe(d("M") - d("i") - AffineExpr::constant(2));
  StatementInfo stmt{"S", domain, {}};
  stmt.accesses.push_back(access("A", dims, {d("i")}, true));
  stmt.accesses.push_back(
      access("A", dims, {d("i") - AffineExpr::constant(1)}, false));
  stmt.accesses.push_back(
      access("A", dims, {d("i") + AffineExpr::constant(1)}, false));
  DependenceAnalysis analysis({stmt});
  EXPECT_FALSE(analysis.isLoopParallel("S", 0));
  EXPECT_FALSE(analysis.isBandPermutable("S", 0, 2));
}

TEST(Dependence, ReadOnlyArraysProduceNoDependence) {
  // S(i,j): C[i][j] = A[i][j] + B[i][j]: fully parallel.
  std::vector<std::string> dims{"i", "j"};
  IntegerSet domain("S", dims);
  domain.addRange("i", d("M"));
  domain.addRange("j", d("N"));
  StatementInfo stmt{"S", domain, {}};
  stmt.accesses.push_back(access("C", dims, {d("i"), d("j")}, true));
  stmt.accesses.push_back(access("A", dims, {d("i"), d("j")}, false));
  stmt.accesses.push_back(access("B", dims, {d("i"), d("j")}, false));
  DependenceAnalysis analysis({stmt});
  EXPECT_TRUE(analysis.isLoopParallel("S", 0));
  EXPECT_TRUE(analysis.isLoopParallel("S", 1));
  EXPECT_TRUE(analysis.isBandPermutable("S", 0, 2));
  EXPECT_TRUE(analysis.selfDependences("S").empty());
}

}  // namespace
}  // namespace sw::poly
