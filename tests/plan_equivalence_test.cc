// The lowered execution plan (runtime/plan.h) must be observationally
// identical to the tree-walking reference interpreter: bit-identical C,
// identical counters, and identical simulated seconds, across shapes,
// option sets, and fault-injected runs.  These tests run every case
// through both engines via runGemmFunctional and compare exhaustively.
// The native JIT engine (src/jit) is pinned the same way: bit-identical C
// and identical discrete counters (its timing counters stay zero — wall
// clock is measured, not simulated).
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "jit/native_engine.h"
#include "kernel/reference.h"
#include "runtime/plan.h"
#include "sunway/fault.h"

namespace sw::core {
namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

void expectCountersEqual(const sunway::CpeCounters& plan,
                         const sunway::CpeCounters& tree) {
  EXPECT_EQ(plan.dmaMessages, tree.dmaMessages);
  EXPECT_EQ(plan.dmaBytes, tree.dmaBytes);
  EXPECT_EQ(plan.rmaBroadcastsSent, tree.rmaBroadcastsSent);
  EXPECT_EQ(plan.rmaBytesSent, tree.rmaBytesSent);
  EXPECT_EQ(plan.syncs, tree.syncs);
  EXPECT_EQ(plan.microKernelCalls, tree.microKernelCalls);
  EXPECT_EQ(plan.flops, tree.flops);
  EXPECT_EQ(plan.computeSeconds, tree.computeSeconds);
  EXPECT_EQ(plan.dmaBusySeconds, tree.dmaBusySeconds);
  EXPECT_EQ(plan.rmaBusySeconds, tree.rmaBusySeconds);
  EXPECT_EQ(plan.waitStallSeconds, tree.waitStallSeconds);
  EXPECT_EQ(plan.faultsInjected, tree.faultsInjected);
  EXPECT_EQ(plan.dmaRetries, tree.dmaRetries);
}

struct PlanCase {
  const char* label;
  std::int64_t m, n, k, batch;
  double alpha, beta;
  bool batched = false;
  bool useRma = true;
  bool hideLatency = true;
  bool useAsm = true;
  FusionKind fusion = FusionKind::kNone;
  const char* inject = nullptr;  // --inject spec, nullptr = no faults
  bool edgeTiles = false;        // compile edge tiles, run unpadded
  int microMr = 4, microNr = 8;  // register-blocked micro-kernel variant
};

CodegenOptions optionsFor(const PlanCase& pc) {
  CodegenOptions options;
  options.batched = pc.batched;
  options.useRma = pc.useRma;
  options.hideLatency = pc.hideLatency;
  options.useAsm = pc.useAsm;
  options.fusion = pc.fusion;
  options.edgeTiles = pc.edgeTiles;
  options.microMr = pc.microMr;
  options.microNr = pc.microNr;
  return options;
}

class PlanEquivalence : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanEquivalence, MatchesTreeWalkBitExactly) {
  const PlanCase& pc = GetParam();
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(optionsFor(pc));
  ASSERT_NE(kernel.plan, nullptr);

  const std::int64_t countA = pc.batch * pc.m * pc.k;
  const std::int64_t countB = pc.batch * pc.k * pc.n;
  const std::int64_t countC = pc.batch * pc.m * pc.n;
  std::vector<double> a = randomMatrix(countA, 101);
  std::vector<double> b = randomMatrix(countB, 102);
  std::vector<double> cInit = randomMatrix(countC, 103);
  GemmProblem problem{pc.m, pc.n, pc.k, pc.batch, pc.alpha, pc.beta};

  FunctionalRunConfig planConfig;
  FunctionalRunConfig treeConfig;
  treeConfig.engine = rt::ExecEngine::kTreeWalk;
  if (pc.inject != nullptr) {
    auto plan = std::make_shared<const sunway::FaultPlan>(
        sunway::FaultPlan::parse(pc.inject));
    planConfig.faultPlan = plan;
    treeConfig.faultPlan = plan;
  }

  std::vector<double> cPlan = cInit;
  rt::RunOutcome planOutcome = runGemmFunctional(
      kernel, compiler.arch(), problem, a, b, cPlan, planConfig);
  std::vector<double> cTree = cInit;
  rt::RunOutcome treeOutcome = runGemmFunctional(
      kernel, compiler.arch(), problem, a, b, cTree, treeConfig);

  // Bit-identical result matrix (memcmp distinguishes -0.0 from 0.0 and
  // NaN payloads, which a numeric comparison would not).
  EXPECT_EQ(std::memcmp(cPlan.data(), cTree.data(),
                        static_cast<std::size_t>(countC) * sizeof(double)),
            0)
      << "max |diff| = "
      << kernel::maxAbsDiff(cPlan.data(), cTree.data(), countC);
  EXPECT_EQ(planOutcome.seconds, treeOutcome.seconds);
  expectCountersEqual(planOutcome.counters, treeOutcome.counters);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanEquivalence,
    ::testing::Values(
        PlanCase{"square", 128, 128, 128, 1, 1.0, 1.0},
        PlanCase{"nonsquare", 65, 129, 33, 1, -2.5, 0.5},
        PlanCase{"batched", 64, 96, 64, 3, 1.25, 0.75, /*batched=*/true},
        PlanCase{"fused_relu", 96, 64, 64, 1, 1.0, 1.0, false, true, true,
                 true, FusionKind::kEpilogueRelu},
        PlanCase{"fused_quant", 64, 64, 96, 1, 0.5, 2.0, false, true, true,
                 true, FusionKind::kPrologueQuantize},
        PlanCase{"no_rma", 128, 96, 64, 1, 1.0, 1.0, false, /*useRma=*/false,
                 /*hideLatency=*/false},
        PlanCase{"naive_compute", 100, 100, 100, 1, 1.0, 1.0, false, true,
                 true, /*useAsm=*/false},
        PlanCase{"faulted", 128, 64, 64, 1, 1.0, 1.0, false, true, true, true,
                 FusionKind::kNone, "dma-drop:occ=1:count=2"},
        PlanCase{"fault_delay_mix", 96, 96, 96, 1, 1.0, 0.0, false, true,
                 true, true, FusionKind::kNone,
                 "dma-delay:occ=0:count=3:seconds=2e-6;stall:cpe=5:occ=1:"
                 "seconds=1e-6"},
        // Edge-tile kernels bind the caller's unpadded arrays; both engines
        // must clamp identically.
        PlanCase{"edge_square", 100, 100, 100, 1, 1.0, 1.0, false, true,
                 true, true, FusionKind::kNone, nullptr, /*edgeTiles=*/true},
        PlanCase{"edge_irregular", 63, 129, 65, 1, -1.5, 0.25, false, true,
                 true, true, FusionKind::kNone, nullptr, /*edgeTiles=*/true},
        PlanCase{"edge_no_rma", 65, 63, 33, 1, 1.0, 1.0, false,
                 /*useRma=*/false, /*hideLatency=*/false, true,
                 FusionKind::kNone, nullptr, /*edgeTiles=*/true},
        // Non-default register blocking must stay engine-invariant too.
        PlanCase{"mk_2x16", 96, 64, 64, 1, 1.0, 1.0, false, true, true, true,
                 FusionKind::kNone, nullptr, false, /*microMr=*/2,
                 /*microNr=*/16}),
    [](const ::testing::TestParamInfo<PlanCase>& info) {
      return info.param.label;
    });

// ---------------------------------------------------------------------------
// Native JIT engine equivalence: bit-identical C and identical discrete
// counters vs. the tree-walk reference.  Timing counters are asserted zero
// (the native engine measures wall clock; it does not simulate time).
// ---------------------------------------------------------------------------

void expectDiscreteCountersEqual(const sunway::CpeCounters& native,
                                 const sunway::CpeCounters& tree) {
  EXPECT_EQ(native.dmaMessages, tree.dmaMessages);
  EXPECT_EQ(native.dmaBytes, tree.dmaBytes);
  EXPECT_EQ(native.rmaBroadcastsSent, tree.rmaBroadcastsSent);
  EXPECT_EQ(native.rmaBytesSent, tree.rmaBytesSent);
  EXPECT_EQ(native.syncs, tree.syncs);
  EXPECT_EQ(native.microKernelCalls, tree.microKernelCalls);
  EXPECT_EQ(native.flops, tree.flops);
}

std::string testJitCacheDir() {
  return ::testing::TempDir() + "swcodegen-jit-equivalence";
}

class NativeEquivalence : public ::testing::TestWithParam<PlanCase> {};

TEST_P(NativeEquivalence, MatchesTreeWalkBitExactly) {
  const PlanCase& pc = GetParam();
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(optionsFor(pc));
  ASSERT_NE(kernel.plan, nullptr);

  const std::int64_t countA = pc.batch * pc.m * pc.k;
  const std::int64_t countB = pc.batch * pc.k * pc.n;
  const std::int64_t countC = pc.batch * pc.m * pc.n;
  std::vector<double> a = randomMatrix(countA, 201);
  std::vector<double> b = randomMatrix(countB, 202);
  std::vector<double> cInit = randomMatrix(countC, 203);
  GemmProblem problem{pc.m, pc.n, pc.k, pc.batch, pc.alpha, pc.beta};

  FunctionalRunConfig nativeConfig;
  nativeConfig.engine = rt::ExecEngine::kNative;
  nativeConfig.jitCacheDir = testJitCacheDir();
  FunctionalRunConfig treeConfig;
  treeConfig.engine = rt::ExecEngine::kTreeWalk;

  std::vector<double> cNative = cInit;
  rt::RunOutcome nativeOutcome = runGemmFunctional(
      kernel, compiler.arch(), problem, a, b, cNative, nativeConfig);
  // A silent fallback to the plan engine would make the comparison below
  // vacuous: the point of this suite is the JIT'd machine code.
  ASSERT_EQ(nativeOutcome.engine, "native")
      << "native engine degraded instead of running";
  std::vector<double> cTree = cInit;
  rt::RunOutcome treeOutcome = runGemmFunctional(
      kernel, compiler.arch(), problem, a, b, cTree, treeConfig);

  EXPECT_EQ(std::memcmp(cNative.data(), cTree.data(),
                        static_cast<std::size_t>(countC) * sizeof(double)),
            0)
      << "max |diff| = "
      << kernel::maxAbsDiff(cNative.data(), cTree.data(), countC);
  expectDiscreteCountersEqual(nativeOutcome.counters, treeOutcome.counters);
  EXPECT_EQ(nativeOutcome.counters.computeSeconds, 0.0);
  EXPECT_EQ(nativeOutcome.counters.dmaBusySeconds, 0.0);
  EXPECT_EQ(nativeOutcome.counters.rmaBusySeconds, 0.0);
  EXPECT_EQ(nativeOutcome.counters.waitStallSeconds, 0.0);
  EXPECT_EQ(nativeOutcome.hostCopyBytes, treeOutcome.hostCopyBytes);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NativeEquivalence,
    ::testing::Values(
        PlanCase{"square", 128, 128, 128, 1, 1.0, 1.0},
        PlanCase{"nonsquare", 65, 129, 33, 1, -2.5, 0.5},
        PlanCase{"beta_zero", 96, 96, 96, 1, 1.0, 0.0},
        PlanCase{"batched", 64, 96, 64, 3, 1.25, 0.75, /*batched=*/true},
        PlanCase{"fused_relu", 96, 64, 64, 1, 1.0, 1.0, false, true, true,
                 true, FusionKind::kEpilogueRelu},
        PlanCase{"fused_quant", 64, 64, 96, 1, 0.5, 2.0, false, true, true,
                 true, FusionKind::kPrologueQuantize},
        PlanCase{"no_rma", 128, 96, 64, 1, 1.0, 1.0, false, /*useRma=*/false,
                 /*hideLatency=*/false},
        PlanCase{"naive_compute", 100, 100, 100, 1, 1.0, 1.0, false, true,
                 true, /*useAsm=*/false},
        PlanCase{"edge_square", 100, 100, 100, 1, 1.0, 1.0, false, true,
                 true, true, FusionKind::kNone, nullptr, /*edgeTiles=*/true},
        PlanCase{"edge_irregular", 63, 129, 65, 1, -1.5, 0.25, false, true,
                 true, true, FusionKind::kNone, nullptr, /*edgeTiles=*/true},
        PlanCase{"edge_no_rma", 65, 63, 33, 1, 1.0, 1.0, false,
                 /*useRma=*/false, /*hideLatency=*/false, true,
                 FusionKind::kNone, nullptr, /*edgeTiles=*/true},
        PlanCase{"mk_2x16", 96, 64, 64, 1, 1.0, 1.0, false, true, true, true,
                 FusionKind::kNone, nullptr, false, /*microMr=*/2,
                 /*microNr=*/16},
        PlanCase{"mk_8x4_edge", 63, 65, 40, 1, 2.0, -0.5, false, true, true,
                 true, FusionKind::kNone, nullptr, /*edgeTiles=*/true,
                 /*microMr=*/8, /*microNr=*/4}),
    [](const ::testing::TestParamInfo<PlanCase>& info) {
      return info.param.label;
    });

TEST(NativeEquivalence, SecondRunHitsTheObjectCache) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  std::vector<double> a = randomMatrix(128 * 128, 301);
  std::vector<double> b = randomMatrix(128 * 128, 302);
  std::vector<double> c(128 * 128, 0.0);
  GemmProblem problem{128, 128, 128, 1, 1.0, 0.0};
  FunctionalRunConfig config;
  config.engine = rt::ExecEngine::kNative;
  config.jitCacheDir = ::testing::TempDir() + "swcodegen-jit-cachehit";
  rt::RunOutcome first =
      runGemmFunctional(kernel, compiler.arch(), problem, a, b, c, config);
  ASSERT_EQ(first.engine, "native");
  rt::RunOutcome second =
      runGemmFunctional(kernel, compiler.arch(), problem, a, b, c, config);
  ASSERT_EQ(second.engine, "native");
  EXPECT_TRUE(second.jitCacheHit);
  // A fresh process would probe the disk cache instead of the handle
  // table; that path is equally a hit.
  jit::resetNativeEngineForTest();
  rt::RunOutcome third =
      runGemmFunctional(kernel, compiler.arch(), problem, a, b, c, config);
  ASSERT_EQ(third.engine, "native");
  EXPECT_TRUE(third.jitCacheHit);
}

TEST(NativeEquivalence, FaultPlanPinsTheSimulator) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  std::vector<double> a = randomMatrix(64 * 64, 401);
  std::vector<double> b = randomMatrix(64 * 64, 402);
  std::vector<double> c(64 * 64, 0.0);
  GemmProblem problem{64, 64, 64, 1, 1.0, 0.0};
  FunctionalRunConfig config;
  config.engine = rt::ExecEngine::kNative;
  config.jitCacheDir = testJitCacheDir();
  config.faultPlan = std::make_shared<const sunway::FaultPlan>(
      sunway::FaultPlan::parse("dma-drop:occ=1:count=1"));
  rt::RunOutcome outcome =
      runGemmFunctional(kernel, compiler.arch(), problem, a, b, c, config);
  // Fault injection is a simulator feature: the run must use the plan
  // engine, not silently skip injection inside JIT'd code.
  EXPECT_EQ(outcome.engine, "plan");
  EXPECT_GT(outcome.counters.faultsInjected, 0);
}

TEST(PlanEquivalence, EstimatorTimingMatchesTreeWalk) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  ASSERT_NE(kernel.plan, nullptr);
  auto params = rt::bindParams(kernel.program, 512, 512, 512);
  const double flops = rt::gemmFlops(512, 512, 512);
  rt::RunOutcome plan = rt::estimateTiming(compiler.arch(), kernel.program,
                                           params, flops, kernel.plan.get());
  rt::RunOutcome tree =
      rt::estimateTiming(compiler.arch(), kernel.program, params, flops);
  EXPECT_EQ(plan.seconds, tree.seconds);
  expectCountersEqual(plan.counters, tree.counters);
}

TEST(PlanEquivalence, LoweringIsDeterministic) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  auto relowered = rt::lowerToPlan(kernel.program);
  ASSERT_NE(kernel.plan, nullptr);
  EXPECT_EQ(kernel.plan->code.size(), relowered->code.size());
  EXPECT_EQ(kernel.plan->frameSlots, relowered->frameSlots);
  EXPECT_EQ(kernel.plan->exprs.size(), relowered->exprs.size());
}

}  // namespace
}  // namespace sw::core
