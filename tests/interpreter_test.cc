// Unit tests of the kernel-program interpreter on hand-built programs,
// executed against the sequential estimator backend: loop/assign variable
// scoping, double-buffer phase resolution, sender-guard evaluation, and
// parameter binding.
#include <gtest/gtest.h>

#include "codegen/program.h"
#include "runtime/executor.h"
#include "runtime/interpreter.h"
#include "sunway/estimator.h"
#include "support/error.h"

namespace sw::rt {
namespace {

using codegen::AssignOp;
using codegen::KernelProgram;
using codegen::LoopOp;
using codegen::Op;
using codegen::RmaOp;
using codegen::SpmBufferDecl;
using codegen::SyncOp;
using codegen::WaitOp;
using sched::CopyKind;
using sched::CopyStmt;
using sched::Extent;
using sched::SpmBufferRef;

KernelProgram skeleton() {
  KernelProgram program;
  program.name = "test";
  program.params = {"M", "N", "K"};
  program.arrays = {codegen::ArrayInfo{"A", "", "M", "K"}};
  program.buffers = {SpmBufferDecl{"A", 8, 8, 2, 0}};
  codegen::planSpmLayout(program, 256 * 1024);
  return program;
}

CopyStmt dmaGetA(const std::string& phaseVar, std::int64_t phaseOffset) {
  CopyStmt stmt;
  stmt.name = "getA";
  stmt.kind = CopyKind::kDmaGet;
  stmt.array = "A";
  stmt.buffer = SpmBufferRef{"A", phaseVar.empty()
                                      ? std::optional<std::string>()
                                      : std::optional<std::string>(phaseVar),
                             phaseOffset};
  stmt.rowStart = poly::AffineExpr::dim("x") * 8;
  stmt.colStart = poly::AffineExpr::constant(0);
  stmt.rowsParam = "M";
  stmt.colsParam = "K";
  stmt.tileRows = 8;
  stmt.tileCols = 8;
  stmt.replySlot = "r";
  return stmt;
}

TEST(Interpreter, LoopTripCountFollowsParams) {
  KernelProgram program = skeleton();
  codegen::OpList body;
  body.push_back(Op{SyncOp{}});
  program.body.push_back(Op{LoopOp{"x", Extent::constant(0),
                                   Extent::paramDiv("M", 64),
                                   std::move(body)}});
  sunway::SymmetricCpeServices cpe(sunway::ArchConfig{});
  runCpeProgram(program, {{"M", 256}, {"N", 64}, {"K", 64}}, ExecScalars{},
                cpe);
  EXPECT_EQ(cpe.counters().syncs, 4);
}

TEST(Interpreter, AssignBindsSingleValue) {
  KernelProgram program = skeleton();
  codegen::OpList body;
  body.push_back(Op{codegen::DmaOp{dmaGetA("", 0)}});
  body.push_back(Op{WaitOp{"r", false, true}});
  program.body.push_back(Op{AssignOp{"x", Extent::paramDiv("M", 64).plus(-1),
                                     std::move(body)}});
  sunway::SymmetricCpeServices cpe(sunway::ArchConfig{});
  // With M = 128, x = 1 -> rowStart = 8; must evaluate without error.
  runCpeProgram(program, {{"M", 128}, {"N", 64}, {"K", 64}}, ExecScalars{},
                cpe);
  EXPECT_EQ(cpe.counters().dmaMessages, 1);
}

TEST(Interpreter, LoopVarOutOfScopeAfterLoop) {
  KernelProgram program = skeleton();
  program.body.push_back(Op{LoopOp{"x", Extent::constant(0),
                                   Extent::constant(2), {}}});
  // A DMA referencing x after the loop must fail: the variable is gone.
  program.body.push_back(Op{codegen::DmaOp{dmaGetA("", 0)}});
  sunway::SymmetricCpeServices cpe(sunway::ArchConfig{});
  EXPECT_THROW(runCpeProgram(program, {{"M", 128}, {"N", 64}, {"K", 64}},
                             ExecScalars{}, cpe),
               sw::InternalError);
}

TEST(Interpreter, ShadowedLoopVarRestoredAfterInnerLoop) {
  // Regression: the inner loop shadows the outer 'x'; leaving the inner
  // scope used to erase the binding outright, so the DMA that follows saw
  // 'x' as unbound.  It must see the outer iteration value again.
  KernelProgram program = skeleton();
  codegen::OpList inner;
  inner.push_back(Op{SyncOp{}});
  codegen::OpList outerBody;
  outerBody.push_back(Op{LoopOp{"x", Extent::constant(0), Extent::constant(2),
                                std::move(inner)}});
  outerBody.push_back(Op{codegen::DmaOp{dmaGetA("", 0)}});
  outerBody.push_back(Op{WaitOp{"r", false, true}});
  program.body.push_back(Op{LoopOp{"x", Extent::constant(0),
                                   Extent::constant(3),
                                   std::move(outerBody)}});
  sunway::SymmetricCpeServices cpe(sunway::ArchConfig{});
  runCpeProgram(program, {{"M", 128}, {"N", 64}, {"K", 64}}, ExecScalars{},
                cpe);
  EXPECT_EQ(cpe.counters().dmaMessages, 3);
  EXPECT_EQ(cpe.counters().syncs, 6);
}

TEST(Interpreter, ShadowedAssignRestoresOuterBinding) {
  // Same hazard through AssignOp: a nested assign to 'x' must not destroy
  // the surrounding loop's binding when its body ends.
  KernelProgram program = skeleton();
  codegen::OpList assignBody;
  assignBody.push_back(Op{SyncOp{}});
  codegen::OpList loopBody;
  loopBody.push_back(Op{AssignOp{"x", Extent::constant(0),
                                 std::move(assignBody)}});
  loopBody.push_back(Op{codegen::DmaOp{dmaGetA("", 0)}});
  loopBody.push_back(Op{WaitOp{"r", false, true}});
  program.body.push_back(Op{LoopOp{"x", Extent::constant(1),
                                   Extent::constant(3),
                                   std::move(loopBody)}});
  sunway::SymmetricCpeServices cpe(sunway::ArchConfig{});
  runCpeProgram(program, {{"M", 128}, {"N", 64}, {"K", 64}}, ExecScalars{},
                cpe);
  EXPECT_EQ(cpe.counters().dmaMessages, 2);
}

TEST(Interpreter, PhaseResolutionAlternatesBuffers) {
  // Two DMA issues at x = 0 and x = 1 with phaseVar x must land in the
  // two phases of the double buffer; we check via distinct SPM offsets by
  // running on a functional-free backend that records nothing — instead
  // verify indirectly through the estimator's engine serialisation: both
  // issues target different offsets, which we can't observe here, so this
  // test validates that phase arithmetic accepts offsets and negatives.
  KernelProgram program = skeleton();
  codegen::OpList body;
  body.push_back(Op{codegen::DmaOp{dmaGetA("x", 1)}});
  body.push_back(Op{WaitOp{"r", false, true}});
  program.body.push_back(Op{LoopOp{"x", Extent::constant(0),
                                   Extent::constant(4), std::move(body)}});
  sunway::SymmetricCpeServices cpe(sunway::ArchConfig{});
  runCpeProgram(program, {{"M", 256}, {"N", 64}, {"K", 64}}, ExecScalars{},
                cpe);
  EXPECT_EQ(cpe.counters().dmaMessages, 4);
}

TEST(Interpreter, SenderGuardSkipsNonSenders) {
  KernelProgram program = skeleton();
  program.buffers.push_back(SpmBufferDecl{"A_rma", 8, 8, 1, 0});
  codegen::planSpmLayout(program, 256 * 1024);
  CopyStmt bcast;
  bcast.name = "bc";
  bcast.kind = CopyKind::kRmaRowBcast;
  bcast.array = "A";
  bcast.buffer = SpmBufferRef{"A_rma", std::nullopt, 0};
  bcast.rmaSource = SpmBufferRef{"A", std::nullopt, 0};
  bcast.rowStart = poly::AffineExpr::constant(0);
  bcast.colStart = poly::AffineExpr::constant(0);
  bcast.tileRows = 8;
  bcast.tileCols = 8;
  bcast.senderGuard =
      sched::SenderGuard{"Cid", poly::AffineExpr::constant(3)};
  bcast.replySlot = "rr";
  program.body.push_back(Op{RmaOp{bcast}});

  // The estimator forces guards true, so the broadcast is accounted.
  sunway::SymmetricCpeServices cpe(sunway::ArchConfig{});
  runCpeProgram(program, {{"M", 64}, {"N", 64}, {"K", 64}}, ExecScalars{},
                cpe);
  EXPECT_EQ(cpe.counters().rmaBroadcastsSent, 1);
}

TEST(Executor, BindParamsMapsNames) {
  codegen::KernelProgram program = skeleton();
  auto params = bindParams(program, 512, 1024, 2048, 4);
  EXPECT_EQ(params.at("M"), 512);
  EXPECT_EQ(params.at("N"), 1024);
  EXPECT_EQ(params.at("K"), 2048);
  program.params.push_back("BATCH");
  params = bindParams(program, 1, 2, 3, 4);
  EXPECT_EQ(params.at("BATCH"), 4);
  program.params.push_back("Q");
  EXPECT_THROW(bindParams(program, 1, 2, 3, 4), sw::InternalError);
}

TEST(Executor, GemmFlopsConvention) {
  EXPECT_DOUBLE_EQ(gemmFlops(64, 64, 32), 2.0 * 64 * 64 * 32);
  EXPECT_DOUBLE_EQ(gemmFlops(64, 64, 32, 4), 8.0 * 64 * 64 * 32);
}

}  // namespace
}  // namespace sw::rt
