// Property tests of the performance model across wide parameter sweeps:
// physical sanity (never above peak, monotone in hardware capability),
// paper-shaped relationships (variant ordering holds everywhere, batch
// scaling is sublinear-overhead), and estimator determinism.
#include <gtest/gtest.h>

#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"

namespace sw::core {
namespace {

struct VariantShape {
  bool useAsm, useRma, hide;
  std::int64_t m, n, k;
};

class PeakBound : public ::testing::TestWithParam<VariantShape> {};

TEST_P(PeakBound, NeverExceedsPeakAndVariantOrderHolds) {
  const VariantShape& p = GetParam();
  SwGemmCompiler compiler;
  CodegenOptions options;
  options.useAsm = p.useAsm;
  options.useRma = p.useRma;
  options.hideLatency = p.hide;
  CompiledKernel kernel = compiler.compile(options);
  const double gflops =
      estimateGemm(kernel, compiler.arch(), GemmProblem{p.m, p.n, p.k})
          .gflops;
  EXPECT_GT(gflops, 0.0);
  EXPECT_LT(gflops, compiler.arch().peakFlops() / 1e9);
}

std::vector<VariantShape> allCombos() {
  std::vector<VariantShape> combos;
  const std::vector<std::array<std::int64_t, 3>> shapes = {
      {512, 512, 256},   {1024, 1024, 1024}, {4096, 2048, 8192},
      {2048, 4096, 512}, {8192, 8192, 15360}};
  for (const auto& s : shapes) {
    combos.push_back({false, false, false, s[0], s[1], s[2]});
    combos.push_back({true, false, false, s[0], s[1], s[2]});
    combos.push_back({true, true, false, s[0], s[1], s[2]});
    combos.push_back({true, true, true, s[0], s[1], s[2]});
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PeakBound, ::testing::ValuesIn(allCombos()),
    [](const ::testing::TestParamInfo<VariantShape>& info) {
      const VariantShape& p = info.param;
      return std::string(p.useAsm ? "asm" : "noasm") +
             (p.useRma ? "_rma" : "_norma") + (p.hide ? "_hide" : "_nohide") +
             "_" + std::to_string(p.m) + "x" + std::to_string(p.n) + "x" +
             std::to_string(p.k);
    });

TEST(EstimatorProperty, VariantOrderingHoldsAcrossShapes) {
  SwGemmCompiler compiler;
  std::vector<CompiledKernel> kernels;
  for (auto [a, r, h] : {std::array<bool, 3>{false, false, false},
                         std::array<bool, 3>{true, false, false},
                         std::array<bool, 3>{true, true, false},
                         std::array<bool, 3>{true, true, true}}) {
    CodegenOptions options;
    options.useAsm = a;
    options.useRma = r;
    options.hideLatency = h;
    kernels.push_back(compiler.compile(options));
  }
  for (std::int64_t m : {512, 2048, 8192})
    for (std::int64_t k : {256, 2048, 16384}) {
      double previous = 0.0;
      for (const CompiledKernel& kernel : kernels) {
        const double gflops =
            estimateGemm(kernel, compiler.arch(), GemmProblem{m, m, k})
                .gflops;
        EXPECT_GT(gflops, previous)
            << "variant ordering violated at " << m << "x" << m << "x" << k;
        previous = gflops;
      }
    }
}

TEST(EstimatorProperty, FasterMemoryNeverHurts) {
  SwGemmCompiler base;
  CompiledKernel kernel = base.compile(CodegenOptions{});
  for (std::int64_t k : {256, 1024, 8192}) {
    const GemmProblem problem{4096, 4096, k};
    sunway::ArchConfig slow;
    slow.ddrBandwidthBytesPerSec = 20e9;
    sunway::ArchConfig fast;
    fast.ddrBandwidthBytesPerSec = 80e9;
    EXPECT_LE(estimateGemm(kernel, fast, problem).seconds,
              estimateGemm(kernel, slow, problem).seconds)
        << k;
  }
}

TEST(EstimatorProperty, FasterRmaNeverHurts) {
  SwGemmCompiler base;
  CodegenOptions options;
  options.hideLatency = false;  // RMA on the critical path
  CompiledKernel kernel = base.compile(options);
  sunway::ArchConfig slow;
  slow.rmaBandwidthBytesPerSec = 10e9;
  sunway::ArchConfig fast;
  fast.rmaBandwidthBytesPerSec = 160e9;
  const GemmProblem problem{4096, 4096, 4096};
  EXPECT_LT(estimateGemm(kernel, fast, problem).seconds,
            estimateGemm(kernel, slow, problem).seconds);
}

TEST(EstimatorProperty, EfficiencyImprovesWithScale) {
  // Fixed per-run overheads amortise: percentage of peak is non-decreasing
  // in the (square) problem size for the full pipeline.
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  double previous = 0.0;
  for (std::int64_t s : {512, 1024, 2048, 4096, 8192, 16384}) {
    const double gflops =
        estimateGemm(kernel, compiler.arch(), GemmProblem{s, s, s}).gflops;
    EXPECT_GE(gflops, previous) << s;
    previous = gflops;
  }
}

TEST(EstimatorProperty, BatchScalingApproachesLinear) {
  SwGemmCompiler compiler;
  CodegenOptions options;
  options.batched = true;
  CompiledKernel kernel = compiler.compile(options);
  const GemmProblem one{1024, 1024, 1024, 1};
  const GemmProblem sixteen{1024, 1024, 1024, 16};
  const double t1 = estimateGemm(kernel, compiler.arch(), one).seconds;
  const double t16 =
      estimateGemm(kernel, compiler.arch(), sixteen).seconds;
  // One spawn amortised over 16 elements: strictly less than 16x, but more
  // than 15x (no superlinear magic).
  EXPECT_LT(t16, 16.0 * t1);
  EXPECT_GT(t16, 15.0 * t1);
}

TEST(EstimatorProperty, DeterministicAcrossCalls) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const GemmProblem problem{4096, 4096, 4096};
  const double a = estimateGemm(kernel, compiler.arch(), problem).seconds;
  const double b = estimateGemm(kernel, compiler.arch(), problem).seconds;
  EXPECT_EQ(a, b);
}

TEST(EstimatorProperty, PipeliningShrinksExposedStall) {
  // The occupancy breakdown: latency hiding must convert wait-stall time
  // into overlap, and the accounting must stay within the total runtime.
  SwGemmCompiler compiler;
  CodegenOptions hide;
  CodegenOptions noHide;
  noHide.hideLatency = false;
  const GemmProblem problem{4096, 4096, 8192};
  auto fast =
      estimateGemm(compiler.compile(hide), compiler.arch(), problem);
  auto slow =
      estimateGemm(compiler.compile(noHide), compiler.arch(), problem);
  EXPECT_LT(fast.counters.waitStallSeconds,
            0.5 * slow.counters.waitStallSeconds);
  for (const auto& outcome : {fast, slow}) {
    EXPECT_LE(outcome.counters.waitStallSeconds, outcome.seconds);
    EXPECT_LE(outcome.counters.computeSeconds, outcome.seconds);
    // Compute + stall can never exceed the clock they both advance.
    EXPECT_LE(outcome.counters.computeSeconds +
                  outcome.counters.waitStallSeconds,
              outcome.seconds * 1.0001);
  }
  // DMA engine busy time is identical (same traffic), only its overlap
  // with compute changes.
  EXPECT_NEAR(fast.counters.dmaBusySeconds, slow.counters.dmaBusySeconds,
              0.01 * slow.counters.dmaBusySeconds);
}

TEST(EstimatorProperty, DmaVolumeMatchesAnalyticalFormula) {
  // Per CPE and mesh tile: C in+out (2*64*64) plus K/256 iterations of
  // (64*32 + 32*64) doubles; 64 CPEs, (M/512)*(N/512) mesh tiles.
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  for (std::int64_t s : {512, 1024}) {
    const GemmProblem problem{s, s, s};
    const auto outcome = estimateGemm(kernel, compiler.arch(), problem);
    // The symmetric estimator models one CPE; counters are per-CPE here.
    const std::int64_t meshTiles = (s / 512) * (s / 512);
    const std::int64_t expected =
        meshTiles * (2 * 64 * 64 + (s / 256) * (64 * 32 + 32 * 64)) * 8;
    EXPECT_EQ(outcome.counters.dmaBytes, expected) << s;
  }
}

}  // namespace
}  // namespace sw::core
