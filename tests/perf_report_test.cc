// Tests of the performance-report layer: attribution buckets sum to 100%
// on real mesh and estimator runs, the roofline verdict flips between
// DMA-bound (small K) and compute-bound (large K), the JSON rendering is
// well-formed and schema-stable, and degenerate samples never divide by
// zero.
#include <gtest/gtest.h>

#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "json_checker_test_util.h"
#include "runtime/executor.h"
#include "support/perf_report.h"

namespace sw {
namespace {

perf::MachineModel testMachine() {
  return rt::machineModelFromArch(sunway::ArchConfig{});
}

TEST(MachineModel, RidgeDerivesFromArch) {
  const sunway::ArchConfig arch;
  const perf::MachineModel machine = rt::machineModelFromArch(arch);
  EXPECT_NEAR(machine.peakGflops,
              arch.peakFlops() * arch.asmKernelEfficiency / 1e9, 1e-9);
  EXPECT_NEAR(machine.peakDmaGBps, arch.ddrBandwidthBytesPerSec / 1e9, 1e-9);
  EXPECT_EQ(machine.meshSize, arch.meshSize());
  EXPECT_NEAR(machine.ridgeFlopsPerByte(),
              machine.peakGflops / machine.peakDmaGBps, 1e-9);
}

TEST(PerfReport, AttributionSumsTo100OnHandMadeSample) {
  perf::RunSample sample;
  sample.kernel = "t";
  sample.engine = "estimator";
  sample.wallSeconds = 10.0;
  sample.cpeCount = 1;
  sample.computeSeconds = 4.0;
  sample.dmaStallSeconds = 2.0;
  sample.rmaStallSeconds = 1.0;
  sample.syncStallSeconds = 0.5;
  sample.retryStallSeconds = 0.5;
  const perf::PerfReport report = perf::buildPerfReport(sample, testMachine());
  EXPECT_NEAR(report.attribution.computePct, 40.0, 1e-9);
  EXPECT_NEAR(report.attribution.exposedDmaPct, 20.0, 1e-9);
  EXPECT_NEAR(report.attribution.exposedRmaPct, 10.0, 1e-9);
  EXPECT_NEAR(report.attribution.syncPct, 5.0, 1e-9);
  EXPECT_NEAR(report.attribution.retryPct, 5.0, 1e-9);
  EXPECT_NEAR(report.attribution.otherPct, 20.0, 1e-9);
  EXPECT_NEAR(report.attribution.sum(), 100.0, 1e-9);
  EXPECT_EQ(report.bottleneck.name, "compute");
  EXPECT_NE(report.bottleneck.evidence.find("%"), std::string::npos);
}

TEST(PerfReport, DegenerateSampleIsAllZeroNeverNaN) {
  const perf::RunSample empty;  // zero wall time, zero counters
  const perf::PerfReport report = perf::buildPerfReport(empty, testMachine());
  EXPECT_EQ(report.attribution.sum(), 0.0);
  EXPECT_EQ(report.roofline.achievedGflops, 0.0);
  EXPECT_EQ(report.roofline.arithmeticIntensity, 0.0);
  EXPECT_EQ(report.roofline.ceilingUtilization, 0.0);
  EXPECT_EQ(report.roofline.verdict, "latency-bound");
  // Every rendered number must be parseable (no nan/inf tokens).
  EXPECT_TRUE(testutil::JsonChecker(report.toJson()).valid());
}

TEST(PerfReport, EstimatorRunBucketsSumTo100) {
  core::SwGemmCompiler compiler;
  const core::CompiledKernel kernel = compiler.compile(core::CodegenOptions{});
  const rt::RunOutcome outcome = core::estimateGemm(
      kernel, compiler.arch(), core::GemmProblem{1024, 1024, 1024, 1});
  EXPECT_EQ(outcome.report.engine, "estimator");
  EXPECT_EQ(outcome.report.kernel, kernel.program.name);
  EXPECT_EQ(outcome.report.m, 1024);
  EXPECT_NEAR(outcome.report.attribution.sum(), 100.0, 0.1);
  EXPECT_GT(outcome.report.attribution.computePct, 0.0);
  EXPECT_NEAR(outcome.report.roofline.achievedGflops, outcome.gflops, 1e-6);
}

TEST(PerfReport, MeshRunBucketsSumTo100) {
  core::SwGemmCompiler compiler;
  const core::CompiledKernel kernel = compiler.compile(core::CodegenOptions{});
  const core::PaddedShape padded =
      core::padShape(1, 1, 1, kernel.options, compiler.arch());
  const std::int64_t m = padded.m, n = padded.n, k = 2 * padded.k;
  std::vector<double> a(static_cast<std::size_t>(m * k), 0.5);
  std::vector<double> b(static_cast<std::size_t>(k * n), 0.25);
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  const rt::RunOutcome outcome = core::runGemmFunctional(
      kernel, compiler.arch(), core::GemmProblem{m, n, k, 1}, a, b, c);
  EXPECT_EQ(outcome.report.engine, "mesh");
  EXPECT_NEAR(outcome.report.attribution.sum(), 100.0, 0.1);
  EXPECT_GT(outcome.report.attribution.computePct, 0.0);
  EXPECT_GT(outcome.report.wallSeconds, 0.0);
}

TEST(PerfReport, VerdictFlipsWithArithmeticIntensity) {
  core::SwGemmCompiler compiler;
  const core::CompiledKernel kernel = compiler.compile(core::CodegenOptions{});

  // Small K: every C tile is amortised over few flops, the DMA roof sits
  // below the compute peak -> dma-bound.
  const rt::RunOutcome smallK = core::estimateGemm(
      kernel, compiler.arch(), core::GemmProblem{4096, 4096, 256, 1});
  EXPECT_LT(smallK.report.roofline.arithmeticIntensity,
            smallK.report.roofline.ridgeFlopsPerByte);
  EXPECT_EQ(smallK.report.roofline.verdict, "dma-bound");

  // Large K: arithmetic intensity beyond the ridge -> compute-bound.
  const rt::RunOutcome largeK = core::estimateGemm(
      kernel, compiler.arch(), core::GemmProblem{4096, 4096, 16384, 1});
  EXPECT_GT(largeK.report.roofline.arithmeticIntensity,
            largeK.report.roofline.ridgeFlopsPerByte);
  EXPECT_EQ(largeK.report.roofline.verdict, "compute-bound");

  // Without latency hiding the same large-K shape leaves the ceilings
  // unexplained: exposed stalls dominate -> latency-bound.
  core::CodegenOptions exposed;
  exposed.hideLatency = false;
  const rt::RunOutcome stalled = core::estimateGemm(
      compiler.compile(exposed), compiler.arch(),
      core::GemmProblem{4096, 4096, 4096, 1});
  EXPECT_EQ(stalled.report.roofline.verdict, "latency-bound");
  EXPECT_LT(stalled.report.roofline.ceilingUtilization,
            perf::kCeilingExplainsThreshold);
}

TEST(PerfReport, JsonIsWellFormedAndSchemaStable) {
  core::SwGemmCompiler compiler;
  const core::CompiledKernel kernel = compiler.compile(core::CodegenOptions{});
  const rt::RunOutcome outcome = core::estimateGemm(
      kernel, compiler.arch(), core::GemmProblem{1024, 1024, 8192, 1});
  const std::string json = outcome.report.toJson();
  EXPECT_TRUE(testutil::JsonChecker(json).valid()) << json;
  // schema_version leads the object so downstream parsers can dispatch.
  EXPECT_EQ(json.rfind("{\"schema_version\":1,", 0), 0u) << json;
  for (const char* key :
       {"\"attribution\":", "\"roofline\":", "\"bottleneck\":",
        "\"counters\":", "\"compute_pct\":", "\"achieved_gflops\":",
        "\"verdict\":", "\"dma_messages\":", "\"wall_seconds\":"})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  EXPECT_EQ(outcome.report.schemaVersion, perf::kPerfReportSchemaVersion);
}

TEST(PerfReport, TextRenderingNamesTheBottleneck) {
  core::SwGemmCompiler compiler;
  const core::CompiledKernel kernel = compiler.compile(core::CodegenOptions{});
  const rt::RunOutcome outcome = core::estimateGemm(
      kernel, compiler.arch(), core::GemmProblem{1024, 1024, 1024, 1});
  const std::string text = outcome.report.toText();
  EXPECT_NE(text.find("time attribution"), std::string::npos);
  EXPECT_NE(text.find("roofline:"), std::string::npos);
  EXPECT_NE(text.find("top bottleneck:"), std::string::npos);
  EXPECT_NE(text.find(outcome.report.roofline.verdict), std::string::npos);
  EXPECT_NE(text.find(outcome.report.bottleneck.name), std::string::npos);
}

}  // namespace
}  // namespace sw
