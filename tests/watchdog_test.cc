// Mesh watchdog and abort-path coverage: a permanently lost message must
// turn into a ProtocolError carrying a per-CPE state dump instead of a
// process hang, a progressing (merely slow) run must never trip the
// watchdog, and the existing abort machinery — barrier abort propagation,
// rethrow-after-join, mesh reuse after an aborted run — must preserve the
// first error verbatim.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "sunway/fault.h"
#include "sunway/host_memory.h"
#include "sunway/mesh.h"
#include "support/error.h"
#include "support/metrics.h"

namespace sw::sunway {
namespace {

std::shared_ptr<const FaultPlan> plan(const std::string& text) {
  return std::make_shared<const FaultPlan>(FaultPlan::parse(text));
}

/// Run `body` and return the ProtocolError message it aborts with.
std::string runExpectingProtocolError(
    MeshSimulator& mesh, const std::function<void(CpeServices&)>& body) {
  try {
    mesh.run(body);
  } catch (const ProtocolError& error) {
    return error.what();
  }
  ADD_FAILURE() << "run finished without a ProtocolError";
  return {};
}

TEST(Watchdog, PermanentDmaDropFiresWithStateDump) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  mesh.memory().add(HostArray::allocate("A", 1, 8, 8));
  mesh.setFaultPlan(plan("dma-drop:cpe=0:occ=0:count=forever"));
  mesh.setWatchdogMillis(150.0);

  const double firedBefore =
      metrics::MetricsRegistry::global().get("watchdog.fired");
  const std::string message =
      runExpectingProtocolError(mesh, [&](CpeServices& cpe) {
        if (cpe.rid() != 0 || cpe.cid() != 0) return;
        DmaRequest request;
        request.array = "A";
        request.tileRows = 2;
        request.tileCols = 2;
        request.slot = "lost";
        cpe.dmaIssue(request);
        cpe.waitSlot("lost", false, true);  // the reply never arrives
      });

  // The dump names the deadlock, the hung CPE's state and the in-flight
  // descriptor, so the failure is diagnosable from the message alone.
  EXPECT_NE(message.find("mesh watchdog: no progress"), std::string::npos)
      << message;
  EXPECT_NE(message.find("1 waiting on a lost DMA reply"), std::string::npos)
      << message;
  EXPECT_NE(message.find("state=dma-hang"), std::string::npos) << message;
  EXPECT_NE(message.find("slot='lost'"), std::string::npos) << message;
  EXPECT_NE(message.find("pending_dma=["), std::string::npos) << message;
  EXPECT_GT(metrics::MetricsRegistry::global().get("watchdog.fired"),
            firedBefore);
}

TEST(Watchdog, PermanentRmaDropHangsReceiversThenFires) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  // CPE (0,3) is the row-0 sender; losing its broadcast strands the other
  // seven receivers of row 0 in an RMA wait (the rest of the mesh waits
  // too — every CPE of a row participates in the broadcast wait).
  mesh.setFaultPlan(plan("rma-drop:cpe=3:occ=0:count=forever"));
  mesh.setWatchdogMillis(150.0);

  const std::string message =
      runExpectingProtocolError(mesh, [&](CpeServices& cpe) {
        if (cpe.rid() != 0) return;
        cpe.spmPtr(1024)[0] = 7.0;
        if (cpe.cid() == 3) {
          RmaRequest request;
          request.kind = RmaKind::kRowBroadcast;
          request.isSender = true;
          request.bytes = 8;
          request.srcSpmOffsetBytes = 1024;
          request.dstSpmOffsetBytes = 0;
          request.slot = "bc";
          cpe.rmaIssue(request);
        }
        cpe.waitSlot("bc", true, true);
      });

  EXPECT_NE(message.find("mesh watchdog: no progress"), std::string::npos)
      << message;
  EXPECT_NE(message.find("waiting on RMA"), std::string::npos) << message;
  EXPECT_NE(message.find("state=rma-wait"), std::string::npos) << message;
}

TEST(Watchdog, MissingBarrierParticipantFires) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/false);
  mesh.setWatchdogMillis(150.0);

  // CPE (0,0) skips the barrier: 63 CPEs park forever — the classic
  // generated-code bug (divergent control flow around synch()).
  const std::string message = runExpectingProtocolError(
      mesh, [&](CpeServices& cpe) {
        if (cpe.rid() == 0 && cpe.cid() == 0) return;
        cpe.sync();
      });

  EXPECT_NE(message.find("63 at barrier"), std::string::npos) << message;
  EXPECT_NE(message.find("1 done"), std::string::npos) << message;
  EXPECT_NE(message.find("state=barrier"), std::string::npos) << message;
}

TEST(Watchdog, SlowButProgressingRunDoesNotFire) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/false);
  mesh.setWatchdogMillis(120.0);

  // Total wall-clock far exceeds the deadline, but every barrier round
  // publishes progress, so the no-progress timer keeps resetting.
  MeshRunResult result = mesh.run([&](CpeServices& cpe) {
    for (int round = 0; round < 6; ++round) {
      if (cpe.rid() == 0 && cpe.cid() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      cpe.sync();
    }
  });
  EXPECT_EQ(result.totals.syncs, 64 * 6);
}

TEST(Watchdog, DefaultDeadlineReadsEnvironment) {
  ::setenv("SWCODEGEN_WATCHDOG_MS", "1234.5", 1);
  EXPECT_DOUBLE_EQ(MeshSimulator::defaultWatchdogMillis(), 1234.5);
  ::setenv("SWCODEGEN_WATCHDOG_MS", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(MeshSimulator::defaultWatchdogMillis(), 5000.0);
  ::unsetenv("SWCODEGEN_WATCHDOG_MS");
  EXPECT_DOUBLE_EQ(MeshSimulator::defaultWatchdogMillis(), 5000.0);
}

// --- existing abort paths (satellite: ProtocolError coverage) -----------

TEST(Abort, BarrierAbortPreservesFirstError) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/false);
  mesh.setWatchdogMillis(0.0);  // the abort path must not need the watchdog

  // One CPE throws while the other 63 wait at the barrier; the barrier
  // must unblock them and the *original* error must win over the
  // secondary "aborted while waiting" ones raised at the barrier.
  const std::string message =
      runExpectingProtocolError(mesh, [&](CpeServices& cpe) {
        if (cpe.rid() == 2 && cpe.cid() == 5)
          throw ProtocolError("injected failure in CPE 2,5");
        cpe.sync();
      });
  EXPECT_EQ(message, "injected failure in CPE 2,5");
}

TEST(Abort, MeshIsReusableAfterAbortedRun) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/false);
  mesh.setWatchdogMillis(0.0);

  EXPECT_THROW(mesh.run([&](CpeServices& cpe) {
    if (cpe.rid() == 0 && cpe.cid() == 1)
      throw ProtocolError("first run dies");
    cpe.sync();
  }),
               ProtocolError);

  // run() resets the abort/error/barrier state, so the same simulator
  // must complete a healthy run afterwards.
  MeshRunResult result = mesh.run([&](CpeServices& cpe) {
    cpe.computeTime(1.0e3, ComputeRate::kElementwise);
    cpe.sync();
  });
  EXPECT_EQ(result.totals.syncs, 64);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(Abort, SpmOutOfBoundsCarriesCpeCoordinates) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  mesh.setWatchdogMillis(0.0);
  const std::string message =
      runExpectingProtocolError(mesh, [&](CpeServices& cpe) {
        if (cpe.rid() != 7 || cpe.cid() != 7) return;
        (void)cpe.spmPtr(config.spmBytes);  // one byte past the SPM
      });
  EXPECT_NE(message.find("SPM"), std::string::npos) << message;
}

TEST(Abort, WatchdogDisabledStillDiagnosesTransientRmaDrop) {
  // A finite rma-drop is *not* a hang: the round arrives marked dropped
  // and every receiver throws a clean ProtocolError naming the round.
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  mesh.setFaultPlan(plan("rma-drop:cpe=3:occ=0:count=1"));
  mesh.setWatchdogMillis(0.0);

  const std::string message =
      runExpectingProtocolError(mesh, [&](CpeServices& cpe) {
        if (cpe.rid() != 0) return;
        cpe.spmPtr(1024)[0] = 7.0;
        if (cpe.cid() == 3) {
          RmaRequest request;
          request.kind = RmaKind::kRowBroadcast;
          request.isSender = true;
          request.bytes = 8;
          request.srcSpmOffsetBytes = 1024;
          request.dstSpmOffsetBytes = 0;
          request.slot = "bc";
          cpe.rmaIssue(request);
        }
        cpe.waitSlot("bc", true, true);
      });
  EXPECT_NE(message.find("dropped in transit (injected fault)"),
            std::string::npos)
      << message;
}

}  // namespace
}  // namespace sw::sunway
