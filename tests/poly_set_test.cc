// Tests for integer sets, affine maps and access relations — the
// polyhedral vocabulary of §2.2.
#include <gtest/gtest.h>

#include "poly/set.h"

namespace sw::poly {
namespace {

AffineExpr d(const std::string& name) { return AffineExpr::dim(name); }

TEST(IntegerSet, ContainsRespectsRanges) {
  IntegerSet set("S", {"i", "j"});
  set.addRange("i", d("M"));
  set.addRange("j", d("N"));
  std::map<std::string, std::int64_t> point{{"i", 0}, {"j", 9}, {"M", 10},
                                            {"N", 10}};
  EXPECT_TRUE(set.contains(point));
  point["i"] = 10;
  EXPECT_FALSE(set.contains(point));
  point["i"] = -1;
  EXPECT_FALSE(set.contains(point));
}

TEST(IntegerSet, ContainsRespectsEqualities) {
  IntegerSet set("S", {"i", "j"});
  set.addEq(d("i") - d("j"));  // i == j
  EXPECT_TRUE(set.contains({{"i", 4}, {"j", 4}}));
  EXPECT_FALSE(set.contains({{"i", 4}, {"j", 5}}));
}

TEST(IntegerSet, SimpleBoundsExtraction) {
  IntegerSet set("S", {"i"});
  set.addRange("i", d("M"));
  auto bounds = set.simpleBounds("i");
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->lower.toString(), "0");
  EXPECT_EQ(bounds->upper.toString(), "M - 1");
}

TEST(IntegerSet, SimpleBoundsRejectsCoupledDims) {
  IntegerSet set("S", {"i", "j"});
  set.addGe(d("i"));
  set.addGe(d("j") - d("i"));  // i <= j: coupled
  set.addGe(d("M") - d("i") - AffineExpr::constant(1));
  EXPECT_FALSE(set.simpleBounds("i").has_value());
}

TEST(IntegerSet, SimpleBoundsRejectsScaledDim) {
  IntegerSet set("S", {"i"});
  set.addGe(d("i") * 2);  // 2i >= 0
  set.addGe(d("M") - d("i") - AffineExpr::constant(1));
  EXPECT_FALSE(set.simpleBounds("i").has_value());
}

TEST(IntegerSet, ToStringIsReadable) {
  IntegerSet set("S1", {"i"});
  set.addRange("i", d("M"));
  const std::string s = set.toString();
  EXPECT_NE(s.find("S1(i)"), std::string::npos);
  EXPECT_NE(s.find(">= 0"), std::string::npos);
}

TEST(AffineMap, IdentityAndEvaluate) {
  AffineMap map = AffineMap::identity({"i", "j"});
  auto values = map.evaluate({{"i", 3}, {"j", 7}});
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 3);
  EXPECT_EQ(values[1], 7);
}

TEST(AffineMap, GeneralAffineOutputs) {
  AffineMap map({"i", "k"}, {d("i") * 64 + d("k"), d("k") - d("i")});
  auto values = map.evaluate({{"i", 2}, {"k", 5}});
  EXPECT_EQ(values[0], 133);
  EXPECT_EQ(values[1], 3);
}

TEST(AccessRelation, ToString) {
  AccessRelation access{"A", AffineMap({"i", "k"}, {d("i"), d("k")}), false};
  EXPECT_EQ(access.toString(), "read A[i][k]");
  access.isWrite = true;
  EXPECT_EQ(access.toString(), "write A[i][k]");
}

}  // namespace
}  // namespace sw::poly
