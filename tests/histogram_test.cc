// Tests of the log-scale histogram: bucket geometry, the pinned
// percentile convention (continuous rank + geometric interpolation, see
// support/histogram.h), merge/clear semantics, and the registry's
// percentile-gauge publication.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "support/histogram.h"
#include "support/metrics.h"

namespace sw {
namespace {

using metrics::Histogram;
using metrics::HistogramRegistry;

TEST(HistogramBuckets, GeometryInvariants) {
  // Bucket 0 is the underflow bucket; the last bucket is the overflow.
  EXPECT_EQ(Histogram::bucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::bucketIndex(-5.0), 0);
  EXPECT_EQ(Histogram::bucketIndex(std::nan("")), 0);
  EXPECT_EQ(Histogram::bucketIndex(Histogram::kMaxValue),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucketIndex(1e9), Histogram::kBucketCount - 1);

  // Every log bucket contains its lower bound and excludes its upper.
  for (int i = 1; i <= Histogram::kLogBuckets; ++i) {
    const double lower = Histogram::bucketLowerBound(i);
    const double upper = Histogram::bucketUpperBound(i);
    EXPECT_LT(lower, upper);
    EXPECT_EQ(Histogram::bucketIndex(lower), i) << "bucket " << i;
    // Bounds tile the range with no gaps.
    if (i < Histogram::kLogBuckets)
      EXPECT_DOUBLE_EQ(upper, Histogram::bucketLowerBound(i + 1));
  }
  // Each decade holds exactly kBucketsPerDecade buckets.
  EXPECT_DOUBLE_EQ(
      Histogram::bucketLowerBound(1 + Histogram::kBucketsPerDecade) /
          Histogram::bucketLowerBound(1),
      10.0);
  EXPECT_NE(Histogram::bucketLabel(3).find('['), std::string::npos);
}

TEST(HistogramPercentile, EmptyAndSingleValue) {
  Histogram h;
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);

  h.record(1.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0);
  EXPECT_DOUBLE_EQ(h.maxRecorded(), 1.0);
  // Closed form: n = 1, rank r = p/100; the single value's bucket is
  // selected with frac = r, value = lower * (upper/lower)^frac, clamped
  // to the recorded maximum (1.0 sits on its bucket's lower edge, so the
  // raw interpolation would overshoot the only sample at every p > 0).
  const int bucket = Histogram::bucketIndex(1.0);
  const double lower = Histogram::bucketLowerBound(bucket);
  const double upper = Histogram::bucketUpperBound(bucket);
  for (const double p : {10.0, 50.0, 90.0}) {
    const double expected =
        std::min(lower * std::pow(upper / lower, p / 100.0), 1.0);
    EXPECT_NEAR(h.percentile(p), expected, 1e-12) << "p" << p;
    EXPECT_LE(h.percentile(p), h.maxRecorded()) << "p" << p;
  }
}

TEST(HistogramPercentile, ClosedFormAcrossTwoBuckets) {
  // One sample in the bucket of 0.001 and three in the bucket of 1.3
  // (strictly inside its bucket, so mid-bucket interpolation is
  // unclamped): cumulative counts are 1 and 4.
  Histogram h;
  h.record(0.001);
  h.record(1.3);
  h.record(1.3);
  h.record(1.3);

  const int low = Histogram::bucketIndex(0.001);
  const int high = Histogram::bucketIndex(1.3);
  // p25: rank = 1, consumed exactly by the first bucket (frac = 1) — the
  // percentile sits at that bucket's upper edge.
  EXPECT_NEAR(h.percentile(25.0), Histogram::bucketUpperBound(low), 1e-12);
  // p100: rank = 4 lands in the last bucket with frac = 1; the raw upper
  // edge overshoots the samples, so the clamp reports the true maximum.
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1.3);
  // p62.5: rank = 2.5, second bucket holds ranks (1, 4], frac = 1.5/3;
  // the geometric interpolation sits below the recorded max (unclamped).
  const double lower = Histogram::bucketLowerBound(high);
  const double upper = Histogram::bucketUpperBound(high);
  const double raw = lower * std::pow(upper / lower, 0.5);
  ASSERT_LT(raw, 1.3);
  EXPECT_NEAR(h.percentile(62.5), raw, 1e-12);
}

TEST(HistogramPercentile, UnderflowInterpolatesLinearlyOverflowClamps) {
  Histogram underflow;
  underflow.record(0.8 * Histogram::kMinValue);
  // Single sample in [0, kMinValue): p50 -> frac 0.5, linear from 0
  // (below the recorded max, so the clamp does not bind).
  EXPECT_NEAR(underflow.percentile(50.0), 0.5 * Histogram::kMinValue, 1e-18);
  // p100 would interpolate to the bucket edge; the clamp pins the sample.
  EXPECT_DOUBLE_EQ(underflow.percentile(100.0), 0.8 * Histogram::kMinValue);

  Histogram zeros;
  zeros.record(0.0);
  zeros.record(0.0);
  // All-zero samples must never report a positive latency.
  EXPECT_DOUBLE_EQ(zeros.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(zeros.percentile(100.0), 0.0);

  Histogram overflow;
  overflow.record(1e9);
  // The overflow bucket has no upper edge; before the clamp fix it
  // reported kMaxValue, six orders of magnitude below the true sample.
  EXPECT_DOUBLE_EQ(overflow.percentile(50.0), 1e9);
  EXPECT_DOUBLE_EQ(overflow.percentile(100.0), 1e9);
  EXPECT_DOUBLE_EQ(overflow.maxRecorded(), 1e9);  // max is exact
}

TEST(HistogramPercentile, PercentilesAreMonotonic) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(0.01 * i);  // 0.01 .. 10
  double last = 0.0;
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double value = h.percentile(p);
    EXPECT_GE(value, last) << "p" << p;
    last = value;
  }
  // The interpolated median of a uniform sample lands near the true one
  // (within one geometric bucket width, ~33% at 8 buckets/decade).
  EXPECT_NEAR(h.percentile(50.0), 5.0, 5.0 * 0.35);
}

TEST(Histogram, MergeAndClear) {
  Histogram a, b;
  a.record(1.0);
  b.record(100.0);
  b.record(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.sum(), 104.0);
  EXPECT_DOUBLE_EQ(a.maxRecorded(), 100.0);
  EXPECT_EQ(a.bucketCount(Histogram::bucketIndex(100.0)), 1);
  a.clear();
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.percentile(99.0), 0.0);
}

TEST(HistogramRegistry, RecordSnapshotPublish) {
  HistogramRegistry& registry = HistogramRegistry::global();
  registry.clear();
  EXPECT_FALSE(registry.has("t.latency"));
  registry.record("t.latency", 2.0);
  registry.record("t.latency", 4.0);
  EXPECT_TRUE(registry.has("t.latency"));
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.count("t.latency"), 1u);
  EXPECT_EQ(snap.at("t.latency").count(), 2);

  metrics::MetricsRegistry& gauges = metrics::MetricsRegistry::global();
  gauges.clear();
  registry.publishPercentiles(gauges, "ms");
  EXPECT_EQ(gauges.get("t.latency.count"), 2.0);
  EXPECT_TRUE(gauges.has("t.latency.p50_ms"));
  EXPECT_TRUE(gauges.has("t.latency.p90_ms"));
  EXPECT_TRUE(gauges.has("t.latency.p99_ms"));
  EXPECT_GT(gauges.get("t.latency.p99_ms"), gauges.get("t.latency.p50_ms"));
  EXPECT_DOUBLE_EQ(gauges.get("t.latency.mean_ms"), 3.0);
  EXPECT_DOUBLE_EQ(gauges.get("t.latency.max_ms"), 4.0);
  registry.clear();
}

}  // namespace
}  // namespace sw
