// End-to-end correctness of the transposed-operand GEMM variants: the
// operand is staged into SPM scratch and transposed on-CPE before the
// micro-kernel, so results must stay bit-exact against a reference that
// materialises op(A)/op(B) first.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "kernel/microkernel.h"
#include "kernel/reference.h"

namespace sw::core {
namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

struct TransCase {
  bool transA, transB;
};

class TransposeVariants : public ::testing::TestWithParam<TransCase> {};

TEST_P(TransposeVariants, MatchesMaterialisedReference) {
  const auto [transA, transB] = GetParam();
  CodegenOptions options;
  options.transposeA = transA;
  options.transposeB = transB;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);

  const std::int64_t m = 512, n = 512, k = 256;
  // Operands in their stored layouts: A is K x M if transposed, etc.
  std::vector<double> a = randomMatrix(m * k, 1);
  std::vector<double> b = randomMatrix(k * n, 2);
  std::vector<double> c = randomMatrix(m * n, 3);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, 1, 1.5, -0.5};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);

  // Materialise op(A), op(B) row-major and use the plain reference.
  std::vector<double> aOp(a.size()), bOp(b.size());
  if (transA)
    kernel::tileTranspose(aOp.data(), a.data(), k, m);  // stored K x M
  else
    aOp = a;
  if (transB)
    kernel::tileTranspose(bOp.data(), b.data(), n, k);  // stored N x K
  else
    bOp = b;
  kernel::referenceGemm(expected.data(), aOp.data(), bOp.data(), m, n, k,
                        problem.alpha, problem.beta);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, TransposeVariants,
    ::testing::Values(TransCase{true, false}, TransCase{false, true},
                      TransCase{true, true}),
    [](const ::testing::TestParamInfo<TransCase>& info) {
      return std::string(info.param.transA ? "At" : "A") + "_" +
             (info.param.transB ? "Bt" : "B");
    });

TEST(Transpose, ScratchBuffersArePlanned) {
  CodegenOptions options;
  options.transposeA = true;
  options.transposeB = true;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);
  EXPECT_EQ(kernel.program.buffer("T_A").rows, 32);
  EXPECT_EQ(kernel.program.buffer("T_A").cols, 64);
  EXPECT_EQ(kernel.program.buffer("T_B").rows, 64);
  // 160 KB + two 16 KB scratch tiles.
  EXPECT_EQ(kernel.program.spmBytesUsed(), 192 * 1024);
  EXPECT_NE(kernel.cpeSource.find("local_T_A"), std::string::npos);
}

TEST(Transpose, NonSquareRectangularShape) {
  CodegenOptions options;
  options.transposeA = true;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);

  const std::int64_t m = 300, n = 600, k = 150;
  std::vector<double> a = randomMatrix(m * k, 11);  // stored K x M
  std::vector<double> b = randomMatrix(k * n, 12);
  std::vector<double> c = randomMatrix(m * n, 13);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, 1, 1.0, 1.0};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);

  std::vector<double> aOp(a.size());
  kernel::tileTranspose(aOp.data(), a.data(), k, m);
  kernel::referenceGemm(expected.data(), aOp.data(), b.data(), m, n, k, 1.0,
                        1.0);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

TEST(Transpose, FromCSourceEndToEnd) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compileSource(R"(
void gemm_tn(long M, long N, long K, double A[K][M], double B[K][N],
             double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] += A[k][i] * B[k][j];
}
)");
  EXPECT_TRUE(kernel.options.transposeA);

  const std::int64_t m = 512, n = 512, k = 256;
  std::vector<double> a = randomMatrix(m * k, 21);
  std::vector<double> b = randomMatrix(k * n, 22);
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  std::vector<double> expected = c;
  GemmProblem problem{m, n, k, 1, 1.0, 0.0};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);

  std::vector<double> aOp(a.size());
  kernel::tileTranspose(aOp.data(), a.data(), k, m);
  kernel::referenceGemm(expected.data(), aOp.data(), b.data(), m, n, k, 1.0,
                        0.0);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

TEST(Transpose, TimingChargesTransposePasses) {
  // The transposed variant pays two extra SPM passes per staged tile: its
  // estimate must be slower than plain GEMM but in the same ballpark.
  SwGemmCompiler compiler;
  CompiledKernel plain = compiler.compile(CodegenOptions{});
  CodegenOptions tOpts;
  tOpts.transposeA = true;
  tOpts.transposeB = true;
  CompiledKernel trans = compiler.compile(tOpts);
  const GemmProblem problem{4096, 4096, 4096};
  const double tPlain =
      estimateGemm(plain, compiler.arch(), problem).seconds;
  const double tTrans =
      estimateGemm(trans, compiler.arch(), problem).seconds;
  EXPECT_GT(tTrans, tPlain);
  EXPECT_LT(tTrans, 1.25 * tPlain);
}

}  // namespace
}  // namespace sw::core
