// The strongest printer test available without Sunway hardware: every
// generated athread source (CPE and MPE, all kernel configurations) must
// compile cleanly as C with a real compiler against stub athread headers.
// This catches syntax slips, undeclared identifiers, and type mismatches
// the substring golden tests cannot.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/compiler.h"
#include "core/gemv.h"

#ifndef SW_ATHREAD_STUB_DIR
#error "SW_ATHREAD_STUB_DIR must be defined by the build"
#endif

namespace sw::core {
namespace {

/// Write `source` to a temp file and compile it with the host C compiler.
::testing::AssertionResult compilesAsC(const std::string& source,
                                       const std::string& tag) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/" + tag + ".c";
  const std::string obj = dir + "/" + tag + ".o";
  {
    std::ofstream out(path);
    out << source;
  }
  const std::string command = std::string("cc -std=c99 -Wall -Werror -c -I") +
                              SW_ATHREAD_STUB_DIR + " -o " + obj + " " +
                              path + " 2> " + dir + "/" + tag + ".log";
  const int status = std::system(command.c_str());
  if (status == 0) return ::testing::AssertionSuccess();
  std::ifstream log(dir + "/" + tag + ".log");
  std::string line, all;
  while (std::getline(log, line)) all += line + "\n";
  return ::testing::AssertionFailure()
         << "cc failed for " << tag << ":\n" << all;
}

struct Config {
  const char* name;
  bool useAsm, useRma, hide, batched;
  FusionKind fusion;
  bool edgeTiles = false;
};

class GeneratedCode : public ::testing::TestWithParam<Config> {};

TEST_P(GeneratedCode, CompilesWithHostCc) {
  const Config& cfg = GetParam();
  CodegenOptions options;
  options.useAsm = cfg.useAsm;
  options.useRma = cfg.useRma;
  options.hideLatency = cfg.hide;
  options.batched = cfg.batched;
  options.fusion = cfg.fusion;
  options.edgeTiles = cfg.edgeTiles;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);
  EXPECT_TRUE(compilesAsC(kernel.cpeSource,
                          std::string(cfg.name) + "_cpe"));
  EXPECT_TRUE(compilesAsC(kernel.mpeSource,
                          std::string(cfg.name) + "_mpe"));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, GeneratedCode,
    ::testing::Values(
        Config{"full", true, true, true, false, FusionKind::kNone},
        Config{"no_hiding", true, true, false, false, FusionKind::kNone},
        Config{"no_rma", true, false, false, false, FusionKind::kNone},
        Config{"no_asm", false, false, false, false, FusionKind::kNone},
        Config{"batched", true, true, true, true, FusionKind::kNone},
        Config{"prologue", true, true, true, false,
               FusionKind::kPrologueQuantize},
        Config{"epilogue", true, true, true, false,
               FusionKind::kEpilogueRelu},
        Config{"batched_fused", true, true, true, true,
               FusionKind::kEpilogueRelu},
        Config{"edge", true, true, true, false, FusionKind::kNone,
               /*edgeTiles=*/true},
        Config{"edge_no_rma", true, false, false, false, FusionKind::kNone,
               /*edgeTiles=*/true}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return info.param.name;
    });

TEST(GeneratedCode, GemvSourcesCompileWithHostCc) {
  sunway::ArchConfig arch;
  CompiledGemv kernel = compileGemv(arch);
  EXPECT_TRUE(compilesAsC(kernel.cpeSource, "gemv_cpe"));
  EXPECT_TRUE(compilesAsC(kernel.mpeSource, "gemv_mpe"));
}

TEST(GeneratedCode, TransposedVariantCompiles) {
  CodegenOptions options;
  options.transposeA = true;
  options.transposeB = true;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);
  EXPECT_TRUE(compilesAsC(kernel.cpeSource, "trans_cpe"));
  EXPECT_TRUE(compilesAsC(kernel.mpeSource, "trans_mpe"));
}

TEST(GeneratedCode, SourceCompiledKernelAlsoCompiles) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compileSource(R"(
void user_gemm(long M, long N, long K, double alpha, double beta,
               double A[M][K], double B[K][N], double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
)");
  EXPECT_TRUE(compilesAsC(kernel.cpeSource, "user_cpe"));
  EXPECT_TRUE(compilesAsC(kernel.mpeSource, "user_mpe"));
}

}  // namespace
}  // namespace sw::core
