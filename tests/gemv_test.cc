// GEMV extension tests (§9): functional bit-exactness against the oracle,
// padding, pipelining on/off, and the memory-bound performance ceiling.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/gemv.h"
#include "kernel/reference.h"

namespace sw::core {
namespace {

std::vector<double> randomVector(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

TEST(Gemv, FunctionalMatchesReference) {
  sunway::ArchConfig arch;
  CompiledGemv kernel = compileGemv(arch);

  const std::int64_t m = 4096, k = 256;
  std::vector<double> a = randomVector(m * k, 1);
  std::vector<double> x = randomVector(k, 2);
  std::vector<double> y = randomVector(m, 3);
  std::vector<double> expected = y;

  GemvProblem problem{m, k, 1.5, 0.5};
  rt::RunOutcome outcome =
      runGemvFunctional(kernel, arch, problem, a, x, y);
  referenceGemv(expected.data(), a.data(), x.data(), m, k, 1.5, 0.5,
                kernel.options.kChunk);
  EXPECT_EQ(kernel::maxAbsDiff(y.data(), expected.data(), m), 0.0);
  EXPECT_GT(outcome.counters.dmaMessages, 0);
}

TEST(Gemv, UnpaddedShapeIsZeroPadded) {
  sunway::ArchConfig arch;
  CompiledGemv kernel = compileGemv(arch);
  const std::int64_t m = 1000, k = 100;
  std::vector<double> a = randomVector(m * k, 11);
  std::vector<double> x = randomVector(k, 12);
  std::vector<double> y = randomVector(m, 13);
  std::vector<double> expected = y;
  GemvProblem problem{m, k, -2.0, 1.0};
  runGemvFunctional(kernel, arch, problem, a, x, y);
  referenceGemv(expected.data(), a.data(), x.data(), m, k, -2.0, 1.0,
                kernel.options.kChunk);
  EXPECT_EQ(kernel::maxAbsDiff(y.data(), expected.data(), m), 0.0);
}

TEST(Gemv, UnpipelinedVariantAlsoExact) {
  sunway::ArchConfig arch;
  GemvOptions options;
  options.hideLatency = false;
  CompiledGemv kernel = compileGemv(arch, options);
  const std::int64_t m = 4096, k = 384;
  std::vector<double> a = randomVector(m * k, 21);
  std::vector<double> x = randomVector(k, 22);
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  std::vector<double> expected = y;
  GemvProblem problem{m, k, 1.0, 0.0};
  runGemvFunctional(kernel, arch, problem, a, x, y);
  referenceGemv(expected.data(), a.data(), x.data(), m, k, 1.0, 0.0,
                options.kChunk);
  EXPECT_EQ(kernel::maxAbsDiff(y.data(), expected.data(), m), 0.0);
}

TEST(Gemv, PerformanceIsBandwidthBound) {
  // GEMV moves ~8 bytes of A per 2 flops: the model must land near the
  // DDR bandwidth ceiling (2 flops per 8 bytes * 36 GB/s = 9 GFLOPS),
  // far below the compute peak.
  sunway::ArchConfig arch;
  CompiledGemv kernel = compileGemv(arch);
  rt::RunOutcome outcome =
      estimateGemv(kernel, arch, GemvProblem{65536, 16384});
  const double bwBound =
      arch.ddrBandwidthBytesPerSec / sizeof(double) * 2.0 / 1e9;
  EXPECT_LT(outcome.gflops, bwBound);
  EXPECT_GT(outcome.gflops, 0.5 * bwBound);
  EXPECT_LT(outcome.gflops, 0.02 * arch.peakFlops() / 1e9);
}

TEST(Gemv, PipeliningHidesSomething) {
  sunway::ArchConfig arch;
  CompiledGemv hidden = compileGemv(arch);
  GemvOptions plainOptions;
  plainOptions.hideLatency = false;
  CompiledGemv plain = compileGemv(arch, plainOptions);
  const GemvProblem problem{65536, 16384};
  EXPECT_LT(estimateGemv(hidden, arch, problem).seconds,
            estimateGemv(plain, arch, problem).seconds);
}

TEST(Gemv, GeneratedSourcesLookRight) {
  sunway::ArchConfig arch;
  CompiledGemv kernel = compileGemv(arch);
  EXPECT_NE(kernel.cpeSource.find("swgemv_cpe"), std::string::npos);
  EXPECT_NE(kernel.cpeSource.find("dma_iget"), std::string::npos);
  EXPECT_NE(kernel.cpeSource.find("dgemm_naive"), std::string::npos);
  EXPECT_EQ(kernel.cpeSource.find("rma_"), std::string::npos);
  EXPECT_NE(kernel.mpeSource.find("athread_spawn(swgemv_cpe"),
            std::string::npos);
}

TEST(Gemv, SpmBudgetRespected) {
  sunway::ArchConfig arch;
  CompiledGemv kernel = compileGemv(arch);
  EXPECT_LE(kernel.program.spmBytesUsed(), arch.spmBytes);
  GemvOptions big;
  big.kChunk = 2048;  // 64 x 2048 x 2 phases = 2 MiB: must be rejected
  EXPECT_THROW(compileGemv(arch, big), sw::InputError);
}

}  // namespace
}  // namespace sw::core
