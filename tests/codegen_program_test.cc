// Unit tests of the program IR layer: SPM layout planning, op counting,
// and the schedule-tree -> op-list builder on hand-constructed trees.
#include <gtest/gtest.h>

#include "codegen/program.h"
#include "codegen/program_builder.h"
#include "schedule/transforms.h"
#include "support/error.h"

namespace sw::codegen {
namespace {

using sched::CopyKind;
using sched::CopyStmt;
using sched::Extent;
using sched::RangeRestriction;
using sched::SpmBufferRef;

TEST(SpmPlanner, AssignsSequentialOffsets) {
  KernelProgram program;
  program.buffers = {SpmBufferDecl{"C", 64, 64, 1, 0},
                     SpmBufferDecl{"A", 64, 32, 2, 0}};
  planSpmLayout(program, 256 * 1024);
  EXPECT_EQ(program.buffer("C").spmOffsetBytes, 0);
  EXPECT_EQ(program.buffer("A").spmOffsetBytes, 64 * 64 * 8);
  EXPECT_EQ(program.spmBytesUsed(), 64 * 64 * 8 + 2 * 64 * 32 * 8);
}

TEST(SpmPlanner, RejectsOverflow) {
  KernelProgram program;
  program.buffers = {SpmBufferDecl{"big", 256, 256, 2, 0}};  // 1 MiB
  EXPECT_THROW(planSpmLayout(program, 256 * 1024), sw::InputError);
}

TEST(SpmPlanner, BufferLookupFailsOnUnknownSet) {
  KernelProgram program;
  program.buffers = {SpmBufferDecl{"C", 64, 64, 1, 0}};
  EXPECT_THROW(program.buffer("nope"), sw::InternalError);
  EXPECT_THROW(program.array("nope"), sw::InternalError);
}

TEST(CountOps, NestedLoopsCounted) {
  OpList inner;
  inner.push_back(Op{SyncOp{}});
  inner.push_back(Op{SyncOp{}});
  OpList outer;
  outer.push_back(
      Op{LoopOp{"i", Extent::constant(0), Extent::constant(4),
                std::move(inner)}});
  outer.push_back(Op{SyncOp{}});
  EXPECT_EQ(countOps(outer), 4u);  // loop + 2 body + trailing sync
}

// --- builder tests on hand-made trees -------------------------------------

poly::IntegerSet simpleDomain() {
  poly::IntegerSet domain("S1", {"i"});
  domain.addRange("i", poly::AffineExpr::dim("M"));
  return domain;
}

TEST(ProgramBuilder, BandsBecomeLoops) {
  sched::ScheduleTree tree =
      sched::buildInitialTree({simpleDomain()}, {true}, true);
  tree.validate();
  OpList ops = buildProgramBody(tree);
  ASSERT_EQ(ops.size(), 1u);
  const auto* loop = std::get_if<LoopOp>(&ops[0].v);
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->var, "i");
  EXPECT_EQ(loop->end.toString(), "M");
}

TEST(ProgramBuilder, BoundMembersEmitNoLoop) {
  sched::ScheduleTree tree =
      sched::buildInitialTree({simpleDomain()}, {true}, true);
  auto& band = sched::nodeCast<sched::BandNode>(tree.root().onlyChild());
  sched::bindMember(band, 0, "Rid");
  OpList ops = buildProgramBody(tree);
  EXPECT_TRUE(ops.empty());  // nothing under the leaf
}

TEST(ProgramBuilder, SingleIterationRangeBecomesAssign) {
  sched::ScheduleTree tree =
      sched::buildInitialTree({simpleDomain()}, {true}, true);
  auto& band = sched::nodeCast<sched::BandNode>(tree.root().onlyChild());
  // Replace the band's leaf with a sequence of peeled filters over "x".
  auto seq = std::make_unique<sched::SequenceNode>();
  seq->appendChild(sched::makeFilter(
      {sched::syncElement()},
      RangeRestriction{"x", Extent::constant(0), Extent::constant(1)},
      std::make_unique<sched::LeafNode>()));
  seq->appendChild(sched::makeFilter(
      {sched::syncElement()},
      RangeRestriction{"x", Extent::constant(0),
                       Extent::paramDiv("M", 64).plus(-1)},
      std::make_unique<sched::LeafNode>()));
  band.children().clear();
  band.appendChild(std::move(seq));
  tree.validate();

  OpList ops = buildProgramBody(tree);
  ASSERT_EQ(ops.size(), 1u);
  const auto* outer = std::get_if<LoopOp>(&ops[0].v);
  ASSERT_NE(outer, nullptr);
  ASSERT_EQ(outer->body.size(), 2u);
  EXPECT_NE(std::get_if<AssignOp>(&outer->body[0].v), nullptr);
  const auto* steady = std::get_if<LoopOp>(&outer->body[1].v);
  ASSERT_NE(steady, nullptr);
  EXPECT_EQ(steady->end.toString(), "M/64 - 1");
}

TEST(ProgramBuilder, ExtensionCopiesResolveByScope) {
  sched::ScheduleTree tree =
      sched::buildInitialTree({simpleDomain()}, {true}, true);
  auto& band = sched::nodeCast<sched::BandNode>(tree.root().onlyChild());

  auto ext = std::make_unique<sched::ExtensionNode>();
  CopyStmt get;
  get.name = "getX";
  get.kind = CopyKind::kDmaGet;
  get.array = "A";
  get.buffer = SpmBufferRef{"A", std::nullopt, 0};
  get.rowStart = poly::AffineExpr::dim("i");
  get.colStart = poly::AffineExpr::constant(0);
  get.rowsParam = "M";
  get.colsParam = "K";
  get.tileRows = 1;
  get.tileCols = 8;
  get.replySlot = "r";
  ext->copies.push_back(get);

  auto seq = std::make_unique<sched::SequenceNode>();
  seq->appendChild(sched::makeFilter(
      {sched::copyElement("getX"), sched::waitElement("r")}, std::nullopt,
      std::make_unique<sched::LeafNode>()));
  ext->appendChild(std::move(seq));
  band.children().clear();
  band.appendChild(std::move(ext));
  tree.validate();

  OpList ops = buildProgramBody(tree);
  ASSERT_EQ(ops.size(), 1u);
  const auto* loop = std::get_if<LoopOp>(&ops[0].v);
  ASSERT_NE(loop, nullptr);
  ASSERT_EQ(loop->body.size(), 2u);
  const auto* dma = std::get_if<DmaOp>(&loop->body[0].v);
  ASSERT_NE(dma, nullptr);
  EXPECT_EQ(dma->stmt.name, "getX");
  const auto* wait = std::get_if<WaitOp>(&loop->body[1].v);
  ASSERT_NE(wait, nullptr);
  EXPECT_FALSE(wait->isRma);
}

TEST(ProgramBuilder, UnknownCopyReferenceThrows) {
  sched::ScheduleTree tree =
      sched::buildInitialTree({simpleDomain()}, {true}, true);
  auto& band = sched::nodeCast<sched::BandNode>(tree.root().onlyChild());
  auto seq = std::make_unique<sched::SequenceNode>();
  seq->appendChild(sched::makeFilter({sched::copyElement("ghost")},
                                     std::nullopt,
                                     std::make_unique<sched::LeafNode>()));
  sched::wrapOnlyChild(band, std::move(seq));
  EXPECT_THROW(buildProgramBody(tree), sw::InternalError);
}

TEST(ProgramBuilder, ComputeMarkSkipsSubtree) {
  sched::ScheduleTree tree =
      sched::buildInitialTree({simpleDomain()}, {true}, true);
  auto& band = sched::nodeCast<sched::BandNode>(tree.root().onlyChild());
  auto mark = std::make_unique<sched::MarkNode>();
  mark->label = "microkernel";
  sched::ComputeMarkInfo info;
  info.c = SpmBufferRef{"C", std::nullopt, 0};
  info.a = SpmBufferRef{"A", std::nullopt, 0};
  info.b = SpmBufferRef{"B", std::nullopt, 0};
  mark->compute = info;
  sched::wrapOnlyChild(band, std::move(mark));
  tree.validate();

  OpList ops = buildProgramBody(tree);
  const auto* loop = std::get_if<LoopOp>(&ops[0].v);
  ASSERT_NE(loop, nullptr);
  ASSERT_EQ(loop->body.size(), 1u);
  EXPECT_NE(std::get_if<ComputeOp>(&loop->body[0].v), nullptr);
}

TEST(ProgramBuilder, SkippedMarkDropsSubtree) {
  // Fig.12a: the prologue's original nest is bypassed by a "skipped" mark.
  sched::ScheduleTree tree =
      sched::buildInitialTree({simpleDomain()}, {true}, true);
  auto& band = sched::nodeCast<sched::BandNode>(tree.root().onlyChild());
  auto mark = std::make_unique<sched::MarkNode>();
  mark->label = "skipped";
  sched::wrapOnlyChild(band, std::move(mark));
  OpList ops = buildProgramBody(tree);
  ASSERT_EQ(ops.size(), 1u);
  const auto* loop = std::get_if<LoopOp>(&ops[0].v);
  ASSERT_NE(loop, nullptr);
  EXPECT_TRUE(loop->body.empty());
}

}  // namespace
}  // namespace sw::codegen
