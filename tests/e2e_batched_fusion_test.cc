// End-to-end correctness for batched GEMM (§3/§8.3) and the two fusion
// patterns (§7.3/§8.4), compiled both from the canonical spec and from C
// source via the frontend.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "kernel/microkernel.h"
#include "kernel/reference.h"

namespace sw::core {
namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

TEST(E2eBatched, MatchesReferencePerBatchElement) {
  CodegenOptions options;
  options.batched = true;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);

  const std::int64_t batch = 3, m = 512, n = 512, k = 256;
  std::vector<double> a = randomMatrix(batch * m * k, 31);
  std::vector<double> b = randomMatrix(batch * k * n, 32);
  std::vector<double> c = randomMatrix(batch * m * n, 33);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, batch, 1.25, 0.75};
  rt::RunOutcome outcome =
      runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);
  kernel::referenceBatchedGemm(expected.data(), a.data(), b.data(), batch, m,
                               n, k, problem.alpha, problem.beta);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), batch * m * n),
            0.0);
  // The batch dimension is iterated inside the CPE program: exactly one
  // mesh launch regardless of batch size (§8.3).
  EXPECT_GT(outcome.counters.dmaMessages, 0);
}

TEST(E2eBatched, BatchOfOneEqualsPlainKernel) {
  SwGemmCompiler compiler;
  CodegenOptions batchedOpts;
  batchedOpts.batched = true;
  CompiledKernel batched = compiler.compile(batchedOpts);
  CompiledKernel plain = compiler.compile(CodegenOptions{});

  const std::int64_t m = 512, n = 512, k = 256;
  std::vector<double> a = randomMatrix(m * k, 41);
  std::vector<double> b = randomMatrix(k * n, 42);
  std::vector<double> c1 = randomMatrix(m * n, 43);
  std::vector<double> c2 = c1;

  GemmProblem problem{m, n, k, 1, 1.0, 1.0};
  runGemmFunctional(batched, compiler.arch(), problem, a, b, c1);
  runGemmFunctional(plain, compiler.arch(), problem, a, b, c2);
  EXPECT_EQ(kernel::maxAbsDiff(c1.data(), c2.data(), m * n), 0.0);
}

TEST(E2eFusion, PrologueQuantizeMatchesReference) {
  CodegenOptions options;
  options.fusion = FusionKind::kPrologueQuantize;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);

  const std::int64_t m = 512, n = 512, k = 256;
  std::vector<double> a = randomMatrix(m * k, 51);
  std::vector<double> b = randomMatrix(k * n, 52);
  std::vector<double> c = randomMatrix(m * n, 53);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, 1, 0.5, 2.0};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);
  kernel::referenceGemm(
      expected.data(), a.data(), b.data(), m, n, k, problem.alpha,
      problem.beta, 32,
      [](double x) {
        return std::nearbyint(x * kernel::kQuantScale) / kernel::kQuantScale;
      });
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

TEST(E2eFusion, EpilogueReluMatchesReference) {
  CodegenOptions options;
  options.fusion = FusionKind::kEpilogueRelu;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);

  const std::int64_t m = 512, n = 512, k = 256;
  std::vector<double> a = randomMatrix(m * k, 61);
  std::vector<double> b = randomMatrix(k * n, 62);
  std::vector<double> c = randomMatrix(m * n, 63);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, 1, 1.0, 1.0};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);
  kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k, 1.0,
                        1.0, 32, nullptr,
                        [](double x) { return x > 0.0 ? x : 0.0; });
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
  // Every surviving element must be non-negative.
  for (double v : c) EXPECT_GE(v, 0.0);
}

TEST(E2eSource, CompileFromCSourceRunsCorrectly) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compileSource(R"(
void my_dgemm(long M, long N, long K, double alpha, double beta,
              double A[M][K], double B[K][N], double C[M][N]) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      C[i][j] = beta * C[i][j];
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++)
      for (long k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
})");
  EXPECT_EQ(kernel.program.name, "my_dgemm");
  EXPECT_NE(kernel.cpeSource.find("my_dgemm_cpe"), std::string::npos);

  const std::int64_t m = 512, n = 512, k = 256;
  std::vector<double> a = randomMatrix(m * k, 71);
  std::vector<double> b = randomMatrix(k * n, 72);
  std::vector<double> c = randomMatrix(m * n, 73);
  std::vector<double> expected = c;
  GemmProblem problem{m, n, k, 1, 3.0, 0.25};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);
  kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k, 3.0,
                        0.25);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

TEST(E2eSource, BatchedSourceSetsBatchOption) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compileSource(R"(
void bgemm(long T, long M, long N, long K, double A[T][M][K],
           double B[T][K][N], double C[T][M][N]) {
  for (long b = 0; b < T; b++)
    for (long i = 0; i < M; i++)
      for (long j = 0; j < N; j++)
        for (long k = 0; k < K; k++)
          C[b][i][j] += A[b][i][k] * B[b][k][j];
})");
  EXPECT_TRUE(kernel.options.batched);

  const std::int64_t batch = 2, m = 512, n = 512, k = 256;
  std::vector<double> a = randomMatrix(batch * m * k, 81);
  std::vector<double> b = randomMatrix(batch * k * n, 82);
  std::vector<double> c(static_cast<std::size_t>(batch * m * n), 0.0);
  std::vector<double> expected = c;
  GemmProblem problem{m, n, k, batch, 1.0, 0.0};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);
  kernel::referenceBatchedGemm(expected.data(), a.data(), b.data(), batch, m,
                               n, k, 1.0, 0.0);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), batch * m * n),
            0.0);
}

}  // namespace
}  // namespace sw::core
