// Generality tests: the pipeline, simulator and runner are parameterised
// by the ArchConfig — nothing is hard-coded to the 8x8 mesh.  A 4x4 mesh
// with strip factor 4 must produce bit-exact results too, and combined
// option sets (batched + fused + transposed) must compose.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "kernel/microkernel.h"
#include "kernel/reference.h"

namespace sw::core {
namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

TEST(MeshGenerality, FourByFourMeshRunsBitExact) {
  sunway::ArchConfig arch;
  arch.meshRows = 4;
  arch.meshCols = 4;
  CodegenOptions options;
  options.stripFactor = 4;  // §3.2: strip factor = mesh width

  SwGemmCompiler compiler(arch);
  CompiledKernel kernel = compiler.compile(options);
  // Mesh tile is 256x256; K unit is 4*32 = 128.
  EXPECT_NE(kernel.cpeSource.find("M/256"), std::string::npos);

  const std::int64_t m = 256, n = 256, k = 128;
  std::vector<double> a = randomMatrix(m * k, 1);
  std::vector<double> b = randomMatrix(k * n, 2);
  std::vector<double> c = randomMatrix(m * n, 3);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, 1, 1.0, 1.0};
  rt::RunOutcome outcome =
      runGemmFunctional(kernel, arch, problem, a, b, c);
  kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k, 1.0,
                        1.0);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
  // 16 CPEs x (k/128) outer x 4 rounds of micro-kernels.
  EXPECT_EQ(outcome.counters.microKernelCalls, 16 * (k / 128) * 4);
}

TEST(MeshGenerality, MismatchedStripFactorIsRejected) {
  sunway::ArchConfig arch;  // 8x8
  CodegenOptions options;
  options.stripFactor = 4;
  SwGemmCompiler compiler(arch);
  EXPECT_THROW(compiler.compile(options), sw::Error);
}

TEST(MeshGenerality, BatchedFusedTransposedCompose) {
  // All orthogonal options at once: batched, epilogue fusion, A^T.
  CodegenOptions options;
  options.batched = true;
  options.fusion = FusionKind::kEpilogueRelu;
  options.transposeA = true;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);

  const std::int64_t batch = 2, m = 512, n = 512, k = 256;
  std::vector<double> a = randomMatrix(batch * m * k, 11);  // batch of K x M
  std::vector<double> b = randomMatrix(batch * k * n, 12);
  std::vector<double> c = randomMatrix(batch * m * n, 13);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, batch, 1.5, 0.25};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);

  for (std::int64_t bi = 0; bi < batch; ++bi) {
    std::vector<double> aOp(static_cast<std::size_t>(m * k));
    kernel::tileTranspose(aOp.data(), a.data() + bi * k * m, k, m);
    kernel::referenceGemm(expected.data() + bi * m * n, aOp.data(),
                          b.data() + bi * k * n, m, n, k, problem.alpha,
                          problem.beta, 32, nullptr,
                          [](double v) { return v > 0.0 ? v : 0.0; });
  }
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), batch * m * n),
            0.0);
}

TEST(MeshGenerality, PrologueAndBatchCompose) {
  CodegenOptions options;
  options.batched = true;
  options.fusion = FusionKind::kPrologueQuantize;
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);

  const std::int64_t batch = 2, m = 512, n = 512, k = 256;
  std::vector<double> a = randomMatrix(batch * m * k, 21);
  std::vector<double> b = randomMatrix(batch * k * n, 22);
  std::vector<double> c(static_cast<std::size_t>(batch * m * n), 0.0);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, batch, 1.0, 0.0};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);
  for (std::int64_t bi = 0; bi < batch; ++bi)
    kernel::referenceGemm(
        expected.data() + bi * m * n, a.data() + bi * m * k,
        b.data() + bi * k * n, m, n, k, 1.0, 0.0, 32, [](double v) {
          return std::nearbyint(v * kernel::kQuantScale) /
                 kernel::kQuantScale;
        });
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), batch * m * n),
            0.0);
}

TEST(MeshGenerality, ThreadedTimingAgreesOnSmallMesh) {
  // The symmetric estimator's assumptions hold on other mesh sizes too.
  sunway::ArchConfig arch;
  arch.meshRows = 4;
  arch.meshCols = 4;
  CodegenOptions options;
  options.stripFactor = 4;
  SwGemmCompiler compiler(arch);
  CompiledKernel kernel = compiler.compile(options);

  sunway::MeshSimulator mesh(arch, /*functional=*/false);
  auto params = rt::bindParams(kernel.program, 512, 512, 256, 1);
  const double flops = rt::gemmFlops(512, 512, 256);
  rt::RunOutcome threaded =
      rt::runOnMesh(mesh, kernel.program, params, rt::ExecScalars{}, flops);
  rt::RunOutcome estimated =
      rt::estimateTiming(arch, kernel.program, params, flops);
  EXPECT_NEAR(estimated.seconds, threaded.seconds, 0.03 * threaded.seconds);
}

}  // namespace
}  // namespace sw::core
