// Serialization round-trip tests for CompiledKernel: serialize →
// deserialize → serialize is the identity, a reloaded kernel is
// functionally equivalent on the mesh simulator, and corrupted or
// version-skewed inputs are rejected with InputError (the service treats
// that as a recompile, never a misparse).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "core/kernel_serdes.h"
#include "support/error.h"
#include "support/format.h"

namespace sw::core {
namespace {

CompiledKernel compileVariant(bool batched, FusionKind fusion) {
  CodegenOptions options;
  options.batched = batched;
  options.fusion = fusion;
  return SwGemmCompiler().compile(options);
}

TEST(KernelSerdesTest, RoundTripIsIdentity) {
  for (const CompiledKernel& kernel :
       {compileVariant(false, FusionKind::kNone),
        compileVariant(true, FusionKind::kNone),
        compileVariant(false, FusionKind::kEpilogueRelu)}) {
    const std::string serialized = serializeCompiledKernel(kernel);
    const CompiledKernel reloaded = deserializeCompiledKernel(serialized);
    EXPECT_EQ(reloaded.cpeSource, kernel.cpeSource);
    EXPECT_EQ(reloaded.mpeSource, kernel.mpeSource);
    EXPECT_EQ(reloaded.initialTreeDump, kernel.initialTreeDump);
    EXPECT_EQ(reloaded.tiledTreeDump, kernel.tiledTreeDump);
    EXPECT_EQ(reloaded.finalTreeDump, kernel.finalTreeDump);
    EXPECT_EQ(reloaded.program.name, kernel.program.name);
    EXPECT_EQ(reloaded.program.params, kernel.program.params);
    EXPECT_EQ(serializeCompiledKernel(reloaded), serialized);
  }
}

TEST(KernelSerdesTest, ReloadedKernelRunsFunctionally) {
  const CompiledKernel fresh = compileVariant(false, FusionKind::kNone);
  const CompiledKernel reloaded =
      deserializeCompiledKernel(serializeCompiledKernel(fresh));

  const sunway::ArchConfig arch;
  const std::int64_t m = 64, n = 64, k = 64;
  std::vector<double> a(m * k), b(k * n);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0.25 * (i % 7) - 0.5;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.125 * (i % 5) - 0.25;
  std::vector<double> cFresh(m * n, 1.0), cReloaded(m * n, 1.0);
  const GemmProblem problem{m, n, k, 1};
  runGemmFunctional(fresh, arch, problem, a, b, cFresh);
  runGemmFunctional(reloaded, arch, problem, a, b, cReloaded);
  EXPECT_EQ(cFresh, cReloaded);
}

TEST(KernelSerdesTest, RejectsCorruptInput) {
  const CompiledKernel kernel = compileVariant(false, FusionKind::kNone);
  const std::string serialized = serializeCompiledKernel(kernel);

  EXPECT_THROW(deserializeCompiledKernel("not a kernel"), InputError);
  EXPECT_THROW(deserializeCompiledKernel(""), InputError);
  // Truncation anywhere must throw, never crash or misparse.
  EXPECT_THROW(
      deserializeCompiledKernel(serialized.substr(0, serialized.size() / 2)),
      InputError);
  EXPECT_THROW(deserializeCompiledKernel(serialized.substr(0, 24)),
               InputError);
  // Trailing garbage is corruption too.
  EXPECT_THROW(deserializeCompiledKernel(serialized + "tail"), InputError);
}

TEST(KernelSerdesTest, RejectsVersionSkew) {
  const CompiledKernel kernel = compileVariant(false, FusionKind::kNone);
  std::string serialized = serializeCompiledKernel(kernel);
  // The stream starts "swkernel <version> ..."; bump the version token.
  const std::string needle = strCat("swkernel ", kKernelSerdesVersion, " ");
  ASSERT_EQ(serialized.rfind(needle, 0), 0u);
  serialized.replace(0, needle.size(),
                     strCat("swkernel ", kKernelSerdesVersion + 1, " "));
  EXPECT_THROW(deserializeCompiledKernel(serialized), InputError);
}

}  // namespace
}  // namespace sw::core
