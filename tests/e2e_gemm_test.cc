// End-to-end correctness: compile the GEMM kernel at every optimisation
// level and execute it functionally on the 64-thread mesh simulator,
// checking the result against the reference oracle bit-for-bit (the
// pipeline and the oracle share the same accumulation structure).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "kernel/reference.h"

namespace sw::core {
namespace {

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

struct Variant {
  const char* label;
  bool useAsm;
  bool useRma;
  bool hideLatency;
};

class GemmVariantTest : public ::testing::TestWithParam<Variant> {};

TEST_P(GemmVariantTest, MatchesReference512) {
  const Variant& variant = GetParam();
  CodegenOptions options;
  options.useAsm = variant.useAsm;
  options.useRma = variant.useRma;
  options.hideLatency = variant.hideLatency;

  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(options);

  const std::int64_t m = 512, n = 512, k = 256;
  std::vector<double> a = randomMatrix(m * k, 1);
  std::vector<double> b = randomMatrix(k * n, 2);
  std::vector<double> c = randomMatrix(m * n, 3);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, 1, 1.5, 0.5};
  rt::RunOutcome outcome =
      runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);
  EXPECT_GT(outcome.seconds, 0.0);

  kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k,
                        problem.alpha, problem.beta);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0)
      << "variant " << variant.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, GemmVariantTest,
    ::testing::Values(Variant{"baseline_dma", false, false, false},
                      Variant{"asm", true, false, false},
                      Variant{"asm_rma", true, true, false},
                      Variant{"full", true, true, true}),
    [](const ::testing::TestParamInfo<Variant>& info) {
      return info.param.label;
    });

TEST(E2eGemm, MultiMeshTileAndDeepK) {
  // M=1024, N=512, K=512: two mesh-tile rows, two outer-k iterations, so
  // the steady-state (pipelined) path actually executes.
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});

  const std::int64_t m = 1024, n = 512, k = 512;
  std::vector<double> a = randomMatrix(m * k, 11);
  std::vector<double> b = randomMatrix(k * n, 12);
  std::vector<double> c = randomMatrix(m * n, 13);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, 1, 1.0, 1.0};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);
  kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k, 1.0,
                        1.0);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

TEST(E2eGemm, UnpaddedShapeIsZeroPadded) {
  // 300 x 200 x 100 exercises the §8.1 zero-padding path end to end.
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});

  const std::int64_t m = 300, n = 200, k = 100;
  std::vector<double> a = randomMatrix(m * k, 21);
  std::vector<double> b = randomMatrix(k * n, 22);
  std::vector<double> c = randomMatrix(m * n, 23);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, 1, 2.0, -1.0};
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, c);
  kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k, 2.0,
                        -1.0);
  // Padding splits k-blocks differently only beyond k; within the real
  // extent accumulation order matches, so equality is still exact.
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

TEST(E2eGemm, SpmWorkingSetWithinBudget) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  // §6.3: nine buffers, 160 KB of the 256 KB SPM.
  EXPECT_EQ(kernel.program.buffers.size(), 5u);
  EXPECT_EQ(kernel.program.spmBytesUsed(), 160 * 1024);
  EXPECT_LE(kernel.program.spmBytesUsed(), compiler.arch().spmBytes);
}

}  // namespace
}  // namespace sw::core
