// Pipeline-level tests: shape padding (§8.1), option validation, per-
// variant program structure (buffer plans, op kinds) and the schedule-tree
// dumps matching the paper's figures.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "support/error.h"

namespace sw::core {
namespace {

sunway::ArchConfig arch() { return sunway::ArchConfig{}; }

TEST(PadShape, RoundsToMeshAndStripUnits) {
  CodegenOptions options;
  PaddedShape p = padShape(1000, 513, 300, options, arch());
  EXPECT_EQ(p.m, 1024);
  EXPECT_EQ(p.n, 1024);
  EXPECT_EQ(p.k, 512);  // multiple of 256 with RMA strip-mining
  p = padShape(512, 512, 256, options, arch());
  EXPECT_EQ(p.m, 512);
  EXPECT_EQ(p.n, 512);
  EXPECT_EQ(p.k, 256);
}

TEST(PadShape, NoRmaOnlyNeedsTileKUnits) {
  CodegenOptions options;
  options.useRma = false;
  options.hideLatency = false;
  PaddedShape p = padShape(512, 512, 40, options, arch());
  EXPECT_EQ(p.k, 64);
}

TEST(PadShape, RejectsNonPositiveSizes) {
  CodegenOptions options;
  EXPECT_THROW(padShape(0, 512, 256, options, arch()), sw::InputError);
  EXPECT_THROW(padShape(512, -1, 256, options, arch()), sw::InputError);
}

TEST(Pipeline, HidingWithoutRmaIsRejected) {
  CodegenOptions options;
  options.useRma = false;
  options.hideLatency = true;
  EXPECT_THROW(runGemmPipeline(options, arch()), sw::InputError);
}

TEST(Pipeline, FullVariantBufferPlan) {
  PipelineResult result = runGemmPipeline(CodegenOptions{}, arch());
  ASSERT_EQ(result.program.buffers.size(), 5u);
  EXPECT_EQ(result.program.buffer("C").phases, 1);
  for (const char* set : {"A_dma", "B_dma", "A_rma", "B_rma"})
    EXPECT_EQ(result.program.buffer(set).phases, 2) << set;
  EXPECT_EQ(result.program.spmBytesUsed(), 160 * 1024);
}

TEST(Pipeline, UnpipelinedVariantSingleBuffers) {
  CodegenOptions options;
  options.hideLatency = false;
  PipelineResult result = runGemmPipeline(options, arch());
  for (const char* set : {"A_dma", "B_dma", "A_rma", "B_rma"})
    EXPECT_EQ(result.program.buffer(set).phases, 1) << set;
}

TEST(Pipeline, NoRmaVariantHasThreeBuffers) {
  CodegenOptions options;
  options.useRma = false;
  options.hideLatency = false;
  PipelineResult result = runGemmPipeline(options, arch());
  EXPECT_EQ(result.program.buffers.size(), 3u);
}

TEST(Pipeline, BatchedAddsParameterAndArrayDimension) {
  CodegenOptions options;
  options.batched = true;
  PipelineResult result = runGemmPipeline(options, arch());
  EXPECT_EQ(result.program.params.back(), "BATCH");
  for (const auto& array : result.program.arrays)
    EXPECT_EQ(array.batchParam, "BATCH") << array.name;
}

TEST(Pipeline, TreeDumpsFollowThePaperFigures) {
  PipelineResult result = runGemmPipeline(CodegenOptions{}, arch());
  // Fig.2b: plain identity band.
  EXPECT_NE(result.initialTreeDump.find("BAND (permutable)"),
            std::string::npos);
  // Fig.4b/6: Rid/Cid binding and the strip-mined expressions.
  EXPECT_NE(result.tiledTreeDump.find("Rid[0,8)"), std::string::npos);
  EXPECT_NE(result.tiledTreeDump.find("floor((k)/32) - 8*floor((k)/256)"),
            std::string::npos);
  // Fig.11: peeled inner sequence with RMA copies.
  EXPECT_NE(result.finalTreeDump.find("copy:rbcastA_next"),
            std::string::npos);
  EXPECT_NE(result.finalTreeDump.find("ki in [7, 8)"), std::string::npos);
  EXPECT_NE(result.finalTreeDump.find("copy:putC"), std::string::npos);
}

TEST(Pipeline, NonContractTileShapeFallsBackToNaive) {
  // §7.2: the vendor assembly object exists only for 64x64x32.
  CodegenOptions options;
  options.tileM = 32;
  options.tileN = 32;
  PipelineResult result = runGemmPipeline(options, arch());
  EXPECT_EQ(result.finalTreeDump.find("MARK: \"microkernel\""),
            std::string::npos);
  EXPECT_NE(result.finalTreeDump.find("MARK: \"naive_compute\""),
            std::string::npos);
}

TEST(Pipeline, OversizedTilesOverflowSpm) {
  CodegenOptions options;
  options.tileM = 128;
  options.tileN = 128;
  options.tileK = 64;
  EXPECT_THROW(runGemmPipeline(options, arch()), sw::InputError);
}

TEST(Pipeline, FusionAddsElementwiseMarks) {
  CodegenOptions prologue;
  prologue.fusion = FusionKind::kPrologueQuantize;
  PipelineResult p = runGemmPipeline(prologue, arch());
  EXPECT_NE(p.finalTreeDump.find("elementwise:quantizeA"),
            std::string::npos);

  CodegenOptions epilogue;
  epilogue.fusion = FusionKind::kEpilogueRelu;
  PipelineResult e = runGemmPipeline(epilogue, arch());
  EXPECT_NE(e.finalTreeDump.find("elementwise:reluC"), std::string::npos);
}

}  // namespace
}  // namespace sw::core
