// Tests of the persistent tuning database (src/tuning/tuning_db.*) and
// its service integration (KernelService::resolveSchedule): round-trip,
// corrupt/truncated/stale recovery, the `<cacheDir>/tune` fallback, and
// single-flight deduplication of concurrent searches.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "service/kernel_service.h"
#include "support/error.h"
#include "support/format.h"
#include "tuning/tuning_db.h"

namespace sw::tuning {
namespace {

namespace fs = std::filesystem;
using service::KernelService;
using service::KernelServiceConfig;

/// Fresh per-test scratch directory under the gtest temp root.
std::string scratchDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("swk_tune_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TunedScheduleRecord sampleRecord() {
  TunedScheduleRecord record;
  record.schedule.tileM = 32;
  record.schedule.tileN = 16;
  record.schedule.tileK = 16;
  record.schedule.stripFactor = 8;
  record.schedule.bufferDepth = 2;
  record.schedule.edgeTiles = true;
  record.gflops = 19.4375;
  record.measuredGflops = 19.52;
  record.verdict = "latency-bound";
  record.candidatesEnumerated = 336;
  record.candidatesFeasible = 192;
  record.candidatesValidated = 3;
  record.searchSeconds = 0.27;
  return record;
}

std::string sampleKey() {
  return canonicalTuneKey(core::CodegenOptions{}, sunway::ArchConfig{},
                          core::GemmProblem{257, 63, 65});
}

// --- the database itself ------------------------------------------------

TEST(TuningDb, RoundTripsEveryField) {
  TuningDb db(scratchDir("roundtrip"));
  const std::string key = sampleKey();
  const TunedScheduleRecord stored = sampleRecord();
  db.store(key, stored);
  ASSERT_TRUE(fs::exists(db.pathForKey(key)));

  const std::optional<TunedScheduleRecord> loaded = db.lookup(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->schedule.tileM, 32);
  EXPECT_EQ(loaded->schedule.tileN, 16);
  EXPECT_EQ(loaded->schedule.tileK, 16);
  EXPECT_EQ(loaded->schedule.stripFactor, 8);
  EXPECT_EQ(loaded->schedule.bufferDepth, 2);
  EXPECT_TRUE(loaded->schedule.edgeTiles);
  EXPECT_DOUBLE_EQ(loaded->gflops, stored.gflops);
  EXPECT_DOUBLE_EQ(loaded->measuredGflops, stored.measuredGflops);
  EXPECT_EQ(loaded->verdict, "latency-bound");
  EXPECT_EQ(loaded->candidatesEnumerated, 336);
  EXPECT_EQ(loaded->candidatesFeasible, 192);
  EXPECT_EQ(loaded->candidatesValidated, 3);
  EXPECT_DOUBLE_EQ(loaded->searchSeconds, 0.27);
  EXPECT_EQ(db.stats().hits, 1);
  EXPECT_EQ(db.stats().stores, 1);
}

TEST(TuningDb, EmptyRootDisablesPersistence) {
  TuningDb db("");
  EXPECT_TRUE(db.pathForKey(sampleKey()).empty());
  db.store(sampleKey(), sampleRecord());  // no-op, no throw
  EXPECT_FALSE(db.lookup(sampleKey()).has_value());
  EXPECT_EQ(db.stats().stores, 0);
}

TEST(TuningDb, TruncatedEntryIsRemovedAndReportedAsMiss) {
  TuningDb db(scratchDir("truncated"));
  const std::string key = sampleKey();
  db.store(key, sampleRecord());
  const std::string path = db.pathForKey(key);

  // Chop the record mid-field: the tolerant scanner must classify it as
  // corrupt, remove the file, and report a miss so the caller re-tunes.
  std::string body;
  {
    std::ifstream in(path, std::ios::binary);
    std::getline(in, body);
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body.substr(0, body.size() / 3);
  }
  EXPECT_FALSE(db.lookup(key).has_value());
  EXPECT_EQ(db.stats().corrupt, 1);
  EXPECT_FALSE(fs::exists(path));

  // The re-tune path stores again and the entry is healthy.
  db.store(key, sampleRecord());
  EXPECT_TRUE(db.lookup(key).has_value());
}

TEST(TuningDb, KeyMismatchCountsAsCorrupt) {
  // A foreign record landing under this key's digest (collision, renamed
  // file, copied directory) must not be served.
  TuningDb db(scratchDir("mismatch"));
  const std::string key = sampleKey();
  const std::string otherKey =
      canonicalTuneKey(core::CodegenOptions{}, sunway::ArchConfig{},
                       core::GemmProblem{100, 100, 100});
  db.store(key, sampleRecord());
  fs::create_directories(fs::path(db.pathForKey(otherKey)).parent_path());
  fs::rename(db.pathForKey(key), db.pathForKey(otherKey));
  EXPECT_FALSE(db.lookup(otherKey).has_value());
  EXPECT_EQ(db.stats().corrupt, 1);
  EXPECT_FALSE(fs::exists(db.pathForKey(otherKey)));
}

TEST(TuningDb, VersionSkewIsStaleNotCorrupt) {
  TuningDb db(scratchDir("stale"));
  const std::string key = sampleKey();
  db.store(key, sampleRecord());
  const std::string path = db.pathForKey(key);

  // Rewrite the entry as a future schema version: expected after an
  // upgrade, so it is counted apart from corruption — but still re-tuned.
  std::string body;
  {
    std::ifstream in(path, std::ios::binary);
    std::getline(in, body);
  }
  const std::string needle =
      strCat("\"schema_version\":", kTuningDbVersion);
  const std::size_t pos = body.find(needle);
  ASSERT_NE(pos, std::string::npos);
  body.replace(pos, needle.size(), "\"schema_version\":99");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body;
  }
  EXPECT_FALSE(db.lookup(key).has_value());
  EXPECT_EQ(db.stats().stale, 1);
  EXPECT_EQ(db.stats().corrupt, 0);
  EXPECT_FALSE(fs::exists(path));
}

TEST(TuningDb, OutOfRangeScheduleIsRejected) {
  TuningDb db(scratchDir("range"));
  const std::string key = sampleKey();
  TunedScheduleRecord bad = sampleRecord();
  bad.schedule.bufferDepth = 7;  // renderable, but no valid schedule
  db.store(key, bad);
  EXPECT_FALSE(db.lookup(key).has_value());
  EXPECT_EQ(db.stats().corrupt, 1);
}

TEST(TuningDb, TuneKeySeparatesShapesAndRequests) {
  const sunway::ArchConfig arch;
  const core::CodegenOptions base;
  const std::string a =
      canonicalTuneKey(base, arch, core::GemmProblem{100, 100, 100});
  const std::string b =
      canonicalTuneKey(base, arch, core::GemmProblem{100, 100, 101});
  EXPECT_NE(a, b);
  core::CodegenOptions noAsm = base;
  noAsm.useAsm = false;
  EXPECT_NE(a, canonicalTuneKey(noAsm, arch,
                                core::GemmProblem{100, 100, 100}));
  sunway::ArchConfig smallSpm = arch;
  smallSpm.spmBytes /= 2;
  EXPECT_NE(a, canonicalTuneKey(base, smallSpm,
                                core::GemmProblem{100, 100, 100}));
}

// --- service integration ------------------------------------------------

/// A counting stand-in for the two-stage search: returns a fixed winner
/// and records how many times the service actually let a search through.
KernelService::SearchFn countingSearch(std::atomic<int>* calls) {
  return [calls](const core::CodegenOptions&, const sunway::ArchConfig&,
                 const core::GemmProblem&, const TunerConfig&) {
    calls->fetch_add(1);
    std::vector<CandidateResult> candidates(1);
    candidates[0].feasible = true;
    candidates[0].candidate.tileM = 32;
    candidates[0].candidate.tileN = 32;
    candidates[0].candidate.tileK = 32;
    candidates[0].estimatedGflops = 123.0;
    ScheduleSearchResult result(std::move(candidates));
    result.searchSeconds = 0.001;
    return result;
  };
}

TEST(ResolveSchedule, SecondCallServesFromTheTuningDb) {
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.tuningDir = scratchDir("resolve_hit");
  const core::GemmProblem problem{96, 96, 96};

  std::atomic<int> searches{0};
  KernelService service(arch, config);
  service.setSearchFnForTest(countingSearch(&searches));

  const KernelService::ResolvedSchedule first =
      service.resolveSchedule(core::CodegenOptions{}, problem);
  EXPECT_EQ(first.source, KernelService::ResolvedSchedule::Source::kSearch);
  EXPECT_EQ(first.options.tileM, 32);
  EXPECT_EQ(searches.load(), 1);

  // A fresh service instance (new process, same directory) must serve the
  // decision from disk without searching again.
  KernelService reloaded(arch, config);
  reloaded.setSearchFnForTest(countingSearch(&searches));
  const KernelService::ResolvedSchedule second =
      reloaded.resolveSchedule(core::CodegenOptions{}, problem);
  EXPECT_EQ(second.source, KernelService::ResolvedSchedule::Source::kDiskHit);
  EXPECT_EQ(second.options.tileM, 32);
  EXPECT_DOUBLE_EQ(second.record.gflops, 123.0);
  EXPECT_EQ(searches.load(), 1);
  EXPECT_EQ(reloaded.stats().tuneDbHits, 1);
  EXPECT_EQ(reloaded.stats().tuneSearches, 0);
}

TEST(ResolveSchedule, TuningDirFallsBackToCacheDirTune) {
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.cacheDir = scratchDir("resolve_fallback");

  std::atomic<int> searches{0};
  KernelService service(arch, config);
  service.setSearchFnForTest(countingSearch(&searches));
  service.resolveSchedule(core::CodegenOptions{}, {96, 96, 96});

  // The record must land under `<cacheDir>/tune/v1/`.
  const std::string path = service.tuningDbPath(canonicalTuneKey(
      core::CodegenOptions{}, arch, core::GemmProblem{96, 96, 96}));
  EXPECT_NE(path.find(config.cacheDir), std::string::npos);
  EXPECT_NE(path.find("tune"), std::string::npos);
  EXPECT_TRUE(fs::exists(path));
}

TEST(ResolveSchedule, NoDirectoriesStillSearches) {
  std::atomic<int> searches{0};
  KernelService service(sunway::ArchConfig{}, KernelServiceConfig{});
  service.setSearchFnForTest(countingSearch(&searches));
  const KernelService::ResolvedSchedule resolved =
      service.resolveSchedule(core::CodegenOptions{}, {96, 96, 96});
  EXPECT_EQ(resolved.source,
            KernelService::ResolvedSchedule::Source::kSearch);
  EXPECT_EQ(searches.load(), 1);
  // No persistence: the same service searches again next time only if the
  // key is not in flight — there is no memory tier for schedules, so a
  // second call re-searches (and that is the documented contract).
  service.resolveSchedule(core::CodegenOptions{}, {96, 96, 96});
  EXPECT_EQ(searches.load(), 2);
}

TEST(ResolveSchedule, ConcurrentCallsSingleFlightTheSearch) {
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.tuningDir = scratchDir("resolve_flight");

  std::atomic<int> searches{0};
  KernelService service(arch, config);
  // A slow search so every thread arrives while the leader is inside it.
  service.setSearchFnForTest(
      [&searches](const core::CodegenOptions&, const sunway::ArchConfig&,
                  const core::GemmProblem&, const TunerConfig&) {
        searches.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        std::vector<CandidateResult> candidates(1);
        candidates[0].feasible = true;
        candidates[0].estimatedGflops = 7.0;
        return ScheduleSearchResult(std::move(candidates));
      });

  constexpr int kThreads = 8;
  std::atomic<int> sharedCount{0};
  std::vector<std::thread> pool;
  for (int i = 0; i < kThreads; ++i) {
    pool.emplace_back([&] {
      const KernelService::ResolvedSchedule resolved =
          service.resolveSchedule(core::CodegenOptions{}, {96, 96, 96});
      EXPECT_DOUBLE_EQ(resolved.record.gflops, 7.0);
      if (resolved.source ==
          KernelService::ResolvedSchedule::Source::kShared)
        sharedCount.fetch_add(1);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(searches.load(), 1);
  EXPECT_EQ(sharedCount.load(), kThreads - 1);
  EXPECT_EQ(service.stats().tuneShared, kThreads - 1);
  EXPECT_EQ(service.stats().tuneSearches, 1);
}

TEST(ResolveSchedule, SearchFailurePropagatesToEveryWaiter) {
  KernelService service(sunway::ArchConfig{}, KernelServiceConfig{});
  service.setSearchFnForTest(
      [](const core::CodegenOptions&, const sunway::ArchConfig&,
         const core::GemmProblem&, const TunerConfig&) -> ScheduleSearchResult {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        throwInput("no feasible schedule candidate (test)");
      });
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  for (int i = 0; i < 4; ++i) {
    pool.emplace_back([&] {
      try {
        service.resolveSchedule(core::CodegenOptions{}, {96, 96, 96});
      } catch (const sw::InputError&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(failures.load(), 4);
}

TEST(ResolveSchedule, CorruptDbEntryTriggersReSearch) {
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.tuningDir = scratchDir("resolve_corrupt");
  const core::GemmProblem problem{96, 96, 96};

  std::atomic<int> searches{0};
  KernelService service(arch, config);
  service.setSearchFnForTest(countingSearch(&searches));
  service.resolveSchedule(core::CodegenOptions{}, problem);
  ASSERT_EQ(searches.load(), 1);

  const std::string path = service.tuningDbPath(
      canonicalTuneKey(core::CodegenOptions{}, arch, problem));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "{\"schema_";  // truncated garbage
  }
  KernelService reloaded(arch, config);
  reloaded.setSearchFnForTest(countingSearch(&searches));
  const KernelService::ResolvedSchedule resolved =
      reloaded.resolveSchedule(core::CodegenOptions{}, problem);
  EXPECT_EQ(resolved.source,
            KernelService::ResolvedSchedule::Source::kSearch);
  EXPECT_EQ(searches.load(), 2);
  // And the repaired entry now serves from disk.
  KernelService third(arch, config);
  third.setSearchFnForTest(countingSearch(&searches));
  EXPECT_EQ(third.resolveSchedule(core::CodegenOptions{}, problem).source,
            KernelService::ResolvedSchedule::Source::kDiskHit);
  EXPECT_EQ(searches.load(), 2);
}

TEST(ResolveSchedule, EndToEndRealSearchCompilesByteIdentically) {
  // No test double: a real (estimator-only, trimmed-space) search through
  // the service, persisted, re-resolved from disk, and both resolutions
  // must compile to byte-identical kernels — the property the CI tuning
  // smoke pins from the CLI.
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.tuningDir = scratchDir("resolve_e2e");
  config.tuner.validateTopN = 0;
  config.tuner.space.tileMN = {32, 64};
  config.tuner.space.tileK = {32};
  config.tuner.space.stripFactors = {8};
  const core::GemmProblem problem{96, 96, 96};

  KernelService first(arch, config);
  const KernelService::ResolvedSchedule a =
      first.resolveSchedule(core::CodegenOptions{}, problem);
  EXPECT_EQ(a.source, KernelService::ResolvedSchedule::Source::kSearch);
  const KernelService::KernelPtr kernelA = first.compile(a.options);

  KernelService second(arch, config);
  const KernelService::ResolvedSchedule b =
      second.resolveSchedule(core::CodegenOptions{}, problem);
  EXPECT_EQ(b.source, KernelService::ResolvedSchedule::Source::kDiskHit);
  const KernelService::KernelPtr kernelB = second.compile(b.options);

  EXPECT_EQ(kernelA->cpeSource, kernelB->cpeSource);
  EXPECT_EQ(kernelA->mpeSource, kernelB->mpeSource);
}

}  // namespace
}  // namespace sw::tuning
