// Tests of the metrics layer: registry semantics, the deriveRunMetrics
// formulas on hand-made counters, the per-CPE counter invariants of a
// functional mesh run, and the §6 acceptance property that latency hiding
// strictly raises the overlap gauge.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "core/pipeline.h"
#include "runtime/executor.h"
#include "sunway/host_memory.h"
#include "sunway/mesh.h"
#include "support/histogram.h"
#include "support/metrics.h"

namespace sw {
namespace {

TEST(MetricsRegistry, SetAddGetSnapshotClear) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
  registry.clear();
  EXPECT_FALSE(registry.has("x"));
  EXPECT_EQ(registry.get("x"), 0.0);
  registry.set("x", 2.5);
  EXPECT_TRUE(registry.has("x"));
  EXPECT_EQ(registry.get("x"), 2.5);
  registry.add("x", 1.5);
  registry.add("fresh", 3.0);  // add on a missing gauge starts from 0
  EXPECT_EQ(registry.get("x"), 4.0);
  EXPECT_EQ(registry.get("fresh"), 3.0);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at("x"), 4.0);
  registry.clear();
  EXPECT_FALSE(registry.has("x"));
}

TEST(DeriveRunMetrics, FormulasOnKnownCounters) {
  sunway::CpeCounters totals;
  totals.computeSeconds = 4.0;
  totals.dmaBusySeconds = 2.0;
  totals.rmaBusySeconds = 1.0;
  totals.waitStallSeconds = 0.5;

  codegen::KernelProgram program;
  program.buffers = {codegen::SpmBufferDecl{"C", 64, 64, 1, 0},
                     codegen::SpmBufferDecl{"A", 64, 32, 2, 0}};
  codegen::planSpmLayout(program, 256 * 1024);

  const metrics::DerivedRunMetrics m = rt::deriveRunMetrics(
      totals, /*wallSeconds=*/5.0, /*cpeCount=*/1, program, 256 * 1024);
  // busy = 3, hidden = 3 - 0.5 = 2.5.
  EXPECT_NEAR(m.overlapPct, 100.0 * 2.5 / 3.0, 1e-9);
  EXPECT_NEAR(m.stallPct, 100.0 * 0.5 / 4.5, 1e-9);
  EXPECT_NEAR(m.computePct, 80.0, 1e-9);
  EXPECT_EQ(m.spmHighWaterBytes, program.spmBytesUsed());
  EXPECT_EQ(m.spmBudgetBytes, 256 * 1024);
  EXPECT_EQ(m.perBufferBytes.at("C"), 64 * 64 * 8);
  EXPECT_EQ(m.perBufferBytes.at("A"), 2 * 64 * 32 * 8);

  // Gauge flattening carries every scalar plus one entry per buffer.
  const auto gauges = m.toGauges("t.");
  EXPECT_NEAR(gauges.at("t.overlap_pct"), m.overlapPct, 1e-12);
  EXPECT_TRUE(gauges.count("t.spm_buffer_bytes.A"));
}

TEST(DeriveRunMetrics, StallHeavyScheduleHasLowOverlap) {
  sunway::CpeCounters totals;
  totals.computeSeconds = 1.0;
  totals.dmaBusySeconds = 2.0;
  totals.waitStallSeconds = 2.0;  // every DMA second exposed
  codegen::KernelProgram program;
  const metrics::DerivedRunMetrics m =
      rt::deriveRunMetrics(totals, 3.0, 1, program, 256 * 1024);
  EXPECT_NEAR(m.overlapPct, 0.0, 1e-9);
  EXPECT_GE(m.stallPct, 50.0);
}

TEST(SafeMath, ZeroAndNonFiniteInputsYieldZero) {
  EXPECT_EQ(metrics::safeDiv(1.0, 0.0), 0.0);
  EXPECT_EQ(metrics::safeDiv(1.0, -2.0), 0.0);
  EXPECT_EQ(metrics::safeDiv(std::nan(""), 2.0), 0.0);
  EXPECT_EQ(metrics::safeDiv(1.0, std::nan("")), 0.0);
  EXPECT_EQ(metrics::safeDiv(1.0, HUGE_VAL), 0.0);
  EXPECT_DOUBLE_EQ(metrics::safeDiv(6.0, 3.0), 2.0);
  EXPECT_EQ(metrics::safePct(5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(metrics::safePct(1.0, 4.0), 25.0);
}

TEST(DeriveRunMetrics, IdleCountersAreZeroNeverNaN) {
  // An idle run (zero busy, zero active, zero wall clock) must read as 0%
  // everywhere — historically these divisions produced NaN gauges.
  const sunway::CpeCounters idle;
  codegen::KernelProgram program;
  const metrics::DerivedRunMetrics m =
      rt::deriveRunMetrics(idle, /*wallSeconds=*/0.0, /*cpeCount=*/64,
                           program, /*spmBudgetBytes=*/256 * 1024);
  EXPECT_EQ(m.overlapPct, 0.0);
  EXPECT_EQ(m.stallPct, 0.0);
  EXPECT_EQ(m.computePct, 0.0);
  EXPECT_TRUE(std::isfinite(m.overlapPct));
  EXPECT_TRUE(std::isfinite(m.stallPct));
  EXPECT_TRUE(std::isfinite(m.computePct));
  EXPECT_EQ(m.spmBudgetPct, 0.0);
  for (const auto& [name, value] : m.toGauges("idle."))
    EXPECT_TRUE(std::isfinite(value)) << name;
}

TEST(FormatMetricsTable, GroupsSortsAndAnnotatesUnits) {
  const std::map<std::string, double> gauges = {
      {"run.overlap_pct", 42.5},
      {"run.spm_high_water_bytes", 2048.0},
      {"service.requests", 3.0},
  };
  const std::string expected =
      "run:\n"
      "  overlap_pct                                        42.5 %\n"
      "  spm_high_water_bytes                                2.0 KB\n"
      "\n"
      "service:\n"
      "  requests                                              3\n";
  EXPECT_EQ(metrics::formatMetricsTable(gauges), expected);
}

TEST(FormatMetricsTable, UngroupedGaugesGetTheirOwnSection) {
  const std::string table =
      metrics::formatMetricsTable({{"loose", 1.5}, {"g.x_ms", 2.0}});
  EXPECT_NE(table.find("(ungrouped):"), std::string::npos);
  EXPECT_NE(table.find("g:"), std::string::npos);
  EXPECT_NE(table.find("ms"), std::string::npos);
}

TEST(FormatHistogramTable, OneRowPerHistogramWithPercentiles) {
  metrics::Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  std::map<std::string, metrics::Histogram> histograms;
  histograms["svc.latency"] = h;
  const std::string table =
      metrics::formatHistogramTable(histograms, "ms");
  EXPECT_NE(table.find("histogram"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
  EXPECT_NE(table.find("svc.latency"), std::string::npos);
  EXPECT_NE(table.find("(ms)"), std::string::npos);
  EXPECT_NE(table.find("100"), std::string::npos);  // count column
}

TEST(PerCpeCounters, FunctionalMeshRunInvariants) {
  core::SwGemmCompiler compiler;
  const core::CompiledKernel kernel = compiler.compile(core::CodegenOptions{});
  const sunway::ArchConfig arch = compiler.arch();

  const core::PaddedShape padded =
      core::padShape(64, 64, 64, kernel.options, arch);
  sunway::MeshSimulator mesh(arch, /*functional=*/true);
  mesh.memory().add(
      sunway::HostArray::allocate("A", 1, padded.m, padded.k));
  mesh.memory().add(
      sunway::HostArray::allocate("B", 1, padded.k, padded.n));
  mesh.memory().add(
      sunway::HostArray::allocate("C", 1, padded.m, padded.n));
  const auto params =
      rt::bindParams(kernel.program, padded.m, padded.n, padded.k, 1);
  const sunway::MeshRunResult result =
      mesh.run([&](sunway::CpeServices& services) {
        rt::runCpeProgram(kernel.program, params, rt::ExecScalars{1.0, 0.0},
                          services);
      });

  ASSERT_EQ(result.perCpeCounters.size(),
            static_cast<std::size_t>(arch.meshSize()));
  sunway::CpeCounters resummed;
  for (const sunway::CpeCounters& cpe : result.perCpeCounters) {
    // Active time cannot exceed the mesh wall clock: the CPE's logical
    // clock only ever advances, and the wall clock is the slowest clock
    // plus spawn overhead.
    EXPECT_LE(cpe.computeSeconds + cpe.waitStallSeconds,
              result.seconds + 1e-12);
    EXPECT_GE(cpe.computeSeconds, 0.0);
    EXPECT_GE(cpe.waitStallSeconds, 0.0);
    resummed.add(cpe);
  }
  EXPECT_NEAR(resummed.computeSeconds, result.totals.computeSeconds, 1e-12);
  EXPECT_NEAR(resummed.waitStallSeconds, result.totals.waitStallSeconds,
              1e-12);
  EXPECT_EQ(resummed.dmaMessages, result.totals.dmaMessages);
  // The exposed-stall split attributes every wait second to a cause
  // (fault-free run: no sync delays leak into the wait total).
  EXPECT_NEAR(result.totals.dmaStallSeconds + result.totals.rmaStallSeconds +
                  result.totals.retryStallSeconds,
              result.totals.waitStallSeconds, 1e-9);
  EXPECT_GE(result.totals.syncStallSeconds, 0.0);

  const metrics::DerivedRunMetrics m =
      rt::deriveRunMetrics(result.totals, result.seconds, arch.meshSize(),
                           kernel.program, arch.spmBytes);
  EXPECT_GE(m.overlapPct, 0.0);
  EXPECT_LE(m.overlapPct, 100.0);
  EXPECT_GE(m.stallPct, 0.0);
  EXPECT_LE(m.stallPct, 100.0);
  EXPECT_GT(m.spmHighWaterBytes, 0);
  EXPECT_LE(m.spmHighWaterBytes, arch.spmBytes);
}

TEST(OverlapGauge, LatencyHidingStrictlyRaisesOverlap) {
  core::SwGemmCompiler compiler;
  core::CodegenOptions hiding;   // defaults enable the full pipeline
  core::CodegenOptions exposed = hiding;
  exposed.hideLatency = false;

  const core::GemmProblem problem{4096, 4096, 4096, 1};
  const rt::RunOutcome fast =
      core::estimateGemm(compiler.compile(hiding), compiler.arch(), problem);
  const rt::RunOutcome slow =
      core::estimateGemm(compiler.compile(exposed), compiler.arch(), problem);

  EXPECT_GT(fast.metrics.overlapPct, slow.metrics.overlapPct);
  EXPECT_LT(fast.metrics.stallPct, slow.metrics.stallPct);
  EXPECT_GT(fast.gflops, slow.gflops);
  for (const rt::RunOutcome* o : {&fast, &slow}) {
    EXPECT_GE(o->metrics.overlapPct, 0.0);
    EXPECT_LE(o->metrics.overlapPct, 100.0);
    EXPECT_LE(o->metrics.spmHighWaterBytes, compiler.arch().spmBytes);
  }
}

}  // namespace
}  // namespace sw
