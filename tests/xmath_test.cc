// Tests of the simulated xMath library: functional DGEMM correctness and
// the timing model's published behaviours (§8.2–§8.4): power-of-two K
// strength, large non-power-of-two K collapse, per-batch launch overhead.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "kernel/reference.h"
#include "sunway/arch.h"
#include "xmath/xmath.h"

namespace sw::xmath {
namespace {

TEST(XMathFunctional, MatchesReference) {
  const std::int64_t m = 33, n = 17, k = 21;
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> a(m * k), b(k * n), c(m * n), expected;
  for (auto* v : {&a, &b, &c})
    for (double& x : *v) x = dist(rng);
  expected = c;
  dgemm(c.data(), a.data(), b.data(), m, n, k, 1.5, -0.5);
  kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k, 1.5,
                        -0.5);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

TEST(XMathModel, PowerOfTwoKIsStrong) {
  sunway::ArchConfig arch;
  XMathModel model(arch);
  // §8.2: above 93% of peak when K = 16384.
  EXPECT_GT(model.efficiency(4096, 16384, 16384), 0.92);
  EXPECT_GT(model.efficiency(8192, 8192, 8192), 0.88);
  EXPECT_GT(model.efficiency(1024, 1024, 1024), 0.85);
}

TEST(XMathModel, LargeNonPowerOfTwoKCollapses) {
  sunway::ArchConfig arch;
  XMathModel model(arch);
  // §8.2: 42.25% of peak at 8192 x 8192 x 15360.
  EXPECT_LT(model.efficiency(8192, 8192, 15360), 0.48);
  EXPECT_GT(model.efficiency(8192, 8192, 15360), 0.36);
  // 7680^3, 10240^3, 15360^3 fall under 1500/2150 = 70% of peak.
  for (std::int64_t s : {7680, 10240, 15360})
    EXPECT_LT(model.efficiency(s, s, s), 0.70) << s;
  // Small non-power-of-two K only pays a mild penalty.
  EXPECT_GT(model.efficiency(1536, 1536, 1536), 0.80);
}

TEST(XMathModel, EfficiencyIsDeterministic) {
  sunway::ArchConfig arch;
  XMathModel model(arch);
  EXPECT_EQ(model.efficiency(4096, 4096, 4096),
            model.efficiency(4096, 4096, 4096));
}

TEST(XMathModel, BatchedPaysPerElementLaunch) {
  sunway::ArchConfig arch;
  XMathModel model(arch);
  const double one = model.gemmSeconds(512, 512, 256);
  const double eight = model.batchedGemmSeconds(8, 512, 512, 256);
  EXPECT_DOUBLE_EQ(eight, 8.0 * one);
  // Launch overhead is a visible fraction for small shapes.
  EXPECT_GT(model.launchOverheadSeconds() / one, 0.2);
}

TEST(XMathModel, MpeElementwiseIsMemoryBound) {
  sunway::ArchConfig arch;
  XMathModel model(arch);
  const std::int64_t elements = 4096 * 4096;
  const double seconds = model.mpeElementwiseSeconds(elements);
  EXPECT_NEAR(seconds,
              2.0 * elements * 8 / arch.mpeMemBandwidthBytesPerSec,
              seconds * 0.5);
  // Scales linearly.
  EXPECT_NEAR(model.mpeElementwiseSeconds(2 * elements), 2.0 * seconds,
              seconds * 0.01);
}

TEST(XMathModel, GflopsNeverExceedPeak) {
  sunway::ArchConfig arch;
  XMathModel model(arch);
  for (std::int64_t s : {512, 1000, 1536, 4096, 6144, 10240, 16384})
    EXPECT_LT(model.gflops(s, s, s), arch.peakFlops() / 1e9) << s;
}

}  // namespace
}  // namespace sw::xmath
