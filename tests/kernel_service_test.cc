// Kernel-service tests: cache hit/miss accounting, LRU eviction under
// entry and byte budgets, persistent disk round-trips across service
// instances (a "new process" stand-in), corrupt-entry recovery, and
// single-flight deduplication observed through a counting compiler stub.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "core/gemm_runner.h"
#include "core/kernel_serdes.h"
#include "core/pipeline.h"
#include "jit/native_engine.h"
#include "service/kernel_service.h"
#include "support/error.h"

namespace sw::service {
namespace {

namespace fs = std::filesystem;

core::CodegenOptions tileVariant(std::int64_t tileM) {
  core::CodegenOptions options;
  options.tileM = tileM;
  return options;
}

/// Real compile wrapped in an invocation counter: the cache-behavior
/// assertions all reduce to "how many pipeline runs did this trigger".
struct CountingCompiler {
  std::atomic<int> calls{0};

  KernelService::CompileFn fn(const sunway::ArchConfig& arch) {
    return [this, arch](const core::CodegenOptions& options) {
      calls.fetch_add(1);
      return core::SwGemmCompiler(arch).compile(options);
    };
  }
};

/// Fresh per-test scratch directory under the gtest temp root.
std::string scratchDir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("swk_service_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(KernelServiceTest, MemoryHitServesWithoutRecompile) {
  CountingCompiler counting;
  const sunway::ArchConfig arch;
  KernelService service(counting.fn(arch), arch, {});

  const KernelService::KernelPtr first = service.compile(tileVariant(64));
  const KernelService::KernelPtr second = service.compile(tileVariant(64));
  EXPECT_EQ(counting.calls.load(), 1);
  EXPECT_EQ(first.get(), second.get());  // same cached object

  service.compile(tileVariant(32));
  EXPECT_EQ(counting.calls.load(), 2);

  const KernelServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.memoryHits, 1);
  EXPECT_EQ(stats.compiles, 2);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0);
  EXPECT_NEAR(stats.hitRate(), 1.0 / 3.0, 1e-12);
}

TEST(KernelServiceTest, LruEvictsByEntryBudget) {
  CountingCompiler counting;
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.maxEntries = 2;
  KernelService service(counting.fn(arch), arch, config);

  service.compile(tileVariant(64));
  service.compile(tileVariant(32));
  service.compile(tileVariant(16));  // evicts tileM=64
  EXPECT_EQ(service.stats().entries, 2u);
  EXPECT_EQ(service.stats().evictions, 1);

  // tileM=32 was refreshed less recently than 16 but more recently than
  // the evicted 64: re-requesting 64 recompiles, 32 still hits.
  service.compile(tileVariant(32));
  EXPECT_EQ(counting.calls.load(), 3);
  service.compile(tileVariant(64));
  EXPECT_EQ(counting.calls.load(), 4);
}

TEST(KernelServiceTest, LruEvictsByByteBudgetButKeepsNewest) {
  CountingCompiler counting;
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.maxBytes = 1;  // below any kernel's size
  KernelService service(counting.fn(arch), arch, config);

  service.compile(tileVariant(64));
  EXPECT_EQ(service.stats().entries, 1u);  // newest survives over-budget
  service.compile(tileVariant(32));
  EXPECT_EQ(service.stats().entries, 1u);
  EXPECT_EQ(service.stats().evictions, 1);
}

TEST(KernelServiceTest, NativeEngineChargesJitObjectBytesAndEvictsThem) {
  const sunway::ArchConfig arch;
  const core::CodegenOptions options = tileVariant(64);

  // Plant a fake JIT artifact where the native engine would cache this
  // kernel's shared object (compiles are deterministic, so an offline
  // compile yields the same program digest the service will compute).
  const std::string jitDir = scratchDir("jit_bytes");
  const core::CompiledKernel offline = core::SwGemmCompiler(arch).compile(options);
  jit::NativeEngineConfig jitConfig;
  jitConfig.cacheDir = jitDir;
  const std::string soPath = jit::nativeObjectPath(
      jitConfig, jit::nativeObjectDigest(offline.program));
  fs::create_directories(fs::path(soPath).parent_path());
  const std::string fakeObject(1000, 'x');
  {
    std::ofstream out(soPath, std::ios::binary);
    out << fakeObject;
  }

  // Same compile with and without the native engine: the only footprint
  // difference is the artifact's size.
  KernelService plain(arch, {});
  plain.compile(options);
  KernelServiceConfig config;
  config.nativeEngine = true;
  config.jitCacheDir = jitDir;
  config.maxEntries = 1;
  KernelService native(arch, config);
  native.compile(options);
  EXPECT_EQ(native.stats().bytes,
            plain.stats().bytes +
                static_cast<std::int64_t>(fakeObject.size()));

  // Evicting the entry reclaims the on-disk artifact too.
  native.compile(tileVariant(32));
  EXPECT_EQ(native.stats().evictions, 1);
  EXPECT_FALSE(fs::exists(soPath));
}

TEST(KernelServiceTest, DiskRoundTripAcrossServiceInstances) {
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.cacheDir = scratchDir("roundtrip");

  core::CompiledKernel fresh;
  {
    CountingCompiler counting;
    KernelService warmup(counting.fn(arch), arch, config);
    fresh = *warmup.compile(tileVariant(64));
    EXPECT_EQ(counting.calls.load(), 1);
  }

  // A brand-new service over the same directory stands in for a new
  // process: it must serve from disk without compiling at all.
  CountingCompiler counting;
  KernelService reloadedService(counting.fn(arch), arch, config);
  ServeOutcome outcome;
  const KernelService::KernelPtr reloaded =
      reloadedService.compile(tileVariant(64), &outcome);
  EXPECT_EQ(counting.calls.load(), 0);
  EXPECT_EQ(outcome, ServeOutcome::kDiskHit);
  EXPECT_EQ(reloaded->cpeSource, fresh.cpeSource);
  EXPECT_EQ(reloaded->mpeSource, fresh.mpeSource);

  // And the reloaded kernel must be functionally identical on the mesh.
  const std::int64_t m = 64, n = 64, k = 64;
  std::vector<double> a(m * k), b(k * n);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0.5 * (i % 3) - 0.5;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.25 * (i % 5) - 0.5;
  std::vector<double> cFresh(m * n, 2.0), cReloaded(m * n, 2.0);
  const core::GemmProblem problem{m, n, k, 1};
  core::runGemmFunctional(fresh, arch, problem, a, b, cFresh);
  core::runGemmFunctional(*reloaded, arch, problem, a, b, cReloaded);
  EXPECT_EQ(cFresh, cReloaded);
}

TEST(KernelServiceTest, CorruptDiskEntryIsRecompiledAndRepaired) {
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.cacheDir = scratchDir("corrupt");

  std::string entryPath;
  {
    CountingCompiler counting;
    KernelService warmup(counting.fn(arch), arch, config);
    warmup.compile(tileVariant(64));
    entryPath = warmup.diskPathForKey(
        core::canonicalRequestKey(tileVariant(64), arch));
    ASSERT_TRUE(fs::exists(entryPath));
  }

  // Truncate the entry mid-stream: the service must warn, recompile and
  // rewrite, never misparse.
  {
    std::ofstream out(entryPath, std::ios::binary | std::ios::trunc);
    out << "swkcache1 5:hello GARBAGE";
  }
  CountingCompiler counting;
  KernelService service(counting.fn(arch), arch, config);
  ServeOutcome outcome;
  service.compile(tileVariant(64), &outcome);
  EXPECT_EQ(counting.calls.load(), 1);
  EXPECT_EQ(outcome, ServeOutcome::kCompiled);
  EXPECT_EQ(service.stats().corruptDiskEntries, 1);

  // The rewrite healed the entry: one more fresh service now disk-hits.
  CountingCompiler countingAfter;
  KernelService healed(countingAfter.fn(arch), arch, config);
  healed.compile(tileVariant(64), &outcome);
  EXPECT_EQ(countingAfter.calls.load(), 0);
  EXPECT_EQ(outcome, ServeOutcome::kDiskHit);
}

TEST(KernelServiceTest, StaleVersionDirectoryIsIgnored) {
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.cacheDir = scratchDir("stale");
  // Entries of a hypothetical older format live in their own version
  // directory and are simply invisible to the current reader.
  fs::create_directories(fs::path(config.cacheDir) / "v0");
  std::ofstream(fs::path(config.cacheDir) / "v0" / "deadbeef.swk")
      << "old format";

  CountingCompiler counting;
  KernelService service(counting.fn(arch), arch, config);
  ServeOutcome outcome;
  service.compile(tileVariant(64), &outcome);
  EXPECT_EQ(outcome, ServeOutcome::kCompiled);
  EXPECT_EQ(service.stats().corruptDiskEntries, 0);
}

TEST(KernelServiceTest, SingleFlightDeduplicatesConcurrentRequests) {
  const sunway::ArchConfig arch;
  std::atomic<int> calls{0};
  std::mutex gate;
  std::condition_variable cv;
  bool release = false;

  // A compile stub that blocks until released, so every requester thread
  // provably arrives while the first compile is still in flight.
  KernelService::CompileFn blockingCompile =
      [&](const core::CodegenOptions& options) {
        calls.fetch_add(1);
        std::unique_lock<std::mutex> lock(gate);
        cv.wait(lock, [&] { return release; });
        return core::SwGemmCompiler(arch).compile(options);
      };
  KernelService service(blockingCompile, arch, {});

  constexpr int kThreads = 8;
  std::vector<KernelService::KernelPtr> results(kThreads);
  std::vector<ServeOutcome> outcomes(kThreads, ServeOutcome::kCompiled);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] {
      results[i] = service.compile(tileVariant(64), &outcomes[i]);
    });

  // Wait until the leader entered the stub, give joiners time to pile up
  // on the in-flight future, then open the gate.
  while (calls.load() == 0) std::this_thread::yield();
  while (service.stats().shared < kThreads - 1) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(gate);
    release = true;
  }
  cv.notify_all();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(calls.load(), 1) << "single-flight must collapse to one compile";
  int sharedCount = 0;
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(results[i], nullptr);
    EXPECT_EQ(results[i].get(), results[0].get());
    if (outcomes[i] == ServeOutcome::kShared) ++sharedCount;
  }
  EXPECT_EQ(sharedCount, kThreads - 1);
  EXPECT_EQ(service.stats().shared, kThreads - 1);
}

TEST(KernelServiceTest, BatchDeduplicatesAndReportsPerRequest) {
  CountingCompiler counting;
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.threads = 4;
  KernelService service(counting.fn(arch), arch, config);

  // 12 requests over 3 distinct keys: at most 3 pipeline runs.
  std::vector<core::CodegenOptions> requests;
  for (int i = 0; i < 12; ++i)
    requests.push_back(tileVariant(std::int64_t{16} << (i % 3)));
  const std::vector<KernelService::BatchResult> results =
      service.compileBatch(requests);

  ASSERT_EQ(results.size(), requests.size());
  EXPECT_EQ(counting.calls.load(), 3);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].error.empty()) << results[i].error;
    ASSERT_NE(results[i].kernel, nullptr);
    EXPECT_EQ(results[i].options.tileM, requests[i].tileM);
    EXPECT_GE(results[i].latencySeconds, 0.0);
  }
  // Identical keys resolve to the identical cached object.
  EXPECT_EQ(results[0].kernel.get(), results[3].kernel.get());
}

TEST(KernelServiceTest, BatchReportsPerRequestErrors) {
  const sunway::ArchConfig arch;
  KernelService service(arch, {});
  // Tiles too large for the 256 KB SPM must fail that request only.
  std::vector<core::CodegenOptions> requests{tileVariant(64),
                                             tileVariant(4096)};
  const std::vector<KernelService::BatchResult> results =
      service.compileBatch(requests);
  EXPECT_TRUE(results[0].error.empty());
  ASSERT_NE(results[0].kernel, nullptr);
  EXPECT_FALSE(results[1].error.empty());
  EXPECT_EQ(results[1].kernel, nullptr);
}

TEST(KernelServiceTest, ManifestParsing) {
  const core::CodegenOptions parsed = parseManifestLine(
      "tile=32x48x16 strip=4 batch no-asm fuse=relu transB  # comment");
  EXPECT_EQ(parsed.tileM, 32);
  EXPECT_EQ(parsed.tileN, 48);
  EXPECT_EQ(parsed.tileK, 16);
  EXPECT_EQ(parsed.stripFactor, 4);
  EXPECT_TRUE(parsed.batched);
  EXPECT_FALSE(parsed.useAsm);
  EXPECT_EQ(parsed.fusion, core::FusionKind::kEpilogueRelu);
  EXPECT_TRUE(parsed.transposeB);

  EXPECT_THROW(parseManifestLine("tile=32x48"), InputError);
  EXPECT_THROW(parseManifestLine("tile=0x48x16"), InputError);
  EXPECT_THROW(parseManifestLine("frobnicate"), InputError);

  const std::vector<core::CodegenOptions> warm =
      parseWarmShapes("64x64x32,32x32x32");
  ASSERT_EQ(warm.size(), 2u);
  EXPECT_EQ(warm[0].tileM, 64);
  EXPECT_EQ(warm[1].tileK, 32);
  EXPECT_THROW(parseWarmShapes(""), InputError);
  EXPECT_THROW(parseWarmShapes("64x64"), InputError);
}

TEST(KernelServiceTest, ManifestBatchKeepsLineNumbersForMalformedLines) {
  const sunway::ArchConfig arch;
  KernelServiceConfig config;
  config.threads = 2;
  KernelService service(arch, config);

  // Physical lines 1-2 are a comment and a blank; the four request lines
  // sit at lines 3-6 with the malformed ones in the middle.
  const std::string manifest =
      "# mixed manifest\n"
      "\n"
      "tile=64x64x32\n"
      "frobnicate\n"
      "tile=32x32x32 no-asm\n"
      "tile=0x48x16\n";
  const std::vector<KernelService::BatchResult> results =
      service.compileManifest(manifest);

  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].error.empty()) << results[0].error;
  ASSERT_NE(results[0].kernel, nullptr);
  EXPECT_EQ(results[0].options.tileM, 64);

  // A malformed line fails alone, carrying its 1-based physical line
  // number and the offending token — the valid lines around it compile.
  EXPECT_EQ(results[1].kernel, nullptr);
  EXPECT_NE(results[1].error.find("manifest line 4"), std::string::npos)
      << results[1].error;
  EXPECT_NE(results[1].error.find("frobnicate"), std::string::npos)
      << results[1].error;

  EXPECT_TRUE(results[2].error.empty()) << results[2].error;
  ASSERT_NE(results[2].kernel, nullptr);
  EXPECT_FALSE(results[2].options.useAsm);

  EXPECT_EQ(results[3].kernel, nullptr);
  EXPECT_NE(results[3].error.find("manifest line 6"), std::string::npos)
      << results[3].error;
}

TEST(KernelServiceTest, FailedCompileClearsSingleFlightForRetry) {
  // A compile that throws must erase its in-flight entry: the next request
  // for the same key retries the pipeline instead of joining a dead
  // shared future forever.
  std::atomic<int> calls{0};
  const sunway::ArchConfig arch;
  KernelService service(
      [&calls, arch](const core::CodegenOptions& options) {
        if (calls.fetch_add(1) == 0)
          throw TransientError("backend hiccup on the first attempt");
        return core::SwGemmCompiler(arch).compile(options);
      },
      arch, {});

  EXPECT_THROW(service.compile(tileVariant(64)), TransientError);
  const KernelService::KernelPtr kernel = service.compile(tileVariant(64));
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(calls.load(), 2);  // retried, not served the stale failure
}

TEST(KernelServiceTest, FailedSearchClearsSingleFlightForRetry) {
  const sunway::ArchConfig arch;
  KernelService service(arch, {});
  std::atomic<int> searches{0};
  service.setSearchFnForTest(
      [&searches](const core::CodegenOptions&, const sunway::ArchConfig&,
                  const core::GemmProblem&, const tuning::TunerConfig&) {
        if (searches.fetch_add(1) == 0)
          throw TransientError("mesh unavailable during the search");
        std::vector<tuning::CandidateResult> candidates(1);
        candidates[0].feasible = true;
        candidates[0].candidate.tileM = 32;
        candidates[0].candidate.tileN = 32;
        candidates[0].candidate.tileK = 32;
        candidates[0].estimatedGflops = 123.0;
        return tuning::ScheduleSearchResult(std::move(candidates));
      });

  const core::GemmProblem problem{96, 96, 96};
  EXPECT_THROW(service.resolveSchedule(core::CodegenOptions{}, problem),
               TransientError);
  const KernelService::ResolvedSchedule resolved =
      service.resolveSchedule(core::CodegenOptions{}, problem);
  EXPECT_EQ(resolved.options.tileM, 32);
  EXPECT_EQ(searches.load(), 2);  // the failed search did not wedge the key
}

TEST(KernelServiceTest, EstimatorRungZeroFillsC) {
  // When every mesh rung fails, the terminal estimator rung must not leak
  // the last failed attempt's partial writes: C is zero-filled.
  const sunway::ArchConfig arch;
  KernelService service(arch, {});
  service.setRunFnForTest(
      [](const core::CompiledKernel&, const core::GemmProblem&,
         std::span<const double>, std::span<const double>,
         std::span<double> c, const core::FunctionalRunConfig&)
          -> rt::RunOutcome {
        // Simulate a mesh that scribbles into C before dying.
        if (!c.empty()) c[0] = 1234.5;
        throw TransientError("mesh run failed");
      });

  const core::CodegenOptions options;
  const KernelService::KernelPtr kernel = service.compile(options);
  const core::PaddedShape shape =
      core::padShape(1, 1, 1, kernel->options, service.arch());
  const core::GemmProblem problem{shape.m, shape.n, shape.k, 1};
  const std::vector<double> a(
      static_cast<std::size_t>(shape.m * shape.k), 1.0);
  const std::vector<double> b(
      static_cast<std::size_t>(shape.k * shape.n), 1.0);
  std::vector<double> c(static_cast<std::size_t>(shape.m * shape.n), 7.0);

  const KernelService::ResilientRunResult result =
      service.runResilient(options, problem, a, b, c);
  EXPECT_TRUE(result.usedEstimator);
  EXPECT_FALSE(result.degradations.empty());
  for (const double v : c) ASSERT_EQ(v, 0.0);
  EXPECT_GT(result.outcome.gflops, 0.0);  // timing is still meaningful
}

}  // namespace
}  // namespace sw::service
