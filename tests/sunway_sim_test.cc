// Unit tests of the SW26010Pro core-group simulator: SPM bounds checking,
// DMA semantics (strided gather, reply protocol, per-CPE engine
// serialisation), RMA broadcast delivery, barrier clock-maxing, and
// protocol-violation detection.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "sunway/collectives.h"
#include "sunway/estimator.h"
#include "sunway/host_memory.h"
#include "sunway/mesh.h"
#include "support/error.h"

namespace sw::sunway {
namespace {

TEST(HostArray, BoundsChecking) {
  HostArray a = HostArray::allocate("A", 1, 4, 8);
  a.at(0, 3, 7) = 1.0;
  EXPECT_EQ(a.at(0, 3, 7), 1.0);
  EXPECT_THROW((void)a.at(0, 4, 0), ProtocolError);
  EXPECT_THROW((void)a.at(0, 0, 8), ProtocolError);
  EXPECT_THROW((void)a.at(1, 0, 0), ProtocolError);
  EXPECT_THROW((void)a.at(0, -1, 0), ProtocolError);
}

TEST(HostArray, VirtualArrayHasNoData) {
  HostArray v = HostArray::virtualArray("V", 2, 100, 100);
  EXPECT_FALSE(v.hasData());
  EXPECT_EQ(v.rows(), 100);
}

TEST(ArchConfig, DerivedQuantities) {
  ArchConfig config;
  EXPECT_EQ(config.meshSize(), 64);
  EXPECT_NEAR(config.peakFlops(), 64 * 2.1e9 * 16.0, 1.0);
  EXPECT_NEAR(config.dmaShareBytesPerSec(),
              config.ddrBandwidthBytesPerSec / 64, 1.0);
  // DMA time is affine in size.
  EXPECT_GT(config.dmaSeconds(32768, 64), config.dmaSeconds(16384, 32));
}

TEST(Mesh, BarrierEqualisesClocks) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/false);
  MeshRunResult result = mesh.run([&](CpeServices& cpe) {
    // Give each CPE a different amount of work, then synchronise.
    cpe.computeTime(1.0e6 * (cpe.rid() * 8 + cpe.cid() + 1),
                    ComputeRate::kElementwise);
    cpe.sync();
  });
  // After the barrier every clock equals the max + sync cost.
  const double expectedMin = result.perCpeSeconds[0];
  for (double t : result.perCpeSeconds) EXPECT_DOUBLE_EQ(t, expectedMin);
}

TEST(Mesh, DmaMovesStridedTile) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  HostArray a = HostArray::allocate("A", 1, 16, 16);
  for (std::int64_t r = 0; r < 16; ++r)
    for (std::int64_t c = 0; c < 16; ++c) a.at(0, r, c) = r * 100.0 + c;
  mesh.memory().add(std::move(a));

  mesh.run([&](CpeServices& cpe) {
    if (cpe.rid() != 0 || cpe.cid() != 0) return;
    DmaRequest request;
    request.array = "A";
    request.rowStart = 2;
    request.colStart = 3;
    request.tileRows = 4;
    request.tileCols = 5;
    request.spmOffsetBytes = 0;
    request.slot = "r";
    cpe.dmaIssue(request);
    cpe.waitSlot("r", false, true);
    const double* spm = cpe.spmPtr(0);
    for (std::int64_t r = 0; r < 4; ++r)
      for (std::int64_t c = 0; c < 5; ++c)
        EXPECT_EQ(spm[r * 5 + c], (r + 2) * 100.0 + (c + 3));
  });
}

TEST(Mesh, DmaPutWritesBack) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  mesh.memory().add(HostArray::allocate("C", 1, 8, 8));
  mesh.run([&](CpeServices& cpe) {
    if (cpe.rid() != 0 || cpe.cid() != 0) return;
    double* spm = cpe.spmPtr(0);
    for (int i = 0; i < 4; ++i) spm[i] = 7.0 + i;
    DmaRequest request;
    request.isPut = true;
    request.array = "C";
    request.rowStart = 1;
    request.colStart = 2;
    request.tileRows = 2;
    request.tileCols = 2;
    request.spmOffsetBytes = 0;
    request.slot = "w";
    cpe.dmaIssue(request);
    cpe.waitSlot("w", false, true);
  });
  const HostArray& c = mesh.memory().get("C");
  EXPECT_EQ(c.at(0, 1, 2), 7.0);
  EXPECT_EQ(c.at(0, 1, 3), 8.0);
  EXPECT_EQ(c.at(0, 2, 2), 9.0);
  EXPECT_EQ(c.at(0, 2, 3), 10.0);
}

TEST(Mesh, DmaOutOfBoundsThrows) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  mesh.memory().add(HostArray::allocate("A", 1, 8, 8));
  EXPECT_THROW(mesh.run([&](CpeServices& cpe) {
    if (cpe.rid() != 0 || cpe.cid() != 0) return;
    DmaRequest request;
    request.array = "A";
    request.rowStart = 6;
    request.colStart = 0;
    request.tileRows = 4;  // rows 6..9 overflow
    request.tileCols = 8;
    request.slot = "r";
    cpe.dmaIssue(request);
  }),
               ProtocolError);
}

TEST(Mesh, WaitWithoutMessageThrows) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/false);
  EXPECT_THROW(mesh.run([&](CpeServices& cpe) {
    cpe.waitSlot("nothing", false, true);
  }),
               ProtocolError);
}

TEST(Mesh, RowBroadcastDeliversToWholeRow) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  mesh.run([&](CpeServices& cpe) {
    double* spm = cpe.spmPtr(0);
    // Sender (column 3) stages a distinctive pattern at offset 1024B.
    double* stage = cpe.spmPtr(1024);
    stage[0] = 1000.0 + cpe.rid();
    cpe.sync();
    if (cpe.cid() == 3) {
      RmaRequest request;
      request.kind = RmaKind::kRowBroadcast;
      request.isSender = true;
      request.bytes = 8;
      request.srcSpmOffsetBytes = 1024;
      request.dstSpmOffsetBytes = 0;
      request.slot = "bc";
      cpe.rmaIssue(request);
    }
    cpe.waitSlot("bc", true, true);
    EXPECT_EQ(spm[0], 1000.0 + cpe.rid());
  });
}

TEST(Mesh, ColumnBroadcastDeliversToWholeColumn) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  mesh.run([&](CpeServices& cpe) {
    double* stage = cpe.spmPtr(2048);
    stage[0] = 500.0 + cpe.cid();
    cpe.sync();
    if (cpe.rid() == 5) {
      RmaRequest request;
      request.kind = RmaKind::kColBroadcast;
      request.isSender = true;
      request.bytes = 8;
      request.srcSpmOffsetBytes = 2048;
      request.dstSpmOffsetBytes = 0;
      request.slot = "cc";
      cpe.rmaIssue(request);
    }
    cpe.waitSlot("cc", true, false);
    EXPECT_EQ(cpe.spmPtr(0)[0], 500.0 + cpe.cid());
  });
}

TEST(Mesh, PointToPointDeliversToOneCpe) {
  // Fig.8a: CPE (1,2) sends to (5,6); a diagonal route passes a transit
  // CPE, which the timing model charges as a second hop.
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  mesh.run([&](CpeServices& cpe) {
    cpe.spmPtr(512)[0] = 0.0;
    cpe.sync();  // receiver buffers must be settled before the send
    if (cpe.rid() == 1 && cpe.cid() == 2) {
      cpe.spmPtr(0)[0] = 42.0;
      RmaRequest request;
      request.kind = RmaKind::kPointToPoint;
      request.isSender = true;
      request.bytes = 8;
      request.srcSpmOffsetBytes = 0;
      request.dstSpmOffsetBytes = 512;
      request.dstRid = 5;
      request.dstCid = 6;
      request.slot = "p2p";
      cpe.rmaIssue(request);
    }
    if (cpe.rid() == 5 && cpe.cid() == 6) {
      cpe.rmaWaitPoint("p2p");
      EXPECT_EQ(cpe.spmPtr(512)[0], 42.0);
    }
  });
}

TEST(Mesh, PointToPointTransitHopCostsMore) {
  ArchConfig config;
  SymmetricCpeServices direct(config);
  RmaRequest sameRow;
  sameRow.kind = RmaKind::kPointToPoint;
  sameRow.isSender = true;
  sameRow.bytes = 16384;
  sameRow.slot = "p";
  // The symmetric estimator charges the worst case (transit) for p2p;
  // compare against a broadcast of the same size, which is single-hop.
  direct.rmaIssue(sameRow);
  direct.waitSlot("p", true, false);
  SymmetricCpeServices bcast(config);
  RmaRequest row;
  row.kind = RmaKind::kRowBroadcast;
  row.isSender = true;
  row.bytes = 16384;
  row.slot = "b";
  bcast.rmaIssue(row);
  bcast.waitSlot("b", true, true);
  EXPECT_GT(direct.clockSeconds(), bcast.clockSeconds());
}

TEST(Mesh, AllBroadcastReachesEveryCpe) {
  // Fig.8c: composed row + column broadcast from CPE (2,3).
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  mesh.run([&](CpeServices& cpe) {
    if (cpe.rid() == 2 && cpe.cid() == 3) cpe.spmPtr(0)[0] = 77.0;
    AllBroadcastArgs args;
    args.srcRid = 2;
    args.srcCid = 3;
    args.srcSpmOffsetBytes = 0;
    args.dstSpmOffsetBytes = 4096;
    args.bytes = 8;
    rmaAllBroadcast(cpe, args);
    EXPECT_EQ(cpe.spmPtr(4096)[0], 77.0)
        << "CPE (" << cpe.rid() << "," << cpe.cid() << ")";
  });
}

TEST(Mesh, SpmOutOfBoundsThrows) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/true);
  EXPECT_THROW(mesh.run([&](CpeServices& cpe) {
    (void)cpe.spmPtr(config.spmBytes);  // one past the end
  }),
               ProtocolError);
}

TEST(Mesh, ErrorInOneCpeDoesNotDeadlockBarrier) {
  ArchConfig config;
  MeshSimulator mesh(config, /*functional=*/false);
  EXPECT_THROW(mesh.run([&](CpeServices& cpe) {
    if (cpe.rid() == 0 && cpe.cid() == 0)
      throw ProtocolError("injected failure");
    cpe.sync();  // everyone else parks at the barrier
  }),
               ProtocolError);
}

TEST(Estimator, DmaEngineSerialisesMessages) {
  ArchConfig config;
  SymmetricCpeServices cpe(config);
  DmaRequest a;
  a.array = "A";
  a.tileRows = 64;
  a.tileCols = 32;
  a.slot = "a";
  DmaRequest b = a;
  b.slot = "b";
  cpe.dmaIssue(a);
  cpe.dmaIssue(b);
  cpe.waitSlot("a", false, true);
  const double afterA = cpe.clockSeconds();
  cpe.waitSlot("b", false, true);
  const double afterB = cpe.clockSeconds();
  // B starts only when A's transfer finishes on the engine.
  EXPECT_GT(afterB, afterA + 16384 / config.dmaShareBytesPerSec() * 0.9);
}

TEST(Estimator, ComputeRatesOrdering) {
  ArchConfig config;
  SymmetricCpeServices cpe(config);
  const double flops = 2.0 * 64 * 64 * 32;
  cpe.computeTime(flops, ComputeRate::kAsmKernel);
  const double asmTime = cpe.clockSeconds();
  SymmetricCpeServices naive(config);
  naive.computeTime(flops, ComputeRate::kNaive);
  EXPECT_GT(naive.clockSeconds(), 10.0 * asmTime);
}

}  // namespace
}  // namespace sw::sunway
