/* Stub of the Sunway athread host-side header, sufficient to compile the
 * generated MPE code with a host C compiler.  athread_spawn is a macro in
 * the real header too (it prefixes the slave symbol). */
#pragma once

void athread_init(void);
void athread_join(void);

#define athread_spawn(fn, args) slave_##fn(args)
