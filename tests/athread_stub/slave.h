/* Stub of the Sunway athread slave-side header, sufficient to compile the
 * generated CPE code with a host C compiler.  The real header ships with
 * swgcc; only the declarations the code generator emits are stubbed. */
#pragma once

#define __thread_local /* SPM storage class: plain static storage here */

/* Mesh coordinates of the executing CPE. */
extern long _ROW;
extern long _COL;

/* Non-blocking DMA (§4). */
void dma_iget(void *dst, void *src, long size, long len, long strip,
              volatile int *reply);
void dma_iput(void *dst, void *src, long size, long len, long strip,
              volatile int *reply);
void dma_wait_value(volatile int *reply, int value);

/* Non-blocking RMA broadcasts (§5). */
void rma_row_ibcast(void *dst, void *src, long size, volatile int *replys,
                    volatile int *replyr);
void rma_col_ibcast(void *dst, void *src, long size, volatile int *replys,
                    volatile int *replyr);
void rma_wait_value(volatile int *reply, int value);

/* Mesh synchronisation. */
void athread_ssync_array(void);

/* libm subset used by generated element-wise code. */
double nearbyint(double x);
