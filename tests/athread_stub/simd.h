/* Stub of the Sunway SIMD intrinsics header (-msimd); the generated code
 * only needs it to exist — vectorisation lives inside the vendor assembly
 * micro-kernel. */
#pragma once
