// Micro-kernel tests: the register-blocked "assembly" routine must agree
// bit-for-bit with the naive nest and the reference oracle across tile
// shapes (including the ragged edges smaller fused configurations hit),
// and the element-wise tile ops must match their mathematical definitions.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "kernel/microkernel.h"
#include "kernel/reference.h"

namespace sw::kernel {
namespace {

std::vector<double> randomTile(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

struct TileShape {
  std::int64_t m, n, k;
};

class MicroKernelShapes : public ::testing::TestWithParam<TileShape> {};

TEST_P(MicroKernelShapes, AsmEqualsNaive) {
  const auto [m, n, k] = GetParam();
  std::vector<double> a = randomTile(m * k, 1);
  std::vector<double> b = randomTile(k * n, 2);
  std::vector<double> c1 = randomTile(m * n, 3);
  std::vector<double> c2 = c1;
  dgemmMicroKernel(c1.data(), a.data(), b.data(), m, n, k);
  dgemmNaiveKernel(c2.data(), a.data(), b.data(), m, n, k);
  EXPECT_EQ(maxAbsDiff(c1.data(), c2.data(), m * n), 0.0)
      << m << "x" << n << "x" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MicroKernelShapes,
    ::testing::Values(TileShape{64, 64, 32},   // the vendor contract
                      TileShape{64, 64, 1},    // degenerate depth
                      TileShape{4, 8, 32},     // exactly one register block
                      TileShape{5, 9, 7},      // ragged everything
                      TileShape{1, 1, 32},     // scalar output
                      TileShape{3, 64, 32},    // ragged rows only
                      TileShape{64, 5, 32},    // ragged cols only
                      TileShape{16, 16, 16}),
    [](const ::testing::TestParamInfo<TileShape>& info) {
      const auto& s = info.param;
      return std::to_string(s.m) + "x" + std::to_string(s.n) + "x" +
             std::to_string(s.k);
    });

TEST(MicroKernel, AccumulatesIntoC) {
  // C must be accumulated, not overwritten.
  std::vector<double> a(64 * 32, 1.0);
  std::vector<double> b(32 * 64, 1.0);
  std::vector<double> c(64 * 64, 5.0);
  dgemmMicroKernel(c.data(), a.data(), b.data(), 64, 64, 32);
  for (double v : c) EXPECT_EQ(v, 5.0 + 32.0);
}

TEST(MicroKernel, ZeroDepthIsIdentity) {
  std::vector<double> a, b;
  std::vector<double> c(16, 2.5);
  dgemmMicroKernel(c.data(), a.data(), b.data(), 4, 4, 0);
  for (double v : c) EXPECT_EQ(v, 2.5);
}

TEST(Reference, BlockedAccumulationMatchesMicroKernelChain) {
  // Reference with kBlock = 32 must equal repeated micro-kernel calls over
  // k slices — the exact structure the generated code executes.
  const std::int64_t m = 64, n = 64, k = 128;
  std::vector<double> a = randomTile(m * k, 11);
  std::vector<double> b = randomTile(k * n, 12);
  std::vector<double> c = randomTile(m * n, 13);
  std::vector<double> expected = c;

  // Chain of 4 micro-kernel calls over packed slices.
  for (std::int64_t kb = 0; kb < k; kb += 32) {
    std::vector<double> aSlice(static_cast<std::size_t>(m * 32));
    std::vector<double> bSlice(static_cast<std::size_t>(32 * n));
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t p = 0; p < 32; ++p)
        aSlice[static_cast<std::size_t>(i * 32 + p)] = a[i * k + kb + p];
    for (std::int64_t p = 0; p < 32; ++p)
      for (std::int64_t j = 0; j < n; ++j)
        bSlice[static_cast<std::size_t>(p * n + j)] = b[(kb + p) * n + j];
    dgemmMicroKernel(c.data(), aSlice.data(), bSlice.data(), m, n, 32);
  }
  referenceGemm(expected.data(), a.data(), b.data(), m, n, k, 1.0, 1.0);
  EXPECT_EQ(maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

TEST(Reference, AlphaBetaSemantics) {
  const std::int64_t m = 8, n = 8, k = 8;
  std::vector<double> a(m * k, 1.0);
  std::vector<double> b(k * n, 2.0);
  std::vector<double> c(m * n, 10.0);
  referenceGemm(c.data(), a.data(), b.data(), m, n, k, 0.5, 0.25);
  // 0.5 * (1*2*8) + 0.25 * 10 = 8 + 2.5.
  for (double v : c) EXPECT_DOUBLE_EQ(v, 10.5);
}

TEST(Reference, BetaZeroIgnoresInitialC) {
  const std::int64_t m = 4, n = 4, k = 4;
  std::vector<double> a(m * k, 1.0);
  std::vector<double> b(k * n, 1.0);
  std::vector<double> c(m * n, std::nan(""));
  // NaN * 0 is NaN, so DGEMM semantics with beta = 0 conventionally still
  // multiply; our reference follows the multiply convention (the generated
  // code does too), so seed with garbage-but-finite instead.
  std::fill(c.begin(), c.end(), 123.0);
  referenceGemm(c.data(), a.data(), b.data(), m, n, k, 1.0, 0.0);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(Elementwise, Quantize) {
  std::vector<double> tile{0.0, 0.03, 0.99, -0.51, 2.0};
  tileQuantize(tile.data(), static_cast<std::int64_t>(tile.size()));
  EXPECT_DOUBLE_EQ(tile[0], 0.0);
  EXPECT_DOUBLE_EQ(tile[1], 0.0625 * std::nearbyint(0.03 * 16.0) / 1.0);
  EXPECT_DOUBLE_EQ(tile[2], 1.0);
  EXPECT_DOUBLE_EQ(tile[3], -0.5);
  EXPECT_DOUBLE_EQ(tile[4], 2.0);
}

TEST(Elementwise, QuantizeIsIdempotent) {
  std::vector<double> tile = randomTile(256, 77);
  std::vector<double> once = tile;
  tileQuantize(once.data(), 256);
  std::vector<double> twice = once;
  tileQuantize(twice.data(), 256);
  EXPECT_EQ(maxAbsDiff(once.data(), twice.data(), 256), 0.0);
}

TEST(Elementwise, ReluAndScale) {
  std::vector<double> tile{-1.0, 0.0, 2.0};
  tileRelu(tile.data(), 3);
  EXPECT_EQ(tile[0], 0.0);
  EXPECT_EQ(tile[1], 0.0);
  EXPECT_EQ(tile[2], 2.0);
  tileScale(tile.data(), 3, -2.0);
  EXPECT_EQ(tile[2], -4.0);
}

}  // namespace
}  // namespace sw::kernel
