// Tests of the schedule search space and the two-stage search driver
// (src/tuning/) — the estimator-guided autotuner that replaced the fixed
// grid of the retired src/core/tuner.cc.  The migrated behaviors from
// tuner_multicluster_test.cc live here: the §3.1 agreement with the
// analytical model, SPM-overflow pruning, the structured infeasible-budget
// error, and the checked-accessor regression for empty searches.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "support/error.h"
#include "tuning/search_space.h"
#include "tuning/tuner.h"

namespace sw::tuning {
namespace {

// --- enumerator ---------------------------------------------------------

TEST(SearchSpace, AnalyticDefaultIsAlwaysFirst) {
  const core::CodegenOptions base;
  const std::vector<EnumeratedCandidate> space = enumerateCandidates(
      base, sunway::ArchConfig{}, core::GemmProblem{1024, 1024, 1024});
  ASSERT_FALSE(space.empty());
  EXPECT_EQ(space.front().candidate.tileM, base.tileM);
  EXPECT_EQ(space.front().candidate.tileN, base.tileN);
  EXPECT_EQ(space.front().candidate.tileK, base.tileK);
  EXPECT_EQ(space.front().candidate.stripFactor, base.stripFactor);
  EXPECT_TRUE(space.front().feasible);
}

TEST(SearchSpace, EveryPointAppearsExactlyOnce) {
  const std::vector<EnumeratedCandidate> space =
      enumerateCandidates(core::CodegenOptions{}, sunway::ArchConfig{},
                          core::GemmProblem{100, 100, 100});
  std::set<std::string> labels;
  for (const EnumeratedCandidate& e : space)
    EXPECT_TRUE(labels.insert(e.candidate.label()).second)
        << "duplicate candidate " << e.candidate.label();
}

TEST(SearchSpace, PrunesNonMeshStripFactorsWithTheParagraphReason) {
  // §3.2: the strip-mining factor must equal the mesh width; 4 and 16 are
  // enumerated so the report can show the constraint binding.
  const std::vector<EnumeratedCandidate> space =
      enumerateCandidates(core::CodegenOptions{}, sunway::ArchConfig{},
                          core::GemmProblem{1024, 1024, 1024});
  int badStrip = 0;
  for (const EnumeratedCandidate& e : space) {
    if (e.candidate.stripFactor == 8) continue;
    ++badStrip;
    EXPECT_FALSE(e.feasible) << e.candidate.label();
    EXPECT_NE(e.pruneReason.find("strip factor"), std::string::npos)
        << e.pruneReason;
    EXPECT_NE(e.pruneReason.find("§3.2"), std::string::npos) << e.pruneReason;
  }
  EXPECT_GT(badStrip, 0);
}

TEST(SearchSpace, PrunesSpmOverflowsNamingTheWorkingSet) {
  // Migrated from Tuner.FlagsSpmOverflows: big double-buffered tiles blow
  // the 256 KB SPM; the prune reason names both sides of the inequality.
  const std::vector<EnumeratedCandidate> space =
      enumerateCandidates(core::CodegenOptions{}, sunway::ArchConfig{},
                          core::GemmProblem{2048, 2048, 2048});
  int overflows = 0;
  for (const EnumeratedCandidate& e : space) {
    if (e.feasible || e.pruneReason.find("SPM") == std::string::npos)
      continue;
    ++overflows;
    EXPECT_NE(e.pruneReason.find("exceeds the SPM budget"), std::string::npos)
        << e.pruneReason;
    EXPECT_GT(e.spmBytesNeeded, sunway::ArchConfig{}.spmBytes)
        << e.candidate.label();
  }
  EXPECT_GT(overflows, 0);
}

TEST(SearchSpace, SpmFormulaMatchesTheCompiledProgram) {
  // The analytic working set must mirror the pipeline's SpmBufferDecl
  // construction exactly, or the enumerator would burn pipeline runs on
  // known-infeasible points (or prune feasible ones).
  for (std::int64_t tile : {32L, 64L}) {
    core::CodegenOptions options;
    options.tileM = options.tileN = tile;
    const core::CompiledKernel kernel =
        core::SwGemmCompiler().compile(options);
    EXPECT_EQ(spmBytesForOptions(options), kernel.program.spmBytesUsed())
        << "tile " << tile;
  }
}

TEST(SearchSpace, EdgeVariantsOnlyForNonDivisibleShapes) {
  const core::CodegenOptions base;
  // 1024 divides every power-of-two tile: the square power-of-two points
  // must not grow a redundant edge twin.
  for (const EnumeratedCandidate& e :
       enumerateCandidates(base, sunway::ArchConfig{},
                           core::GemmProblem{1024, 1024, 1024})) {
    if (e.candidate.edgeTiles) {
      EXPECT_FALSE(shapeDivisible(e.candidate.apply(base),
                                  sunway::ArchConfig{},
                                  core::GemmProblem{1024, 1024, 1024}))
          << e.candidate.label();
    }
  }
  // 100^3 divides no candidate tile, so edge variants must exist.
  int edges = 0;
  for (const EnumeratedCandidate& e :
       enumerateCandidates(base, sunway::ArchConfig{},
                           core::GemmProblem{100, 100, 100}))
    edges += e.candidate.edgeTiles ? 1 : 0;
  EXPECT_GT(edges, 0);
}

TEST(SearchSpace, NoDoubleBufferCandidatesWhenBaseForbidsRma) {
  core::CodegenOptions noRma;
  noRma.useRma = false;
  noRma.hideLatency = false;
  for (const EnumeratedCandidate& e :
       enumerateCandidates(noRma, sunway::ArchConfig{},
                           core::GemmProblem{1024, 1024, 1024})) {
    // (strip-factor pruning takes precedence, so only valid-strip points
    // carry the pipeline reason)
    if (e.candidate.bufferDepth == 2 && !e.feasible &&
        e.candidate.stripFactor == 8) {
      EXPECT_NE(e.pruneReason.find("double buffering"), std::string::npos)
          << e.pruneReason;
    }
    if (e.feasible) {
      EXPECT_EQ(e.candidate.bufferDepth, 1);
    }
  }
}

// --- search driver ------------------------------------------------------

/// Estimator-only search config: fast, and sufficient for ranking tests.
TunerConfig estimateOnly() {
  TunerConfig config;
  config.validateTopN = 0;
  return config;
}

TEST(ScheduleSearch, LandsOnTheAnalyticalChoiceAtPaperScale) {
  // Migrated from Tuner.LandsOnTheAnalyticalChoice (§3.1): at a square
  // paper-scale shape the asm contract dominates and the search must agree
  // with the analytical model's 64x64x32.
  const ScheduleSearchResult result =
      searchSchedules(core::CodegenOptions{}, sunway::ArchConfig{},
                      core::GemmProblem{1024, 1024, 1024}, estimateOnly());
  EXPECT_EQ(result.best().candidate.tileM, 64);
  EXPECT_EQ(result.best().candidate.tileN, 64);
  EXPECT_EQ(result.best().candidate.tileK, 32);
  EXPECT_EQ(result.best().candidate.bufferDepth, 2);
  EXPECT_FALSE(result.best().candidate.edgeTiles);
  EXPECT_TRUE(result.best().hasAsmKernel);
  EXPECT_GT(result.searchSeconds, 0.0);
  // The asm winner strictly dominates every other feasible candidate.
  for (const CandidateResult& c : result.candidates()) {
    if (!c.feasible || c.label() == result.best().label()) continue;
    EXPECT_LT(c.estimatedGflops, result.best().estimatedGflops) << c.label();
  }
}

TEST(ScheduleSearch, EdgeScheduleBeatsTheAnalyticDefaultOnOddShapes) {
  // The payoff the subsystem exists for: on shapes where padding waste
  // dominates, a smaller edge-tiled schedule must beat the paper's
  // analytic default.
  const ScheduleSearchResult result =
      searchSchedules(core::CodegenOptions{}, sunway::ArchConfig{},
                      core::GemmProblem{100, 100, 100}, estimateOnly());
  EXPECT_TRUE(result.best().candidate.edgeTiles);
  // candidates()[0] is the analytic default by construction.
  const CandidateResult& analytic = result.candidates().front();
  EXPECT_EQ(analytic.candidate.tileM, 64);
  EXPECT_GT(result.best().estimatedGflops, analytic.estimatedGflops);
}

TEST(ScheduleSearch, ValidationAttachesMeasuredMeshReports) {
  TunerConfig config;
  config.validateTopN = 2;
  const ScheduleSearchResult result =
      searchSchedules(core::CodegenOptions{}, sunway::ArchConfig{},
                      core::GemmProblem{100, 100, 100}, config);
  EXPECT_EQ(result.validatedCount(), 2);
  // 100^3 = 2 MFLOP fits the budget, so the mesh measurement decides.
  EXPECT_TRUE(result.validationAtFullShape);
  EXPECT_EQ(result.validationShape.m, 100);
  EXPECT_TRUE(result.best().validated);
  EXPECT_GT(result.best().measuredGflops, 0.0);
  for (const CandidateResult& c : result.candidates()) {
    if (!c.validated) continue;
    // The attached report is the mesh run's attribution: buckets sum to
    // ~100% and the roofline has a verdict.
    EXPECT_NEAR(c.report.attribution.sum(), 100.0, 0.5) << c.label();
    EXPECT_FALSE(c.report.roofline.verdict.empty()) << c.label();
  }
}

TEST(ScheduleSearch, PaperScaleShapesValidateAProxyShape) {
  TunerConfig config;
  config.validateTopN = 1;
  const ScheduleSearchResult result =
      searchSchedules(core::CodegenOptions{}, sunway::ArchConfig{},
                      core::GemmProblem{4096, 4096, 4096}, config);
  // 4096^3 = 137 GFLOP blows the 1 GFLOP validation budget: stage 2 runs
  // a halved proxy shape and the estimator ranking stands.
  EXPECT_FALSE(result.validationAtFullShape);
  EXPECT_LT(result.validationShape.m, 4096);
  EXPECT_GT(result.validationShape.m, 0);
  EXPECT_EQ(result.best().label(), "64x64x32/s8/d2/pad/mk4x8");
}

TEST(ScheduleSearch, DeterministicAcrossRuns) {
  // Stage 1 ranks with the logical-clock estimator, so two searches of the
  // same request must agree exactly (the property the tuning DB relies on).
  const core::GemmProblem problem{257, 63, 65};
  const ScheduleSearchResult first = searchSchedules(
      core::CodegenOptions{}, sunway::ArchConfig{}, problem, estimateOnly());
  const ScheduleSearchResult second = searchSchedules(
      core::CodegenOptions{}, sunway::ArchConfig{}, problem, estimateOnly());
  EXPECT_EQ(first.best().label(), second.best().label());
  EXPECT_DOUBLE_EQ(first.best().estimatedGflops,
                   second.best().estimatedGflops);
  EXPECT_EQ(first.candidates().size(), second.candidates().size());
}

TEST(ScheduleSearch, TinySpmRaisesStructuredError) {
  // Migrated from Tuner.TinySpmRaisesStructuredError: with a 4 KB SPM no
  // candidate fits even single-buffered; the search must raise a
  // structured InputError naming the budget instead of dying on an
  // internal invariant.
  sunway::ArchConfig arch;
  arch.spmBytes = 4 * 1024;
  try {
    (void)searchSchedules(core::CodegenOptions{}, arch,
                          core::GemmProblem{512, 512, 512}, estimateOnly());
    FAIL() << "expected InputError for an SPM too small for any candidate";
  } catch (const sw::InputError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("SPM budget of 4096 bytes"), std::string::npos) << msg;
  }
}

TEST(ScheduleSearch, EmptyResultNeverIndexesOutOfBounds) {
  // Regression for the retired TuneResult::bestIndex footgun: an empty or
  // all-infeasible search exposes no index to misuse — best() throws,
  // bestOrNull() is null, bestOptions() throws.
  const ScheduleSearchResult empty;
  EXPECT_FALSE(empty.hasBest());
  EXPECT_THROW((void)empty.best(), sw::InputError);
  EXPECT_EQ(empty.bestOrNull(), nullptr);
  EXPECT_THROW((void)empty.bestOptions(core::CodegenOptions{}),
               sw::InputError);

  std::vector<CandidateResult> infeasibleOnly(2);
  infeasibleOnly[0].note = "pruned";
  infeasibleOnly[1].note = "pruned";
  const ScheduleSearchResult noFeasible(std::move(infeasibleOnly));
  EXPECT_FALSE(noFeasible.hasBest());
  EXPECT_THROW((void)noFeasible.best(), sw::InputError);
  EXPECT_EQ(noFeasible.bestOrNull(), nullptr);
  EXPECT_EQ(noFeasible.feasibleCount(), 0);
}

TEST(ScheduleSearch, MeasurementDecidesOnlyWhenMarked) {
  // Two feasible candidates where the estimate and the measurement
  // disagree: the ctor must follow the measurement only when the search
  // says it ran at the full shape.
  std::vector<CandidateResult> candidates(2);
  candidates[0].feasible = true;
  candidates[0].estimatedGflops = 100.0;
  candidates[0].validated = true;
  candidates[0].measuredGflops = 10.0;
  candidates[1].feasible = true;
  candidates[1].estimatedGflops = 50.0;
  candidates[1].validated = true;
  candidates[1].measuredGflops = 20.0;

  const ScheduleSearchResult byEstimate(candidates);
  EXPECT_DOUBLE_EQ(byEstimate.best().estimatedGflops, 100.0);
  const ScheduleSearchResult byMeasurement(candidates,
                                           /*measurementDecides=*/true);
  EXPECT_DOUBLE_EQ(byMeasurement.best().measuredGflops, 20.0);
}

}  // namespace
}  // namespace sw::tuning
