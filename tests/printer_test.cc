// Golden tests over the generated athread C sources (§7/§8): the printed
// code must carry the protocol structure the paper describes — reply-reset
// before every non-blocking message, sender-guarded broadcasts, double-
// buffer phase indexing, the 64x64x32 micro-kernel invocation, and the
// separate MPE spawn wrapper.
#include <gtest/gtest.h>

#include "core/compiler.h"

namespace sw::core {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::size_t countOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(Printer, FullKernelStructure) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const std::string& cpe = kernel.cpeSource;

  // Nine SPM buffers (§6.3): C single, four double-buffered sets.
  EXPECT_TRUE(contains(cpe, "__thread_local double local_C[4096];"));
  EXPECT_TRUE(contains(cpe, "__thread_local double local_A_dma[2][2048];"));
  EXPECT_TRUE(contains(cpe, "__thread_local double local_B_dma[2][2048];"));
  EXPECT_TRUE(contains(cpe, "__thread_local double local_A_rma[2][2048];"));
  EXPECT_TRUE(contains(cpe, "__thread_local double local_B_rma[2][2048];"));

  // Mesh-tile loops and the peeled outer-k structure (no plain ko loop
  // from 0 to K/256; instead a steady-state loop to K/256 - 1).
  EXPECT_TRUE(contains(cpe, "for (long mt = 0; mt < M/512; ++mt)"));
  EXPECT_TRUE(contains(cpe, "for (long nt = 0; nt < N/512; ++nt)"));
  EXPECT_TRUE(contains(cpe, "for (long ko = 0; ko < K/256 - 1; ++ko)"));
  EXPECT_TRUE(contains(cpe, "const long ko = K/256 - 1;"));

  // DMA protocol: reply reset + dma_iget with the Eq.(1) source address
  // and the strip (Y - Y_tau) * sizeof(double).
  EXPECT_TRUE(contains(cpe, "reply_C_get = 0;"));
  EXPECT_TRUE(contains(
      cpe, "dma_iget(&local_C[0], &C[(64*Rid + 512*mt)*N + (64*Cid + "
           "512*nt)], 4096 * sizeof(double), 64 * sizeof(double), (N - 64) "
           "* sizeof(double), &reply_C_get);"));
  EXPECT_TRUE(contains(cpe, "dma_wait_value(&reply_C_get, 1);"));
  EXPECT_TRUE(contains(cpe, "dma_iput("));

  // RMA broadcasts guarded to one sender per row/column (§5).
  EXPECT_TRUE(contains(cpe, "if (Cid == (ki) % 8)"));
  EXPECT_TRUE(contains(cpe, "if (Rid == (ki + 1) % 8)"));
  EXPECT_TRUE(contains(cpe, "rma_row_ibcast("));
  EXPECT_TRUE(contains(cpe, "rma_col_ibcast("));
  EXPECT_TRUE(contains(cpe, "rma_wait_value(&rma_reply_A, 1);"));
  EXPECT_TRUE(contains(cpe, "athread_ssync_array();"));

  // Micro-kernel call with double-buffer phase selectors (§7.2).
  EXPECT_TRUE(contains(
      cpe, "dgemm_asm_64x64x32(&local_C[0], &local_A_rma[(ki) % 2][0], "
           "&local_B_rma[(ki) % 2][0]);"));
}

TEST(Printer, MpeWrapper) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const std::string& mpe = kernel.mpeSource;
  EXPECT_TRUE(contains(mpe, "#include <athread.h>"));
  EXPECT_TRUE(contains(mpe, "athread_init();"));
  EXPECT_TRUE(contains(mpe, "athread_spawn(swgemm_cpe, &args);"));
  EXPECT_TRUE(contains(mpe, "athread_join();"));
  EXPECT_TRUE(contains(mpe, "struct swgemm_args"));
}

TEST(Printer, NoAsmVariantCallsNaiveKernel) {
  SwGemmCompiler compiler;
  CodegenOptions options;
  options.useAsm = false;
  CompiledKernel kernel = compiler.compile(options);
  EXPECT_TRUE(contains(kernel.cpeSource, "dgemm_naive(&local"));
  // Only the extern declaration of the assembly routine remains; no call.
  EXPECT_FALSE(contains(kernel.cpeSource, "dgemm_asm_64x64x32(&local"));
}

TEST(Printer, NoRmaVariantHasNoBroadcasts) {
  SwGemmCompiler compiler;
  CodegenOptions options;
  options.useRma = false;
  options.hideLatency = false;
  CompiledKernel kernel = compiler.compile(options);
  EXPECT_FALSE(contains(kernel.cpeSource, "rma_"));
  EXPECT_TRUE(contains(kernel.cpeSource, "for (long kt = 0; kt < K/32"));
  // Single-buffered: three SPM buffers only.
  EXPECT_TRUE(contains(kernel.cpeSource, "local_A_dma[2048]"));
}

TEST(Printer, UnpipelinedVariantWaitsImmediately) {
  SwGemmCompiler compiler;
  CodegenOptions options;
  options.hideLatency = false;
  CompiledKernel kernel = compiler.compile(options);
  // A plain ko band survives (no peeled prologue/epilogue).
  EXPECT_TRUE(contains(kernel.cpeSource,
                       "for (long ko = 0; ko < K/256; ++ko)"));
  EXPECT_FALSE(contains(kernel.cpeSource, "const long ko ="));
}

TEST(Printer, BatchedKernelLoopsOverBatchInsideCpe) {
  SwGemmCompiler compiler;
  CodegenOptions options;
  options.batched = true;
  CompiledKernel kernel = compiler.compile(options);
  // Batch loop emitted inside the CPE program (§8.3: one mesh launch) and
  // batch-strided addresses.
  EXPECT_TRUE(contains(kernel.cpeSource, "for (long b = 0; b < BATCH; ++b)"));
  EXPECT_TRUE(contains(kernel.cpeSource, "((b)*M + "));
  // Exactly one spawn in the MPE wrapper.
  EXPECT_EQ(countOccurrences(kernel.mpeSource, "athread_spawn"), 1u);
}

TEST(Printer, FusionBodies) {
  SwGemmCompiler compiler;
  CodegenOptions prologue;
  prologue.fusion = FusionKind::kPrologueQuantize;
  CompiledKernel pk = compiler.compile(prologue);
  EXPECT_TRUE(contains(pk.cpeSource, "nearbyint("));

  CodegenOptions epilogue;
  epilogue.fusion = FusionKind::kEpilogueRelu;
  CompiledKernel ek = compiler.compile(epilogue);
  EXPECT_TRUE(contains(ek.cpeSource, "> 0.0 ?"));
}

TEST(Printer, ScheduleDumpsShowPipelineStages) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  // Fig.2b: identity band over (i, j, k).
  EXPECT_TRUE(contains(kernel.initialTreeDump, "DOMAIN"));
  EXPECT_TRUE(contains(kernel.initialTreeDump, "(coincident)"));
  // Fig.4/6: tiled + strip-mined + hardware-bound.
  EXPECT_TRUE(contains(kernel.tiledTreeDump, "Rid"));
  EXPECT_TRUE(contains(kernel.tiledTreeDump, "floor((k)/256)"));
  // Fig.11: extensions, peeling filters, micro-kernel mark.
  EXPECT_TRUE(contains(kernel.finalTreeDump, "EXTENSION"));
  EXPECT_TRUE(contains(kernel.finalTreeDump, "ko in [0, K/256 - 1)"));
  EXPECT_TRUE(contains(kernel.finalTreeDump, "MARK: \"microkernel\""));
}

}  // namespace
}  // namespace sw::core
