// Tests of the tile auto-tuner (validating the §3.1 analytical model) and
// the multi-cluster decomposition (the §9 future-work layer).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/multi_cluster.h"
#include "core/tuner.h"
#include "kernel/reference.h"

namespace sw::core {
namespace {

TEST(Tuner, LandsOnTheAnalyticalChoice) {
  // §3.1: the analytical model adopts the micro-kernel shape; the
  // exhaustive search must agree.
  TuneResult result = tuneTileSizes(CodegenOptions{}, sunway::ArchConfig{},
                                    GemmProblem{4096, 4096, 4096});
  EXPECT_EQ(result.best().label(), "64x64x32");
  EXPECT_TRUE(result.best().hasAsmKernel);
  EXPECT_EQ(result.candidates.size(), 12u);
  EXPECT_GT(result.searchSeconds, 0.0);
}

TEST(Tuner, FlagsSpmOverflows) {
  TuneResult result = tuneTileSizes(CodegenOptions{}, sunway::ArchConfig{},
                                    GemmProblem{2048, 2048, 2048});
  int infeasible = 0;
  for (const TuneCandidate& candidate : result.candidates) {
    if (!candidate.feasible) {
      ++infeasible;
      EXPECT_NE(candidate.note.find("SPM"), std::string::npos);
    } else {
      EXPECT_GT(candidate.gflops, 0.0);
    }
  }
  // 64x64x64, 128x128x32 and 128x128x64 overflow with double buffering.
  EXPECT_EQ(infeasible, 3);
}

TEST(Tuner, AsmContractDominatesEverythingElse) {
  TuneResult result = tuneTileSizes(CodegenOptions{}, sunway::ArchConfig{},
                                    GemmProblem{8192, 8192, 8192});
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const TuneCandidate& candidate = result.candidates[i];
    if (!candidate.feasible || i == result.bestIndex) continue;
    EXPECT_LT(candidate.gflops, result.best().gflops) << candidate.label();
  }
}

TEST(Tuner, TinySpmRaisesStructuredError) {
  // With a 4 KB SPM no candidate fits even single-buffered; the search
  // must raise a structured InputError naming the budget instead of dying
  // on an internal invariant.
  sunway::ArchConfig arch;
  arch.spmBytes = 4 * 1024;
  try {
    tuneTileSizes(CodegenOptions{}, arch, GemmProblem{512, 512, 512});
    FAIL() << "expected InputError for an SPM too small for any candidate";
  } catch (const sw::InputError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("SPM budget of 4096 bytes"), std::string::npos) << msg;
  }
}

TEST(Tuner, BestOnEmptyResultThrowsInsteadOfIndexing) {
  TuneResult empty;
  EXPECT_THROW((void)empty.best(), sw::InputError);
  TuneResult infeasibleOnly;
  infeasibleOnly.candidates.push_back(TuneCandidate{});
  EXPECT_THROW((void)infeasibleOnly.best(), sw::InputError);
}

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

TEST(MultiCluster, FunctionalMatchesSingleReference) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  MultiClusterConfig config;
  config.clusters = 3;

  const std::int64_t m = 600, n = 256, k = 128;
  std::vector<double> a = randomMatrix(m * k, 1);
  std::vector<double> b = randomMatrix(k * n, 2);
  std::vector<double> c = randomMatrix(m * n, 3);
  std::vector<double> expected = c;

  GemmProblem problem{m, n, k, 1, 2.0, 0.5};
  MultiClusterOutcome outcome = runMultiClusterFunctional(
      kernel, compiler.arch(), config, problem, a, b, c);
  EXPECT_EQ(outcome.clustersUsed, 3);

  kernel::referenceGemm(expected.data(), a.data(), b.data(), m, n, k, 2.0,
                        0.5);
  EXPECT_EQ(kernel::maxAbsDiff(c.data(), expected.data(), m * n), 0.0);
}

TEST(MultiCluster, ScalingImprovesUntilCommBound) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const GemmProblem problem{12288, 4096, 4096};
  double previous = 0.0;
  for (int clusters : {1, 2, 3, 6}) {
    MultiClusterConfig config;
    config.clusters = clusters;
    MultiClusterOutcome outcome =
        estimateMultiCluster(kernel, compiler.arch(), config, problem);
    EXPECT_GT(outcome.gflops, previous) << clusters;
    previous = outcome.gflops;
  }
}

TEST(MultiCluster, SingleClusterMatchesPlainEstimateModuloComm) {
  SwGemmCompiler compiler;
  CompiledKernel kernel = compiler.compile(CodegenOptions{});
  const GemmProblem problem{4096, 4096, 4096};
  MultiClusterConfig config;
  config.clusters = 1;
  MultiClusterOutcome outcome =
      estimateMultiCluster(kernel, compiler.arch(), config, problem);
  const double plain =
      estimateGemm(kernel, compiler.arch(), problem).seconds;
  EXPECT_DOUBLE_EQ(outcome.computeSeconds, plain);
  EXPECT_GT(outcome.communicationSeconds, 0.0);
}

TEST(MultiCluster, RejectsUnsupportedKernels) {
  SwGemmCompiler compiler;
  CodegenOptions batched;
  batched.batched = true;
  CompiledKernel kernel = compiler.compile(batched);
  EXPECT_THROW(estimateMultiCluster(kernel, compiler.arch(),
                                    MultiClusterConfig{},
                                    GemmProblem{512, 512, 256}),
               sw::InternalError);
}

}  // namespace
}  // namespace sw::core
