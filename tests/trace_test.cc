// Tests of the Chrome trace-event tracer: JSON well-formedness (checked
// with a minimal recursive-descent parser), compile-stage span coverage
// and nesting, escaping of hostile strings, and the per-CPE lanes emitted
// by a functional mesh run.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "json_checker_test_util.h"
#include "support/trace.h"

namespace sw::trace {
namespace {

using testutil::JsonChecker;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().enable();
  }
  void TearDown() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

core::CompiledKernel compileDefault() {
  core::SwGemmCompiler compiler;
  return compiler.compile(core::CodegenOptions{});
}

TEST_F(TraceTest, CompileEmitsWellFormedJson) {
  compileDefault();
  const std::string json = Tracer::global().toJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST_F(TraceTest, HostileStringsAreEscaped) {
  TraceEvent event;
  event.name = "quote\" back\\slash \n tab\t ctrl\x01 end";
  event.category = "compile";
  event.args.push_back(arg("k\"ey", "va\\lue\nnewline"));
  Tracer::global().completeEvent(std::move(event));
  const std::string json = Tracer::global().toJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
}

TEST_F(TraceTest, CompileStageSpansPresentAndNested) {
  compileDefault();
  const std::vector<TraceEvent> events = Tracer::global().snapshot();

  std::set<std::string> stages;
  for (const TraceEvent& e : events)
    if (e.phase == 'X' && e.category == "compile") stages.insert(e.name);

  // The acceptance bar is >= 6 named compile-stage spans.
  const std::vector<std::string> expected = {
      "compile",          "pipeline.dependence",  "pipeline.tile",
      "pipeline.compute_mark", "pipeline.dma_insertion",
      "pipeline.rma_broadcast", "pipeline.latency_hiding",
      "pipeline.spm_layout", "pipeline.codegen", "codegen.print"};
  int found = 0;
  for (const std::string& name : expected) found += stages.count(name);
  EXPECT_GE(found, 6) << "only " << found << " stage spans present";

  // Nesting: every pipeline.* span lies inside the enclosing "compile"
  // span on the same lane.
  const auto compileSpan =
      std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
        return e.phase == 'X' && e.name == "compile";
      });
  ASSERT_NE(compileSpan, events.end());
  const double begin = compileSpan->tsMicros;
  const double end = begin + compileSpan->durMicros;
  for (const TraceEvent& e : events) {
    if (e.phase != 'X' || e.name.rfind("pipeline.", 0) != 0) continue;
    EXPECT_GE(e.tsMicros, begin) << e.name;
    EXPECT_LE(e.tsMicros + e.durMicros, end) << e.name;
    EXPECT_EQ(e.tid, compileSpan->tid) << e.name;
  }
}

TEST_F(TraceTest, FunctionalMeshRunEmitsPerCpeLanes) {
  core::CompiledKernel kernel = compileDefault();
  sunway::ArchConfig arch;
  const std::int64_t m = 64, n = 64, k = 64;
  std::vector<double> a(m * k, 1.0), b(k * n, 1.0), c(m * n, 0.0);
  core::GemmProblem problem{m, n, k, 1};
  core::runGemmFunctional(kernel, arch, problem, a, b, c);

  const std::vector<TraceEvent> events = Tracer::global().snapshot();
  std::set<std::int64_t> computeLanes;
  std::set<std::string> categories;
  for (const TraceEvent& e : events) {
    if (e.pid != kMeshPid) continue;
    if (e.phase == 'M' && e.name == "thread_name" &&
        e.tid < kDmaLaneOffset)
      computeLanes.insert(e.tid);
    if (e.phase == 'X') categories.insert(e.category);
  }
  EXPECT_EQ(computeLanes.size(),
            static_cast<std::size_t>(arch.meshSize()));
  EXPECT_TRUE(categories.count("compute"));
  EXPECT_TRUE(categories.count("dma"));
  EXPECT_TRUE(categories.count("sync"));

  // The whole trace must still be parseable.
  const std::string json = Tracer::global().toJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid());
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::global().disable();
  Tracer::global().clear();
  compileDefault();
  EXPECT_EQ(Tracer::global().eventCount(), 0u);
}

}  // namespace
}  // namespace sw::trace
