// Failure paths of the native JIT engine (src/jit/native_engine.*): every
// environmental problem — unwritable cache directory, missing compiler,
// corrupt on-disk artifact — must surface as TransientError (or degrade
// to the plan engine through runGemmFunctional), never as a wrong answer,
// and concurrent first-use of one digest must compile exactly once.
// Semantic equivalence of the engine itself is pinned by
// plan_equivalence_test.cc; this file covers the unhappy paths.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "jit/native_engine.h"
#include "support/error.h"
#include "support/metrics.h"

namespace sw::core {
namespace {

namespace fs = std::filesystem;

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

/// Fresh per-test scratch directory under the gtest temp root.
std::string scratchDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("swk_jit_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A zero-work NativeRunInput matching `program`'s arity: every parameter
/// is 0, so all generated loops run zero iterations.  Used by tests whose
/// failure fires before (or without) real execution.
jit::NativeRunInput zeroInputFor(const codegen::KernelProgram& program,
                                 std::vector<std::vector<double>>& storage) {
  jit::NativeRunInput input;
  input.params.assign(program.params.size(), 0);
  storage.assign(program.arrays.size(), std::vector<double>(64, 0.0));
  for (std::vector<double>& array : storage)
    input.arrays.push_back(array.data());
  return input;
}

/// Scoped override of one environment variable, restored on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_.c_str(), saved_.c_str(), /*overwrite=*/1);
    else
      ::unsetenv(name_.c_str());
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

TEST(JitEngine, UnwritableCacheDirIsTransient) {
  jit::resetNativeEngineForTest();
  SwGemmCompiler compiler;
  const CompiledKernel kernel = compiler.compile(CodegenOptions{});

  // Point the cache root at a regular file: create_directories and the
  // source write both fail, which must surface as TransientError.
  const std::string root = scratchDir("unwritable");
  const std::string blocker = root + "/not-a-directory";
  { std::ofstream out(blocker); out << "x"; }
  jit::NativeEngineConfig config;
  config.cacheDir = blocker;

  std::vector<std::vector<double>> storage;
  const jit::NativeRunInput input = zeroInputFor(kernel.program, storage);
  EXPECT_THROW(jit::runNative(kernel.program, config, input),
               TransientError);
}

TEST(JitEngine, MissingCompilerIsTransient) {
  jit::resetNativeEngineForTest();
  SwGemmCompiler compiler;
  const CompiledKernel kernel = compiler.compile(CodegenOptions{});

  jit::NativeEngineConfig config;
  config.cacheDir = scratchDir("nocc");
  config.compiler = "/nonexistent/swcodegen-test-cc";
  EXPECT_EQ(jit::resolveNativeCompiler(config),
            "/nonexistent/swcodegen-test-cc");

  std::vector<std::vector<double>> storage;
  const jit::NativeRunInput input = zeroInputFor(kernel.program, storage);
  EXPECT_THROW(jit::runNative(kernel.program, config, input),
               TransientError);
}

TEST(JitEngine, WrongArityIsInputErrorNotTransient) {
  jit::resetNativeEngineForTest();
  SwGemmCompiler compiler;
  const CompiledKernel kernel = compiler.compile(CodegenOptions{});
  jit::NativeEngineConfig config;
  config.cacheDir = scratchDir("arity");
  // Caller bugs must not masquerade as environmental degradation.
  EXPECT_THROW(jit::runNative(kernel.program, config, jit::NativeRunInput{}),
               InputError);
}

TEST(JitEngine, MissingCompilerFallsBackToPlanEngine) {
  jit::resetNativeEngineForTest();
  // $SWCODEGEN_CC beats $CC and "cc", so this poisons compiler resolution
  // for the whole runGemmFunctional dispatch.
  ScopedEnv cc("SWCODEGEN_CC", "/nonexistent/swcodegen-test-cc");
  SwGemmCompiler compiler;
  const CompiledKernel kernel = compiler.compile(CodegenOptions{});

  const std::int64_t m = 128, n = 128, k = 128;
  std::vector<double> a = randomMatrix(m * k, 21);
  std::vector<double> b = randomMatrix(k * n, 22);
  std::vector<double> cInit = randomMatrix(m * n, 23);
  GemmProblem problem{m, n, k, 1};

  FunctionalRunConfig nativeConfig;
  nativeConfig.engine = rt::ExecEngine::kNative;
  nativeConfig.jitCacheDir = scratchDir("fallback");
  const double fallbacksBefore =
      metrics::MetricsRegistry::global().get("jit.fallback");

  std::vector<double> cNative = cInit;
  const rt::RunOutcome outcome = runGemmFunctional(
      kernel, compiler.arch(), problem, a, b, cNative, nativeConfig);
  EXPECT_EQ(outcome.engine, "plan");
  EXPECT_FALSE(outcome.jitCacheHit);
  EXPECT_EQ(metrics::MetricsRegistry::global().get("jit.fallback"),
            fallbacksBefore + 1.0);

  // The degraded run still computes the right answer.
  std::vector<double> cPlan = cInit;
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, cPlan,
                    FunctionalRunConfig{});
  EXPECT_EQ(std::memcmp(cNative.data(), cPlan.data(),
                        cNative.size() * sizeof(double)),
            0);
}

TEST(JitEngine, CorruptObjectIsEvictedAndRecompiled) {
  jit::resetNativeEngineForTest();
  SwGemmCompiler compiler;
  const CompiledKernel kernel = compiler.compile(CodegenOptions{});

  const std::int64_t m = 128, n = 128, k = 128;
  std::vector<double> a = randomMatrix(m * k, 31);
  std::vector<double> b = randomMatrix(k * n, 32);
  std::vector<double> cInit = randomMatrix(m * n, 33);
  GemmProblem problem{m, n, k, 1};

  FunctionalRunConfig runConfig;
  runConfig.engine = rt::ExecEngine::kNative;
  runConfig.jitCacheDir = scratchDir("corrupt");

  // Plant a garbage artifact at the exact digest path *before* anything
  // was ever loaded from it — the picture a fresh process sees after a
  // torn write or disk corruption.  (Corrupting the file after a load
  // would be masked in-process: dlopen caches by pathname and the handle
  // is never dlclosed.)
  jit::NativeEngineConfig engineConfig;
  engineConfig.cacheDir = runConfig.jitCacheDir;
  const std::string soPath = jit::nativeObjectPath(
      engineConfig, jit::nativeObjectDigest(kernel.program));
  fs::create_directories(fs::path(soPath).parent_path());
  {
    std::ofstream out(soPath, std::ios::binary);
    out << "this is not an ELF shared object";
  }
  ASSERT_LT(fs::file_size(soPath), 1024u);

  // The engine must evict the bad object, recompile (reported as a cache
  // miss), and produce the same bits as the plan engine.
  std::vector<double> cNative = cInit;
  const rt::RunOutcome outcome = runGemmFunctional(
      kernel, compiler.arch(), problem, a, b, cNative, runConfig);
  ASSERT_EQ(outcome.engine, "native");
  EXPECT_FALSE(outcome.jitCacheHit);

  std::vector<double> cPlan = cInit;
  runGemmFunctional(kernel, compiler.arch(), problem, a, b, cPlan,
                    FunctionalRunConfig{});
  EXPECT_EQ(std::memcmp(cNative.data(), cPlan.data(),
                        cNative.size() * sizeof(double)),
            0);
  // The replacement artifact is a real shared object again.
  ASSERT_TRUE(fs::exists(soPath));
  EXPECT_GT(fs::file_size(soPath), 1024u);
}

TEST(JitEngine, ConcurrentFirstUseCompilesExactlyOnce) {
  jit::resetNativeEngineForTest();
  SwGemmCompiler compiler;
  const CompiledKernel kernel = compiler.compile(CodegenOptions{});

  jit::NativeEngineConfig config;
  config.cacheDir = scratchDir("singleflight");

  constexpr int kThreads = 8;
  std::vector<jit::NativeRunResult> results(kThreads);
  std::vector<std::vector<std::vector<double>>> storages(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const jit::NativeRunInput input =
          zeroInputFor(kernel.program, storages[t]);
      results[t] = jit::runNative(kernel.program, config, input);
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Single-flight: exactly one thread paid the compiler invocation; the
  // rest were served the already-loaded object for the same digest.
  int compiles = 0;
  for (const jit::NativeRunResult& r : results) {
    if (!r.cacheHit) ++compiles;
    EXPECT_EQ(r.soPath, results[0].soPath);
  }
  EXPECT_EQ(compiles, 1);
}

}  // namespace
}  // namespace sw::core
