// Soak-harness tests: the synthetic catalog is fully compileable, the
// report's accounting is conserved (offered = completed + failed + shed),
// quota pressure sheds with typed causes, served queue waits respect the
// deadline, chaos verification runs under an active fault plan with zero
// wrong answers, and the JSON report is well-formed and schema-stable.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "json_checker_test_util.h"
#include "service/soak.h"
#include "support/error.h"

namespace sw::service {
namespace {

SoakConfig smallConfig() {
  SoakConfig config;
  config.requests = 600;
  config.clientThreads = 2;
  config.clientWindow = 16;
  config.catalogSize = 6;
  config.deadlineSeconds = 30.0;  // generous: served work must meet it
  config.admission.maxQueueDepth = 32;
  config.admission.workers = 2;
  return config;
}

TEST(SoakTest, CatalogVariantsAllCompile) {
  KernelService service;
  for (const core::CodegenOptions& options : soakCatalog(96))
    EXPECT_NO_THROW(service.compile(options));
  EXPECT_EQ(soakCatalog(0).size(), 1u);    // clamped up
  EXPECT_EQ(soakCatalog(200).size(), 96u); // clamped down
}

TEST(SoakTest, AccountingConservedAndDeadlineBoundsQueueWait) {
  KernelService service;
  const SoakReport report = runSoak(service, smallConfig());

  EXPECT_EQ(report.offered, 600);
  EXPECT_EQ(report.offered,
            report.completed + report.failed + report.shed.total());
  EXPECT_GT(report.completed, 0);
  EXPECT_EQ(report.failed, 0);  // the catalog is fully feasible
  EXPECT_EQ(report.wrongAnswers, 0);
  // Served requests never waited past the deadline — anything older is a
  // deadline miss, not a completion.
  EXPECT_LE(report.queueWaitP99Ms, report.deadlineMs);
  EXPECT_GT(report.hitRate, 0.0);  // 600 requests over 6 distinct kernels
  EXPECT_GT(report.throughputPerSecond, 0.0);
}

TEST(SoakTest, QuotaPressureShedsWithTypedCause) {
  KernelService service;
  SoakConfig config = smallConfig();
  // Two tokens per tenant and effectively no refill: nearly everything
  // offered must be shed by the quota gate, and nothing silently.
  config.admission.defaultQuota = TenantQuota{2.0, 0.001};
  for (const std::string& tenant : config.tenants)
    config.admission.tenantQuotas[tenant] = TenantQuota{2.0, 0.001};

  const SoakReport report = runSoak(service, config);
  EXPECT_GT(report.shed.quota, 0);
  EXPECT_GT(report.shedRate, 0.5);
  EXPECT_EQ(report.offered,
            report.completed + report.failed + report.shed.total());
}

TEST(SoakTest, ChaosRunVerifiesWithZeroWrongAnswers) {
  KernelService service;
  SoakConfig config = smallConfig();
  config.verifyEvery = 50;
  config.chaosPlan = std::make_shared<sunway::FaultPlan>(
      sunway::FaultPlan::parse("dma-drop:rate=0.05;dma-corrupt:rate=0.02"));

  const SoakReport report = runSoak(service, config);
  EXPECT_GT(report.verifiedRuns, 0);
  EXPECT_EQ(report.wrongAnswers, 0);
  EXPECT_FALSE(report.faultPlan.empty());
}

TEST(SoakTest, JsonReportIsWellFormedAndCarriesAdmissionGauges) {
  KernelService service;
  const SoakReport report = runSoak(service, smallConfig());
  const std::string json = report.toJson();

  testutil::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"offered\": 600"), std::string::npos);
  EXPECT_NE(json.find("\"wrong_answers\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_p99\""), std::string::npos);
  // The service.admission.* gauges ride along verbatim.
  EXPECT_NE(json.find("service.admission.completed"), std::string::npos);

  const std::string text = report.toText();
  EXPECT_NE(text.find("shed breakdown"), std::string::npos);
  EXPECT_NE(text.find("queue wait"), std::string::npos);
}

}  // namespace
}  // namespace sw::service
