// Schedule-tree construction and transformation tests, mirroring the
// paper's Fig.2b (initial tree), Fig.4a (tiling), Fig.6 (strip-mining) and
// the batch isolation of Fig.3.
#include <gtest/gtest.h>

#include "poly/set.h"
#include "schedule/transforms.h"
#include "schedule/tree.h"
#include "support/error.h"

namespace sw::sched {
namespace {

poly::AffineExpr d(const std::string& name) {
  return poly::AffineExpr::dim(name);
}

poly::IntegerSet gemmDomain() {
  poly::IntegerSet domain("S1", {"i", "j", "k"});
  domain.addRange("i", d("M"));
  domain.addRange("j", d("N"));
  domain.addRange("k", d("K"));
  return domain;
}

ScheduleTree initialGemmTree() {
  return buildInitialTree({gemmDomain()}, {true, true, false}, true);
}

TEST(Extent, EvaluateParamDiv) {
  Extent e = Extent::paramDiv("K", 256);
  EXPECT_EQ(e.evaluate({{"K", 1024}}), 4);
  EXPECT_EQ(e.plus(-1).evaluate({{"K", 1024}}), 3);
  // Non-multiples round up: the last tile is a runtime-clamped edge tile.
  EXPECT_EQ(e.evaluate({{"K", 1000}}), 4);
  EXPECT_EQ(e.evaluate({{"K", 1025}}), 5);
  EXPECT_THROW((void)e.evaluate({{"M", 512}}), sw::InternalError);  // unbound
  EXPECT_THROW((void)e.evaluate({{"K", 0}}), sw::InternalError);  // nonpositive
}

TEST(Extent, ToString) {
  EXPECT_EQ(Extent::constant(8).toString(), "8");
  EXPECT_EQ(Extent::paramDiv("M", 512).toString(), "M/512");
  EXPECT_EQ(Extent::paramDiv("K", 256).plus(-1).toString(), "K/256 - 1");
}

TEST(ScheduleTree, InitialTreeShape) {
  ScheduleTree tree = initialGemmTree();
  tree.validate();
  const DomainNode& root = tree.root();
  ASSERT_EQ(root.domains.size(), 1u);
  const auto& band = nodeCast<BandNode>(root.onlyChild());
  ASSERT_EQ(band.members.size(), 3u);
  EXPECT_TRUE(band.permutable);
  EXPECT_TRUE(band.members[0].coincident);
  EXPECT_TRUE(band.members[1].coincident);
  EXPECT_FALSE(band.members[2].coincident);
  EXPECT_EQ(band.members[0].extent.toString(), "M");
  EXPECT_EQ(band.onlyChild().kind(), NodeKind::kLeaf);
}

TEST(ScheduleTree, TileProducesOuterAndInnerBands) {
  ScheduleTree tree = initialGemmTree();
  auto& band = nodeCast<BandNode>(tree.root().onlyChild());
  tileBand(tree, band, {64, 64, 32}, {"io", "jo", "ko"}, {"ii", "ji", "ki"});
  tree.validate();

  const auto& outer = nodeCast<BandNode>(tree.root().onlyChild());
  ASSERT_EQ(outer.members.size(), 3u);
  EXPECT_EQ(outer.members[0].var, "io");
  EXPECT_EQ(outer.members[0].extent.toString(), "M/64");
  EXPECT_EQ(outer.members[2].extent.toString(), "K/32");

  const auto& inner = nodeCast<BandNode>(outer.onlyChild());
  ASSERT_EQ(inner.members.size(), 3u);
  EXPECT_EQ(inner.members[0].extent.toString(), "64");
  EXPECT_EQ(inner.members[2].extent.toString(), "32");

  // Schedule expressions: outer = floor(i/64), inner = i - 64*floor(i/64).
  std::map<std::string, std::int64_t> env{{"i", 200}, {"j", 0}, {"k", 0}};
  EXPECT_EQ(outer.members[0].exprs[0].second.evaluate(env), 3);
  EXPECT_EQ(inner.members[0].exprs[0].second.evaluate(env), 200 - 192);
}

TEST(ScheduleTree, StripMineComposesFloorDivs) {
  ScheduleTree tree = initialGemmTree();
  auto& band = nodeCast<BandNode>(tree.root().onlyChild());
  tileBand(tree, band, {64, 64, 32}, {"io", "jo", "ko"}, {"ii", "ji", "ki"});
  auto& outer = nodeCast<BandNode>(tree.root().onlyChild());
  auto& koBand = splitBand(tree, outer, 2);  // isolate ko
  stripMineMember(tree, koBand, 0, 8, "koo", "koi");
  tree.validate();

  // koBand is now the outer strip: koo with extent K/256.
  EXPECT_EQ(koBand.members[0].var, "koo");
  EXPECT_EQ(koBand.members[0].extent.toString(), "K/256");
  const auto& residue = nodeCast<BandNode>(koBand.onlyChild());
  EXPECT_EQ(residue.members[0].var, "koi");
  EXPECT_EQ(residue.members[0].extent.toString(), "8");

  // Fig.6 semantics: koo = floor(k/256), koi = floor(k/32) - 8*floor(k/256).
  for (std::int64_t k : {0, 31, 32, 255, 256, 300, 511}) {
    std::map<std::string, std::int64_t> env{{"i", 0}, {"j", 0}, {"k", k}};
    EXPECT_EQ(koBand.members[0].exprs[0].second.evaluate(env), k / 256);
    EXPECT_EQ(residue.members[0].exprs[0].second.evaluate(env),
              k / 32 - 8 * (k / 256));
  }
}

TEST(ScheduleTree, SplitBandIsolatesPrefix) {
  ScheduleTree tree = initialGemmTree();
  auto& band = nodeCast<BandNode>(tree.root().onlyChild());
  BandNode& inner = splitBand(tree, band, 2);
  tree.validate();
  EXPECT_EQ(band.members.size(), 2u);
  ASSERT_EQ(inner.members.size(), 1u);
  EXPECT_EQ(inner.members[0].var, "k");
}

TEST(ScheduleTree, BindMemberRecordsMeshCoordinate) {
  ScheduleTree tree = initialGemmTree();
  auto& band = nodeCast<BandNode>(tree.root().onlyChild());
  bindMember(band, 0, "Rid");
  EXPECT_EQ(band.members[0].binding, "Rid");
}

TEST(ScheduleTree, ValidateRejectsDuplicateVariables) {
  ScheduleTree tree = initialGemmTree();
  auto& band = nodeCast<BandNode>(tree.root().onlyChild());
  auto extra = std::make_unique<BandNode>();
  BandMember m;
  m.var = "i";  // clashes with the live loop variable
  m.exprs.emplace_back("S1", d("i"));
  m.extent = Extent::constant(4);
  extra->members.push_back(std::move(m));
  extra->permutable = true;
  wrapOnlyChild(band, std::move(extra));
  EXPECT_THROW(tree.validate(), sw::InternalError);
}

TEST(ScheduleTree, ValidateRejectsUnknownCopyReference) {
  ScheduleTree tree = initialGemmTree();
  auto& band = nodeCast<BandNode>(tree.root().onlyChild());
  auto seq = std::make_unique<SequenceNode>();
  seq->appendChild(makeFilter({copyElement("getA")}, std::nullopt,
                              std::make_unique<LeafNode>()));
  wrapOnlyChild(band, std::move(seq));
  EXPECT_THROW(tree.validate(), sw::InternalError);
}

TEST(ScheduleTree, BatchIsolationMatchesFig3) {
  poly::IntegerSet domain("S1", {"b", "i", "j", "k"});
  domain.addRange("b", d("B"));
  domain.addRange("i", d("M"));
  domain.addRange("j", d("N"));
  domain.addRange("k", d("K"));
  ScheduleTree tree =
      buildInitialTree({domain}, {true, true, true, false}, true);
  auto& band = nodeCast<BandNode>(tree.root().onlyChild());
  BandNode& gemmBand = splitBand(tree, band, 1);
  tree.validate();
  EXPECT_EQ(band.members.size(), 1u);
  EXPECT_EQ(band.members[0].var, "b");
  EXPECT_EQ(gemmBand.members.size(), 3u);
}

TEST(ScheduleTree, CloneIsDeepAndPrintable) {
  ScheduleTree tree = initialGemmTree();
  auto& band = nodeCast<BandNode>(tree.root().onlyChild());
  tileBand(tree, band, {64, 64, 32}, {"io", "jo", "ko"}, {"ii", "ji", "ki"});
  ScheduleTree copy = tree.clone();
  copy.validate();
  EXPECT_EQ(copy.toString(), tree.toString());
  EXPECT_NE(copy.toString().find("BAND"), std::string::npos);
  EXPECT_NE(copy.toString().find("DOMAIN"), std::string::npos);
}

}  // namespace
}  // namespace sw::sched
