#!/usr/bin/env python3
"""Append a benchmark run's PerfReport JSONs to the performance trajectory.

Usage:
  perf_trajectory.py --reports DIR \
      [--trajectory bench/baselines/BENCH_trajectory.json] \
      [--label TEXT] [--dry-run]

DIR holds the per-case report files the bench binaries write when
$SWBENCH_REPORT_DIR is set (one `<case>.json` PerfReport each, see
src/support/perf_report.h).  The trajectory file is an append-only list of
entries, one per recorded run:

  {"schema_version": 1,
   "entries": [{"label": ..., "cases": {case: {summary fields}}}, ...]}

Simulated GFLOPS are host-invariant (they come from the timing model, not
the wall clock), so consecutive entries are directly comparable; the
script prints a delta table against the previous entry and exits 0.  A
report with an unexpected schema_version is fatal (exit 2): the trajectory
must never silently mix schemas.

Exit code 0 = appended (or --dry-run), 2 = bad invocation/input.
"""

import argparse
import json
import os
import sys

TRAJECTORY_SCHEMA_VERSION = 1
REPORT_SCHEMA_VERSION = 1


def fail(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_reports(reports_dir):
    if not os.path.isdir(reports_dir):
        fail(f"--reports '{reports_dir}' is not a directory")
    cases = {}
    for name in sorted(os.listdir(reports_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(reports_dir, name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            fail(f"cannot read report '{path}': {err}")
        version = report.get("schema_version")
        if version != REPORT_SCHEMA_VERSION:
            fail(f"report '{path}' has schema_version {version}, "
                 f"expected {REPORT_SCHEMA_VERSION}")
        roofline = report.get("roofline", {})
        attribution = report.get("attribution", {})
        cases[name[: -len(".json")]] = {
            "kernel": report.get("kernel"),
            "engine": report.get("engine"),
            "gflops": roofline.get("achieved_gflops"),
            "ceiling_utilization": roofline.get("ceiling_utilization"),
            "verdict": roofline.get("verdict"),
            "compute_pct": attribution.get("compute_pct"),
            "exposed_dma_pct": attribution.get("exposed_dma_pct"),
            "bottleneck": report.get("bottleneck", {}).get("name"),
        }
    if not cases:
        fail(f"no *.json reports found in '{reports_dir}'")
    return cases


def load_trajectory(path):
    if not os.path.exists(path):
        return {"schema_version": TRAJECTORY_SCHEMA_VERSION, "entries": []}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            trajectory = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read trajectory '{path}': {err}")
    if trajectory.get("schema_version") != TRAJECTORY_SCHEMA_VERSION:
        fail(f"trajectory '{path}' has schema_version "
             f"{trajectory.get('schema_version')}, expected "
             f"{TRAJECTORY_SCHEMA_VERSION}")
    if not isinstance(trajectory.get("entries"), list):
        fail(f"trajectory '{path}' has no 'entries' list")
    return trajectory


def print_delta_table(previous, cases):
    print(f"{'case':<44} {'prev':>10} {'now':>10} {'delta':>8}  verdict")
    for case in sorted(cases):
        now = cases[case]
        gflops = now.get("gflops")
        prev = (previous or {}).get("cases", {}).get(case)
        if prev is None or not prev.get("gflops"):
            prev_text, delta_text = "-", "new"
        else:
            prev_gflops = prev["gflops"]
            prev_text = f"{prev_gflops:.2f}"
            delta_text = f"{100.0 * (gflops / prev_gflops - 1.0):+.1f}%"
        print(f"{case:<44} {prev_text:>10} {gflops:>10.2f} {delta_text:>8}"
              f"  {now.get('verdict')}")
    for case in sorted((previous or {}).get("cases", {})):
        if case not in cases:
            print(f"note: case '{case}' present in the previous entry but "
                  f"not in this run")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--reports", required=True,
                        help="directory of per-case PerfReport JSONs")
    parser.add_argument("--trajectory",
                        default="bench/baselines/BENCH_trajectory.json")
    parser.add_argument("--label", default="",
                        help="entry label (e.g. a git revision); defaults "
                             "to $GITHUB_SHA or 'local'")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the delta table without appending")
    args = parser.parse_args()

    cases = load_reports(args.reports)
    trajectory = load_trajectory(args.trajectory)
    previous = trajectory["entries"][-1] if trajectory["entries"] else None

    label = args.label or os.environ.get("GITHUB_SHA", "")[:12] or "local"
    entry = {"label": label, "cases": cases}

    print(f"trajectory '{args.trajectory}': "
          f"{len(trajectory['entries'])} entries, appending "
          f"'{label}' with {len(cases)} cases\n")
    print_delta_table(previous, cases)

    if args.dry_run:
        print("\n--dry-run: trajectory not modified")
        return 0

    trajectory["entries"].append(entry)
    parent = os.path.dirname(args.trajectory)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp_path = args.trajectory + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp_path, args.trajectory)
    print(f"\nappended entry '{label}' "
          f"({len(trajectory['entries'])} total)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
