#!/usr/bin/env python3
"""Compare a google-benchmark JSON result against a committed baseline.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_foo.json \
      --current out.json [--threshold 0.30] [--key cpu_time]

A benchmark regresses when its time exceeds baseline * (1 + threshold).
Benchmarks present in only one file are reported but never fatal (new
benchmarks land before their baseline is refreshed).  Absolute times move
with the host, so the guard also checks a host-invariant ratio: every
"<prefix>_plan" benchmark must stay faster than its "<prefix>_tree_walk"
sibling by at least --min-speedup (default 3.0 for timing benchmarks,
disabled when no sibling pair exists).

With --reports DIR and --trajectory FILE the guard additionally checks the
per-case PerfReport GFLOPS (written by the bench binaries under
$SWBENCH_REPORT_DIR) against the latest trajectory entry: simulated GFLOPS
come from the timing model, not the wall clock, so they are host-invariant
and guarded with the tight --gflops-threshold (default 2%% drop).  Cases
without a trajectory entry are reported but never fatal.

Exit code 0 = clean, 1 = regression, 2 = bad invocation/input.
"""

import argparse
import json
import os
import sys


def load_benchmarks(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read benchmark JSON '{path}': {err}",
              file=sys.stderr)
        sys.exit(2)
    benchmarks = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        benchmarks[bench["name"]] = bench
    if not benchmarks:
        print(f"error: no benchmarks found in '{path}'", file=sys.stderr)
        sys.exit(2)
    return benchmarks


def sibling_pairs(benchmarks):
    """(prefix, plan_name, tree_name) for every *_plan / *_tree_walk pair."""
    pairs = []
    for name in benchmarks:
        if name.endswith("_plan"):
            prefix = name[: -len("_plan")]
            tree = prefix + "_tree_walk"
            if tree in benchmarks:
                pairs.append((prefix, name, tree))
    return pairs


def check_report_gflops(reports_dir, trajectory_path, threshold, failures):
    """Guard per-case PerfReport GFLOPS against the latest trajectory entry."""
    try:
        with open(trajectory_path, "r", encoding="utf-8") as fh:
            trajectory = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read trajectory '{trajectory_path}': {err}",
              file=sys.stderr)
        sys.exit(2)
    entries = trajectory.get("entries", [])
    if not entries:
        print("note: trajectory has no entries yet; report GFLOPS "
              "unguarded this run")
        return
    baseline_cases = entries[-1].get("cases", {})

    if not os.path.isdir(reports_dir):
        print(f"error: --reports '{reports_dir}' is not a directory",
              file=sys.stderr)
        sys.exit(2)
    seen = 0
    for name in sorted(os.listdir(reports_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(reports_dir, name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: cannot read report '{path}': {err}",
                  file=sys.stderr)
            sys.exit(2)
        case = name[: -len(".json")]
        gflops = report.get("roofline", {}).get("achieved_gflops")
        if gflops is None:
            failures.append(f"report '{path}' has no "
                            f"roofline.achieved_gflops")
            continue
        seen += 1
        base = baseline_cases.get(case, {}).get("gflops")
        if not base:
            print(f"     note  {case}: no trajectory baseline (new case)")
            continue
        floor = base * (1.0 - threshold)
        status = "ok" if gflops >= floor else "REGRESSED"
        print(f"{status:>9}  {case}: {gflops:.2f} GFLOPS vs trajectory "
              f"{base:.2f} ({gflops / base:.3f}x)")
        if gflops < floor:
            failures.append(
                f"'{case}' report GFLOPS regressed: {gflops:.2f} < "
                f"{floor:.2f} (trajectory {base:.2f}, threshold "
                f"{threshold:.0%})")
    if seen == 0:
        failures.append(f"no *.json reports found in '{reports_dir}'")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional slowdown vs baseline")
    parser.add_argument("--key", default="cpu_time",
                        help="which time field to compare")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required plan-vs-tree-walk ratio for "
                             "'timing' benchmark pairs")
    parser.add_argument("--reports",
                        help="directory of per-case PerfReport JSONs to "
                             "guard against the trajectory")
    parser.add_argument("--trajectory",
                        default="bench/baselines/BENCH_trajectory.json",
                        help="trajectory file whose latest entry is the "
                             "report-GFLOPS baseline")
    parser.add_argument("--gflops-threshold", type=float, default=0.02,
                        help="allowed fractional report-GFLOPS drop vs "
                             "the trajectory (simulated, host-invariant)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    failures = []
    for name, bench in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"note: '{name}' has no baseline entry (new benchmark)")
            continue
        if base.get("time_unit") != bench.get("time_unit"):
            failures.append(f"'{name}': time_unit changed "
                            f"({base.get('time_unit')} -> "
                            f"{bench.get('time_unit')})")
            continue
        base_t = float(base[args.key])
        cur_t = float(bench[args.key])
        limit = base_t * (1.0 + args.threshold)
        ratio = cur_t / base_t if base_t > 0 else float("inf")
        status = "ok" if cur_t <= limit else "REGRESSED"
        print(f"{status:>9}  {name}: {cur_t:.1f} vs baseline {base_t:.1f} "
              f"{bench.get('time_unit')} ({ratio:.2f}x)")
        if cur_t > limit:
            failures.append(
                f"'{name}' regressed: {cur_t:.1f} > {limit:.1f} "
                f"{bench.get('time_unit')} "
                f"(baseline {base_t:.1f}, threshold {args.threshold:.0%})")
    for name in sorted(set(baseline) - set(current)):
        print(f"note: baseline benchmark '{name}' missing from current run")

    for prefix, plan_name, tree_name in sibling_pairs(current):
        plan_t = float(current[plan_name][args.key])
        tree_t = float(current[tree_name][args.key])
        if plan_t <= 0:
            continue
        speedup = tree_t / plan_t
        # Only the pure-interpreter (timing) pair carries the hard floor;
        # functional runs are dominated by the simulated machine and
        # thread-scheduling noise, so their ratio is informational.
        if "timing" not in prefix:
            print(f"     info  {prefix}: plan speedup {speedup:.2f}x")
            continue
        required = args.min_speedup
        status = "ok" if speedup >= required else "REGRESSED"
        print(f"{status:>9}  {prefix}: plan speedup {speedup:.2f}x "
              f"(required >= {required:.2f}x)")
        if speedup < required:
            failures.append(
                f"'{prefix}': plan is only {speedup:.2f}x faster than the "
                f"tree-walk (required {required:.2f}x)")

    if args.reports:
        print()
        check_report_gflops(args.reports, args.trajectory,
                            args.gflops_threshold, failures)

    if failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
