#!/usr/bin/env python3
"""Compare a google-benchmark JSON result against a committed baseline.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_foo.json \
      --current out.json [--threshold 0.30] [--key cpu_time]

A benchmark regresses when its time exceeds baseline * (1 + threshold).
Benchmarks present in only one file are reported but never fatal (new
benchmarks land before their baseline is refreshed).  Absolute times move
with the host, so the guard also checks a host-invariant ratio: every
"<prefix>_plan" benchmark must stay faster than its "<prefix>_tree_walk"
sibling by at least --min-speedup (default 3.0 for timing benchmarks,
disabled when no sibling pair exists).

Exit code 0 = clean, 1 = regression, 2 = bad invocation/input.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read benchmark JSON '{path}': {err}",
              file=sys.stderr)
        sys.exit(2)
    benchmarks = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        benchmarks[bench["name"]] = bench
    if not benchmarks:
        print(f"error: no benchmarks found in '{path}'", file=sys.stderr)
        sys.exit(2)
    return benchmarks


def sibling_pairs(benchmarks):
    """(prefix, plan_name, tree_name) for every *_plan / *_tree_walk pair."""
    pairs = []
    for name in benchmarks:
        if name.endswith("_plan"):
            prefix = name[: -len("_plan")]
            tree = prefix + "_tree_walk"
            if tree in benchmarks:
                pairs.append((prefix, name, tree))
    return pairs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional slowdown vs baseline")
    parser.add_argument("--key", default="cpu_time",
                        help="which time field to compare")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required plan-vs-tree-walk ratio for "
                             "'timing' benchmark pairs")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    failures = []
    for name, bench in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"note: '{name}' has no baseline entry (new benchmark)")
            continue
        if base.get("time_unit") != bench.get("time_unit"):
            failures.append(f"'{name}': time_unit changed "
                            f"({base.get('time_unit')} -> "
                            f"{bench.get('time_unit')})")
            continue
        base_t = float(base[args.key])
        cur_t = float(bench[args.key])
        limit = base_t * (1.0 + args.threshold)
        ratio = cur_t / base_t if base_t > 0 else float("inf")
        status = "ok" if cur_t <= limit else "REGRESSED"
        print(f"{status:>9}  {name}: {cur_t:.1f} vs baseline {base_t:.1f} "
              f"{bench.get('time_unit')} ({ratio:.2f}x)")
        if cur_t > limit:
            failures.append(
                f"'{name}' regressed: {cur_t:.1f} > {limit:.1f} "
                f"{bench.get('time_unit')} "
                f"(baseline {base_t:.1f}, threshold {args.threshold:.0%})")
    for name in sorted(set(baseline) - set(current)):
        print(f"note: baseline benchmark '{name}' missing from current run")

    for prefix, plan_name, tree_name in sibling_pairs(current):
        plan_t = float(current[plan_name][args.key])
        tree_t = float(current[tree_name][args.key])
        if plan_t <= 0:
            continue
        speedup = tree_t / plan_t
        # Only the pure-interpreter (timing) pair carries the hard floor;
        # functional runs are dominated by the simulated machine and
        # thread-scheduling noise, so their ratio is informational.
        if "timing" not in prefix:
            print(f"     info  {prefix}: plan speedup {speedup:.2f}x")
            continue
        required = args.min_speedup
        status = "ok" if speedup >= required else "REGRESSED"
        print(f"{status:>9}  {prefix}: plan speedup {speedup:.2f}x "
              f"(required >= {required:.2f}x)")
        if speedup < required:
            failures.append(
                f"'{prefix}': plan is only {speedup:.2f}x faster than the "
                f"tree-walk (required {required:.2f}x)")

    if failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
