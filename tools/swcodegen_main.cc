// swcodegen — the command-line compiler (§8): reads a naive C GEMM, emits
// the athread CPE/MPE sources, and optionally dumps schedule trees,
// estimates performance on the SW26010Pro model, profiles the compile
// pipeline and run, or records a Perfetto-viewable trace.
//
//   swcodegen input.c [-o PREFIX] [--no-use-asm] [--no-rma] [--no-hiding]
//             [--dump-schedule] [--estimate M N K [B]]
//             [--profile] [--trace OUT.json]
//
// --batch is detected automatically from the input program (a 4-deep nest
// over 3D arrays), as are the fusion patterns; the explicit flags mirror
// the paper's tool for the ablation variants.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace {

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: swcodegen INPUT.c [options]\n"
      "\n"
      "Compile a naive C GEMM into SW26010Pro athread sources.\n"
      "\n"
      "options:\n"
      "  -o PREFIX          output file prefix (default: kernel name)\n"
      "  --no-use-asm       emit the naive loop nest instead of the\n"
      "                     vendor micro-kernel (Fig.13 '+asm' ablation)\n"
      "  --no-rma           re-fetch tiles with DMA instead of RMA\n"
      "                     broadcasts; implicitly disables latency hiding\n"
      "  --no-hiding        disable the two-level software pipeline (§6)\n"
      "  --dump-schedule    print the schedule tree after each stage\n"
      "  --estimate M N K [B]\n"
      "                     report modelled GFLOPS for the given shape\n"
      "  --profile          print a per-stage compile breakdown and the\n"
      "                     derived run metrics (overlap%%, stall%%, SPM)\n"
      "  --trace OUT.json   write a Chrome trace-event file (open in\n"
      "                     https://ui.perfetto.dev): compile spans plus\n"
      "                     per-CPE simulated-clock timelines\n"
      "  -h, --help         show this help and exit\n"
      "\n"
      "environment:\n"
      "  SWCODEGEN_LOG      debug|info|warn — structured log threshold\n"
      "  SWCODEGEN_TRACE    path — enable tracing and write there on exit\n");
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw sw::InputError("cannot open input file '" + path + "'");
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

void writeFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) throw sw::InputError("cannot write output file '" + path + "'");
  out << body;
}

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

/// Smallest shape the kernel accepts unpadded: one mesh tile deep enough
/// for a full pipeline round-trip.  Used to light up the 64 per-CPE trace
/// lanes and the mesh-run metrics without a paper-scale functional run.
sw::rt::RunOutcome runFunctionalSmoke(const sw::core::CompiledKernel& kernel,
                                      const sw::sunway::ArchConfig& arch) {
  const sw::core::PaddedShape shape =
      sw::core::padShape(1, 1, 1, kernel.options, arch);
  const std::int64_t batch = kernel.options.batched ? 2 : 1;
  const std::int64_t m = shape.m, n = shape.n,
                     k = 2 * shape.k;  // two outer-k iterations
  std::vector<double> a = randomMatrix(batch * m * k, 1);
  std::vector<double> b = randomMatrix(batch * k * n, 2);
  std::vector<double> c = randomMatrix(batch * m * n, 3);
  sw::core::GemmProblem problem{m, n, k, batch};
  return sw::core::runGemmFunctional(kernel, arch, problem, a, b, c);
}

void printStageBreakdown() {
  // Aggregate compile-category spans by name, in first-seen order.
  std::vector<std::string> order;
  std::map<std::string, double> totalMicros;
  std::map<std::string, int> count;
  for (const sw::trace::TraceEvent& e :
       sw::trace::Tracer::global().snapshot()) {
    if (e.phase != 'X' || e.category != "compile") continue;
    if (totalMicros.find(e.name) == totalMicros.end()) order.push_back(e.name);
    totalMicros[e.name] += e.durMicros;
    ++count[e.name];
  }
  std::printf("compile pipeline breakdown (host wall-clock):\n");
  std::printf("  %-28s %10s %6s\n", "stage", "ms", "calls");
  for (const std::string& name : order)
    std::printf("  %-28s %10.3f %6d\n", name.c_str(),
                totalMicros[name] / 1e3, count[name]);
  std::printf("\n");
}

void printRunMetrics(const char* title, const sw::rt::RunOutcome& outcome,
                     const sw::sunway::ArchConfig& arch) {
  const sw::metrics::DerivedRunMetrics& m = outcome.metrics;
  std::printf("%s:\n", title);
  std::printf("  %-24s %12.3f ms\n", "simulated time", outcome.seconds * 1e3);
  std::printf("  %-24s %12.2f\n", "model GFLOPS", outcome.gflops);
  std::printf("  %-24s %12.1f %%   (DMA+RMA busy time hidden "
              "behind compute)\n",
              "overlap", m.overlapPct);
  std::printf("  %-24s %12.1f %%   (CPE active time lost to reply "
              "waits)\n",
              "stall", m.stallPct);
  std::printf("  %-24s %12.1f %%\n", "compute occupancy", m.computePct);
  std::printf("  %-24s %9.1f KB   of %.0f KB budget (%.1f%%)\n",
              "SPM high-water",
              static_cast<double>(m.spmHighWaterBytes) / 1024.0,
              static_cast<double>(m.spmBudgetBytes) / 1024.0,
              m.spmBudgetPct);
  for (const auto& [set, bytes] : m.perBufferBytes)
    std::printf("    buffer %-18s %9.1f KB\n", set.c_str(),
                static_cast<double>(bytes) / 1024.0);
  std::printf("  %-24s %12lld\n", "DMA messages",
              static_cast<long long>(outcome.counters.dmaMessages));
  std::printf("  %-24s %12lld\n", "RMA broadcasts",
              static_cast<long long>(outcome.counters.rmaBroadcastsSent));
  std::printf("  %-24s %12lld\n", "mesh barriers",
              static_cast<long long>(outcome.counters.syncs));
  (void)arch;
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string inputPath;
  std::string outputPrefix;
  std::string tracePath;
  bool dumpSchedule = false;
  bool profile = false;
  bool noRma = false;
  bool noHiding = false;
  std::vector<long> estimate;
  sw::core::CodegenOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "-o") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "swcodegen: -o requires an output prefix\n");
        return 2;
      }
      outputPrefix = argv[++i];
    } else if (arg == "--no-use-asm") {
      options.useAsm = false;
    } else if (arg == "--no-rma") {
      noRma = true;
      options.useRma = false;
      options.hideLatency = false;
    } else if (arg == "--no-hiding") {
      noHiding = true;
      options.hideLatency = false;
    } else if (arg == "--dump-schedule") {
      dumpSchedule = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "swcodegen: --trace requires an output path\n");
        return 2;
      }
      tracePath = argv[++i];
    } else if (arg == "--estimate") {
      while (i + 1 < argc && argv[i + 1][0] != '-')
        estimate.push_back(std::strtol(argv[++i], nullptr, 10));
      if (estimate.size() != 3 && estimate.size() != 4) {
        usage(stderr);
        return 2;
      }
    } else if (!arg.empty() && arg[0] != '-' && inputPath.empty()) {
      inputPath = arg;
    } else {
      std::fprintf(stderr, "swcodegen: unknown argument '%s'\n\n",
                   arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (inputPath.empty()) {
    usage(stderr);
    return 2;
  }

  // The CLI surfaces warnings by default; an explicit $SWCODEGEN_LOG still
  // selects the threshold (including a quieter one).
  if (!sw::logLevelFromEnv()) sw::setLogLevel(sw::LogLevel::kWarn);
  if (noRma && !noHiding)
    SW_WARN("cli",
            "event=implicit_option msg=\"--no-rma implicitly disables "
            "memory latency hiding: the two-level pipeline of §6 requires "
            "the RMA decomposition (pass --no-hiding to silence this)\"");

  if (!tracePath.empty() || profile) sw::trace::Tracer::global().enable();

  try {
    sw::core::SwGemmCompiler compiler;
    sw::core::CompiledKernel kernel =
        compiler.compileSource(readFile(inputPath), options);

    if (dumpSchedule) {
      std::printf("--- initial schedule tree ---\n%s\n",
                  kernel.initialTreeDump.c_str());
      std::printf("--- after compute decomposition ---\n%s\n",
                  kernel.tiledTreeDump.c_str());
      std::printf("--- final schedule tree ---\n%s\n",
                  kernel.finalTreeDump.c_str());
    }

    const std::string prefix =
        outputPrefix.empty() ? kernel.program.name : outputPrefix;
    writeFile(prefix + "_cpe.c", kernel.cpeSource);
    writeFile(prefix + "_mpe.c", kernel.mpeSource);
    std::printf("wrote %s_cpe.c and %s_mpe.c (kernel '%s'%s%s)\n",
                prefix.c_str(), prefix.c_str(), kernel.program.name.c_str(),
                kernel.options.batched ? ", batched" : "",
                kernel.options.fusion != sw::core::FusionKind::kNone
                    ? ", fused"
                    : "");

    sw::rt::RunOutcome estimated;
    if (!estimate.empty()) {
      sw::core::GemmProblem problem{estimate[0], estimate[1], estimate[2],
                                    estimate.size() == 4 ? estimate[3] : 1};
      estimated = sw::core::estimateGemm(kernel, compiler.arch(), problem);
      std::printf("estimated %ldx%ldx%ld%s: %.2f GFLOPS (%.1f%% of model "
                  "peak), %.3f ms\n",
                  estimate[0], estimate[1], estimate[2],
                  estimate.size() == 4
                      ? (" batch " + std::to_string(estimate[3])).c_str()
                      : "",
                  estimated.gflops,
                  100.0 * estimated.gflops /
                      (compiler.arch().peakFlops() / 1e9),
                  estimated.seconds * 1e3);
    }

    // A functional mesh run lights up the 64 per-CPE trace lanes and the
    // threaded-runtime metrics.
    sw::rt::RunOutcome smoke;
    const bool wantSmoke = !tracePath.empty() || profile;
    if (wantSmoke) smoke = runFunctionalSmoke(kernel, compiler.arch());

    if (profile) {
      std::printf("\n");
      printStageBreakdown();
      if (!estimate.empty())
        printRunMetrics("estimated run metrics (symmetric model)", estimated,
                        compiler.arch());
      if (wantSmoke)
        printRunMetrics("functional mesh smoke run (one mesh tile, 64 CPEs)",
                        smoke, compiler.arch());
      std::printf("metrics registry:\n");
      for (const auto& [name, value] :
           sw::metrics::MetricsRegistry::global().snapshot())
        std::printf("  %-44s %g\n", name.c_str(), value);
      std::printf("\n");
    }

    if (tracePath.empty()) {
      // SWCODEGEN_TRACE=path enables collection library-wide; honour it as
      // the output location when --trace was not given.
      const char* env = std::getenv("SWCODEGEN_TRACE");
      if (env != nullptr && env[0] != '\0') tracePath = env;
    }
    if (!tracePath.empty()) {
      sw::trace::Tracer::global().writeFile(tracePath);
      std::printf("wrote trace to %s (%zu events; open in "
                  "https://ui.perfetto.dev)\n",
                  tracePath.c_str(),
                  sw::trace::Tracer::global().eventCount());
    }
  } catch (const sw::Error& e) {
    std::fprintf(stderr, "swcodegen: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
