// swcodegen — the command-line compiler (§8): reads a naive C GEMM, emits
// the athread CPE/MPE sources, and optionally dumps schedule trees,
// estimates performance on the SW26010Pro model, profiles the compile
// pipeline and run, or records a Perfetto-viewable trace.
//
//   swcodegen input.c [-o PREFIX] [--no-use-asm] [--no-rma] [--no-hiding]
//             [--dump-schedule] [--estimate M N K [B]]
//             [--profile] [--trace OUT.json] [--cache-dir DIR]
//   swcodegen --warm SHAPES | --serve-batch FILE  [--cache-dir DIR] [-j N]
//   swcodegen --tune M N K [B]  [--tuning-dir DIR] [--cache-dir DIR]
//
// --batch is detected automatically from the input program (a 4-deep nest
// over 3D arrays), as are the fusion patterns; the explicit flags mirror
// the paper's tool for the ablation variants.  With --cache-dir (or
// $SWCODEGEN_CACHE_DIR) compiles are served through the kernel service's
// persistent cache; --warm/--serve-batch compile many option variants
// concurrently on the service's thread pool.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "core/kernel_serdes.h"
#include "core/sharded_gemm.h"
#include "service/kernel_service.h"
#include "service/soak.h"
#include "sunway/fault.h"
#include "sunway/mesh.h"
#include "support/digest.h"
#include "support/error.h"
#include "support/histogram.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace {

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: swcodegen INPUT.c [options]\n"
      "\n"
      "Compile a naive C GEMM into SW26010Pro athread sources.\n"
      "\n"
      "options:\n"
      "  -o PREFIX          output file prefix (default: kernel name)\n"
      "  --no-use-asm       emit the naive loop nest instead of the\n"
      "                     vendor micro-kernel (Fig.13 '+asm' ablation)\n"
      "  --no-rma           re-fetch tiles with DMA instead of RMA\n"
      "                     broadcasts; implicitly disables latency hiding\n"
      "  --no-hiding        disable the two-level software pipeline (§6)\n"
      "  --dump-schedule    print the schedule tree after each stage\n"
      "  --estimate M N K [B]\n"
      "                     report modelled GFLOPS for the given shape\n"
      "  --pad-mode MODE    how arbitrary shapes meet the kernel's tile\n"
      "                     grid: 'edge' compiles edge-tile clamps and runs\n"
      "                     on unpadded arrays, 'padded' keeps the §8.1\n"
      "                     zero-padding convention, 'auto' (default)\n"
      "                     follows the kernel\n"
      "  --run M N K [B]    compile-and-run the shape functionally on the\n"
      "                     mesh simulator with random data; with edge\n"
      "                     tiles the result is verified bit-for-bit\n"
      "                     against the padded reference run\n"
      "  --engine ENGINE    execution engine for --run: 'plan' (default)\n"
      "                     interprets the lowered plan, 'tree' walks the\n"
      "                     schedule tree, 'native' JIT-compiles the kernel\n"
      "                     to a host shared object (prints a `jit:` cache\n"
      "                     verdict; environmental JIT failures degrade to\n"
      "                     the plan engine)\n"
      "  --groups N         shard --run/--estimate across N concurrent core\n"
      "                     groups (1..6; default 1).  --run verifies the\n"
      "                     sharded result bit-for-bit against the\n"
      "                     single-group reference; --estimate applies the\n"
      "                     shared-DDR contention derate and NoC hand-off\n"
      "                     costs; --tune widens the search space with\n"
      "                     N-group candidates\n"
      "  --profile          print a per-stage compile breakdown, the\n"
      "                     derived run metrics (overlap%%, stall%%, SPM),\n"
      "                     the grouped metrics-registry table and the\n"
      "                     latency-histogram percentiles\n"
      "  --report MODE [PATH]\n"
      "                     emit the run's performance report (time\n"
      "                     attribution, roofline position, top\n"
      "                     bottleneck).  MODE is text or json; PATH (must\n"
      "                     not end in .c) selects a file, default stdout.\n"
      "                     Uses the --run outcome when present, else the\n"
      "                     --estimate shape, else a 1024^3 estimate\n"
      "  --trace OUT.json   write a Chrome trace-event file (open in\n"
      "                     https://ui.perfetto.dev): compile spans plus\n"
      "                     per-CPE simulated-clock timelines\n"
      "  --cache-dir DIR    persistent kernel cache: repeated compiles of\n"
      "                     the same options+architecture are served from\n"
      "                     disk without re-running the pipeline\n"
      "  --tune M N K [B]   search the schedule space for the shape (two\n"
      "                     stages: estimator ranking, then measured mesh\n"
      "                     validation of the top candidates), print the\n"
      "                     winner and write its athread sources; no\n"
      "                     INPUT.c needed.  Repeat invocations are served\n"
      "                     from the tuning database without re-searching\n"
      "  --tuning-dir DIR   persistent tuning database for --tune (default:\n"
      "                     <cache-dir>/tune when --cache-dir is set)\n"
      "  --inject SPEC      run a chaos smoke: functional mesh run under a\n"
      "                     deterministic fault plan with retry and\n"
      "                     graceful degradation.  SPEC is ';'-separated\n"
      "                     faults kind[:cpe=N|*][:occ=N][:count=N|forever]\n"
      "                     [:seconds=X][:rate=P][:seed=N], kind one of\n"
      "                     dma-drop dma-corrupt dma-delay rma-drop\n"
      "                     rma-delay stall\n"
      "  --watchdog-ms N    mesh no-progress deadline in milliseconds\n"
      "                     (0 disables; default 5000 or\n"
      "                     $SWCODEGEN_WATCHDOG_MS)\n"
      "  --warm SHAPES      pre-compile a comma-separated list of tile\n"
      "                     shapes (e.g. 64x64x32,32x32x32) on the worker\n"
      "                     pool, then exit (no INPUT.c needed)\n"
      "  --serve-batch FILE compile every request in a manifest (one per\n"
      "                     line: tile=MxNxK strip=S batch no-asm no-rma\n"
      "                     no-hiding fuse=relu|quantize transA transB)\n"
      "                     concurrently and report per-request latency;\n"
      "                     malformed lines fail individually with their\n"
      "                     line number, the rest of the batch still runs\n"
      "  --soak N           replay N synthetic requests against the\n"
      "                     admission frontend (Zipfian kernel popularity,\n"
      "                     rotating tenants, bounded priority queue,\n"
      "                     deadlines, per-tenant quotas); --inject runs as\n"
      "                     chaos against periodically verified mesh runs,\n"
      "                     --report json [PATH] emits the soak report\n"
      "                     JSON, --profile appends the admission gauges;\n"
      "                     no INPUT.c needed.  Exits nonzero on any\n"
      "                     wrong-answer completion\n"
      "  --soak-quota RATE  per-tenant token-bucket quota for --soak\n"
      "                     (RATE tokens/s refill, burst = RATE); offered\n"
      "                     load above the rate is shed with a typed\n"
      "                     quota error\n"
      "  -j, --jobs N       worker threads for --warm/--serve-batch\n"
      "                     (default: hardware concurrency)\n"
      "  -h, --help         show this help and exit\n"
      "\n"
      "environment:\n"
      "  SWCODEGEN_LOG         debug|info|warn — structured log threshold\n"
      "  SWCODEGEN_TRACE       path — enable tracing and write there on exit\n"
      "  SWCODEGEN_CACHE_DIR   default for --cache-dir\n"
      "  SWCODEGEN_TUNING_DIR  default for --tuning-dir\n"
      "  SWCODEGEN_WATCHDOG_MS default for --watchdog-ms\n"
      "  SWCODEGEN_CC          host compiler for --engine native (then $CC,\n"
      "                        then 'cc')\n"
      "  SWCODEGEN_JIT_CACHE_DIR\n"
      "                        root of the native engine's .so cache\n"
      "                        (default: a per-user temp directory)\n");
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw sw::InputError("cannot open input file '" + path + "'");
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

void writeFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) throw sw::InputError("cannot write output file '" + path + "'");
  out << body;
}

std::vector<double> randomMatrix(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

/// --run: functional mesh run of an arbitrary shape with random data.
/// Edge-tile kernels self-verify against the padded reference path (same
/// kernel, zero-padded shadow arrays) and print a machine-greppable
/// `result=` verdict; returns nonzero only on a mismatch.
int runShapeSmoke(const sw::core::CompiledKernel& kernel,
                  const sw::sunway::ArchConfig& arch,
                  const std::vector<long>& shape,
                  sw::core::PadMode padMode,
                  sw::rt::ExecEngine engine, long groups,
                  sw::rt::RunOutcome* outcomeOut) {
  const std::int64_t m = shape[0], n = shape[1], k = shape[2];
  const std::int64_t batch = shape.size() == 4 ? shape[3] : 1;
  const bool tA = kernel.options.transposeA;
  const bool tB = kernel.options.transposeB;
  std::vector<double> a =
      randomMatrix(batch * (tA ? k * m : m * k), 11);
  std::vector<double> b =
      randomMatrix(batch * (tB ? n * k : k * n), 12);
  const std::vector<double> c0 = randomMatrix(batch * m * n, 13);
  sw::core::GemmProblem problem{m, n, k, batch};

  sw::core::FunctionalRunConfig runConfig;
  runConfig.padMode = padMode;
  runConfig.engine = engine;

  if (groups > 1) {
    // Multi-group mode: single-group reference first, then the sharded
    // run across `groups` concurrent meshes, verified bit-for-bit.
    std::vector<double> ref = c0;
    sw::core::runGemmFunctional(kernel, arch, problem, a, b, ref, runConfig);

    sw::core::ShardedConfig sharded;
    sharded.groups = static_cast<int>(groups);
    sharded.run = runConfig;
    std::vector<double> c = c0;
    const sw::core::ShardedOutcome outcome = sw::core::runShardedFunctional(
        kernel, arch, sharded, problem, a, b, c);
    std::printf("ran %lldx%lldx%lld batch %lld on %d core groups "
                "(%dx%d C blocks, %lld K chunks): %.2f GFLOPS modelled, "
                "%.3f ms simulated, DDR derate %.2f\n",
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k), static_cast<long long>(batch),
                outcome.groupsUsed, outcome.rowBlocks, outcome.colBlocks,
                static_cast<long long>(outcome.kChunks), outcome.gflops,
                outcome.seconds * 1e3, outcome.contentionDerate);
    if (outcomeOut != nullptr) {
      outcomeOut->seconds = outcome.seconds;
      outcomeOut->gflops = outcome.gflops;
      outcomeOut->engine = "sharded-mesh";
      outcomeOut->counters = outcome.counters;
      outcomeOut->report = outcome.report;
      outcomeOut->hostCopyBytes = outcome.hostCopyBytes;
    }
    if (std::memcmp(c.data(), ref.data(), c.size() * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "run: result=MISMATCH — %d-group sharded run diverged "
                   "from the single-group reference\n",
                   outcome.groupsUsed);
      return 1;
    }
    std::printf("run: result=bit-correct vs single-group reference\n");
    return 0;
  }

  std::vector<double> c = c0;
  const sw::rt::RunOutcome outcome =
      sw::core::runGemmFunctional(kernel, arch, problem, a, b, c, runConfig);
  if (outcomeOut != nullptr) *outcomeOut = outcome;
  const bool ranEdge = kernel.options.edgeTiles &&
                       padMode != sw::core::PadMode::kPadded;
  std::printf("ran %lldx%lldx%lld batch %lld (%s): %.2f GFLOPS modelled, "
              "%.3f ms simulated, %.0f uKernel flops, %lld host copy "
              "bytes\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(k), static_cast<long long>(batch),
              ranEdge ? "edge tiles, unpadded arrays" : "padded arrays",
              outcome.gflops, outcome.seconds * 1e3, outcome.counters.flops,
              static_cast<long long>(outcome.hostCopyBytes));
  // Machine-greppable JIT verdict: `jit: cache hit` on a warm cache,
  // `jit: compiled` on a cold one, and an explicit degradation notice when
  // the native engine was requested but the plan engine served the run.
  if (outcome.engine == "native") {
    std::printf("jit: %s\n", outcome.jitCacheHit ? "cache hit" : "compiled");
  } else if (engine == sw::rt::ExecEngine::kNative) {
    std::printf("jit: unavailable, ran on the %s engine\n",
                outcome.engine.c_str());
  }

  if (!ranEdge) {
    std::printf("run: result=done\n");
    return 0;
  }
  // Edge tiles promise exact equality with the padded reference: same
  // k-ascending accumulation order, the padding contributes exact zeros.
  sw::core::FunctionalRunConfig refConfig;
  refConfig.padMode = sw::core::PadMode::kPadded;
  std::vector<double> ref = c0;
  const sw::rt::RunOutcome refOutcome =
      sw::core::runGemmFunctional(kernel, arch, problem, a, b, ref,
                                  refConfig);
  std::printf("padded reference: %.0f uKernel flops, %lld host copy "
              "bytes\n",
              refOutcome.counters.flops,
              static_cast<long long>(refOutcome.hostCopyBytes));
  if (std::memcmp(c.data(), ref.data(), c.size() * sizeof(double)) != 0) {
    std::fprintf(stderr, "run: result=MISMATCH — edge-tile run diverged "
                         "from the padded reference\n");
    return 1;
  }
  std::printf("run: result=bit-correct vs padded reference\n");
  return 0;
}

/// Smallest shape the kernel accepts unpadded: one mesh tile deep enough
/// for a full pipeline round-trip.  Used to light up the 64 per-CPE trace
/// lanes and the mesh-run metrics without a paper-scale functional run.
sw::rt::RunOutcome runFunctionalSmoke(const sw::core::CompiledKernel& kernel,
                                      const sw::sunway::ArchConfig& arch) {
  const sw::core::PaddedShape shape =
      sw::core::padShape(1, 1, 1, kernel.options, arch);
  const std::int64_t batch = kernel.options.batched ? 2 : 1;
  const std::int64_t m = shape.m, n = shape.n,
                     k = 2 * shape.k;  // two outer-k iterations
  std::vector<double> a = randomMatrix(batch * m * k, 1);
  std::vector<double> b = randomMatrix(batch * k * n, 2);
  std::vector<double> c = randomMatrix(batch * m * n, 3);
  sw::core::GemmProblem problem{m, n, k, batch};
  return sw::core::runGemmFunctional(kernel, arch, problem, a, b, c);
}

void printStageBreakdown() {
  // Aggregate compile-category spans by name, in first-seen order.
  std::vector<std::string> order;
  std::map<std::string, double> totalMicros;
  std::map<std::string, int> count;
  for (const sw::trace::TraceEvent& e :
       sw::trace::Tracer::global().snapshot()) {
    if (e.phase != 'X' || e.category != "compile") continue;
    if (totalMicros.find(e.name) == totalMicros.end()) order.push_back(e.name);
    totalMicros[e.name] += e.durMicros;
    ++count[e.name];
  }
  std::printf("compile pipeline breakdown (host wall-clock):\n");
  std::printf("  %-28s %10s %6s\n", "stage", "ms", "calls");
  for (const std::string& name : order)
    std::printf("  %-28s %10.3f %6d\n", name.c_str(),
                totalMicros[name] / 1e3, count[name]);
  std::printf("\n");
}

void printRunMetrics(const char* title, const sw::rt::RunOutcome& outcome,
                     const sw::sunway::ArchConfig& arch) {
  const sw::metrics::DerivedRunMetrics& m = outcome.metrics;
  std::printf("%s:\n", title);
  std::printf("  %-24s %12.3f ms\n", "simulated time", outcome.seconds * 1e3);
  std::printf("  %-24s %12.2f\n", "model GFLOPS", outcome.gflops);
  std::printf("  %-24s %12.1f %%   (DMA+RMA busy time hidden "
              "behind compute)\n",
              "overlap", m.overlapPct);
  std::printf("  %-24s %12.1f %%   (CPE active time lost to reply "
              "waits)\n",
              "stall", m.stallPct);
  std::printf("  %-24s %12.1f %%\n", "compute occupancy", m.computePct);
  std::printf("  %-24s %9.1f KB   of %.0f KB budget (%.1f%%)\n",
              "SPM high-water",
              static_cast<double>(m.spmHighWaterBytes) / 1024.0,
              static_cast<double>(m.spmBudgetBytes) / 1024.0,
              m.spmBudgetPct);
  for (const auto& [set, bytes] : m.perBufferBytes)
    std::printf("    buffer %-18s %9.1f KB\n", set.c_str(),
                static_cast<double>(bytes) / 1024.0);
  std::printf("  %-24s %12lld\n", "DMA messages",
              static_cast<long long>(outcome.counters.dmaMessages));
  std::printf("  %-24s %12lld\n", "RMA broadcasts",
              static_cast<long long>(outcome.counters.rmaBroadcastsSent));
  std::printf("  %-24s %12lld\n", "mesh barriers",
              static_cast<long long>(outcome.counters.syncs));
  if (outcome.counters.faultsInjected > 0 || outcome.counters.dmaRetries > 0) {
    std::printf("  %-24s %12lld\n", "faults injected",
                static_cast<long long>(outcome.counters.faultsInjected));
    std::printf("  %-24s %12lld\n", "DMA retries",
                static_cast<long long>(outcome.counters.dmaRetries));
  }
  (void)arch;
  std::printf("\n");
}

/// --inject: compile-and-run the smoke shape twice — once fault-free, once
/// under the plan through the resilient service path — and verify the
/// recovered result bit-for-bit against the baseline.  Degradations and a
/// machine-greppable `result=` verdict are printed; returns nonzero only
/// when the faulted run produced wrong data.
int runChaosSmoke(sw::service::KernelService& service,
                  const sw::core::CompiledKernel& kernel,
                  const sw::sunway::ArchConfig& arch,
                  std::shared_ptr<const sw::sunway::FaultPlan> plan,
                  double watchdogMillis) {
  const sw::core::PaddedShape shape =
      sw::core::padShape(1, 1, 1, kernel.options, arch);
  const std::int64_t batch = kernel.options.batched ? 2 : 1;
  const std::int64_t m = shape.m, n = shape.n, k = 2 * shape.k;
  const std::vector<double> a = randomMatrix(batch * m * k, 1);
  const std::vector<double> b = randomMatrix(batch * k * n, 2);
  const std::vector<double> c0 = randomMatrix(batch * m * n, 3);
  const sw::core::GemmProblem problem{m, n, k, batch};

  const double effectiveWatchdog =
      watchdogMillis >= 0.0 ? watchdogMillis
                            : sw::sunway::MeshSimulator::defaultWatchdogMillis();
  std::printf("fault injection: %s (watchdog %.0f ms)\n",
              plan->describe().c_str(), effectiveWatchdog);

  std::vector<double> baseline = c0;
  sw::core::runGemmFunctional(kernel, arch, problem, a, b, baseline);

  std::vector<double> faulted = c0;
  sw::core::FunctionalRunConfig runConfig;
  runConfig.faultPlan = std::move(plan);
  runConfig.watchdogMillis = watchdogMillis;
  const sw::service::KernelService::ResilientRunResult result =
      service.runResilient(kernel.options, problem, a, b, faulted, runConfig);

  for (const sw::service::KernelService::DegradeStep& step :
       result.degradations)
    std::printf("  degraded %s -> %s: %s\n", step.from.c_str(),
                step.to.c_str(), step.error.c_str());
  std::printf("  faults injected=%lld dma retries=%lld watchdog fired=%g\n",
              static_cast<long long>(result.outcome.counters.faultsInjected),
              static_cast<long long>(result.outcome.counters.dmaRetries),
              sw::metrics::MetricsRegistry::global().get("watchdog.fired"));

  if (result.usedEstimator) {
    std::printf("chaos smoke: result=degraded-to-estimator (timing only, "
                "%.2f GFLOPS modelled)\n",
                result.outcome.gflops);
    return 0;
  }
  if (!result.degradations.empty()) {
    // A downgraded schedule computes the same GEMM but may associate
    // floating-point sums differently; bit-comparison is only meaningful
    // against the same schedule.
    std::printf("chaos smoke: result=recovered-by-degradation "
                "(served %s schedule)\n",
                result.servedOptions.useAsm
                    ? "asm"
                    : (result.servedOptions.useRma ? "naive" : "no-rma"));
    return 0;
  }
  if (std::memcmp(baseline.data(), faulted.data(),
                  baseline.size() * sizeof(double)) != 0) {
    std::fprintf(stderr,
                 "chaos smoke: result=MISMATCH — faulted run diverged from "
                 "the fault-free baseline\n");
    return 1;
  }
  std::printf("chaos smoke: result=bit-correct after %lld retries\n",
              static_cast<long long>(result.outcome.counters.dmaRetries));
  return 0;
}

/// --soak: replay synthetic traffic against the admission frontend and
/// print the soak report (text always; JSON with --report json).  The
/// --inject plan, when present, runs as chaos against periodically
/// verified functional mesh runs.  Returns nonzero only when a verified
/// run produced a wrong answer — shedding under overload is the expected
/// behaviour, not a failure.
int runSoakMode(sw::service::KernelService& service, long requests,
                double quotaRate,
                std::shared_ptr<const sw::sunway::FaultPlan> plan,
                double watchdogMillis, long jobs, bool profile,
                const std::string& reportMode,
                const std::string& reportPath) {
  sw::service::SoakConfig config;
  config.requests = requests;
  config.clientThreads = 4;
  config.clientWindow = 64;
  config.deadlineSeconds = 0.25;
  if (plan != nullptr) {
    config.chaosPlan = std::move(plan);
    config.verifyEvery = 500;
    if (watchdogMillis >= 0.0) config.watchdogMillis = watchdogMillis;
  }
  config.admission.maxQueueDepth = 128;
  config.admission.workers = jobs > 0 ? static_cast<int>(jobs) : 4;
  if (quotaRate > 0.0)
    for (const std::string& tenant : config.tenants)
      config.admission.tenantQuotas[tenant] =
          sw::service::TenantQuota{quotaRate, quotaRate};

  std::printf("soaking the admission frontend: %ld requests, %d workers, "
              "queue depth %lld, deadline %.0f ms%s%s\n",
              requests, config.admission.workers,
              static_cast<long long>(config.admission.maxQueueDepth),
              config.deadlineSeconds * 1e3,
              quotaRate > 0.0 ? ", per-tenant quota" : "",
              config.chaosPlan != nullptr ? ", chaos active" : "");
  const sw::service::SoakReport report = sw::service::runSoak(service, config);
  std::printf("%s", report.toText().c_str());

  if (reportMode == "json") {
    if (reportPath.empty()) {
      std::printf("%s", report.toJson().c_str());
    } else {
      writeFile(reportPath, report.toJson());
      std::printf("wrote json soak report to %s\n", reportPath.c_str());
    }
  }
  if (profile) {
    std::printf("\nmetrics registry:\n%s",
                sw::metrics::formatMetricsTable(
                    sw::metrics::MetricsRegistry::global().snapshot())
                    .c_str());
    const std::map<std::string, sw::metrics::Histogram> histograms =
        sw::metrics::HistogramRegistry::global().snapshot();
    if (!histograms.empty())
      std::printf("\nlatency histograms:\n%s",
                  sw::metrics::formatHistogramTable(histograms, "ms").c_str());
    std::printf("\n");
  }
  if (report.wrongAnswers > 0) {
    std::fprintf(stderr,
                 "soak: result=WRONG-ANSWERS — %lld verified completions "
                 "diverged from their fault-free baseline\n",
                 static_cast<long long>(report.wrongAnswers));
    return 1;
  }
  std::printf("soak: result=ok shed=%lld wrong=0\n",
              static_cast<long long>(report.shed.total()));
  return 0;
}

/// Strict positive-integer parse for CLI arguments; returns false on any
/// non-numeric, overflowing or non-positive value.
bool parsePositiveLong(const char* text, long* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (*end != '\0' || errno == ERANGE || v <= 0) return false;
  *out = v;
  return true;
}

/// Non-negative double parse for --watchdog-ms (0 disables the watchdog).
bool parseNonNegativeDouble(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (*end != '\0' || v < 0.0) return false;
  *out = v;
  return true;
}

/// --tune: resolve the best schedule for a problem shape through the
/// service's tuner (tuning-DB consult, two-stage search on a miss), print
/// the decision with a machine-greppable `schedule source:` line, and
/// write the winner's athread sources.
int runTuneMode(sw::service::KernelService& service,
                const sw::core::CodegenOptions& base,
                const std::vector<long>& shape,
                const std::string& outputPrefix) {
  const sw::core::GemmProblem problem{shape[0], shape[1], shape[2],
                                      shape.size() == 4 ? shape[3] : 1};
  std::printf("tuning %ldx%ldx%ld batch %lld over the schedule space\n",
              shape[0], shape[1], shape[2],
              static_cast<long long>(problem.batch));

  // Enumeration summary (analytic, no pipeline runs): what the search
  // considers and why the §3.2 / SPM constraints shrink it.
  const std::vector<sw::tuning::EnumeratedCandidate> space =
      sw::tuning::enumerateCandidates(base, service.arch(), problem,
                                      service.config().tuner.space);
  int feasible = 0, pruneStrip = 0, pruneSpm = 0, pruneOther = 0;
  for (const sw::tuning::EnumeratedCandidate& e : space) {
    if (e.feasible) {
      ++feasible;
    } else if (e.pruneReason.find("strip factor") != std::string::npos) {
      ++pruneStrip;
    } else if (e.pruneReason.find("SPM") != std::string::npos) {
      ++pruneSpm;
    } else {
      ++pruneOther;
    }
  }
  std::printf("search space: %zu candidates, %d feasible (pruned: %d "
              "strip-factor, %d SPM budget, %d pipeline)\n",
              space.size(), feasible, pruneStrip, pruneSpm, pruneOther);

  // Where the paper's analytic default lands on this shape, for contrast
  // with the tuned winner below.
  try {
    const sw::service::KernelService::KernelPtr defaultKernel =
        service.compile(base);
    const sw::rt::RunOutcome defaultEstimate =
        sw::core::estimateGemm(*defaultKernel, service.arch(), problem);
    std::printf("analytic default %lldx%lldx%lld/s%lld: %.2f GFLOPS "
                "simulated\n",
                static_cast<long long>(base.tileM),
                static_cast<long long>(base.tileN),
                static_cast<long long>(base.tileK),
                static_cast<long long>(base.stripFactor),
                defaultEstimate.gflops);
  } catch (const sw::Error& e) {
    std::printf("analytic default: infeasible for this request (%s)\n",
                e.what());
  }

  const sw::service::KernelService::ResolvedSchedule resolved =
      service.resolveSchedule(base, problem);
  const sw::tuning::TunedScheduleRecord& record = resolved.record;
  char groupsNote[32] = "";
  if (record.schedule.shardedGroups > 1)
    std::snprintf(groupsNote, sizeof(groupsNote), " groups %d",
                  record.schedule.shardedGroups);
  std::printf("best schedule: tile %lldx%lldx%lld strip %lld depth %d %s "
              "mk %dx%d%s — %.2f GFLOPS simulated (%s)\n",
              static_cast<long long>(record.schedule.tileM),
              static_cast<long long>(record.schedule.tileN),
              static_cast<long long>(record.schedule.tileK),
              static_cast<long long>(record.schedule.stripFactor),
              record.schedule.bufferDepth,
              record.schedule.edgeTiles ? "edge" : "pad",
              record.schedule.microMr, record.schedule.microNr, groupsNote,
              record.gflops,
              record.verdict.empty() ? "unvalidated" : record.verdict.c_str());
  std::printf("search report: %d enumerated, %d feasible, %d validated on "
              "the mesh, %.2f s host search time\n",
              record.candidatesEnumerated, record.candidatesFeasible,
              record.candidatesValidated, record.searchSeconds);

  const std::string dbPath = service.tuningDbPath(
      sw::tuning::canonicalTuneKey(base, service.arch(), problem));
  switch (resolved.source) {
    case sw::service::KernelService::ResolvedSchedule::Source::kSearch:
      std::printf("schedule source: search%s%s\n",
                  dbPath.empty() ? " (no tuning dir, decision not persisted)"
                                 : ", stored in ",
                  dbPath.c_str());
      break;
    case sw::service::KernelService::ResolvedSchedule::Source::kDiskHit:
      std::printf("schedule source: tuning-db (disk hit, search not "
                  "re-run: %s)\n",
                  dbPath.c_str());
      break;
    case sw::service::KernelService::ResolvedSchedule::Source::kShared:
      std::printf("schedule source: shared in-flight search\n");
      break;
  }

  sw::service::ServeOutcome outcome = sw::service::ServeOutcome::kCompiled;
  const sw::service::KernelService::KernelPtr kernel =
      service.compile(resolved.options, &outcome);
  const std::string prefix =
      outputPrefix.empty() ? kernel->program.name : outputPrefix;
  writeFile(prefix + "_cpe.c", kernel->cpeSource);
  writeFile(prefix + "_mpe.c", kernel->mpeSource);
  std::printf("wrote %s_cpe.c and %s_mpe.c (kernel '%s', served via %s)\n",
              prefix.c_str(), prefix.c_str(), kernel->program.name.c_str(),
              sw::service::toString(outcome));
  return 0;
}

/// --warm / --serve-batch: print the per-request serving report of a
/// completed batch.  Failed requests (including manifest lines that did
/// not parse — their error carries the 1-based line number) are listed
/// individually; the exit code is nonzero when any request failed.
int reportBatch(sw::service::KernelService& service,
                const std::vector<sw::service::KernelService::BatchResult>&
                    results,
                double wallMs) {
  std::printf("%-4s %-16s %-12s %10s  %s\n", "#", "tile", "outcome",
              "ms", "key");
  int failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const sw::service::KernelService::BatchResult& r = results[i];
    char tile[48];
    std::snprintf(tile, sizeof(tile), "%ldx%ldx%ld",
                  static_cast<long>(r.options.tileM),
                  static_cast<long>(r.options.tileN),
                  static_cast<long>(r.options.tileK));
    const std::string key = sw::core::canonicalRequestKey(
        r.options, service.arch());
    if (r.error.empty()) {
      std::printf("%-4zu %-16s %-12s %10.3f  %s\n", i, tile,
                  sw::service::toString(r.outcome), r.latencySeconds * 1e3,
                  sw::digestHex(sw::fnv1a64(key)).c_str());
    } else {
      ++failures;
      std::printf("%-4zu %-16s %-12s %10s  error: %s\n", i, tile, "failed",
                  "-", r.error.c_str());
    }
  }
  const sw::service::KernelServiceStats stats = service.stats();
  std::printf("\nbatch of %zu requests in %.3f ms: %lld compiled, "
              "%lld memory hits, %lld disk hits, %lld shared "
              "(hit rate %.1f%%)\n",
              results.size(), wallMs,
              static_cast<long long>(stats.compiles),
              static_cast<long long>(stats.memoryHits),
              static_cast<long long>(stats.diskHits),
              static_cast<long long>(stats.shared),
              100.0 * stats.hitRate());
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string inputPath;
  std::string outputPrefix;
  std::string tracePath;
  std::string cacheDir;
  std::string tuningDir;
  std::string warmShapes;
  std::string batchManifestPath;
  std::string injectSpec;
  std::string reportMode;  // "", "text" or "json"
  std::string reportPath;  // empty = stdout
  double watchdogMillis = -1.0;  // negative = library default
  long jobs = 0;
  long groups = 1;
  long soakRequests = 0;
  double soakQuota = 0.0;  // 0 = effectively unlimited tenant quotas
  bool dumpSchedule = false;
  bool profile = false;
  bool noRma = false;
  bool noHiding = false;
  std::vector<long> estimate;
  std::vector<long> runShape;
  std::vector<long> tuneShape;
  sw::core::PadMode padMode = sw::core::PadMode::kAuto;
  sw::rt::ExecEngine engine = sw::rt::ExecEngine::kPlan;
  sw::core::CodegenOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "-o") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "swcodegen: -o requires an output prefix\n");
        return 2;
      }
      outputPrefix = argv[++i];
    } else if (arg == "--no-use-asm") {
      options.useAsm = false;
    } else if (arg == "--no-rma") {
      noRma = true;
      options.useRma = false;
      options.hideLatency = false;
    } else if (arg == "--no-hiding") {
      noHiding = true;
      options.hideLatency = false;
    } else if (arg == "--dump-schedule") {
      dumpSchedule = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--report") {
      if (i + 1 >= argc || (std::string(argv[i + 1]) != "text" &&
                            std::string(argv[i + 1]) != "json")) {
        std::fprintf(stderr,
                     "swcodegen: --report requires a mode, text or json\n");
        return 2;
      }
      reportMode = argv[++i];
      // An optional output path follows; the INPUT.c positional may sit
      // there too, so a token ending in .c is left for the input parser.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        const std::string candidate = argv[i + 1];
        const bool looksLikeInput =
            candidate.size() >= 2 &&
            candidate.compare(candidate.size() - 2, 2, ".c") == 0;
        if (!looksLikeInput) reportPath = argv[++i];
      }
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "swcodegen: --trace requires an output path\n");
        return 2;
      }
      tracePath = argv[++i];
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "swcodegen: --cache-dir requires a directory path\n");
        return 2;
      }
      cacheDir = argv[++i];
    } else if (arg == "--tuning-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "swcodegen: --tuning-dir requires a directory path\n");
        return 2;
      }
      tuningDir = argv[++i];
    } else if (arg == "--inject") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "swcodegen: --inject requires a fault spec (e.g. "
                     "dma-drop:cpe=0:occ=1)\n");
        return 2;
      }
      injectSpec = argv[++i];
    } else if (arg == "--watchdog-ms") {
      if (i + 1 >= argc ||
          !parseNonNegativeDouble(argv[i + 1], &watchdogMillis)) {
        std::fprintf(stderr,
                     "swcodegen: --watchdog-ms requires a non-negative "
                     "millisecond count (0 disables)\n");
        return 2;
      }
      ++i;
    } else if (arg == "--warm") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "swcodegen: --warm requires a comma-separated list of "
                     "tile shapes (e.g. 64x64x32,32x32x32)\n");
        return 2;
      }
      warmShapes = argv[++i];
    } else if (arg == "--serve-batch") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "swcodegen: --serve-batch requires a manifest file\n");
        return 2;
      }
      batchManifestPath = argv[++i];
    } else if (arg == "--soak") {
      if (i + 1 >= argc || !parsePositiveLong(argv[i + 1], &soakRequests)) {
        std::fprintf(stderr,
                     "swcodegen: --soak requires a positive request count\n");
        return 2;
      }
      ++i;
    } else if (arg == "--soak-quota") {
      if (i + 1 >= argc ||
          !parseNonNegativeDouble(argv[i + 1], &soakQuota) ||
          soakQuota <= 0.0) {
        std::fprintf(stderr,
                     "swcodegen: --soak-quota requires a positive "
                     "tokens-per-second rate\n");
        return 2;
      }
      ++i;
    } else if (arg == "--groups") {
      if (i + 1 >= argc || !parsePositiveLong(argv[i + 1], &groups)) {
        std::fprintf(stderr,
                     "swcodegen: --groups requires a positive core-group "
                     "count\n");
        return 2;
      }
      ++i;
    } else if (arg == "-j" || arg == "--jobs") {
      if (i + 1 >= argc || !parsePositiveLong(argv[i + 1], &jobs)) {
        std::fprintf(stderr,
                     "swcodegen: %s requires a positive thread count\n",
                     arg.c_str());
        return 2;
      }
      ++i;
    } else if (arg == "--estimate" || arg == "--run" || arg == "--tune") {
      // Exactly M N K plus an optional batch count; every value must be a
      // positive integer (silently misparsed shapes used to slip through
      // strtol here).
      std::vector<long>& shape = arg == "--run"
                                     ? runShape
                                     : (arg == "--tune" ? tuneShape
                                                        : estimate);
      for (int want = 0; want < 4; ++want) {
        if (i + 1 >= argc) break;
        if (want == 3 && argv[i + 1][0] == '-') break;  // B is optional
        long value = 0;
        if (!parsePositiveLong(argv[i + 1], &value)) {
          if (want >= 3) break;  // next token is another option
          std::fprintf(stderr,
                       "swcodegen: %s requires positive integers "
                       "M N K [B], got '%s'\n",
                       arg.c_str(), argv[i + 1]);
          return 2;
        }
        shape.push_back(value);
        ++i;
      }
      if (shape.size() < 3) {
        std::fprintf(stderr,
                     "swcodegen: %s requires positive integers M N K [B]\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg == "--engine") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "swcodegen: --engine requires tree, plan or native\n");
        return 2;
      }
      const std::string name = argv[++i];
      if (name == "plan") {
        engine = sw::rt::ExecEngine::kPlan;
      } else if (name == "tree") {
        engine = sw::rt::ExecEngine::kTreeWalk;
      } else if (name == "native") {
        engine = sw::rt::ExecEngine::kNative;
      } else {
        std::fprintf(stderr,
                     "swcodegen: unknown --engine '%s' (want tree, plan or "
                     "native)\n",
                     name.c_str());
        return 2;
      }
    } else if (arg == "--pad-mode") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "swcodegen: --pad-mode requires auto, padded or edge\n");
        return 2;
      }
      const std::string mode = argv[++i];
      if (mode == "auto") {
        padMode = sw::core::PadMode::kAuto;
      } else if (mode == "padded") {
        padMode = sw::core::PadMode::kPadded;
        options.edgeTiles = false;
      } else if (mode == "edge") {
        padMode = sw::core::PadMode::kEdge;
        options.edgeTiles = true;
      } else {
        std::fprintf(stderr,
                     "swcodegen: unknown --pad-mode '%s' (want auto, "
                     "padded or edge)\n",
                     mode.c_str());
        return 2;
      }
    } else if (!arg.empty() && arg[0] != '-' && inputPath.empty()) {
      inputPath = arg;
    } else if (!arg.empty() && arg[0] != '-') {
      std::fprintf(stderr,
                   "swcodegen: unexpected extra argument '%s' (input is "
                   "already '%s'; try 'swcodegen --help')\n",
                   arg.c_str(), inputPath.c_str());
      return 2;
    } else {
      std::fprintf(stderr,
                   "swcodegen: unknown option '%s' (try 'swcodegen "
                   "--help')\n",
                   arg.c_str());
      return 2;
    }
  }
  if (cacheDir.empty()) {
    const char* env = std::getenv("SWCODEGEN_CACHE_DIR");
    if (env != nullptr && env[0] != '\0') cacheDir = env;
  }
  if (tuningDir.empty()) {
    const char* env = std::getenv("SWCODEGEN_TUNING_DIR");
    if (env != nullptr && env[0] != '\0') tuningDir = env;
  }
  const bool batchMode = !warmShapes.empty() || !batchManifestPath.empty();
  const bool tuneMode = !tuneShape.empty();
  const bool soakMode = soakRequests > 0;
  if (inputPath.empty() && !batchMode && !tuneMode && !soakMode) {
    usage(stderr);
    return 2;
  }
  if (soakMode && (batchMode || tuneMode || !inputPath.empty())) {
    std::fprintf(stderr,
                 "swcodegen: --soak is a standalone mode; drop the INPUT.c "
                 "/ --warm / --serve-batch / --tune arguments\n");
    return 2;
  }
  if (soakQuota > 0.0 && !soakMode) {
    std::fprintf(stderr, "swcodegen: --soak-quota requires --soak\n");
    return 2;
  }
  if (tuneMode && (batchMode || !inputPath.empty() || !injectSpec.empty() ||
                   !reportMode.empty())) {
    std::fprintf(stderr,
                 "swcodegen: --tune is a standalone mode (its base options "
                 "come from the schedule flags); drop the INPUT.c / "
                 "--warm / --serve-batch / --inject / --report arguments\n");
    return 2;
  }
  if (!reportMode.empty() && batchMode) {
    std::fprintf(stderr,
                 "swcodegen: --report describes a single kernel's run and "
                 "needs an INPUT.c compile, not --warm/--serve-batch\n");
    return 2;
  }

  // Bad invocations exit 2 before any compilation work: an unparsable fault
  // plan, --inject without a compile, or an unreadable input file.
  std::shared_ptr<const sw::sunway::FaultPlan> faultPlan;
  if (!injectSpec.empty()) {
    if (batchMode) {
      std::fprintf(stderr,
                   "swcodegen: --inject runs a functional chaos smoke and "
                   "needs an INPUT.c compile, not --warm/--serve-batch\n");
      return 2;
    }
    try {
      faultPlan = std::make_shared<const sw::sunway::FaultPlan>(
          sw::sunway::FaultPlan::parse(injectSpec));
    } catch (const sw::InputError& e) {
      std::fprintf(stderr, "swcodegen: error: %s\n", e.what());
      return 2;
    }
  }
  if (!inputPath.empty()) {
    std::ifstream probe(inputPath);
    if (!probe) {
      std::fprintf(stderr, "swcodegen: error: cannot open input file '%s'\n",
                   inputPath.c_str());
      return 2;
    }
  }

  // The CLI surfaces warnings by default; an explicit $SWCODEGEN_LOG still
  // selects the threshold (including a quieter one).
  if (!sw::logLevelFromEnv()) sw::setLogLevel(sw::LogLevel::kWarn);
  if (noRma && !noHiding)
    SW_WARN("cli",
            "event=implicit_option msg=\"--no-rma implicitly disables "
            "memory latency hiding: the two-level pipeline of §6 requires "
            "the RMA decomposition (pass --no-hiding to silence this)\"");

  if (!tracePath.empty() || profile) sw::trace::Tracer::global().enable();

  try {
    sw::service::KernelServiceConfig serviceConfig;
    serviceConfig.cacheDir = cacheDir;
    serviceConfig.tuningDir = tuningDir;
    serviceConfig.threads = static_cast<int>(jobs);
    if (groups > 1)
      // Widen the schedule search with N-group sharded candidates (scored
      // through the contention-derated estimator); {1} stays in so the
      // single-group default can still win.
      serviceConfig.tuner.space.shardedGroups = {1, static_cast<int>(groups)};
    sw::service::KernelService service(sw::sunway::ArchConfig{},
                                       serviceConfig);

    if (tuneMode) {
      const int rc = runTuneMode(service, options, tuneShape, outputPrefix);
      if (!tracePath.empty()) {
        sw::trace::Tracer::global().writeFile(tracePath);
        std::printf("wrote trace to %s (%zu events)\n", tracePath.c_str(),
                    sw::trace::Tracer::global().eventCount());
      }
      return rc;
    }

    if (soakMode) {
      const int rc =
          runSoakMode(service, soakRequests, soakQuota, faultPlan,
                      watchdogMillis, jobs, profile, reportMode, reportPath);
      if (!tracePath.empty()) {
        sw::trace::Tracer::global().writeFile(tracePath);
        std::printf("wrote trace to %s (%zu events)\n", tracePath.c_str(),
                    sw::trace::Tracer::global().eventCount());
      }
      return rc;
    }

    if (batchMode) {
      const double start = sw::trace::Tracer::global().nowMicros();
      std::vector<sw::service::KernelService::BatchResult> results;
      if (!warmShapes.empty())
        results = service.compileBatch(sw::service::parseWarmShapes(warmShapes));
      if (!batchManifestPath.empty()) {
        // compileManifest keeps malformed lines in the batch as per-line
        // failures (error = "manifest line <N>: ...") instead of aborting
        // the valid requests around them.
        std::vector<sw::service::KernelService::BatchResult> manifest =
            service.compileManifest(readFile(batchManifestPath));
        if (manifest.empty())
          throw sw::InputError("batch manifest '" + batchManifestPath +
                               "' contains no requests");
        for (auto& r : manifest) results.push_back(std::move(r));
      }
      const double wallMs =
          (sw::trace::Tracer::global().nowMicros() - start) / 1e3;
      const int rc = reportBatch(service, results, wallMs);
      if (!tracePath.empty()) {
        sw::trace::Tracer::global().writeFile(tracePath);
        std::printf("wrote trace to %s (%zu events)\n", tracePath.c_str(),
                    sw::trace::Tracer::global().eventCount());
      }
      return rc;
    }

    const sw::core::SwGemmCompiler compiler;  // estimate/smoke share arch
    // Every single-kernel compile is served through the kernel service so
    // the request latency histogram and the service gauges cover the CLI
    // path too; without --cache-dir the service simply has no disk tier.
    sw::service::ServeOutcome outcome = sw::service::ServeOutcome::kCompiled;
    sw::core::CompiledKernel kernel =
        service.compileSource(readFile(inputPath), options, &outcome);
    if (outcome == sw::service::ServeOutcome::kMemoryHit ||
        outcome == sw::service::ServeOutcome::kDiskHit) {
      std::printf("cache hit (%s): pipeline not re-run, kernel served "
                  "from %s\n",
                  sw::service::toString(outcome), cacheDir.c_str());
    }

    if (dumpSchedule) {
      std::printf("--- initial schedule tree ---\n%s\n",
                  kernel.initialTreeDump.c_str());
      std::printf("--- after compute decomposition ---\n%s\n",
                  kernel.tiledTreeDump.c_str());
      std::printf("--- final schedule tree ---\n%s\n",
                  kernel.finalTreeDump.c_str());
    }

    const std::string prefix =
        outputPrefix.empty() ? kernel.program.name : outputPrefix;
    writeFile(prefix + "_cpe.c", kernel.cpeSource);
    writeFile(prefix + "_mpe.c", kernel.mpeSource);
    std::printf("wrote %s_cpe.c and %s_mpe.c (kernel '%s'%s%s)\n",
                prefix.c_str(), prefix.c_str(), kernel.program.name.c_str(),
                kernel.options.batched ? ", batched" : "",
                kernel.options.fusion != sw::core::FusionKind::kNone
                    ? ", fused"
                    : "");

    sw::rt::RunOutcome estimated;
    if (!estimate.empty()) {
      sw::core::GemmProblem problem{estimate[0], estimate[1], estimate[2],
                                    estimate.size() == 4 ? estimate[3] : 1};
      if (groups > 1) {
        sw::core::ShardedConfig sharded;
        sharded.groups = static_cast<int>(groups);
        const sw::core::ShardedOutcome outcome = sw::core::estimateSharded(
            kernel, compiler.arch(), sharded, problem);
        estimated.seconds = outcome.seconds;
        estimated.gflops = outcome.gflops;
        estimated.engine = "sharded-estimator";
        estimated.counters = outcome.counters;
        estimated.report = outcome.report;
        std::printf("estimated %ldx%ldx%ld%s on %d core groups: %.2f "
                    "GFLOPS (%.1f%% of the %d-group peak, DDR derate "
                    "%.2f), %.3f ms\n",
                    estimate[0], estimate[1], estimate[2],
                    estimate.size() == 4
                        ? (" batch " + std::to_string(estimate[3])).c_str()
                        : "",
                    outcome.concurrentGroups, outcome.gflops,
                    100.0 * outcome.gflops /
                        (static_cast<double>(outcome.concurrentGroups) *
                         compiler.arch().peakFlops() / 1e9),
                    outcome.concurrentGroups, outcome.contentionDerate,
                    outcome.seconds * 1e3);
      } else {
        estimated = sw::core::estimateGemm(kernel, compiler.arch(), problem);
        std::printf("estimated %ldx%ldx%ld%s: %.2f GFLOPS (%.1f%% of model "
                    "peak), %.3f ms\n",
                    estimate[0], estimate[1], estimate[2],
                    estimate.size() == 4
                        ? (" batch " + std::to_string(estimate[3])).c_str()
                        : "",
                    estimated.gflops,
                    100.0 * estimated.gflops /
                        (compiler.arch().peakFlops() / 1e9),
                    estimated.seconds * 1e3);
      }
    }

    int runRc = 0;
    sw::rt::RunOutcome runOutcome;
    if (!runShape.empty())
      runRc = runShapeSmoke(kernel, compiler.arch(), runShape, padMode,
                            engine, groups, &runOutcome);

    // A functional mesh run lights up the 64 per-CPE trace lanes and the
    // threaded-runtime metrics.
    sw::rt::RunOutcome smoke;
    const bool wantSmoke = (!tracePath.empty() || profile) && !faultPlan;
    if (wantSmoke) smoke = runFunctionalSmoke(kernel, compiler.arch());

    int chaosRc = 0;
    if (faultPlan)
      chaosRc = runChaosSmoke(service, kernel, compiler.arch(), faultPlan,
                              watchdogMillis);

    if (profile) {
      std::printf("\n");
      printStageBreakdown();
      if (!estimate.empty())
        printRunMetrics("estimated run metrics (symmetric model)", estimated,
                        compiler.arch());
      if (wantSmoke)
        printRunMetrics("functional mesh smoke run (one mesh tile, 64 CPEs)",
                        smoke, compiler.arch());
      std::printf("metrics registry:\n%s",
                  sw::metrics::formatMetricsTable(
                      sw::metrics::MetricsRegistry::global().snapshot())
                      .c_str());
      const std::map<std::string, sw::metrics::Histogram> histograms =
          sw::metrics::HistogramRegistry::global().snapshot();
      if (!histograms.empty()) {
        std::printf("\nlatency histograms:\n%s",
                    sw::metrics::formatHistogramTable(histograms, "ms")
                        .c_str());
      }
      std::printf("\n");
    }

    if (!reportMode.empty()) {
      // Report the most faithful run available: a functional mesh run
      // beats an estimate beats the default-shape estimate.
      sw::rt::RunOutcome reported;
      if (!runShape.empty()) {
        reported = runOutcome;
      } else if (!estimate.empty()) {
        reported = estimated;
      } else {
        const std::int64_t batch = kernel.options.batched ? 2 : 1;
        reported = sw::core::estimateGemm(kernel, compiler.arch(),
                                          {1024, 1024, 1024, batch});
      }
      const std::string body = reportMode == "json"
                                   ? reported.report.toJson() + "\n"
                                   : reported.report.toText();
      if (reportPath.empty()) {
        std::printf("%s", body.c_str());
      } else {
        writeFile(reportPath, body);
        std::printf("wrote %s report to %s\n", reportMode.c_str(),
                    reportPath.c_str());
      }
    }

    if (tracePath.empty()) {
      // SWCODEGEN_TRACE=path enables collection library-wide; honour it as
      // the output location when --trace was not given.
      const char* env = std::getenv("SWCODEGEN_TRACE");
      if (env != nullptr && env[0] != '\0') tracePath = env;
    }
    if (!tracePath.empty()) {
      sw::trace::Tracer::global().writeFile(tracePath);
      std::printf("wrote trace to %s (%zu events; open in "
                  "https://ui.perfetto.dev)\n",
                  tracePath.c_str(),
                  sw::trace::Tracer::global().eventCount());
    }
    return chaosRc != 0 ? chaosRc : runRc;
  } catch (const sw::Error& e) {
    std::fprintf(stderr, "swcodegen: error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Nothing below sw::Error should escape; if something does, fail with
    // a one-line diagnostic instead of a raw terminate trace.
    std::fprintf(stderr, "swcodegen: internal error: %s\n", e.what());
    return 1;
  }
}
