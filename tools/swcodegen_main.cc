// swcodegen — the command-line compiler (§8): reads a naive C GEMM, emits
// the athread CPE/MPE sources, and optionally dumps schedule trees or
// estimates performance on the SW26010Pro model.
//
//   swcodegen input.c [-o PREFIX] [--no-use-asm] [--no-rma] [--no-hiding]
//             [--dump-schedule] [--estimate M N K [B]]
//
// --batch is detected automatically from the input program (a 4-deep nest
// over 3D arrays), as are the fusion patterns; the explicit flags mirror
// the paper's tool for the ablation variants.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "support/error.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: swcodegen INPUT.c [-o PREFIX] [--no-use-asm] [--no-rma]\n"
      "                 [--no-hiding] [--dump-schedule]\n"
      "                 [--estimate M N K [B]]\n");
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw sw::InputError("cannot open input file '" + path + "'");
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

void writeFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) throw sw::InputError("cannot write output file '" + path + "'");
  out << body;
}

}  // namespace

int main(int argc, char** argv) {
  std::string inputPath;
  std::string outputPrefix;
  bool dumpSchedule = false;
  std::vector<long> estimate;
  sw::core::CodegenOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      outputPrefix = argv[++i];
    } else if (arg == "--no-use-asm") {
      options.useAsm = false;
    } else if (arg == "--no-rma") {
      options.useRma = false;
      options.hideLatency = false;
    } else if (arg == "--no-hiding") {
      options.hideLatency = false;
    } else if (arg == "--dump-schedule") {
      dumpSchedule = true;
    } else if (arg == "--estimate") {
      while (i + 1 < argc && argv[i + 1][0] != '-')
        estimate.push_back(std::strtol(argv[++i], nullptr, 10));
      if (estimate.size() != 3 && estimate.size() != 4) {
        usage();
        return 2;
      }
    } else if (!arg.empty() && arg[0] != '-' && inputPath.empty()) {
      inputPath = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (inputPath.empty()) {
    usage();
    return 2;
  }

  try {
    sw::core::SwGemmCompiler compiler;
    sw::core::CompiledKernel kernel =
        compiler.compileSource(readFile(inputPath), options);

    if (dumpSchedule) {
      std::printf("--- initial schedule tree ---\n%s\n",
                  kernel.initialTreeDump.c_str());
      std::printf("--- after compute decomposition ---\n%s\n",
                  kernel.tiledTreeDump.c_str());
      std::printf("--- final schedule tree ---\n%s\n",
                  kernel.finalTreeDump.c_str());
    }

    const std::string prefix =
        outputPrefix.empty() ? kernel.program.name : outputPrefix;
    writeFile(prefix + "_cpe.c", kernel.cpeSource);
    writeFile(prefix + "_mpe.c", kernel.mpeSource);
    std::printf("wrote %s_cpe.c and %s_mpe.c (kernel '%s'%s%s)\n",
                prefix.c_str(), prefix.c_str(), kernel.program.name.c_str(),
                kernel.options.batched ? ", batched" : "",
                kernel.options.fusion != sw::core::FusionKind::kNone
                    ? ", fused"
                    : "");

    if (!estimate.empty()) {
      sw::core::GemmProblem problem{estimate[0], estimate[1], estimate[2],
                                    estimate.size() == 4 ? estimate[3] : 1};
      sw::rt::RunOutcome outcome =
          sw::core::estimateGemm(kernel, compiler.arch(), problem);
      std::printf("estimated %ldx%ldx%ld%s: %.2f GFLOPS (%.1f%% of model "
                  "peak), %.3f ms\n",
                  estimate[0], estimate[1], estimate[2],
                  estimate.size() == 4
                      ? (" batch " + std::to_string(estimate[3])).c_str()
                      : "",
                  outcome.gflops,
                  100.0 * outcome.gflops /
                      (compiler.arch().peakFlops() / 1e9),
                  outcome.seconds * 1e3);
    }
  } catch (const sw::Error& e) {
    std::fprintf(stderr, "swcodegen: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
