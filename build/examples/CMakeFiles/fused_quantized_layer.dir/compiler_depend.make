# Empty compiler generated dependencies file for fused_quantized_layer.
# This may be replaced when dependencies are built.
