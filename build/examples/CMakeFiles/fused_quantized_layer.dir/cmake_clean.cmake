file(REMOVE_RECURSE
  "CMakeFiles/fused_quantized_layer.dir/fused_quantized_layer.cc.o"
  "CMakeFiles/fused_quantized_layer.dir/fused_quantized_layer.cc.o.d"
  "fused_quantized_layer"
  "fused_quantized_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fused_quantized_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
