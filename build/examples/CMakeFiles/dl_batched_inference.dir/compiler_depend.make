# Empty compiler generated dependencies file for dl_batched_inference.
# This may be replaced when dependencies are built.
