file(REMOVE_RECURSE
  "CMakeFiles/dl_batched_inference.dir/dl_batched_inference.cc.o"
  "CMakeFiles/dl_batched_inference.dir/dl_batched_inference.cc.o.d"
  "dl_batched_inference"
  "dl_batched_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_batched_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
