# Empty dependencies file for inspect_codegen.
# This may be replaced when dependencies are built.
