file(REMOVE_RECURSE
  "CMakeFiles/inspect_codegen.dir/inspect_codegen.cc.o"
  "CMakeFiles/inspect_codegen.dir/inspect_codegen.cc.o.d"
  "inspect_codegen"
  "inspect_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
