# Empty compiler generated dependencies file for memory_bound_gemv.
# This may be replaced when dependencies are built.
