file(REMOVE_RECURSE
  "CMakeFiles/memory_bound_gemv.dir/memory_bound_gemv.cc.o"
  "CMakeFiles/memory_bound_gemv.dir/memory_bound_gemv.cc.o.d"
  "memory_bound_gemv"
  "memory_bound_gemv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_bound_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
