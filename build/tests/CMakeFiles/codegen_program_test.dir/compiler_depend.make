# Empty compiler generated dependencies file for codegen_program_test.
# This may be replaced when dependencies are built.
