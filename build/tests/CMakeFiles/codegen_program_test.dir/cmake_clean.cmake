file(REMOVE_RECURSE
  "CMakeFiles/codegen_program_test.dir/codegen_program_test.cc.o"
  "CMakeFiles/codegen_program_test.dir/codegen_program_test.cc.o.d"
  "codegen_program_test"
  "codegen_program_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
