file(REMOVE_RECURSE
  "CMakeFiles/poly_set_test.dir/poly_set_test.cc.o"
  "CMakeFiles/poly_set_test.dir/poly_set_test.cc.o.d"
  "poly_set_test"
  "poly_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
