file(REMOVE_RECURSE
  "CMakeFiles/tuner_multicluster_test.dir/tuner_multicluster_test.cc.o"
  "CMakeFiles/tuner_multicluster_test.dir/tuner_multicluster_test.cc.o.d"
  "tuner_multicluster_test"
  "tuner_multicluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuner_multicluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
