# Empty compiler generated dependencies file for tuner_multicluster_test.
# This may be replaced when dependencies are built.
