file(REMOVE_RECURSE
  "CMakeFiles/gemv_test.dir/gemv_test.cc.o"
  "CMakeFiles/gemv_test.dir/gemv_test.cc.o.d"
  "gemv_test"
  "gemv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
