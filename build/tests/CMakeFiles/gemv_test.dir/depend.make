# Empty dependencies file for gemv_test.
# This may be replaced when dependencies are built.
