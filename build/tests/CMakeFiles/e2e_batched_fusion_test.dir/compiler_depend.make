# Empty compiler generated dependencies file for e2e_batched_fusion_test.
# This may be replaced when dependencies are built.
