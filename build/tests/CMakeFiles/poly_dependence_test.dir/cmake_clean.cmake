file(REMOVE_RECURSE
  "CMakeFiles/poly_dependence_test.dir/poly_dependence_test.cc.o"
  "CMakeFiles/poly_dependence_test.dir/poly_dependence_test.cc.o.d"
  "poly_dependence_test"
  "poly_dependence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_dependence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
