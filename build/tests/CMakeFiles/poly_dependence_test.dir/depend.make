# Empty dependencies file for poly_dependence_test.
# This may be replaced when dependencies are built.
