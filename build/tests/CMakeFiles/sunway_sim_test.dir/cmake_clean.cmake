file(REMOVE_RECURSE
  "CMakeFiles/sunway_sim_test.dir/sunway_sim_test.cc.o"
  "CMakeFiles/sunway_sim_test.dir/sunway_sim_test.cc.o.d"
  "sunway_sim_test"
  "sunway_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunway_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
