# Empty dependencies file for sunway_sim_test.
# This may be replaced when dependencies are built.
