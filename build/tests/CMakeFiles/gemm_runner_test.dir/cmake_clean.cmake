file(REMOVE_RECURSE
  "CMakeFiles/gemm_runner_test.dir/gemm_runner_test.cc.o"
  "CMakeFiles/gemm_runner_test.dir/gemm_runner_test.cc.o.d"
  "gemm_runner_test"
  "gemm_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
