# Empty compiler generated dependencies file for gemm_runner_test.
# This may be replaced when dependencies are built.
