# Empty compiler generated dependencies file for e2e_gemm_test.
# This may be replaced when dependencies are built.
