# Empty compiler generated dependencies file for generated_code_compile_test.
# This may be replaced when dependencies are built.
