file(REMOVE_RECURSE
  "CMakeFiles/generated_code_compile_test.dir/generated_code_compile_test.cc.o"
  "CMakeFiles/generated_code_compile_test.dir/generated_code_compile_test.cc.o.d"
  "generated_code_compile_test"
  "generated_code_compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generated_code_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
