file(REMOVE_RECURSE
  "CMakeFiles/schedule_tree_test.dir/schedule_tree_test.cc.o"
  "CMakeFiles/schedule_tree_test.dir/schedule_tree_test.cc.o.d"
  "schedule_tree_test"
  "schedule_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
