# Empty dependencies file for schedule_tree_test.
# This may be replaced when dependencies are built.
