file(REMOVE_RECURSE
  "CMakeFiles/xmath_test.dir/xmath_test.cc.o"
  "CMakeFiles/xmath_test.dir/xmath_test.cc.o.d"
  "xmath_test"
  "xmath_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
