# Empty dependencies file for xmath_test.
# This may be replaced when dependencies are built.
