file(REMOVE_RECURSE
  "CMakeFiles/poly_affine_test.dir/poly_affine_test.cc.o"
  "CMakeFiles/poly_affine_test.dir/poly_affine_test.cc.o.d"
  "poly_affine_test"
  "poly_affine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_affine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
