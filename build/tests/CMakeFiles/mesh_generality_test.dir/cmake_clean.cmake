file(REMOVE_RECURSE
  "CMakeFiles/mesh_generality_test.dir/mesh_generality_test.cc.o"
  "CMakeFiles/mesh_generality_test.dir/mesh_generality_test.cc.o.d"
  "mesh_generality_test"
  "mesh_generality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_generality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
