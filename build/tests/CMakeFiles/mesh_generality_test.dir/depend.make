# Empty dependencies file for mesh_generality_test.
# This may be replaced when dependencies are built.
