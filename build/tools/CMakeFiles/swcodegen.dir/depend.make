# Empty dependencies file for swcodegen.
# This may be replaced when dependencies are built.
