file(REMOVE_RECURSE
  "CMakeFiles/swcodegen.dir/swcodegen_main.cc.o"
  "CMakeFiles/swcodegen.dir/swcodegen_main.cc.o.d"
  "swcodegen"
  "swcodegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swcodegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
