# Empty compiler generated dependencies file for sw_support.
# This may be replaced when dependencies are built.
