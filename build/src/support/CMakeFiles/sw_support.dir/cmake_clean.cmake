file(REMOVE_RECURSE
  "CMakeFiles/sw_support.dir/logging.cc.o"
  "CMakeFiles/sw_support.dir/logging.cc.o.d"
  "libsw_support.a"
  "libsw_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
