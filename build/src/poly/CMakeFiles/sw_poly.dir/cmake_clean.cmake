file(REMOVE_RECURSE
  "CMakeFiles/sw_poly.dir/affine.cc.o"
  "CMakeFiles/sw_poly.dir/affine.cc.o.d"
  "CMakeFiles/sw_poly.dir/dependence.cc.o"
  "CMakeFiles/sw_poly.dir/dependence.cc.o.d"
  "CMakeFiles/sw_poly.dir/linear_system.cc.o"
  "CMakeFiles/sw_poly.dir/linear_system.cc.o.d"
  "CMakeFiles/sw_poly.dir/set.cc.o"
  "CMakeFiles/sw_poly.dir/set.cc.o.d"
  "libsw_poly.a"
  "libsw_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
