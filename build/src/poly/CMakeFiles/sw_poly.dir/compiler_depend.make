# Empty compiler generated dependencies file for sw_poly.
# This may be replaced when dependencies are built.
