file(REMOVE_RECURSE
  "libsw_poly.a"
)
