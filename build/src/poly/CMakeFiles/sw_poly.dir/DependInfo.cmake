
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poly/affine.cc" "src/poly/CMakeFiles/sw_poly.dir/affine.cc.o" "gcc" "src/poly/CMakeFiles/sw_poly.dir/affine.cc.o.d"
  "/root/repo/src/poly/dependence.cc" "src/poly/CMakeFiles/sw_poly.dir/dependence.cc.o" "gcc" "src/poly/CMakeFiles/sw_poly.dir/dependence.cc.o.d"
  "/root/repo/src/poly/linear_system.cc" "src/poly/CMakeFiles/sw_poly.dir/linear_system.cc.o" "gcc" "src/poly/CMakeFiles/sw_poly.dir/linear_system.cc.o.d"
  "/root/repo/src/poly/set.cc" "src/poly/CMakeFiles/sw_poly.dir/set.cc.o" "gcc" "src/poly/CMakeFiles/sw_poly.dir/set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
