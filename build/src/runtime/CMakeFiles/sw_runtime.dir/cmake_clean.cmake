file(REMOVE_RECURSE
  "CMakeFiles/sw_runtime.dir/executor.cc.o"
  "CMakeFiles/sw_runtime.dir/executor.cc.o.d"
  "CMakeFiles/sw_runtime.dir/interpreter.cc.o"
  "CMakeFiles/sw_runtime.dir/interpreter.cc.o.d"
  "libsw_runtime.a"
  "libsw_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
