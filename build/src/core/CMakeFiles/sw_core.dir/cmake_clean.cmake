file(REMOVE_RECURSE
  "CMakeFiles/sw_core.dir/compiler.cc.o"
  "CMakeFiles/sw_core.dir/compiler.cc.o.d"
  "CMakeFiles/sw_core.dir/compiler_source.cc.o"
  "CMakeFiles/sw_core.dir/compiler_source.cc.o.d"
  "CMakeFiles/sw_core.dir/gemm_runner.cc.o"
  "CMakeFiles/sw_core.dir/gemm_runner.cc.o.d"
  "CMakeFiles/sw_core.dir/gemv.cc.o"
  "CMakeFiles/sw_core.dir/gemv.cc.o.d"
  "CMakeFiles/sw_core.dir/multi_cluster.cc.o"
  "CMakeFiles/sw_core.dir/multi_cluster.cc.o.d"
  "CMakeFiles/sw_core.dir/pipeline.cc.o"
  "CMakeFiles/sw_core.dir/pipeline.cc.o.d"
  "CMakeFiles/sw_core.dir/tuner.cc.o"
  "CMakeFiles/sw_core.dir/tuner.cc.o.d"
  "libsw_core.a"
  "libsw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
