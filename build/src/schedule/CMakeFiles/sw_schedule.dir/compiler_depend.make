# Empty compiler generated dependencies file for sw_schedule.
# This may be replaced when dependencies are built.
