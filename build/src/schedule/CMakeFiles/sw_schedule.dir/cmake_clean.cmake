file(REMOVE_RECURSE
  "CMakeFiles/sw_schedule.dir/transforms.cc.o"
  "CMakeFiles/sw_schedule.dir/transforms.cc.o.d"
  "CMakeFiles/sw_schedule.dir/tree.cc.o"
  "CMakeFiles/sw_schedule.dir/tree.cc.o.d"
  "libsw_schedule.a"
  "libsw_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
