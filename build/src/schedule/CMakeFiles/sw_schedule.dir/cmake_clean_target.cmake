file(REMOVE_RECURSE
  "libsw_schedule.a"
)
