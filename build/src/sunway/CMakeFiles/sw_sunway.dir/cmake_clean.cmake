file(REMOVE_RECURSE
  "CMakeFiles/sw_sunway.dir/mesh.cc.o"
  "CMakeFiles/sw_sunway.dir/mesh.cc.o.d"
  "libsw_sunway.a"
  "libsw_sunway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_sunway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
