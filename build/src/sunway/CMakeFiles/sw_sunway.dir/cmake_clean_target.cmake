file(REMOVE_RECURSE
  "libsw_sunway.a"
)
