# Empty dependencies file for sw_sunway.
# This may be replaced when dependencies are built.
