# Empty compiler generated dependencies file for sw_xmath.
# This may be replaced when dependencies are built.
