file(REMOVE_RECURSE
  "CMakeFiles/sw_xmath.dir/xmath.cc.o"
  "CMakeFiles/sw_xmath.dir/xmath.cc.o.d"
  "libsw_xmath.a"
  "libsw_xmath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_xmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
