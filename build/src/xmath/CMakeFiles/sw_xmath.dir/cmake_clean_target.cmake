file(REMOVE_RECURSE
  "libsw_xmath.a"
)
