
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/athread_printer.cc" "src/codegen/CMakeFiles/sw_codegen.dir/athread_printer.cc.o" "gcc" "src/codegen/CMakeFiles/sw_codegen.dir/athread_printer.cc.o.d"
  "/root/repo/src/codegen/program.cc" "src/codegen/CMakeFiles/sw_codegen.dir/program.cc.o" "gcc" "src/codegen/CMakeFiles/sw_codegen.dir/program.cc.o.d"
  "/root/repo/src/codegen/program_builder.cc" "src/codegen/CMakeFiles/sw_codegen.dir/program_builder.cc.o" "gcc" "src/codegen/CMakeFiles/sw_codegen.dir/program_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/sw_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/sw_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
