file(REMOVE_RECURSE
  "CMakeFiles/sw_codegen.dir/athread_printer.cc.o"
  "CMakeFiles/sw_codegen.dir/athread_printer.cc.o.d"
  "CMakeFiles/sw_codegen.dir/program.cc.o"
  "CMakeFiles/sw_codegen.dir/program.cc.o.d"
  "CMakeFiles/sw_codegen.dir/program_builder.cc.o"
  "CMakeFiles/sw_codegen.dir/program_builder.cc.o.d"
  "libsw_codegen.a"
  "libsw_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
