# Empty compiler generated dependencies file for sw_codegen.
# This may be replaced when dependencies are built.
