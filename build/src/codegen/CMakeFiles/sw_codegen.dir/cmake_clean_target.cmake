file(REMOVE_RECURSE
  "libsw_codegen.a"
)
