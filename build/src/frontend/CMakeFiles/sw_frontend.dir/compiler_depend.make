# Empty compiler generated dependencies file for sw_frontend.
# This may be replaced when dependencies are built.
