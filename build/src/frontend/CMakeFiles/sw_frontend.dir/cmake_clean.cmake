file(REMOVE_RECURSE
  "CMakeFiles/sw_frontend.dir/lexer.cc.o"
  "CMakeFiles/sw_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/sw_frontend.dir/parser.cc.o"
  "CMakeFiles/sw_frontend.dir/parser.cc.o.d"
  "CMakeFiles/sw_frontend.dir/pattern.cc.o"
  "CMakeFiles/sw_frontend.dir/pattern.cc.o.d"
  "libsw_frontend.a"
  "libsw_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
