file(REMOVE_RECURSE
  "libsw_frontend.a"
)
