file(REMOVE_RECURSE
  "libsw_kernel.a"
)
