
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/microkernel.cc" "src/kernel/CMakeFiles/sw_kernel.dir/microkernel.cc.o" "gcc" "src/kernel/CMakeFiles/sw_kernel.dir/microkernel.cc.o.d"
  "/root/repo/src/kernel/reference.cc" "src/kernel/CMakeFiles/sw_kernel.dir/reference.cc.o" "gcc" "src/kernel/CMakeFiles/sw_kernel.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
