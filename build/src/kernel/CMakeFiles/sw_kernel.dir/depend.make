# Empty dependencies file for sw_kernel.
# This may be replaced when dependencies are built.
