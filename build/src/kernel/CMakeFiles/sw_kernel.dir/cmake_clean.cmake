file(REMOVE_RECURSE
  "CMakeFiles/sw_kernel.dir/microkernel.cc.o"
  "CMakeFiles/sw_kernel.dir/microkernel.cc.o.d"
  "CMakeFiles/sw_kernel.dir/reference.cc.o"
  "CMakeFiles/sw_kernel.dir/reference.cc.o.d"
  "libsw_kernel.a"
  "libsw_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
