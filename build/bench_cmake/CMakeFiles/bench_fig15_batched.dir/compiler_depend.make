# Empty compiler generated dependencies file for bench_fig15_batched.
# This may be replaced when dependencies are built.
