file(REMOVE_RECURSE
  "../bench/bench_fig15_batched"
  "../bench/bench_fig15_batched.pdb"
  "CMakeFiles/bench_fig15_batched.dir/bench_fig15_batched.cc.o"
  "CMakeFiles/bench_fig15_batched.dir/bench_fig15_batched.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_batched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
