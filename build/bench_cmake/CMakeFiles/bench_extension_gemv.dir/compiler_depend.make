# Empty compiler generated dependencies file for bench_extension_gemv.
# This may be replaced when dependencies are built.
