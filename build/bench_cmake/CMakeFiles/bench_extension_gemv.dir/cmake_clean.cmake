file(REMOVE_RECURSE
  "../bench/bench_extension_gemv"
  "../bench/bench_extension_gemv.pdb"
  "CMakeFiles/bench_extension_gemv.dir/bench_extension_gemv.cc.o"
  "CMakeFiles/bench_extension_gemv.dir/bench_extension_gemv.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
