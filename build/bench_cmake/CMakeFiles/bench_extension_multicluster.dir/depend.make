# Empty dependencies file for bench_extension_multicluster.
# This may be replaced when dependencies are built.
