file(REMOVE_RECURSE
  "../bench/bench_extension_multicluster"
  "../bench/bench_extension_multicluster.pdb"
  "CMakeFiles/bench_extension_multicluster.dir/bench_extension_multicluster.cc.o"
  "CMakeFiles/bench_extension_multicluster.dir/bench_extension_multicluster.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_multicluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
