
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig14_nonsquare.cc" "bench_cmake/CMakeFiles/bench_fig14_nonsquare.dir/bench_fig14_nonsquare.cc.o" "gcc" "bench_cmake/CMakeFiles/bench_fig14_nonsquare.dir/bench_fig14_nonsquare.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xmath/CMakeFiles/sw_xmath.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sw_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/sw_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/sw_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/sunway/CMakeFiles/sw_sunway.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/sw_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/sw_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/sw_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
