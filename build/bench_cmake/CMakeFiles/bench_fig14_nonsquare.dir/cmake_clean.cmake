file(REMOVE_RECURSE
  "../bench/bench_fig14_nonsquare"
  "../bench/bench_fig14_nonsquare.pdb"
  "CMakeFiles/bench_fig14_nonsquare.dir/bench_fig14_nonsquare.cc.o"
  "CMakeFiles/bench_fig14_nonsquare.dir/bench_fig14_nonsquare.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_nonsquare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
