# Empty dependencies file for bench_fig14_nonsquare.
# This may be replaced when dependencies are built.
