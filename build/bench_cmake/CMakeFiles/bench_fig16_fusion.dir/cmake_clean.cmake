file(REMOVE_RECURSE
  "../bench/bench_fig16_fusion"
  "../bench/bench_fig16_fusion.pdb"
  "CMakeFiles/bench_fig16_fusion.dir/bench_fig16_fusion.cc.o"
  "CMakeFiles/bench_fig16_fusion.dir/bench_fig16_fusion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
