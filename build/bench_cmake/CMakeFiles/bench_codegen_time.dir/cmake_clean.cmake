file(REMOVE_RECURSE
  "../bench/bench_codegen_time"
  "../bench/bench_codegen_time.pdb"
  "CMakeFiles/bench_codegen_time.dir/bench_codegen_time.cc.o"
  "CMakeFiles/bench_codegen_time.dir/bench_codegen_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codegen_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
