# Empty dependencies file for bench_codegen_time.
# This may be replaced when dependencies are built.
