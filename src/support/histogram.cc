#include "support/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "support/metrics.h"

namespace sw::metrics {

int Histogram::bucketIndex(double value) {
  if (!(value >= kMinValue)) return 0;  // underflow; NaN lands here too
  if (value >= kMaxValue) return kBucketCount - 1;
  // log10(value / kMinValue) in [0, kDecades); each decade holds
  // kBucketsPerDecade buckets.
  const double position =
      std::log10(value / kMinValue) * static_cast<double>(kBucketsPerDecade);
  int index = 1 + static_cast<int>(position);
  // Guard the edges against floating-point rounding of the log.
  index = std::clamp(index, 1, kLogBuckets);
  if (value < bucketLowerBound(index)) --index;
  if (value >= bucketUpperBound(index)) ++index;
  return std::clamp(index, 1, kLogBuckets);
}

double Histogram::bucketLowerBound(int index) {
  if (index <= 0) return 0.0;
  if (index >= kBucketCount - 1) return kMaxValue;
  return kMinValue *
         std::pow(10.0, static_cast<double>(index - 1) /
                            static_cast<double>(kBucketsPerDecade));
}

double Histogram::bucketUpperBound(int index) {
  if (index <= 0) return kMinValue;
  if (index >= kBucketCount - 1)
    return std::numeric_limits<double>::infinity();
  return kMinValue *
         std::pow(10.0, static_cast<double>(index) /
                            static_cast<double>(kBucketsPerDecade));
}

std::string Histogram::bucketLabel(int index) {
  char buf[64];
  if (index >= kBucketCount - 1) {
    std::snprintf(buf, sizeof(buf), "[%.3g, inf)", bucketLowerBound(index));
  } else {
    std::snprintf(buf, sizeof(buf), "[%.3g, %.3g)", bucketLowerBound(index),
                  bucketUpperBound(index));
  }
  return buf;
}

void Histogram::record(double value) {
  if (std::isnan(value) || value < 0.0) value = 0.0;
  ++counts_[static_cast<std::size_t>(bucketIndex(value))];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i)
    counts_[static_cast<std::size_t>(i)] +=
        other.counts_[static_cast<std::size_t>(i)];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void Histogram::clear() {
  counts_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::int64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::int64_t n = counts_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    if (static_cast<double>(cumulative + n) >= rank) {
      const double frac =
          std::clamp((rank - static_cast<double>(cumulative)) /
                         static_cast<double>(n),
                     0.0, 1.0);
      // Every interpolated estimate is clamped to the tracked maximum:
      // bucket edges (and the overflow bucket especially) otherwise cap
      // or overshoot the true recorded extreme, so p100 must equal it.
      if (i == 0) return std::min(kMinValue * frac, max_);  // linear from 0
      if (i == kBucketCount - 1) return std::max(kMaxValue, max_);
      const double lower = bucketLowerBound(i);
      const double upper = bucketUpperBound(i);
      return std::min(lower * std::pow(upper / lower, frac), max_);
    }
    cumulative += n;
  }
  // All mass consumed without reaching the rank (p == 100 with rounding):
  // report the highest non-empty bucket's upper edge, clamped likewise.
  for (int i = kBucketCount - 1; i >= 0; --i) {
    if (counts_[static_cast<std::size_t>(i)] == 0) continue;
    return i == kBucketCount - 1 ? std::max(kMaxValue, max_)
                                 : std::min(bucketUpperBound(i), max_);
  }
  return 0.0;
}

HistogramRegistry& HistogramRegistry::global() {
  static HistogramRegistry registry;
  return registry;
}

void HistogramRegistry::record(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_[name].record(value);
}

std::map<std::string, Histogram> HistogramRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_;
}

bool HistogramRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_.count(name) != 0;
}

void HistogramRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_.clear();
}

void HistogramRegistry::publishPercentiles(MetricsRegistry& registry,
                                           const std::string& unit) const {
  const std::map<std::string, Histogram> snap = snapshot();
  for (const auto& [name, histogram] : snap) {
    registry.set(name + ".count", static_cast<double>(histogram.count()));
    registry.set(name + ".p50_" + unit, histogram.percentile(50.0));
    registry.set(name + ".p90_" + unit, histogram.percentile(90.0));
    registry.set(name + ".p99_" + unit, histogram.percentile(99.0));
    registry.set(name + ".mean_" + unit, histogram.mean());
    registry.set(name + ".max_" + unit, histogram.maxRecorded());
  }
}

}  // namespace sw::metrics
