// Metrics registry and derived run gauges.
//
// MetricsRegistry is a process-wide, thread-safe name → gauge map the
// compiler, tuner and runtimes publish into; the CLI's --profile table and
// the benchmark harness read it back out.  DerivedRunMetrics packages the
// per-run gauges computed from raw CpeCounters — overlap %, stall %, SPM
// high-water mark against the 256 KB budget, per-buffer bytes — and is
// surfaced through rt::RunOutcome (see runtime/executor.h, which fills it
// via deriveRunMetrics).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace sw::metrics {

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  void set(const std::string& name, double value);
  void add(const std::string& name, double delta);
  /// 0.0 when the gauge was never published.
  [[nodiscard]] double get(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::map<std::string, double> snapshot() const;
  void clear();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, double> gauges_;
};

/// Gauges derived from one run's aggregate counters (§6/§8 analysis).
struct DerivedRunMetrics {
  /// Share of DMA+RMA engine busy time hidden behind compute, in [0,100]:
  /// 100 * (busy - exposedStall) / busy.  §6's pipelining drives this
  /// toward 100; issue-and-wait schedules sit near 0.
  double overlapPct = 0.0;
  /// Share of CPE active time lost to reply-wait stalls, in [0,100]:
  /// 100 * stall / (compute + stall).
  double stallPct = 0.0;
  /// Share of aggregate CPE wall-clock spent computing, in [0,100].
  double computePct = 0.0;
  /// Static SPM high-water mark of the kernel's planned layout.
  std::int64_t spmHighWaterBytes = 0;
  /// The architecture's SPM capacity (256 KB on SW26010Pro).
  std::int64_t spmBudgetBytes = 0;
  /// 100 * spmHighWaterBytes / spmBudgetBytes.
  double spmBudgetPct = 0.0;
  /// Total bytes (all phases) of each planned SPM buffer set.
  std::map<std::string, std::int64_t> perBufferBytes;

  /// Flatten into gauge form ("<prefix>overlap_pct", ...) for the registry.
  [[nodiscard]] std::map<std::string, double> toGauges(
      const std::string& prefix) const;
  /// Publish all gauges into `registry` under `prefix`.
  void publish(MetricsRegistry& registry, const std::string& prefix) const;
};

}  // namespace sw::metrics
