// Metrics registry and derived run gauges.
//
// MetricsRegistry is a process-wide, thread-safe name → gauge map the
// compiler, tuner and runtimes publish into; the CLI's --profile table and
// the benchmark harness read it back out.  DerivedRunMetrics packages the
// per-run gauges computed from raw CpeCounters — overlap %, stall %, SPM
// high-water mark against the 256 KB budget, per-buffer bytes — and is
// surfaced through rt::RunOutcome (see runtime/executor.h, which fills it
// via deriveRunMetrics).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace sw::metrics {

class Histogram;

/// 100 * numerator / denominator, hardened for gauge math: returns 0 when
/// the denominator is zero/negative/non-finite or the numerator is
/// non-finite (an idle engine must read as 0%, never NaN).
[[nodiscard]] double safePct(double numerator, double denominator);

/// numerator / denominator with the same hardening, 0 on bad input.
[[nodiscard]] double safeDiv(double numerator, double denominator);

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  void set(const std::string& name, double value);
  void add(const std::string& name, double delta);
  /// 0.0 when the gauge was never published.
  [[nodiscard]] double get(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::map<std::string, double> snapshot() const;
  void clear();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, double> gauges_;
};

/// Gauges derived from one run's aggregate counters (§6/§8 analysis).
struct DerivedRunMetrics {
  /// Share of DMA+RMA engine busy time hidden behind compute, in [0,100]:
  /// 100 * (busy - exposedStall) / busy.  §6's pipelining drives this
  /// toward 100; issue-and-wait schedules sit near 0.
  double overlapPct = 0.0;
  /// Share of CPE active time lost to reply-wait stalls, in [0,100]:
  /// 100 * stall / (compute + stall).
  double stallPct = 0.0;
  /// Share of aggregate CPE wall-clock spent computing, in [0,100].
  double computePct = 0.0;
  /// Static SPM high-water mark of the kernel's planned layout.
  std::int64_t spmHighWaterBytes = 0;
  /// The architecture's SPM capacity (256 KB on SW26010Pro).
  std::int64_t spmBudgetBytes = 0;
  /// 100 * spmHighWaterBytes / spmBudgetBytes.
  double spmBudgetPct = 0.0;
  /// Total bytes (all phases) of each planned SPM buffer set.
  std::map<std::string, std::int64_t> perBufferBytes;

  /// Flatten into gauge form ("<prefix>overlap_pct", ...) for the registry.
  [[nodiscard]] std::map<std::string, double> toGauges(
      const std::string& prefix) const;
  /// Publish all gauges into `registry` under `prefix`.
  void publish(MetricsRegistry& registry, const std::string& prefix) const;
};

/// Render a gauge snapshot as the --profile table: gauges grouped by their
/// first dotted component, groups and rows sorted, names aligned, and the
/// value column annotated with a unit inferred from the name suffix
/// (_pct → %, _bytes → KB, _ms → ms, _seconds → s).  Deterministic for a
/// given map; pinned by a snapshot test.
[[nodiscard]] std::string formatMetricsTable(
    const std::map<std::string, double>& gauges);

/// Render a histogram snapshot as a count/p50/p90/p99/max table (one row
/// per histogram, sorted by name).  `unit` annotates the columns.
[[nodiscard]] std::string formatHistogramTable(
    const std::map<std::string, Histogram>& histograms,
    const std::string& unit);

}  // namespace sw::metrics
