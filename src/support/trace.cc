#include "support/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/error.h"
#include "support/format.h"

namespace sw::trace {

namespace {

// Initialised from the environment at static-init time: the hot-path
// enabled() probe must honour SWCODEGEN_TRACE even before anything has
// constructed Tracer::global() (spans check the flag first).
std::atomic<bool> g_enabled{std::getenv("SWCODEGEN_TRACE") != nullptr};

double steadyMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string formatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void appendArgs(std::string& out, const std::vector<TraceArg>& args) {
  out += "{";
  bool first = true;
  for (const TraceArg& a : args) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += jsonEscape(a.key);
    out += "\":";
    if (a.numeric) {
      out += a.value;
    } else {
      out += "\"";
      out += jsonEscape(a.value);
      out += "\"";
    }
  }
  out += "}";
}

}  // namespace

TraceArg arg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), false};
}
TraceArg arg(std::string key, const char* value) {
  return TraceArg{std::move(key), value, false};
}
TraceArg arg(std::string key, std::int64_t value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}
TraceArg arg(std::string key, double value) {
  return TraceArg{std::move(key), formatDouble(value), true};
}

Tracer::Tracer() : epochMicros_(steadyMicros()) {
  if (std::getenv("SWCODEGEN_TRACE") != nullptr) enable();
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = true;
  g_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = false;
  g_enabled.store(false, std::memory_order_relaxed);
}

bool Tracer::enabled() const { return g_enabled.load(std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  namedLanes_.clear();
}

double Tracer::nowMicros() const { return steadyMicros() - epochMicros_; }

void Tracer::completeEvent(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::simSpan(int pid, std::int64_t lane, std::string name,
                     std::string category, double startSeconds,
                     double endSeconds, std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.pid = pid;
  event.tid = lane;
  event.tsMicros = startSeconds * 1e6;
  event.durMicros = (endSeconds - startSeconds) * 1e6;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::setProcessName(int pid, const std::string& name) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = strCat("p", pid);
  for (const std::string& seen : namedLanes_)
    if (seen == key) return;
  namedLanes_.push_back(key);
  TraceEvent event;
  event.name = "process_name";
  event.phase = 'M';
  event.pid = pid;
  event.tid = 0;
  event.args.push_back(arg("name", name));
  events_.push_back(std::move(event));
}

void Tracer::setThreadName(int pid, std::int64_t tid,
                           const std::string& name) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = strCat("p", pid, "/t", tid);
  for (const std::string& seen : namedLanes_)
    if (seen == key) return;
  namedLanes_.push_back(key);
  TraceEvent event;
  event.name = "thread_name";
  event.phase = 'M';
  event.pid = pid;
  event.tid = tid;
  event.args.push_back(arg("name", name));
  events_.push_back(std::move(event));
}

std::size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string Tracer::toJson() const {
  std::vector<TraceEvent> events = snapshot();
  std::string out;
  out.reserve(events.size() * 128 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    out += jsonEscape(e.name);
    out += "\",\"cat\":\"";
    out += jsonEscape(e.category.empty() ? "swcodegen" : e.category);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":";
    out += std::to_string(e.pid);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    if (e.phase == 'X') {
      out += ",\"ts\":";
      out += formatDouble(e.tsMicros);
      out += ",\"dur\":";
      out += formatDouble(e.durMicros);
    }
    if (!e.args.empty() || e.phase == 'M') {
      out += ",\"args\":";
      appendArgs(out, e.args);
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void Tracer::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out)
    throw InputError(strCat("cannot write trace file '", path, "'"));
  out << toJson();
}

std::int64_t currentThreadLane() {
  static std::atomic<std::int64_t> next{0};
  thread_local const std::int64_t lane =
      next.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

Span::Span(std::string name, std::vector<TraceArg> args, std::string category)
    : name_(std::move(name)),
      category_(std::move(category)),
      args_(std::move(args)) {
  if (!enabled()) return;
  active_ = true;
  startMicros_ = Tracer::global().nowMicros();
}

Span::~Span() {
  if (!active_ || !enabled()) return;
  Tracer& tracer = Tracer::global();
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.phase = 'X';
  event.pid = kCompilePid;
  event.tid = currentThreadLane();
  event.tsMicros = startMicros_;
  event.durMicros = tracer.nowMicros() - startMicros_;
  event.args = std::move(args_);
  tracer.setProcessName(kCompilePid, "swcodegen compile");
  tracer.completeEvent(std::move(event));
}

void Span::addArg(TraceArg a) {
  if (active_) args_.push_back(std::move(a));
}

}  // namespace sw::trace
