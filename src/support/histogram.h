// Fixed-bucket log-scale latency histogram with percentile extraction.
//
// The flat `service.*` gauges of the metrics registry lose the latency
// *distribution* — a p99 regression hides completely behind an unchanged
// mean.  Histogram keeps a fixed array of geometric buckets (8 per decade
// across 9 decades, values in any unit the caller picks — the kernel
// service records milliseconds) so recording is O(1), lock-free once the
// registry hands the caller a reference, and merging/percentiles are exact
// closed-form functions of the bucket counts.
//
// Percentile convention (pinned by tests/histogram_test.cc): for a
// recorded count n, percentile p maps to the continuous rank
// r = (p/100)·n; the first bucket whose cumulative count reaches r is
// selected and the result interpolates geometrically inside it:
//   value = lower · (upper/lower)^frac,  frac = (r − cumBefore)/bucketN.
// The underflow bucket [0, kMinValue) interpolates linearly from 0.
// Every estimate is clamped to the tracked maximum, so p100 reports the
// true recorded extreme even from the overflow bucket [kMaxValue, inf),
// which has no upper edge to interpolate against.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace sw::metrics {

class MetricsRegistry;

class Histogram {
 public:
  /// Geometric bucket layout: bucket 0 is [0, kMinValue); buckets
  /// 1..kLogBuckets cover [kMinValue, kMaxValue) with kBucketsPerDecade
  /// equal ratio steps per decade; the last bucket is [kMaxValue, inf).
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kDecades = 9;
  static constexpr double kMinValue = 1e-6;
  static constexpr double kMaxValue = 1e3;  // kMinValue * 10^kDecades
  static constexpr int kLogBuckets = kBucketsPerDecade * kDecades;
  static constexpr int kBucketCount = kLogBuckets + 2;

  /// Index of the bucket holding `value`; negatives and NaN count as 0.
  [[nodiscard]] static int bucketIndex(double value);
  /// Lower/upper edge of bucket `index` (upper of the overflow bucket is
  /// +inf).
  [[nodiscard]] static double bucketLowerBound(int index);
  [[nodiscard]] static double bucketUpperBound(int index);
  /// Human-readable half-open interval, e.g. "[1.78e+00, 3.16e+00)".
  [[nodiscard]] static std::string bucketLabel(int index);

  void record(double value);
  void merge(const Histogram& other);
  void clear();

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double maxRecorded() const { return max_; }
  [[nodiscard]] std::int64_t bucketCount(int index) const {
    return counts_[static_cast<std::size_t>(index)];
  }

  /// p in [0, 100]; 0.0 on an empty histogram.  See the header comment for
  /// the exact interpolation convention.
  [[nodiscard]] double percentile(double p) const;

 private:
  std::array<std::int64_t, kBucketCount> counts_{};
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Process-wide, thread-safe name → Histogram map, the distribution-aware
/// sibling of MetricsRegistry.  The kernel service records per-request
/// compile/run latency here; the CLI's --profile table and tests read the
/// snapshot back out.
class HistogramRegistry {
 public:
  static HistogramRegistry& global();

  void record(const std::string& name, double value);
  [[nodiscard]] std::map<std::string, Histogram> snapshot() const;
  [[nodiscard]] bool has(const std::string& name) const;
  void clear();

  /// Flatten every histogram's headline stats into gauges of `registry`:
  /// "<name>.count", "<name>.p50_<unit>", ".p90_<unit>", ".p99_<unit>",
  /// ".mean_<unit>", ".max_<unit>".  `unit` is a suffix tag only (the
  /// histogram is unit-agnostic); the service passes "ms".
  void publishPercentiles(MetricsRegistry& registry,
                          const std::string& unit) const;

 private:
  HistogramRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sw::metrics
