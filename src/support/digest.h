// Content digests for cache keys.
//
// FNV-1a is sufficient here: the kernel cache stores the full canonical key
// next to every entry and verifies it on load, so the digest only has to
// spread keys across file names / hash buckets, not be collision-proof.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sw {

/// 64-bit FNV-1a over `data`.
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Fixed-width lower-case hex rendering (16 characters), filesystem-safe.
[[nodiscard]] inline std::string digestHex(std::uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

}  // namespace sw
