#include "support/perf_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "support/format.h"
#include "support/metrics.h"

namespace sw::perf {

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON number that is always parseable: NaN/inf collapse to 0.
std::string jsonNumber(double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string jsonNumber(std::int64_t value) {
  return std::to_string(value);
}

std::string gbString(std::int64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f GB",
                static_cast<double>(bytes) / 1e9);
  return buf;
}

std::string pctString(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", pct);
  return buf;
}

}  // namespace

double MachineModel::ridgeFlopsPerByte() const {
  return metrics::safeDiv(peakGflops, peakDmaGBps);
}

PerfReport buildPerfReport(const RunSample& sample,
                           const MachineModel& machine) {
  PerfReport report;
  report.kernel = sample.kernel;
  report.engine = sample.engine;
  report.m = sample.m;
  report.n = sample.n;
  report.k = sample.k;
  report.batch = sample.batch;
  report.wallSeconds = sample.wallSeconds;
  report.dmaMessages = sample.dmaMessages;
  report.dmaBytes = sample.dmaBytes;
  report.rmaBroadcastsSent = sample.rmaBroadcastsSent;
  report.rmaBytesSent = sample.rmaBytesSent;
  report.syncs = sample.syncs;
  report.microKernelCalls = sample.microKernelCalls;
  report.faultsInjected = sample.faultsInjected;
  report.dmaRetries = sample.dmaRetries;

  // --- time attribution --------------------------------------------------
  // Aggregate CPE time: every one of the cpeCount simulated clocks ran for
  // the full wall clock, computing, stalled, or idle ("other", which also
  // absorbs spawn overhead and per-message issue costs).
  const double aggregate =
      sample.wallSeconds * static_cast<double>(sample.cpeCount);
  PerfReport::Attribution& a = report.attribution;
  if (aggregate > 0.0) {
    a.computePct = metrics::safePct(sample.computeSeconds, aggregate);
    a.exposedDmaPct = metrics::safePct(sample.dmaStallSeconds, aggregate);
    a.exposedRmaPct = metrics::safePct(sample.rmaStallSeconds, aggregate);
    a.syncPct = metrics::safePct(sample.syncStallSeconds, aggregate);
    a.retryPct = metrics::safePct(sample.retryStallSeconds, aggregate);
    double accounted = a.computePct + a.exposedDmaPct + a.exposedRmaPct +
                       a.syncPct + a.retryPct;
    if (accounted > 100.0) {
      // Model slack (e.g. a stall double-charged with a fault delay) can
      // push the accounted share past the wall clock; renormalise so the
      // invariant "buckets sum to 100" holds unconditionally.
      const double scale = 100.0 / accounted;
      a.computePct *= scale;
      a.exposedDmaPct *= scale;
      a.exposedRmaPct *= scale;
      a.syncPct *= scale;
      a.retryPct *= scale;
      accounted = 100.0;
    }
    a.otherPct = 100.0 - accounted;
  }

  // --- roofline ----------------------------------------------------------
  PerfReport::Roofline& r = report.roofline;
  r.peakGflops = machine.peakGflops;
  r.peakDmaGBps = machine.peakDmaGBps;
  r.ridgeFlopsPerByte = machine.ridgeFlopsPerByte();
  r.achievedGflops =
      metrics::safeDiv(sample.reportedFlops, sample.wallSeconds) / 1e9;
  // The estimator's counters cover one symmetric CPE; scale to the mesh.
  const double meshScale =
      sample.cpeCount > 0
          ? static_cast<double>(machine.meshSize) /
                static_cast<double>(sample.cpeCount)
          : 0.0;
  const double meshDmaBytes =
      static_cast<double>(sample.dmaBytes) * meshScale;
  r.achievedDmaGBps =
      metrics::safeDiv(meshDmaBytes, sample.wallSeconds) / 1e9;
  r.arithmeticIntensity =
      metrics::safeDiv(sample.reportedFlops, meshDmaBytes);
  const double memRoofGflops = r.arithmeticIntensity * machine.peakDmaGBps;
  r.ceilingGflops = machine.peakGflops > 0.0
                        ? std::min(machine.peakGflops, memRoofGflops)
                        : memRoofGflops;
  r.ceilingUtilization =
      metrics::safeDiv(r.achievedGflops, r.ceilingGflops);
  if (r.ceilingUtilization < kCeilingExplainsThreshold) {
    r.verdict = "latency-bound";
  } else if (memRoofGflops < machine.peakGflops) {
    r.verdict = "dma-bound";
  } else {
    r.verdict = "compute-bound";
  }

  // --- top bottleneck ----------------------------------------------------
  const struct {
    const char* name;
    double pct;
    std::string evidence;
  } buckets[] = {
      {"compute", a.computePct,
       strCat(pctString(a.computePct), " of aggregate CPE time computing (",
              sample.microKernelCalls, " micro-kernel calls, ",
              jsonNumber(sample.reportedFlops), " flops reported)")},
      {"exposed-dma", a.exposedDmaPct,
       strCat(pctString(a.exposedDmaPct),
              " of aggregate CPE time exposed waiting on DMA replies (",
              sample.dmaMessages, " messages, ", gbString(sample.dmaBytes),
              " moved, engine busy ", jsonNumber(sample.dmaBusySeconds),
              " s)")},
      {"exposed-rma", a.exposedRmaPct,
       strCat(pctString(a.exposedRmaPct),
              " of aggregate CPE time exposed waiting on RMA rounds (",
              sample.rmaBroadcastsSent, " broadcasts, ",
              gbString(sample.rmaBytesSent), " sent)")},
      {"sync", a.syncPct,
       strCat(pctString(a.syncPct),
              " of aggregate CPE time at mesh barriers (", sample.syncs,
              " syncs)")},
      {"retry", a.retryPct,
       strCat(pctString(a.retryPct), " of aggregate CPE time in retry "
              "backoff (", sample.dmaRetries, " DMA retries, ",
              sample.faultsInjected, " faults injected)")},
      {"other", a.otherPct,
       strCat(pctString(a.otherPct), " of aggregate CPE time in issue/spawn "
              "overheads and model slack")},
  };
  const auto* top = &buckets[0];
  for (const auto& bucket : buckets)
    if (bucket.pct > top->pct) top = &bucket;
  report.bottleneck.name = top->name;
  report.bottleneck.evidence = top->evidence;
  return report;
}

std::string PerfReport::toJson() const {
  std::string out = "{";
  const auto field = [&out](const char* key, const std::string& value,
                            bool quoted = false, bool last = false) {
    out += '"';
    out += key;
    out += "\":";
    if (quoted) {
      out += '"';
      out += jsonEscape(value);
      out += '"';
    } else {
      out += value;
    }
    if (!last) out += ',';
  };
  field("schema_version", jsonNumber(static_cast<std::int64_t>(schemaVersion)));
  field("kernel", kernel, /*quoted=*/true);
  field("engine", engine, /*quoted=*/true);
  out += "\"shape\":{";
  field("m", jsonNumber(m));
  field("n", jsonNumber(n));
  field("k", jsonNumber(k));
  field("batch", jsonNumber(batch), false, /*last=*/true);
  out += "},";
  field("wall_seconds", jsonNumber(wallSeconds));
  out += "\"attribution\":{";
  field("compute_pct", jsonNumber(attribution.computePct));
  field("exposed_dma_pct", jsonNumber(attribution.exposedDmaPct));
  field("exposed_rma_pct", jsonNumber(attribution.exposedRmaPct));
  field("sync_pct", jsonNumber(attribution.syncPct));
  field("retry_pct", jsonNumber(attribution.retryPct));
  field("other_pct", jsonNumber(attribution.otherPct), false, /*last=*/true);
  out += "},";
  out += "\"roofline\":{";
  field("achieved_gflops", jsonNumber(roofline.achievedGflops));
  field("peak_gflops", jsonNumber(roofline.peakGflops));
  field("achieved_dma_gbps", jsonNumber(roofline.achievedDmaGBps));
  field("peak_dma_gbps", jsonNumber(roofline.peakDmaGBps));
  field("arithmetic_intensity_flops_per_byte",
        jsonNumber(roofline.arithmeticIntensity));
  field("ridge_flops_per_byte", jsonNumber(roofline.ridgeFlopsPerByte));
  field("ceiling_gflops", jsonNumber(roofline.ceilingGflops));
  field("ceiling_utilization", jsonNumber(roofline.ceilingUtilization));
  field("verdict", roofline.verdict, /*quoted=*/true, /*last=*/true);
  out += "},";
  out += "\"bottleneck\":{";
  field("name", bottleneck.name, /*quoted=*/true);
  field("evidence", bottleneck.evidence, /*quoted=*/true, /*last=*/true);
  out += "},";
  out += "\"counters\":{";
  field("dma_messages", jsonNumber(dmaMessages));
  field("dma_bytes", jsonNumber(dmaBytes));
  field("rma_broadcasts", jsonNumber(rmaBroadcastsSent));
  field("rma_bytes", jsonNumber(rmaBytesSent));
  field("syncs", jsonNumber(syncs));
  field("micro_kernel_calls", jsonNumber(microKernelCalls));
  field("faults_injected", jsonNumber(faultsInjected));
  field("dma_retries", jsonNumber(dmaRetries), false, /*last=*/true);
  out += "}}";
  return out;
}

std::string PerfReport::toText() const {
  std::string out;
  char line[240];
  std::snprintf(line, sizeof(line),
                "performance report (schema v%d): kernel '%s', %s engine\n",
                schemaVersion, kernel.c_str(), engine.c_str());
  out += line;
  if (m > 0) {
    if (batch > 0) {
      std::snprintf(line, sizeof(line),
                    "  shape                    %lldx%lldx%lld batch %lld\n",
                    static_cast<long long>(m), static_cast<long long>(n),
                    static_cast<long long>(k), static_cast<long long>(batch));
    } else {
      std::snprintf(line, sizeof(line),
                    "  shape                    %lldx%lldx%lld\n",
                    static_cast<long long>(m), static_cast<long long>(n),
                    static_cast<long long>(k));
    }
    out += line;
  }
  std::snprintf(line, sizeof(line), "  simulated time           %12.3f ms\n",
                wallSeconds * 1e3);
  out += line;
  out += "time attribution (aggregate CPE time; buckets sum to 100%):\n";
  const struct { const char* name; double pct; } rows[] = {
      {"compute", attribution.computePct},
      {"exposed DMA", attribution.exposedDmaPct},
      {"exposed RMA", attribution.exposedRmaPct},
      {"sync", attribution.syncPct},
      {"retry", attribution.retryPct},
      {"other (issue/spawn)", attribution.otherPct},
  };
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "  %-24s %12.1f %%\n", row.name,
                  row.pct);
    out += line;
  }
  out += "roofline:\n";
  std::snprintf(line, sizeof(line),
                "  %-24s %12.2f GFLOPS  (peak %.2f, %.1f%% of ceiling "
                "%.2f)\n",
                "achieved compute", roofline.achievedGflops,
                roofline.peakGflops, 100.0 * roofline.ceilingUtilization,
                roofline.ceilingGflops);
  out += line;
  std::snprintf(line, sizeof(line),
                "  %-24s %12.2f GB/s    (peak %.2f)\n", "achieved DMA",
                roofline.achievedDmaGBps, roofline.peakDmaGBps);
  out += line;
  std::snprintf(line, sizeof(line),
                "  %-24s %12.2f flops/byte  (ridge %.2f)\n",
                "arithmetic intensity", roofline.arithmeticIntensity,
                roofline.ridgeFlopsPerByte);
  out += line;
  std::snprintf(line, sizeof(line), "  %-24s %s\n", "verdict",
                roofline.verdict.c_str());
  out += line;
  std::snprintf(line, sizeof(line), "top bottleneck: %s — %s\n",
                bottleneck.name.c_str(), bottleneck.evidence.c_str());
  out += line;
  return out;
}

}  // namespace sw::perf
