// Small integer math helpers used across the polyhedral layer and the
// simulator timing model.  All helpers are total for the documented
// preconditions and are constexpr so they can be used in static contexts.
#pragma once

#include <cstdint>

namespace sw {

/// Floor division that is correct for negative numerators (unlike C++ `/`,
/// which truncates toward zero).  Precondition: d > 0.
constexpr std::int64_t floorDiv(std::int64_t n, std::int64_t d) {
  std::int64_t q = n / d;
  std::int64_t r = n % d;
  return (r != 0 && r < 0) ? q - 1 : q;
}

/// Ceiling division; correct for negative numerators.  Precondition: d > 0.
constexpr std::int64_t ceilDiv(std::int64_t n, std::int64_t d) {
  return -floorDiv(-n, d);
}

/// Mathematical modulus with result in [0, d).  Precondition: d > 0.
constexpr std::int64_t floorMod(std::int64_t n, std::int64_t d) {
  return n - d * floorDiv(n, d);
}

/// Round n up to the next multiple of m.  Precondition: m > 0.
constexpr std::int64_t roundUp(std::int64_t n, std::int64_t m) {
  return ceilDiv(n, m) * m;
}

constexpr bool isPowerOfTwo(std::int64_t n) {
  return n > 0 && (n & (n - 1)) == 0;
}

/// Greatest common divisor of non-negative integers.
constexpr std::int64_t gcd(std::int64_t a, std::int64_t b) {
  while (b != 0) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

constexpr std::int64_t lcm(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  return a / gcd(a, b) * b;
}

}  // namespace sw
