#include "support/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace sw {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialised
std::atomic<bool> g_fromEnv{false};
std::mutex g_mutex;

LogLevel levelFromEnv() {
  const char* env = std::getenv("SWCODEGEN_LOG");
  if (env == nullptr) return LogLevel::kOff;
  g_fromEnv.store(true, std::memory_order_relaxed);
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  g_fromEnv.store(false, std::memory_order_relaxed);
  return LogLevel::kOff;
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

/// ISO-8601 local time with millisecond precision.
void formatTimestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  localtime_r(&seconds, &tm);
  char datePart[32];
  std::strftime(datePart, sizeof(datePart), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf, size, "%s.%03d", datePart, static_cast<int>(millis));
}

}  // namespace

LogLevel logLevel() {
  int lv = g_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = static_cast<int>(levelFromEnv());
    g_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lv);
}

void setLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool logLevelFromEnv() {
  (void)logLevel();  // force env parse
  return g_fromEnv.load(std::memory_order_relaxed);
}

void logMessage(LogLevel level, std::string_view component,
                const std::string& fields) {
  char ts[48];
  formatTimestamp(ts, sizeof(ts));
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "ts=%s level=%s component=%.*s %s\n", ts,
               levelName(level), static_cast<int>(component.size()),
               component.data(), fields.c_str());
}

}  // namespace sw
