#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace sw {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialised
std::mutex g_mutex;

LogLevel levelFromEnv() {
  const char* env = std::getenv("SWCODEGEN_LOG");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  return LogLevel::kOff;
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel logLevel() {
  int lv = g_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = static_cast<int>(levelFromEnv());
    g_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lv);
}

void setLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void logMessage(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[swcodegen %s] %s\n", levelName(level),
               message.c_str());
}

}  // namespace sw
