#include "support/metrics.h"

namespace sw::metrics {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] += delta;
}

double MetricsRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_.count(name) != 0;
}

std::map<std::string, double> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_.clear();
}

std::map<std::string, double> DerivedRunMetrics::toGauges(
    const std::string& prefix) const {
  std::map<std::string, double> gauges;
  gauges[prefix + "overlap_pct"] = overlapPct;
  gauges[prefix + "stall_pct"] = stallPct;
  gauges[prefix + "compute_pct"] = computePct;
  gauges[prefix + "spm_high_water_bytes"] =
      static_cast<double>(spmHighWaterBytes);
  gauges[prefix + "spm_budget_pct"] = spmBudgetPct;
  for (const auto& [set, bytes] : perBufferBytes)
    gauges[prefix + "spm_buffer_bytes." + set] = static_cast<double>(bytes);
  return gauges;
}

void DerivedRunMetrics::publish(MetricsRegistry& registry,
                                const std::string& prefix) const {
  for (const auto& [name, value] : toGauges(prefix))
    registry.set(name, value);
}

}  // namespace sw::metrics
