#include "support/metrics.h"

#include <cmath>
#include <cstdio>

#include "support/histogram.h"

namespace sw::metrics {

double safeDiv(double numerator, double denominator) {
  if (!std::isfinite(numerator) || !std::isfinite(denominator) ||
      denominator <= 0.0)
    return 0.0;
  return numerator / denominator;
}

double safePct(double numerator, double denominator) {
  return 100.0 * safeDiv(numerator, denominator);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] += delta;
}

double MetricsRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_.count(name) != 0;
}

std::map<std::string, double> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_.clear();
}

std::map<std::string, double> DerivedRunMetrics::toGauges(
    const std::string& prefix) const {
  std::map<std::string, double> gauges;
  gauges[prefix + "overlap_pct"] = overlapPct;
  gauges[prefix + "stall_pct"] = stallPct;
  gauges[prefix + "compute_pct"] = computePct;
  gauges[prefix + "spm_high_water_bytes"] =
      static_cast<double>(spmHighWaterBytes);
  gauges[prefix + "spm_budget_pct"] = spmBudgetPct;
  for (const auto& [set, bytes] : perBufferBytes)
    gauges[prefix + "spm_buffer_bytes." + set] = static_cast<double>(bytes);
  return gauges;
}

void DerivedRunMetrics::publish(MetricsRegistry& registry,
                                const std::string& prefix) const {
  for (const auto& [name, value] : toGauges(prefix))
    registry.set(name, value);
}

namespace {

bool endsWith(const std::string& name, const char* suffix) {
  const std::size_t len = std::string(suffix).size();
  return name.size() >= len &&
         name.compare(name.size() - len, len, suffix) == 0;
}

/// Value column with a unit inferred from the gauge name.
std::string formatValue(const std::string& name, double value) {
  char buf[64];
  if (endsWith(name, "_pct")) {
    std::snprintf(buf, sizeof(buf), "%12.1f %%", value);
  } else if (endsWith(name, "_bytes")) {
    std::snprintf(buf, sizeof(buf), "%12.1f KB", value / 1024.0);
  } else if (endsWith(name, "_ms")) {
    std::snprintf(buf, sizeof(buf), "%12.3f ms", value);
  } else if (endsWith(name, "_seconds")) {
    std::snprintf(buf, sizeof(buf), "%12.6f s", value);
  } else if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
             std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%12lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%12.3f", value);
  }
  return buf;
}

}  // namespace

std::string formatMetricsTable(const std::map<std::string, double>& gauges) {
  std::string out;
  std::string group;
  char line[160];
  for (const auto& [name, value] : gauges) {  // std::map: sorted by name
    const std::size_t dot = name.find('.');
    const std::string head = dot == std::string::npos ? "" : name.substr(0, dot);
    const std::string rest = dot == std::string::npos ? name : name.substr(dot + 1);
    if (head != group || out.empty()) {
      group = head;
      if (!out.empty()) out += '\n';
      out += group.empty() ? "(ungrouped)" : group;
      out += ":\n";
    }
    std::snprintf(line, sizeof(line), "  %-42s %s\n", rest.c_str(),
                  formatValue(name, value).c_str());
    out += line;
  }
  return out;
}

std::string formatHistogramTable(
    const std::map<std::string, Histogram>& histograms,
    const std::string& unit) {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof(line), "  %-34s %8s %10s %10s %10s %10s (%s)\n",
                "histogram", "count", "p50", "p90", "p99", "max",
                unit.c_str());
  out += line;
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "  %-34s %8lld %10.3f %10.3f %10.3f %10.3f\n", name.c_str(),
                  static_cast<long long>(h.count()), h.percentile(50.0),
                  h.percentile(90.0), h.percentile(99.0), h.maxRecorded());
    out += line;
  }
  return out;
}

}  // namespace sw::metrics
