// Structured leveled logger.  The simulator and compiler are silent by
// default; set SWCODEGEN_LOG=debug|info|warn in the environment (or call
// setLogLevel) to see pipeline traces.
//
// Lines are machine-parseable key=value records with a timestamp and a
// component tag:
//   ts=2026-08-05T12:34:56.789 level=info component=pipeline static_ops=188
// Callers pass the component as the first macro argument and build the
// message from key=value fragments with strCat-style varargs.
#pragma once

#include <string>
#include <string_view>

#include "support/format.h"

namespace sw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

/// Global log threshold; initialised from $SWCODEGEN_LOG on first use.
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// True when $SWCODEGEN_LOG set an explicit threshold (the CLI keeps a
/// user-provided level and only raises the default to warn otherwise).
bool logLevelFromEnv();

/// Write one structured log line to stderr if `level` passes the
/// threshold.  `fields` must already be key=value formatted.
void logMessage(LogLevel level, std::string_view component,
                const std::string& fields);

}  // namespace sw

#define SW_LOG(level, component, ...)                                     \
  do {                                                                    \
    if (static_cast<int>(level) >= static_cast<int>(::sw::logLevel()))    \
      ::sw::logMessage(level, component, ::sw::strCat(__VA_ARGS__));      \
  } while (0)

#define SW_DEBUG(component, ...) \
  SW_LOG(::sw::LogLevel::kDebug, component, __VA_ARGS__)
#define SW_INFO(component, ...) \
  SW_LOG(::sw::LogLevel::kInfo, component, __VA_ARGS__)
#define SW_WARN(component, ...) \
  SW_LOG(::sw::LogLevel::kWarn, component, __VA_ARGS__)
