// Tiny leveled logger.  The simulator and compiler are silent by default;
// set SWCODEGEN_LOG=debug|info|warn in the environment (or call
// setLogLevel) to see pipeline traces.
#pragma once

#include <string>

namespace sw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

/// Global log threshold; initialised from $SWCODEGEN_LOG on first use.
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// Write one log line to stderr if `level` passes the threshold.
void logMessage(LogLevel level, const std::string& message);

}  // namespace sw

#define SW_LOG(level, ...)                                            \
  do {                                                                \
    if (static_cast<int>(level) >= static_cast<int>(::sw::logLevel())) \
      ::sw::logMessage(level, ::sw::strCat(__VA_ARGS__));             \
  } while (0)

#define SW_DEBUG(...) SW_LOG(::sw::LogLevel::kDebug, __VA_ARGS__)
#define SW_INFO(...) SW_LOG(::sw::LogLevel::kInfo, __VA_ARGS__)
#define SW_WARN(...) SW_LOG(::sw::LogLevel::kWarn, __VA_ARGS__)
