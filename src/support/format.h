// Minimal string formatting helpers (GCC 12 lacks std::format).
//
// `strCat(a, b, ...)` stringifies and concatenates its arguments; it is the
// workhorse for error messages and pretty-printers throughout the project.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace sw {

namespace detail {
inline void appendOne(std::ostringstream& os, const std::string& v) { os << v; }
inline void appendOne(std::ostringstream& os, std::string_view v) { os << v; }
inline void appendOne(std::ostringstream& os, const char* v) { os << v; }
inline void appendOne(std::ostringstream& os, char v) { os << v; }
inline void appendOne(std::ostringstream& os, bool v) {
  os << (v ? "true" : "false");
}
template <typename T>
void appendOne(std::ostringstream& os, const T& v) {
  os << v;
}
}  // namespace detail

/// Concatenate the string forms of all arguments.
template <typename... Args>
std::string strCat(const Args&... args) {
  std::ostringstream os;
  (detail::appendOne(os, args), ...);
  return os.str();
}

/// Join the elements of `parts` with `sep`.
template <typename Range>
std::string strJoin(const Range& parts, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    first = false;
    detail::appendOne(os, p);
  }
  return os.str();
}

/// An indenting code writer used by all pretty-printers.  Lines are emitted
/// with the current indentation prefix; indent()/dedent() adjust nesting.
class CodeWriter {
 public:
  explicit CodeWriter(int indentWidth = 2) : indentWidth_(indentWidth) {}

  void indent() { ++level_; }
  void dedent() {
    if (level_ > 0) --level_;
  }

  /// Emit one full line (indentation + text + newline).
  template <typename... Args>
  void line(const Args&... args) {
    body_.append(static_cast<std::size_t>(level_ * indentWidth_), ' ');
    body_ += strCat(args...);
    body_ += '\n';
  }

  /// Emit a blank line.
  void blank() { body_ += '\n'; }

  [[nodiscard]] const std::string& str() const { return body_; }

 private:
  int indentWidth_;
  int level_ = 0;
  std::string body_;
};

}  // namespace sw
