// PerfReport — the performance observatory's explanation layer.
//
// Raw counters say *what* happened; PerfReport says *why a run took the
// time it did*, in the style of the paper's §6/§8 analysis:
//
//   * Time attribution: the run's aggregate CPE time (wall clock × CPE
//     count) split into compute / exposed-DMA / exposed-RMA / sync /
//     retry / other buckets that always sum to 100%.  "Exposed" is
//     latency the schedule failed to hide behind compute — exactly what
//     §6's two-level software pipeline drives toward zero.
//   * Roofline position: achieved GFLOPS against the machine model's
//     compute peak and achieved DMA bandwidth against the DDR peak, the
//     run's measured arithmetic intensity against the ridge point, and a
//     verdict — compute-bound, dma-bound, or latency-bound (the steady
//     ceilings do not explain the time; per-message startup and sync do).
//   * The top bottleneck by bucket share, named with counter evidence.
//
// The schema is versioned and stable: kPerfReportSchemaVersion only moves
// when a field changes meaning, so bench/baselines/BENCH_trajectory.json
// entries stay comparable across PRs.  This layer is support-only (plain
// numbers in, strings out); runtime/executor.cc adapts CpeCounters and
// ArchConfig into RunSample/MachineModel and hangs the finished report on
// rt::RunOutcome for both engines and the estimator.
#pragma once

#include <cstdint>
#include <string>

namespace sw::perf {

/// Bump when a field changes meaning; additions are backward-compatible.
inline constexpr int kPerfReportSchemaVersion = 1;

/// Verdict thresholds: a run whose achieved GFLOPS reaches this fraction
/// of its roofline ceiling is explained by that ceiling; below it the run
/// is latency-bound (startup costs and exposed waits dominate).
inline constexpr double kCeilingExplainsThreshold = 0.5;

/// The machine's steady-state ceilings, derived from sunway::ArchConfig.
/// With coreGroups > 1 the ceilings describe the concurrent multi-group
/// machine: peakGflops scales with the group count while peakDmaGBps is
/// the contention-derated aggregate (groups × per-group effective share),
/// so the roofline verdicts stay honest at node scale.
struct MachineModel {
  double peakGflops = 0.0;   // all streaming groups, asm micro-kernel rate
  double peakDmaGBps = 0.0;  // aggregate DDR bandwidth after contention
  double peakRmaGBps = 0.0;  // per-broadcast RMA bandwidth
  int meshSize = 64;         // total CPEs across the modeled groups
  int coreGroups = 1;        // concurrent streaming core groups

  /// Arithmetic intensity (flops per DMA byte) where the compute roof and
  /// the DMA roof intersect.
  [[nodiscard]] double ridgeFlopsPerByte() const;
};

/// One run's aggregate evidence, summed over `cpeCount` CPEs.  The
/// estimator simulates one symmetric CPE (cpeCount == 1); its per-CPE
/// counters are scaled by meshSize/cpeCount where mesh-wide totals are
/// needed (DMA bandwidth, arithmetic intensity).
struct RunSample {
  std::string kernel;
  std::string engine;  // "mesh" | "estimator"
  std::int64_t m = 0, n = 0, k = 0, batch = 0;  // 0 = unknown
  double wallSeconds = 0.0;
  int cpeCount = 1;
  double reportedFlops = 0.0;  // 2·M·N·K·batch GFLOPS convention of §8

  double computeSeconds = 0.0;
  double dmaStallSeconds = 0.0;
  double rmaStallSeconds = 0.0;
  double syncStallSeconds = 0.0;
  double retryStallSeconds = 0.0;
  double dmaBusySeconds = 0.0;
  double rmaBusySeconds = 0.0;

  std::int64_t dmaMessages = 0;
  std::int64_t dmaBytes = 0;
  std::int64_t rmaBroadcastsSent = 0;
  std::int64_t rmaBytesSent = 0;
  std::int64_t syncs = 0;
  std::int64_t microKernelCalls = 0;
  std::int64_t faultsInjected = 0;
  std::int64_t dmaRetries = 0;
};

struct PerfReport {
  int schemaVersion = kPerfReportSchemaVersion;
  std::string kernel;
  std::string engine;
  std::int64_t m = 0, n = 0, k = 0, batch = 0;
  double wallSeconds = 0.0;

  /// Share of aggregate CPE time (wallSeconds × cpeCount) per bucket, in
  /// [0, 100]; the six buckets sum to 100 whenever the run did anything.
  /// `other` absorbs issue overheads, spawn cost and model slack.
  struct Attribution {
    double computePct = 0.0;
    double exposedDmaPct = 0.0;
    double exposedRmaPct = 0.0;
    double syncPct = 0.0;
    double retryPct = 0.0;
    double otherPct = 0.0;

    [[nodiscard]] double sum() const {
      return computePct + exposedDmaPct + exposedRmaPct + syncPct +
             retryPct + otherPct;
    }
  } attribution;

  struct Roofline {
    double achievedGflops = 0.0;
    double peakGflops = 0.0;
    double achievedDmaGBps = 0.0;  // mesh-wide
    double peakDmaGBps = 0.0;
    double arithmeticIntensity = 0.0;  // measured flops per DMA byte
    double ridgeFlopsPerByte = 0.0;
    /// min(peak, intensity × DMA bandwidth): the roof above this run.
    double ceilingGflops = 0.0;
    /// achieved / ceiling, in [0, 1]-ish (model slack can exceed 1).
    double ceilingUtilization = 0.0;
    /// "compute-bound" | "dma-bound" | "latency-bound".
    std::string verdict;
  } roofline;

  struct Bottleneck {
    std::string name;      // "compute", "exposed-dma", ...
    std::string evidence;  // counter-backed one-liner
  } bottleneck;

  // Counter evidence carried verbatim for downstream tooling.
  std::int64_t dmaMessages = 0;
  std::int64_t dmaBytes = 0;
  std::int64_t rmaBroadcastsSent = 0;
  std::int64_t rmaBytesSent = 0;
  std::int64_t syncs = 0;
  std::int64_t microKernelCalls = 0;
  std::int64_t faultsInjected = 0;
  std::int64_t dmaRetries = 0;

  /// Single-line-free JSON object (schema_version first); numbers are
  /// always finite, strings escaped.
  [[nodiscard]] std::string toJson() const;
  /// Human table for the CLI's --report text.
  [[nodiscard]] std::string toText() const;
};

/// Attribute `sample` against `machine`.  Never divides by zero: a
/// degenerate sample (zero wall time) yields an all-zero report with the
/// "latency-bound" verdict.
[[nodiscard]] PerfReport buildPerfReport(const RunSample& sample,
                                         const MachineModel& machine);

}  // namespace sw::perf
