// Error handling primitives shared by every swcodegen module.
//
// The library uses exceptions for unrecoverable, programmer-visible errors
// (malformed input programs, schedule-tree invariant violations, simulator
// protocol violations).  `Error` carries a human-readable message built with
// the lightweight formatting helpers in format.h.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace sw {

/// Base exception for all swcodegen errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Thrown when user input (source program, options, shapes) is invalid.
class InputError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an internal invariant is violated; indicates a bug in the
/// compiler or simulator rather than in user input.
class InternalError : public Error {
 public:
  using Error::Error;
};

/// Thrown by the simulator when generated code violates the athread
/// programming protocol (e.g. touching a buffer before its DMA reply
/// arrived, out-of-bounds SPM access).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// Thrown for failures that are expected to succeed on retry (e.g. a
/// transiently dropped DMA reply under fault injection).  The interpreter
/// catches these, re-issues the operation with backoff, and escalates to a
/// ProtocolError once the retry budget is exhausted.
class TransientError : public Error {
 public:
  using Error::Error;
};

[[noreturn]] inline void throwInternal(std::string message) {
  throw InternalError(std::move(message));
}

[[noreturn]] inline void throwInput(std::string message) {
  throw InputError(std::move(message));
}

}  // namespace sw

/// Check an internal invariant; cheap enough to keep enabled in release
/// builds because every use sits far off the hot simulation paths.
#define SW_CHECK(cond, message)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::sw::throwInternal(std::string("SW_CHECK failed: ") + #cond +  \
                          " — " + (message));                         \
    }                                                                 \
  } while (0)

#define SW_UNREACHABLE(message) \
  ::sw::throwInternal(std::string("unreachable: ") + (message))
