// Error handling primitives shared by every swcodegen module.
//
// The library uses exceptions for unrecoverable, programmer-visible errors
// (malformed input programs, schedule-tree invariant violations, simulator
// protocol violations).  `Error` carries a human-readable message built with
// the lightweight formatting helpers in format.h.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace sw {

/// Base exception for all swcodegen errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Thrown when user input (source program, options, shapes) is invalid.
class InputError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an internal invariant is violated; indicates a bug in the
/// compiler or simulator rather than in user input.
class InternalError : public Error {
 public:
  using Error::Error;
};

/// Thrown by the simulator when generated code violates the athread
/// programming protocol (e.g. touching a buffer before its DMA reply
/// arrived, out-of-bounds SPM access).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// Thrown for failures that are expected to succeed on retry (e.g. a
/// transiently dropped DMA reply under fault injection).  The interpreter
/// catches these, re-issues the operation with backoff, and escalates to a
/// ProtocolError once the retry budget is exhausted.
class TransientError : public Error {
 public:
  using Error::Error;
};

/// Why the serving layer refused to do the work.  Every overloaded request
/// gets one of these back — requests are never silently dropped.
enum class OverloadKind {
  kQueueFull,        // admission queue at capacity (or displaced by a
                     // higher-priority request)
  kQuotaExhausted,   // the tenant's token bucket ran dry
  kDeadlineExpired,  // the deadline had already passed at enqueue
  kDeadlineMiss,     // the deadline passed while waiting in the queue
  kCircuitOpen,      // the failure domain's circuit breaker is open
  kShutdown,         // the frontend is draining; no new work accepted
};

[[nodiscard]] constexpr const char* toString(OverloadKind kind) {
  switch (kind) {
    case OverloadKind::kQueueFull: return "queue_full";
    case OverloadKind::kQuotaExhausted: return "quota_exhausted";
    case OverloadKind::kDeadlineExpired: return "deadline_expired";
    case OverloadKind::kDeadlineMiss: return "deadline_miss";
    case OverloadKind::kCircuitOpen: return "circuit_open";
    case OverloadKind::kShutdown: return "shutdown";
  }
  return "unknown";
}

/// Thrown by the admission layer when a request is shed instead of served:
/// the queue is full, the tenant is over quota, the deadline cannot be met,
/// or a circuit breaker is open.  Carries the shed reason and the tenant so
/// callers (and tests) can react per cause without parsing the message.
class OverloadError : public Error {
 public:
  OverloadError(OverloadKind kind, std::string tenant, std::string message)
      : Error(std::move(message)), kind_(kind), tenant_(std::move(tenant)) {}

  [[nodiscard]] OverloadKind kind() const { return kind_; }
  [[nodiscard]] const std::string& tenant() const { return tenant_; }

 private:
  OverloadKind kind_;
  std::string tenant_;
};

[[noreturn]] inline void throwInternal(std::string message) {
  throw InternalError(std::move(message));
}

[[noreturn]] inline void throwInput(std::string message) {
  throw InputError(std::move(message));
}

}  // namespace sw

/// Check an internal invariant; cheap enough to keep enabled in release
/// builds because every use sits far off the hot simulation paths.
#define SW_CHECK(cond, message)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::sw::throwInternal(std::string("SW_CHECK failed: ") + #cond +  \
                          " — " + (message));                         \
    }                                                                 \
  } while (0)

#define SW_UNREACHABLE(message) \
  ::sw::throwInternal(std::string("unreachable: ") + (message))
