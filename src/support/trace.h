// Chrome trace-event tracer (Perfetto / chrome://tracing viewable).
//
// Two time bases share one trace file, separated by "process" id:
//   * real-clock compile spans (Span, RAII) — microseconds since the
//     tracer's epoch, stamped on the calling thread's lane; and
//   * simulated-clock runtime lanes — the mesh simulator and the symmetric
//     estimator stamp compute / DMA / RMA / stall / sync events on the
//     logical CPE clocks, one lane per CPE (64 for a full mesh) plus
//     side lanes for each CPE's DMA and RMA engines, so §6's
//     double-buffering overlap is directly visible in the UI.
//
// Tracing is off by default and costs one relaxed atomic load per call
// site.  Enable programmatically (Tracer::global().enable()) or by setting
// SWCODEGEN_TRACE in the environment (the CLI writes the collected trace
// to that path on exit; see tools/swcodegen_main.cc).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sw::trace {

/// Trace "process" ids: Perfetto groups lanes under these headers.
inline constexpr int kCompilePid = 1;    // real-clock compile spans
inline constexpr int kMeshPid = 2;       // threaded mesh simulator lanes
inline constexpr int kEstimatorPid = 3;  // symmetric estimator lane

/// Lane-id offsets inside a simulator process: the CPE's own (compute)
/// lane is the bare CPE id; its DMA and RMA engines get side lanes.
inline constexpr int kDmaLaneOffset = 1000;
inline constexpr int kRmaLaneOffset = 2000;

/// One key/value attribute attached to an event ("args" in the format).
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

TraceArg arg(std::string key, std::string value);
TraceArg arg(std::string key, const char* value);
TraceArg arg(std::string key, std::int64_t value);
TraceArg arg(std::string key, double value);

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';  // 'X' complete, 'M' metadata
  int pid = kCompilePid;
  std::int64_t tid = 0;
  double tsMicros = 0.0;
  double durMicros = 0.0;
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  /// Process-wide tracer; auto-enabled when $SWCODEGEN_TRACE is set.
  static Tracer& global();

  void enable();
  void disable();
  [[nodiscard]] bool enabled() const;

  /// Drop all collected events and lane metadata (keeps the epoch).
  void clear();

  /// Real-clock microseconds since the tracer's construction.
  [[nodiscard]] double nowMicros() const;

  /// Record a complete ('X') event with explicit timestamps.
  void completeEvent(TraceEvent event);

  /// Record a simulated-clock span on `lane` of simulator process `pid`.
  void simSpan(int pid, std::int64_t lane, std::string name,
               std::string category, double startSeconds, double endSeconds,
               std::vector<TraceArg> args = {});

  /// Name a process / lane in the viewer (deduplicated).
  void setProcessName(int pid, const std::string& name);
  void setThreadName(int pid, std::int64_t tid, const std::string& name);

  [[nodiscard]] std::size_t eventCount() const;
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Serialise everything as a Chrome trace-event JSON object.
  [[nodiscard]] std::string toJson() const;
  void writeFile(const std::string& path) const;

 private:
  Tracer();

  mutable std::mutex mutex_;
  bool enabled_ = false;  // mirrored into the lock-free flag below
  std::vector<TraceEvent> events_;
  std::vector<std::string> namedLanes_;  // "pid/tid" dedup keys
  double epochMicros_ = 0.0;
};

/// Cheap enabled probe usable from hot paths.
[[nodiscard]] bool enabled();

/// Small dense id for the calling thread, used as the compile-span lane.
[[nodiscard]] std::int64_t currentThreadLane();

/// RAII real-clock span on the compile process.  Records on destruction;
/// attributes may be attached after construction via addArg.
class Span {
 public:
  explicit Span(std::string name, std::vector<TraceArg> args = {},
                std::string category = "compile");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void addArg(TraceArg a);

 private:
  bool active_ = false;
  std::string name_;
  std::string category_;
  std::vector<TraceArg> args_;
  double startMicros_ = 0.0;
};

}  // namespace sw::trace
