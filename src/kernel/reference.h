// Reference implementations used as numerical oracles by tests and
// examples.
//
// referenceGemm reproduces the generated pipeline's accumulation structure
// exactly: C is scaled by beta once, A contributions are accumulated in
// k-blocks of `kBlock` (the micro-kernel depth), each block reduced
// innermost-first, and alpha is folded into the A operand — so results
// match the simulator bit-for-bit, not merely within tolerance.
#pragma once

#include <cstdint>
#include <functional>

namespace sw::kernel {

/// C[M x N] = alpha * op(A[M x K]) * B[K x N] + beta * C, row-major.
/// `transformA` is the optional fused prologue applied to each A element
/// (after the alpha fold mirrors the pipeline: quantize first, then alpha).
void referenceGemm(double* c, const double* a, const double* b,
                   std::int64_t m, std::int64_t n, std::int64_t k,
                   double alpha, double beta, std::int64_t kBlock = 32,
                   const std::function<double(double)>& transformA = nullptr,
                   const std::function<double(double)>& epilogueC = nullptr);

/// Batched variant over contiguous batch-major operands.
void referenceBatchedGemm(double* c, const double* a, const double* b,
                          std::int64_t batch, std::int64_t m, std::int64_t n,
                          std::int64_t k, double alpha, double beta,
                          std::int64_t kBlock = 32);

/// Maximum absolute element difference between two buffers.
double maxAbsDiff(const double* x, const double* y, std::int64_t count);

}  // namespace sw::kernel
