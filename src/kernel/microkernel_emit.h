// Exo-style C source generator for the MR x NR micro-kernel family.
//
// emitMicroKernelC prints a self-contained, -Wall -Werror-clean C99
// function implementing the same register-blocked contract as
// dgemmMicroKernelVariant: C[m x n] += A[m x k] * B[k x n], contiguous
// row-major tiles, each C element accumulated over k ascending and added
// to memory exactly once.  The block shape is baked in as enum constants
// so the C compiler fully unrolls the register tile — the generated text
// is what the athread printer embeds for non-default variants and what
// the native JIT engine compiles into the host shared object.
//
// Bit-identity with the C++ family holds by construction: the traversal
// order of independent (MR, NR) blocks does not affect any C element's
// accumulation sequence.
#pragma once

#include <string>

namespace sw::kernel {

/// C source of one family member.  `name` is the emitted function name
/// (e.g. "dgemm_mk_4x8"); `asStatic` marks it `static` for single-TU use.
/// The signature is
///   void name(double *restrict c, const double *restrict a,
///             const double *restrict b, long m, long n, long k);
std::string emitMicroKernelC(int mr, int nr, const std::string& name,
                             bool asStatic);

/// Canonical emitted-function name for a variant: "dgemm_mk_<mr>x<nr>".
std::string microKernelFunctionName(int mr, int nr);

}  // namespace sw::kernel
