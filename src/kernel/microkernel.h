// Compute kernels executed inside a CPE's SPM.
//
// The micro-kernel is no longer a single hand-written routine: it is a
// *family* of MR x NR register-blocked variants (Exo-style generation),
// all sharing the vendor contract (C m x n += A m x k * B k x n, tiles
// contiguous row-major in SPM) and the bit-identity invariant — each C
// element accumulates over k ascending into a register and is added to
// memory exactly once, so every family member produces bit-identical
// results for the same inputs.  The tuner co-searches the schedule and
// the (MR, NR) choice; the timing model rates each variant through
// ArchConfig::microKernelEfficiency.
//
// The contract shape dispatches to a fully static MRxNR-templated kernel
// with a packed, cache-line-aligned B panel (unit-stride inner loop);
// other shapes fall back to a runtime-bound blocked nest.
// dgemmNaiveKernel is the straightforward nest the --no-use-asm path runs.
//
// The timing simulator charges these at ArchConfig rates; functionally both
// must produce bit-identical results to the reference (tests enforce it,
// since the accumulation order per C element — over k only — is the same).
#pragma once

#include <cstdint>
#include <vector>

namespace sw::kernel {

/// Shape contract of the vendor micro-kernel.
inline constexpr std::int64_t kMicroM = 64;
inline constexpr std::int64_t kMicroN = 64;
inline constexpr std::int64_t kMicroK = 32;

/// The register-block shape the vendor routine uses; the family default.
inline constexpr int kDefaultMicroMr = 4;
inline constexpr int kDefaultMicroNr = 8;

/// One member of the generated micro-kernel family.
struct MicroKernelVariant {
  int mr = kDefaultMicroMr;
  int nr = kDefaultMicroNr;
};

/// The feasible MR x NR family: register blocks whose accumulator tile,
/// A broadcasts and B row fit the CPE's 32-vector-register file, with NR
/// a multiple of the 4-wide half-vector so the inner loop vectorises.
/// The default (4, 8) is always the first entry.
const std::vector<MicroKernelVariant>& microKernelFamily();

/// Whether (mr, nr) names a member of the generated family.
bool isFeasibleMicroKernelVariant(int mr, int nr);

/// C[m x n] += A[m x k] * B[k x n]; contiguous row-major tiles.
/// Optimised register-blocked implementation (the "assembly" routine),
/// equivalent to dgemmMicroKernelVariant at the default (4, 8) block.
void dgemmMicroKernel(double* c, const double* a, const double* b,
                      std::int64_t m, std::int64_t n, std::int64_t k);

/// Family dispatch: the same contract computed with an (mr, nr) register
/// block.  Throws nothing; an unknown variant falls back to the default
/// block, which is bit-identical anyway.
void dgemmMicroKernelVariant(double* c, const double* a, const double* b,
                             std::int64_t m, std::int64_t n, std::int64_t k,
                             int mr, int nr);

/// Same contract, deliberately naive triple loop (--no-use-asm).
void dgemmNaiveKernel(double* c, const double* a, const double* b,
                      std::int64_t m, std::int64_t n, std::int64_t k);

/// Edge-tile path: C[m x n] += A[m x k] * B[k x n] where each SPM tile
/// keeps its FULL-tile row stride (lda/ldb/ldc) while only the leading
/// m/n/k sub-block holds valid data.  Accumulation order per C element is
/// the same k-ascending single-add contract as the kernels above, so a
/// partial tile computed here is bit-identical to the corresponding
/// sub-block of a zero-padded full-tile run.
void dgemmEdgeKernel(double* c, const double* a, const double* b,
                     std::int64_t m, std::int64_t n, std::int64_t k,
                     std::int64_t lda, std::int64_t ldb, std::int64_t ldc);

/// Element-wise SPM-tile operations used by the pipeline and the fusion
/// patterns (§7.3).  A factor of exactly 0.0 zero-fills instead of
/// multiplying: BLAS semantics say beta == 0 must not read C, so NaN or
/// garbage in the destination tile must not propagate through 0 * x.
void tileScale(double* tile, std::int64_t count, double factor);

/// The quantization prologue of §8.4: x -> round(x * kQuantScale) /
/// kQuantScale.  Deterministic and idempotent-friendly for tests.
inline constexpr double kQuantScale = 16.0;
void tileQuantize(double* tile, std::int64_t count);

/// The activation epilogue of §8.4: ReLU.
void tileRelu(double* tile, std::int64_t count);

/// dst[c][r] = src[r][c] for a srcRows x srcCols tile (both contiguous
/// row-major); used by the transposed-operand GEMM variants.
void tileTranspose(double* dst, const double* src, std::int64_t srcRows,
                   std::int64_t srcCols);

}  // namespace sw::kernel
