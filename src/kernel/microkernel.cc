#include "kernel/microkernel.h"

#include <cmath>

namespace sw::kernel {

namespace {

/// MR x NR register block: accumulates C[MR][NR] over the full k depth
/// before touching memory again, mirroring the register allocation the
/// vendor routine performs between SPM and the CPE register file.  The
/// inner NR loop runs over a contiguous row of B (stride-1 loads), so the
/// host compiler auto-vectorises it into FMA lanes.  The per-element
/// accumulation order (p ascending into acc, one add to C) is the
/// bit-identity contract shared with dgemmNaiveKernel.
template <int MR, int NR>
void registerBlock(double* __restrict c, const double* __restrict a,
                   const double* __restrict b, std::int64_t n, std::int64_t k,
                   std::int64_t ldb) {
  double acc[MR][NR];
  for (int i = 0; i < MR; ++i)
    for (int j = 0; j < NR; ++j) acc[i][j] = 0.0;
  for (std::int64_t p = 0; p < k; ++p) {
    const double* __restrict brow = b + p * ldb;
    for (int i = 0; i < MR; ++i) {
      const double av = a[i * k + p];
      for (int j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (int i = 0; i < MR; ++i)
    for (int j = 0; j < NR; ++j) c[i * n + j] += acc[i][j];
}

/// Copy a k x NR column panel of B (row stride ldb) into a contiguous,
/// cache-line-aligned panel so every registerBlock pass over the same
/// columns reads unit-stride aligned memory.  Values are copied verbatim:
/// packing cannot change the accumulation result.
template <int NR>
void packBPanel(double* __restrict dst, const double* __restrict b,
                std::int64_t k, std::int64_t ldb) {
  for (std::int64_t p = 0; p < k; ++p)
    for (int j = 0; j < NR; ++j) dst[p * NR + j] = b[p * ldb + j];
}

/// Fully static-shape kernel: the compiler sees every trip count, so the
/// whole nest unrolls and vectorises without runtime-bound checks.  B is
/// packed once per NR-column panel and reused by all M/MR row blocks.
template <int M, int N, int K, int MR, int NR>
void fixedShapeKernel(double* __restrict c, const double* __restrict a,
                      const double* __restrict b) {
  static_assert(M % MR == 0 && N % NR == 0,
                "fixed shape must tile exactly into register blocks");
  alignas(64) double bpack[K * NR];
  for (int j = 0; j < N; j += NR) {
    packBPanel<NR>(bpack, b + j, K, N);
    for (int i = 0; i < M; i += MR)
      registerBlock<MR, NR>(c + i * N + j, a + i * K, bpack, N, K, NR);
  }
}

/// Generic fallback for shapes the fixed path does not cover.
template <int MR, int NR>
void blockedKernel(double* __restrict c, const double* __restrict a,
                   const double* __restrict b, std::int64_t m, std::int64_t n,
                   std::int64_t k) {
  std::int64_t i = 0;
  for (; i + MR <= m; i += MR) {
    std::int64_t j = 0;
    for (; j + NR <= n; j += NR)
      registerBlock<MR, NR>(c + i * n + j, a + i * k, b + j, n, k, n);
    // Ragged right edge (never hit with the 64x64x32 contract, but the
    // kernel stays total for smaller fused shapes).
    for (; j < n; ++j)
      for (std::int64_t ii = i; ii < i + MR; ++ii) {
        double acc = 0.0;
        for (std::int64_t p = 0; p < k; ++p)
          acc += a[ii * k + p] * b[p * n + j];
        c[ii * n + j] += acc;
      }
  }
  for (; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] += acc;
    }
}

/// Per-variant shape dispatch: the vendor contract shape gets the
/// packed-B, fully unrolled path; the half-size tile (used by
/// fused/strip-mined schedules) gets a static shape of its own.  All
/// paths accumulate identically to the generic one (per-element order is
/// k-ascending with a single add to C regardless of block traversal).
template <int MR, int NR>
void variantKernel(double* c, const double* a, const double* b,
                   std::int64_t m, std::int64_t n, std::int64_t k) {
  if (m == kMicroM && n == kMicroN && k == kMicroK) {
    fixedShapeKernel<64, 64, 32, MR, NR>(c, a, b);
    return;
  }
  if (m == 32 && n == 32 && k == 32) {
    fixedShapeKernel<32, 32, 32, MR, NR>(c, a, b);
    return;
  }
  blockedKernel<MR, NR>(c, a, b, m, n, k);
}

// Every family member divides the 64x64 and 32x32 contract tiles, so the
// fixedShapeKernel static_assert holds for each instantiation below.
#define SW_MICRO_KERNEL_FAMILY(X) \
  X(4, 8)                         \
  X(2, 8)                         \
  X(2, 16)                        \
  X(4, 4)                         \
  X(4, 16)                        \
  X(8, 4)                         \
  X(8, 8)

}  // namespace

const std::vector<MicroKernelVariant>& microKernelFamily() {
  static const std::vector<MicroKernelVariant> family = {
#define SW_FAMILY_ENTRY(MR, NR) MicroKernelVariant{MR, NR},
      SW_MICRO_KERNEL_FAMILY(SW_FAMILY_ENTRY)
#undef SW_FAMILY_ENTRY
  };
  return family;
}

bool isFeasibleMicroKernelVariant(int mr, int nr) {
#define SW_FAMILY_MATCH(MR, NR) \
  if (mr == MR && nr == NR) return true;
  SW_MICRO_KERNEL_FAMILY(SW_FAMILY_MATCH)
#undef SW_FAMILY_MATCH
  return false;
}

void dgemmMicroKernel(double* c, const double* a, const double* b,
                      std::int64_t m, std::int64_t n, std::int64_t k) {
  variantKernel<kDefaultMicroMr, kDefaultMicroNr>(c, a, b, m, n, k);
}

void dgemmMicroKernelVariant(double* c, const double* a, const double* b,
                             std::int64_t m, std::int64_t n, std::int64_t k,
                             int mr, int nr) {
#define SW_FAMILY_DISPATCH(MR, NR)          \
  if (mr == MR && nr == NR) {               \
    variantKernel<MR, NR>(c, a, b, m, n, k); \
    return;                                 \
  }
  SW_MICRO_KERNEL_FAMILY(SW_FAMILY_DISPATCH)
#undef SW_FAMILY_DISPATCH
  // Unknown variants compute the same bits with the default block.
  variantKernel<kDefaultMicroMr, kDefaultMicroNr>(c, a, b, m, n, k);
}

void dgemmNaiveKernel(double* c, const double* a, const double* b,
                      std::int64_t m, std::int64_t n, std::int64_t k) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] += acc;
    }
}

void dgemmEdgeKernel(double* c, const double* a, const double* b,
                     std::int64_t m, std::int64_t n, std::int64_t k,
                     std::int64_t lda, std::int64_t ldb, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += a[i * lda + p] * b[p * ldb + j];
      c[i * ldc + j] += acc;
    }
}

void tileScale(double* tile, std::int64_t count, double factor) {
  if (factor == 0.0) {
    for (std::int64_t i = 0; i < count; ++i) tile[i] = 0.0;
    return;
  }
  for (std::int64_t i = 0; i < count; ++i) tile[i] *= factor;
}

void tileQuantize(double* tile, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i)
    tile[i] = std::nearbyint(tile[i] * kQuantScale) / kQuantScale;
}

void tileRelu(double* tile, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i)
    tile[i] = tile[i] > 0.0 ? tile[i] : 0.0;
}

void tileTranspose(double* dst, const double* src, std::int64_t srcRows,
                   std::int64_t srcCols) {
  for (std::int64_t r = 0; r < srcRows; ++r)
    for (std::int64_t c = 0; c < srcCols; ++c)
      dst[c * srcRows + r] = src[r * srcCols + c];
}

}  // namespace sw::kernel
