#include "kernel/microkernel.h"

#include <cmath>

namespace sw::kernel {

namespace {

/// 4x8 register block: accumulates C[4][8] over the full k depth before
/// touching memory again, mirroring the register allocation the vendor
/// routine performs between SPM and the CPE register file.
template <int MR, int NR>
void registerBlock(double* __restrict c, const double* __restrict a,
                   const double* __restrict b, std::int64_t n, std::int64_t k,
                   std::int64_t ldb) {
  double acc[MR][NR];
  for (int i = 0; i < MR; ++i)
    for (int j = 0; j < NR; ++j) acc[i][j] = 0.0;
  for (std::int64_t p = 0; p < k; ++p) {
    const double* brow = b + p * ldb;
    for (int i = 0; i < MR; ++i) {
      const double av = a[i * k + p];
      for (int j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (int i = 0; i < MR; ++i)
    for (int j = 0; j < NR; ++j) c[i * n + j] += acc[i][j];
}

}  // namespace

void dgemmMicroKernel(double* c, const double* a, const double* b,
                      std::int64_t m, std::int64_t n, std::int64_t k) {
  constexpr int MR = 4;
  constexpr int NR = 8;
  std::int64_t i = 0;
  for (; i + MR <= m; i += MR) {
    std::int64_t j = 0;
    for (; j + NR <= n; j += NR)
      registerBlock<MR, NR>(c + i * n + j, a + i * k, b + j, n, k, n);
    // Ragged right edge (never hit with the 64x64x32 contract, but the
    // kernel stays total for smaller fused shapes).
    for (; j < n; ++j)
      for (std::int64_t ii = i; ii < i + MR; ++ii) {
        double acc = 0.0;
        for (std::int64_t p = 0; p < k; ++p)
          acc += a[ii * k + p] * b[p * n + j];
        c[ii * n + j] += acc;
      }
  }
  for (; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] += acc;
    }
}

void dgemmNaiveKernel(double* c, const double* a, const double* b,
                      std::int64_t m, std::int64_t n, std::int64_t k) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] += acc;
    }
}

void tileScale(double* tile, std::int64_t count, double factor) {
  for (std::int64_t i = 0; i < count; ++i) tile[i] *= factor;
}

void tileQuantize(double* tile, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i)
    tile[i] = std::nearbyint(tile[i] * kQuantScale) / kQuantScale;
}

void tileRelu(double* tile, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i)
    tile[i] = tile[i] > 0.0 ? tile[i] : 0.0;
}

void tileTranspose(double* dst, const double* src, std::int64_t srcRows,
                   std::int64_t srcCols) {
  for (std::int64_t r = 0; r < srcRows; ++r)
    for (std::int64_t c = 0; c < srcCols; ++c)
      dst[c * srcRows + r] = src[r * srcCols + c];
}

}  // namespace sw::kernel
