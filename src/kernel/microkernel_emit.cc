#include "kernel/microkernel_emit.h"

#include "support/format.h"

namespace sw::kernel {

std::string microKernelFunctionName(int mr, int nr) {
  return strCat("dgemm_mk_", mr, "x", nr);
}

namespace {

/// One MR x NR register block with runtime bounds, shared by the fixed and
/// generic paths (mirrors registerBlock in microkernel.cc; identical
/// accumulation order keeps the emitted kernel bit-compatible with the
/// interpreter engines).
std::string emitRegisterBlock(int mr, int nr, const std::string& name) {
  std::string out;
  out += strCat("static void ", name,
                "_rb(double *restrict c, const double *restrict a,\n"
                "    const double *restrict b, long n, long k, long ldb) {\n");
  out += strCat("  enum { MR = ", mr, ", NR = ", nr, " };\n");
  out +=
      "  double acc[MR][NR];\n"
      "  int bi, bj;\n"
      "  long p;\n"
      "  for (bi = 0; bi < MR; ++bi)\n"
      "    for (bj = 0; bj < NR; ++bj) acc[bi][bj] = 0.0;\n"
      "  for (p = 0; p < k; ++p) {\n"
      "    const double *restrict brow = b + p * ldb;\n"
      "    for (bi = 0; bi < MR; ++bi) {\n"
      "      const double av = a[bi * k + p];\n"
      "      for (bj = 0; bj < NR; ++bj) acc[bi][bj] += av * brow[bj];\n"
      "    }\n"
      "  }\n"
      "  for (bi = 0; bi < MR; ++bi)\n"
      "    for (bj = 0; bj < NR; ++bj) c[bi * n + bj] += acc[bi][bj];\n"
      "}\n";
  return out;
}

/// Fully static-shape path for one contract tile: every trip count is a
/// literal, so the nest unrolls and vectorises, and B is packed once per
/// NR-column panel into a contiguous scratch reused by all row blocks
/// (mirrors fixedShapeKernel in microkernel.cc; packing copies values
/// verbatim so the accumulation result is unchanged).
std::string emitFixedShape(int mr, int nr, const std::string& name,
                           const std::string& suffix, int m, int n, int k) {
  std::string out;
  out += strCat("static void ", name, suffix,
                "(double *restrict c, const double *restrict a,\n"
                "    const double *restrict b) {\n");
  out += strCat("  enum { M = ", m, ", N = ", n, ", K = ", k, ", NR = ", nr,
                ", MR = ", mr, " };\n");
  out +=
      "  double bpack[K * NR];\n"
      "  int i, j, bj;\n"
      "  long p;\n"
      "  for (j = 0; j < N; j += NR) {\n"
      "    for (p = 0; p < K; ++p)\n"
      "      for (bj = 0; bj < NR; ++bj)\n"
      "        bpack[p * NR + bj] = b[p * N + j + bj];\n"
      "    for (i = 0; i < M; i += MR)\n";
  out += strCat("      ", name,
                "_rb(c + i * N + j, a + i * K, bpack, N, K, NR);\n");
  out +=
      "  }\n"
      "}\n";
  return out;
}

}  // namespace

std::string emitMicroKernelC(int mr, int nr, const std::string& name,
                             bool asStatic) {
  // The contract tile (64x64x32) and the half tile (32x32x32) get fully
  // unrolled packed-B fast paths when the variant divides them exactly —
  // true for every family member, but guarded so arbitrary (mr, nr)
  // requests still emit warning-clean C.
  const bool fixedPaths =
      64 % mr == 0 && 64 % nr == 0 && 32 % mr == 0 && 32 % nr == 0;
  std::string out;
  out += strCat("/* generated ", mr, "x", nr,
                " register-blocked micro-kernel: C[m x n] += A[m x k] * "
                "B[k x n],\n"
                " * contiguous row-major tiles, k-ascending accumulation, "
                "one add per C element.\n"
                " * Contract tiles take a static-shape packed-B path; other "
                "shapes use the\n"
                " * generic blocked loop.  All paths accumulate in the same "
                "order. */\n");
  out += emitRegisterBlock(mr, nr, name);
  if (fixedPaths) {
    out += emitFixedShape(mr, nr, name, "_t64", 64, 64, 32);
    out += emitFixedShape(mr, nr, name, "_t32", 32, 32, 32);
  }
  out += strCat(asStatic ? "static " : "", "void ", name,
                "(double *restrict c, const double *restrict a,\n"
                "    const double *restrict b, long m, long n, long k) {\n");
  out += strCat("  enum { MR = ", mr, ", NR = ", nr, " };\n");
  out += "  long i = 0;\n";
  if (fixedPaths) {
    out += strCat("  if (m == 64 && n == 64 && k == 32) { ", name,
                  "_t64(c, a, b); return; }\n");
    out += strCat("  if (m == 32 && n == 32 && k == 32) { ", name,
                  "_t32(c, a, b); return; }\n");
  }
  out +=
      "  for (; i + MR <= m; i += MR) {\n"
      "    long j = 0;\n"
      "    for (; j + NR <= n; j += NR)\n";
  out += strCat("      ", name, "_rb(c + i * n + j, a + i * k, b + j, n, k, n);\n");
  out +=
      "    /* ragged right edge (never hit by the 64x64x32 contract) */\n"
      "    for (; j < n; ++j) {\n"
      "      long ii;\n"
      "      for (ii = i; ii < i + MR; ++ii) {\n"
      "        double acc = 0.0;\n"
      "        long p;\n"
      "        for (p = 0; p < k; ++p) acc += a[ii * k + p] * b[p * n + j];\n"
      "        c[ii * n + j] += acc;\n"
      "      }\n"
      "    }\n"
      "  }\n"
      "  for (; i < m; ++i) {\n"
      "    long j;\n"
      "    for (j = 0; j < n; ++j) {\n"
      "      double acc = 0.0;\n"
      "      long p;\n"
      "      for (p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];\n"
      "      c[i * n + j] += acc;\n"
      "    }\n"
      "  }\n"
      "}\n";
  return out;
}

}  // namespace sw::kernel
