#include "kernel/reference.h"

#include <cmath>
#include <vector>

namespace sw::kernel {

void referenceGemm(double* c, const double* a, const double* b,
                   std::int64_t m, std::int64_t n, std::int64_t k,
                   double alpha, double beta, std::int64_t kBlock,
                   const std::function<double(double)>& transformA,
                   const std::function<double(double)>& epilogueC) {
  // Pre-transform A exactly as the pipeline does on the SPM tile:
  // prologue first (fused quantization), then the alpha fold.
  std::vector<double> aPrime(static_cast<std::size_t>(m * k));
  for (std::int64_t i = 0; i < m * k; ++i) {
    double v = a[i];
    if (transformA) v = transformA(v);
    aPrime[static_cast<std::size_t>(i)] = v * alpha;
  }

  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) c[i * n + j] *= beta;

  for (std::int64_t kb = 0; kb < k; kb += kBlock) {
    const std::int64_t kEnd = kb + kBlock < k ? kb + kBlock : k;
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::int64_t p = kb; p < kEnd; ++p)
          acc += aPrime[static_cast<std::size_t>(i * k + p)] * b[p * n + j];
        c[i * n + j] += acc;
      }
  }

  if (epilogueC)
    for (std::int64_t i = 0; i < m * n; ++i) c[i] = epilogueC(c[i]);
}

void referenceBatchedGemm(double* c, const double* a, const double* b,
                          std::int64_t batch, std::int64_t m, std::int64_t n,
                          std::int64_t k, double alpha, double beta,
                          std::int64_t kBlock) {
  for (std::int64_t bi = 0; bi < batch; ++bi)
    referenceGemm(c + bi * m * n, a + bi * m * k, b + bi * k * n, m, n, k,
                  alpha, beta, kBlock);
}

double maxAbsDiff(const double* x, const double* y, std::int64_t count) {
  double worst = 0.0;
  for (std::int64_t i = 0; i < count; ++i) {
    const double d = std::fabs(x[i] - y[i]);
    if (d > worst) worst = d;
  }
  return worst;
}

}  // namespace sw::kernel
