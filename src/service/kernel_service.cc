#include "service/kernel_service.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "codegen/athread_printer.h"
#include "core/kernel_serdes.h"
#include "frontend/pattern.h"
#include "jit/native_engine.h"
#include "runtime/plan.h"
#include "support/digest.h"
#include "support/error.h"
#include "support/format.h"
#include "support/histogram.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace sw::service {

namespace fs = std::filesystem;

namespace {

/// Disk-entry magic; the directory name carries the serdes version, the
/// magic guards against foreign files landing in the cache directory.
constexpr std::string_view kDiskMagic = "swkcache1 ";

std::string versionDirName() {
  return strCat("v", core::kKernelSerdesVersion);
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Where the tuning database lives: an explicit tuningDir wins, else the
/// issue's `<cacheDir>/tune` layout, else nowhere (no persistence).
std::string effectiveTuningDir(const KernelServiceConfig& config) {
  if (!config.tuningDir.empty()) return config.tuningDir;
  if (!config.cacheDir.empty())
    return (fs::path(config.cacheDir) / "tune").string();
  return {};
}

/// Record one request latency into the named histogram, refresh the
/// percentile gauges, and return the histogram bucket label so the span
/// can carry it (coarse timing survives even when the raw trace is off).
std::string recordLatency(const char* histogram, double seconds) {
  const double ms = seconds * 1e3;
  metrics::HistogramRegistry::global().record(histogram, ms);
  metrics::HistogramRegistry::global().publishPercentiles(
      metrics::MetricsRegistry::global(), "ms");
  return metrics::Histogram::bucketLabel(metrics::Histogram::bucketIndex(ms));
}

}  // namespace

const char* toString(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kMemoryHit: return "memory_hit";
    case ServeOutcome::kDiskHit: return "disk_hit";
    case ServeOutcome::kCompiled: return "compile";
    case ServeOutcome::kShared: return "shared";
  }
  return "unknown";
}

KernelService::KernelService(sunway::ArchConfig arch,
                             KernelServiceConfig config)
    : KernelService(
          [archCopy = arch](const core::CodegenOptions& options) {
            return core::SwGemmCompiler(archCopy).compile(options);
          },
          arch, std::move(config)) {}

KernelService::KernelService(CompileFn compileFn, sunway::ArchConfig arch,
                             KernelServiceConfig config)
    : compileFn_(std::move(compileFn)),
      arch_(arch),
      config_(std::move(config)),
      tuningDb_(effectiveTuningDir(config_)) {}

KernelService::KernelPtr KernelService::compile(
    const core::CodegenOptions& options) {
  ServeOutcome outcome;
  return compile(options, &outcome);
}

KernelService::KernelPtr KernelService::compile(
    const core::CodegenOptions& options, ServeOutcome* outcome) {
  const std::string key = core::canonicalRequestKey(options, arch_);
  trace::Span span("service.request",
                   {trace::arg("key", digestHex(fnv1a64(key)))});
  const double start = nowSeconds();
  KernelPtr kernel = serve(key, options, outcome);
  span.addArg(trace::arg("outcome", toString(*outcome)));
  span.addArg(trace::arg(
      "latency_bucket",
      recordLatency("service.compile_latency", nowSeconds() - start)));
  return kernel;
}

KernelService::KernelPtr KernelService::serve(
    const std::string& key, const core::CodegenOptions& options,
    ServeOutcome* outcome) {
  std::promise<KernelPtr> promise;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++stats_.requests;
    if (auto it = index_.find(key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.memoryHits;
      *outcome = ServeOutcome::kMemoryHit;
      publishGaugesLocked();
      return it->second->kernel;
    }
    if (auto it = inflight_.find(key); it != inflight_.end()) {
      ++stats_.shared;
      *outcome = ServeOutcome::kShared;
      publishGaugesLocked();
      std::shared_future<KernelPtr> future = it->second;
      lock.unlock();
      return future.get();  // rethrows the leader's failure, if any
    }
    inflight_.emplace(key, promise.get_future().share());
  }

  // Leader path: this thread owns the (single) compile for the key.
  try {
    KernelPtr kernel = produce(key, options, outcome);
    promise.set_value(kernel);
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
    publishGaugesLocked();
    return kernel;
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
    publishGaugesLocked();
    throw;
  }
}

KernelService::KernelPtr KernelService::produce(
    const std::string& key, const core::CodegenOptions& options,
    ServeOutcome* outcome) {
  std::int64_t bytes = 0;
  if (KernelPtr fromDisk = tryLoadFromDisk(key, &bytes)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.diskHits;
    admitLocked(key, fromDisk, bytes);
    *outcome = ServeOutcome::kDiskHit;
    return fromDisk;
  }

  core::CompiledKernel compiled = compileFn_(options);
  // Custom CompileFn implementations (test doubles) may hand back plan-less
  // kernels; every kernel served by the cache carries its lowered plan.
  if (!compiled.plan) compiled.plan = rt::lowerToPlan(compiled.program);
  auto kernel =
      std::make_shared<const core::CompiledKernel>(std::move(compiled));
  const std::string serialized = serializeCompiledKernel(*kernel);
  storeToDisk(key, serialized);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.compiles;
  admitLocked(key, kernel, static_cast<std::int64_t>(serialized.size()));
  *outcome = ServeOutcome::kCompiled;
  return kernel;
}

void KernelService::admitLocked(const std::string& key,
                                const KernelPtr& kernel, std::int64_t bytes) {
  Entry entry{key, kernel, bytes, {}};
  if (config_.nativeEngine) {
    // The kernel's JIT object is part of its cache footprint: charge the
    // artifact against the same byte budget, and let eviction reclaim it.
    jit::NativeEngineConfig jitConfig;
    jitConfig.cacheDir = config_.jitCacheDir;
    const std::int64_t soBytes =
        jit::nativeObjectBytes(kernel->program, jitConfig);
    if (soBytes > 0) {
      entry.bytes += soBytes;
      entry.soPath = jit::nativeObjectPath(
          jitConfig, jit::nativeObjectDigest(kernel->program));
    }
  }
  stats_.bytes += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  while (lru_.size() > 1 &&
         (lru_.size() > config_.maxEntries || stats_.bytes > config_.maxBytes)) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    ++stats_.evictions;
    if (!victim.soPath.empty()) {
      // Best effort: the engine recompiles on demand, so a removal failure
      // only means the budget frees slower than accounted.
      std::error_code ec;
      fs::remove(victim.soPath, ec);
      SW_DEBUG("service", "event=evict_jit_object path=", victim.soPath,
               " removed=", ec ? "false" : "true");
    }
    index_.erase(victim.key);
    lru_.pop_back();
  }
  stats_.entries = lru_.size();
}

void KernelService::publishGaugesLocked() const {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
  registry.set("service.cache.requests",
               static_cast<double>(stats_.requests));
  registry.set("service.cache.memory_hits",
               static_cast<double>(stats_.memoryHits));
  registry.set("service.cache.disk_hits",
               static_cast<double>(stats_.diskHits));
  registry.set("service.cache.compiles",
               static_cast<double>(stats_.compiles));
  registry.set("service.cache.shared", static_cast<double>(stats_.shared));
  registry.set("service.cache.evictions",
               static_cast<double>(stats_.evictions));
  registry.set("service.cache.corrupt_disk_entries",
               static_cast<double>(stats_.corruptDiskEntries));
  registry.set("service.cache.entries", static_cast<double>(stats_.entries));
  registry.set("service.cache.bytes", static_cast<double>(stats_.bytes));
  registry.set("service.cache.hit_rate", stats_.hitRate());
}

std::string KernelService::diskPathForKey(
    const std::string& canonicalKey) const {
  if (config_.cacheDir.empty()) return {};
  return (fs::path(config_.cacheDir) / versionDirName() /
          (digestHex(fnv1a64(canonicalKey)) + ".swk"))
      .string();
}

KernelService::KernelPtr KernelService::tryLoadFromDisk(
    const std::string& key, std::int64_t* bytes) {
  const std::string path = diskPathForKey(key);
  if (path.empty()) return nullptr;
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;  // plain miss
  std::ostringstream body;
  body << in.rdbuf();
  const std::string content = body.str();

  try {
    if (content.compare(0, kDiskMagic.size(), kDiskMagic) != 0)
      throwInput("bad cache-entry magic");
    std::size_t pos = kDiskMagic.size();
    const std::size_t colon = content.find(':', pos);
    if (colon == std::string::npos)
      throwInput("cache entry missing key length");
    const std::string lenText = content.substr(pos, colon - pos);
    char* end = nullptr;
    const long long keyLen = std::strtoll(lenText.c_str(), &end, 10);
    if (end != lenText.c_str() + lenText.size() || keyLen < 0 ||
        colon + 1 + static_cast<std::size_t>(keyLen) > content.size())
      throwInput("cache entry key truncated");
    const std::string storedKey =
        content.substr(colon + 1, static_cast<std::size_t>(keyLen));
    if (storedKey != key)
      throwInput("cache entry key mismatch (digest collision or stale file)");
    const std::string serialized =
        content.substr(colon + 1 + static_cast<std::size_t>(keyLen));
    *bytes = static_cast<std::int64_t>(serialized.size());
    return std::make_shared<const core::CompiledKernel>(
        core::deserializeCompiledKernel(serialized));
  } catch (const Error& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.corruptDiskEntries;
    }
    SW_WARN("service",
            "event=cache_entry_corrupt path=", path,
            " action=recompile error=\"", e.what(), "\"");
    std::error_code ec;
    fs::remove(path, ec);  // best effort; the rewrite overwrites anyway
    return nullptr;
  }
}

void KernelService::storeToDisk(const std::string& key,
                                const std::string& serialized) {
  const std::string path = diskPathForKey(key);
  if (path.empty()) return;
  try {
    fs::create_directories(fs::path(path).parent_path());
    // Atomic publish: write the full entry to a per-thread temp name in
    // the same directory, then rename over the final path.  Readers never
    // observe a partial file.
    static std::atomic<std::uint64_t> tmpCounter{0};
    const std::string tmpPath =
        strCat(path, ".tmp.", tmpCounter.fetch_add(1));
    {
      std::ofstream out(tmpPath, std::ios::binary | std::ios::trunc);
      if (!out) throwInput(strCat("cannot open '", tmpPath, "'"));
      out << kDiskMagic << key.size() << ':' << key << serialized;
      out.flush();
      if (!out) throwInput(strCat("short write to '", tmpPath, "'"));
    }
    fs::rename(tmpPath, path);
    SW_DEBUG("service", "event=cache_entry_stored path=", path,
             " bytes=", serialized.size());
  } catch (const std::exception& e) {
    // A failed store degrades to a cold cache, never a failed request.
    SW_WARN("service", "event=cache_store_failed path=", path,
            " error=\"", e.what(), "\"");
  }
}

core::CompiledKernel KernelService::compileSource(const std::string& source,
                                                  core::CodegenOptions base,
                                                  ServeOutcome* outcome) {
  frontend::GemmPatternInfo pattern;
  {
    trace::Span span("frontend.parse",
                     {trace::arg("sourceBytes",
                                 static_cast<std::int64_t>(source.size()))});
    pattern = frontend::analyzeGemmSource(source);
  }
  base.batched = pattern.batched;
  base.transposeA = pattern.transposeA;
  base.transposeB = pattern.transposeB;
  switch (pattern.fusion) {
    case frontend::FusionPattern::kNone:
      base.fusion = core::FusionKind::kNone;
      break;
    case frontend::FusionPattern::kPrologueQuantize:
      base.fusion = core::FusionKind::kPrologueQuantize;
      break;
    case frontend::FusionPattern::kEpilogueRelu:
      base.fusion = core::FusionKind::kEpilogueRelu;
      break;
  }
  ServeOutcome localOutcome;
  KernelPtr cached = compile(base, &localOutcome);
  if (outcome != nullptr) *outcome = localOutcome;
  // The cache stores the canonical kernel; rename to the user's function
  // and re-print the sources under that name (printing is cheap relative
  // to the pipeline).
  core::CompiledKernel kernel = *cached;
  kernel.program.name = pattern.functionName;
  codegen::GeneratedSources sources =
      codegen::printAthreadSources(kernel.program);
  kernel.cpeSource = std::move(sources.cpe);
  kernel.mpeSource = std::move(sources.mpe);
  return kernel;
}

std::vector<KernelService::BatchResult> KernelService::compileBatch(
    const std::vector<core::CodegenOptions>& requests) {
  std::vector<BatchResult> results(requests.size());
  if (requests.empty()) return results;

  int threads = config_.threads;
  if (threads <= 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads <= 0) threads = 4;
  const std::size_t workerCount =
      std::min<std::size_t>(static_cast<std::size_t>(threads),
                            requests.size());

  std::atomic<std::size_t> nextRequest{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = nextRequest.fetch_add(1);
      if (i >= requests.size()) return;
      BatchResult& result = results[i];
      result.options = requests[i];
      const double start = nowSeconds();
      try {
        result.kernel = compile(requests[i], &result.outcome);
      } catch (const Error& e) {
        result.error = e.what();
      }
      result.latencySeconds = nowSeconds() - start;
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workerCount);
  for (std::size_t i = 0; i < workerCount; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

std::vector<KernelService::BatchResult> KernelService::compileManifest(
    const std::string& manifestText) {
  // Parse first: malformed lines become per-line errors (never aborting
  // the batch), well-formed lines compile together on the worker pool.
  std::vector<BatchResult> results;
  std::vector<core::CodegenOptions> valid;
  std::vector<std::size_t> validSlots;  // results index per valid request
  std::istringstream manifest(manifestText);
  std::string line;
  for (int lineNumber = 1; std::getline(manifest, line); ++lineNumber) {
    const std::size_t nonBlank = line.find_first_not_of(" \t\r");
    if (nonBlank == std::string::npos || line[nonBlank] == '#') continue;
    BatchResult result;
    try {
      result.options = parseManifestLine(line);
      validSlots.push_back(results.size());
      valid.push_back(result.options);
    } catch (const Error& e) {
      result.error = strCat("manifest line ", lineNumber, ": ", e.what());
    }
    results.push_back(std::move(result));
  }

  std::vector<BatchResult> compiled = compileBatch(valid);
  for (std::size_t i = 0; i < compiled.size(); ++i)
    results[validSlots[i]] = std::move(compiled[i]);
  return results;
}

KernelServiceStats KernelService::stats() const {
  // The tune counters are guarded by tuneMutex_, the rest by mutex_;
  // lock order everywhere is tuneMutex_ before mutex_.
  std::lock_guard<std::mutex> tuneLock(tuneMutex_);
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void KernelService::clearMemoryCache() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
  publishGaugesLocked();
}

// --- graceful degradation -----------------------------------------------

namespace {

/// Human name of a ladder rung, used in DegradeStep and log lines.
std::string tierName(const core::CodegenOptions& options,
                     rt::ExecEngine engine) {
  if (engine == rt::ExecEngine::kNative) return "native-jit";
  if (options.useAsm) return "asm-microkernel";
  if (options.useRma) return "naive-compute";
  return "no-rma";
}

/// Metric suffix a downgrade *to* this rung records under service.degrade.
const char* degradeMetric(const std::string& tier) {
  if (tier == "asm-microkernel") return "service.degrade.to_plan";
  if (tier == "naive-compute") return "service.degrade.to_naive";
  if (tier == "no-rma") return "service.degrade.to_no_rma";
  return "service.degrade.to_estimator";
}

void recordDegrade(const std::string& from, const std::string& to,
                   const std::string& error) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
  registry.add("service.degrade.total", 1.0);
  registry.add(degradeMetric(to), 1.0);
  trace::Span span("service.degrade",
                   {trace::arg("from", from), trace::arg("to", to),
                    trace::arg("error", error)},
                   "service");
  SW_WARN("service", "event=degrade from=", from, " to=", to,
          " error=\"", error, "\"");
}

}  // namespace

void KernelService::setRunFnForTest(RunFn runFn) {
  runFn_ = std::move(runFn);
}

KernelService::ResilientRunResult KernelService::runResilient(
    const core::CodegenOptions& options, const core::GemmProblem& problem,
    std::span<const double> a, std::span<const double> b, std::span<double> c,
    const core::FunctionalRunConfig& runConfig) {
  trace::Span span("service.resilient_run",
                   {trace::arg("m", problem.m), trace::arg("n", problem.n),
                    trace::arg("k", problem.k)},
                   "service");
  const double start = nowSeconds();

  RunFn run = runFn_;
  if (!run) {
    run = [this](const core::CompiledKernel& kernel,
                 const core::GemmProblem& p, std::span<const double> ra,
                 std::span<const double> rb, std::span<double> rc,
                 const core::FunctionalRunConfig& rc2) {
      return core::runGemmFunctional(kernel, arch_, p, ra, rb, rc, rc2);
    };
  }

  // The ladder trades performance features for protocol surface: leave
  // native machine code for the simulator first, then drop the asm
  // micro-kernel, then the RMA broadcasts (and with them the pipelined
  // schedule).  Rungs equal to an earlier one are skipped, so a request
  // that already is `--no-rma` has a two-rung ladder.  The native rung
  // exists only when the service opted in and the request runs the
  // default plan engine (an explicit tree-walk request stays tree-walk).
  struct Rung {
    core::CodegenOptions options;
    rt::ExecEngine engine;
  };
  std::vector<Rung> rungs;
  if (config_.nativeEngine && runConfig.engine == rt::ExecEngine::kPlan)
    rungs.push_back(Rung{options, rt::ExecEngine::kNative});
  rungs.push_back(Rung{options, runConfig.engine});
  core::CodegenOptions naive = options;
  naive.useAsm = false;
  core::CodegenOptions noRma = naive;
  noRma.useRma = false;
  noRma.hideLatency = false;
  for (const core::CodegenOptions& rung : {naive, noRma}) {
    const std::string key = core::canonicalRequestKey(rung, arch_);
    bool duplicate = false;
    for (const Rung& seen : rungs)
      duplicate |= seen.engine == runConfig.engine &&
                   core::canonicalRequestKey(seen.options, arch_) == key;
    if (!duplicate) rungs.push_back(Rung{rung, runConfig.engine});
  }

  ResilientRunResult result;
  std::string lastTier = tierName(options, rungs.front().engine);
  std::string lastError;
  KernelPtr lastKernel;
  // The inputs must survive a failed attempt unmodified, so every rung
  // works on a private copy of C and only a success is copied back.
  std::vector<double> scratch;
  for (const Rung& rung : rungs) {
    const std::string tier = tierName(rung.options, rung.engine);
    if (!lastError.empty()) {
      recordDegrade(lastTier, tier, lastError);
      result.degradations.push_back(DegradeStep{lastTier, tier, lastError});
    }
    lastTier = tier;
    try {
      KernelPtr kernel = compile(rung.options);
      lastKernel = kernel;
      scratch.assign(c.begin(), c.end());
      core::FunctionalRunConfig rungConfig = runConfig;
      rungConfig.engine = rung.engine;
      if (rung.engine == rt::ExecEngine::kNative &&
          rungConfig.jitCacheDir.empty())
        rungConfig.jitCacheDir = config_.jitCacheDir;
      result.outcome = run(*kernel, problem, a, b,
                           std::span<double>(scratch), rungConfig);
      std::copy(scratch.begin(), scratch.end(), c.begin());
      result.servedOptions = rung.options;
      span.addArg(trace::arg(
          "latency_bucket",
          recordLatency("service.run_latency", nowSeconds() - start)));
      return result;
    } catch (const Error& error) {
      lastError = error.what();
    }
  }

  // Every functional rung failed; the symmetric estimator cannot hang or
  // race (sequential, no data), so it terminates the ladder with timing
  // from the safest compiled schedule.  Without any compiled kernel there
  // is nothing left to serve — surface the last failure.
  recordDegrade(lastTier, "estimator", lastError);
  result.degradations.push_back(
      DegradeStep{lastTier, "estimator", lastError});
  if (!lastKernel) {
    throw InternalError(strCat(
        "resilient run: every schedule rung failed to compile; last error: ",
        lastError));
  }
  // The estimator carries no data: zero-fill C so the caller never sees
  // the last failed attempt's partial writes as if they were a result.
  std::fill(c.begin(), c.end(), 0.0);
  result.outcome = core::estimateGemm(*lastKernel, arch_, problem);
  result.servedOptions = lastKernel->options;
  result.usedEstimator = true;
  span.addArg(trace::arg(
      "latency_bucket",
      recordLatency("service.run_latency", nowSeconds() - start)));
  return result;
}

// --- schedule autotuning ------------------------------------------------

void KernelService::setSearchFnForTest(SearchFn searchFn) {
  searchFn_ = std::move(searchFn);
}

std::string KernelService::tuningDbPath(const std::string& tuneKey) const {
  return tuningDb_.pathForKey(tuneKey);
}

void KernelService::publishTunerGaugesLocked() const {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
  registry.set("tuner.searches", static_cast<double>(stats_.tuneSearches));
  registry.set("tuner.db_hits", static_cast<double>(stats_.tuneDbHits));
  registry.set("tuner.shared", static_cast<double>(stats_.tuneShared));
  const tuning::TuningDbStats& db = tuningDb_.stats();
  registry.set("tuner.db_misses", static_cast<double>(db.misses));
  registry.set("tuner.db_corrupt", static_cast<double>(db.corrupt));
  registry.set("tuner.db_stale", static_cast<double>(db.stale));
  registry.set("tuner.db_stores", static_cast<double>(db.stores));
}

tuning::TunedScheduleRecord KernelService::produceSchedule(
    const std::string& tuneKey, const core::CodegenOptions& base,
    const core::GemmProblem& problem, bool* fromDisk) {
  {
    // TuningDb is not internally locked; tuneMutex_ serializes its file
    // and counter traffic (the lookup/store calls are short — the search
    // itself runs unlocked below).
    std::lock_guard<std::mutex> lock(tuneMutex_);
    if (std::optional<tuning::TunedScheduleRecord> cached =
            tuningDb_.lookup(tuneKey)) {
      *fromDisk = true;
      ++stats_.tuneDbHits;
      SW_INFO("service", "event=tune_db_hit schedule=",
              cached->schedule.label(), " gflops=", cached->gflops,
              " path=", tuningDb_.pathForKey(tuneKey));
      return *cached;
    }
  }

  *fromDisk = false;
  SearchFn search = searchFn_;
  if (!search) {
    search = [](const core::CodegenOptions& b, const sunway::ArchConfig& a,
                const core::GemmProblem& p, const tuning::TunerConfig& c) {
      return tuning::searchSchedules(b, a, p, c);
    };
  }
  const tuning::ScheduleSearchResult result =
      search(base, arch_, problem, config_.tuner);
  const tuning::CandidateResult& best = result.best();

  tuning::TunedScheduleRecord record;
  record.schedule = best.candidate;
  // The DB keeps the GFLOPS figure the search actually decided by: the
  // mesh measurement when validation ran at the full problem shape, the
  // stage-1 estimate otherwise.
  record.gflops = (result.validationAtFullShape && best.validated)
                      ? best.measuredGflops
                      : best.estimatedGflops;
  record.measuredGflops = best.validated ? best.measuredGflops : 0.0;
  record.verdict = best.report.roofline.verdict;
  record.candidatesEnumerated = static_cast<int>(result.candidates().size());
  record.candidatesFeasible = result.feasibleCount();
  record.candidatesValidated = result.validatedCount();
  record.searchSeconds = result.searchSeconds;

  {
    std::lock_guard<std::mutex> lock(tuneMutex_);
    tuningDb_.store(tuneKey, record);
    ++stats_.tuneSearches;
  }
  SW_INFO("service", "event=tune_search_done schedule=",
          record.schedule.label(), " gflops=", record.gflops,
          " candidates=", record.candidatesEnumerated,
          " feasible=", record.candidatesFeasible,
          " validated=", record.candidatesValidated,
          " seconds=", record.searchSeconds);
  return record;
}

KernelService::ResolvedSchedule KernelService::resolveSchedule(
    const core::CodegenOptions& base, const core::GemmProblem& problem) {
  const std::string tuneKey = tuning::canonicalTuneKey(base, arch_, problem);
  trace::Span span("tuner.resolve",
                   {trace::arg("key", digestHex(fnv1a64(tuneKey))),
                    trace::arg("m", problem.m), trace::arg("n", problem.n),
                    trace::arg("k", problem.k)},
                   "tuner");
  const double start = nowSeconds();

  auto finish = [&](tuning::TunedScheduleRecord record,
                    ResolvedSchedule::Source source, const char* outcome) {
    span.addArg(trace::arg("outcome", outcome));
    span.addArg(trace::arg("schedule", record.schedule.label()));
    span.addArg(trace::arg(
        "latency_bucket",
        recordLatency("tuner.resolve_latency", nowSeconds() - start)));
    ResolvedSchedule resolved;
    resolved.options = record.schedule.apply(base);
    resolved.record = std::move(record);
    resolved.source = source;
    return resolved;
  };

  std::promise<tuning::TunedScheduleRecord> promise;
  {
    std::unique_lock<std::mutex> lock(tuneMutex_);
    if (auto it = tuneInflight_.find(tuneKey); it != tuneInflight_.end()) {
      std::shared_future<tuning::TunedScheduleRecord> future = it->second;
      lock.unlock();
      // Rethrows the leader's failure, if any.
      tuning::TunedScheduleRecord record = future.get();
      {
        std::lock_guard<std::mutex> relock(tuneMutex_);
        ++stats_.tuneShared;
        publishTunerGaugesLocked();
      }
      return finish(std::move(record), ResolvedSchedule::Source::kShared,
                    "shared");
    }
    tuneInflight_.emplace(tuneKey, promise.get_future().share());
  }

  // Leader path: this thread owns the (single) search for the key.
  bool fromDisk = false;
  try {
    tuning::TunedScheduleRecord record =
        produceSchedule(tuneKey, base, problem, &fromDisk);
    promise.set_value(record);
    {
      std::lock_guard<std::mutex> lock(tuneMutex_);
      tuneInflight_.erase(tuneKey);
      publishTunerGaugesLocked();
    }
    return finish(std::move(record),
                  fromDisk ? ResolvedSchedule::Source::kDiskHit
                           : ResolvedSchedule::Source::kSearch,
                  fromDisk ? "db_hit" : "search");
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(tuneMutex_);
    tuneInflight_.erase(tuneKey);
    publishTunerGaugesLocked();
    throw;
  }
}

// --- manifest parsing ---------------------------------------------------

namespace {

std::int64_t parsePositiveInt(const std::string& text,
                              const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE ||
      v <= 0)
    throwInput(strCat(what, " must be a positive integer, got '", text, "'"));
  return v;
}

/// "MxNxK" -> three positive integers.
void parseTileShape(const std::string& text, core::CodegenOptions& options) {
  const std::size_t x1 = text.find('x');
  const std::size_t x2 = x1 == std::string::npos ? std::string::npos
                                                 : text.find('x', x1 + 1);
  if (x1 == std::string::npos || x2 == std::string::npos)
    throwInput(strCat("tile shape must look like MxNxK, got '", text, "'"));
  options.tileM = parsePositiveInt(text.substr(0, x1), "tile M");
  options.tileN = parsePositiveInt(text.substr(x1 + 1, x2 - x1 - 1), "tile N");
  options.tileK = parsePositiveInt(text.substr(x2 + 1), "tile K");
}

}  // namespace

core::CodegenOptions parseManifestLine(const std::string& line) {
  core::CodegenOptions options;
  std::istringstream tokens(line.substr(0, line.find('#')));
  std::string token;
  while (tokens >> token) {
    if (token.rfind("tile=", 0) == 0) {
      parseTileShape(token.substr(5), options);
    } else if (token.rfind("strip=", 0) == 0) {
      options.stripFactor = parsePositiveInt(token.substr(6), "strip factor");
    } else if (token == "batch") {
      options.batched = true;
    } else if (token == "no-asm") {
      options.useAsm = false;
    } else if (token == "no-rma") {
      options.useRma = false;
      options.hideLatency = false;
    } else if (token == "no-hiding") {
      options.hideLatency = false;
    } else if (token == "fuse=relu") {
      options.fusion = core::FusionKind::kEpilogueRelu;
    } else if (token == "fuse=quantize") {
      options.fusion = core::FusionKind::kPrologueQuantize;
    } else if (token == "transA") {
      options.transposeA = true;
    } else if (token == "transB") {
      options.transposeB = true;
    } else {
      throwInput(strCat("unknown manifest token '", token,
                        "' (expected tile=MxNxK, strip=S, batch, no-asm, "
                        "no-rma, no-hiding, fuse=relu|quantize, transA, "
                        "transB)"));
    }
  }
  return options;
}

std::vector<core::CodegenOptions> parseWarmShapes(const std::string& shapes) {
  std::vector<core::CodegenOptions> requests;
  std::size_t begin = 0;
  while (begin <= shapes.size()) {
    std::size_t end = shapes.find(',', begin);
    if (end == std::string::npos) end = shapes.size();
    const std::string item = shapes.substr(begin, end - begin);
    if (!item.empty()) {
      core::CodegenOptions options;
      parseTileShape(item, options);
      requests.push_back(options);
    }
    begin = end + 1;
  }
  if (requests.empty())
    throwInput("--warm needs a comma-separated list of tile shapes MxNxK");
  return requests;
}

}  // namespace sw::service
