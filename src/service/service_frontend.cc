#include "service/service_frontend.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "support/error.h"
#include "support/format.h"
#include "support/histogram.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace sw::service {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double steadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Record one queue-wait latency (ms) and refresh the percentile gauges;
/// returns the bucket label for the request's trace span.
std::string recordQueueWait(double seconds) {
  const double ms = seconds * 1e3;
  metrics::HistogramRegistry::global().record("service.admission.queue_wait",
                                              ms);
  metrics::HistogramRegistry::global().publishPercentiles(
      metrics::MetricsRegistry::global(), "ms");
  return metrics::Histogram::bucketLabel(metrics::Histogram::bucketIndex(ms));
}

void countShed(const char* cause) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
  registry.add("service.admission.shed", 1.0);
  registry.add(strCat("service.admission.shed_", cause), 1.0);
}

}  // namespace

ServiceFrontend::ServiceFrontend(KernelService& service,
                                 AdmissionConfig config, ClockFn clock)
    : service_(service),
      config_(std::move(config)),
      clock_(clock ? std::move(clock) : ClockFn(steadyNowSeconds)),
      quotas_(config_),
      compileBreaker_("compile", config_.breakerFailureThreshold,
                      config_.breakerCooldownSeconds),
      runBreaker_("run", config_.breakerFailureThreshold,
                  config_.breakerCooldownSeconds),
      tuneBreaker_("tune", config_.breakerFailureThreshold,
                   config_.breakerCooldownSeconds) {
  const int workers = std::max(1, config_.workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ServiceFrontend::~ServiceFrontend() { shutdown(); }

CircuitBreaker& ServiceFrontend::breaker(Domain domain) {
  switch (domain) {
    case Domain::kCompile: return compileBreaker_;
    case Domain::kRun: return runBreaker_;
    case Domain::kTune: return tuneBreaker_;
  }
  return compileBreaker_;
}

std::int64_t ServiceFrontend::breakerTrips() const {
  return compileBreaker_.trips() + runBreaker_.trips() + tuneBreaker_.trips();
}

double ServiceFrontend::admit(const RequestContext& ctx, const char* what) {
  const double now = clock_();
  double budget = ctx.deadlineSeconds;
  if (budget == kInf) budget = config_.defaultDeadlineSeconds;
  if (!(budget > 0.0)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.submitted;
      ++stats_.shedDeadlineAtEnqueue;
      publishGaugesLocked();
    }
    countShed("deadline");
    throw OverloadError(
        OverloadKind::kDeadlineExpired, ctx.tenant,
        strCat(what, " request from tenant '", ctx.tenant,
               "' arrived with an already-expired deadline (budget ", budget,
               " s)"));
  }
  if (!quotas_.tryAcquire(ctx.tenant, now)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.submitted;
      ++stats_.shedQuota;
      publishGaugesLocked();
    }
    countShed("quota");
    throw OverloadError(OverloadKind::kQuotaExhausted, ctx.tenant,
                        strCat("tenant '", ctx.tenant, "' is over quota: ",
                               what, " request shed by the token bucket"));
  }
  return budget == kInf ? kInf : now + budget;
}

std::future<CompileResponse> ServiceFrontend::submitCompile(
    const core::CodegenOptions& options, const RequestContext& ctx) {
  const double deadlineAt = admit(ctx, "compile");
  const double now = clock_();

  // While the compile breaker is fully open there is no point queueing
  // doomed work; half-open traffic passes through so the worker-side probe
  // can test recovery.
  if (compileBreaker_.state(now) == CircuitBreaker::State::kOpen) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.breakerFastFails;
      publishGaugesLocked();
    }
    countShed("circuit_open");
    throw OverloadError(OverloadKind::kCircuitOpen, ctx.tenant,
                        "compile-pipeline circuit breaker is open");
  }

  Queued item;
  item.options = options;
  item.ctx = ctx;
  item.enqueuedAt = now;
  item.deadlineAt = deadlineAt;
  std::future<CompileResponse> future = item.promise.get_future();

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      throw OverloadError(OverloadKind::kShutdown, ctx.tenant,
                          "service frontend is shutting down");
    }
    ++stats_.submitted;
    if (queue_.size() >= config_.maxQueueDepth) {
      // A full queue sheds exactly one request: the newest strictly-lower-
      // priority entry when the arrival outranks it, else the arrival.
      auto victim = queue_.empty() ? queue_.end() : std::prev(queue_.end());
      if (victim != queue_.end() &&
          -victim->first.first < ctx.priority) {
        victim->second.promise.set_exception(std::make_exception_ptr(
            OverloadError(OverloadKind::kQueueFull, victim->second.ctx.tenant,
                          strCat("request from tenant '",
                                 victim->second.ctx.tenant,
                                 "' displaced from the full admission queue "
                                 "by a higher-priority arrival"))));
        queue_.erase(victim);
        ++stats_.displaced;
        ++stats_.shedQueueFull;
        metrics::MetricsRegistry::global().add("service.admission.displaced",
                                               1.0);
        countShed("queue_full");
      } else {
        ++stats_.shedQueueFull;
        publishGaugesLocked();
        lock.unlock();
        countShed("queue_full");
        throw OverloadError(
            OverloadKind::kQueueFull, ctx.tenant,
            strCat("admission queue full (depth ", config_.maxQueueDepth,
                   "); compile request from tenant '", ctx.tenant,
                   "' shed"));
      }
    }
    queue_.emplace(QueueKey{-ctx.priority, nextSeq_++}, std::move(item));
    stats_.queueDepth = static_cast<std::int64_t>(queue_.size());
    stats_.queueDepthPeak = std::max(stats_.queueDepthPeak, stats_.queueDepth);
    publishGaugesLocked();
  }
  cv_.notify_one();
  return future;
}

CompileResponse ServiceFrontend::compile(const core::CodegenOptions& options,
                                         const RequestContext& ctx) {
  return submitCompile(options, ctx).get();
}

void ServiceFrontend::workerLoop() {
  while (true) {
    Queued item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      auto node = queue_.extract(queue_.begin());
      item = std::move(node.mapped());
      stats_.queueDepth = static_cast<std::int64_t>(queue_.size());
      publishGaugesLocked();
    }
    serveCompile(std::move(item), clock_());
  }
}

void ServiceFrontend::serveCompile(Queued item, double dequeuedAt) {
  const double waitSeconds = std::max(0.0, dequeuedAt - item.enqueuedAt);
  trace::Span span(
      "admission.request",
      {trace::arg("tenant", item.ctx.tenant),
       trace::arg("priority", static_cast<std::int64_t>(item.ctx.priority)),
       trace::arg("wait_bucket", recordQueueWait(waitSeconds))},
      "service");

  if (dequeuedAt > item.deadlineAt) {
    span.addArg(trace::arg("outcome", "deadline_miss"));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.deadlineMisses;
      publishGaugesLocked();
    }
    metrics::MetricsRegistry::global().add("service.admission.deadline_miss",
                                           1.0);
    countShed("deadline");
    item.promise.set_exception(std::make_exception_ptr(OverloadError(
        OverloadKind::kDeadlineMiss, item.ctx.tenant,
        strCat("compile request from tenant '", item.ctx.tenant,
               "' missed its deadline after ", waitSeconds,
               " s in the admission queue"))));
    return;
  }

  if (!compileBreaker_.allowRequest(dequeuedAt)) {
    span.addArg(trace::arg("outcome", "circuit_open"));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.breakerFastFails;
      publishGaugesLocked();
    }
    countShed("circuit_open");
    item.promise.set_exception(std::make_exception_ptr(
        OverloadError(OverloadKind::kCircuitOpen, item.ctx.tenant,
                      "compile-pipeline circuit breaker is open")));
    return;
  }

  try {
    CompileResponse response;
    response.kernel = service_.compile(item.options, &response.outcome);
    compileBreaker_.recordSuccess(clock_());
    response.queueWaitSeconds = waitSeconds;
    response.totalSeconds = std::max(0.0, clock_() - item.enqueuedAt);
    span.addArg(trace::arg("outcome", toString(response.outcome)));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.completed;
      publishGaugesLocked();
    }
    item.promise.set_value(std::move(response));
  } catch (...) {
    compileBreaker_.recordFailure(clock_());
    span.addArg(trace::arg("outcome", "error"));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.failed;
      publishGaugesLocked();
    }
    item.promise.set_exception(std::current_exception());
  }
}

KernelService::ResilientRunResult ServiceFrontend::runGuarded(
    const core::CodegenOptions& options, const core::GemmProblem& problem,
    std::span<const double> a, std::span<const double> b, std::span<double> c,
    const RequestContext& ctx, const core::FunctionalRunConfig& runConfig) {
  admit(ctx, "run");
  const double now = clock_();

  if (!runBreaker_.allowRequest(now)) {
    // Open mesh-run breaker: skip the known-bad mesh entirely and serve
    // the bottom of the runResilient ladder — timing-only estimator with
    // a zero-filled C — until a half-open probe proves recovery.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.breakerFastFails;
      publishGaugesLocked();
    }
    countShed("circuit_open");
    SW_WARN("service", "event=run_breaker_open tenant=", ctx.tenant,
            " action=serve_estimator");
    KernelService::ResilientRunResult result;
    KernelService::KernelPtr kernel = service_.compile(options);
    result.outcome = core::estimateGemm(*kernel, service_.arch(), problem);
    std::fill(c.begin(), c.end(), 0.0);
    result.servedOptions = kernel->options;
    result.usedEstimator = true;
    result.degradations.push_back(KernelService::DegradeStep{
        "admission", "estimator", "mesh-run circuit breaker is open"});
    return result;
  }

  try {
    KernelService::ResilientRunResult result =
        service_.runResilient(options, problem, a, b, c, runConfig);
    // A run that fell all the way to the estimator is a mesh failure for
    // breaker purposes even though the caller got a (timing-only) answer.
    if (result.usedEstimator) {
      runBreaker_.recordFailure(clock_());
    } else {
      runBreaker_.recordSuccess(clock_());
    }
    return result;
  } catch (...) {
    runBreaker_.recordFailure(clock_());
    throw;
  }
}

KernelService::ResolvedSchedule ServiceFrontend::resolveGuarded(
    const core::CodegenOptions& base, const core::GemmProblem& problem,
    const RequestContext& ctx) {
  admit(ctx, "tune");
  const double now = clock_();
  if (!tuneBreaker_.allowRequest(now)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.breakerFastFails;
      publishGaugesLocked();
    }
    countShed("circuit_open");
    throw OverloadError(OverloadKind::kCircuitOpen, ctx.tenant,
                        "tuner-search circuit breaker is open");
  }
  try {
    KernelService::ResolvedSchedule resolved =
        service_.resolveSchedule(base, problem);
    tuneBreaker_.recordSuccess(clock_());
    return resolved;
  } catch (...) {
    tuneBreaker_.recordFailure(clock_());
    throw;
  }
}

void ServiceFrontend::shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (std::thread& worker : workers) worker.join();
  // Workers drain the queue before exiting, but anything enqueued in the
  // shutdown race (or left when workers never ran) must still be answered.
  std::map<QueueKey, Queued> leftovers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftovers.swap(queue_);
    stats_.queueDepth = 0;
    publishGaugesLocked();
  }
  for (auto& [key, item] : leftovers) {
    item.promise.set_exception(std::make_exception_ptr(
        OverloadError(OverloadKind::kShutdown, item.ctx.tenant,
                      "service frontend shut down before the request ran")));
  }
}

FrontendStats ServiceFrontend::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ServiceFrontend::publishGaugesLocked() {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
  registry.set("service.admission.queue_depth",
               static_cast<double>(stats_.queueDepth));
  registry.set("service.admission.queue_depth_peak",
               static_cast<double>(stats_.queueDepthPeak));
  registry.set("service.admission.submitted",
               static_cast<double>(stats_.submitted));
  registry.set("service.admission.completed",
               static_cast<double>(stats_.completed));
  registry.set("service.admission.failed", static_cast<double>(stats_.failed));
}

}  // namespace sw::service
