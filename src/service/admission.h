// Admission-control primitives for overload-safe serving.
//
// The polyhedral pipeline is expensive per cache miss, so under heavy
// traffic the service must shed, degrade and bound latency instead of
// queueing unboundedly behind compiles and tuner searches.  This header
// holds the building blocks ServiceFrontend composes:
//   * RequestContext — who is asking (tenant), how urgent (priority) and
//     how long they are willing to wait (deadline);
//   * TokenBucket / TenantQuotas — per-tenant rate limiting, so one noisy
//     tenant cannot crowd everyone else out of the queue;
//   * CircuitBreaker — per failure domain (compile pipeline, mesh run,
//     tuner search): trips after consecutive failures, fails callers fast
//     while open, and lets exactly one half-open probe through after the
//     cooldown to test recovery.
// All primitives are clock-explicit (the caller passes `now` in seconds)
// so tests drive them deterministically with a fake clock, and internally
// locked so the frontend's worker pool can share them.
//
// Shed requests always surface as a typed OverloadError (support/error.h)
// naming the reason and the tenant — never a silent drop.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sw::service {

/// Per-request serving contract carried alongside the payload.
struct RequestContext {
  /// Quota accounting key; requests without an explicit tenant share the
  /// "default" bucket.
  std::string tenant = "default";

  /// Larger values are served first; ties are FIFO.  The queue displaces
  /// the newest strictly-lower-priority entry when full, so a low-priority
  /// flood can never starve a high-priority request.
  int priority = 0;

  /// Remaining time budget in seconds, measured from enqueue.  Infinity
  /// (the default) means no per-request deadline (the frontend's
  /// configured default still applies); a non-positive budget is already
  /// expired and is rejected at enqueue.
  double deadlineSeconds = std::numeric_limits<double>::infinity();
};

/// Token-bucket parameters for one tenant.  The defaults are generous
/// enough to be "unlimited" in practice; soak/test configs tighten them.
struct TenantQuota {
  double burst = 1e9;            // bucket capacity (max stored tokens)
  double refillPerSecond = 1e9;  // sustained request rate
};

struct AdmissionConfig {
  /// Bounded queue depth; a request arriving when the queue is full is
  /// rejected fast (or displaces a strictly-lower-priority entry).
  std::size_t maxQueueDepth = 256;

  /// Worker threads draining the queue into KernelService::compile.
  int workers = 4;

  /// Deadline applied to requests that carry none of their own; infinity
  /// disables the default deadline.
  double defaultDeadlineSeconds = std::numeric_limits<double>::infinity();

  /// Quota for tenants without an explicit entry in `tenantQuotas`.
  TenantQuota defaultQuota;
  std::map<std::string, TenantQuota> tenantQuotas;

  /// Circuit breakers: consecutive failures before a domain trips, and how
  /// long it stays open before admitting one half-open probe.
  int breakerFailureThreshold = 5;
  double breakerCooldownSeconds = 1.0;
};

/// Classic token bucket with lazy refill.  `now` is any monotonic seconds
/// value; only differences matter.  Not internally locked — TenantQuotas
/// (and tests) serialize access.
class TokenBucket {
 public:
  TokenBucket(TenantQuota quota, double now)
      : quota_(quota), tokens_(quota.burst), lastRefill_(now) {}

  /// Take `tokens` if available; false leaves the bucket untouched.
  bool tryAcquire(double now, double tokens = 1.0);

  /// Tokens currently available (after refilling up to `now`).
  [[nodiscard]] double available(double now);

 private:
  void refill(double now);

  TenantQuota quota_;
  double tokens_;
  double lastRefill_;
};

/// Thread-safe tenant → TokenBucket map, lazily populated from the
/// config's per-tenant overrides (falling back to the default quota).
///
/// Buckets are evicted once idle past their refill-to-burst horizon
/// (burst / refillPerSecond): after that long untouched, a bucket has
/// refilled to capacity and is indistinguishable from a freshly created
/// one, so eviction is semantics-preserving and the map stays bounded by
/// the number of *recently active* tenants instead of growing one entry
/// per tenant name ever seen.
class TenantQuotas {
 public:
  explicit TenantQuotas(const AdmissionConfig& config)
      : defaultQuota_(config.defaultQuota), overrides_(config.tenantQuotas) {}

  /// Acquire one token from `tenant`'s bucket; false = over quota.
  bool tryAcquire(const std::string& tenant, double now);

  /// Live buckets (post-eviction); exposed for tests and gauges.
  [[nodiscard]] std::size_t bucketCount();

 private:
  struct Entry {
    TokenBucket bucket;
    TenantQuota quota;
    double lastAccess = 0.0;
  };

  void evictIdle(double now);

  std::mutex mutex_;
  TenantQuota defaultQuota_;
  std::map<std::string, TenantQuota> overrides_;
  std::map<std::string, Entry> buckets_;
  double lastSweep_ = 0.0;
};

/// Per-failure-domain circuit breaker.
///
/// Closed → normal traffic; `failureThreshold` consecutive failures trip
/// it open (counted in trips() and the service.admission.breaker_trip
/// metric).  Open → allowRequest() refuses until `cooldownSeconds`
/// elapsed, then grants exactly one half-open probe; the probe's
/// recordSuccess() closes the breaker, its recordFailure() re-opens it
/// for another cooldown.  Thread-safe.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(std::string domain, int failureThreshold,
                 double cooldownSeconds);

  /// True when the caller may attempt the protected operation.  While
  /// open past the cooldown, the first caller claims the half-open probe
  /// slot (subsequent callers are refused until the probe reports back).
  [[nodiscard]] bool allowRequest(double now);

  void recordSuccess(double now);
  void recordFailure(double now);

  [[nodiscard]] State state(double now) const;
  [[nodiscard]] std::int64_t trips() const;
  [[nodiscard]] const std::string& domain() const { return domain_; }

 private:
  mutable std::mutex mutex_;
  const std::string domain_;
  const int failureThreshold_;
  const double cooldownSeconds_;
  int consecutiveFailures_ = 0;
  bool open_ = false;
  bool probeInFlight_ = false;
  double openedAt_ = 0.0;
  std::int64_t trips_ = 0;
};

[[nodiscard]] const char* toString(CircuitBreaker::State state);

}  // namespace sw::service
