// ServiceFrontend: the overload-safe admission layer in front of
// KernelService.
//
// KernelService bounds the *cost per request* (caches, single-flight,
// degradation ladder); ServiceFrontend bounds the *requests in flight*.
// Every request carries a RequestContext{tenant, priority, deadline} and
// passes three admission gates at enqueue:
//   1. deadline — an already-expired budget is rejected immediately
//      (OverloadKind::kDeadlineExpired);
//   2. per-tenant token-bucket quota (kQuotaExhausted, naming the tenant);
//   3. bounded priority queue — when full, the newest strictly-lower-
//      priority entry is displaced in favour of a higher-priority arrival
//      (the displaced future fails with kQueueFull), otherwise the arrival
//      itself is rejected fast (kQueueFull).
// A fixed worker pool drains the queue in (priority desc, FIFO) order,
// re-checks the deadline at dequeue (kDeadlineMiss — a request never
// occupies a worker it can no longer satisfy), and serves through a
// per-failure-domain circuit breaker:
//   * compile pipeline — open breaker fails queued compiles fast
//     (kCircuitOpen) until a half-open probe compiles successfully;
//   * mesh run — runGuarded() routes callers straight down to the bottom
//     of the runResilient ladder (timing-only estimator, zero-filled C)
//     while open, instead of re-attempting a known-bad mesh;
//   * tuner search — resolveGuarded() fails fast while open.
// Rejected work always surfaces as a typed OverloadError; nothing is
// silently dropped.
//
// Observability: `service.admission.*` gauges (queue_depth, enqueued,
// completed, shed + per-cause breakdown, deadline_miss, breaker_trip,
// breaker_open.<domain>) in the global MetricsRegistry, a
// "service.admission.queue_wait" latency histogram, and an
// "admission.request" trace span per dequeued request.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/admission.h"
#include "service/kernel_service.h"

namespace sw::service {

/// One admitted compile request's result.
struct CompileResponse {
  KernelService::KernelPtr kernel;
  ServeOutcome outcome = ServeOutcome::kCompiled;
  double queueWaitSeconds = 0.0;  // enqueue → dequeue
  double totalSeconds = 0.0;      // enqueue → completion
};

/// Aggregate admission counters, mirrored into service.admission.* gauges.
struct FrontendStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;  // served but the pipeline threw
  std::int64_t shedQueueFull = 0;
  std::int64_t shedQuota = 0;
  std::int64_t shedDeadlineAtEnqueue = 0;
  std::int64_t displaced = 0;  // subset of shedQueueFull: evicted by a
                               // higher-priority arrival
  std::int64_t deadlineMisses = 0;      // expired while queued
  std::int64_t breakerFastFails = 0;    // rejected by an open breaker
  std::int64_t queueDepth = 0;
  std::int64_t queueDepthPeak = 0;

  /// Every request rejected without being served.
  [[nodiscard]] std::int64_t shedTotal() const {
    return shedQueueFull + shedQuota + shedDeadlineAtEnqueue +
           deadlineMisses + breakerFastFails;
  }
};

class ServiceFrontend {
 public:
  /// Monotonic seconds; tests substitute a fake clock to drive deadlines,
  /// quotas and breaker cooldowns deterministically.
  using ClockFn = std::function<double()>;

  enum class Domain { kCompile, kRun, kTune };

  /// The frontend serves through (and does not own) `service`, which must
  /// outlive it.
  explicit ServiceFrontend(KernelService& service, AdmissionConfig config = {},
                           ClockFn clock = {});
  ~ServiceFrontend();

  ServiceFrontend(const ServiceFrontend&) = delete;
  ServiceFrontend& operator=(const ServiceFrontend&) = delete;

  /// Admit a compile request; throws OverloadError when shed at enqueue.
  /// The future fails with OverloadError when the request is displaced,
  /// misses its deadline in the queue, or hits an open compile breaker,
  /// and with the pipeline's own error when the compile itself fails.
  std::future<CompileResponse> submitCompile(const core::CodegenOptions& options,
                                             const RequestContext& ctx);

  /// submitCompile + get: the synchronous convenience wrapper.
  CompileResponse compile(const core::CodegenOptions& options,
                          const RequestContext& ctx);

  /// Breaker-guarded resilient run (admission-checked on the caller's
  /// thread: expired deadline and quota shed as usual; mesh runs are not
  /// queued — the bounded queue protects the compile pipeline).  While the
  /// mesh-run breaker is open, callers are routed straight to the bottom
  /// of the runResilient ladder: a timing-only estimator result with C
  /// zero-filled, recorded as a degradation — until a half-open probe
  /// completes a real mesh run.
  KernelService::ResilientRunResult runGuarded(
      const core::CodegenOptions& options, const core::GemmProblem& problem,
      std::span<const double> a, std::span<const double> b,
      std::span<double> c, const RequestContext& ctx,
      const core::FunctionalRunConfig& runConfig = {});

  /// Breaker-guarded schedule resolution; fails fast with kCircuitOpen
  /// while the tuner-search domain is open.
  KernelService::ResolvedSchedule resolveGuarded(
      const core::CodegenOptions& base, const core::GemmProblem& problem,
      const RequestContext& ctx);

  /// Stop accepting work, fail everything still queued with kShutdown and
  /// join the workers.  Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] FrontendStats stats() const;
  [[nodiscard]] KernelService& service() { return service_; }
  [[nodiscard]] const AdmissionConfig& config() const { return config_; }
  [[nodiscard]] CircuitBreaker& breaker(Domain domain);
  /// Sum of trips across all three domains (soak reporting).
  [[nodiscard]] std::int64_t breakerTrips() const;

 private:
  struct Queued {
    core::CodegenOptions options;
    RequestContext ctx;
    double enqueuedAt = 0.0;
    double deadlineAt = 0.0;  // absolute; +inf = none
    std::promise<CompileResponse> promise;
  };
  /// Queue order: (-priority, seq) — begin() is the highest priority,
  /// oldest first; the newest lowest-priority entry sits at rbegin().
  using QueueKey = std::pair<int, std::uint64_t>;

  void workerLoop();
  /// Serve one dequeued request on a worker thread.
  void serveCompile(Queued item, double dequeuedAt);
  /// Shared enqueue-side admission gates; throws OverloadError on shed.
  /// Returns the absolute deadline.
  double admit(const RequestContext& ctx, const char* what);
  void publishGaugesLocked();

  KernelService& service_;
  const AdmissionConfig config_;
  ClockFn clock_;

  TenantQuotas quotas_;
  CircuitBreaker compileBreaker_;
  CircuitBreaker runBreaker_;
  CircuitBreaker tuneBreaker_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<QueueKey, Queued> queue_;
  std::uint64_t nextSeq_ = 0;
  bool stopping_ = false;
  FrontendStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace sw::service
