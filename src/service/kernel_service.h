// Kernel compilation service: the serving layer in front of SwGemmCompiler.
//
// Production GEMM workloads hammer a small, repeated set of kernel
// signatures, so re-running the polyhedral pipeline (§3–§7) per request is
// the dominant avoidable cost.  KernelService removes it with three
// cooperating mechanisms:
//   * an in-memory LRU cache with an entry count and byte budget,
//   * a persistent on-disk cache (versioned layout, atomic write-then-
//     rename, corrupt or stale-version entries recompiled with a warning),
//   * single-flight deduplication: N concurrent requests for the same key
//     trigger exactly one pipeline run, the rest block on its result.
// A thread-pool batch API (compileBatch) compiles a manifest of shapes
// concurrently; the CLI exposes it as `swcodegen --serve-batch/--warm`.
//
// Requests are addressed by the canonical cache key of
// core::canonicalRequestKey (every CodegenOptions + ArchConfig field, plus
// the serdes version).  Cache correctness rests on compile determinism —
// identical keys yield byte-identical kernels — which
// tests/compile_determinism_test.cc guards.
//
// Observability: every request opens a trace span on its worker thread
// ("service.request", outcome=memory_hit|disk_hit|compile|shared) and the
// service publishes "service.cache.*" gauges (hits, misses, evictions,
// entries, bytes, hit_rate) into the global MetricsRegistry.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "tuning/tuner.h"
#include "tuning/tuning_db.h"

namespace sw::service {

struct KernelServiceConfig {
  /// In-memory LRU budget: maximum cached kernels and maximum total
  /// serialized bytes.  Admitting a kernel evicts least-recently-used
  /// entries until both budgets hold again (the newest entry is kept even
  /// if it alone exceeds maxBytes).
  std::size_t maxEntries = 128;
  std::int64_t maxBytes = std::int64_t{256} * 1024 * 1024;

  /// Persistent cache directory; empty disables the disk tier.  Entries
  /// live under `<cacheDir>/v<serdes-version>/<key-digest>.swk`.
  std::string cacheDir;

  /// Worker threads for compileBatch; 0 picks hardware_concurrency.
  int threads = 0;

  /// Persistent tuning database root for resolveSchedule; empty falls
  /// back to `<cacheDir>/tune` (the issue's layout), or disables
  /// persistence when there is no cacheDir either.  Records live under
  /// `<dir>/v<tuning-db-version>/<tune-key-digest>.json`.
  std::string tuningDir;

  /// Search configuration resolveSchedule hands the two-stage driver.
  tuning::TunerConfig tuner;

  /// Opt-in native JIT engine: when true, runResilient's top rung executes
  /// with --engine native (src/jit) before the simulator rungs.  Off by
  /// default — the generated host objects spawn 64 raw pthreads, which
  /// sanitizer builds cannot instrument.
  bool nativeEngine = false;
  /// JIT object cache root for the native rung and for the LRU byte-budget
  /// accounting of cached .so artifacts; empty resolves the jit defaults
  /// ($SWCODEGEN_JIT_CACHE_DIR, then a per-user temp directory).
  std::string jitCacheDir;
};

/// How a request was served; surfaced per request by compileBatch and in
/// aggregate by stats().
enum class ServeOutcome {
  kMemoryHit,  // served from the in-memory LRU
  kDiskHit,    // deserialized from the persistent cache
  kCompiled,   // full pipeline run
  kShared,     // joined an in-flight compile of the same key
};

[[nodiscard]] const char* toString(ServeOutcome outcome);

struct KernelServiceStats {
  std::int64_t requests = 0;
  std::int64_t memoryHits = 0;
  std::int64_t diskHits = 0;
  std::int64_t compiles = 0;
  std::int64_t shared = 0;          // single-flight joiners
  std::int64_t evictions = 0;
  std::int64_t corruptDiskEntries = 0;
  std::size_t entries = 0;          // current LRU size
  std::int64_t bytes = 0;           // current LRU serialized bytes

  // resolveSchedule traffic: full searches run, tuning-DB disk hits, and
  // joiners that shared an in-flight search of the same key.
  std::int64_t tuneSearches = 0;
  std::int64_t tuneDbHits = 0;
  std::int64_t tuneShared = 0;

  /// Requests served without a pipeline run / all requests, in [0,1].
  [[nodiscard]] double hitRate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(memoryHits + diskHits + shared) /
                     static_cast<double>(requests);
  }
};

class KernelService {
 public:
  using KernelPtr = std::shared_ptr<const core::CompiledKernel>;
  /// Test seam: the underlying compile function.  The default constructor
  /// wires in SwGemmCompiler::compile; tests substitute a counting stub to
  /// observe how many pipeline runs the cache actually triggers.
  using CompileFn =
      std::function<core::CompiledKernel(const core::CodegenOptions&)>;

  explicit KernelService(sunway::ArchConfig arch = {},
                         KernelServiceConfig config = {});
  KernelService(CompileFn compileFn, sunway::ArchConfig arch,
                KernelServiceConfig config);

  [[nodiscard]] const sunway::ArchConfig& arch() const { return arch_; }
  [[nodiscard]] const KernelServiceConfig& config() const { return config_; }

  /// Serve one request through the cache tiers.  Thread-safe; concurrent
  /// calls with the same key share one underlying compile.  Exceptions
  /// from the pipeline propagate to every waiter of the key.
  KernelPtr compile(const core::CodegenOptions& options);

  /// compile() plus the outcome actually taken, for callers that report
  /// per-request serving statistics.
  KernelPtr compile(const core::CodegenOptions& options,
                    ServeOutcome* outcome);

  /// Parse a naive C GEMM source, then serve the derived options through
  /// the cache.  The returned kernel is re-titled after the source's
  /// function and its athread sources re-printed under that name (cheap
  /// relative to the pipeline; the cache stores the canonical kernel).
  core::CompiledKernel compileSource(const std::string& source,
                                     core::CodegenOptions base = {},
                                     ServeOutcome* outcome = nullptr);

  struct BatchResult {
    core::CodegenOptions options;
    KernelPtr kernel;  // nullptr when error is non-empty
    ServeOutcome outcome = ServeOutcome::kCompiled;
    double latencySeconds = 0.0;
    std::string error;
  };

  /// Compile every request on the worker pool; results are positionally
  /// aligned with `requests`.  Duplicate keys inside one batch are
  /// deduplicated by single-flight, so the batch does at most
  /// distinct-key pipeline runs.
  std::vector<BatchResult> compileBatch(
      const std::vector<core::CodegenOptions>& requests);

  /// Parse a whole batch manifest (one request per line, '#' comments and
  /// blank lines skipped) and compile every well-formed line on the worker
  /// pool.  Results align positionally with the manifest's request lines;
  /// a malformed line does not abort the batch — its BatchResult carries
  /// an error of the form "manifest line <N>: <diagnostic>" with the
  /// 1-based physical line number and the offending token.
  std::vector<BatchResult> compileManifest(const std::string& manifestText);

  /// One rung-to-rung downgrade runResilient took, oldest first.
  struct DegradeStep {
    std::string from;   // tier that failed ("asm-microkernel", ...)
    std::string to;     // tier tried next
    std::string error;  // what the failing tier threw
  };

  struct ResilientRunResult {
    rt::RunOutcome outcome;
    /// The options of the schedule that actually produced `c` (equal to
    /// the request when no downgrade happened).  When usedEstimator is
    /// true no schedule produced data: `c` is zero-filled and only the
    /// timing in `outcome` is meaningful.
    core::CodegenOptions servedOptions;
    bool usedEstimator = false;
    std::vector<DegradeStep> degradations;
  };

  /// Test seam for runResilient's mesh runs: same shape as
  /// core::runGemmFunctional minus the arch (bound to this service's).
  using RunFn = std::function<rt::RunOutcome(
      const core::CompiledKernel&, const core::GemmProblem&,
      std::span<const double>, std::span<const double>, std::span<double>,
      const core::FunctionalRunConfig&)>;

  /// Serve-and-run with graceful degradation.  Compiles `options` through
  /// the cache and runs it functionally; on failure (ProtocolError from a
  /// hung/faulted mesh, pipeline errors) walks the ladder
  ///   [native JIT →] asm-microkernel → naive compute+RMA → no-RMA
  ///   schedule → estimator,
  /// re-running each rung against the untouched inputs.  The native rung
  /// exists only when KernelServiceConfig::nativeEngine is set and the
  /// request uses the default plan engine; a downgrade off it records
  /// `service.degrade.to_plan`.  Every downgrade
  /// is recorded in the result, `service.degrade.*` metrics and a trace
  /// span; the terminal estimator rung provides timing only — `c` is
  /// zero-filled so callers never mistake a failed attempt's partial
  /// writes for a result (usedEstimator flags the condition).
  ResilientRunResult runResilient(const core::CodegenOptions& options,
                                  const core::GemmProblem& problem,
                                  std::span<const double> a,
                                  std::span<const double> b,
                                  std::span<double> c,
                                  const core::FunctionalRunConfig& runConfig = {});

  /// Substitute the mesh-run step of runResilient (tests force failures
  /// per rung without building real fault plans).
  void setRunFnForTest(RunFn runFn);

  // --- schedule autotuning ----------------------------------------------

  /// A tuned schedule decision for one (base options, problem) request.
  struct ResolvedSchedule {
    /// Where the schedule came from.
    enum class Source {
      kSearch,   // ran the two-stage search (and persisted the winner)
      kDiskHit,  // served from the tuning database
      kShared,   // joined an in-flight search of the same key
    };
    /// The base options overlaid with the winning schedule — what the
    /// caller should compile.
    core::CodegenOptions options;
    tuning::TunedScheduleRecord record;
    Source source = Source::kSearch;
  };

  /// Resolve the schedule to compile for `base` at `problem`: consult the
  /// tuning database first, run the two-stage search on a miss, and
  /// persist the winner.  Thread-safe with single-flight semantics —
  /// concurrent calls for the same tune key trigger exactly one search,
  /// the rest share its record.  Search failures (e.g. nothing feasible)
  /// propagate to every waiter.  Emits "tuner.resolve" spans and
  /// `tuner.*` gauges.
  ResolvedSchedule resolveSchedule(const core::CodegenOptions& base,
                                   const core::GemmProblem& problem);

  /// Test seam for resolveSchedule's search step: tests substitute a
  /// counting stub to observe how many searches the DB + single-flight
  /// actually let through.
  using SearchFn = std::function<tuning::ScheduleSearchResult(
      const core::CodegenOptions&, const sunway::ArchConfig&,
      const core::GemmProblem&, const tuning::TunerConfig&)>;
  void setSearchFnForTest(SearchFn searchFn);

  /// Absolute path a tune key's DB record would live at; empty when the
  /// service has neither a tuningDir nor a cacheDir.
  [[nodiscard]] std::string tuningDbPath(const std::string& tuneKey) const;

  [[nodiscard]] KernelServiceStats stats() const;

  /// Drop the in-memory tier (the disk tier is untouched).
  void clearMemoryCache();

  /// Absolute path a key's disk entry would live at; empty without a
  /// cacheDir.  Exposed for tests and the CLI's cache report.
  [[nodiscard]] std::string diskPathForKey(const std::string& canonicalKey) const;

 private:
  struct Entry {
    std::string key;
    KernelPtr kernel;
    /// LRU byte charge: serialized kernel bytes plus the kernel's cached
    /// JIT .so artifact (when one exists on disk at admission time).
    std::int64_t bytes = 0;
    /// Path of the kernel's JIT object; evicting the entry removes it
    /// best-effort so the byte budget bounds real disk+memory footprint.
    std::string soPath;
  };
  using LruList = std::list<Entry>;

  KernelPtr serve(const std::string& key, const core::CodegenOptions& options,
                  ServeOutcome* outcome);
  /// Leader path: disk load or compile, then admit + store.  Never holds
  /// mutex_ while compiling.
  KernelPtr produce(const std::string& key,
                    const core::CodegenOptions& options, ServeOutcome* outcome);
  void admitLocked(const std::string& key, const KernelPtr& kernel,
                   std::int64_t bytes);
  void publishGaugesLocked() const;

  /// Disk tier; both return/log through the structured logger.  On success
  /// `bytes` receives the entry's serialized size (the LRU charge).
  KernelPtr tryLoadFromDisk(const std::string& key, std::int64_t* bytes);
  void storeToDisk(const std::string& key, const std::string& serialized);

  /// Leader path of resolveSchedule: DB lookup, search, store.
  tuning::TunedScheduleRecord produceSchedule(
      const std::string& tuneKey, const core::CodegenOptions& base,
      const core::GemmProblem& problem, bool* fromDisk);
  void publishTunerGaugesLocked() const;

  CompileFn compileFn_;
  RunFn runFn_;  // empty = core::runGemmFunctional against arch_
  SearchFn searchFn_;  // empty = tuning::searchSchedules
  sunway::ArchConfig arch_;
  KernelServiceConfig config_;

  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  std::unordered_map<std::string, std::shared_future<KernelPtr>> inflight_;
  KernelServiceStats stats_;

  /// Tuning tier: its own lock (searches are long; kernel serving must
  /// not queue behind them), the single-flight map, and the disk DB.
  mutable std::mutex tuneMutex_;
  std::unordered_map<std::string,
                     std::shared_future<tuning::TunedScheduleRecord>>
      tuneInflight_;
  tuning::TuningDb tuningDb_;
};

/// Parse one batch-manifest line into CodegenOptions.  Grammar (whitespace
/// separated, '#' starts a comment):
///   tile=MxNxK  strip=S  batch  no-asm  no-rma  no-hiding
///   fuse=relu|quantize  transA  transB
/// Throws InputError on unknown tokens or malformed values.
core::CodegenOptions parseManifestLine(const std::string& line);

/// Parse a `--warm` shape list: comma-separated tile shapes "MxNxK".
std::vector<core::CodegenOptions> parseWarmShapes(const std::string& shapes);

}  // namespace sw::service
