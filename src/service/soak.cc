#include "service/soak.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "support/error.h"
#include "support/format.h"
#include "support/histogram.h"
#include "support/logging.h"
#include "support/metrics.h"

namespace sw::service {

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Zipfian sampler over ranks [0, n): P(rank) ∝ 1/(rank+1)^s, drawn by
/// binary search over the precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(int n, double exponent) : cdf_(static_cast<std::size_t>(n)) {
    double total = 0.0;
    for (int rank = 0; rank < n; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
      cdf_[static_cast<std::size_t>(rank)] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  int operator()(std::mt19937& rng) const {
    const double u =
        std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(std::min<std::ptrdiff_t>(
        it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
  }

 private:
  std::vector<double> cdf_;
};

/// Per-client-thread aggregates, merged under one mutex at thread exit.
struct ClientAgg {
  metrics::Histogram queueWaitMs;
  metrics::Histogram latencyMs;
  SoakShed shed;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t verifiedRuns = 0;
  std::int64_t degradedRuns = 0;
  std::int64_t wrongAnswers = 0;

  void merge(const ClientAgg& other) {
    queueWaitMs.merge(other.queueWaitMs);
    latencyMs.merge(other.latencyMs);
    shed.queueFull += other.shed.queueFull;
    shed.quota += other.shed.quota;
    shed.deadlineAtEnqueue += other.shed.deadlineAtEnqueue;
    shed.deadlineMiss += other.shed.deadlineMiss;
    shed.circuitOpen += other.shed.circuitOpen;
    shed.shutdown += other.shed.shutdown;
    completed += other.completed;
    failed += other.failed;
    verifiedRuns += other.verifiedRuns;
    degradedRuns += other.degradedRuns;
    wrongAnswers += other.wrongAnswers;
  }
};

void classifyShed(const OverloadError& e, SoakShed* shed) {
  switch (e.kind()) {
    case OverloadKind::kQueueFull: ++shed->queueFull; return;
    case OverloadKind::kQuotaExhausted: ++shed->quota; return;
    case OverloadKind::kDeadlineExpired: ++shed->deadlineAtEnqueue; return;
    case OverloadKind::kDeadlineMiss: ++shed->deadlineMiss; return;
    case OverloadKind::kCircuitOpen: ++shed->circuitOpen; return;
    case OverloadKind::kShutdown: ++shed->shutdown; return;
  }
}

std::vector<double> randomData(std::int64_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data(static_cast<std::size_t>(count));
  for (double& v : data) v = dist(rng);
  return data;
}

/// One chaos-verified functional mesh run: a fault-free baseline of the
/// same schedule, then the faulted run through the breaker-guarded path.
/// Returns false only for a wrong answer (a clean completion that
/// diverges from the baseline, or an estimator completion whose C is not
/// the promised zero-fill); degraded completions set *degraded.
bool verifyChaosRun(ServiceFrontend& frontend, const SoakConfig& config,
                    unsigned seed, bool* degraded) {
  KernelService& service = frontend.service();
  const core::CodegenOptions options;  // the paper-default kernel
  const KernelService::KernelPtr kernel = service.compile(options);

  // Smallest shape with a full pipeline round-trip: one mesh tile, two
  // outer-k iterations.
  const core::PaddedShape shape =
      core::padShape(1, 1, 1, kernel->options, service.arch());
  const std::int64_t m = shape.m, n = shape.n, k = 2 * shape.k;
  const std::vector<double> a = randomData(m * k, seed);
  const std::vector<double> b = randomData(k * n, seed + 1);
  const std::vector<double> c0 = randomData(m * n, seed + 2);
  const core::GemmProblem problem{m, n, k, 1};

  std::vector<double> baseline = c0;
  core::runGemmFunctional(*kernel, service.arch(), problem, a, b, baseline);

  RequestContext ctx;
  ctx.tenant = "chaos";
  ctx.priority = 10;
  core::FunctionalRunConfig runConfig;
  runConfig.faultPlan = config.chaosPlan;
  runConfig.watchdogMillis = config.watchdogMillis;
  std::vector<double> faulted = c0;
  const KernelService::ResilientRunResult result =
      frontend.runGuarded(options, problem, a, b, faulted, ctx, runConfig);

  if (result.usedEstimator) {
    *degraded = true;
    // The estimator contract: C is zero-filled, never partial data.
    return std::all_of(faulted.begin(), faulted.end(),
                       [](double v) { return v == 0.0; });
  }
  if (!result.degradations.empty()) {
    // A downgraded schedule computes the same GEMM with a different
    // floating-point association; bit-comparison is only meaningful
    // against the same schedule.
    *degraded = true;
    return true;
  }
  *degraded = false;
  return std::memcmp(baseline.data(), faulted.data(),
                     baseline.size() * sizeof(double)) == 0;
}

/// Settle one finished request into the aggregates.
void settle(std::future<CompileResponse>&& future, ClientAgg* agg) {
  try {
    const CompileResponse response = future.get();
    ++agg->completed;
    agg->queueWaitMs.record(response.queueWaitSeconds * 1e3);
    agg->latencyMs.record(response.totalSeconds * 1e3);
  } catch (const OverloadError& e) {
    classifyShed(e, &agg->shed);
  } catch (const Error&) {
    ++agg->failed;
  }
}

std::string jsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  return strCat(v);
}

}  // namespace

std::vector<core::CodegenOptions> soakCatalog(int size) {
  const int clamped = std::clamp(size, 1, 96);
  std::vector<core::CodegenOptions> catalog;
  catalog.reserve(static_cast<std::size_t>(clamped));
  for (int i = 0; i < clamped; ++i) {
    core::CodegenOptions o;
    o.tileM = o.tileN = std::int64_t{16} << (i % 3);
    o.tileK = (i / 3) % 2 == 0 ? 32 : 16;
    o.useAsm = (i / 6) % 2 == 0;
    o.useRma = (i / 12) % 2 == 0;
    if (!o.useRma) o.hideLatency = false;  // the §6 pipeline needs RMA
    o.fusion = (i / 24) % 2 == 0 ? core::FusionKind::kNone
                                 : core::FusionKind::kEpilogueRelu;
    o.batched = (i / 48) % 2 == 1;
    catalog.push_back(o);
  }
  return catalog;
}

SoakReport runSoak(KernelService& service, const SoakConfig& config) {
  SoakConfig effective = config;
  // The chaos verifier must never be quota-shed: its tenant gets an
  // untightened bucket unless the caller configured one explicitly.
  effective.admission.tenantQuotas.emplace("chaos", TenantQuota{});

  ServiceFrontend frontend(service, effective.admission);
  const std::vector<core::CodegenOptions> catalog =
      soakCatalog(effective.catalogSize);
  const ZipfSampler zipf(static_cast<int>(catalog.size()),
                         effective.zipfExponent);
  const KernelServiceStats statsBefore = service.stats();

  const int threads = std::max(1, effective.clientThreads);
  const int window = std::max(1, effective.clientWindow);
  const std::int64_t perThread = effective.requests / threads;
  const std::int64_t remainder = effective.requests % threads;

  std::mutex aggMutex;
  ClientAgg total;
  const double start = nowSeconds();

  auto client = [&](int threadId, std::int64_t count) {
    std::mt19937 rng(effective.seed + static_cast<unsigned>(threadId));
    ClientAgg agg;
    std::deque<std::future<CompileResponse>> outstanding;

    for (std::int64_t i = 0; i < count; ++i) {
      const int rank = zipf(rng);
      RequestContext ctx;
      ctx.tenant = effective.tenants.empty()
                       ? "default"
                       : effective.tenants[static_cast<std::size_t>(
                             i % static_cast<std::int64_t>(
                                     effective.tenants.size()))];
      // A thin slice of elevated-priority traffic keeps the displacement
      // path honest under load.
      const int r = static_cast<int>(i % 100);
      ctx.priority = r < 2 ? 2 : (r < 12 ? 1 : 0);
      ctx.deadlineSeconds = effective.deadlineSeconds;
      try {
        outstanding.push_back(
            frontend.submitCompile(catalog[static_cast<std::size_t>(rank)],
                                   ctx));
      } catch (const OverloadError& e) {
        classifyShed(e, &agg.shed);
      }
      while (outstanding.size() >= static_cast<std::size_t>(window)) {
        settle(std::move(outstanding.front()), &agg);
        outstanding.pop_front();
      }
      if (threadId == 0 && effective.verifyEvery > 0 &&
          (i + 1) % effective.verifyEvery == 0) {
        bool degraded = false;
        const bool ok = verifyChaosRun(
            frontend, effective,
            effective.seed + static_cast<unsigned>(i), &degraded);
        ++agg.verifiedRuns;
        if (degraded) ++agg.degradedRuns;
        if (!ok) ++agg.wrongAnswers;
      }
    }
    while (!outstanding.empty()) {
      settle(std::move(outstanding.front()), &agg);
      outstanding.pop_front();
    }
    std::lock_guard<std::mutex> lock(aggMutex);
    total.merge(agg);
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    pool.emplace_back(client, t, perThread + (t < remainder ? 1 : 0));
  for (std::thread& t : pool) t.join();
  frontend.shutdown();  // drain before reading the final counters

  const double wall = std::max(1e-9, nowSeconds() - start);
  const KernelServiceStats statsAfter = service.stats();
  const FrontendStats frontendStats = frontend.stats();

  SoakReport report;
  report.offered = effective.requests;
  report.completed = total.completed;
  report.failed = total.failed;
  report.shed = total.shed;
  report.shedRate =
      report.offered == 0
          ? 0.0
          : static_cast<double>(report.shed.total()) /
                static_cast<double>(report.offered);
  const std::int64_t requestsDelta =
      statsAfter.requests - statsBefore.requests;
  const std::int64_t hitsDelta =
      (statsAfter.memoryHits + statsAfter.diskHits + statsAfter.shared) -
      (statsBefore.memoryHits + statsBefore.diskHits + statsBefore.shared);
  report.hitRate = requestsDelta == 0
                       ? 0.0
                       : static_cast<double>(hitsDelta) /
                             static_cast<double>(requestsDelta);
  report.queueWaitP50Ms = total.queueWaitMs.percentile(50.0);
  report.queueWaitP99Ms = total.queueWaitMs.percentile(99.0);
  report.queueWaitMaxMs = total.queueWaitMs.maxRecorded();
  report.latencyP50Ms = total.latencyMs.percentile(50.0);
  report.latencyP99Ms = total.latencyMs.percentile(99.0);
  report.deadlineMs = std::isfinite(effective.deadlineSeconds)
                          ? effective.deadlineSeconds * 1e3
                          : 0.0;
  report.verifiedRuns = total.verifiedRuns;
  report.degradedRuns = total.degradedRuns;
  report.wrongAnswers = total.wrongAnswers;
  if (effective.chaosPlan) report.faultPlan = effective.chaosPlan->describe();
  report.breakerTrips = frontend.breakerTrips();
  report.queueDepthPeak = frontendStats.queueDepthPeak;
  report.displaced = frontendStats.displaced;
  report.wallSeconds = wall;
  report.throughputPerSecond =
      static_cast<double>(report.completed) / wall;

  for (const auto& [name, value] :
       metrics::MetricsRegistry::global().snapshot()) {
    if (name.rfind("service.admission.", 0) == 0)
      report.admissionGauges.emplace_back(name, value);
  }

  SW_INFO("service", "event=soak_done offered=", report.offered,
          " completed=", report.completed, " shed=", report.shed.total(),
          " wrong=", report.wrongAnswers, " wall_s=", report.wallSeconds);
  return report;
}

std::string SoakReport::toJson() const {
  std::string gauges;
  for (std::size_t i = 0; i < admissionGauges.size(); ++i) {
    gauges += strCat("    \"", admissionGauges[i].first,
                     "\": ", jsonNum(admissionGauges[i].second),
                     i + 1 < admissionGauges.size() ? ",\n" : "\n");
  }
  return strCat(
      "{\n"
      "  \"schema_version\": ", kSchemaVersion, ",\n"
      "  \"offered\": ", offered, ",\n"
      "  \"completed\": ", completed, ",\n"
      "  \"failed\": ", failed, ",\n"
      "  \"shed\": {\n"
      "    \"total\": ", shed.total(), ",\n"
      "    \"queue_full\": ", shed.queueFull, ",\n"
      "    \"quota\": ", shed.quota, ",\n"
      "    \"deadline_at_enqueue\": ", shed.deadlineAtEnqueue, ",\n"
      "    \"deadline_miss\": ", shed.deadlineMiss, ",\n"
      "    \"circuit_open\": ", shed.circuitOpen, ",\n"
      "    \"shutdown\": ", shed.shutdown, "\n"
      "  },\n"
      "  \"shed_rate\": ", jsonNum(shedRate), ",\n"
      "  \"hit_rate\": ", jsonNum(hitRate), ",\n"
      "  \"latency_ms\": {\n"
      "    \"queue_wait_p50\": ", jsonNum(queueWaitP50Ms), ",\n"
      "    \"queue_wait_p99\": ", jsonNum(queueWaitP99Ms), ",\n"
      "    \"queue_wait_max\": ", jsonNum(queueWaitMaxMs), ",\n"
      "    \"total_p50\": ", jsonNum(latencyP50Ms), ",\n"
      "    \"total_p99\": ", jsonNum(latencyP99Ms), "\n"
      "  },\n"
      "  \"deadline_ms\": ", jsonNum(deadlineMs), ",\n"
      "  \"chaos\": {\n"
      "    \"fault_plan\": \"", faultPlan, "\",\n"
      "    \"verified_runs\": ", verifiedRuns, ",\n"
      "    \"degraded_runs\": ", degradedRuns, ",\n"
      "    \"wrong_answers\": ", wrongAnswers, "\n"
      "  },\n"
      "  \"breaker_trips\": ", breakerTrips, ",\n"
      "  \"queue_depth_peak\": ", queueDepthPeak, ",\n"
      "  \"displaced\": ", displaced, ",\n"
      "  \"wall_seconds\": ", jsonNum(wallSeconds), ",\n"
      "  \"throughput_rps\": ", jsonNum(throughputPerSecond), ",\n"
      "  \"service_admission_metrics\": {\n", gauges,
      "  }\n"
      "}\n");
}

std::string SoakReport::toText() const {
  std::string text = strCat(
      "soak: ", offered, " offered, ", completed, " completed, ", failed,
      " failed, ", shed.total(), " shed (",
      strCat(100.0 * shedRate), "%)\n",
      "  hit rate            ", strCat(100.0 * hitRate), "%\n",
      "  queue wait          p50 ", jsonNum(queueWaitP50Ms), " ms, p99 ",
      jsonNum(queueWaitP99Ms), " ms, max ", jsonNum(queueWaitMaxMs),
      " ms (deadline ", jsonNum(deadlineMs), " ms)\n",
      "  end-to-end latency  p50 ", jsonNum(latencyP50Ms), " ms, p99 ",
      jsonNum(latencyP99Ms), " ms\n",
      "  shed breakdown      queue_full=", shed.queueFull, " quota=",
      shed.quota, " deadline_at_enqueue=", shed.deadlineAtEnqueue,
      " deadline_miss=", shed.deadlineMiss, " circuit_open=",
      shed.circuitOpen, " shutdown=", shed.shutdown, "\n",
      "  admission           queue_depth_peak=", queueDepthPeak,
      " displaced=", displaced, " breaker_trips=", breakerTrips, "\n",
      "  throughput          ", strCat(throughputPerSecond), " req/s over ",
      strCat(wallSeconds), " s\n");
  if (!faultPlan.empty() || verifiedRuns > 0) {
    text += strCat("  chaos               plan=\"", faultPlan,
                   "\" verified=", verifiedRuns, " degraded=", degradedRuns,
                   " wrong_answers=", wrongAnswers, "\n");
  }
  return text;
}

}  // namespace sw::service
