// Soak harness: replay millions of synthetic requests against the
// admission frontend, with fault-injection plans running as chaos.
//
// The workload models production kernel-service traffic: a small catalog
// of distinct kernel signatures requested with Zipfian popularity (a few
// hot shapes dominate, a long tail of cold ones), issued by closed-loop
// client threads that each keep a window of outstanding requests so the
// admission queue sees real depth.  Tenants rotate per request and a
// slice of the traffic runs at elevated priority, exercising quotas and
// the displacement path.
//
// Chaos: every `verifyEvery`-th issued request on client 0 additionally executes a
// small functional mesh run through ServiceFrontend::runGuarded with the
// configured fault plan active, and checks the recovered result
// bit-for-bit against a fault-free baseline of the same schedule.  A
// degraded completion (different schedule or estimator-only) is counted,
// not compared — but an estimator completion whose output is not the
// promised zero-fill counts as a wrong answer, as does any bit mismatch
// on a clean completion.  The soak's headline invariant is zero wrong
// answers under load + chaos.
//
// The report carries p50/p99 queue-wait and end-to-end latency, hit rate,
// shed rate (per cause), breaker trips and the chaos verdicts, as text
// and as schema-stable JSON (bench_soak, `swcodegen --soak`, and the CI
// soak smoke all consume it).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/service_frontend.h"
#include "sunway/fault.h"

namespace sw::service {

struct SoakConfig {
  std::int64_t requests = 1'000'000;

  /// Closed-loop client threads and the outstanding-request window each
  /// keeps open (window * threads must exceed queue depth + workers for
  /// queue-full shedding to be reachable).
  int clientThreads = 4;
  int clientWindow = 32;

  /// Distinct kernel signatures in the catalog (capped at 96 generated
  /// variants) and the Zipf exponent of their popularity.
  int catalogSize = 24;
  double zipfExponent = 1.1;
  unsigned seed = 1;

  std::vector<std::string> tenants = {"tenant-a", "tenant-b", "tenant-c"};

  /// Per-request deadline budget; infinity disables deadlines.
  double deadlineSeconds = 0.25;

  /// Every Nth issued request on client 0 also runs a chaos-verified
  /// functional mesh run (issued, not completed, so heavy shedding cannot
  /// starve verification); 0 disables verification.
  int verifyEvery = 0;
  std::shared_ptr<const sunway::FaultPlan> chaosPlan;
  double watchdogMillis = 200.0;

  AdmissionConfig admission;
};

struct SoakShed {
  std::int64_t queueFull = 0;
  std::int64_t quota = 0;
  std::int64_t deadlineAtEnqueue = 0;
  std::int64_t deadlineMiss = 0;
  std::int64_t circuitOpen = 0;
  std::int64_t shutdown = 0;

  [[nodiscard]] std::int64_t total() const {
    return queueFull + quota + deadlineAtEnqueue + deadlineMiss +
           circuitOpen + shutdown;
  }
};

struct SoakReport {
  static constexpr int kSchemaVersion = 1;

  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;  // served, but the pipeline threw
  SoakShed shed;
  double shedRate = 0.0;  // shed.total() / offered
  double hitRate = 0.0;   // cache-served fraction of the soak's requests

  double queueWaitP50Ms = 0.0;
  double queueWaitP99Ms = 0.0;
  double queueWaitMaxMs = 0.0;
  double latencyP50Ms = 0.0;
  double latencyP99Ms = 0.0;
  double deadlineMs = 0.0;  // the configured budget, for SLO checks

  std::int64_t verifiedRuns = 0;
  std::int64_t degradedRuns = 0;
  std::int64_t wrongAnswers = 0;
  std::string faultPlan;  // human description; empty without chaos

  std::int64_t breakerTrips = 0;
  std::int64_t queueDepthPeak = 0;
  std::int64_t displaced = 0;

  double wallSeconds = 0.0;
  double throughputPerSecond = 0.0;

  /// The service.admission.* gauge snapshot at report time (name → value),
  /// embedded so the JSON report carries the admission counters verbatim.
  std::vector<std::pair<std::string, double>> admissionGauges;

  [[nodiscard]] std::string toJson() const;
  [[nodiscard]] std::string toText() const;
};

/// Deterministic catalog of compileable option variants (tile shapes
/// crossed with micro-kernel / RMA / fusion / batch toggles — all
/// feasible under the §3.2 constraints); `size` is clamped to [1, 96].
[[nodiscard]] std::vector<core::CodegenOptions> soakCatalog(int size);

/// Run the soak against `service` (whose caches persist across the run —
/// pre-warmed services report higher hit rates).  Constructs its own
/// ServiceFrontend from config.admission.
[[nodiscard]] SoakReport runSoak(KernelService& service,
                                 const SoakConfig& config);

}  // namespace sw::service
