#include "service/admission.h"

#include <algorithm>

#include "support/logging.h"
#include "support/metrics.h"

namespace sw::service {

void TokenBucket::refill(double now) {
  if (now <= lastRefill_) return;  // clock went backwards or stood still
  tokens_ = std::min(quota_.burst,
                     tokens_ + (now - lastRefill_) * quota_.refillPerSecond);
  lastRefill_ = now;
}

bool TokenBucket::tryAcquire(double now, double tokens) {
  refill(now);
  if (tokens_ < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::available(double now) {
  refill(now);
  return tokens_;
}

namespace {

/// Idle time after which a bucket is back at full burst (and therefore
/// equivalent to a fresh one).  A non-refilling quota never reaches the
/// horizon and is kept forever.
double refillToBurstSeconds(const TenantQuota& quota) {
  if (quota.refillPerSecond <= 0.0)
    return std::numeric_limits<double>::infinity();
  return quota.burst / quota.refillPerSecond;
}

}  // namespace

void TenantQuotas::evictIdle(double now) {
  // Amortised: one linear sweep per second of `now` time, not per call.
  if (now - lastSweep_ < 1.0) return;
  lastSweep_ = now;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    if (now - it->second.lastAccess >= refillToBurstSeconds(it->second.quota))
      it = buckets_.erase(it);
    else
      ++it;
  }
}

bool TenantQuotas::tryAcquire(const std::string& tenant, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  evictIdle(now);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    auto override = overrides_.find(tenant);
    const TenantQuota quota =
        override != overrides_.end() ? override->second : defaultQuota_;
    it = buckets_.emplace(tenant, Entry{TokenBucket(quota, now), quota, now})
             .first;
  }
  it->second.lastAccess = now;
  return it->second.bucket.tryAcquire(now);
}

std::size_t TenantQuotas::bucketCount() {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_.size();
}

CircuitBreaker::CircuitBreaker(std::string domain, int failureThreshold,
                               double cooldownSeconds)
    : domain_(std::move(domain)),
      failureThreshold_(std::max(1, failureThreshold)),
      cooldownSeconds_(cooldownSeconds) {}

bool CircuitBreaker::allowRequest(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return true;
  if (now - openedAt_ < cooldownSeconds_ || probeInFlight_) return false;
  probeInFlight_ = true;  // this caller is the half-open probe
  return true;
}

void CircuitBreaker::recordSuccess(double now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mutex_);
  if (open_) {
    SW_INFO("service", "event=breaker_close domain=", domain_,
            " cause=half_open_probe_succeeded");
    metrics::MetricsRegistry::global().set(
        "service.admission.breaker_open." + domain_, 0.0);
  }
  open_ = false;
  probeInFlight_ = false;
  consecutiveFailures_ = 0;
}

void CircuitBreaker::recordFailure(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (open_) {
    // The half-open probe failed: stay open for another cooldown.
    probeInFlight_ = false;
    openedAt_ = now;
    return;
  }
  if (++consecutiveFailures_ < failureThreshold_) return;
  open_ = true;
  probeInFlight_ = false;
  openedAt_ = now;
  ++trips_;
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
  registry.add("service.admission.breaker_trip", 1.0);
  registry.set("service.admission.breaker_open." + domain_, 1.0);
  SW_WARN("service", "event=breaker_trip domain=", domain_,
          " consecutive_failures=", consecutiveFailures_,
          " cooldown_s=", cooldownSeconds_);
}

CircuitBreaker::State CircuitBreaker::state(double now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return State::kClosed;
  return (now - openedAt_ >= cooldownSeconds_) ? State::kHalfOpen
                                               : State::kOpen;
}

std::int64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

const char* toString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half_open";
  }
  return "unknown";
}

}  // namespace sw::service
