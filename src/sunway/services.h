// The per-CPE execution interface the kernel-program interpreter drives.
//
// Two implementations exist:
//   * ThreadedCpeServices (mesh.h) — one OS thread per CPE, real SPM and
//     main-memory data, condition-variable reply protocol; functional
//     ground truth plus logical-clock timing.
//   * SymmetricCpeServices (estimator.h) — sequential single-CPE model
//     exploiting the mesh symmetry of the generated GEMM code; timing only,
//     scales to paper-sized shapes.  Validated against the threaded runtime
//     in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sw::sunway {

/// Compute-rate classes the timing model distinguishes.
enum class ComputeRate {
  kAsmKernel,     // vendor micro-kernel (§7.2)
  kNaive,         // --no-use-asm loop nest
  kElementwise,   // SPM tile element-wise ops
};

/// A fully evaluated DMA message (addresses resolved by the interpreter).
struct DmaRequest {
  bool isPut = false;
  std::string array;          // global array name
  std::int64_t batchIndex = 0;
  std::int64_t rowStart = 0;  // r of Eq. (1)
  std::int64_t colStart = 0;  // c of Eq. (1)
  std::int64_t tileRows = 0;  // X_tau
  std::int64_t tileCols = 0;  // Y_tau  (== len)
  std::int64_t spmOffsetBytes = 0;
  /// SPM row stride in elements; 0 means tileCols (dense tile).  Edge-tile
  /// transfers clamp tileRows/tileCols to the valid extent but keep the
  /// full-tile stride here so the in-SPM layout is unchanged.  A clamped
  /// request may legally be empty (tileRows == 0 or tileCols == 0): it
  /// moves no data but still signals its reply slot.
  std::int64_t spmRowStrideElems = 0;
  std::string slot;
  /// Dense ids interned via CpeServices::internArray / internSlot.  The
  /// lowered-plan executor binds these once per run so the hot path never
  /// hashes the strings above; negative means "not interned" and the
  /// runtime interns the string fields on the fly (legacy tree-walk path).
  int arrayId = -1;
  int slotId = -1;
};

/// The three RMA manners of §5 (Fig.8): point-to-point between two CPEs,
/// row/column-wise broadcast, and the all-broadcast composed from them
/// (see sunway/collectives.h).
enum class RmaKind {
  kRowBroadcast,
  kColBroadcast,
  kPointToPoint,
};

/// A fully evaluated RMA message.
struct RmaRequest {
  RmaKind kind = RmaKind::kRowBroadcast;
  bool isSender = false;
  std::int64_t bytes = 0;
  std::int64_t srcSpmOffsetBytes = 0;  // sender-side staging buffer
  std::int64_t dstSpmOffsetBytes = 0;  // receive buffer
  std::string slot;
  /// Dense id interned via CpeServices::internSlot; negative means "not
  /// interned" (the runtime interns `slot` on the fly).
  int slotId = -1;
  /// Point-to-point only: mesh coordinates of the destination CPE.
  int dstRid = 0;
  int dstCid = 0;

  [[nodiscard]] bool isRowBroadcast() const {
    return kind == RmaKind::kRowBroadcast;
  }
};

/// Aggregate counters a run produces; summed over CPEs by the runtimes.
struct CpeCounters {
  std::int64_t dmaMessages = 0;
  std::int64_t dmaBytes = 0;
  std::int64_t rmaBroadcastsSent = 0;
  std::int64_t rmaBytesSent = 0;
  std::int64_t syncs = 0;
  std::int64_t microKernelCalls = 0;
  /// Floating-point operations charged to compute kernels (micro-kernel
  /// rates only, not element-wise ops).  Edge-tile runs charge the clamped
  /// effective shape, so partial tiles cost strictly fewer flops than the
  /// padded-full-tile convention they replace.
  double flops = 0.0;
  double computeSeconds = 0.0;
  /// Time the CPE's DMA engine spends transferring (may overlap compute —
  /// that overlap is exactly what §6's pipelining buys).
  double dmaBusySeconds = 0.0;
  /// Time this CPE's outbound RMA transfers occupy the mesh network (the
  /// receive side charges nothing; only exposed latency shows up as stall).
  double rmaBusySeconds = 0.0;
  /// Time the CPE's clock is advanced by reply waits (exposed latency).
  double waitStallSeconds = 0.0;
  /// Exposed-latency split of waitStallSeconds for per-bucket attribution
  /// (PerfReport): stall charged at DMA reply waits, at RMA round waits,
  /// and at interpreter retry backoffs.  dmaStall + rmaStall + retryStall
  /// == waitStall up to fault-injected sync delays (also counted there).
  double dmaStallSeconds = 0.0;
  double rmaStallSeconds = 0.0;
  double retryStallSeconds = 0.0;
  /// Time spent at mesh barriers: waiting for the slowest CPE plus the
  /// barrier cost itself.  Not part of waitStallSeconds (the overlap/stall
  /// gauges predate it); PerfReport attributes it as the sync bucket.
  double syncStallSeconds = 0.0;
  /// Fault-injection sites that fired on this CPE (zero without a plan).
  std::int64_t faultsInjected = 0;
  /// DMA operations the interpreter re-issued after a transient failure.
  std::int64_t dmaRetries = 0;

  void add(const CpeCounters& other) {
    dmaMessages += other.dmaMessages;
    dmaBytes += other.dmaBytes;
    rmaBroadcastsSent += other.rmaBroadcastsSent;
    rmaBytesSent += other.rmaBytesSent;
    syncs += other.syncs;
    microKernelCalls += other.microKernelCalls;
    flops += other.flops;
    computeSeconds += other.computeSeconds;
    dmaBusySeconds += other.dmaBusySeconds;
    rmaBusySeconds += other.rmaBusySeconds;
    waitStallSeconds += other.waitStallSeconds;
    dmaStallSeconds += other.dmaStallSeconds;
    rmaStallSeconds += other.rmaStallSeconds;
    retryStallSeconds += other.retryStallSeconds;
    syncStallSeconds += other.syncStallSeconds;
    faultsInjected += other.faultsInjected;
    dmaRetries += other.dmaRetries;
  }
};

class CpeServices {
 public:
  virtual ~CpeServices() = default;

  [[nodiscard]] virtual int rid() const = 0;
  [[nodiscard]] virtual int cid() const = 0;

  /// True when the runtime carries real data (SPM + main memory); false in
  /// timing-only mode.
  [[nodiscard]] virtual bool functional() const = 0;

  /// True for the symmetric estimator: RMA sender guards are treated as
  /// satisfied so the single simulated CPE accounts every broadcast round.
  [[nodiscard]] virtual bool guardAlwaysTrue() const { return false; }

  /// Mesh-wide barrier (athread synch()).
  virtual void sync() = 0;

  /// Issue a non-blocking DMA; resets `slot` and records completion time.
  virtual void dmaIssue(const DmaRequest& request) = 0;

  /// Issue a non-blocking RMA broadcast (only called on the sender).
  virtual void rmaIssue(const RmaRequest& request) = 0;

  /// dma_wait_value / rma_wait_value: block until the message tied to
  /// `slot` completes; advances the logical clock.  For RMA waits,
  /// `isRowBroadcast` selects the mesh line whose channel carries the data.
  virtual void waitSlot(const std::string& slot, bool isRma,
                        bool isRowBroadcast) = 0;

  /// Receive side of a point-to-point RMA (Fig.8a): block until the next
  /// message addressed to this CPE on `slot` arrives.
  virtual void rmaWaitPoint(const std::string& slot) = 0;

  /// Account `flops` of compute at the given rate class (advances clock;
  /// the functional runtime performs the math separately via spmPtr data).
  virtual void computeTime(double flops, ComputeRate rate) = 0;

  /// Variant-aware micro-kernel accounting: same counters as
  /// computeTime(flops, kAsmKernel), but the rate reflects the generated
  /// (mr, nr) register block (ArchConfig::microKernelEfficiency).  The
  /// base default ignores the variant so test doubles keep working; the
  /// mesh and estimator override it.  At the default (4, 8) block every
  /// implementation must charge exactly the kAsmKernel rate.
  virtual void computeTimeMicro(double flops, int mr, int nr) {
    (void)mr;
    (void)nr;
    computeTime(flops, ComputeRate::kAsmKernel);
  }

  /// Pointer into this CPE's SPM at `offsetBytes` (element-aligned);
  /// nullptr in timing-only mode.
  [[nodiscard]] virtual double* spmPtr(std::int64_t offsetBytes) = 0;

  /// Advance this CPE's clock without doing work — retry backoff.
  virtual void stallFor(double seconds) { (void)seconds; }

  /// Count one interpreter-level DMA retry against this CPE.
  virtual void noteDmaRetry() {}

  /// True when `array` resolves in this runtime.  The threaded functional
  /// runtime checks host memory; timing-only runtimes accept everything
  /// (they never dereference).
  [[nodiscard]] virtual bool knowsArray(const std::string& array) const {
    (void)array;
    return true;
  }

  [[nodiscard]] virtual double clockSeconds() const = 0;
  [[nodiscard]] virtual const CpeCounters& counters() const = 0;

  /// Intern a reply-slot name into this runtime's dense id space.  Plan
  /// executors bind names once per run and then issue integer-keyed
  /// requests, so the hot path never hashes strings.  The threaded mesh
  /// overrides this with a mesh-wide table so RMA channel ids agree across
  /// all CPEs regardless of per-CPE interning order.
  [[nodiscard]] virtual int internSlot(const std::string& name) {
    for (std::size_t i = 0; i < slotNames_.size(); ++i) {
      if (slotNames_[i] == name) return static_cast<int>(i);
    }
    slotNames_.push_back(name);
    return static_cast<int>(slotNames_.size()) - 1;
  }

  /// Intern a global-array name; negative result means the runtime does not
  /// know the array (timing-only runtimes know everything and never return
  /// negative).
  [[nodiscard]] virtual int internArray(const std::string& name) {
    for (std::size_t i = 0; i < arrayNames_.size(); ++i) {
      if (arrayNames_[i] == name) return static_cast<int>(i);
    }
    arrayNames_.push_back(name);
    return static_cast<int>(arrayNames_.size()) - 1;
  }

  /// Integer-keyed variant of waitSlot; `slotId` must come from internSlot
  /// on the same services object.  The base default shims to the string
  /// API; fast runtimes override it with a vector-indexed lookup.
  virtual void waitSlotId(int slotId, bool isRma, bool isRowBroadcast) {
    waitSlot(slotNames_.at(static_cast<std::size_t>(slotId)), isRma,
             isRowBroadcast);
  }

  /// Integer-keyed variant of rmaWaitPoint.
  virtual void rmaWaitPointId(int slotId) {
    rmaWaitPoint(slotNames_.at(static_cast<std::size_t>(slotId)));
  }

 protected:
  std::vector<std::string> slotNames_;
  std::vector<std::string> arrayNames_;
};

}  // namespace sw::sunway
