#include "sunway/mesh.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "support/error.h"
#include "support/format.h"
#include "support/trace.h"

namespace sw::sunway {

namespace {

/// One in-flight or completed broadcast round on a mesh line.
struct RmaRound {
  double sendTimeSeconds = 0.0;
  double transferSeconds = 0.0;
};

/// Rendezvous channel for one (reply slot, mesh line) pair.  Senders append
/// rounds; receivers consume them in order (the generated code issues and
/// waits strictly alternately per line, so ordinal matching is exact).
struct RmaChannel {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<RmaRound> rounds;
};

}  // namespace

class MeshSimulator::Impl {
 public:
  Impl(MeshSimulator& owner, const ArchConfig& config, bool functional)
      : owner_(owner),
        config_(config),
        functional_(functional),
        meshSize_(config.meshSize()),
        clocks_(static_cast<std::size_t>(meshSize_), 0.0) {
    if (functional_) {
      spms_.resize(static_cast<std::size_t>(meshSize_));
      const std::size_t words =
          static_cast<std::size_t>(config_.spmBytes) / sizeof(double);
      for (auto& spm : spms_) spm.assign(words, 0.0);
    }
  }

  MeshSimulator& owner_;
  const ArchConfig& config_;
  bool functional_;
  int meshSize_;

  // --- barrier with clock-max completion ---
  std::mutex barrierMutex_;
  std::condition_variable barrierCv_;
  int barrierArrived_ = 0;
  std::int64_t barrierGeneration_ = 0;
  double barrierMaxClock_ = 0.0;
  std::vector<double> clocks_;

  // --- RMA channels, keyed by slot then mesh line ---
  std::mutex channelsMutex_;
  std::map<std::string, std::vector<std::unique_ptr<RmaChannel>>> channels_;

  // --- per-CPE SPM (functional mode) ---
  std::vector<std::vector<double>> spms_;

  // --- error funneling ---
  std::atomic<bool> aborted_{false};
  std::mutex errorMutex_;
  std::exception_ptr firstError_;

  /// Rendezvous channels: broadcasts use one channel per mesh line,
  /// point-to-point one channel per destination CPE.
  RmaChannel& channel(const std::string& slot, const char* scope, int index,
                      int scopeSize) {
    std::lock_guard<std::mutex> lock(channelsMutex_);
    auto& lines = channels_[slot + scope];
    if (lines.empty())
      for (int i = 0; i < scopeSize; ++i)
        lines.push_back(std::make_unique<RmaChannel>());
    return *lines.at(static_cast<std::size_t>(index));
  }
  RmaChannel& lineChannel(const std::string& slot, bool isRow, int line) {
    return channel(slot, isRow ? "@row" : "@col", line,
                   isRow ? config_.meshRows : config_.meshCols);
  }
  RmaChannel& pointChannel(const std::string& slot, int cpeId) {
    return channel(slot, "@p2p", cpeId, meshSize_);
  }

  void recordError() {
    {
      std::lock_guard<std::mutex> lock(errorMutex_);
      if (!firstError_) firstError_ = std::current_exception();
    }
    aborted_.store(true, std::memory_order_release);
    // Unblock any waiters (barrier and RMA channels) to avoid deadlock.
    barrierCv_.notify_all();
    std::lock_guard<std::mutex> lock(channelsMutex_);
    for (auto& [key, lines] : channels_)
      for (auto& channel : lines) channel->cv.notify_all();
  }

  void checkAborted() {
    std::lock_guard<std::mutex> lock(errorMutex_);
    if (firstError_) std::rethrow_exception(firstError_);
  }
};

namespace {

class ThreadedCpeServices final : public CpeServices {
 public:
  ThreadedCpeServices(MeshSimulator::Impl& mesh, int cpeId)
      : mesh_(mesh),
        cpeId_(cpeId),
        rid_(cpeId / mesh.config_.meshCols),
        cid_(cpeId % mesh.config_.meshCols),
        tracing_(trace::enabled()) {}

  [[nodiscard]] int rid() const override { return rid_; }
  [[nodiscard]] int cid() const override { return cid_; }
  [[nodiscard]] bool functional() const override { return mesh_.functional_; }

  void sync() override {
    ++counters_.syncs;
    const double entryClock = clock_;
    std::unique_lock<std::mutex> lock(mesh_.barrierMutex_);
    mesh_.clocks_[static_cast<std::size_t>(cpeId_)] = clock_;
    const std::int64_t myGeneration = mesh_.barrierGeneration_;
    if (++mesh_.barrierArrived_ == mesh_.meshSize_) {
      mesh_.barrierMaxClock_ =
          *std::max_element(mesh_.clocks_.begin(), mesh_.clocks_.end());
      mesh_.barrierArrived_ = 0;
      ++mesh_.barrierGeneration_;
      mesh_.barrierCv_.notify_all();
    } else {
      mesh_.barrierCv_.wait(lock, [&] {
        return mesh_.barrierGeneration_ != myGeneration ||
               mesh_.aborted_.load(std::memory_order_acquire);
      });
      if (mesh_.aborted_.load(std::memory_order_acquire))
        throw ProtocolError("mesh aborted while waiting at a barrier");
    }
    clock_ = mesh_.barrierMaxClock_ + mesh_.config_.syncSeconds;
    if (tracing_)
      trace::Tracer::global().simSpan(trace::kMeshPid, cpeId_, "sync", "sync",
                                      entryClock, clock_);
  }

  void dmaIssue(const DmaRequest& request) override {
    const std::int64_t bytes = request.tileRows * request.tileCols *
                               static_cast<std::int64_t>(sizeof(double));
    ++counters_.dmaMessages;
    counters_.dmaBytes += bytes;
    if (mesh_.functional_) moveDmaData(request);
    // Non-blocking, but messages from this CPE serialise on its DMA engine;
    // the reply slot was reset by the issue itself (reply = 0; dma_iget(...)
    // pattern of §4).
    const double start = std::max(clock_, dmaEngineBusyUntil_);
    const double done =
        start + mesh_.config_.dmaSeconds(bytes, request.tileRows);
    counters_.dmaBusySeconds += done - start;
    dmaEngineBusyUntil_ = done;
    slotCompletion_[request.slot] = done;
    clock_ += issueOverheadSeconds;
    if (tracing_)
      trace::Tracer::global().simSpan(
          trace::kMeshPid, trace::kDmaLaneOffset + cpeId_,
          strCat("dma:", request.isPut ? "put:" : "get:", request.array),
          "dma", start, done,
          {trace::arg("bytes", bytes), trace::arg("slot", request.slot)});
  }

  void rmaIssue(const RmaRequest& request) override {
    SW_CHECK(request.isSender, "rmaIssue called on a non-sender CPE");
    ++counters_.rmaBroadcastsSent;
    counters_.rmaBytesSent += request.bytes;
    RmaChannel* channel = nullptr;
    switch (request.kind) {
      case RmaKind::kRowBroadcast:
        channel = &mesh_.lineChannel(request.slot, /*isRow=*/true, rid_);
        break;
      case RmaKind::kColBroadcast:
        channel = &mesh_.lineChannel(request.slot, /*isRow=*/false, cid_);
        break;
      case RmaKind::kPointToPoint: {
        // Messages that leave both the row and the column of the sender
        // pass through a transit CPE (Fig.8a); the model charges the extra
        // hop as a second transfer.
        const int target =
            request.dstRid * mesh_.config_.meshCols + request.dstCid;
        channel = &mesh_.pointChannel(request.slot, target);
        break;
      }
    }
    if (mesh_.functional_) moveRmaData(request);
    double transfer = mesh_.config_.rmaSeconds(request.bytes);
    if (request.kind == RmaKind::kPointToPoint && request.dstRid != rid_ &&
        request.dstCid != cid_)
      transfer *= 2.0;  // transit hop
    counters_.rmaBusySeconds += transfer;
    {
      std::lock_guard<std::mutex> lock(channel->mutex);
      channel->rounds.push_back(RmaRound{clock_, transfer});
    }
    channel->cv.notify_all();
    if (tracing_) {
      const char* kind = request.kind == RmaKind::kRowBroadcast
                             ? "rowbcast"
                             : request.kind == RmaKind::kColBroadcast
                                   ? "colbcast"
                                   : "p2p";
      trace::Tracer::global().simSpan(
          trace::kMeshPid, trace::kRmaLaneOffset + cpeId_,
          strCat("rma:", kind), "rma", clock_, clock_ + transfer,
          {trace::arg("bytes", request.bytes),
           trace::arg("slot", request.slot)});
    }
    clock_ += issueOverheadSeconds;
  }

  void rmaWaitPoint(const std::string& slot) override {
    RmaChannel& channel = mesh_.pointChannel(slot, cpeId_);
    consumeRound(channel, slot);
  }

  void waitSlot(const std::string& slot, bool isRma,
                bool isRowBroadcast) override {
    if (!isRma) {
      auto it = slotCompletion_.find(slot);
      if (it == slotCompletion_.end())
        throw ProtocolError(
            strCat("dma_wait_value on slot '", slot, "' with no message"));
      if (it->second > clock_) {
        counters_.waitStallSeconds += it->second - clock_;
        if (tracing_)
          trace::Tracer::global().simSpan(trace::kMeshPid, cpeId_,
                                          strCat("wait:", slot), "stall",
                                          clock_, it->second);
        clock_ = it->second;
      }
      return;
    }
    waitRma(slot, isRowBroadcast);
  }

  void computeTime(double flops, ComputeRate rate) override {
    double seconds = 0.0;
    const char* name = "compute";
    switch (rate) {
      case ComputeRate::kAsmKernel:
        seconds = mesh_.config_.cpeComputeSeconds(
            flops, mesh_.config_.cpeFlopsPerCycle,
            mesh_.config_.asmKernelEfficiency);
        ++counters_.microKernelCalls;
        name = "microkernel";
        break;
      case ComputeRate::kNaive:
        seconds = mesh_.config_.cpeComputeSeconds(
            flops, mesh_.config_.naiveFlopsPerCycle);
        name = "naive_compute";
        break;
      case ComputeRate::kElementwise:
        seconds = mesh_.config_.cpeComputeSeconds(
            flops, mesh_.config_.elementwiseFlopsPerCycle);
        name = "elementwise";
        break;
    }
    if (tracing_)
      trace::Tracer::global().simSpan(trace::kMeshPid, cpeId_, name,
                                      "compute", clock_, clock_ + seconds,
                                      {trace::arg("flops", flops)});
    clock_ += seconds;
    counters_.computeSeconds += seconds;
  }

  [[nodiscard]] double* spmPtr(std::int64_t offsetBytes) override {
    if (!mesh_.functional_) return nullptr;
    return spmPtrOf(cpeId_, offsetBytes);
  }

  [[nodiscard]] double clockSeconds() const override { return clock_; }
  [[nodiscard]] const CpeCounters& counters() const override {
    return counters_;
  }

 private:
  static constexpr double issueOverheadSeconds = 0.05e-6;

  double* spmPtrOf(int cpe, std::int64_t offsetBytes) {
    auto& spm = mesh_.spms_[static_cast<std::size_t>(cpe)];
    if (offsetBytes < 0 ||
        offsetBytes % static_cast<std::int64_t>(sizeof(double)) != 0 ||
        offsetBytes >= static_cast<std::int64_t>(spm.size() * sizeof(double)))
      throw ProtocolError(strCat("SPM access at byte ", offsetBytes,
                                 " outside the ", mesh_.config_.spmBytes,
                                 "-byte SPM"));
    return spm.data() + offsetBytes / static_cast<std::int64_t>(sizeof(double));
  }

  void moveDmaData(const DmaRequest& request) {
    HostArray& array = mesh_.owner_.memory().get(request.array);
    SW_CHECK(array.hasData(), "functional DMA against a virtual array");
    double* spm = spmPtrOf(cpeId_, request.spmOffsetBytes);
    // Validate the SPM side of the transfer fits.
    const std::int64_t words = request.tileRows * request.tileCols;
    (void)spmPtrOf(cpeId_, request.spmOffsetBytes +
                               (words - 1) *
                                   static_cast<std::int64_t>(sizeof(double)));
    for (std::int64_t r = 0; r < request.tileRows; ++r) {
      const std::int64_t hostOffset = array.offsetOf(
          request.batchIndex, request.rowStart + r, request.colStart);
      // Right edge of the row must also be in bounds.
      (void)array.offsetOf(request.batchIndex, request.rowStart + r,
                           request.colStart + request.tileCols - 1);
      double* hostRow = array.data() + hostOffset;
      double* spmRow = spm + r * request.tileCols;
      const std::size_t bytes =
          static_cast<std::size_t>(request.tileCols) * sizeof(double);
      if (request.isPut)
        std::memcpy(hostRow, spmRow, bytes);
      else
        std::memcpy(spmRow, hostRow, bytes);
    }
  }

  void moveRmaData(const RmaRequest& request) {
    const double* src = spmPtrOf(cpeId_, request.srcSpmOffsetBytes);
    if (request.kind == RmaKind::kPointToPoint) {
      const int target =
          request.dstRid * mesh_.config_.meshCols + request.dstCid;
      std::memcpy(spmPtrOf(target, request.dstSpmOffsetBytes), src,
                  static_cast<std::size_t>(request.bytes));
      return;
    }
    const bool isRow = request.kind == RmaKind::kRowBroadcast;
    const int peers =
        isRow ? mesh_.config_.meshCols : mesh_.config_.meshRows;
    for (int p = 0; p < peers; ++p) {
      const int target = isRow ? rid_ * mesh_.config_.meshCols + p
                               : p * mesh_.config_.meshCols + cid_;
      double* dst = spmPtrOf(target, request.dstSpmOffsetBytes);
      std::memcpy(dst, src, static_cast<std::size_t>(request.bytes));
    }
  }

  /// Block for the next unconsumed round on `channel`; rounds are matched
  /// ordinally per slot (issue/wait strictly alternate in generated code).
  void consumeRound(RmaChannel& channel, const std::string& slot) {
    const std::size_t round = rmaConsumed_[slot]++;
    std::unique_lock<std::mutex> lock(channel.mutex);
    channel.cv.wait(lock, [&] {
      return channel.rounds.size() > round ||
             mesh_.aborted_.load(std::memory_order_acquire);
    });
    if (channel.rounds.size() <= round)
      throw ProtocolError("mesh aborted while waiting for an RMA message");
    const RmaRound& r = channel.rounds[round];
    const double completion = r.sendTimeSeconds + r.transferSeconds;
    if (completion > clock_) {
      counters_.waitStallSeconds += completion - clock_;
      if (tracing_)
        trace::Tracer::global().simSpan(trace::kMeshPid, cpeId_,
                                        strCat("wait:", slot), "stall",
                                        clock_, completion);
      clock_ = completion;
    }
  }

  void waitRma(const std::string& slot, bool isRow) {
    const int line = isRow ? rid_ : cid_;
    consumeRound(mesh_.lineChannel(slot, isRow, line), slot);
  }

  MeshSimulator::Impl& mesh_;
  int cpeId_;
  int rid_;
  int cid_;
  bool tracing_;
  double clock_ = 0.0;
  double dmaEngineBusyUntil_ = 0.0;
  CpeCounters counters_;
  std::map<std::string, double> slotCompletion_;
  std::map<std::string, std::size_t> rmaConsumed_;
};

}  // namespace

MeshSimulator::MeshSimulator(const ArchConfig& config, bool functional)
    : config_(config), functional_(functional) {
  impl_ = std::make_unique<Impl>(*this, config_, functional_);
}

MeshSimulator::~MeshSimulator() = default;

MeshRunResult MeshSimulator::run(
    const std::function<void(CpeServices&)>& body) {
  // Fresh per-run state (channels, barrier) while keeping SPM/host memory.
  impl_->channels_.clear();
  impl_->firstError_ = nullptr;
  impl_->aborted_.store(false);
  impl_->barrierArrived_ = 0;
  std::fill(impl_->clocks_.begin(), impl_->clocks_.end(), 0.0);

  if (trace::enabled()) {
    // Name the 64 CPE lanes (plus the DMA/RMA engine side lanes) so the
    // per-CPE timelines group legibly in Perfetto.
    trace::Tracer& tracer = trace::Tracer::global();
    tracer.setProcessName(trace::kMeshPid, "mesh simulator (simulated clock)");
    for (int id = 0; id < impl_->meshSize_; ++id) {
      const int rid = id / config_.meshCols;
      const int cid = id % config_.meshCols;
      tracer.setThreadName(trace::kMeshPid, id,
                           strCat("CPE ", rid, ",", cid));
      tracer.setThreadName(trace::kMeshPid, trace::kDmaLaneOffset + id,
                           strCat("CPE ", rid, ",", cid, " dma"));
      tracer.setThreadName(trace::kMeshPid, trace::kRmaLaneOffset + id,
                           strCat("CPE ", rid, ",", cid, " rma"));
    }
  }

  std::vector<std::unique_ptr<ThreadedCpeServices>> services;
  services.reserve(static_cast<std::size_t>(impl_->meshSize_));
  for (int id = 0; id < impl_->meshSize_; ++id)
    services.push_back(std::make_unique<ThreadedCpeServices>(*impl_, id));

  std::vector<std::thread> threads;
  threads.reserve(services.size());
  for (auto& svc : services) {
    threads.emplace_back([&body, &svc, this] {
      try {
        body(*svc);
      } catch (...) {
        impl_->recordError();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  impl_->checkAborted();

  MeshRunResult result;
  result.perCpeSeconds.reserve(services.size());
  result.perCpeCounters.reserve(services.size());
  for (auto& svc : services) {
    result.perCpeSeconds.push_back(svc->clockSeconds());
    result.perCpeCounters.push_back(svc->counters());
    result.totals.add(svc->counters());
  }
  result.seconds =
      *std::max_element(result.perCpeSeconds.begin(),
                        result.perCpeSeconds.end()) +
      config_.spawnOverheadSeconds;
  return result;
}

}  // namespace sw::sunway
