#include "sunway/mesh.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "support/error.h"
#include "support/format.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace sw::sunway {

namespace {

/// One in-flight or completed broadcast round on a mesh line.
struct RmaRound {
  double sendTimeSeconds = 0.0;
  double transferSeconds = 0.0;
  /// Injected transient loss: the round exists (so ordinal matching on the
  /// slot stays aligned) but carries no data; receivers fail cleanly.
  bool dropped = false;
};

/// Compact record of one in-flight DMA, kept as interned ids so the issue
/// path never formats strings; the watchdog dump resolves names lazily.
struct PendingDmaInfo {
  int slotId = -1;
  int arrayId = -1;
  bool isPut = false;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t spmOffsetBytes = 0;
};

/// Snapshot of one CPE's execution state for the watchdog's no-progress
/// detection and the per-CPE dump attached to its ProtocolError.  Updated
/// by the owning CPE thread whenever it blocks or resumes.
struct CpeStatus {
  enum State { kRunning, kBarrier, kRmaWait, kDmaHang, kDone };

  std::mutex mutex;
  State state = kRunning;
  std::string detail;  // what the CPE is blocked on
  double clock = 0.0;
  CpeCounters counters;
  std::vector<PendingDmaInfo> pendingDma;
  std::vector<std::pair<int, std::size_t>> rmaConsumed;  // slotId -> rounds
};

const char* stateName(CpeStatus::State state) {
  switch (state) {
    case CpeStatus::kRunning: return "running";
    case CpeStatus::kBarrier: return "barrier";
    case CpeStatus::kRmaWait: return "rma-wait";
    case CpeStatus::kDmaHang: return "dma-hang";
    case CpeStatus::kDone: return "done";
  }
  return "?";
}

/// Rendezvous channel for one (reply slot, mesh line) pair.  Senders append
/// rounds; receivers consume them in order (the generated code issues and
/// waits strictly alternately per line, so ordinal matching is exact).
struct RmaChannel {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<RmaRound> rounds;
};

}  // namespace

class MeshSimulator::Impl {
 public:
  Impl(MeshSimulator& owner, const ArchConfig& config, bool functional)
      : owner_(owner),
        config_(config),
        functional_(functional),
        meshSize_(config.meshSize()),
        clocks_(static_cast<std::size_t>(meshSize_), 0.0) {
    if (functional_) {
      spms_.resize(static_cast<std::size_t>(meshSize_));
      const std::size_t words =
          static_cast<std::size_t>(config_.spmBytes) / sizeof(double);
      for (auto& spm : spms_) spm.assign(words, 0.0);
    }
  }

  MeshSimulator& owner_;
  const ArchConfig& config_;
  bool functional_;
  int meshSize_;

  // --- barrier with clock-max completion ---
  std::mutex barrierMutex_;
  std::condition_variable barrierCv_;
  int barrierArrived_ = 0;
  std::int64_t barrierGeneration_ = 0;
  double barrierMaxClock_ = 0.0;
  std::vector<double> clocks_;

  // --- mesh-wide interners: slot / array names -> dense ids shared by
  // every CPE, so RMA channel lines and lowered-plan bindings agree across
  // the mesh regardless of per-CPE interning order.  Ids are stable across
  // runs; per-run state (channels, rounds) is reset separately. ---
  std::mutex internMutex_;
  std::unordered_map<std::string, int> slotIdByName_;
  std::vector<std::string> slotNameTable_;
  std::unordered_map<std::string, int> arrayIdByName_;
  std::vector<std::string> arrayNameTable_;

  int internSlotMeshWide(const std::string& name) {
    std::lock_guard<std::mutex> lock(internMutex_);
    auto [it, inserted] =
        slotIdByName_.emplace(name, static_cast<int>(slotNameTable_.size()));
    if (inserted) slotNameTable_.push_back(name);
    return it->second;
  }
  int internArrayMeshWide(const std::string& name) {
    std::lock_guard<std::mutex> lock(internMutex_);
    auto [it, inserted] =
        arrayIdByName_.emplace(name, static_cast<int>(arrayNameTable_.size()));
    if (inserted) arrayNameTable_.push_back(name);
    return it->second;
  }
  std::string slotName(int id) {
    std::lock_guard<std::mutex> lock(internMutex_);
    if (id < 0 || static_cast<std::size_t>(id) >= slotNameTable_.size())
      return "?";
    return slotNameTable_[static_cast<std::size_t>(id)];
  }
  std::string arrayName(int id) {
    std::lock_guard<std::mutex> lock(internMutex_);
    if (id < 0 || static_cast<std::size_t>(id) >= arrayNameTable_.size())
      return "?";
    return arrayNameTable_[static_cast<std::size_t>(id)];
  }

  // --- RMA channels, indexed by interned slot id then mesh line ---
  struct SlotChannels {
    std::vector<std::unique_ptr<RmaChannel>> row;
    std::vector<std::unique_ptr<RmaChannel>> col;
    std::vector<std::unique_ptr<RmaChannel>> p2p;
  };
  std::mutex channelsMutex_;
  std::vector<std::unique_ptr<SlotChannels>> channels_;

  // --- per-CPE SPM (functional mode) ---
  std::vector<std::vector<double>> spms_;

  // --- fault injection & watchdog ---
  std::shared_ptr<const FaultPlan> faultPlan_;
  double watchdogMillis_ = MeshSimulator::defaultWatchdogMillis();
  /// Per-CPE status board (deque: CpeStatus holds a mutex, so entries must
  /// never move).  Rebuilt at the start of every run.
  std::deque<CpeStatus> status_;
  /// Bumped on every status transition; the watchdog reads it to tell a
  /// slow mesh from a stuck one.
  std::atomic<std::uint64_t> progress_{0};
  std::mutex watchdogMutex_;
  std::condition_variable watchdogCv_;
  bool watchdogStop_ = false;
  /// CPEs waiting on a permanently dropped DMA reply park here until the
  /// watchdog (or another CPE's error) aborts the run.
  std::mutex hangMutex_;
  std::condition_variable hangCv_;

  // --- error funneling ---
  std::atomic<bool> aborted_{false};
  std::mutex errorMutex_;
  std::exception_ptr firstError_;

  /// Rendezvous channels: broadcasts use one channel per mesh line,
  /// point-to-point one channel per destination CPE.  RmaChannel objects
  /// never move once created, so the returned reference stays valid while
  /// the table grows.
  RmaChannel& channel(int slotId,
                      std::vector<std::unique_ptr<RmaChannel>>
                          SlotChannels::*scope,
                      int index, int scopeSize) {
    std::lock_guard<std::mutex> lock(channelsMutex_);
    if (channels_.size() <= static_cast<std::size_t>(slotId))
      channels_.resize(static_cast<std::size_t>(slotId) + 1);
    auto& entry = channels_[static_cast<std::size_t>(slotId)];
    if (!entry) entry = std::make_unique<SlotChannels>();
    auto& lines = (*entry).*scope;
    if (lines.empty())
      for (int i = 0; i < scopeSize; ++i)
        lines.push_back(std::make_unique<RmaChannel>());
    return *lines.at(static_cast<std::size_t>(index));
  }
  RmaChannel& lineChannel(int slotId, bool isRow, int line) {
    return channel(slotId, isRow ? &SlotChannels::row : &SlotChannels::col,
                   line, isRow ? config_.meshRows : config_.meshCols);
  }
  RmaChannel& pointChannel(int slotId, int cpeId) {
    return channel(slotId, &SlotChannels::p2p, cpeId, meshSize_);
  }

  void recordError() { abortWith(std::current_exception()); }

  /// Record the first error, flip the abort flag and wake every waiter.
  /// Each notify happens while holding the mutex its waiters' predicates
  /// are checked under — notifying without it can land between a waiter's
  /// predicate check and its sleep and be lost, leaving the mesh hung on
  /// the very error meant to unblock it.
  void abortWith(std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(errorMutex_);
      if (!firstError_) firstError_ = std::move(error);
    }
    aborted_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(barrierMutex_);
      barrierCv_.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(hangMutex_);
      hangCv_.notify_all();
    }
    std::lock_guard<std::mutex> lock(channelsMutex_);
    for (auto& entry : channels_) {
      if (!entry) continue;
      for (auto* lines : {&entry->row, &entry->col, &entry->p2p})
        for (auto& channel : *lines) {
          std::lock_guard<std::mutex> channelLock(channel->mutex);
          channel->cv.notify_all();
        }
    }
  }

  void checkAborted() {
    std::lock_guard<std::mutex> lock(errorMutex_);
    if (firstError_) std::rethrow_exception(firstError_);
  }

  /// True when no CPE is runnable: every one is parked at a barrier, an RMA
  /// round wait, or a lost DMA reply — and at least one is not done.  All
  /// transitions out of those states bump progress_, so this staying true
  /// across a full watchdog window means the mesh cannot move again.
  bool allLiveBlocked() {
    bool anyBlocked = false;
    for (CpeStatus& status : status_) {
      std::lock_guard<std::mutex> lock(status.mutex);
      if (status.state == CpeStatus::kRunning) return false;
      if (status.state != CpeStatus::kDone) anyBlocked = true;
    }
    return anyBlocked;
  }

  /// The watchdog's deadlock report: one line per CPE with its blocked-on
  /// site, logical clock, message counters and pending descriptors.
  std::string buildStateDump(double stalledMillis) {
    int counts[5] = {0, 0, 0, 0, 0};
    std::ostringstream os;
    for (int id = 0; id < meshSize_; ++id) {
      CpeStatus& status = status_[static_cast<std::size_t>(id)];
      std::lock_guard<std::mutex> lock(status.mutex);
      ++counts[status.state];
      os << "\n  CPE " << id / config_.meshCols << "," << id % config_.meshCols
         << " state=" << stateName(status.state);
      if (!status.detail.empty()) os << " blocked_on=\"" << status.detail << '"';
      os << " clock=" << status.clock << "s dma_msgs="
         << status.counters.dmaMessages
         << " rma_sent=" << status.counters.rmaBroadcastsSent
         << " syncs=" << status.counters.syncs
         << " faults=" << status.counters.faultsInjected
         << " retries=" << status.counters.dmaRetries;
      if (!status.pendingDma.empty()) {
        os << " pending_dma=[";
        bool first = true;
        for (const PendingDmaInfo& dma : status.pendingDma) {
          if (!first) os << "; ";
          first = false;
          os << (dma.isPut ? "put " : "get ") << arrayName(dma.arrayId)
             << " slot=" << slotName(dma.slotId) << " " << dma.rows << "x"
             << dma.cols << "@spm+" << dma.spmOffsetBytes;
        }
        os << "]";
      }
      if (!status.rmaConsumed.empty()) {
        os << " rma_rounds=[";
        bool first = true;
        for (const auto& [slotId, rounds] : status.rmaConsumed) {
          if (!first) os << "; ";
          first = false;
          os << slotName(slotId) << ":" << rounds;
        }
        os << "]";
      }
    }
    return strCat("mesh watchdog: no progress for ", stalledMillis,
                  " ms — aborting a deadlocked mesh run (",
                  counts[CpeStatus::kBarrier], " at barrier, ",
                  counts[CpeStatus::kRmaWait], " waiting on RMA, ",
                  counts[CpeStatus::kDmaHang], " waiting on a lost DMA reply, ",
                  counts[CpeStatus::kDone], " done); per-CPE state dump:",
                  os.str());
  }

  /// Poll the status board until the run ends; convert a full no-progress
  /// window into a ProtocolError so a protocol violation diagnoses itself
  /// instead of hanging the process.
  void watchdogLoop() {
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        std::chrono::duration<double, std::milli>(watchdogMillis_);
    auto poll = std::chrono::duration_cast<Clock::duration>(deadline) / 4;
    const auto minPoll = std::chrono::milliseconds(1);
    const auto maxPoll = std::chrono::milliseconds(250);
    if (poll < minPoll) poll = minPoll;
    if (poll > maxPoll) poll = maxPoll;

    std::uint64_t lastProgress = progress_.load(std::memory_order_acquire);
    Clock::time_point lastChange = Clock::now();
    bool fired = false;
    std::unique_lock<std::mutex> lock(watchdogMutex_);
    while (!watchdogStop_) {
      watchdogCv_.wait_for(lock, poll, [&] { return watchdogStop_; });
      if (watchdogStop_) break;
      if (fired || aborted_.load(std::memory_order_acquire)) continue;
      const std::uint64_t now = progress_.load(std::memory_order_acquire);
      if (now != lastProgress || !allLiveBlocked()) {
        lastProgress = now;
        lastChange = Clock::now();
        continue;
      }
      const auto stalled = std::chrono::duration<double, std::milli>(
          Clock::now() - lastChange);
      if (stalled < deadline) continue;
      fired = true;
      metrics::MetricsRegistry::global().add("watchdog.fired", 1.0);
      const std::string dump = buildStateDump(stalled.count());
      SW_WARN("mesh", "event=watchdog.fired stalled_ms=", stalled.count(),
              " deadline_ms=", watchdogMillis_);
      abortWith(std::make_exception_ptr(ProtocolError(dump)));
    }
  }
};

namespace {

class ThreadedCpeServices final : public CpeServices {
 public:
  ThreadedCpeServices(MeshSimulator::Impl& mesh, int cpeId)
      : mesh_(mesh),
        plan_(mesh.faultPlan_.get()),
        cpeId_(cpeId),
        rid_(cpeId / mesh.config_.meshCols),
        cid_(cpeId % mesh.config_.meshCols),
        tracing_(trace::enabled()) {}

  [[nodiscard]] int rid() const override { return rid_; }
  [[nodiscard]] int cid() const override { return cid_; }
  [[nodiscard]] bool functional() const override { return mesh_.functional_; }

  [[nodiscard]] bool knowsArray(const std::string& array) const override {
    return !mesh_.functional_ || mesh_.owner_.memory().has(array);
  }

  /// Mesh-wide interning (all CPEs agree on ids) with a per-CPE memo so
  /// the legacy string path never takes the mesh mutex twice per name.
  [[nodiscard]] int internSlot(const std::string& name) override {
    auto it = localSlotIds_.find(name);
    if (it != localSlotIds_.end()) return it->second;
    const int id = mesh_.internSlotMeshWide(name);
    localSlotIds_.emplace(name, id);
    return id;
  }

  [[nodiscard]] int internArray(const std::string& name) override {
    if (!knowsArray(name)) return -1;
    return arrayNameId(name);
  }

  void stallFor(double seconds) override {
    if (seconds <= 0.0) return;
    counters_.waitStallSeconds += seconds;
    counters_.retryStallSeconds += seconds;
    clock_ += seconds;
  }

  void noteDmaRetry() override { ++counters_.dmaRetries; }

  /// Publish this CPE's state to the watchdog's status board.  Every call
  /// bumps the mesh progress counter, so any state transition restarts the
  /// no-progress window.
  void publishStatus(CpeStatus::State state, std::string detail) {
    CpeStatus& status = mesh_.status_[static_cast<std::size_t>(cpeId_)];
    {
      std::lock_guard<std::mutex> lock(status.mutex);
      status.state = state;
      status.detail = std::move(detail);
      status.clock = clock_;
      status.counters = counters_;
      status.pendingDma.clear();
      status.rmaConsumed.clear();
      for (std::size_t id = 0; id < slots_.size(); ++id) {
        const SlotState& slot = slots_[id];
        if (slot.pendingValid) status.pendingDma.push_back(slot.pending);
        if (slot.rmaConsumed > 0)
          status.rmaConsumed.emplace_back(static_cast<int>(id),
                                          slot.rmaConsumed);
      }
    }
    mesh_.progress_.fetch_add(1, std::memory_order_acq_rel);
  }

  void sync() override {
    ++counters_.syncs;
    if (plan_ != nullptr) {
      const FaultDecision fault =
          plan_->decide(FaultOpClass::kSync, cpeId_, syncOccurrence_++);
      counters_.faultsInjected += fault.injected;
      if (fault.stallSeconds > 0.0) {
        // The stalled CPE reaches the barrier late; everyone inherits the
        // delay through the barrier's clock max.
        counters_.waitStallSeconds += fault.stallSeconds;
        counters_.syncStallSeconds += fault.stallSeconds;
        clock_ += fault.stallSeconds;
      }
    }
    const double entryClock = clock_;
    publishStatus(CpeStatus::kBarrier, "synch()");
    std::unique_lock<std::mutex> lock(mesh_.barrierMutex_);
    mesh_.clocks_[static_cast<std::size_t>(cpeId_)] = clock_;
    const std::int64_t myGeneration = mesh_.barrierGeneration_;
    if (++mesh_.barrierArrived_ == mesh_.meshSize_) {
      mesh_.barrierMaxClock_ =
          *std::max_element(mesh_.clocks_.begin(), mesh_.clocks_.end());
      mesh_.barrierArrived_ = 0;
      ++mesh_.barrierGeneration_;
      mesh_.barrierCv_.notify_all();
    } else {
      mesh_.barrierCv_.wait(lock, [&] {
        return mesh_.barrierGeneration_ != myGeneration ||
               mesh_.aborted_.load(std::memory_order_acquire);
      });
      if (mesh_.aborted_.load(std::memory_order_acquire)) {
        lock.unlock();
        publishStatus(CpeStatus::kRunning, "");
        throw ProtocolError("mesh aborted while waiting at a barrier");
      }
    }
    clock_ = mesh_.barrierMaxClock_ + mesh_.config_.syncSeconds;
    counters_.syncStallSeconds += clock_ - entryClock;
    lock.unlock();
    publishStatus(CpeStatus::kRunning, "");
    if (tracing_)
      trace::Tracer::global().simSpan(trace::kMeshPid, cpeId_, "sync", "sync",
                                      entryClock, clock_);
  }

  void dmaIssue(const DmaRequest& request) override {
    const int slotId =
        request.slotId >= 0 ? request.slotId : internSlot(request.slot);
    const std::int64_t bytes = request.tileRows * request.tileCols *
                               static_cast<std::int64_t>(sizeof(double));
    ++counters_.dmaMessages;
    counters_.dmaBytes += bytes;

    FaultDecision fault;
    std::int64_t occurrence = 0;
    if (plan_ != nullptr) {
      occurrence = dmaOccurrence_++;
      fault = plan_->decide(FaultOpClass::kDma, cpeId_, occurrence);
      counters_.faultsInjected += fault.injected;
    }

    const bool dropped = fault.dropTransient || fault.dropPermanent;
    // A detected corruption on a put must not land in host memory — the
    // simulated ECC rejects the tile, so the site degrades to a transient
    // failure the interpreter can re-issue.  Corruption on a get lands in
    // SPM and is then re-fetched clean by the retry.
    const bool corruptPut = fault.corrupt && request.isPut;
    if (mesh_.functional_ && !dropped && !corruptPut) {
      moveDmaData(request);
      if (fault.corrupt) {
        double* spm = spmPtrOf(cpeId_, request.spmOffsetBytes);
        FaultPlan::corruptTile(spm, request.tileRows * request.tileCols,
                               cpeId_, occurrence);
      }
    }
    SlotState& slot = slotState(slotId);
    if (fault.dropPermanent) {
      slot.hang = true;
    } else if (fault.dropTransient) {
      slot.failedReason = "was dropped in transit (injected fault)";
    } else if (fault.corrupt) {
      slot.failedReason =
          request.isPut
              ? "failed ECC before reaching main memory (injected fault)"
              : "arrived corrupted (injected fault)";
    }
    slot.pendingValid = true;
    slot.pending.slotId = slotId;
    slot.pending.arrayId =
        request.arrayId >= 0 ? request.arrayId : arrayNameId(request.array);
    slot.pending.isPut = request.isPut;
    slot.pending.rows = request.tileRows;
    slot.pending.cols = request.tileCols;
    slot.pending.spmOffsetBytes = request.spmOffsetBytes;

    // Non-blocking, but messages from this CPE serialise on its DMA engine;
    // the reply slot was reset by the issue itself (reply = 0; dma_iget(...)
    // pattern of §4).
    const double start = std::max(clock_, dmaEngineBusyUntil_);
    const double done = start +
                        mesh_.config_.dmaSeconds(bytes, request.tileRows) +
                        fault.delaySeconds;
    counters_.dmaBusySeconds += done - start;
    dmaEngineBusyUntil_ = done;
    slot.completion = done;
    slot.hasMessage = true;
    clock_ += issueOverheadSeconds;
    if (tracing_)
      trace::Tracer::global().simSpan(
          trace::kMeshPid, trace::kDmaLaneOffset + cpeId_,
          strCat("dma:", request.isPut ? "put:" : "get:", request.array),
          "dma", start, done,
          {trace::arg("bytes", bytes), trace::arg("slot", request.slot)});
  }

  void rmaIssue(const RmaRequest& request) override {
    SW_CHECK(request.isSender, "rmaIssue called on a non-sender CPE");
    ++counters_.rmaBroadcastsSent;
    counters_.rmaBytesSent += request.bytes;

    FaultDecision fault;
    if (plan_ != nullptr) {
      fault = plan_->decide(FaultOpClass::kRma, cpeId_, rmaOccurrence_++);
      counters_.faultsInjected += fault.injected;
    }

    const int slotId =
        request.slotId >= 0 ? request.slotId : internSlot(request.slot);
    RmaChannel* channel = nullptr;
    switch (request.kind) {
      case RmaKind::kRowBroadcast:
        channel = &mesh_.lineChannel(slotId, /*isRow=*/true, rid_);
        break;
      case RmaKind::kColBroadcast:
        channel = &mesh_.lineChannel(slotId, /*isRow=*/false, cid_);
        break;
      case RmaKind::kPointToPoint: {
        // Messages that leave both the row and the column of the sender
        // pass through a transit CPE (Fig.8a); the model charges the extra
        // hop as a second transfer.
        const int target =
            request.dstRid * mesh_.config_.meshCols + request.dstCid;
        channel = &mesh_.pointChannel(slotId, target);
        break;
      }
    }
    const bool dropped = fault.dropTransient || fault.dropPermanent;
    if (mesh_.functional_ && !dropped) moveRmaData(request);
    double transfer = mesh_.config_.rmaSeconds(request.bytes) +
                      fault.delaySeconds;
    if (request.kind == RmaKind::kPointToPoint && request.dstRid != rid_ &&
        request.dstCid != cid_)
      transfer *= 2.0;  // transit hop
    counters_.rmaBusySeconds += transfer;
    if (fault.dropPermanent) {
      // The message is simply lost: no round is appended, so every receiver
      // of this line blocks forever on the slot's next ordinal — the
      // watchdog's job.  (A transient drop must instead push a failed round
      // below, or receivers would silently consume the *next* round's data
      // under this ordinal and produce wrong results.)
    } else {
      std::lock_guard<std::mutex> lock(channel->mutex);
      channel->rounds.push_back(RmaRound{clock_, transfer,
                                         /*dropped=*/fault.dropTransient});
      channel->cv.notify_all();
    }
    if (tracing_) {
      const char* kind = request.kind == RmaKind::kRowBroadcast
                             ? "rowbcast"
                             : request.kind == RmaKind::kColBroadcast
                                   ? "colbcast"
                                   : "p2p";
      trace::Tracer::global().simSpan(
          trace::kMeshPid, trace::kRmaLaneOffset + cpeId_,
          strCat("rma:", kind), "rma", clock_, clock_ + transfer,
          {trace::arg("bytes", request.bytes),
           trace::arg("slot", request.slot)});
    }
    clock_ += issueOverheadSeconds;
  }

  void rmaWaitPoint(const std::string& slot) override {
    rmaWaitPointId(internSlot(slot));
  }

  void rmaWaitPointId(int slotId) override {
    RmaChannel& channel = mesh_.pointChannel(slotId, cpeId_);
    consumeRound(channel, slotId);
  }

  void waitSlot(const std::string& slot, bool isRma,
                bool isRowBroadcast) override {
    waitSlotId(internSlot(slot), isRma, isRowBroadcast);
  }

  void waitSlotId(int slotId, bool isRma, bool isRowBroadcast) override {
    if (!isRma) {
      SlotState& slot = slotState(slotId);
      if (!slot.hasMessage)
        throw ProtocolError(strCat("dma_wait_value on slot '",
                                   mesh_.slotName(slotId),
                                   "' with no message"));
      if (slot.completion > clock_) {
        counters_.waitStallSeconds += slot.completion - clock_;
        counters_.dmaStallSeconds += slot.completion - clock_;
        if (tracing_)
          trace::Tracer::global().simSpan(
              trace::kMeshPid, cpeId_,
              strCat("wait:", mesh_.slotName(slotId)), "stall", clock_,
              slot.completion);
        clock_ = slot.completion;
      }
      if (slot.hang) hangOnLostReply(mesh_.slotName(slotId));  // never returns
      if (slot.failedReason != nullptr) {
        const char* reason = slot.failedReason;
        slot.failedReason = nullptr;
        throw TransientError(strCat("DMA reply on slot '",
                                    mesh_.slotName(slotId), "' ", reason));
      }
      slot.pendingValid = false;
      return;
    }
    const int line = isRowBroadcast ? rid_ : cid_;
    consumeRound(mesh_.lineChannel(slotId, isRowBroadcast, line), slotId);
  }

  void computeTime(double flops, ComputeRate rate) override {
    double seconds = 0.0;
    const char* name = "compute";
    switch (rate) {
      case ComputeRate::kAsmKernel:
        seconds = mesh_.config_.cpeComputeSeconds(
            flops, mesh_.config_.cpeFlopsPerCycle,
            mesh_.config_.asmKernelEfficiency);
        ++counters_.microKernelCalls;
        counters_.flops += flops;
        name = "microkernel";
        break;
      case ComputeRate::kNaive:
        seconds = mesh_.config_.cpeComputeSeconds(
            flops, mesh_.config_.naiveFlopsPerCycle);
        counters_.flops += flops;
        name = "naive_compute";
        break;
      case ComputeRate::kElementwise:
        seconds = mesh_.config_.cpeComputeSeconds(
            flops, mesh_.config_.elementwiseFlopsPerCycle);
        name = "elementwise";
        break;
    }
    if (tracing_)
      trace::Tracer::global().simSpan(trace::kMeshPid, cpeId_, name,
                                      "compute", clock_, clock_ + seconds,
                                      {trace::arg("flops", flops)});
    clock_ += seconds;
    counters_.computeSeconds += seconds;
  }

  void computeTimeMicro(double flops, int mr, int nr) override {
    const double seconds = mesh_.config_.cpeComputeSeconds(
        flops, mesh_.config_.cpeFlopsPerCycle,
        mesh_.config_.microKernelEfficiency(mr, nr));
    ++counters_.microKernelCalls;
    counters_.flops += flops;
    if (tracing_)
      trace::Tracer::global().simSpan(trace::kMeshPid, cpeId_, "microkernel",
                                      "compute", clock_, clock_ + seconds,
                                      {trace::arg("flops", flops)});
    clock_ += seconds;
    counters_.computeSeconds += seconds;
  }

  [[nodiscard]] double* spmPtr(std::int64_t offsetBytes) override {
    if (!mesh_.functional_) return nullptr;
    return spmPtrOf(cpeId_, offsetBytes);
  }

  [[nodiscard]] double clockSeconds() const override { return clock_; }
  [[nodiscard]] const CpeCounters& counters() const override {
    return counters_;
  }

 private:
  static constexpr double issueOverheadSeconds = 0.05e-6;

  double* spmPtrOf(int cpe, std::int64_t offsetBytes) {
    auto& spm = mesh_.spms_[static_cast<std::size_t>(cpe)];
    if (offsetBytes < 0 ||
        offsetBytes % static_cast<std::int64_t>(sizeof(double)) != 0 ||
        offsetBytes >= static_cast<std::int64_t>(spm.size() * sizeof(double)))
      throw ProtocolError(strCat("SPM access at byte ", offsetBytes,
                                 " outside the ", mesh_.config_.spmBytes,
                                 "-byte SPM"));
    return spm.data() + offsetBytes / static_cast<std::int64_t>(sizeof(double));
  }

  /// Memoized mesh-wide id of an array name (dump/bookkeeping; no validity
  /// semantics — internArray is the public, validity-checking entry point).
  int arrayNameId(const std::string& name) {
    auto it = localArrayIds_.find(name);
    if (it != localArrayIds_.end()) return it->second;
    const int id = mesh_.internArrayMeshWide(name);
    localArrayIds_.emplace(name, id);
    return id;
  }

  /// Resolve the host array, through the interned-id cache when the request
  /// carries one (HostMemory is node-based, so cached pointers are stable).
  HostArray& hostArray(const DmaRequest& request) {
    if (request.arrayId >= 0) {
      const auto id = static_cast<std::size_t>(request.arrayId);
      if (id < arrayCache_.size() && arrayCache_[id] != nullptr)
        return *arrayCache_[id];
      HostArray& array = mesh_.owner_.memory().get(request.array);
      if (id >= arrayCache_.size()) arrayCache_.resize(id + 1, nullptr);
      arrayCache_[id] = &array;
      return array;
    }
    return mesh_.owner_.memory().get(request.array);
  }

  void moveDmaData(const DmaRequest& request) {
    // Edge-tile transfers clamped to nothing still signal their reply slot
    // but move no data.
    if (request.tileRows == 0 || request.tileCols == 0) return;
    HostArray& array = hostArray(request);
    SW_CHECK(array.hasData(), "functional DMA against a virtual array");
    double* spm = spmPtrOf(cpeId_, request.spmOffsetBytes);
    // SPM row stride: clamped edge tiles keep the full-tile stride so the
    // in-SPM layout matches what the compute/element-wise marks expect.
    const std::int64_t stride = request.spmRowStrideElems > 0
                                    ? request.spmRowStrideElems
                                    : request.tileCols;
    SW_CHECK(stride >= request.tileCols,
             strCat("SPM row stride ", stride, " narrower than tile row ",
                    request.tileCols));
    // Validate the SPM side of the transfer fits (last word of last row).
    const std::int64_t lastWord =
        (request.tileRows - 1) * stride + request.tileCols - 1;
    (void)spmPtrOf(cpeId_, request.spmOffsetBytes +
                               lastWord *
                                   static_cast<std::int64_t>(sizeof(double)));
    for (std::int64_t r = 0; r < request.tileRows; ++r) {
      const std::int64_t hostOffset = array.offsetOf(
          request.batchIndex, request.rowStart + r, request.colStart);
      // Right edge of the row must also be in bounds.
      (void)array.offsetOf(request.batchIndex, request.rowStart + r,
                           request.colStart + request.tileCols - 1);
      double* hostRow = array.data() + hostOffset;
      double* spmRow = spm + r * stride;
      const std::size_t bytes =
          static_cast<std::size_t>(request.tileCols) * sizeof(double);
      if (request.isPut)
        std::memcpy(hostRow, spmRow, bytes);
      else
        std::memcpy(spmRow, hostRow, bytes);
    }
  }

  void moveRmaData(const RmaRequest& request) {
    const double* src = spmPtrOf(cpeId_, request.srcSpmOffsetBytes);
    if (request.kind == RmaKind::kPointToPoint) {
      const int target =
          request.dstRid * mesh_.config_.meshCols + request.dstCid;
      std::memcpy(spmPtrOf(target, request.dstSpmOffsetBytes), src,
                  static_cast<std::size_t>(request.bytes));
      return;
    }
    const bool isRow = request.kind == RmaKind::kRowBroadcast;
    const int peers =
        isRow ? mesh_.config_.meshCols : mesh_.config_.meshRows;
    for (int p = 0; p < peers; ++p) {
      const int target = isRow ? rid_ * mesh_.config_.meshCols + p
                               : p * mesh_.config_.meshCols + cid_;
      double* dst = spmPtrOf(target, request.dstSpmOffsetBytes);
      std::memcpy(dst, src, static_cast<std::size_t>(request.bytes));
    }
  }

  /// Park until the run aborts: the reply for `slot` will never arrive.
  /// The watchdog (or an error on another CPE) is what ends the wait.
  [[noreturn]] void hangOnLostReply(const std::string& slot) {
    publishStatus(CpeStatus::kDmaHang,
                  strCat("dma_wait_value slot='", slot,
                         "' (reply permanently dropped)"));
    std::unique_lock<std::mutex> lock(mesh_.hangMutex_);
    mesh_.hangCv_.wait(lock, [&] {
      return mesh_.aborted_.load(std::memory_order_acquire);
    });
    throw ProtocolError(strCat(
        "mesh aborted while waiting for a lost DMA reply on slot '", slot,
        "'"));
  }

  /// Block for the next unconsumed round on `channel`; rounds are matched
  /// ordinally per slot (issue/wait strictly alternate in generated code).
  void consumeRound(RmaChannel& channel, int slotId) {
    const std::size_t round = slotState(slotId).rmaConsumed++;
    bool published = false;
    std::unique_lock<std::mutex> lock(channel.mutex);
    if (channel.rounds.size() <= round) {
      // Only publish (and pay the progress tick) when actually blocking.
      lock.unlock();
      publishStatus(CpeStatus::kRmaWait,
                    strCat("rma_wait slot='", mesh_.slotName(slotId),
                           "' round=", round));
      published = true;
      lock.lock();
    }
    channel.cv.wait(lock, [&] {
      return channel.rounds.size() > round ||
             mesh_.aborted_.load(std::memory_order_acquire);
    });
    if (channel.rounds.size() <= round) {
      lock.unlock();
      if (published) publishStatus(CpeStatus::kRunning, "");
      throw ProtocolError("mesh aborted while waiting for an RMA message");
    }
    const RmaRound r = channel.rounds[round];
    lock.unlock();
    if (published) publishStatus(CpeStatus::kRunning, "");
    if (r.dropped)
      throw ProtocolError(strCat("RMA round ", round, " on slot '",
                                 mesh_.slotName(slotId),
                                 "' was dropped in transit (injected fault)"));
    const double completion = r.sendTimeSeconds + r.transferSeconds;
    if (completion > clock_) {
      counters_.waitStallSeconds += completion - clock_;
      counters_.rmaStallSeconds += completion - clock_;
      if (tracing_)
        trace::Tracer::global().simSpan(
            trace::kMeshPid, cpeId_,
            strCat("wait:", mesh_.slotName(slotId)), "stall", clock_,
            completion);
      clock_ = completion;
    }
  }

  /// Per-slot state indexed by the mesh-wide interned slot id: DMA
  /// completion clock, injected-failure flags, RMA round ordinal and the
  /// in-flight descriptor for the watchdog dump.  Vector-indexed so the
  /// interned hot path is one load, no hashing.
  struct SlotState {
    double completion = 0.0;
    bool hasMessage = false;
    bool hang = false;                   // reply permanently dropped
    const char* failedReason = nullptr;  // transient failure, cleared by wait
    std::size_t rmaConsumed = 0;
    bool pendingValid = false;
    PendingDmaInfo pending;
  };

  SlotState& slotState(int slotId) {
    if (slots_.size() <= static_cast<std::size_t>(slotId))
      slots_.resize(static_cast<std::size_t>(slotId) + 1);
    return slots_[static_cast<std::size_t>(slotId)];
  }

  MeshSimulator::Impl& mesh_;
  const FaultPlan* plan_;  // nullptr when injection is off
  int cpeId_;
  int rid_;
  int cid_;
  bool tracing_;
  double clock_ = 0.0;
  double dmaEngineBusyUntil_ = 0.0;
  CpeCounters counters_;
  std::vector<SlotState> slots_;
  // Fault bookkeeping: per-op-class ordinals (the plan's occurrence key).
  std::int64_t dmaOccurrence_ = 0;
  std::int64_t rmaOccurrence_ = 0;
  std::int64_t syncOccurrence_ = 0;
  /// Per-CPE memos of mesh-wide interning results (the legacy string path
  /// pays one hash here instead of the mesh mutex).
  std::unordered_map<std::string, int> localSlotIds_;
  std::unordered_map<std::string, int> localArrayIds_;
  /// HostArray pointers by interned array id, resolved lazily per run.
  std::vector<HostArray*> arrayCache_;
};

}  // namespace

MeshSimulator::MeshSimulator(const ArchConfig& config, bool functional)
    : config_(config), functional_(functional) {
  impl_ = std::make_unique<Impl>(*this, config_, functional_);
}

MeshSimulator::~MeshSimulator() = default;

void MeshSimulator::setFaultPlan(std::shared_ptr<const FaultPlan> plan) {
  impl_->faultPlan_ = std::move(plan);
}

void MeshSimulator::setWatchdogMillis(double millis) {
  if (millis >= 0.0) impl_->watchdogMillis_ = millis;
}

double MeshSimulator::defaultWatchdogMillis() {
  if (const char* env = std::getenv("SWCODEGEN_WATCHDOG_MS")) {
    char* end = nullptr;
    const double value = std::strtod(env, &end);
    if (end != env && *end == '\0' && value >= 0.0) return value;
    SW_WARN("mesh", "event=watchdog.bad_env SWCODEGEN_WATCHDOG_MS=", env,
            " fallback_ms=5000");
  }
  return 5000.0;
}

MeshRunResult MeshSimulator::run(
    const std::function<void(CpeServices&)>& body) {
  // Fresh per-run state (channels, barrier, status board) while keeping
  // SPM/host memory.
  impl_->channels_.clear();
  impl_->firstError_ = nullptr;
  impl_->aborted_.store(false);
  impl_->barrierArrived_ = 0;
  std::fill(impl_->clocks_.begin(), impl_->clocks_.end(), 0.0);
  impl_->status_.clear();
  for (int id = 0; id < impl_->meshSize_; ++id) impl_->status_.emplace_back();
  impl_->progress_.store(0);
  {
    std::lock_guard<std::mutex> lock(impl_->watchdogMutex_);
    impl_->watchdogStop_ = false;
  }

  if (trace::enabled()) {
    // Name the 64 CPE lanes (plus the DMA/RMA engine side lanes) so the
    // per-CPE timelines group legibly in Perfetto.
    trace::Tracer& tracer = trace::Tracer::global();
    tracer.setProcessName(trace::kMeshPid, "mesh simulator (simulated clock)");
    for (int id = 0; id < impl_->meshSize_; ++id) {
      const int rid = id / config_.meshCols;
      const int cid = id % config_.meshCols;
      tracer.setThreadName(trace::kMeshPid, id,
                           strCat("CPE ", rid, ",", cid));
      tracer.setThreadName(trace::kMeshPid, trace::kDmaLaneOffset + id,
                           strCat("CPE ", rid, ",", cid, " dma"));
      tracer.setThreadName(trace::kMeshPid, trace::kRmaLaneOffset + id,
                           strCat("CPE ", rid, ",", cid, " rma"));
    }
  }

  std::vector<std::unique_ptr<ThreadedCpeServices>> services;
  services.reserve(static_cast<std::size_t>(impl_->meshSize_));
  for (int id = 0; id < impl_->meshSize_; ++id)
    services.push_back(std::make_unique<ThreadedCpeServices>(*impl_, id));

  std::thread watchdog;
  if (impl_->watchdogMillis_ > 0.0)
    watchdog = std::thread([this] { impl_->watchdogLoop(); });

  std::vector<std::thread> threads;
  threads.reserve(services.size());
  for (auto& svc : services) {
    threads.emplace_back([&body, &svc, this] {
      try {
        body(*svc);
      } catch (...) {
        impl_->recordError();
      }
      svc->publishStatus(CpeStatus::kDone, "");
    });
  }
  for (std::thread& t : threads) t.join();
  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(impl_->watchdogMutex_);
      impl_->watchdogStop_ = true;
    }
    impl_->watchdogCv_.notify_all();
    watchdog.join();
  }
  impl_->checkAborted();

  MeshRunResult result;
  result.perCpeSeconds.reserve(services.size());
  result.perCpeCounters.reserve(services.size());
  for (auto& svc : services) {
    result.perCpeSeconds.push_back(svc->clockSeconds());
    result.perCpeCounters.push_back(svc->counters());
    result.totals.add(svc->counters());
  }
  result.seconds =
      *std::max_element(result.perCpeSeconds.begin(),
                        result.perCpeSeconds.end()) +
      config_.spawnOverheadSeconds;
  return result;
}

}  // namespace sw::sunway
