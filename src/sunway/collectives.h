// Mesh collectives built on the RMA primitives.
//
// §5/Fig.8c: the all-broadcast manner "broadcasts the SPM data of s to
// every other CPE in the mesh, which is internally implemented using the
// combination of row and column broadcasts."  This header provides exactly
// that composition: the source CPE row-broadcasts, then every CPE in the
// source's row column-broadcasts the received tile.  All CPEs of the mesh
// must call the collective (it synchronises internally, matching the
// athread requirement that a synch() precedes RMA).
#pragma once

#include <cstdint>
#include <string>

#include "sunway/services.h"

namespace sw::sunway {

struct AllBroadcastArgs {
  int srcRid = 0;
  int srcCid = 0;
  /// SPM offset of the payload on the source CPE.
  std::int64_t srcSpmOffsetBytes = 0;
  /// SPM offset of the receive region on every CPE (also used as the
  /// column-stage staging area on the source's row).
  std::int64_t dstSpmOffsetBytes = 0;
  std::int64_t bytes = 0;
  /// Distinguishes concurrent collectives; reply slots are derived from it.
  std::string tag = "allbcast";
};

/// Collective all-broadcast; call from every CPE of the mesh.
inline void rmaAllBroadcast(CpeServices& cpe, const AllBroadcastArgs& args) {
  const std::string rowSlot = args.tag + "_row";
  const std::string colSlot = args.tag + "_col";
  cpe.sync();

  // Stage 1: the source shares along its own mesh row.
  if (cpe.rid() == args.srcRid && cpe.cid() == args.srcCid) {
    RmaRequest row;
    row.kind = RmaKind::kRowBroadcast;
    row.isSender = true;
    row.bytes = args.bytes;
    row.srcSpmOffsetBytes = args.srcSpmOffsetBytes;
    row.dstSpmOffsetBytes = args.dstSpmOffsetBytes;
    row.slot = rowSlot;
    cpe.rmaIssue(row);
  }

  // Stage 2: every CPE of the source's row relays down its column.
  if (cpe.rid() == args.srcRid) {
    cpe.waitSlot(rowSlot, /*isRma=*/true, /*isRowBroadcast=*/true);
    RmaRequest col;
    col.kind = RmaKind::kColBroadcast;
    col.isSender = true;
    col.bytes = args.bytes;
    col.srcSpmOffsetBytes = args.dstSpmOffsetBytes;
    col.dstSpmOffsetBytes = args.dstSpmOffsetBytes;
    col.slot = colSlot;
    cpe.rmaIssue(col);
  }
  cpe.waitSlot(colSlot, /*isRma=*/true, /*isRowBroadcast=*/false);
}

}  // namespace sw::sunway
