// Main-memory (DDR4) arrays of one SW26010Pro core group.
//
// In functional mode an array owns real storage; in timing mode only the
// geometry is kept (paper-scale matrices would not fit in a test machine's
// RAM, and the timing model never touches elements).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/format.h"

namespace sw::sunway {

class HostArray {
 public:
  HostArray() = default;

  /// Functional array with real, zero-initialised storage.
  static HostArray allocate(std::string name, std::int64_t batch,
                            std::int64_t rows, std::int64_t cols) {
    HostArray a;
    a.name_ = std::move(name);
    a.batch_ = batch;
    a.rows_ = rows;
    a.cols_ = cols;
    a.data_.assign(static_cast<std::size_t>(batch * rows * cols), 0.0);
    return a;
  }

  /// Timing-mode array: geometry only.
  static HostArray virtualArray(std::string name, std::int64_t batch,
                                std::int64_t rows, std::int64_t cols) {
    HostArray a;
    a.name_ = std::move(name);
    a.batch_ = batch;
    a.rows_ = rows;
    a.cols_ = cols;
    return a;
  }

  /// Functional array over caller-owned storage (no copy): the edge-tile
  /// path registers the user's unpadded row-major buffers directly.  The
  /// caller guarantees `external` outlives the array and holds
  /// batch*rows*cols elements.
  static HostArray borrow(std::string name, std::int64_t batch,
                          std::int64_t rows, std::int64_t cols,
                          double* external) {
    SW_CHECK(external != nullptr, "cannot borrow a null buffer");
    HostArray a;
    a.name_ = std::move(name);
    a.batch_ = batch;
    a.rows_ = rows;
    a.cols_ = cols;
    a.external_ = external;
    return a;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::int64_t batch() const { return batch_; }
  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] bool hasData() const {
    return external_ != nullptr || !data_.empty();
  }

  [[nodiscard]] double* data() {
    return external_ != nullptr ? external_ : data_.data();
  }
  [[nodiscard]] const double* data() const {
    return external_ != nullptr ? external_ : data_.data();
  }

  [[nodiscard]] double& at(std::int64_t b, std::int64_t r, std::int64_t c) {
    checkIndex(b, r, c);
    return data()[static_cast<std::size_t>((b * rows_ + r) * cols_ + c)];
  }
  [[nodiscard]] double at(std::int64_t b, std::int64_t r,
                          std::int64_t c) const {
    checkIndex(b, r, c);
    return data()[static_cast<std::size_t>((b * rows_ + r) * cols_ + c)];
  }

  /// Row-major flat offset of element (b, r, c); bounds-checked.
  [[nodiscard]] std::int64_t offsetOf(std::int64_t b, std::int64_t r,
                                      std::int64_t c) const {
    checkIndex(b, r, c);
    return (b * rows_ + r) * cols_ + c;
  }

 private:
  void checkIndex(std::int64_t b, std::int64_t r, std::int64_t c) const {
    if (b < 0 || b >= batch_ || r < 0 || r >= rows_ || c < 0 || c >= cols_)
      throw ProtocolError(strCat("out-of-bounds access ", name_, "[", b, "][",
                                 r, "][", c, "] (shape ", batch_, "x", rows_,
                                 "x", cols_, ")"));
  }

  std::string name_;
  std::int64_t batch_ = 1;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<double> data_;
  /// Caller-owned storage (borrow()); nullptr when data_ owns the bytes.
  double* external_ = nullptr;
};

class HostMemory {
 public:
  void add(HostArray array) {
    const std::string key = array.name();
    auto [it, inserted] = arrays_.try_emplace(key, std::move(array));
    (void)it;
    SW_CHECK(inserted, strCat("array '", key, "' registered twice"));
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return arrays_.find(name) != arrays_.end();
  }

  [[nodiscard]] HostArray& get(const std::string& name) {
    auto it = arrays_.find(name);
    SW_CHECK(it != arrays_.end(), strCat("unknown array '", name, "'"));
    return it->second;
  }
  [[nodiscard]] const HostArray& get(const std::string& name) const {
    auto it = arrays_.find(name);
    SW_CHECK(it != arrays_.end(), strCat("unknown array '", name, "'"));
    return it->second;
  }

 private:
  std::map<std::string, HostArray> arrays_;
};

}  // namespace sw::sunway
