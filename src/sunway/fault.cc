#include "sunway/fault.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "support/error.h"

namespace sw::sunway {
namespace {

// splitmix64 — deterministic avalanche mix for the probabilistic draws and
// the corruption pattern.  Chosen over std::hash because its output is
// specified, so rate-based plans replay identically across platforms.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t siteHash(std::uint64_t seed, FaultOpClass opClass, int cpe,
                       std::int64_t occurrence) {
  std::uint64_t h = mix64(seed ^ 0x5157434f44454745ULL);
  h = mix64(h ^ static_cast<std::uint64_t>(opClass));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(cpe)));
  h = mix64(h ^ static_cast<std::uint64_t>(occurrence));
  return h;
}

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kDmaDropReply, "dma-drop"}, {FaultKind::kDmaCorrupt, "dma-corrupt"},
    {FaultKind::kDmaDelay, "dma-delay"},    {FaultKind::kRmaDropReply, "rma-drop"},
    {FaultKind::kRmaDelay, "rma-delay"},    {FaultKind::kCpeStall, "stall"},
};

std::string trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::int64_t parseInt(const std::string& value, const std::string& field,
                      const std::string& spec) {
  try {
    std::size_t pos = 0;
    std::int64_t v = std::stoll(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw InputError("fault spec '" + spec + "': field '" + field +
                     "' wants an integer, got '" + value + "'");
  }
}

double parseDouble(const std::string& value, const std::string& field,
                   const std::string& spec) {
  try {
    std::size_t pos = 0;
    double v = std::stod(value, &pos);
    if (pos != value.size() || !std::isfinite(v)) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw InputError("fault spec '" + spec + "': field '" + field +
                     "' wants a number, got '" + value + "'");
  }
}

FaultSpec parseOne(const std::string& raw) {
  const std::string spec = trimmed(raw);
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }

  FaultSpec out;
  bool known = false;
  for (const KindName& k : kKindNames) {
    if (parts[0] == k.name) {
      out.kind = k.kind;
      known = true;
      break;
    }
  }
  if (!known) {
    throw InputError(
        "fault spec '" + spec + "': unknown fault kind '" + parts[0] +
        "' (expected one of dma-drop, dma-corrupt, dma-delay, rma-drop, "
        "rma-delay, stall)");
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      throw InputError("fault spec '" + spec + "': expected field=value, got '" +
                       part + "'");
    }
    const std::string field = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (field == "cpe") {
      out.cpe = value == "*"
                    ? -1
                    : static_cast<int>(parseInt(value, field, spec));
      if (out.cpe < -1) {
        throw InputError("fault spec '" + spec + "': cpe must be >= 0 or *");
      }
    } else if (field == "occ") {
      out.occurrence = parseInt(value, field, spec);
      if (out.occurrence < 0) {
        throw InputError("fault spec '" + spec + "': occ must be >= 0");
      }
    } else if (field == "count") {
      out.count = value == "forever" ? -1 : parseInt(value, field, spec);
      if (out.count == 0) {
        throw InputError("fault spec '" + spec +
                         "': count must be positive or 'forever'");
      }
    } else if (field == "seconds") {
      out.seconds = parseDouble(value, field, spec);
      if (out.seconds <= 0.0) {
        throw InputError("fault spec '" + spec + "': seconds must be > 0");
      }
    } else if (field == "rate") {
      out.rate = parseDouble(value, field, spec);
      if (out.rate <= 0.0 || out.rate > 1.0) {
        throw InputError("fault spec '" + spec + "': rate must be in (0, 1]");
      }
    } else if (field == "seed") {
      out.seed = static_cast<std::uint64_t>(parseInt(value, field, spec));
    } else {
      throw InputError("fault spec '" + spec + "': unknown field '" + field +
                       "' (expected cpe, occ, count, seconds, rate, seed)");
    }
  }

  const bool needsSeconds = out.kind == FaultKind::kDmaDelay ||
                            out.kind == FaultKind::kRmaDelay ||
                            out.kind == FaultKind::kCpeStall;
  if (needsSeconds && out.seconds <= 0.0) {
    throw InputError("fault spec '" + spec + "': kind '" + toString(out.kind) +
                     "' requires seconds=X with X > 0");
  }
  return out;
}

}  // namespace

const char* toString(FaultKind kind) {
  for (const KindName& k : kKindNames) {
    if (k.kind == kind) return k.name;
  }
  return "?";
}

FaultOpClass opClassOf(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDmaDropReply:
    case FaultKind::kDmaCorrupt:
    case FaultKind::kDmaDelay:
      return FaultOpClass::kDma;
    case FaultKind::kRmaDropReply:
    case FaultKind::kRmaDelay:
      return FaultOpClass::kRma;
    case FaultKind::kCpeStall:
      return FaultOpClass::kSync;
  }
  return FaultOpClass::kDma;
}

bool FaultSpec::matches(int cpeId, std::int64_t occ) const {
  if (cpe != -1 && cpe != cpeId) return false;
  if (rate > 0.0) {
    // Seeded Bernoulli draw on the site key: deterministic per run and
    // uncorrelated across (cpe, occurrence) pairs.
    const std::uint64_t h = siteHash(seed, opClassOf(kind), cpeId, occ);
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
    return u < rate;
  }
  if (occ < occurrence) return false;
  return permanent() || occ < occurrence + count;
}

std::string FaultSpec::describe() const {
  std::ostringstream os;
  os << toString(kind);
  if (cpe >= 0) os << ":cpe=" << cpe;
  if (rate > 0.0) {
    os << ":rate=" << rate << ":seed=" << seed;
  } else {
    if (occurrence != 0) os << ":occ=" << occurrence;
    if (permanent()) {
      os << ":count=forever";
    } else if (count != 1) {
      os << ":count=" << count;
    }
  }
  if (seconds > 0.0) os << ":seconds=" << seconds;
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t semi = text.find(';', start);
    const std::string piece = trimmed(
        semi == std::string::npos ? text.substr(start)
                                  : text.substr(start, semi - start));
    if (!piece.empty()) plan.add(parseOne(piece));
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  if (plan.empty()) {
    throw InputError("fault plan '" + text + "' contains no fault specs");
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const FaultSpec& spec : specs_) {
    if (!out.empty()) out += ";";
    out += spec.describe();
  }
  return out;
}

FaultDecision FaultPlan::decide(FaultOpClass opClass, int cpe,
                                std::int64_t occurrence) const {
  FaultDecision d;
  for (const FaultSpec& spec : specs_) {
    if (opClassOf(spec.kind) != opClass) continue;
    if (!spec.matches(cpe, occurrence)) continue;
    ++d.injected;
    switch (spec.kind) {
      case FaultKind::kDmaDropReply:
      case FaultKind::kRmaDropReply:
        if (spec.permanent() && spec.rate <= 0.0) {
          d.dropPermanent = true;
        } else {
          d.dropTransient = true;
        }
        break;
      case FaultKind::kDmaCorrupt:
        d.corrupt = true;
        break;
      case FaultKind::kDmaDelay:
      case FaultKind::kRmaDelay:
        d.delaySeconds += spec.seconds;
        break;
      case FaultKind::kCpeStall:
        d.stallSeconds += spec.seconds;
        break;
    }
  }
  return d;
}

void FaultPlan::corruptTile(double* tile, std::int64_t words, int cpe,
                            std::int64_t occurrence) {
  if (tile == nullptr || words <= 0) return;
  // Flip low mantissa bits of a handful of elements.  The positions and the
  // flipped bits depend only on the site key, so a replayed run corrupts the
  // same bytes the same way.
  const std::int64_t hits = words < 4 ? words : 4;
  for (std::int64_t i = 0; i < hits; ++i) {
    const std::uint64_t h =
        siteHash(0xc0bb1edULL + static_cast<std::uint64_t>(i),
                 FaultOpClass::kDma, cpe, occurrence);
    const std::int64_t at = static_cast<std::int64_t>(h % static_cast<std::uint64_t>(words));
    std::uint64_t bits;
    std::memcpy(&bits, &tile[at], sizeof(bits));
    bits ^= (1ULL << (h % 23));  // low mantissa bits only: value stays finite
    std::memcpy(&tile[at], &bits, sizeof(bits));
  }
}

}  // namespace sw::sunway
