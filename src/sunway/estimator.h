// Sequential single-CPE timing estimator.
//
// The generated GEMM code is symmetric across the mesh: every CPE executes
// the same op stream (modulo which broadcast round it sends), and a mesh
// barrier precedes every RMA round, so all logical clocks coincide at each
// synchronisation point.  Simulating one CPE with sender guards forced
// true therefore reproduces the threaded runtime's critical path while
// scaling to paper-sized shapes (15360^3) in microseconds of host time.
//
// The approximation is validated against MeshSimulator in
// tests/runtime_timing_test.cc; the only divergence is the per-round issue
// overhead (the estimator charges it every round, a real CPE only on the
// round it sends), bounded well under 1%.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "sunway/arch.h"
#include "sunway/services.h"
#include "support/error.h"
#include "support/format.h"
#include "support/trace.h"

namespace sw::sunway {

class SymmetricCpeServices final : public CpeServices {
 public:
  explicit SymmetricCpeServices(const ArchConfig& config)
      : config_(config), tracing_(trace::enabled()) {
    if (tracing_) {
      trace::Tracer& tracer = trace::Tracer::global();
      tracer.setProcessName(trace::kEstimatorPid,
                            "symmetric estimator (simulated clock)");
      tracer.setThreadName(trace::kEstimatorPid, 0, "CPE 0,0 (symmetric)");
      tracer.setThreadName(trace::kEstimatorPid, trace::kDmaLaneOffset,
                           "CPE 0,0 dma");
      tracer.setThreadName(trace::kEstimatorPid, trace::kRmaLaneOffset,
                           "CPE 0,0 rma");
    }
  }

  [[nodiscard]] int rid() const override { return 0; }
  [[nodiscard]] int cid() const override { return 0; }
  [[nodiscard]] bool functional() const override { return false; }
  [[nodiscard]] bool guardAlwaysTrue() const override { return true; }

  void sync() override {
    ++counters_.syncs;
    clock_ += config_.syncSeconds;
    counters_.syncStallSeconds += config_.syncSeconds;
  }

  void dmaIssue(const DmaRequest& request) override {
    const std::int64_t bytes = request.tileRows * request.tileCols *
                               static_cast<std::int64_t>(sizeof(double));
    ++counters_.dmaMessages;
    counters_.dmaBytes += bytes;
    const double start = std::max(clock_, dmaEngineBusyUntil_);
    const double done =
        start + config_.dmaSeconds(bytes, request.tileRows);
    counters_.dmaBusySeconds += done - start;
    dmaEngineBusyUntil_ = done;
    setCompletion(request.slotId >= 0 ? request.slotId
                                      : internSlot(request.slot),
                  done);
    if (tracing_)
      trace::Tracer::global().simSpan(
          trace::kEstimatorPid, trace::kDmaLaneOffset,
          strCat("dma:", request.isPut ? "put:" : "get:", request.array),
          "dma", start, done,
          {trace::arg("bytes", bytes), trace::arg("slot", request.slot)});
    clock_ += kIssueOverheadSeconds;
  }

  void rmaIssue(const RmaRequest& request) override {
    ++counters_.rmaBroadcastsSent;
    counters_.rmaBytesSent += request.bytes;
    double transfer = config_.rmaSeconds(request.bytes);
    if (request.kind == RmaKind::kPointToPoint) transfer *= 2.0;  // worst hop
    counters_.rmaBusySeconds += transfer;
    setCompletion(request.slotId >= 0 ? request.slotId
                                      : internSlot(request.slot),
                  clock_ + transfer);
    if (tracing_)
      trace::Tracer::global().simSpan(
          trace::kEstimatorPid, trace::kRmaLaneOffset,
          request.isRowBroadcast() ? "rma:rowbcast" : "rma:other", "rma",
          clock_, clock_ + transfer,
          {trace::arg("bytes", request.bytes),
           trace::arg("slot", request.slot)});
    clock_ += kIssueOverheadSeconds;
  }

  void rmaWaitPoint(const std::string& slot) override {
    waitSlot(slot, /*isRma=*/true, /*isRowBroadcast=*/false);
  }

  void rmaWaitPointId(int slotId) override {
    waitSlotId(slotId, /*isRma=*/true, /*isRowBroadcast=*/false);
  }

  void waitSlot(const std::string& slot, bool isRma,
                bool isRowBroadcast) override {
    waitSlotId(internSlot(slot), isRma, isRowBroadcast);
  }

  void waitSlotId(int slotId, bool isRma, bool isRowBroadcast) override {
    (void)isRowBroadcast;
    const auto index = static_cast<std::size_t>(slotId);
    if (index >= slotCompletion_.size() || !slotHasMessage_[index])
      throw ProtocolError(strCat("wait on slot '",
                                 slotNames_.at(index),
                                 "' with no message in flight"));
    const double completion = slotCompletion_[index];
    if (completion > clock_) {
      counters_.waitStallSeconds += completion - clock_;
      if (isRma)
        counters_.rmaStallSeconds += completion - clock_;
      else
        counters_.dmaStallSeconds += completion - clock_;
      if (tracing_)
        trace::Tracer::global().simSpan(trace::kEstimatorPid, 0,
                                        strCat("wait:", slotNames_.at(index)),
                                        "stall", clock_, completion);
      clock_ = completion;
    }
  }

  void computeTime(double flops, ComputeRate rate) override {
    double seconds = 0.0;
    const char* name = "compute";
    switch (rate) {
      case ComputeRate::kAsmKernel:
        seconds = config_.cpeComputeSeconds(flops, config_.cpeFlopsPerCycle,
                                            config_.asmKernelEfficiency);
        ++counters_.microKernelCalls;
        counters_.flops += flops;
        name = "microkernel";
        break;
      case ComputeRate::kNaive:
        seconds = config_.cpeComputeSeconds(flops, config_.naiveFlopsPerCycle);
        counters_.flops += flops;
        name = "naive_compute";
        break;
      case ComputeRate::kElementwise:
        seconds =
            config_.cpeComputeSeconds(flops, config_.elementwiseFlopsPerCycle);
        name = "elementwise";
        break;
    }
    if (tracing_)
      trace::Tracer::global().simSpan(trace::kEstimatorPid, 0, name,
                                      "compute", clock_, clock_ + seconds,
                                      {trace::arg("flops", flops)});
    clock_ += seconds;
    counters_.computeSeconds += seconds;
  }

  void computeTimeMicro(double flops, int mr, int nr) override {
    const double seconds = config_.cpeComputeSeconds(
        flops, config_.cpeFlopsPerCycle,
        config_.microKernelEfficiency(mr, nr));
    ++counters_.microKernelCalls;
    counters_.flops += flops;
    if (tracing_)
      trace::Tracer::global().simSpan(trace::kEstimatorPid, 0, "microkernel",
                                      "compute", clock_, clock_ + seconds,
                                      {trace::arg("flops", flops)});
    clock_ += seconds;
    counters_.computeSeconds += seconds;
  }

  [[nodiscard]] double* spmPtr(std::int64_t) override { return nullptr; }
  [[nodiscard]] double clockSeconds() const override { return clock_; }
  [[nodiscard]] const CpeCounters& counters() const override {
    return counters_;
  }

  /// Estimated wall-clock including the mesh spawn overhead.
  [[nodiscard]] double totalSeconds() const {
    return clock_ + config_.spawnOverheadSeconds;
  }

 private:
  static constexpr double kIssueOverheadSeconds = 0.05e-6;

  /// Vector-indexed per-slot completion clocks (ids from the inherited
  /// per-instance interner); the hot path never hashes slot names.
  void setCompletion(int slotId, double done) {
    const auto index = static_cast<std::size_t>(slotId);
    if (index >= slotCompletion_.size()) {
      slotCompletion_.resize(index + 1, 0.0);
      slotHasMessage_.resize(index + 1, 0);
    }
    slotCompletion_[index] = done;
    slotHasMessage_[index] = 1;
  }

  const ArchConfig& config_;
  bool tracing_;
  double clock_ = 0.0;
  double dmaEngineBusyUntil_ = 0.0;
  CpeCounters counters_;
  std::vector<double> slotCompletion_;
  std::vector<unsigned char> slotHasMessage_;
};

}  // namespace sw::sunway
