// SW26010Pro core-group architecture model (§2.1, Fig.1).
//
// One core group (cluster) = 1 MPE + an 8x8 CPE mesh.  Each CPE owns a
// 256 KB software-managed SPM, a DMA engine to the cluster's DDR4 memory,
// and an RMA engine for intra-mesh communication.  The paper withholds the
// processor's exact peak; this model's defaults are calibrated so the
// *relationships* the paper reports (the breakdown factors of §8.1, the
// latency-hiding overlap counts of §6, the xMath crossovers of §8.2)
// reproduce.  Every quantity is a plain named field so ablation benches can
// sweep it.
#pragma once

#include <algorithm>
#include <cstdint>

namespace sw::sunway {

struct ArchConfig {
  // --- mesh geometry ---
  int meshRows = 8;
  int meshCols = 8;

  // --- per-CPE resources ---
  std::int64_t spmBytes = 256 * 1024;  // SW26010Pro SPM (§2.1)

  // --- compute rates ---
  double cpeFrequencyHz = 2.1e9;
  /// Vector FMA throughput of one CPE (512-bit SIMD, dual pipe): DP flops
  /// per cycle at peak.
  double cpeFlopsPerCycle = 16.0;
  /// Fraction of peak the vendor assembly micro-kernel sustains once data
  /// is in SPM (register blocking + instruction scheduling, §7.2).
  double asmKernelEfficiency = 0.99;
  /// Scalar flops per cycle of the naive compiler-scheduled loop nest
  /// (the --no-use-asm path; load/store bound).
  double naiveFlopsPerCycle = 0.88;
  /// Element-wise SPM operations (quantization, activation, scaling).
  double elementwiseFlopsPerCycle = 8.0;

  // --- DMA: DDR4 <-> SPM (§4) ---
  /// Aggregate main-memory bandwidth of the core group.  Each CPE owns one
  /// DMA engine running at a 1/64 share (messages from the same CPE
  /// serialise on its engine, so total bandwidth is conserved when the
  /// whole mesh streams).
  double ddrBandwidthBytesPerSec = 36.0e9;
  double dmaStartupSeconds = 1.5e-6;  // per-message latency
  /// Extra per-row overhead of strided (non-contiguous) transfers.
  double dmaStridePenaltySecondsPerRow = 10.0e-9;

  // --- RMA: SPM <-> SPM across the mesh (§5) ---
  /// Effective per-broadcast bandwidth.  The row and column networks are
  /// independent, so an A row-broadcast and a B column-broadcast proceed
  /// concurrently (§6.1: "the broadcasts of A and B can be launched
  /// together").
  double rmaBandwidthBytesPerSec = 80.0e9;
  double rmaStartupSeconds = 0.1e-6;

  // --- control ---
  double syncSeconds = 0.05e-6;         // mesh barrier
  double spawnOverheadSeconds = 25e-6;  // athread_spawn + join (per launch)

  // --- MPE (used by library baselines that run element-wise ops there) ---
  double mpeFlopsPerCycle = 4.0;
  double mpeFrequencyHz = 2.1e9;
  /// Effective bandwidth of an MPE scalar element-wise pass over main
  /// memory (the unfused prologue/epilogue baseline of §8.4 runs there).
  double mpeMemBandwidthBytesPerSec = 2.5e9;

  // --- node level: SW26010Pro packs six core groups on one chip (§2.1) ---
  /// Core groups available on the node.  Sharded execution may use up to
  /// this many concurrent meshes.
  int coreGroups = 6;
  /// Aggregate DDR bandwidth of the whole node.  The per-group channels
  /// share ring stops and the memory controllers, so six groups streaming
  /// at once do NOT see 6x the single-group bandwidth: each gets
  /// nodeDdrBandwidthBytesPerSec / groups once the node pool saturates.
  double nodeDdrBandwidthBytesPerSec = 144.0e9;
  /// Network-on-chip linking the core groups (block hand-off between
  /// group sub-problems: operand gathers and C scatters/partials).
  double nocBandwidthBytesPerSec = 25.0e9;
  double nocLatencySeconds = 2.0e-6;

  [[nodiscard]] int meshSize() const { return meshRows * meshCols; }

  /// Theoretical peak of the core group in flops/second.
  [[nodiscard]] double peakFlops() const {
    return meshSize() * cpeFrequencyHz * cpeFlopsPerCycle;
  }

  /// Per-CPE share of main-memory bandwidth when the whole mesh streams.
  [[nodiscard]] double dmaShareBytesPerSec() const {
    return ddrBandwidthBytesPerSec / meshSize();
  }

  /// Effective DDR bandwidth one group sees while `concurrentGroups`
  /// stream simultaneously.  A single group keeps its full channel; past
  /// the point where groups * per-group demand exceeds the node pool,
  /// each group's share drops to an even split of the pool.
  [[nodiscard]] double groupDdrBandwidth(int concurrentGroups) const {
    if (concurrentGroups <= 1) return ddrBandwidthBytesPerSec;
    return std::min(ddrBandwidthBytesPerSec,
                    nodeDdrBandwidthBytesPerSec /
                        static_cast<double>(concurrentGroups));
  }

  /// Fraction of the single-group bandwidth that survives contention
  /// (1.0 when the node pool still covers every group's full channel).
  [[nodiscard]] double contentionDerate(int concurrentGroups) const {
    return groupDdrBandwidth(concurrentGroups) / ddrBandwidthBytesPerSec;
  }

  /// Copy of this config with the DDR bandwidth derated for a group
  /// running alongside `concurrentGroups - 1` other streaming groups.
  /// Timing-only: functional results never depend on bandwidth numbers.
  [[nodiscard]] ArchConfig forConcurrentGroups(int concurrentGroups) const {
    ArchConfig derated = *this;
    derated.ddrBandwidthBytesPerSec = groupDdrBandwidth(concurrentGroups);
    return derated;
  }

  /// Time for one DMA message of `bytes` spread over `rows` strided rows.
  [[nodiscard]] double dmaSeconds(std::int64_t bytes, std::int64_t rows) const {
    return dmaStartupSeconds + static_cast<double>(bytes) / dmaShareBytesPerSec() +
           dmaStridePenaltySecondsPerRow * static_cast<double>(rows);
  }

  /// Time for one RMA broadcast of `bytes` along a row or column.
  [[nodiscard]] double rmaSeconds(std::int64_t bytes) const {
    return rmaStartupSeconds +
           static_cast<double>(bytes) / rmaBandwidthBytesPerSec;
  }

  /// Time to execute `flops` on one CPE at `flopsPerCycle * efficiency`.
  [[nodiscard]] double cpeComputeSeconds(double flops, double flopsPerCycle,
                                         double efficiency = 1.0) const {
    return flops / (cpeFrequencyHz * flopsPerCycle * efficiency);
  }

  /// Sustained-efficiency model for a generated MR x NR micro-kernel
  /// variant, calibrated so the vendor block (4, 8) returns
  /// asmKernelEfficiency exactly (timing baselines are unchanged at the
  /// default).  Off-default blocks pay for empty SIMD lanes (NR not a
  /// multiple of the 8-wide vector), too few rows in flight to hide FMA
  /// latency (MR < 4), register pressure past the 32-entry file, and
  /// drift from the 32-element sweet spot.
  [[nodiscard]] double microKernelEfficiency(int mr, int nr) const {
    if (mr == 4 && nr == 8) return asmKernelEfficiency;
    if (mr <= 0 || nr <= 0) return asmKernelEfficiency;
    const double simdLanes = 8.0;
    const double vectors =
        static_cast<double>((nr + static_cast<int>(simdLanes) - 1) /
                            static_cast<int>(simdLanes));
    const double vectorUtil = static_cast<double>(nr) / (simdLanes * vectors);
    const double latencyHide = mr >= 4 ? 1.0 : 0.7 + 0.075 * mr;
    const int regsNeeded = mr * static_cast<int>(vectors) + mr + 2;
    const double pressure = regsNeeded > 30 ? 0.97 : 1.0;
    const double ops = static_cast<double>(mr) * static_cast<double>(nr);
    double balance = ops / 32.0;
    if (balance < 1.0) balance = 1.0 / balance;
    double drift = 1.0;
    for (double b = balance; b >= 2.0; b /= 2.0) drift -= 0.004;
    return asmKernelEfficiency * vectorUtil * latencyHide * pressure * drift;
  }
};

}  // namespace sw::sunway
