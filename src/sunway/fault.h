// Deterministic fault-injection plans for the SW26010Pro simulator.
//
// A FaultPlan describes which simulated operations fail and how: dropped or
// delayed DMA replies, delayed or lost RMA messages, stalled CPEs, and
// corrupted SPM tile bytes.  Every fault site is keyed by
// (cpe, op-class, occurrence) — the occurrence is the per-CPE ordinal of
// the operation within its class — so a failing run replays exactly.
// Probabilistic plans (`rate=`) derive the fire decision from a seeded hash
// of the same key and are therefore just as deterministic.
//
// The plan itself is immutable after parsing and safe to share across the
// 64 CPE threads; occurrence counters live in the per-CPE services.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sw::sunway {

/// Operation classes fault sites are keyed on (per-CPE ordinals).
enum class FaultOpClass { kDma, kRma, kSync };

enum class FaultKind {
  kDmaDropReply,  // finite count: wait fails transiently (retryable);
                  // count=forever: the reply never arrives (watchdog case)
  kDmaCorrupt,    // tile bytes corrupted in SPM, detected at the reply wait
                  // (simulated checksum); retryable
  kDmaDelay,      // completion pushed `seconds` later
  kRmaDropReply,  // finite count: the round arrives marked failed (clean
                  // ProtocolError at every receiver); count=forever: the
                  // message is lost and receivers hang (watchdog case)
  kRmaDelay,      // transfer takes `seconds` longer (reordering emerges)
  kCpeStall,      // the CPE's logical clock stalls `seconds` at a barrier
};

[[nodiscard]] const char* toString(FaultKind kind);
[[nodiscard]] FaultOpClass opClassOf(FaultKind kind);

/// One fault rule.  Matches either an ordinal window
/// [occurrence, occurrence + count) — count < 0 meaning "forever" — or,
/// when `rate` > 0, a seeded Bernoulli draw per (cpe, op-class, occurrence)
/// site.
struct FaultSpec {
  FaultKind kind = FaultKind::kDmaDropReply;
  int cpe = -1;                 // linear CPE id; -1 matches every CPE
  std::int64_t occurrence = 0;  // first affected ordinal
  std::int64_t count = 1;       // ordinals affected; < 0 = all from `occurrence`
  double seconds = 0.0;         // delay / stall magnitude
  double rate = 0.0;            // > 0: probabilistic match instead of window
  std::uint64_t seed = 0;       // decorrelates probabilistic plans

  [[nodiscard]] bool permanent() const { return count < 0; }
  [[nodiscard]] bool matches(int cpeId, std::int64_t occ) const;
  [[nodiscard]] std::string describe() const;
};

/// What the simulator must do at one (cpe, op-class, occurrence) site.
struct FaultDecision {
  bool dropTransient = false;  // detected failure: wait throws TransientError
  bool dropPermanent = false;  // message lost forever: waiters hang
  bool corrupt = false;        // corrupt the landed tile, flag the slot
  double delaySeconds = 0.0;   // added to the message completion time
  double stallSeconds = 0.0;   // added to the CPE clock at the site
  int injected = 0;            // matched specs (feeds counters.faultsInjected)

  [[nodiscard]] bool any() const { return injected > 0; }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parse the --inject grammar: semicolon-separated faults of the form
  ///   kind[:cpe=N|*][:occ=N][:count=N|forever][:seconds=X][:rate=P][:seed=N]
  /// with kind one of dma-drop, dma-corrupt, dma-delay, rma-drop,
  /// rma-delay, stall.  Throws InputError on malformed specs.
  static FaultPlan parse(const std::string& text);

  void add(FaultSpec spec) { specs_.push_back(spec); }
  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] std::string describe() const;

  /// Pure decision for the `occurrence`-th op of `opClass` issued by CPE
  /// `cpe`; thread-safe (the plan is immutable).
  [[nodiscard]] FaultDecision decide(FaultOpClass opClass, int cpe,
                                     std::int64_t occurrence) const;

  /// Deterministically flip mantissa bits of a few elements of `tile`,
  /// keyed by the fault site, simulating an in-flight corruption.
  static void corruptTile(double* tile, std::int64_t words, int cpe,
                          std::int64_t occurrence);

 private:
  std::vector<FaultSpec> specs_;
};

}  // namespace sw::sunway
