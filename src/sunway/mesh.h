// Thread-per-CPE simulation of one SW26010Pro core group.
//
// The athread execution model is mirrored directly: athread_spawn starts
// one worker per CPE (64 threads), synch() is a mesh-wide barrier, DMA
// reply counters and RMA replys/replyr are condition-variable backed.  A
// generated program that violates the reply-wait discipline genuinely
// races or deadlocks here, so functional runs exercise the paper's
// correctness machinery for real.
//
// Timing: every CPE advances a logical clock — compute adds time at the
// configured rate, non-blocking DMA/RMA record completion times from the
// ArchConfig cost model, waits advance the clock to the completion time,
// and barriers take the maximum across the mesh.  Software-pipelining
// benefit therefore *emerges* from the generated schedule instead of being
// asserted by a formula.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sunway/arch.h"
#include "sunway/fault.h"
#include "sunway/host_memory.h"
#include "sunway/services.h"

namespace sw::sunway {

struct MeshRunResult {
  /// Wall-clock of the slowest CPE plus the spawn overhead.
  double seconds = 0.0;
  CpeCounters totals;
  std::vector<double> perCpeSeconds;
  /// Raw counters of each CPE in mesh order (rid * meshCols + cid), for
  /// per-lane attribution and the counter-invariant tests.
  std::vector<CpeCounters> perCpeCounters;
};

class MeshSimulator {
 public:
  /// `functional` selects real data movement; timing-only otherwise.
  MeshSimulator(const ArchConfig& config, bool functional);
  ~MeshSimulator();

  MeshSimulator(const MeshSimulator&) = delete;
  MeshSimulator& operator=(const MeshSimulator&) = delete;

  [[nodiscard]] HostMemory& memory() { return memory_; }
  [[nodiscard]] const ArchConfig& config() const { return config_; }
  [[nodiscard]] bool functional() const { return functional_; }

  /// Install a fault plan consulted by every CPE's DMA/RMA/sync sites on
  /// subsequent runs; nullptr (the default) disables injection.
  void setFaultPlan(std::shared_ptr<const FaultPlan> plan);

  /// No-progress deadline in wall-clock milliseconds.  When every live CPE
  /// has been blocked (barrier, RMA round, lost DMA reply) with no state
  /// change for this long, the run aborts with a ProtocolError carrying a
  /// per-CPE state dump.  0 disables the watchdog; negative keeps
  /// defaultWatchdogMillis().
  void setWatchdogMillis(double millis);

  /// SWCODEGEN_WATCHDOG_MS environment override, else 5000 ms.
  [[nodiscard]] static double defaultWatchdogMillis();

  /// athread_spawn + join: run `body` on every CPE concurrently.  The body
  /// receives that CPE's services.  Exceptions thrown by any CPE are
  /// rethrown here after all threads join.
  MeshRunResult run(const std::function<void(CpeServices&)>& body);

  /// Internal mesh state; public so the per-CPE services implementation in
  /// mesh.cc can reach it without a forest of friend declarations.
  class Impl;

 private:
  std::unique_ptr<Impl> impl_;
  ArchConfig config_;
  bool functional_;
  HostMemory memory_;
};

}  // namespace sw::sunway
