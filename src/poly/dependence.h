// Dependence analysis for the restricted polyhedral layer.
//
// Given the statements of an input program (domains + access relations),
// this module answers the two questions the GEMM pipeline needs, the same
// two attributes isl attaches to the initial band (§2.2 of the paper):
//   * which loop dimensions of a statement are parallel, and
//   * whether the whole loop band is fully permutable (tilable).
//
// Dependences are computed exactly on the dependence polyhedron
//     { (s, t) : s, t in domain, access_a(s) = access_b(t), s <lex t }
// using Fourier–Motzkin emptiness tests.  Structure parameters (M, N, K, B)
// are treated as unconstrained non-negative symbols, so the answers hold for
// every problem size.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "poly/set.h"

namespace sw::poly {

/// Everything the analysis needs to know about one statement.
struct StatementInfo {
  std::string name;
  IntegerSet domain;
  std::vector<AccessRelation> accesses;
};

/// A witness that some dependence is carried at `level` of `statement`'s
/// loop nest, between the two named accesses.
struct Dependence {
  std::string statement;
  std::string arrayName;
  std::size_t level;  // loop dimension carrying the dependence
  bool sourceIsWrite;
  bool sinkIsWrite;

  [[nodiscard]] std::string toString() const;
};

class DependenceAnalysis {
 public:
  explicit DependenceAnalysis(std::vector<StatementInfo> statements);

  /// True if no dependence of `statement` is carried at loop `level`
  /// (i.e. the loop can run its iterations in parallel).
  [[nodiscard]] bool isLoopParallel(const std::string& statement,
                                    std::size_t level) const;

  /// True if the band [begin, end) of `statement`'s loops is fully
  /// permutable: every dependence has non-negative distance in every band
  /// dimension.  Full permutability of the whole nest is the paper's
  /// tilability condition.
  [[nodiscard]] bool isBandPermutable(const std::string& statement,
                                      std::size_t begin,
                                      std::size_t end) const;

  /// All carried self-dependences of `statement`, one witness per
  /// (access pair, carrying level) that is non-empty.
  [[nodiscard]] std::vector<Dependence> selfDependences(
      const std::string& statement) const;

 private:
  [[nodiscard]] const StatementInfo& lookup(const std::string& name) const;

  /// Emptiness test for the polyhedron
  ///   { (s, t) : constraints(statement, pair, carryLevel) and extra }
  /// where `extra` optionally forces distance at `testLevel` to be negative
  /// (for permutability) or is absent (for existence).
  [[nodiscard]] bool dependenceExists(const StatementInfo& stmt,
                                      const AccessRelation& src,
                                      const AccessRelation& snk,
                                      std::size_t carryLevel,
                                      int negativeAtLevel /* -1 = none */) const;

  std::vector<StatementInfo> statements_;
};

}  // namespace sw::poly
