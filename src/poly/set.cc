#include "poly/set.h"

#include "support/error.h"
#include "support/format.h"

namespace sw::poly {

std::string Constraint::toString() const {
  return strCat(expr.toString(), kind == Kind::kEq ? " = 0" : " >= 0");
}

void IntegerSet::addRange(const std::string& dim, const AffineExpr& extent) {
  // dim >= 0
  addGe(AffineExpr::dim(dim));
  // extent - dim - 1 >= 0  (i.e. dim < extent)
  addGe(extent - AffineExpr::dim(dim) - AffineExpr::constant(1));
}

bool IntegerSet::contains(
    const std::map<std::string, std::int64_t>& point) const {
  for (const Constraint& c : constraints_) {
    std::int64_t v = c.expr.evaluate(point);
    if (c.kind == Constraint::Kind::kEq ? v != 0 : v < 0) return false;
  }
  return true;
}

std::optional<DimBounds> IntegerSet::simpleBounds(
    const std::string& dim) const {
  std::optional<AffineExpr> lower;
  std::optional<AffineExpr> upper;
  for (const Constraint& c : constraints_) {
    if (c.kind != Constraint::Kind::kGe) continue;
    std::int64_t coeff = c.expr.coefficient(dim);
    if (coeff == 0) continue;
    // Require the rest of the constraint to be independent of `dim`.
    AffineExpr rest = c.expr - AffineExpr::dim(dim) * coeff;
    bool restUsesDim = false;
    for (const auto& name : rest.collectDims())
      if (name == dim) restUsesDim = true;
    if (restUsesDim) return {};
    if (coeff == 1) {
      // dim + rest >= 0  =>  dim >= -rest
      AffineExpr candidate = -rest;
      if (lower) return {};  // multiple lower bounds: not "simple"
      lower = candidate;
    } else if (coeff == -1) {
      // -dim + rest >= 0  =>  dim <= rest
      if (upper) return {};
      upper = rest;
    } else {
      return {};
    }
  }
  if (!lower || !upper) return {};
  return DimBounds{*lower, *upper};
}

std::string IntegerSet::toString() const {
  std::vector<std::string> parts;
  parts.reserve(constraints_.size());
  for (const Constraint& c : constraints_) parts.push_back(c.toString());
  return strCat(tupleName_, "(", strJoin(dims_, ", "), ") : ",
                strJoin(parts, " and "));
}

AffineMap AffineMap::identity(const std::vector<std::string>& dims) {
  std::vector<AffineExpr> outputs;
  outputs.reserve(dims.size());
  for (const auto& d : dims) outputs.push_back(AffineExpr::dim(d));
  return AffineMap(dims, std::move(outputs));
}

std::vector<std::int64_t> AffineMap::evaluate(
    const std::map<std::string, std::int64_t>& env) const {
  std::vector<std::int64_t> values;
  values.reserve(outputs_.size());
  for (const AffineExpr& e : outputs_) values.push_back(e.evaluate(env));
  return values;
}

std::string AffineMap::toString() const {
  std::vector<std::string> outs;
  outs.reserve(outputs_.size());
  for (const AffineExpr& e : outputs_) outs.push_back(e.toString());
  return strCat("(", strJoin(inputs_, ", "), ") -> (", strJoin(outs, ", "),
                ")");
}

std::string AccessRelation::toString() const {
  std::vector<std::string> subs;
  for (const AffineExpr& e : map.outputs()) subs.push_back(e.toString());
  return strCat(isWrite ? "write " : "read ", arrayName, "[",
                strJoin(subs, "]["), "]");
}

}  // namespace sw::poly
