#include "poly/affine.h"

#include <algorithm>
#include <set>

#include "support/error.h"
#include "support/format.h"
#include "support/math_util.h"

namespace sw::poly {

bool FloorDivTerm::operator==(const FloorDivTerm& other) const {
  return coeff == other.coeff && denominator == other.denominator &&
         *numerator == *other.numerator;
}

AffineExpr AffineExpr::constant(std::int64_t value) {
  AffineExpr e;
  e.constant_ = value;
  return e;
}

AffineExpr AffineExpr::dim(const std::string& name) {
  SW_CHECK(!name.empty(), "dimension name must be non-empty");
  AffineExpr e;
  e.coeffs_[name] = 1;
  return e;
}

AffineExpr AffineExpr::floorDiv(const AffineExpr& numerator,
                                std::int64_t denominator) {
  SW_CHECK(denominator > 0, "floordiv denominator must be positive");
  if (denominator == 1) return numerator;
  if (numerator.isConstant())
    return constant(sw::floorDiv(numerator.constantTerm(), denominator));
  // floor(floor(e/a)/b) == floor(e/(a*b)); this fires when strip-mining a
  // tiled dimension (Fig.6: floor(floor(k/32)/8) = floor(k/256)).
  if (numerator.coeffs_.empty() && numerator.constant_ == 0 &&
      numerator.divs_.size() == 1 && numerator.divs_[0].coeff == 1) {
    const FloorDivTerm& inner = numerator.divs_[0];
    return floorDiv(*inner.numerator, inner.denominator * denominator);
  }
  AffineExpr e;
  e.divs_.push_back(FloorDivTerm{
      1, std::make_shared<const AffineExpr>(numerator), denominator});
  return e;
}

void AffineExpr::addCoefficient(const std::string& dim, std::int64_t coeff) {
  auto [it, inserted] = coeffs_.try_emplace(dim, coeff);
  if (!inserted) it->second += coeff;
}

void AffineExpr::normalize() {
  for (auto it = coeffs_.begin(); it != coeffs_.end();) {
    if (it->second == 0)
      it = coeffs_.erase(it);
    else
      ++it;
  }
  divs_.erase(std::remove_if(divs_.begin(), divs_.end(),
                             [](const FloorDivTerm& t) { return t.coeff == 0; }),
              divs_.end());
}

AffineExpr AffineExpr::operator+(const AffineExpr& other) const {
  AffineExpr result = *this;
  result.constant_ += other.constant_;
  for (const auto& [dim, coeff] : other.coeffs_)
    result.addCoefficient(dim, coeff);
  for (const auto& term : other.divs_) {
    // Merge structurally identical floordiv terms.
    bool merged = false;
    for (auto& mine : result.divs_) {
      if (mine.denominator == term.denominator &&
          *mine.numerator == *term.numerator) {
        mine.coeff += term.coeff;
        merged = true;
        break;
      }
    }
    if (!merged) result.divs_.push_back(term);
  }
  result.normalize();
  return result;
}

AffineExpr AffineExpr::operator-(const AffineExpr& other) const {
  return *this + (other * -1);
}

AffineExpr AffineExpr::operator*(std::int64_t scalar) const {
  AffineExpr result = *this;
  result.constant_ *= scalar;
  for (auto& [dim, coeff] : result.coeffs_) coeff *= scalar;
  for (auto& term : result.divs_) term.coeff *= scalar;
  result.normalize();
  return result;
}

bool AffineExpr::operator==(const AffineExpr& other) const {
  if (constant_ != other.constant_ || coeffs_ != other.coeffs_) return false;
  if (divs_.size() != other.divs_.size()) return false;
  for (std::size_t i = 0; i < divs_.size(); ++i)
    if (!(divs_[i] == other.divs_[i])) return false;
  return true;
}

std::int64_t AffineExpr::coefficient(const std::string& dim) const {
  auto it = coeffs_.find(dim);
  return it == coeffs_.end() ? 0 : it->second;
}

std::optional<std::string> AffineExpr::asSingleDim() const {
  if (constant_ != 0 || !divs_.empty() || coeffs_.size() != 1) return {};
  const auto& [name, coeff] = *coeffs_.begin();
  if (coeff != 1) return {};
  return name;
}

std::vector<std::string> AffineExpr::collectDims() const {
  std::set<std::string> names;
  for (const auto& [dim, coeff] : coeffs_) {
    (void)coeff;
    names.insert(dim);
  }
  for (const auto& term : divs_)
    for (const auto& inner : term.numerator->collectDims()) names.insert(inner);
  return {names.begin(), names.end()};
}

AffineExpr AffineExpr::substitute(const std::string& dim,
                                  const AffineExpr& replacement) const {
  AffineExpr result = AffineExpr::constant(constant_);
  for (const auto& [name, coeff] : coeffs_) {
    if (name == dim)
      result = result + replacement * coeff;
    else
      result = result + AffineExpr::dim(name) * coeff;
  }
  for (const auto& term : divs_) {
    AffineExpr numerator = term.numerator->substitute(dim, replacement);
    result =
        result + AffineExpr::floorDiv(numerator, term.denominator) * term.coeff;
  }
  return result;
}

std::int64_t AffineExpr::evaluate(
    const std::map<std::string, std::int64_t>& env) const {
  std::int64_t value = constant_;
  for (const auto& [dim, coeff] : coeffs_) {
    auto it = env.find(dim);
    SW_CHECK(it != env.end(), strCat("unbound dimension '", dim, "'"));
    value += coeff * it->second;
  }
  for (const auto& term : divs_)
    value +=
        term.coeff * sw::floorDiv(term.numerator->evaluate(env), term.denominator);
  return value;
}

std::string AffineExpr::toString() const {
  std::vector<std::string> parts;
  for (const auto& [dim, coeff] : coeffs_) {
    if (coeff == 1)
      parts.push_back(dim);
    else if (coeff == -1)
      parts.push_back(strCat("-", dim));
    else
      parts.push_back(strCat(coeff, "*", dim));
  }
  for (const auto& term : divs_) {
    std::string body =
        strCat("floor((", term.numerator->toString(), ")/", term.denominator, ")");
    if (term.coeff == 1)
      parts.push_back(body);
    else if (term.coeff == -1)
      parts.push_back(strCat("-", body));
    else
      parts.push_back(strCat(term.coeff, "*", body));
  }
  if (constant_ != 0 || parts.empty()) parts.push_back(strCat(constant_));
  std::string out = parts[0];
  for (std::size_t i = 1; i < parts.size(); ++i) {
    if (!parts[i].empty() && parts[i][0] == '-')
      out += strCat(" - ", parts[i].substr(1));
    else
      out += strCat(" + ", parts[i]);
  }
  return out;
}

AffineExpr tilePointExpr(const AffineExpr& d, std::int64_t size) {
  return d - AffineExpr::floorDiv(d, size) * size;
}

}  // namespace sw::poly
