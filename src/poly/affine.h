// Affine expressions over named dimensions, the foundation of the restricted
// polyhedral layer.
//
// An AffineExpr is
//     sum_i  c_i * dim_i  +  sum_j  c_j * floor(e_j / d_j)  +  constant
// where each e_j is itself an AffineExpr without floordiv terms of its own
// nesting beyond what the GEMM pipeline requires (tiling introduces one level
// of floordiv; strip-mining of a tiled dimension introduces floordivs of
// floordivs, which compose naturally here because the payload of a FloorDiv
// term is an arbitrary AffineExpr).
//
// Dimensions are identified by name.  Names fall into three classes by
// convention (the classes only matter to the consumers, not to the algebra):
//   * loop iterators:        "i", "j", "k", "b", ...
//   * structure parameters:  "M", "N", "K", "B"
//   * hardware bindings:     "Rid", "Cid"
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sw::poly {

class AffineExpr;

/// One floor-division term: coeff * floor(numerator / denominator).
struct FloorDivTerm {
  std::int64_t coeff;
  std::shared_ptr<const AffineExpr> numerator;
  std::int64_t denominator;  // > 0

  bool operator==(const FloorDivTerm& other) const;
};

/// Immutable-by-convention affine expression.  All mutating operators return
/// a new value; the class is cheap to copy for the sizes this project uses.
class AffineExpr {
 public:
  AffineExpr() = default;

  /// The constant `value`.
  static AffineExpr constant(std::int64_t value);
  /// The dimension `name` with coefficient 1.
  static AffineExpr dim(const std::string& name);
  /// floor(numerator / denominator); denominator must be positive.
  static AffineExpr floorDiv(const AffineExpr& numerator,
                             std::int64_t denominator);

  AffineExpr operator+(const AffineExpr& other) const;
  AffineExpr operator-(const AffineExpr& other) const;
  AffineExpr operator*(std::int64_t scalar) const;
  AffineExpr operator-() const { return *this * -1; }

  bool operator==(const AffineExpr& other) const;

  [[nodiscard]] std::int64_t constantTerm() const { return constant_; }
  [[nodiscard]] std::int64_t coefficient(const std::string& dim) const;
  [[nodiscard]] const std::map<std::string, std::int64_t>& coefficients()
      const {
    return coeffs_;
  }
  [[nodiscard]] const std::vector<FloorDivTerm>& floorDivTerms() const {
    return divs_;
  }

  /// True if the expression has no dimension and no floordiv terms.
  [[nodiscard]] bool isConstant() const {
    return coeffs_.empty() && divs_.empty();
  }
  /// True if the expression is exactly one dimension with coefficient 1 and
  /// no other terms; returns the name in that case.
  [[nodiscard]] std::optional<std::string> asSingleDim() const;
  /// True if the expression contains no floordiv terms (pure linear).
  [[nodiscard]] bool isLinear() const { return divs_.empty(); }

  /// All dimension names appearing anywhere in the expression, including
  /// inside floordiv numerators.
  [[nodiscard]] std::vector<std::string> collectDims() const;

  /// Substitute `dim` by `replacement` everywhere (including inside
  /// floordivs).
  [[nodiscard]] AffineExpr substitute(const std::string& dim,
                                      const AffineExpr& replacement) const;

  /// Evaluate with the given dimension values.  Throws InternalError if a
  /// dimension is missing from `env`.
  [[nodiscard]] std::int64_t evaluate(
      const std::map<std::string, std::int64_t>& env) const;

  /// Render in the paper's floor-bracket-free ASCII style, e.g.
  /// "i - 64*floor(i/64)".
  [[nodiscard]] std::string toString() const;

 private:
  void addCoefficient(const std::string& dim, std::int64_t coeff);
  void normalize();

  std::map<std::string, std::int64_t> coeffs_;
  std::vector<FloorDivTerm> divs_;
  std::int64_t constant_ = 0;
};

/// Convenience builders mirroring common tiling forms.
/// tilePoint(d, s) = d - s*floor(d/s), the within-tile coordinate.
AffineExpr tilePointExpr(const AffineExpr& d, std::int64_t size);

}  // namespace sw::poly
