// Integer sets and affine maps, the restricted isl slice used by the GEMM
// pipeline.
//
// An IntegerSet is a named tuple of dimensions constrained by a conjunction
// of affine inequalities/equalities (possibly referencing parameters such as
// M, N, K that are not tuple dimensions).  An AffineMap is a multi-
// dimensional affine function from a tuple of dimensions to a vector of
// affine expressions; it models statement schedules and array accesses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "poly/affine.h"

namespace sw::poly {

/// One affine constraint: expr >= 0 (kGe) or expr == 0 (kEq).
struct Constraint {
  enum class Kind { kGe, kEq };
  AffineExpr expr;
  Kind kind = Kind::kGe;

  [[nodiscard]] std::string toString() const;
};

/// Closed-form description of a dimension's range: lower <= d <= upper.
struct DimBounds {
  AffineExpr lower;
  AffineExpr upper;  // inclusive
};

/// A conjunction of affine constraints over named tuple dimensions.
class IntegerSet {
 public:
  IntegerSet() = default;
  IntegerSet(std::string tupleName, std::vector<std::string> dims)
      : tupleName_(std::move(tupleName)), dims_(std::move(dims)) {}

  [[nodiscard]] const std::string& tupleName() const { return tupleName_; }
  [[nodiscard]] const std::vector<std::string>& dims() const { return dims_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }

  /// Add `expr >= 0`.
  void addGe(const AffineExpr& expr) {
    constraints_.push_back({expr, Constraint::Kind::kGe});
  }
  /// Add `expr == 0`.
  void addEq(const AffineExpr& expr) {
    constraints_.push_back({expr, Constraint::Kind::kEq});
  }
  /// Add the classic loop range `0 <= dim < extent`.
  void addRange(const std::string& dim, const AffineExpr& extent);

  /// True if `point` (an assignment to dims and any parameters referenced by
  /// the constraints) satisfies every constraint.
  [[nodiscard]] bool contains(
      const std::map<std::string, std::int64_t>& point) const;

  /// Retrieve the range of `dim` if the constraints include the simple
  /// `0 <= dim < extent` pattern the frontend produces.  Returns nullopt for
  /// dims constrained in other ways.
  [[nodiscard]] std::optional<DimBounds> simpleBounds(
      const std::string& dim) const;

  [[nodiscard]] std::string toString() const;

 private:
  std::string tupleName_;
  std::vector<std::string> dims_;
  std::vector<Constraint> constraints_;
};

/// An affine function from named input dimensions to affine expressions.
class AffineMap {
 public:
  AffineMap() = default;
  AffineMap(std::vector<std::string> inputDims, std::vector<AffineExpr> outputs)
      : inputs_(std::move(inputDims)), outputs_(std::move(outputs)) {}

  [[nodiscard]] const std::vector<std::string>& inputDims() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<AffineExpr>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] std::size_t numOutputs() const { return outputs_.size(); }

  /// Identity map over the given dims.
  static AffineMap identity(const std::vector<std::string>& dims);

  /// Apply the map to a point.
  [[nodiscard]] std::vector<std::int64_t> evaluate(
      const std::map<std::string, std::int64_t>& env) const;

  [[nodiscard]] std::string toString() const;

 private:
  std::vector<std::string> inputs_;
  std::vector<AffineExpr> outputs_;
};

/// A read or write access: statement instance -> array element.
struct AccessRelation {
  std::string arrayName;
  AffineMap map;  // statement dims -> array subscripts
  bool isWrite = false;

  [[nodiscard]] std::string toString() const;
};

}  // namespace sw::poly
