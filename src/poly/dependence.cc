#include "poly/dependence.h"

#include <map>
#include <set>

#include "poly/linear_system.h"
#include "support/error.h"
#include "support/format.h"

namespace sw::poly {

namespace {

/// Maps dimension names to LinearSystem columns.  Source iterator dims get a
/// "s$" prefix, sink dims a "t$" prefix; parameters keep their own name and
/// are shared between source and sink.
class ColumnTable {
 public:
  std::size_t column(const std::string& name) {
    auto [it, inserted] = table_.try_emplace(name, table_.size());
    (void)inserted;
    return it->second;
  }
  [[nodiscard]] std::size_t size() const { return table_.size(); }

 private:
  std::map<std::string, std::size_t> table_;
};

/// Lower an affine expression (which must be linear) into a coefficient row,
/// renaming iterator dims with `prefix` and leaving parameter dims alone.
void accumulateExpr(const AffineExpr& expr, const std::set<std::string>& iters,
                    const std::string& prefix, std::int64_t scale,
                    ColumnTable& columns,
                    std::map<std::size_t, std::int64_t>& row,
                    std::int64_t& constant) {
  SW_CHECK(expr.isLinear(),
           "dependence analysis requires div-free access/domain expressions");
  constant += scale * expr.constantTerm();
  for (const auto& [dim, coeff] : expr.coefficients()) {
    std::string name = iters.count(dim) != 0 ? prefix + dim : dim;
    row[columns.column(name)] += scale * coeff;
  }
}

struct RowBuilder {
  ColumnTable& columns;
  std::vector<std::pair<std::map<std::size_t, std::int64_t>, std::int64_t>>
      geRows;
  std::vector<std::pair<std::map<std::size_t, std::int64_t>, std::int64_t>>
      eqRows;

  void addExprGe(const AffineExpr& expr, const std::set<std::string>& iters,
                 const std::string& prefix) {
    std::map<std::size_t, std::int64_t> row;
    std::int64_t constant = 0;
    accumulateExpr(expr, iters, prefix, 1, columns, row, constant);
    geRows.emplace_back(std::move(row), constant);
  }

  /// a - b (with independent prefixes) `kind` 0.
  void addDiff(const AffineExpr& a, const std::string& prefixA,
               const AffineExpr& b, const std::string& prefixB,
               const std::set<std::string>& iters, bool equality,
               std::int64_t bias = 0) {
    std::map<std::size_t, std::int64_t> row;
    std::int64_t constant = bias;
    accumulateExpr(a, iters, prefixA, 1, columns, row, constant);
    accumulateExpr(b, iters, prefixB, -1, columns, row, constant);
    if (equality)
      eqRows.emplace_back(std::move(row), constant);
    else
      geRows.emplace_back(std::move(row), constant);
  }

  [[nodiscard]] LinearSystem build() const {
    LinearSystem system(columns.size());
    auto densify = [&](const std::map<std::size_t, std::int64_t>& row) {
      std::vector<std::int64_t> coeffs(columns.size(), 0);
      for (const auto& [col, coeff] : row) coeffs[col] = coeff;
      return coeffs;
    };
    for (const auto& [row, constant] : geRows)
      system.add(densify(row), constant, LinearConstraint::Kind::kGe);
    for (const auto& [row, constant] : eqRows)
      system.add(densify(row), constant, LinearConstraint::Kind::kEq);
    return system;
  }
};

}  // namespace

std::string Dependence::toString() const {
  return strCat(statement, ": ", sourceIsWrite ? "W" : "R", "->",
                sinkIsWrite ? "W" : "R", " on ", arrayName,
                " carried at level ", level);
}

DependenceAnalysis::DependenceAnalysis(std::vector<StatementInfo> statements)
    : statements_(std::move(statements)) {}

const StatementInfo& DependenceAnalysis::lookup(const std::string& name) const {
  for (const StatementInfo& s : statements_)
    if (s.name == name) return s;
  throwInternal(strCat("unknown statement '", name, "'"));
}

bool DependenceAnalysis::dependenceExists(const StatementInfo& stmt,
                                          const AccessRelation& src,
                                          const AccessRelation& snk,
                                          std::size_t carryLevel,
                                          int negativeAtLevel) const {
  const std::vector<std::string>& dims = stmt.domain.dims();
  SW_CHECK(carryLevel < dims.size(), "carry level out of range");
  std::set<std::string> iters(dims.begin(), dims.end());

  ColumnTable columns;
  RowBuilder builder{columns, {}, {}};

  // Both endpoints lie in the statement domain.
  for (const Constraint& c : stmt.domain.constraints()) {
    if (c.kind == Constraint::Kind::kEq) {
      builder.addDiff(c.expr, "s$", AffineExpr::constant(0), "s$", iters,
                      /*equality=*/true);
      builder.addDiff(c.expr, "t$", AffineExpr::constant(0), "t$", iters,
                      /*equality=*/true);
    } else {
      builder.addExprGe(c.expr, iters, "s$");
      builder.addExprGe(c.expr, iters, "t$");
    }
  }

  // Conflicting accesses touch the same array element.
  SW_CHECK(src.map.numOutputs() == snk.map.numOutputs(),
           "access rank mismatch for the same array");
  for (std::size_t d = 0; d < src.map.numOutputs(); ++d)
    builder.addDiff(src.map.outputs()[d], "s$", snk.map.outputs()[d], "t$",
                    iters, /*equality=*/true);

  // Lexicographic order: equal before carryLevel, strictly smaller at it.
  for (std::size_t d = 0; d < carryLevel; ++d)
    builder.addDiff(AffineExpr::dim(dims[d]), "s$", AffineExpr::dim(dims[d]),
                    "t$", iters, /*equality=*/true);
  // t[carry] - s[carry] - 1 >= 0
  builder.addDiff(AffineExpr::dim(dims[carryLevel]), "t$",
                  AffineExpr::dim(dims[carryLevel]), "s$", iters,
                  /*equality=*/false, /*bias=*/-1);

  // Optional negative-distance probe for permutability: s[l] - t[l] - 1 >= 0.
  if (negativeAtLevel >= 0) {
    std::size_t l = static_cast<std::size_t>(negativeAtLevel);
    SW_CHECK(l < dims.size(), "probe level out of range");
    builder.addDiff(AffineExpr::dim(dims[l]), "s$", AffineExpr::dim(dims[l]),
                    "t$", iters, /*equality=*/false, /*bias=*/-1);
  }

  return builder.build().isFeasible();
}

bool DependenceAnalysis::isLoopParallel(const std::string& statement,
                                        std::size_t level) const {
  const StatementInfo& stmt = lookup(statement);
  for (const AccessRelation& src : stmt.accesses) {
    for (const AccessRelation& snk : stmt.accesses) {
      if (!src.isWrite && !snk.isWrite) continue;
      if (src.arrayName != snk.arrayName) continue;
      if (dependenceExists(stmt, src, snk, level, /*negativeAtLevel=*/-1))
        return false;
    }
  }
  return true;
}

bool DependenceAnalysis::isBandPermutable(const std::string& statement,
                                          std::size_t begin,
                                          std::size_t end) const {
  const StatementInfo& stmt = lookup(statement);
  for (const AccessRelation& src : stmt.accesses) {
    for (const AccessRelation& snk : stmt.accesses) {
      if (!src.isWrite && !snk.isWrite) continue;
      if (src.arrayName != snk.arrayName) continue;
      for (std::size_t carry = begin; carry < end; ++carry) {
        for (std::size_t probe = begin; probe < end; ++probe) {
          if (probe == carry) continue;  // carried level has distance >= 1
          if (dependenceExists(stmt, src, snk, carry,
                               static_cast<int>(probe)))
            return false;
        }
      }
    }
  }
  return true;
}

std::vector<Dependence> DependenceAnalysis::selfDependences(
    const std::string& statement) const {
  const StatementInfo& stmt = lookup(statement);
  std::vector<Dependence> result;
  for (const AccessRelation& src : stmt.accesses) {
    for (const AccessRelation& snk : stmt.accesses) {
      if (!src.isWrite && !snk.isWrite) continue;
      if (src.arrayName != snk.arrayName) continue;
      for (std::size_t level = 0; level < stmt.domain.dims().size(); ++level) {
        if (dependenceExists(stmt, src, snk, level, /*negativeAtLevel=*/-1))
          result.push_back(Dependence{statement, src.arrayName, level,
                                      src.isWrite, snk.isWrite});
      }
    }
  }
  return result;
}

}  // namespace sw::poly
