#include "poly/linear_system.h"

#include <algorithm>
#include <numeric>

#include "support/error.h"
#include "support/format.h"
#include "support/math_util.h"

namespace sw::poly {

namespace {

/// Divide a row through by the gcd of its coefficients (including the
/// constant for equalities; excluding it for inequalities we may tighten).
void normalizeRow(LinearConstraint& row) {
  std::int64_t g = 0;
  for (std::int64_t c : row.coeffs) g = gcd(g, c);
  if (g <= 1) return;
  for (auto& c : row.coeffs) c /= g;
  if (row.kind == LinearConstraint::Kind::kEq) {
    // For an equality the constant must also be divisible, otherwise the
    // constraint is integrally infeasible; we keep it as-is and let the
    // caller detect infeasibility (rationally it may still be feasible, so
    // preserve exactness by only dividing when divisible).
    if (row.constant % g == 0) row.constant /= g;
    else {
      // restore coefficients; cannot normalise
      for (auto& c : row.coeffs) c *= g;
      return;
    }
  } else {
    // a*x + c >= 0 with gcd(a) = g  =>  (a/g)*x + floor(c/g) >= 0 is a valid
    // integer tightening.
    row.constant = floorDiv(row.constant, g);
  }
}

/// Combine a lower-bound row (positive coeff on var) and an upper-bound row
/// (negative coeff) to eliminate `var`.
LinearConstraint combine(const LinearConstraint& lower,
                         const LinearConstraint& upper, std::size_t var) {
  const std::int64_t a = lower.coeffs[var];   // > 0
  const std::int64_t b = -upper.coeffs[var];  // > 0
  LinearConstraint out;
  out.kind = LinearConstraint::Kind::kGe;
  out.coeffs.resize(lower.coeffs.size());
  for (std::size_t i = 0; i < lower.coeffs.size(); ++i)
    out.coeffs[i] = b * lower.coeffs[i] + a * upper.coeffs[i];
  out.constant = b * lower.constant + a * upper.constant;
  out.coeffs[var] = 0;
  normalizeRow(out);
  return out;
}

}  // namespace

void LinearSystem::add(std::vector<std::int64_t> coeffs, std::int64_t constant,
                       LinearConstraint::Kind kind) {
  SW_CHECK(coeffs.size() == numVars_, "constraint arity mismatch");
  rows_.push_back({std::move(coeffs), constant, kind});
}

bool LinearSystem::isFeasible() const {
  // Work on a copy with equalities expanded into pairs of inequalities after
  // first using them for exact substitution where possible.
  std::vector<LinearConstraint> rows;
  rows.reserve(rows_.size() * 2);
  for (const LinearConstraint& row : rows_) {
    if (row.kind == LinearConstraint::Kind::kEq) {
      LinearConstraint ge = row;
      ge.kind = LinearConstraint::Kind::kGe;
      LinearConstraint le;
      le.kind = LinearConstraint::Kind::kGe;
      le.coeffs.resize(row.coeffs.size());
      for (std::size_t i = 0; i < row.coeffs.size(); ++i)
        le.coeffs[i] = -row.coeffs[i];
      le.constant = -row.constant;
      rows.push_back(std::move(ge));
      rows.push_back(std::move(le));
    } else {
      rows.push_back(row);
    }
  }

  for (std::size_t var = 0; var < numVars_; ++var) {
    std::vector<LinearConstraint> lowers, uppers, rest;
    for (LinearConstraint& row : rows) {
      if (row.coeffs[var] > 0)
        lowers.push_back(std::move(row));
      else if (row.coeffs[var] < 0)
        uppers.push_back(std::move(row));
      else
        rest.push_back(std::move(row));
    }
    rows = std::move(rest);
    for (const LinearConstraint& lo : lowers)
      for (const LinearConstraint& up : uppers)
        rows.push_back(combine(lo, up, var));
    // Drop trivially satisfied rows to curb the quadratic blowup.
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [](const LinearConstraint& r) {
                                bool allZero = std::all_of(
                                    r.coeffs.begin(), r.coeffs.end(),
                                    [](std::int64_t c) { return c == 0; });
                                return allZero && r.constant >= 0;
                              }),
               rows.end());
  }

  // All variables eliminated: only constant constraints remain.
  for (const LinearConstraint& row : rows) {
    bool allZero = std::all_of(row.coeffs.begin(), row.coeffs.end(),
                               [](std::int64_t c) { return c == 0; });
    SW_CHECK(allZero, "elimination left a non-constant row");
    if (row.constant < 0) return false;
  }
  return true;
}

std::string LinearSystem::toString() const {
  std::vector<std::string> lines;
  for (const LinearConstraint& row : rows_) {
    std::vector<std::string> terms;
    for (std::size_t i = 0; i < row.coeffs.size(); ++i)
      if (row.coeffs[i] != 0)
        terms.push_back(strCat(row.coeffs[i], "*x", i));
    terms.push_back(strCat(row.constant));
    lines.push_back(strCat(
        strJoin(terms, " + "),
        row.kind == LinearConstraint::Kind::kEq ? " == 0" : " >= 0"));
  }
  return strJoin(lines, "\n");
}

}  // namespace sw::poly
