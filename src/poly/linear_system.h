// A dense linear constraint system with Fourier–Motzkin elimination, used to
// decide emptiness of dependence polyhedra.
//
// Variables are indexed columns; each row is a constraint
//     a_0 x_0 + ... + a_{n-1} x_{n-1} + c  (>= 0 | == 0).
// Elimination is rational; because every system built by the dependence
// analysis has unimodular-style coefficients (loop bounds and subscript
// equalities with coefficients in {-1, 0, 1} plus symbolic parameters kept
// as columns), rational emptiness coincides with integer emptiness for our
// use cases.  Coefficients are normalised by their gcd after every
// combination step to keep magnitudes small.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sw::poly {

/// One linear constraint row.  `coeffs[i]` multiplies variable i; `constant`
/// is the trailing term.  Meaning: sum + constant >= 0, or == 0 for kEq.
struct LinearConstraint {
  enum class Kind { kGe, kEq };
  std::vector<std::int64_t> coeffs;
  std::int64_t constant = 0;
  Kind kind = Kind::kGe;
};

class LinearSystem {
 public:
  explicit LinearSystem(std::size_t numVars) : numVars_(numVars) {}

  [[nodiscard]] std::size_t numVars() const { return numVars_; }
  [[nodiscard]] const std::vector<LinearConstraint>& constraints() const {
    return rows_;
  }

  /// Append a constraint; `coeffs` must have exactly numVars entries.
  void add(std::vector<std::int64_t> coeffs, std::int64_t constant,
           LinearConstraint::Kind kind);

  /// Decide whether the rational relaxation of the system has a solution.
  /// Eliminates every variable with Fourier–Motzkin and checks the residual
  /// constant constraints.
  [[nodiscard]] bool isFeasible() const;

  [[nodiscard]] std::string toString() const;

 private:
  std::size_t numVars_;
  std::vector<LinearConstraint> rows_;
};

}  // namespace sw::poly
