// GEMV kernel generation — the §9 adoption claim ("the strategy used for
// optimizing GEMM can be easily adopted to subprograms like general
// matrix-vector multiplication").
//
// y = alpha * A * x + beta * y, with A of size M x K row-major, decomposed
// over the flattened CPE mesh: each CPE owns a 64-row slice of y per mesh
// tile and streams its A panel in depth-`kChunk` pieces, double-buffered
// with the same software-pipelining structure as the GEMM outer-k level.
// There is no vendor assembly GEMV, so the inner product runs at
// compiler-scheduled speed; the kernel is DMA-bandwidth-bound regardless
// (arithmetic intensity 1/4 flop per byte), which the timing model shows.
//
// The result is an ordinary KernelProgram: the same interpreter executes
// it (functionally and in timing mode) and the same printer emits its
// athread C sources.
#pragma once

#include <cstdint>
#include <span>

#include "codegen/program.h"
#include "runtime/executor.h"
#include "sunway/arch.h"

namespace sw::core {

struct GemvOptions {
  /// Depth of one streamed A panel piece (per-CPE SPM tile is
  /// 64 x kChunk doubles, double-buffered).
  std::int64_t kChunk = 128;
  std::int64_t rowsPerCpe = 64;
  bool hideLatency = true;
};

struct CompiledGemv {
  GemvOptions options;
  codegen::KernelProgram program;
  std::string cpeSource;
  std::string mpeSource;
};

/// Generate the GEMV kernel for the given architecture.
CompiledGemv compileGemv(const sunway::ArchConfig& arch,
                         const GemvOptions& options = {});

struct GemvProblem {
  std::int64_t m = 0;
  std::int64_t k = 0;
  double alpha = 1.0;
  double beta = 1.0;
};

/// Execute functionally on the mesh simulator (inputs zero-padded to the
/// kernel's units internally).  `a` is m*k row-major, `x` has k entries,
/// `y` has m entries and receives the result.
rt::RunOutcome runGemvFunctional(const CompiledGemv& kernel,
                                 const sunway::ArchConfig& arch,
                                 const GemvProblem& problem,
                                 std::span<const double> a,
                                 std::span<const double> x,
                                 std::span<double> y);

/// Timing-only estimate.
rt::RunOutcome estimateGemv(const CompiledGemv& kernel,
                            const sunway::ArchConfig& arch,
                            const GemvProblem& problem);

/// Reference oracle with the generated kernel's accumulation structure
/// (alpha folded into x, k-blocked accumulation), for bit-exact checks.
void referenceGemv(double* y, const double* a, const double* x,
                   std::int64_t m, std::int64_t k, double alpha, double beta,
                   std::int64_t kBlock = 128);

}  // namespace sw::core
