#include "core/gemv.h"

#include <vector>

#include "codegen/athread_printer.h"
#include "support/error.h"
#include "support/math_util.h"
#include "sunway/mesh.h"

namespace sw::core {

namespace {

using codegen::AssignOp;
using codegen::ComputeOp;
using codegen::DmaOp;
using codegen::ElementwiseOp;
using codegen::KernelProgram;
using codegen::LoopOp;
using codegen::Op;
using codegen::OpList;
using codegen::WaitOp;
using poly::AffineExpr;
using sched::CopyKind;
using sched::CopyStmt;
using sched::ElementwiseMarkInfo;
using sched::Extent;
using sched::SpmBufferRef;

AffineExpr d(const std::string& name) { return AffineExpr::dim(name); }

/// Rows handled by the whole mesh per mesh-tile iteration.
std::int64_t meshRowsPerTile(const sunway::ArchConfig& arch,
                             const GemvOptions& options) {
  return options.rowsPerCpe * arch.meshSize();
}

/// This CPE's first row within a mesh tile: (Rid*meshCols + Cid) * rows.
AffineExpr cpeRowBase(const sunway::ArchConfig& arch,
                      const GemvOptions& options) {
  return d("mt") * meshRowsPerTile(arch, options) +
         d("Rid") * (arch.meshCols * options.rowsPerCpe) +
         d("Cid") * options.rowsPerCpe;
}

CopyStmt getY(const sunway::ArchConfig& arch, const GemvOptions& options,
              bool put) {
  CopyStmt s;
  s.name = put ? "putY" : "getY";
  s.kind = put ? CopyKind::kDmaPut : CopyKind::kDmaGet;
  s.array = "Y";
  s.buffer = SpmBufferRef{"Y", std::nullopt, 0};
  s.rowStart = AffineExpr::constant(0);
  s.colStart = cpeRowBase(arch, options);
  s.rowsParam = "ONE";
  s.colsParam = "M";
  s.tileRows = 1;
  s.tileCols = options.rowsPerCpe;
  s.replySlot = put ? "reply_Y_put" : "reply_Y_get";
  return s;
}

CopyStmt getA(const sunway::ArchConfig& arch, const GemvOptions& options,
              const AffineExpr& koExpr, std::int64_t phaseOffset) {
  CopyStmt s;
  s.name = phaseOffset == 0 ? "getA" : "getA_next";
  s.kind = CopyKind::kDmaGet;
  s.array = "A";
  s.buffer = SpmBufferRef{"A_dma", "ko", phaseOffset};
  s.rowStart = cpeRowBase(arch, options);
  s.colStart = koExpr * options.kChunk;
  s.rowsParam = "M";
  s.colsParam = "K";
  s.tileRows = options.rowsPerCpe;
  s.tileCols = options.kChunk;
  s.replySlot = "reply_A";
  return s;
}

CopyStmt getX(const GemvOptions& options, const AffineExpr& koExpr,
              std::int64_t phaseOffset) {
  CopyStmt s;
  s.name = phaseOffset == 0 ? "getX" : "getX_next";
  s.kind = CopyKind::kDmaGet;
  s.array = "X";
  s.buffer = SpmBufferRef{"X_dma", "ko", phaseOffset};
  s.rowStart = AffineExpr::constant(0);
  s.colStart = koExpr * options.kChunk;
  s.rowsParam = "ONE";
  s.colsParam = "K";
  s.tileRows = 1;
  s.tileCols = options.kChunk;
  s.replySlot = "reply_X";
  return s;
}

Op elementwise(ElementwiseMarkInfo::Op op, SpmBufferRef target,
               std::int64_t rows, std::int64_t cols) {
  ElementwiseMarkInfo info;
  info.op = op;
  info.target = std::move(target);
  info.rows = rows;
  info.cols = cols;
  return Op{ElementwiseOp{info}};
}

/// The per-chunk inner product: Y[64] += A_tile[64 x kc] * X_chunk[kc].
Op computeChunk(const GemvOptions& options, std::int64_t phaseOffset) {
  sched::ComputeMarkInfo info;
  info.kind = sched::ComputeMarkInfo::Kind::kNaive;  // no vendor GEMV asm
  info.m = options.rowsPerCpe;
  info.n = 1;
  info.k = options.kChunk;
  info.c = SpmBufferRef{"Y", std::nullopt, 0};
  info.a = SpmBufferRef{"A_dma", "ko", phaseOffset};
  // The x chunk is a contiguous kc-vector: as the kc x 1 right operand.
  info.b = SpmBufferRef{"X_dma", "ko", phaseOffset};
  return Op{ComputeOp{info}};
}

/// Issue + scale ops for iteration `expr` (phaseOffset selects the
/// prefetch variant).
void pushIssue(OpList& ops, const sunway::ArchConfig& arch,
               const GemvOptions& options, const AffineExpr& koExpr,
               std::int64_t phaseOffset) {
  ops.push_back(Op{DmaOp{getA(arch, options, koExpr, phaseOffset)}});
  ops.push_back(Op{DmaOp{getX(options, koExpr, phaseOffset)}});
}

void pushWaitAndScale(OpList& ops, const GemvOptions& options,
                      std::int64_t phaseOffset) {
  ops.push_back(Op{WaitOp{"reply_A", false, true}});
  ops.push_back(Op{WaitOp{"reply_X", false, true}});
  // Fold alpha into the x chunk (mirrors the GEMM pipeline's A fold).
  ops.push_back(elementwise(ElementwiseMarkInfo::Op::kAlphaScaleA,
                            SpmBufferRef{"X_dma", "ko", phaseOffset}, 1,
                            options.kChunk));
}

}  // namespace

CompiledGemv compileGemv(const sunway::ArchConfig& arch,
                         const GemvOptions& options) {
  SW_CHECK(options.kChunk > 0 && options.rowsPerCpe > 0,
           "GEMV tile sizes must be positive");
  KernelProgram program;
  program.name = "swgemv";
  program.params = {"M", "K"};
  program.arrays = {codegen::ArrayInfo{"A", "", "M", "K"},
                    codegen::ArrayInfo{"X", "", "ONE", "K"},
                    codegen::ArrayInfo{"Y", "", "ONE", "M"}};
  const int phases = options.hideLatency ? 2 : 1;
  program.buffers = {
      codegen::SpmBufferDecl{"Y", 1, options.rowsPerCpe, 1, 0},
      codegen::SpmBufferDecl{"A_dma", options.rowsPerCpe, options.kChunk,
                             phases, 0},
      codegen::SpmBufferDecl{"X_dma", 1, options.kChunk, phases, 0},
  };
  codegen::planSpmLayout(program, arch.spmBytes);

  const Extent koExtent = Extent::paramDiv("K", options.kChunk);

  OpList meshTileBody;
  meshTileBody.push_back(Op{DmaOp{getY(arch, options, /*put=*/false)}});
  meshTileBody.push_back(Op{WaitOp{"reply_Y_get", false, true}});
  meshTileBody.push_back(elementwise(ElementwiseMarkInfo::Op::kBetaScaleC,
                                     SpmBufferRef{"Y", std::nullopt, 0}, 1,
                                     options.rowsPerCpe));

  if (options.hideLatency) {
    // Peeled pipeline, same structure as the GEMM outer-k level (§6).
    OpList prologue;
    pushIssue(prologue, arch, options, d("ko"), 0);
    pushWaitAndScale(prologue, options, 0);
    meshTileBody.push_back(
        Op{AssignOp{"ko", Extent::constant(0), std::move(prologue)}});

    OpList steady;
    pushIssue(steady, arch, options, d("ko") + AffineExpr::constant(1), 1);
    steady.push_back(computeChunk(options, 0));
    pushWaitAndScale(steady, options, 1);
    meshTileBody.push_back(Op{LoopOp{"ko", Extent::constant(0),
                                     koExtent.plus(-1), std::move(steady)}});

    OpList last;
    last.push_back(computeChunk(options, 0));
    meshTileBody.push_back(
        Op{AssignOp{"ko", koExtent.plus(-1), std::move(last)}});
  } else {
    OpList body;
    pushIssue(body, arch, options, d("ko"), 0);
    pushWaitAndScale(body, options, 0);
    body.push_back(computeChunk(options, 0));
    meshTileBody.push_back(
        Op{LoopOp{"ko", Extent::constant(0), koExtent, std::move(body)}});
  }

  meshTileBody.push_back(Op{DmaOp{getY(arch, options, /*put=*/true)}});
  meshTileBody.push_back(Op{WaitOp{"reply_Y_put", false, true}});

  program.body.push_back(
      Op{LoopOp{"mt", Extent::constant(0),
                Extent::paramDiv("M", meshRowsPerTile(arch, options)),
                std::move(meshTileBody)}});

  CompiledGemv kernel;
  kernel.options = options;
  kernel.program = std::move(program);
  codegen::GeneratedSources sources =
      codegen::printAthreadSources(kernel.program);
  kernel.cpeSource = std::move(sources.cpe);
  kernel.mpeSource = std::move(sources.mpe);
  return kernel;
}

namespace {

std::map<std::string, std::int64_t> gemvParams(const CompiledGemv& kernel,
                                               const sunway::ArchConfig& arch,
                                               const GemvProblem& problem,
                                               std::int64_t* paddedM,
                                               std::int64_t* paddedK) {
  SW_CHECK(problem.m > 0 && problem.k > 0, "GEMV sizes must be positive");
  *paddedM = roundUp(problem.m,
                     meshRowsPerTile(arch, kernel.options));
  *paddedK = roundUp(problem.k, kernel.options.kChunk);
  return {{"M", *paddedM}, {"K", *paddedK}};
}

}  // namespace

rt::RunOutcome runGemvFunctional(const CompiledGemv& kernel,
                                 const sunway::ArchConfig& arch,
                                 const GemvProblem& problem,
                                 std::span<const double> a,
                                 std::span<const double> x,
                                 std::span<double> y) {
  std::int64_t paddedM = 0, paddedK = 0;
  auto params = gemvParams(kernel, arch, problem, &paddedM, &paddedK);
  SW_CHECK(static_cast<std::int64_t>(a.size()) == problem.m * problem.k &&
               static_cast<std::int64_t>(x.size()) == problem.k &&
               static_cast<std::int64_t>(y.size()) == problem.m,
           "operand span sizes do not match the problem");

  sunway::MeshSimulator mesh(arch, /*functional=*/true);
  sunway::HostArray arrA =
      sunway::HostArray::allocate("A", 1, paddedM, paddedK);
  sunway::HostArray arrX = sunway::HostArray::allocate("X", 1, 1, paddedK);
  sunway::HostArray arrY = sunway::HostArray::allocate("Y", 1, 1, paddedM);
  for (std::int64_t r = 0; r < problem.m; ++r)
    for (std::int64_t c = 0; c < problem.k; ++c)
      arrA.at(0, r, c) = a[static_cast<std::size_t>(r * problem.k + c)];
  for (std::int64_t c = 0; c < problem.k; ++c)
    arrX.at(0, 0, c) = x[static_cast<std::size_t>(c)];
  for (std::int64_t r = 0; r < problem.m; ++r)
    arrY.at(0, 0, r) = y[static_cast<std::size_t>(r)];
  mesh.memory().add(std::move(arrA));
  mesh.memory().add(std::move(arrX));
  mesh.memory().add(std::move(arrY));

  rt::ExecScalars scalars{problem.alpha, problem.beta};
  rt::RunOutcome outcome =
      rt::runOnMesh(mesh, kernel.program, params, scalars,
                    2.0 * static_cast<double>(problem.m) *
                        static_cast<double>(problem.k));
  const sunway::HostArray& result = mesh.memory().get("Y");
  for (std::int64_t r = 0; r < problem.m; ++r)
    y[static_cast<std::size_t>(r)] = result.at(0, 0, r);
  return outcome;
}

rt::RunOutcome estimateGemv(const CompiledGemv& kernel,
                            const sunway::ArchConfig& arch,
                            const GemvProblem& problem) {
  std::int64_t paddedM = 0, paddedK = 0;
  auto params = gemvParams(kernel, arch, problem, &paddedM, &paddedK);
  return rt::estimateTiming(arch, kernel.program, params,
                            2.0 * static_cast<double>(problem.m) *
                                static_cast<double>(problem.k));
}

void referenceGemv(double* y, const double* a, const double* x,
                   std::int64_t m, std::int64_t k, double alpha, double beta,
                   std::int64_t kBlock) {
  std::vector<double> xPrime(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) xPrime[i] = x[i] * alpha;
  for (std::int64_t r = 0; r < m; ++r) y[r] *= beta;
  for (std::int64_t kb = 0; kb < k; kb += kBlock) {
    const std::int64_t kEnd = kb + kBlock < k ? kb + kBlock : k;
    for (std::int64_t r = 0; r < m; ++r) {
      double acc = 0.0;
      for (std::int64_t c = kb; c < kEnd; ++c)
        acc += a[r * k + c] * xPrime[static_cast<std::size_t>(c)];
      y[r] += acc;
    }
  }
}

}  // namespace sw::core
