// The GEMM code-generation pipeline (§3–§7): dependence analysis, compute
// decomposition, hardware binding, DMA/RMA insertion, memory latency
// hiding, and lowering to an executable KernelProgram.
//
// Every stage operates on schedule trees; the intermediate trees are kept
// so tests and the --dump-schedule path can check them against the paper's
// figures.
#pragma once

#include <string>
#include <vector>

#include "codegen/program.h"
#include "core/options.h"
#include "schedule/tree.h"
#include "sunway/arch.h"

namespace sw::core {

/// Pipeline output: the final schedule tree, the stage-by-stage dumps, and
/// the executable/printable kernel program.
struct PipelineResult {
  codegen::KernelProgram program;
  std::string initialTreeDump;   // Fig.2b
  std::string tiledTreeDump;     // Fig.4
  std::string finalTreeDump;     // Fig.9 / Fig.11
};

/// Run the whole pipeline for the (possibly batched / fused) DGEMM pattern.
/// Throws InputError if the dependence analysis cannot prove the required
/// parallelism/tilability, or if the SPM working set would overflow.
PipelineResult runGemmPipeline(const CodegenOptions& options,
                               const sunway::ArchConfig& arch);

/// Padded problem sizes: M, N rounded up to meshRows*tileM / meshCols*tileN
/// and K to stripFactor*tileK (or tileK without RMA), per the zero-padding
/// convention of §8.1.
struct PaddedShape {
  std::int64_t m = 0, n = 0, k = 0;
};
PaddedShape padShape(std::int64_t m, std::int64_t n, std::int64_t k,
                     const CodegenOptions& options,
                     const sunway::ArchConfig& arch);

}  // namespace sw::core
