#include "core/gemm_runner.h"

#include "support/error.h"
#include "support/format.h"
#include "support/logging.h"
#include "support/trace.h"
#include "sunway/mesh.h"

namespace sw::core {

namespace {

/// Copy a batch*rows*cols row-major matrix into a zero-padded
/// batch*paddedRows*paddedCols host array.
void packPadded(sunway::HostArray& dst, std::span<const double> src,
                std::int64_t batch, std::int64_t rows, std::int64_t cols) {
  SW_CHECK(static_cast<std::int64_t>(src.size()) == batch * rows * cols,
           "input span size does not match the declared shape");
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t cc = 0; cc < cols; ++cc)
        dst.at(b, r, cc) = src[static_cast<std::size_t>((b * rows + r) * cols + cc)];
}

void unpackPadded(std::span<double> dst, const sunway::HostArray& src,
                  std::int64_t batch, std::int64_t rows, std::int64_t cols) {
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t cc = 0; cc < cols; ++cc)
        dst[static_cast<std::size_t>((b * rows + r) * cols + cc)] =
            src.at(b, r, cc);
}

}  // namespace

rt::RunOutcome runGemmFunctional(const CompiledKernel& kernel,
                                 const sunway::ArchConfig& arch,
                                 const GemmProblem& problem,
                                 std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<double> c,
                                 const FunctionalRunConfig& runConfig) {
  SW_CHECK(problem.batch >= 1, "batch must be >= 1");
  SW_CHECK(kernel.options.batched || problem.batch == 1,
           "batch > 1 requires a kernel compiled with --batch");
  trace::Span span("run.functional",
                   {trace::arg("m", problem.m), trace::arg("n", problem.n),
                    trace::arg("k", problem.k),
                    trace::arg("batch", problem.batch)},
                   "run");
  const PaddedShape padded =
      padShape(problem.m, problem.n, problem.k, kernel.options, arch);

  sunway::MeshSimulator mesh(arch, /*functional=*/true);
  mesh.setFaultPlan(runConfig.faultPlan);
  mesh.setWatchdogMillis(runConfig.watchdogMillis);
  // Transposed operands are stored in their transposed layout (A: K x M,
  // B: N x K), matching the generated kernel's address computation.
  const bool tA = kernel.options.transposeA;
  const bool tB = kernel.options.transposeB;
  sunway::HostArray arrA = sunway::HostArray::allocate(
      "A", problem.batch, tA ? padded.k : padded.m, tA ? padded.m : padded.k);
  sunway::HostArray arrB = sunway::HostArray::allocate(
      "B", problem.batch, tB ? padded.n : padded.k, tB ? padded.k : padded.n);
  sunway::HostArray arrC = sunway::HostArray::allocate(
      "C", problem.batch, padded.m, padded.n);
  packPadded(arrA, a, problem.batch, tA ? problem.k : problem.m,
             tA ? problem.m : problem.k);
  packPadded(arrB, b, problem.batch, tB ? problem.n : problem.k,
             tB ? problem.k : problem.n);
  packPadded(arrC, c, problem.batch, problem.m, problem.n);
  mesh.memory().add(std::move(arrA));
  mesh.memory().add(std::move(arrB));
  mesh.memory().add(std::move(arrC));

  auto params = rt::bindParams(kernel.program, padded.m, padded.n, padded.k,
                               problem.batch);
  rt::ExecScalars scalars{problem.alpha, problem.beta};
  const rt::ExecutionPlan* plan =
      runConfig.engine == rt::ExecEngine::kPlan ? kernel.plan.get() : nullptr;
  rt::RunOutcome outcome = rt::runOnMesh(
      mesh, kernel.program, params, scalars,
      rt::gemmFlops(problem.m, problem.n, problem.k, problem.batch), plan);

  unpackPadded(c, mesh.memory().get("C"), problem.batch, problem.m,
               problem.n);
  return outcome;
}

rt::RunOutcome estimateGemm(const CompiledKernel& kernel,
                            const sunway::ArchConfig& arch,
                            const GemmProblem& problem) {
  trace::Span span("run.estimate_gemm",
                   {trace::arg("m", problem.m), trace::arg("n", problem.n),
                    trace::arg("k", problem.k),
                    trace::arg("batch", problem.batch)},
                   "run");
  const PaddedShape padded =
      padShape(problem.m, problem.n, problem.k, kernel.options, arch);
  auto params = rt::bindParams(kernel.program, padded.m, padded.n, padded.k,
                               problem.batch);
  return rt::estimateTiming(
      arch, kernel.program, params,
      rt::gemmFlops(problem.m, problem.n, problem.k, problem.batch),
      kernel.plan.get());
}

}  // namespace sw::core
