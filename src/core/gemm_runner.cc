#include "core/gemm_runner.h"

#include <chrono>
#include <cstring>
#include <optional>
#include <vector>

#include "jit/native_engine.h"
#include "support/error.h"
#include "support/format.h"
#include "support/logging.h"
#include "support/trace.h"
#include "sunway/mesh.h"

namespace sw::core {

namespace {

/// Copy a batch*rows*cols row-major matrix into a zero-padded
/// batch*paddedRows*paddedCols host array, one contiguous row memcpy at a
/// time.  Returns the number of bytes copied.
std::int64_t packPadded(sunway::HostArray& dst, std::span<const double> src,
                        std::int64_t batch, std::int64_t rows,
                        std::int64_t cols) {
  SW_CHECK(static_cast<std::int64_t>(src.size()) == batch * rows * cols,
           "input span size does not match the declared shape");
  const std::int64_t rowBytes = cols * static_cast<std::int64_t>(sizeof(double));
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t r = 0; r < rows; ++r)
      std::memcpy(&dst.at(b, r, 0),
                  src.data() + static_cast<std::size_t>((b * rows + r) * cols),
                  static_cast<std::size_t>(rowBytes));
  return batch * rows * rowBytes;
}

std::int64_t unpackPadded(std::span<double> dst, const sunway::HostArray& src,
                          std::int64_t batch, std::int64_t rows,
                          std::int64_t cols) {
  const std::int64_t rowBytes = cols * static_cast<std::int64_t>(sizeof(double));
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t r = 0; r < rows; ++r)
      std::memcpy(dst.data() + static_cast<std::size_t>((b * rows + r) * cols),
                  src.data() + src.offsetOf(b, r, 0),
                  static_cast<std::size_t>(rowBytes));
  return batch * rows * rowBytes;
}

PadMode resolvePadMode(const CompiledKernel& kernel,
                       const FunctionalRunConfig& runConfig) {
  PadMode mode = runConfig.padMode;
  if (mode == PadMode::kAuto)
    mode = kernel.options.edgeTiles ? PadMode::kEdge : PadMode::kPadded;
  if (mode == PadMode::kEdge && !kernel.options.edgeTiles)
    throw InputError(
        "pad mode 'edge' requires a kernel compiled with edge tiles "
        "(CodegenOptions::edgeTiles / --pad-mode=edge at compile time); "
        "this kernel assumes padded inputs");
  return mode;
}

/// Attempt the native JIT engine for one functional run.  Returns nullopt
/// after bumping `jit.fallback` when the engine is environmentally
/// unavailable (missing compiler, unwritable cache, dlopen failure) so the
/// caller degrades to the plan engine; InputError (caller bug) propagates.
std::optional<rt::RunOutcome> tryRunGemmNative(
    const CompiledKernel& kernel, const sunway::ArchConfig& arch,
    const GemmProblem& problem, std::span<const double> a,
    std::span<const double> b, std::span<double> c, PadMode mode,
    const FunctionalRunConfig& runConfig) {
  trace::Span span("run.native",
                   {trace::arg("m", problem.m), trace::arg("n", problem.n),
                    trace::arg("k", problem.k),
                    trace::arg("batch", problem.batch)},
                   "run");
  const bool tA = kernel.options.transposeA;
  const bool tB = kernel.options.transposeB;
  const std::int64_t aRows = tA ? problem.k : problem.m;
  const std::int64_t aCols = tA ? problem.m : problem.k;
  const std::int64_t bRows = tB ? problem.n : problem.k;
  const std::int64_t bCols = tB ? problem.k : problem.n;

  // Same host-array contract as the mesh path: edge mode binds the
  // caller's buffers in place, padded mode packs zero-padded shadows that
  // this function owns for the duration of the run.
  std::int64_t hostCopyBytes = 0;
  std::map<std::string, std::int64_t> params;
  std::vector<sunway::HostArray> owned;
  double* ptrA = nullptr;
  double* ptrB = nullptr;
  double* ptrC = nullptr;
  if (mode == PadMode::kEdge) {
    SW_CHECK(static_cast<std::int64_t>(a.size()) ==
                 problem.batch * aRows * aCols,
             "input span size does not match the declared shape");
    SW_CHECK(static_cast<std::int64_t>(b.size()) ==
                 problem.batch * bRows * bCols,
             "input span size does not match the declared shape");
    SW_CHECK(static_cast<std::int64_t>(c.size()) ==
                 problem.batch * problem.m * problem.n,
             "input span size does not match the declared shape");
    // A and B receive only reads from the generated code.
    ptrA = const_cast<double*>(a.data());
    ptrB = const_cast<double*>(b.data());
    ptrC = c.data();
    params = rt::bindParams(kernel.program, problem.m, problem.n, problem.k,
                            problem.batch);
  } else {
    const PaddedShape padded =
        padShape(problem.m, problem.n, problem.k, kernel.options, arch);
    owned.push_back(sunway::HostArray::allocate(
        "A", problem.batch, tA ? padded.k : padded.m, tA ? padded.m : padded.k));
    owned.push_back(sunway::HostArray::allocate(
        "B", problem.batch, tB ? padded.n : padded.k, tB ? padded.k : padded.n));
    owned.push_back(sunway::HostArray::allocate("C", problem.batch, padded.m,
                                                padded.n));
    hostCopyBytes += packPadded(owned[0], a, problem.batch, aRows, aCols);
    hostCopyBytes += packPadded(owned[1], b, problem.batch, bRows, bCols);
    if (problem.beta != 0.0) {
      hostCopyBytes += packPadded(owned[2], c, problem.batch, problem.m,
                                  problem.n);
    } else {
      // beta == 0: C is write-only, never pack (possibly NaN) values.
      SW_CHECK(static_cast<std::int64_t>(c.size()) ==
                   problem.batch * problem.m * problem.n,
               "input span size does not match the declared shape");
    }
    ptrA = &owned[0].at(0, 0, 0);
    ptrB = &owned[1].at(0, 0, 0);
    ptrC = &owned[2].at(0, 0, 0);
    params = rt::bindParams(kernel.program, padded.m, padded.n, padded.k,
                            problem.batch);
  }

  jit::NativeRunInput input;
  input.alpha = problem.alpha;
  input.beta = problem.beta;
  for (const std::string& name : kernel.program.params)
    input.params.push_back(params.at(name));
  for (const codegen::ArrayInfo& array : kernel.program.arrays) {
    if (array.name == "A")
      input.arrays.push_back(ptrA);
    else if (array.name == "B")
      input.arrays.push_back(ptrB);
    else if (array.name == "C")
      input.arrays.push_back(ptrC);
    else
      throwInternal(strCat("unknown program array '", array.name, "'"));
  }

  jit::NativeEngineConfig engineConfig;
  engineConfig.cacheDir = runConfig.jitCacheDir;
  const double reportedFlops =
      rt::gemmFlops(problem.m, problem.n, problem.k, problem.batch);
  jit::NativeRunResult native;
  const auto start = std::chrono::steady_clock::now();
  try {
    native = jit::runNative(kernel.program, engineConfig, input);
  } catch (const TransientError& e) {
    metrics::MetricsRegistry::global().add("jit.fallback", 1.0);
    SW_WARN("jit", "event=fallback kernel=", kernel.program.name,
            " reason=\"", e.what(), "\" next=plan");
    return std::nullopt;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  rt::RunOutcome outcome;
  outcome.engine = "native";
  outcome.jitCacheHit = native.cacheHit;
  outcome.seconds = wall;
  outcome.gflops = metrics::safeDiv(reportedFlops, wall) / 1e9;
  outcome.counters = native.counters;
  outcome.metrics =
      rt::deriveRunMetrics(native.counters, wall, arch.meshSize(),
                           kernel.program, arch.spmBytes);
  outcome.metrics.publish(metrics::MetricsRegistry::global(), "run.native.");
  outcome.report =
      rt::buildRunReport(kernel.program, "native", params, wall,
                         arch.meshSize(), reportedFlops, native.counters,
                         arch);
  if (mode != PadMode::kEdge)
    hostCopyBytes += unpackPadded(c, owned[2], problem.batch, problem.m,
                                  problem.n);
  outcome.hostCopyBytes = hostCopyBytes;
  SW_DEBUG("jit", "event=native_run kernel=", kernel.program.name,
           " wall_seconds=", wall, " gflops=", outcome.gflops,
           " cache_hit=", native.cacheHit ? "true" : "false");
  return outcome;
}

}  // namespace

rt::RunOutcome runGemmFunctional(const CompiledKernel& kernel,
                                 const sunway::ArchConfig& arch,
                                 const GemmProblem& problem,
                                 std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<double> c,
                                 const FunctionalRunConfig& runConfig) {
  SW_CHECK(problem.batch >= 1, "batch must be >= 1");
  SW_CHECK(kernel.options.batched || problem.batch == 1,
           "batch > 1 requires a kernel compiled with --batch");
  const PadMode mode = resolvePadMode(kernel, runConfig);
  // Native JIT dispatch: real machine code when the environment allows it.
  // A fault plan pins the run to the simulator (injection is a simulator
  // feature); environmental failures degrade to the plan engine below.
  if (runConfig.engine == rt::ExecEngine::kNative &&
      runConfig.faultPlan == nullptr) {
    if (std::optional<rt::RunOutcome> native = tryRunGemmNative(
            kernel, arch, problem, a, b, c, mode, runConfig))
      return *native;
  }
  trace::Span span("run.functional",
                   {trace::arg("m", problem.m), trace::arg("n", problem.n),
                    trace::arg("k", problem.k),
                    trace::arg("batch", problem.batch),
                    trace::arg("pad_mode",
                               mode == PadMode::kEdge ? "edge" : "padded")},
                   "run");

  sunway::MeshSimulator mesh(arch, /*functional=*/true);
  mesh.setFaultPlan(runConfig.faultPlan);
  mesh.setWatchdogMillis(runConfig.watchdogMillis);
  // Transposed operands are stored in their transposed layout (A: K x M,
  // B: N x K), matching the generated kernel's address computation.
  const bool tA = kernel.options.transposeA;
  const bool tB = kernel.options.transposeB;
  const std::int64_t aRows = tA ? problem.k : problem.m;
  const std::int64_t aCols = tA ? problem.m : problem.k;
  const std::int64_t bRows = tB ? problem.n : problem.k;
  const std::int64_t bCols = tB ? problem.k : problem.n;

  std::int64_t hostCopyBytes = 0;
  std::map<std::string, std::int64_t> params;
  if (mode == PadMode::kEdge) {
    // Bind the caller's unpadded arrays directly and hand the kernel the
    // true extents; the edge-tile clamps keep every transfer and compute
    // inside these bounds.  A and B receive only DMA gets, so the
    // const_cast never results in a write.
    SW_CHECK(static_cast<std::int64_t>(a.size()) ==
                 problem.batch * aRows * aCols,
             "input span size does not match the declared shape");
    SW_CHECK(static_cast<std::int64_t>(b.size()) ==
                 problem.batch * bRows * bCols,
             "input span size does not match the declared shape");
    SW_CHECK(static_cast<std::int64_t>(c.size()) ==
                 problem.batch * problem.m * problem.n,
             "input span size does not match the declared shape");
    mesh.memory().add(sunway::HostArray::borrow(
        "A", problem.batch, aRows, aCols, const_cast<double*>(a.data())));
    mesh.memory().add(sunway::HostArray::borrow(
        "B", problem.batch, bRows, bCols, const_cast<double*>(b.data())));
    mesh.memory().add(sunway::HostArray::borrow("C", problem.batch, problem.m,
                                                problem.n, c.data()));
    params = rt::bindParams(kernel.program, problem.m, problem.n, problem.k,
                            problem.batch);
  } else {
    const PaddedShape padded =
        padShape(problem.m, problem.n, problem.k, kernel.options, arch);
    sunway::HostArray arrA = sunway::HostArray::allocate(
        "A", problem.batch, tA ? padded.k : padded.m, tA ? padded.m : padded.k);
    sunway::HostArray arrB = sunway::HostArray::allocate(
        "B", problem.batch, tB ? padded.n : padded.k, tB ? padded.k : padded.n);
    sunway::HostArray arrC = sunway::HostArray::allocate(
        "C", problem.batch, padded.m, padded.n);
    hostCopyBytes += packPadded(arrA, a, problem.batch, aRows, aCols);
    hostCopyBytes += packPadded(arrB, b, problem.batch, bRows, bCols);
    if (problem.beta != 0.0) {
      // beta == 0 means C is write-only (BLAS semantics): the kernel
      // zero-fills the C tile instead of scaling it, so the caller's
      // values — possibly NaN — must not be packed, let alone read.
      hostCopyBytes += packPadded(arrC, c, problem.batch, problem.m,
                                  problem.n);
    } else {
      SW_CHECK(static_cast<std::int64_t>(c.size()) ==
                   problem.batch * problem.m * problem.n,
               "input span size does not match the declared shape");
    }
    mesh.memory().add(std::move(arrA));
    mesh.memory().add(std::move(arrB));
    mesh.memory().add(std::move(arrC));
    params = rt::bindParams(kernel.program, padded.m, padded.n, padded.k,
                            problem.batch);
  }

  rt::ExecScalars scalars{problem.alpha, problem.beta};
  // kNative reaching this point means the JIT degraded (or a fault plan
  // pinned the simulator): run the lowered plan, the next rung down.
  const rt::ExecutionPlan* plan =
      runConfig.engine == rt::ExecEngine::kTreeWalk ? nullptr
                                                    : kernel.plan.get();
  rt::RunOutcome outcome = rt::runOnMesh(
      mesh, kernel.program, params, scalars,
      rt::gemmFlops(problem.m, problem.n, problem.k, problem.batch), plan);

  if (mode != PadMode::kEdge)
    hostCopyBytes += unpackPadded(c, mesh.memory().get("C"), problem.batch,
                                  problem.m, problem.n);
  outcome.hostCopyBytes = hostCopyBytes;
  return outcome;
}

rt::RunOutcome estimateGemm(const CompiledKernel& kernel,
                            const sunway::ArchConfig& arch,
                            const GemmProblem& problem) {
  trace::Span span("run.estimate_gemm",
                   {trace::arg("m", problem.m), trace::arg("n", problem.n),
                    trace::arg("k", problem.k),
                    trace::arg("batch", problem.batch)},
                   "run");
  // Edge-tile kernels bind the true extents (their transfers and compute
  // clamp to them); padded kernels require the padded shape.
  std::map<std::string, std::int64_t> params;
  if (kernel.options.edgeTiles) {
    params = rt::bindParams(kernel.program, problem.m, problem.n, problem.k,
                            problem.batch);
  } else {
    const PaddedShape padded =
        padShape(problem.m, problem.n, problem.k, kernel.options, arch);
    params = rt::bindParams(kernel.program, padded.m, padded.n, padded.k,
                            problem.batch);
  }
  return rt::estimateTiming(
      arch, kernel.program, params,
      rt::gemmFlops(problem.m, problem.n, problem.k, problem.batch),
      kernel.plan.get());
}

}  // namespace sw::core
