#include "core/gemm_runner.h"

#include <cstring>

#include "support/error.h"
#include "support/format.h"
#include "support/logging.h"
#include "support/trace.h"
#include "sunway/mesh.h"

namespace sw::core {

namespace {

/// Copy a batch*rows*cols row-major matrix into a zero-padded
/// batch*paddedRows*paddedCols host array, one contiguous row memcpy at a
/// time.  Returns the number of bytes copied.
std::int64_t packPadded(sunway::HostArray& dst, std::span<const double> src,
                        std::int64_t batch, std::int64_t rows,
                        std::int64_t cols) {
  SW_CHECK(static_cast<std::int64_t>(src.size()) == batch * rows * cols,
           "input span size does not match the declared shape");
  const std::int64_t rowBytes = cols * static_cast<std::int64_t>(sizeof(double));
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t r = 0; r < rows; ++r)
      std::memcpy(&dst.at(b, r, 0),
                  src.data() + static_cast<std::size_t>((b * rows + r) * cols),
                  static_cast<std::size_t>(rowBytes));
  return batch * rows * rowBytes;
}

std::int64_t unpackPadded(std::span<double> dst, const sunway::HostArray& src,
                          std::int64_t batch, std::int64_t rows,
                          std::int64_t cols) {
  const std::int64_t rowBytes = cols * static_cast<std::int64_t>(sizeof(double));
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t r = 0; r < rows; ++r)
      std::memcpy(dst.data() + static_cast<std::size_t>((b * rows + r) * cols),
                  src.data() + src.offsetOf(b, r, 0),
                  static_cast<std::size_t>(rowBytes));
  return batch * rows * rowBytes;
}

PadMode resolvePadMode(const CompiledKernel& kernel,
                       const FunctionalRunConfig& runConfig) {
  PadMode mode = runConfig.padMode;
  if (mode == PadMode::kAuto)
    mode = kernel.options.edgeTiles ? PadMode::kEdge : PadMode::kPadded;
  if (mode == PadMode::kEdge && !kernel.options.edgeTiles)
    throw InputError(
        "pad mode 'edge' requires a kernel compiled with edge tiles "
        "(CodegenOptions::edgeTiles / --pad-mode=edge at compile time); "
        "this kernel assumes padded inputs");
  return mode;
}

}  // namespace

rt::RunOutcome runGemmFunctional(const CompiledKernel& kernel,
                                 const sunway::ArchConfig& arch,
                                 const GemmProblem& problem,
                                 std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<double> c,
                                 const FunctionalRunConfig& runConfig) {
  SW_CHECK(problem.batch >= 1, "batch must be >= 1");
  SW_CHECK(kernel.options.batched || problem.batch == 1,
           "batch > 1 requires a kernel compiled with --batch");
  const PadMode mode = resolvePadMode(kernel, runConfig);
  trace::Span span("run.functional",
                   {trace::arg("m", problem.m), trace::arg("n", problem.n),
                    trace::arg("k", problem.k),
                    trace::arg("batch", problem.batch),
                    trace::arg("pad_mode",
                               mode == PadMode::kEdge ? "edge" : "padded")},
                   "run");

  sunway::MeshSimulator mesh(arch, /*functional=*/true);
  mesh.setFaultPlan(runConfig.faultPlan);
  mesh.setWatchdogMillis(runConfig.watchdogMillis);
  // Transposed operands are stored in their transposed layout (A: K x M,
  // B: N x K), matching the generated kernel's address computation.
  const bool tA = kernel.options.transposeA;
  const bool tB = kernel.options.transposeB;
  const std::int64_t aRows = tA ? problem.k : problem.m;
  const std::int64_t aCols = tA ? problem.m : problem.k;
  const std::int64_t bRows = tB ? problem.n : problem.k;
  const std::int64_t bCols = tB ? problem.k : problem.n;

  std::int64_t hostCopyBytes = 0;
  std::map<std::string, std::int64_t> params;
  if (mode == PadMode::kEdge) {
    // Bind the caller's unpadded arrays directly and hand the kernel the
    // true extents; the edge-tile clamps keep every transfer and compute
    // inside these bounds.  A and B receive only DMA gets, so the
    // const_cast never results in a write.
    SW_CHECK(static_cast<std::int64_t>(a.size()) ==
                 problem.batch * aRows * aCols,
             "input span size does not match the declared shape");
    SW_CHECK(static_cast<std::int64_t>(b.size()) ==
                 problem.batch * bRows * bCols,
             "input span size does not match the declared shape");
    SW_CHECK(static_cast<std::int64_t>(c.size()) ==
                 problem.batch * problem.m * problem.n,
             "input span size does not match the declared shape");
    mesh.memory().add(sunway::HostArray::borrow(
        "A", problem.batch, aRows, aCols, const_cast<double*>(a.data())));
    mesh.memory().add(sunway::HostArray::borrow(
        "B", problem.batch, bRows, bCols, const_cast<double*>(b.data())));
    mesh.memory().add(sunway::HostArray::borrow("C", problem.batch, problem.m,
                                                problem.n, c.data()));
    params = rt::bindParams(kernel.program, problem.m, problem.n, problem.k,
                            problem.batch);
  } else {
    const PaddedShape padded =
        padShape(problem.m, problem.n, problem.k, kernel.options, arch);
    sunway::HostArray arrA = sunway::HostArray::allocate(
        "A", problem.batch, tA ? padded.k : padded.m, tA ? padded.m : padded.k);
    sunway::HostArray arrB = sunway::HostArray::allocate(
        "B", problem.batch, tB ? padded.n : padded.k, tB ? padded.k : padded.n);
    sunway::HostArray arrC = sunway::HostArray::allocate(
        "C", problem.batch, padded.m, padded.n);
    hostCopyBytes += packPadded(arrA, a, problem.batch, aRows, aCols);
    hostCopyBytes += packPadded(arrB, b, problem.batch, bRows, bCols);
    if (problem.beta != 0.0) {
      // beta == 0 means C is write-only (BLAS semantics): the kernel
      // zero-fills the C tile instead of scaling it, so the caller's
      // values — possibly NaN — must not be packed, let alone read.
      hostCopyBytes += packPadded(arrC, c, problem.batch, problem.m,
                                  problem.n);
    } else {
      SW_CHECK(static_cast<std::int64_t>(c.size()) ==
                   problem.batch * problem.m * problem.n,
               "input span size does not match the declared shape");
    }
    mesh.memory().add(std::move(arrA));
    mesh.memory().add(std::move(arrB));
    mesh.memory().add(std::move(arrC));
    params = rt::bindParams(kernel.program, padded.m, padded.n, padded.k,
                            problem.batch);
  }

  rt::ExecScalars scalars{problem.alpha, problem.beta};
  const rt::ExecutionPlan* plan =
      runConfig.engine == rt::ExecEngine::kPlan ? kernel.plan.get() : nullptr;
  rt::RunOutcome outcome = rt::runOnMesh(
      mesh, kernel.program, params, scalars,
      rt::gemmFlops(problem.m, problem.n, problem.k, problem.batch), plan);

  if (mode != PadMode::kEdge)
    hostCopyBytes += unpackPadded(c, mesh.memory().get("C"), problem.batch,
                                  problem.m, problem.n);
  outcome.hostCopyBytes = hostCopyBytes;
  return outcome;
}

rt::RunOutcome estimateGemm(const CompiledKernel& kernel,
                            const sunway::ArchConfig& arch,
                            const GemmProblem& problem) {
  trace::Span span("run.estimate_gemm",
                   {trace::arg("m", problem.m), trace::arg("n", problem.n),
                    trace::arg("k", problem.k),
                    trace::arg("batch", problem.batch)},
                   "run");
  // Edge-tile kernels bind the true extents (their transfers and compute
  // clamp to them); padded kernels require the padded shape.
  std::map<std::string, std::int64_t> params;
  if (kernel.options.edgeTiles) {
    params = rt::bindParams(kernel.program, problem.m, problem.n, problem.k,
                            problem.batch);
  } else {
    const PaddedShape padded =
        padShape(problem.m, problem.n, problem.k, kernel.options, arch);
    params = rt::bindParams(kernel.program, padded.m, padded.n, padded.k,
                            problem.batch);
  }
  return rt::estimateTiming(
      arch, kernel.program, params,
      rt::gemmFlops(problem.m, problem.n, problem.k, problem.batch),
      kernel.plan.get());
}

}  // namespace sw::core
