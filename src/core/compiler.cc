#include "core/compiler.h"

#include "codegen/athread_printer.h"
#include "runtime/plan.h"
#include "support/logging.h"
#include "support/trace.h"

namespace sw::core {

CompiledKernel SwGemmCompiler::compile(const CodegenOptions& options) const {
  trace::Span span("compile",
                   {trace::arg("tileM", options.tileM),
                    trace::arg("tileN", options.tileN),
                    trace::arg("tileK", options.tileK),
                    trace::arg("useAsm", options.useAsm ? "true" : "false"),
                    trace::arg("useRma", options.useRma ? "true" : "false"),
                    trace::arg("hideLatency",
                               options.hideLatency ? "true" : "false")});
  PipelineResult pipeline = runGemmPipeline(options, arch_);
  CompiledKernel kernel;
  kernel.options = options;
  kernel.program = std::move(pipeline.program);
  kernel.initialTreeDump = std::move(pipeline.initialTreeDump);
  kernel.tiledTreeDump = std::move(pipeline.tiledTreeDump);
  kernel.finalTreeDump = std::move(pipeline.finalTreeDump);
  {
    trace::Span printSpan("codegen.print");
    codegen::GeneratedSources sources =
        codegen::printAthreadSources(kernel.program);
    kernel.cpeSource = std::move(sources.cpe);
    kernel.mpeSource = std::move(sources.mpe);
    printSpan.addArg(trace::arg(
        "cpeBytes", static_cast<std::int64_t>(kernel.cpeSource.size())));
  }
  {
    trace::Span lowerSpan("lower.plan");
    kernel.plan = rt::lowerToPlan(kernel.program);
    lowerSpan.addArg(trace::arg(
        "instructions", static_cast<std::int64_t>(kernel.plan->code.size())));
  }
  SW_DEBUG("compiler", "event=compile_done kernel=", kernel.program.name,
           " spm_bytes=", kernel.program.spmBytesUsed());
  return kernel;
}

}  // namespace sw::core
