#include "core/compiler.h"

#include "codegen/athread_printer.h"

namespace sw::core {

CompiledKernel SwGemmCompiler::compile(const CodegenOptions& options) const {
  PipelineResult pipeline = runGemmPipeline(options, arch_);
  CompiledKernel kernel;
  kernel.options = options;
  kernel.program = std::move(pipeline.program);
  kernel.initialTreeDump = std::move(pipeline.initialTreeDump);
  kernel.tiledTreeDump = std::move(pipeline.tiledTreeDump);
  kernel.finalTreeDump = std::move(pipeline.finalTreeDump);
  codegen::GeneratedSources sources =
      codegen::printAthreadSources(kernel.program);
  kernel.cpeSource = std::move(sources.cpe);
  kernel.mpeSource = std::move(sources.mpe);
  return kernel;
}

}  // namespace sw::core
