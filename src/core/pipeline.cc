#include "core/pipeline.h"

#include <optional>
#include <utility>

#include "codegen/program_builder.h"
#include "kernel/microkernel.h"
#include "poly/dependence.h"
#include "schedule/transforms.h"
#include "support/error.h"
#include "support/format.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace sw::core {

namespace {

using poly::AffineExpr;
using sched::ComputeMarkInfo;
using sched::CopyKind;
using sched::CopyStmt;
using sched::ElementwiseMarkInfo;
using sched::Extent;
using sched::FilterElement;
using sched::NodePtr;
using sched::RangeRestriction;
using sched::SpmBufferRef;

AffineExpr d(const std::string& name) { return AffineExpr::dim(name); }
AffineExpr c(std::int64_t v) { return AffineExpr::constant(v); }

/// Everything the construction helpers need in one place.
struct Ctx {
  CodegenOptions opts;
  const sunway::ArchConfig* arch = nullptr;

  // Derived geometry.
  std::int64_t meshM = 0;  // tileM * meshRows (512)
  std::int64_t meshN = 0;  // tileN * meshCols (512)
  std::int64_t kStep = 0;  // K advanced per outer-k iteration (256 / 32)

  [[nodiscard]] bool batched() const { return opts.batched; }

  /// C-tile origin of this CPE within the mesh tile (Eq. (1) instantiated
  /// with Rid/Cid as §4 describes).
  [[nodiscard]] AffineExpr cRow() const {
    return d("mt") * meshM + d("Rid") * opts.tileM;
  }
  [[nodiscard]] AffineExpr cCol() const {
    return d("nt") * meshN + d("Cid") * opts.tileN;
  }
};

std::optional<AffineExpr> batchIndex(const Ctx& ctx) {
  if (!ctx.batched()) return std::nullopt;
  return d("b");
}

// ---------------------------------------------------------------------------
// Copy-statement factories (§4, §5)
// ---------------------------------------------------------------------------

CopyStmt makeGetC(const Ctx& ctx) {
  CopyStmt s;
  s.name = "getC";
  s.kind = CopyKind::kDmaGet;
  s.array = "C";
  s.buffer = SpmBufferRef{"C", std::nullopt, 0};
  s.batchIndex = batchIndex(ctx);
  s.rowStart = ctx.cRow();
  s.colStart = ctx.cCol();
  s.rowsParam = "M";
  s.colsParam = "N";
  s.tileRows = ctx.opts.tileM;
  s.tileCols = ctx.opts.tileN;
  s.clampToBounds = ctx.opts.edgeTiles;
  s.replySlot = "reply_C_get";
  return s;
}

CopyStmt makePutC(const Ctx& ctx) {
  CopyStmt s = makeGetC(ctx);
  s.name = "putC";
  s.kind = CopyKind::kDmaPut;
  s.replySlot = "reply_C_put";
  return s;
}

/// DMA of the A tile for outer-k iteration `koExpr` ("ko" or "ko + 1").
/// Without RMA every CPE in a row fetches the same slice (`kVar`*tileK),
/// the redundancy the baseline of Fig.13 pays; with RMA the eight CPEs of
/// a row stage distinct slices selected by Cid (§3.2).
CopyStmt makeGetA(const Ctx& ctx, const AffineExpr& koExpr,
                  std::optional<std::string> phaseVar,
                  std::int64_t phaseOffset) {
  CopyStmt s;
  s.name = phaseOffset == 0 ? "getA" : "getA_next";
  s.kind = CopyKind::kDmaGet;
  s.array = "A";
  s.batchIndex = batchIndex(ctx);
  const AffineExpr kStart =
      ctx.opts.useRma ? koExpr * ctx.kStep + d("Cid") * ctx.opts.tileK
                      : koExpr * ctx.kStep;
  if (ctx.opts.transposeA) {
    // A is stored K x M; stage the k-major tile into scratch, an on-CPE
    // transpose (in the mark chain) produces the i-major A_dma tile.
    s.buffer = SpmBufferRef{"T_A", std::nullopt, 0};
    s.rowStart = kStart;
    s.colStart = ctx.cRow();
    s.rowsParam = "K";
    s.colsParam = "M";
    s.tileRows = ctx.opts.tileK;
    s.tileCols = ctx.opts.tileM;
  } else {
    s.buffer = SpmBufferRef{"A_dma", std::move(phaseVar), phaseOffset};
    s.rowStart = ctx.cRow();
    s.colStart = kStart;
    s.rowsParam = "M";
    s.colsParam = "K";
    s.tileRows = ctx.opts.tileM;
    s.tileCols = ctx.opts.tileK;
  }
  s.clampToBounds = ctx.opts.edgeTiles;
  s.replySlot = "reply_A";
  return s;
}

CopyStmt makeGetB(const Ctx& ctx, const AffineExpr& koExpr,
                  std::optional<std::string> phaseVar,
                  std::int64_t phaseOffset) {
  CopyStmt s;
  s.name = phaseOffset == 0 ? "getB" : "getB_next";
  s.kind = CopyKind::kDmaGet;
  s.array = "B";
  s.batchIndex = batchIndex(ctx);
  const AffineExpr kStart =
      ctx.opts.useRma ? koExpr * ctx.kStep + d("Rid") * ctx.opts.tileK
                      : koExpr * ctx.kStep;
  if (ctx.opts.transposeB) {
    // B is stored N x K; stage j-major, transpose on CPE into B_dma.
    s.buffer = SpmBufferRef{"T_B", std::nullopt, 0};
    s.rowStart = ctx.cCol();
    s.colStart = kStart;
    s.rowsParam = "N";
    s.colsParam = "K";
    s.tileRows = ctx.opts.tileN;
    s.tileCols = ctx.opts.tileK;
  } else {
    s.buffer = SpmBufferRef{"B_dma", std::move(phaseVar), phaseOffset};
    s.rowStart = kStart;
    s.colStart = ctx.cCol();
    s.rowsParam = "K";
    s.colsParam = "N";
    s.tileRows = ctx.opts.tileK;
    s.tileCols = ctx.opts.tileN;
  }
  s.clampToBounds = ctx.opts.edgeTiles;
  s.replySlot = "reply_B";
  return s;
}

/// Row broadcast of the A tile for round `kiExpr`: the CPE whose Cid
/// matches the round owns the slice (it DMA-staged it) and shares it along
/// its mesh row (§5, Fig.8b).
CopyStmt makeRbcastA(const Ctx& ctx, const AffineExpr& kiExpr,
                     std::optional<std::string> dmaPhaseVar,
                     std::optional<std::string> rmaPhaseVar,
                     std::int64_t rmaPhaseOffset) {
  CopyStmt s;
  s.name = rmaPhaseOffset == 0 ? "rbcastA" : "rbcastA_next";
  s.kind = CopyKind::kRmaRowBcast;
  s.array = "A";
  s.buffer = SpmBufferRef{"A_rma", std::move(rmaPhaseVar), rmaPhaseOffset};
  s.rmaSource = SpmBufferRef{"A_dma", std::move(dmaPhaseVar), 0};
  s.rowStart = c(0);
  s.colStart = c(0);
  s.rowsParam = "M";
  s.colsParam = "K";
  s.tileRows = ctx.opts.tileM;
  s.tileCols = ctx.opts.tileK;
  s.senderGuard = sched::SenderGuard{"Cid", kiExpr};
  s.replySlot = "rma_reply_A";
  return s;
}

CopyStmt makeCbcastB(const Ctx& ctx, const AffineExpr& kiExpr,
                     std::optional<std::string> dmaPhaseVar,
                     std::optional<std::string> rmaPhaseVar,
                     std::int64_t rmaPhaseOffset) {
  CopyStmt s;
  s.name = rmaPhaseOffset == 0 ? "cbcastB" : "cbcastB_next";
  s.kind = CopyKind::kRmaColBcast;
  s.array = "B";
  s.buffer = SpmBufferRef{"B_rma", std::move(rmaPhaseVar), rmaPhaseOffset};
  s.rmaSource = SpmBufferRef{"B_dma", std::move(dmaPhaseVar), 0};
  s.rowStart = c(0);
  s.colStart = c(0);
  s.rowsParam = "K";
  s.colsParam = "N";
  s.tileRows = ctx.opts.tileK;
  s.tileCols = ctx.opts.tileN;
  s.senderGuard = sched::SenderGuard{"Rid", kiExpr};
  s.replySlot = "rma_reply_B";
  return s;
}

// ---------------------------------------------------------------------------
// Mark factories (§7.2, §7.3)
// ---------------------------------------------------------------------------

/// A chain of element-wise marks applied to the freshly DMA-ed input
/// tiles: optional on-CPE transposes (op(A)/op(B) variants), the fused
/// quantization prologue (if any), and the alpha fold.  Adopts `tail` at
/// the end of the chain (may be a leaf).
NodePtr makeATileMarks(const Ctx& ctx, std::optional<std::string> phaseVar,
                       std::int64_t phaseOffset, NodePtr tail) {
  NodePtr chain = std::move(tail);

  if (ctx.opts.transposeB) {
    auto transB = std::make_unique<sched::MarkNode>();
    transB->label = "elementwise:transposeB";
    ElementwiseMarkInfo info;
    info.op = ElementwiseMarkInfo::Op::kTranspose;
    info.target = SpmBufferRef{"B_dma", phaseVar, phaseOffset};
    info.source = SpmBufferRef{"T_B", std::nullopt, 0};
    info.rows = ctx.opts.tileN;  // source tile is j-major tileN x tileK
    info.cols = ctx.opts.tileK;
    transB->elementwise = info;
    transB->appendChild(std::move(chain));
    chain = std::move(transB);
  }

  auto alpha = std::make_unique<sched::MarkNode>();
  alpha->label = "elementwise:alphaA";
  alpha->elementwise =
      ElementwiseMarkInfo{ElementwiseMarkInfo::Op::kAlphaScaleA,
                          SpmBufferRef{"A_dma", phaseVar, phaseOffset},
                          ctx.opts.tileM, ctx.opts.tileK, std::nullopt, ""};
  alpha->appendChild(std::move(chain));
  chain = std::move(alpha);

  if (ctx.opts.fusion == FusionKind::kPrologueQuantize) {
    auto quant = std::make_unique<sched::MarkNode>();
    quant->label = "elementwise:quantizeA";
    quant->elementwise =
        ElementwiseMarkInfo{ElementwiseMarkInfo::Op::kQuantize,
                            SpmBufferRef{"A_dma", phaseVar, phaseOffset},
                            ctx.opts.tileM, ctx.opts.tileK, std::nullopt,
                            "S0"};
    quant->appendChild(std::move(chain));
    chain = std::move(quant);
  }

  if (ctx.opts.transposeA) {
    auto transA = std::make_unique<sched::MarkNode>();
    transA->label = "elementwise:transposeA";
    ElementwiseMarkInfo info;
    info.op = ElementwiseMarkInfo::Op::kTranspose;
    info.target = SpmBufferRef{"A_dma", phaseVar, phaseOffset};
    info.source = SpmBufferRef{"T_A", std::nullopt, 0};
    info.rows = ctx.opts.tileK;  // source tile is k-major tileK x tileM
    info.cols = ctx.opts.tileM;
    transA->elementwise = info;
    transA->appendChild(std::move(chain));
    chain = std::move(transA);
  }
  return chain;
}

NodePtr leaf() { return std::make_unique<sched::LeafNode>(); }

// ---------------------------------------------------------------------------
// Structural construction of the memory-optimisation levels (§4–§6)
// ---------------------------------------------------------------------------

/// Wrap the compute subtree (mark + point band) for the RMA inner level.
/// `markSubtree` is consumed.  Returns the node to install as the ko-level
/// compute child.
NodePtr buildInnerRmaLevel(const Ctx& ctx, NodePtr markSubtree,
                           sched::BandNode* kiBand, NodePtr kiSubtreeOwned) {
  const std::optional<std::string> koPhase =
      ctx.opts.hideLatency ? std::optional<std::string>("ko") : std::nullopt;
  const std::optional<std::string> kiPhase =
      ctx.opts.hideLatency ? std::optional<std::string>("ki") : std::nullopt;

  if (!ctx.opts.hideLatency) {
    // Fig.9: keep the ki band; EXTENSION + SEQUENCE inside it.
    auto ext = std::make_unique<sched::ExtensionNode>();
    ext->copies.push_back(makeRbcastA(ctx, d("ki"), koPhase, kiPhase, 0));
    ext->copies.push_back(makeCbcastB(ctx, d("ki"), koPhase, kiPhase, 0));
    auto seq = std::make_unique<sched::SequenceNode>();
    seq->appendChild(sched::makeFilter(
        {sched::syncElement(), sched::copyElement("rbcastA"),
         sched::copyElement("cbcastB"), sched::waitElement("rma_reply_A"),
         sched::waitElement("rma_reply_B")},
        std::nullopt, leaf()));
    seq->appendChild(sched::makeFilter({sched::statementElement("S1")},
                                       std::nullopt, std::move(markSubtree)));
    ext->appendChild(std::move(seq));
    // Install under the existing ki band.
    kiBand->children().clear();
    kiBand->appendChild(std::move(ext));
    return kiSubtreeOwned;
  }

  // Fig.11 inner level: the ki band is replaced by a peeled sequence.
  auto ext = std::make_unique<sched::ExtensionNode>();
  ext->copies.push_back(makeRbcastA(ctx, d("ki"), koPhase, kiPhase, 0));
  ext->copies.push_back(makeCbcastB(ctx, d("ki"), koPhase, kiPhase, 0));
  ext->copies.push_back(
      makeRbcastA(ctx, d("ki") + c(1), koPhase, kiPhase, 1));
  ext->copies.push_back(
      makeCbcastB(ctx, d("ki") + c(1), koPhase, kiPhase, 1));

  const std::int64_t strip = ctx.opts.stripFactor;
  auto seq = std::make_unique<sched::SequenceNode>();

  // Round 0: sync, broadcast, wait (the non-hidden first iteration, Fig.10c).
  seq->appendChild(sched::makeFilter(
      {sched::syncElement(), sched::copyElement("rbcastA"),
       sched::copyElement("cbcastB"), sched::waitElement("rma_reply_A"),
       sched::waitElement("rma_reply_B")},
      RangeRestriction{"ki", Extent::constant(0), Extent::constant(1)},
      leaf()));

  // Steady state: issue round ki+1, compute round ki, wait round ki+1.
  auto steadyBody = std::make_unique<sched::SequenceNode>();
  steadyBody->appendChild(sched::makeFilter(
      {sched::syncElement(), sched::copyElement("rbcastA_next"),
       sched::copyElement("cbcastB_next")},
      std::nullopt, leaf()));
  steadyBody->appendChild(sched::makeFilter(
      {sched::statementElement("S1")}, std::nullopt, markSubtree->clone()));
  steadyBody->appendChild(sched::makeFilter(
      {sched::waitElement("rma_reply_A"), sched::waitElement("rma_reply_B")},
      std::nullopt, leaf()));
  seq->appendChild(sched::makeFilter(
      {},
      RangeRestriction{"ki", Extent::constant(0), Extent::constant(strip - 1)},
      std::move(steadyBody)));

  // Last round: compute only.
  seq->appendChild(sched::makeFilter(
      {sched::statementElement("S1")},
      RangeRestriction{"ki", Extent::constant(strip - 1),
                       Extent::constant(strip)},
      std::move(markSubtree)));

  ext->appendChild(std::move(seq));
  (void)kiBand;
  (void)kiSubtreeOwned;
  return ext;
}

}  // namespace

PaddedShape padShape(std::int64_t m, std::int64_t n, std::int64_t k,
                     const CodegenOptions& options,
                     const sunway::ArchConfig& arch) {
  if (m <= 0 || n <= 0 || k <= 0)
    throwInput(strCat("matrix sizes must be positive, got ", m, "x", n, "x",
                      k));
  PaddedShape padded;
  padded.m = roundUp(m, options.tileM * arch.meshRows);
  padded.n = roundUp(n, options.tileN * arch.meshCols);
  const std::int64_t kUnit =
      options.useRma ? options.tileK * options.stripFactor : options.tileK;
  padded.k = roundUp(k, kUnit);
  return padded;
}

PipelineResult runGemmPipeline(const CodegenOptions& options,
                               const sunway::ArchConfig& arch) {
  if (options.hideLatency && !options.useRma)
    throwInput(
        "memory latency hiding requires the RMA decomposition "
        "(the paper's two-level pipeline, §6)");
  if (options.stripFactor != arch.meshRows ||
      arch.meshRows != arch.meshCols)
    SW_CHECK(options.stripFactor == arch.meshRows,
             "strip factor must equal the mesh width (§3.2)");

  Ctx ctx;
  ctx.opts = options;
  ctx.arch = &arch;
  ctx.meshM = options.tileM * arch.meshRows;
  ctx.meshN = options.tileN * arch.meshCols;
  ctx.kStep = options.useRma ? options.tileK * options.stripFactor
                             : options.tileK;

  // Per-stage trace spans: the optional is emplaced at each stage boundary
  // so the previous span closes exactly where the next begins.
  std::optional<trace::Span> stage;
  stage.emplace("pipeline.dependence",
                std::vector<trace::TraceArg>{
                    trace::arg("batched", options.batched ? "true" : "false"),
                    trace::arg("fusion",
                               static_cast<std::int64_t>(options.fusion))});

  // --- Statement domains and dependence analysis (§2.2) -------------------
  std::vector<std::string> dims;
  if (options.batched) dims.push_back("b");
  dims.insert(dims.end(), {"i", "j", "k"});

  poly::IntegerSet domain("S1", dims);
  if (options.batched) domain.addRange("b", d("BATCH"));
  domain.addRange("i", d("M"));
  domain.addRange("j", d("N"));
  domain.addRange("k", d("K"));

  poly::StatementInfo stmt{"S1", domain, {}};
  auto sub = [&](std::initializer_list<AffineExpr> subs, bool write,
                 const char* array) {
    std::vector<AffineExpr> outputs;
    if (options.batched) outputs.push_back(d("b"));
    outputs.insert(outputs.end(), subs);
    stmt.accesses.push_back(
        poly::AccessRelation{array, poly::AffineMap(dims, outputs), write});
  };
  sub({d("i"), d("j")}, true, "C");
  sub({d("i"), d("j")}, false, "C");
  if (options.transposeA)
    sub({d("k"), d("i")}, false, "A");
  else
    sub({d("i"), d("k")}, false, "A");
  if (options.transposeB)
    sub({d("j"), d("k")}, false, "B");
  else
    sub({d("k"), d("j")}, false, "B");

  poly::DependenceAnalysis analysis({stmt});
  const std::size_t base = options.batched ? 1 : 0;
  const bool iParallel = analysis.isLoopParallel("S1", base + 0);
  const bool jParallel = analysis.isLoopParallel("S1", base + 1);
  const bool tilable = analysis.isBandPermutable("S1", 0, dims.size());
  if (!iParallel || !jParallel || !tilable)
    throwInput(
        "the input loop nest does not expose the 2D parallelism and "
        "tilability GEMM decomposition requires");

  std::vector<bool> coincident;
  for (std::size_t l = 0; l < dims.size(); ++l)
    coincident.push_back(analysis.isLoopParallel("S1", l));

  std::vector<poly::IntegerSet> domains{domain};
  if (options.fusion == FusionKind::kPrologueQuantize) {
    poly::IntegerSet prologue("S0", options.batched
                                        ? std::vector<std::string>{"b", "i",
                                                                   "k"}
                                        : std::vector<std::string>{"i", "k"});
    if (options.batched) prologue.addRange("b", d("BATCH"));
    prologue.addRange("i", d("M"));
    prologue.addRange("k", d("K"));
    domains.push_back(prologue);
  } else if (options.fusion == FusionKind::kEpilogueRelu) {
    poly::IntegerSet epilogue("S2", options.batched
                                        ? std::vector<std::string>{"b", "i",
                                                                   "j"}
                                        : std::vector<std::string>{"i", "j"});
    if (options.batched) epilogue.addRange("b", d("BATCH"));
    epilogue.addRange("i", d("M"));
    epilogue.addRange("j", d("N"));
    domains.push_back(epilogue);
  }

  stage.emplace("pipeline.tile",
                std::vector<trace::TraceArg>{
                    trace::arg("tileM", options.tileM),
                    trace::arg("tileN", options.tileN),
                    trace::arg("tileK", options.tileK),
                    trace::arg("stripFactor", options.stripFactor)});

  // --- Initial tree (Fig.2b) + batch isolation (Fig.3) --------------------
  sched::ScheduleTree tree =
      sched::buildInitialTree(domains, coincident, tilable);
  PipelineResult result;
  result.initialTreeDump = tree.toString();

  auto* gemmBand = &sched::nodeCast<sched::BandNode>(tree.root().onlyChild());
  if (options.batched)
    gemmBand = &sched::splitBand(tree, *gemmBand, 1);  // isolate b (Fig.3)

  // --- Compute decomposition (§3.1): tile with the micro-kernel shape -----
  sched::tileBand(tree, *gemmBand,
                  {options.tileM, options.tileN, options.tileK},
                  {"it", "jt", "kt"}, {"ii", "ji", "kk"});
  sched::BandNode& ktBand = sched::splitBand(tree, *gemmBand, 2);

  // Mesh decomposition + hardware binding (Fig.4b): it = 8*mt + Rid,
  // jt = 8*nt + Cid.
  sched::BandNode& ridBand =
      sched::stripMineMember(tree, *gemmBand, 0, arch.meshRows, "mt", "rid");
  sched::BandNode& innerAfterMt =
      sched::nodeCast<sched::BandNode>(ridBand.onlyChild());
  sched::BandNode& ntBand =
      sched::stripMineMember(tree, innerAfterMt, 1, arch.meshCols, "nt",
                             "cid");
  sched::BandNode& ridCidBand =
      sched::nodeCast<sched::BandNode>(ntBand.onlyChild());
  sched::bindMember(ridCidBand, 0, "Rid");
  sched::bindMember(ridCidBand, 1, "Cid");

  // --- Strip-mine the reduced dimension (§3.2, Fig.6) ---------------------
  sched::BandNode* koBand = &ktBand;
  sched::BandNode* kiBand = nullptr;
  if (options.useRma) {
    sched::stripMineMember(tree, ktBand, 0, options.stripFactor, "ko", "ki");
    koBand = &ktBand;  // now heads "ko"
    kiBand = &sched::nodeCast<sched::BandNode>(ktBand.onlyChild());
  }
  result.tiledTreeDump = tree.toString();

  stage.emplace("pipeline.compute_mark",
                std::vector<trace::TraceArg>{
                    trace::arg("useAsm", options.useAsm ? "true" : "false")});

  // --- Compute mark (§7.2): replace the point band's execution ------------
  sched::BandNode& pointBand = sched::findBandByVar(tree, "ii");
  const bool rmaBuffers = options.useRma;
  // The vendor ships the assembly routine for exactly one shape, 64x64x32
  // (§7.2: other shapes "were also designed before the one used in this
  // work made publicly accessible").  Any other tile choice falls back to
  // compiler-scheduled loops — one half of why the analytical tile-size
  // model simply adopts the micro-kernel shape (§3.1).
  const bool asmShapeAvailable =
      options.tileM == 64 && options.tileN == 64 && options.tileK == 32;
  ComputeMarkInfo computeInfo;
  computeInfo.kind = options.useAsm && asmShapeAvailable
                         ? ComputeMarkInfo::Kind::kAsm
                         : ComputeMarkInfo::Kind::kNaive;
  computeInfo.m = options.tileM;
  computeInfo.n = options.tileN;
  computeInfo.k = options.tileK;
  // The micro-kernel is generated per (MR, NR) register block nowadays;
  // an off-family request is a usage error, not a silent fallback.
  if (!kernel::isFeasibleMicroKernelVariant(options.microMr, options.microNr))
    throw InputError(strCat(
        "micro-kernel register block ", options.microMr, "x", options.microNr,
        " is outside the generated family; see kernel::microKernelFamily()"));
  computeInfo.mr = options.microMr;
  computeInfo.nr = options.microNr;
  computeInfo.c = SpmBufferRef{"C", std::nullopt, 0};
  const std::optional<std::string> kiPhase =
      options.hideLatency ? std::optional<std::string>("ki") : std::nullopt;
  computeInfo.a = rmaBuffers ? SpmBufferRef{"A_rma", kiPhase, 0}
                             : SpmBufferRef{"A_dma", std::nullopt, 0};
  computeInfo.b = rmaBuffers ? SpmBufferRef{"B_rma", kiPhase, 0}
                             : SpmBufferRef{"B_dma", std::nullopt, 0};
  if (options.edgeTiles) {
    // Edge tiles: clamp the kernel shape to the valid extent of this
    // CPE's tile.  The k origin names the slice the operand buffers hold
    // at this compute point: with RMA, round ki carries the slice staged
    // by the CPE whose Cid/Rid equals ki (kStart = ko*kStep + ki*tileK);
    // without RMA every CPE fetched kt*tileK itself.
    computeInfo.clampM = sched::ComputeClamp{ctx.cRow(), "M"};
    computeInfo.clampN = sched::ComputeClamp{ctx.cCol(), "N"};
    const AffineExpr kOrigin =
        options.useRma ? d("ko") * ctx.kStep + d("ki") * options.tileK
                       : d("kt") * options.tileK;
    computeInfo.clampK = sched::ComputeClamp{kOrigin, "K"};
  }

  auto mark = std::make_unique<sched::MarkNode>();
  mark->label = computeInfo.kind == ComputeMarkInfo::Kind::kAsm
                    ? "microkernel"
                    : "naive_compute";
  mark->compute = computeInfo;
  // The mark adopts the point band (it owns the subtree it bypasses).
  sched::BandNode& pointParent = rmaBuffers
                                     ? *kiBand
                                     : sched::findBandByVar(tree, "kt");
  // pointParent's only child is the point band; wrap it.
  {
    NodePtr pointSubtree = std::move(pointParent.children()[0]);
    pointParent.children().clear();
    mark->appendChild(std::move(pointSubtree));
  }
  NodePtr markSubtree = std::move(mark);
  (void)pointBand;

  stage.emplace("pipeline.dma_insertion",
                std::vector<trace::TraceArg>{
                    trace::arg("useRma", options.useRma ? "true" : "false"),
                    trace::arg("kStep", ctx.kStep)});

  // --- Assemble the k-level memory structure (§4–§6) ----------------------
  NodePtr koLevel;
  if (!options.useRma) {
    // v1/v2: DMA every (tileK)-deep slice inside the kt loop; redundant
    // across the mesh row/column.
    auto ext = std::make_unique<sched::ExtensionNode>();
    ext->copies.push_back(makeGetA(ctx, d("kt"), std::nullopt, 0));
    ext->copies.push_back(makeGetB(ctx, d("kt"), std::nullopt, 0));
    auto seq = std::make_unique<sched::SequenceNode>();
    seq->appendChild(sched::makeFilter(
        {sched::copyElement("getA"), sched::copyElement("getB"),
         sched::waitElement("reply_A"), sched::waitElement("reply_B")},
        std::nullopt, makeATileMarks(ctx, std::nullopt, 0, leaf())));
    seq->appendChild(sched::makeFilter({sched::statementElement("S1")},
                                       std::nullopt, std::move(markSubtree)));
    ext->appendChild(std::move(seq));
    koBand->children().clear();
    koBand->appendChild(std::move(ext));
    // The kt band stays in place under the C-level filter.
    koLevel = nullptr;
  } else {
    // Detach the ki subtree from the ko band so we can restructure.
    NodePtr kiSubtree = std::move(koBand->children()[0]);
    koBand->children().clear();

    NodePtr innerLevel;
    {
      trace::Span rmaSpan(
          "pipeline.rma_broadcast",
          {trace::arg("stripFactor", options.stripFactor),
           trace::arg("innerPeeled",
                      options.hideLatency ? "true" : "false")});
      innerLevel = buildInnerRmaLevel(ctx, std::move(markSubtree), kiBand,
                                      std::move(kiSubtree));
    }

    const std::optional<std::string> koPhase =
        options.hideLatency ? std::optional<std::string>("ko") : std::nullopt;

    if (!options.hideLatency) {
      // Fig.9: EXTENSION + SEQUENCE inside the ko band.  `innerLevel` is
      // the (re-populated) ki band subtree.
      auto ext = std::make_unique<sched::ExtensionNode>();
      ext->copies.push_back(makeGetA(ctx, d("ko"), koPhase, 0));
      ext->copies.push_back(makeGetB(ctx, d("ko"), koPhase, 0));
      auto seq = std::make_unique<sched::SequenceNode>();
      seq->appendChild(sched::makeFilter(
          {sched::copyElement("getA"), sched::copyElement("getB"),
           sched::waitElement("reply_A"), sched::waitElement("reply_B")},
          std::nullopt, makeATileMarks(ctx, koPhase, 0, leaf())));
      seq->appendChild(sched::makeFilter({sched::statementElement("S1")},
                                         std::nullopt,
                                         std::move(innerLevel)));
      ext->appendChild(std::move(seq));
      koBand->appendChild(std::move(ext));
      koLevel = nullptr;  // ko band remains in the tree
    } else {
      // Fig.11 outer level: the ko band is replaced by a peeled sequence.
      trace::Span hideSpan("pipeline.latency_hiding",
                           {trace::arg("dmaPhases", std::int64_t{2}),
                            trace::arg("kStep", ctx.kStep)});
      auto ext = std::make_unique<sched::ExtensionNode>();
      ext->copies.push_back(makeGetA(ctx, d("ko"), koPhase, 0));
      ext->copies.push_back(makeGetB(ctx, d("ko"), koPhase, 0));
      ext->copies.push_back(makeGetA(ctx, d("ko") + c(1), koPhase, 1));
      ext->copies.push_back(makeGetB(ctx, d("ko") + c(1), koPhase, 1));

      const Extent koExtent = Extent::paramDiv("K", ctx.kStep);
      auto seq = std::make_unique<sched::SequenceNode>();

      // Prologue: stage iteration 0 and wait for it.
      seq->appendChild(sched::makeFilter(
          {sched::copyElement("getA"), sched::copyElement("getB"),
           sched::waitElement("reply_A"), sched::waitElement("reply_B")},
          RangeRestriction{"ko", Extent::constant(0), Extent::constant(1)},
          makeATileMarks(ctx, koPhase, 0, leaf())));

      // Steady state: prefetch ko+1, compute ko, wait ko+1.
      auto steadyBody = std::make_unique<sched::SequenceNode>();
      steadyBody->appendChild(sched::makeFilter(
          {sched::copyElement("getA_next"), sched::copyElement("getB_next")},
          std::nullopt, leaf()));
      steadyBody->appendChild(sched::makeFilter(
          {sched::statementElement("S1")}, std::nullopt, innerLevel->clone()));
      steadyBody->appendChild(sched::makeFilter(
          {sched::waitElement("reply_A"), sched::waitElement("reply_B")},
          std::nullopt, makeATileMarks(ctx, koPhase, 1, leaf())));
      seq->appendChild(sched::makeFilter(
          {}, RangeRestriction{"ko", Extent::constant(0), koExtent.plus(-1)},
          std::move(steadyBody)));

      // Epilogue: compute the last iteration.
      seq->appendChild(sched::makeFilter(
          {sched::statementElement("S1")},
          RangeRestriction{"ko", koExtent.plus(-1), koExtent},
          std::move(innerLevel)));

      ext->appendChild(std::move(seq));
      koLevel = std::move(ext);
    }
  }

  // --- C-level structure (getC / beta / compute / epilogue / putC) --------
  {
    NodePtr computeChild;
    if (koLevel != nullptr) {
      // The peeled sequence replaces the (now empty) ko band entirely.
      computeChild = std::move(koLevel);
      ridCidBand.children().clear();
    } else {
      // The k-band subtree stays rooted where it is: detach it from the
      // ridCid band so we can splice the C-level sequence in between.
      computeChild = std::move(ridCidBand.children()[0]);
      ridCidBand.children().clear();
    }

    auto ext = std::make_unique<sched::ExtensionNode>();
    ext->copies.push_back(makeGetC(ctx));
    ext->copies.push_back(makePutC(ctx));

    auto betaMark = std::make_unique<sched::MarkNode>();
    betaMark->label = "elementwise:betaC";
    betaMark->elementwise =
        ElementwiseMarkInfo{ElementwiseMarkInfo::Op::kBetaScaleC,
                            SpmBufferRef{"C", std::nullopt, 0},
                            options.tileM, options.tileN, std::nullopt, ""};
    betaMark->appendChild(leaf());

    auto seq = std::make_unique<sched::SequenceNode>();
    seq->appendChild(sched::makeFilter(
        {sched::copyElement("getC"), sched::waitElement("reply_C_get")},
        std::nullopt, std::move(betaMark)));
    seq->appendChild(sched::makeFilter({sched::statementElement("S1")},
                                       std::nullopt,
                                       std::move(computeChild)));
    if (options.fusion == FusionKind::kEpilogueRelu) {
      auto relu = std::make_unique<sched::MarkNode>();
      relu->label = "elementwise:reluC";
      relu->elementwise =
          ElementwiseMarkInfo{ElementwiseMarkInfo::Op::kRelu,
                              SpmBufferRef{"C", std::nullopt, 0},
                              options.tileM, options.tileN, std::nullopt,
                              "S2"};
      relu->appendChild(leaf());
      seq->appendChild(sched::makeFilter({sched::statementElement("S2")},
                                         std::nullopt, std::move(relu)));
    }
    seq->appendChild(sched::makeFilter(
        {sched::copyElement("putC"), sched::waitElement("reply_C_put")},
        std::nullopt, leaf()));
    ext->appendChild(std::move(seq));
    ridCidBand.appendChild(std::move(ext));
  }

  tree.validate();
  result.finalTreeDump = tree.toString();

  stage.emplace("pipeline.spm_layout");

  // --- Lower to the executable program (§7.1) -----------------------------
  codegen::KernelProgram program;
  program.name = strCat("swgemm", options.batched ? "_batched" : "",
                        options.fusion == FusionKind::kPrologueQuantize
                            ? "_fprologue"
                            : options.fusion == FusionKind::kEpilogueRelu
                                  ? "_fepilogue"
                                  : "");
  program.params = {"M", "N", "K"};
  if (options.batched) program.params.push_back("BATCH");
  const std::string batchParam = options.batched ? "BATCH" : "";
  program.arrays = {
      options.transposeA ? codegen::ArrayInfo{"A", batchParam, "K", "M"}
                         : codegen::ArrayInfo{"A", batchParam, "M", "K"},
      options.transposeB ? codegen::ArrayInfo{"B", batchParam, "N", "K"}
                         : codegen::ArrayInfo{"B", batchParam, "K", "N"},
      codegen::ArrayInfo{"C", batchParam, "M", "N"}};

  const int dmaPhases = options.hideLatency ? 2 : 1;
  program.buffers.push_back(
      codegen::SpmBufferDecl{"C", options.tileM, options.tileN, 1, 0});
  program.buffers.push_back(codegen::SpmBufferDecl{
      "A_dma", options.tileM, options.tileK, dmaPhases, 0});
  program.buffers.push_back(codegen::SpmBufferDecl{
      "B_dma", options.tileK, options.tileN, dmaPhases, 0});
  if (options.useRma) {
    program.buffers.push_back(codegen::SpmBufferDecl{
        "A_rma", options.tileM, options.tileK, dmaPhases, 0});
    program.buffers.push_back(codegen::SpmBufferDecl{
        "B_rma", options.tileK, options.tileN, dmaPhases, 0});
  }
  if (options.transposeA)
    program.buffers.push_back(codegen::SpmBufferDecl{
        "T_A", options.tileK, options.tileM, 1, 0});
  if (options.transposeB)
    program.buffers.push_back(codegen::SpmBufferDecl{
        "T_B", options.tileN, options.tileK, 1, 0});
  codegen::planSpmLayout(program, arch.spmBytes);
  stage->addArg(trace::arg("buffers",
                           static_cast<std::int64_t>(program.buffers.size())));
  stage->addArg(trace::arg("spmBytes", program.spmBytesUsed()));

  stage.emplace("pipeline.codegen");
  program.body = codegen::buildProgramBody(tree);
  result.program = std::move(program);
  const auto staticOps =
      static_cast<std::int64_t>(codegen::countOps(result.program.body));
  stage->addArg(trace::arg("staticOps", staticOps));
  stage.reset();

  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
  registry.set("compile.static_ops", static_cast<double>(staticOps));
  registry.set("compile.spm_bytes",
               static_cast<double>(result.program.spmBytesUsed()));
  registry.set("compile.spm_buffers",
               static_cast<double>(result.program.buffers.size()));
  registry.add("compile.pipeline_runs", 1.0);
  SW_INFO("pipeline", "event=pipeline_done static_ops=", staticOps,
          " spm_bytes=", result.program.spmBytesUsed(),
          " buffers=", result.program.buffers.size());
  return result;
}

}  // namespace sw::core
