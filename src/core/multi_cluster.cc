#include "core/multi_cluster.h"

#include <algorithm>
#include <vector>

#include "support/error.h"
#include "support/math_util.h"

namespace sw::core {

namespace {

struct RowBlock {
  std::int64_t begin = 0;
  std::int64_t rows = 0;
};

std::vector<RowBlock> splitRows(std::int64_t m, int clusters) {
  std::vector<RowBlock> blocks;
  const std::int64_t chunk = ceilDiv(m, clusters);
  for (std::int64_t begin = 0; begin < m; begin += chunk)
    blocks.push_back(RowBlock{begin, std::min(chunk, m - begin)});
  return blocks;
}

void checkSupported(const CompiledKernel& kernel) {
  SW_CHECK(!kernel.options.batched &&
               !kernel.options.transposeA && !kernel.options.transposeB,
           "multi-cluster decomposition currently covers the plain GEMM "
           "kernel (the paper defers the general case to MPI codegen)");
}

double communicationSeconds(const MultiClusterConfig& config,
                            std::int64_t blockM, std::int64_t n,
                            std::int64_t k) {
  // Per cluster: receive its A row panel and the full B, send back its C
  // block; links to distinct clusters run concurrently.
  const double bytes =
      static_cast<double>(blockM * k + k * n + blockM * n) * sizeof(double);
  return 3.0 * config.nocLatencySeconds +
         bytes / config.nocBandwidthBytesPerSec;
}

}  // namespace

MultiClusterOutcome estimateMultiCluster(const CompiledKernel& kernel,
                                         const sunway::ArchConfig& arch,
                                         const MultiClusterConfig& config,
                                         const GemmProblem& problem) {
  checkSupported(kernel);
  SW_CHECK(config.clusters >= 1, "need at least one cluster");
  const std::vector<RowBlock> blocks =
      splitRows(problem.m, config.clusters);

  MultiClusterOutcome outcome;
  outcome.clustersUsed = static_cast<int>(blocks.size());
  for (const RowBlock& block : blocks) {
    GemmProblem sub = problem;
    sub.m = block.rows;
    const double compute = estimateGemm(kernel, arch, sub).seconds;
    const double comm =
        communicationSeconds(config, block.rows, problem.n, problem.k);
    // Clusters run concurrently; the critical path is the slowest one.
    outcome.computeSeconds = std::max(outcome.computeSeconds, compute);
    outcome.communicationSeconds =
        std::max(outcome.communicationSeconds, comm);
  }
  outcome.seconds = outcome.computeSeconds + outcome.communicationSeconds;
  outcome.gflops =
      rt::gemmFlops(problem.m, problem.n, problem.k) / outcome.seconds / 1e9;
  return outcome;
}

MultiClusterOutcome runMultiClusterFunctional(
    const CompiledKernel& kernel, const sunway::ArchConfig& arch,
    const MultiClusterConfig& config, const GemmProblem& problem,
    std::span<const double> a, std::span<const double> b,
    std::span<double> c) {
  checkSupported(kernel);
  SW_CHECK(problem.batch == 1, "multi-cluster path is unbatched");
  const std::vector<RowBlock> blocks =
      splitRows(problem.m, config.clusters);

  MultiClusterOutcome outcome;
  outcome.clustersUsed = static_cast<int>(blocks.size());
  for (const RowBlock& block : blocks) {
    GemmProblem sub = problem;
    sub.m = block.rows;
    std::span<const double> aBlock =
        a.subspan(static_cast<std::size_t>(block.begin * problem.k),
                  static_cast<std::size_t>(block.rows * problem.k));
    std::span<double> cBlock =
        c.subspan(static_cast<std::size_t>(block.begin * problem.n),
                  static_cast<std::size_t>(block.rows * problem.n));
    rt::RunOutcome run =
        runGemmFunctional(kernel, arch, sub, aBlock, b, cBlock);
    outcome.computeSeconds = std::max(outcome.computeSeconds, run.seconds);
    outcome.communicationSeconds = std::max(
        outcome.communicationSeconds,
        communicationSeconds(config, block.rows, problem.n, problem.k));
  }
  outcome.seconds = outcome.computeSeconds + outcome.communicationSeconds;
  outcome.gflops =
      rt::gemmFlops(problem.m, problem.n, problem.k) / outcome.seconds / 1e9;
  return outcome;
}

}  // namespace sw::core
