#include "core/tuner.h"

#include <chrono>

#include "support/error.h"
#include "support/format.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace sw::core {

std::string TuneCandidate::label() const {
  return strCat(tileM, "x", tileN, "x", tileK);
}

TuneResult tuneTileSizes(const CodegenOptions& base,
                         const sunway::ArchConfig& arch,
                         const GemmProblem& shape) {
  const auto start = std::chrono::steady_clock::now();
  trace::Span searchSpan("tune.search",
                         {trace::arg("m", shape.m), trace::arg("n", shape.n),
                          trace::arg("k", shape.k)});
  SwGemmCompiler compiler(arch);
  TuneResult result;

  double bestGflops = -1.0;
  for (std::int64_t tm : {16, 32, 64, 128}) {
    for (std::int64_t tk : {16, 32, 64}) {
      TuneCandidate candidate;
      candidate.tileM = tm;
      candidate.tileN = tm;
      candidate.tileK = tk;
      candidate.hasAsmKernel = tm == 64 && tk == 32;

      CodegenOptions options = base;
      options.tileM = tm;
      options.tileN = tm;
      options.tileK = tk;
      trace::Span candidateSpan("tune.candidate",
                                {trace::arg("tileM", tm),
                                 trace::arg("tileN", tm),
                                 trace::arg("tileK", tk)});
      try {
        CompiledKernel kernel = compiler.compile(options);
        candidate.feasible = true;
        candidate.gflops =
            estimateGemm(kernel, arch, shape).gflops;
        candidate.note = candidate.hasAsmKernel
                             ? "vendor micro-kernel"
                             : "compiler-scheduled inner loops";
      } catch (const InputError& e) {
        candidate.feasible = false;
        candidate.note = e.what();
      }
      candidateSpan.addArg(
          trace::arg("feasible", candidate.feasible ? "true" : "false"));
      candidateSpan.addArg(trace::arg("gflops", candidate.gflops));
      SW_DEBUG("tuner", "event=candidate tile=", candidate.label(),
               " feasible=", candidate.feasible,
               " gflops=", candidate.gflops);
      if (candidate.feasible && candidate.gflops > bestGflops) {
        bestGflops = candidate.gflops;
        result.bestIndex = result.candidates.size();
      }
      result.candidates.push_back(std::move(candidate));
    }
  }
  result.anyFeasible = bestGflops > 0.0;
  if (!result.anyFeasible)
    throw InputError(strCat(
        "tuner: none of the ", result.candidates.size(),
        " candidate tile shapes fits the SPM budget of ", arch.spmBytes,
        " bytes (GEMM ", shape.m, "x", shape.n, "x", shape.k,
        "); raise ArchConfig::spmBytes or shrink the candidate grid"));

  result.searchSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::global();
  registry.set("tune.candidates",
               static_cast<double>(result.candidates.size()));
  registry.set("tune.best_gflops", bestGflops);
  registry.set("tune.search_seconds", result.searchSeconds);
  SW_INFO("tuner", "event=search_done best=", result.best().label(),
          " best_gflops=", bestGflops,
          " search_seconds=", result.searchSeconds);
  return result;
}

}  // namespace sw::core
