#include "core/tuner.h"

#include <chrono>

#include "support/error.h"
#include "support/format.h"

namespace sw::core {

std::string TuneCandidate::label() const {
  return strCat(tileM, "x", tileN, "x", tileK);
}

TuneResult tuneTileSizes(const CodegenOptions& base,
                         const sunway::ArchConfig& arch,
                         const GemmProblem& shape) {
  const auto start = std::chrono::steady_clock::now();
  SwGemmCompiler compiler(arch);
  TuneResult result;

  double bestGflops = -1.0;
  for (std::int64_t tm : {16, 32, 64, 128}) {
    for (std::int64_t tk : {16, 32, 64}) {
      TuneCandidate candidate;
      candidate.tileM = tm;
      candidate.tileN = tm;
      candidate.tileK = tk;
      candidate.hasAsmKernel = tm == 64 && tk == 32;

      CodegenOptions options = base;
      options.tileM = tm;
      options.tileN = tm;
      options.tileK = tk;
      try {
        CompiledKernel kernel = compiler.compile(options);
        candidate.feasible = true;
        candidate.gflops =
            estimateGemm(kernel, arch, shape).gflops;
        candidate.note = candidate.hasAsmKernel
                             ? "vendor micro-kernel"
                             : "compiler-scheduled inner loops";
      } catch (const InputError& e) {
        candidate.feasible = false;
        candidate.note = e.what();
      }
      if (candidate.feasible && candidate.gflops > bestGflops) {
        bestGflops = candidate.gflops;
        result.bestIndex = result.candidates.size();
      }
      result.candidates.push_back(std::move(candidate));
    }
  }
  SW_CHECK(bestGflops > 0.0, "no feasible tile shape found");

  result.searchSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace sw::core
