// Multi-core-group sharded GEMM execution (§2.1: SW26010Pro packs six
// core groups per processor, linked by the network on chip).
//
// This layer decomposes one GEMM across core groups with a 2D block grid
// over C (rows × columns, not just row panels) plus an optional K split,
// and executes the group sub-problems *concurrently*: one worker thread
// per group, each driving its own MeshSimulator through the regular
// runGemmFunctional path (plan, tree-walk and native engines all reuse).
//
// Bit-identity contract (the whole point): a sharded run produces results
// byte-for-byte equal to the single-group run of the same kernel.
//   * M/N splits are free — each C element is still accumulated by exactly
//     one micro-kernel chain in the same k order.
//   * K splits are executed as a *chained reduction*: the chunks of one C
//     block run sequentially (possibly on different groups), chunk 0 with
//     the caller's beta and every later chunk with beta == 1 on the
//     previous partial.  Chunk boundaries are aligned to the kernel's
//     K padding unit (stripFactor·tileK with RMA, tileK without), so the
//     per-element operation sequence matches the single run exactly.
//     A naive partial-sum merge would NOT be bit-identical (one merged add
//     versus per-tile adds), which is why no tree reduction exists here.
//
// Contention model: while `g` groups stream concurrently, each sees
// ArchConfig::groupDdrBandwidth(g) instead of its full channel (the node
// DDR pool is shared), and block hand-off across groups is charged to the
// NoC.  Timing-only — functional results never depend on bandwidth.
//
// Fault domains: each group's mesh is its own fault/watchdog domain.  A
// group whose mesh aborts (watchdog or protocol violation) is logged at
// node level with the stuck group's per-CPE state dump, and its shard is
// re-executed fault-free on the same group; other groups' C blocks are
// never touched by the failure.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"

namespace sw::core {

struct ShardedConfig {
  /// Concurrent core groups to shard across (1..arch.coreGroups).
  int groups = 1;
  /// K chunks per C block (chained reduction); 1 disables the K split.
  std::int64_t kSplit = 1;
  /// Engine / pad-mode / watchdog applied to every group's mesh runs.
  /// `run.faultPlan` is ignored; use `groupFaultPlan` + `faultGroup` to
  /// target one group's fault domain.
  FunctionalRunConfig run;
  /// Fault plan installed on `faultGroup`'s mesh only (per-group fault
  /// domain); nullptr disables injection everywhere.
  std::shared_ptr<const sunway::FaultPlan> groupFaultPlan;
  int faultGroup = -1;
};

/// One unit of work: C block (`block`) × K chunk (`chunk`), assigned to
/// worker `group`.  Chunks of the same block form a sequential chain.
struct Shard {
  int block = 0;
  std::int64_t chunk = 0;
  int group = 0;
  std::int64_t m0 = 0, bm = 0;  // C row range  [m0, m0+bm)
  std::int64_t n0 = 0, bn = 0;  // C col range  [n0, n0+bn)
  std::int64_t k0 = 0, bk = 0;  // K  range     [k0, k0+bk)
};

struct ShardPlan {
  int rowBlocks = 1;
  int colBlocks = 1;
  std::int64_t kChunks = 1;
  /// K rounding unit the chunk boundaries are aligned to.
  std::int64_t kUnit = 1;
  std::vector<Shard> shards;

  [[nodiscard]] int blocks() const { return rowBlocks * colBlocks; }
  /// Groups that can actually stream at once: chained chunks serialise,
  /// so concurrency is bounded by the number of C blocks.
  [[nodiscard]] int concurrency(int groups) const {
    const int cap = blocks() < groups ? blocks() : groups;
    return cap < 1 ? 1 : cap;
  }
};

struct ShardedOutcome {
  double seconds = 0.0;
  double gflops = 0.0;
  int groupsUsed = 0;        // worker threads that received shards
  int concurrentGroups = 0;  // streaming concurrency used for derating
  int rowBlocks = 1;
  int colBlocks = 1;
  std::int64_t kChunks = 1;
  /// Critical-path split: slowest group's mesh time and its NoC hand-off
  /// time (zero when groups == 1 — no NoC crossing happens).
  double computeSeconds = 0.0;
  double communicationSeconds = 0.0;
  /// Effective per-group DDR bandwidth fraction under contention.
  double contentionDerate = 1.0;
  sunway::CpeCounters counters;  // summed over all shards
  perf::PerfReport report;       // multi-group roofline
  std::int64_t hostCopyBytes = 0;
  int shardsRun = 0;

  /// Watchdog/protocol aborts recovered by a fault-free re-run.
  struct GroupFailure {
    int group = -1;
    std::string shard;  // "block 2 chunk 0 [m 64..128 n 0..96 k 0..64]"
    std::string error;  // carries the per-CPE state dump
  };
  std::vector<GroupFailure> failures;
};

/// Plan the shard grid for `problem` on `groups` groups: a near-square
/// factorisation of the group count over C (clamped to the matrix
/// extents) and `kSplit` chunks aligned to the kernel's K padding unit.
/// Exposed for tests; both execution paths plan identically.
[[nodiscard]] ShardPlan planShards(const CompiledKernel& kernel,
                                   const sunway::ArchConfig& arch,
                                   const GemmProblem& problem, int groups,
                                   std::int64_t kSplit);

/// Execute the sharded GEMM functionally: thread-per-group workers over
/// per-group mesh simulators, bit-identical to the single-group run.
/// Array layouts match runGemmFunctional (transposed operands use their
/// transposed layouts; beta == 0 never reads C).
ShardedOutcome runShardedFunctional(const CompiledKernel& kernel,
                                    const sunway::ArchConfig& arch,
                                    const ShardedConfig& config,
                                    const GemmProblem& problem,
                                    std::span<const double> a,
                                    std::span<const double> b,
                                    std::span<double> c);

/// Timing estimate of the sharded execution with the same plan, per-group
/// contention derating and NoC model as the functional path.  With
/// groups == 1 and kSplit == 1 this is *exactly* estimateGemm — no NoC
/// charge, no derating (a one-group shard costs the single-group
/// estimate).
ShardedOutcome estimateSharded(const CompiledKernel& kernel,
                               const sunway::ArchConfig& arch,
                               const ShardedConfig& config,
                               const GemmProblem& problem);

}  // namespace sw::core
