// Tile-size auto-tuner.
//
// The paper argues (§3.1) that analytical modelling — adopting the vendor
// micro-kernel's 64x64x32 shape — suffices for GEMM, avoiding the "tedious
// tuning overhead" of ATLAS-style search [2, 24].  This module provides
// the search anyway: it enumerates candidate tile shapes, compiles each
// through the full pipeline, scores them on the timing model, and reports
// the ranking.  Its purpose is to *validate* the analytical choice (tests
// assert the tuner lands on 64x64x32) and to quantify the engineering-cost
// gap between the two approaches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/gemm_runner.h"
#include "support/error.h"

namespace sw::core {

struct TuneCandidate {
  std::int64_t tileM = 0, tileN = 0, tileK = 0;
  bool feasible = false;    // fits the SPM with double buffering
  bool hasAsmKernel = false;  // matches the vendor micro-kernel contract
  double gflops = 0.0;      // 0 when infeasible
  std::string note;

  [[nodiscard]] std::string label() const;
};

struct TuneResult {
  /// Candidates in evaluation order.
  std::vector<TuneCandidate> candidates;
  /// Index of the best feasible candidate; meaningful only when
  /// anyFeasible is true.
  std::size_t bestIndex = 0;
  /// Whether any candidate both compiled and fit the SPM budget.
  bool anyFeasible = false;
  /// Wall-clock spent searching (the cost the analytical model avoids).
  double searchSeconds = 0.0;

  /// The best feasible candidate; throws InputError when the search found
  /// none (instead of indexing out of bounds).
  [[nodiscard]] const TuneCandidate& best() const {
    if (!anyFeasible || bestIndex >= candidates.size())
      throw InputError(
          "TuneResult::best(): the search found no feasible tile shape");
    return candidates[bestIndex];
  }
};

/// Exhaustively evaluate the default candidate grid (powers of two in
/// [16, 128] for the parallel tile dims, [16, 64] for the depth) on
/// `shape`, holding every other option from `base` fixed.
TuneResult tuneTileSizes(const CodegenOptions& base,
                         const sunway::ArchConfig& arch,
                         const GemmProblem& shape);

}  // namespace sw::core
