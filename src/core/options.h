// Compiler options, mirroring the tool's command line (§8): --batch,
// --no-use-asm, plus the ablation toggles the performance-breakdown
// experiment (Fig.13) needs.
#pragma once

#include <cstdint>

namespace sw::core {

/// Fusion patterns of §7.3.
enum class FusionKind {
  kNone,
  kPrologueQuantize,  // element-wise quantization of A fused before GEMM
  kEpilogueRelu,      // activation of C fused after GEMM
};

struct CodegenOptions {
  /// Invoke the vendor-style assembly micro-kernel (§7.2); false emits the
  /// naive loop nest (--no-use-asm).
  bool useAsm = true;

  /// Share input tiles across mesh rows/columns with RMA broadcasts (§5);
  /// false re-fetches every tile with DMA (the baseline of Fig.13).
  bool useRma = true;

  /// Two-level software pipelining + double buffering (§6); false issues
  /// and waits back-to-back.
  bool hideLatency = true;

  /// Batched GEMM (--batch): isolate the batch dimension (§3, Fig.3).
  bool batched = false;

  FusionKind fusion = FusionKind::kNone;

  /// GEMM operand variants (§2: "other GEMM variants share the same
  /// structure with DGEMM").  A transposed operand is DMA-staged into a
  /// scratch SPM tile and transposed on-CPE before the micro-kernel.
  bool transposeA = false;  // C = alpha * A^T * B + beta * C
  bool transposeB = false;  // C = alpha * A * B^T + beta * C

  /// Micro-kernel shape contract (§7.2); the analytical tile-size model
  /// simply adopts it (§3.1).
  std::int64_t tileM = 64;
  std::int64_t tileN = 64;
  std::int64_t tileK = 32;

  /// Strip-mining factor of the reduced dimension = mesh width (§3.2).
  std::int64_t stripFactor = 8;

  /// Register-block shape of the generated micro-kernel family (Exo-style
  /// MR x NR variants; kernel::microKernelFamily() is the feasible set).
  /// The default (4, 8) matches the vendor routine's block and keeps the
  /// historical timing calibration exactly.
  int microMr = 4;
  int microNr = 8;

  /// Edge-tile codegen (--pad-mode=edge): emit runtime clamps on DMA
  /// extents and micro-kernel shapes so arbitrary (non-tile-multiple)
  /// M/N/K run directly on unpadded host arrays, retiring the §8.1
  /// zero-padding convention.  Padded shapes bind none of the clamps, so
  /// an edge-tile kernel on padded inputs behaves exactly like a plain one.
  bool edgeTiles = false;
};

}  // namespace sw::core
