// Public entry point of the swcodegen library.
//
// SwGemmCompiler turns the DGEMM pattern (either a canonical spec given by
// CodegenOptions, or a naive C source accepted by the frontend) into a
// CompiledKernel: the executable per-CPE program, the generated athread C
// sources, and the schedule-tree dumps of every pipeline stage.
#pragma once

#include <memory>
#include <string>

#include "codegen/program.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "sunway/arch.h"

namespace sw::rt {
struct ExecutionPlan;
}

namespace sw::core {

struct CompiledKernel {
  CodegenOptions options;
  codegen::KernelProgram program;
  /// Generated athread C sources (§7): the CPE (slave) file and the MPE
  /// (host) file, as the paper's tool emits them.
  std::string cpeSource;
  std::string mpeSource;
  /// Schedule trees after each stage, for inspection/golden tests.
  std::string initialTreeDump;
  std::string tiledTreeDump;
  std::string finalTreeDump;
  /// Lowered hot-path execution plan (runtime/plan.h), produced once here
  /// and shared by every run of this kernel.  Not serialized — re-lowered
  /// when a kernel is loaded from the persistent cache.
  std::shared_ptr<const rt::ExecutionPlan> plan;
};

class SwGemmCompiler {
 public:
  explicit SwGemmCompiler(sunway::ArchConfig arch = {})
      : arch_(std::move(arch)) {}

  [[nodiscard]] const sunway::ArchConfig& arch() const { return arch_; }

  /// Compile the canonical DGEMM pattern with the given options.
  [[nodiscard]] CompiledKernel compile(const CodegenOptions& options) const;

  /// Compile a naive C GEMM source (§2.3): parse, analyse, classify the
  /// pattern (plain / batched / fused), then run the pipeline.  Explicit
  /// toggles in `base` (useAsm/useRma/hideLatency) are honoured; the
  /// pattern-derived fields (batched, fusion) come from the source.
  [[nodiscard]] CompiledKernel compileSource(const std::string& source,
                                             CodegenOptions base = {}) const;

 private:
  sunway::ArchConfig arch_;
};

}  // namespace sw::core
